// Minimal use of the incremental key monitor: prime it with an
// adult-like table through the pipeline's incremental entry point,
// stream live inserts and erases, and watch the minimal-key frontier
// churn while concurrent readers query snapshots.
//
//   ./monitor_quickstart [num_updates]

#include <cstdio>
#include <vector>

#include "qikey.h"
#include "util/flag_parse.h"

int main(int argc, char** argv) {
  uint64_t num_updates = 2000;
  if (argc > 1 &&
      !qikey::ParseUint64Flag("num_updates", argv[1], &num_updates)) {
    return 2;
  }

  qikey::Rng rng(42);
  qikey::TabularSpec spec = qikey::AdultLikeSpec();
  spec.num_rows = 10000 + num_updates;
  qikey::Dataset data = qikey::MakeTabular(spec, &rng);

  // Prime the monitor with the first 10k rows; the rest plays the role
  // of live traffic.
  qikey::PipelineOptions options;
  options.eps = 0.001;
  qikey::DiscoveryPipeline pipeline(options);
  std::vector<qikey::RowIndex> prime(10000);
  for (qikey::RowIndex i = 0; i < prime.size(); ++i) prime[i] = i;
  auto monitor = pipeline.RunIncremental(data.SelectRows(prime),
                                         /*max_key_size=*/4, /*seed=*/7);
  if (!monitor.ok()) {
    std::fprintf(stderr, "%s\n", monitor.status().ToString().c_str());
    return 1;
  }
  std::printf("primed: %s",
              (*monitor)->Snapshot()->Report(&data.schema()).c_str());

  std::vector<qikey::ValueCode> row(data.num_attributes());
  for (uint64_t u = 0; u < num_updates; ++u) {
    qikey::RowIndex source = static_cast<qikey::RowIndex>(10000 + u);
    for (qikey::AttributeIndex j = 0; j < data.num_attributes(); ++j) {
      row[j] = data.code(source, j);
    }
    if (!(*monitor)->Insert(row).ok()) return 1;
    // Any thread could do this concurrently: snapshots are immutable.
    auto snap = (*monitor)->Snapshot();
    if (snap->has_key() && u == num_updates / 2) {
      std::printf("mid-stream epoch %llu: primary key %s\n",
                  static_cast<unsigned long long>(snap->epoch),
                  snap->primary_key().ToString(&data.schema()).c_str());
    }
  }

  std::printf("after %llu live insert(s): %llu untouched, %llu repaired, "
              "%llu rebuilt, %zu churn event(s)\n",
              static_cast<unsigned long long>(num_updates),
              static_cast<unsigned long long>((*monitor)->untouched_updates()),
              static_cast<unsigned long long>((*monitor)->repaired_updates()),
              static_cast<unsigned long long>((*monitor)->rebuilds()),
              (*monitor)->events().size());
  std::printf("%s", (*monitor)->Snapshot()->Report(&data.schema()).c_str());
  return 0;
}
