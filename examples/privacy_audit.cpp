// Privacy audit: find small quasi-identifiers in a census-style table
// and quantify the linking-attack risk they carry (the motivating
// application of Motwani–Xu and of this paper).
//
// The scenario: before releasing a data set, an analyst wants to know
// which small attribute combinations re-identify individuals. A subset
// A with separation ratio ~1 means almost every pair of records is
// distinguishable — an adversary joining on A can link most records to
// an external source.
//
// Build & run:  ./build/examples/privacy_audit

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "qikey.h"

namespace {

/// Fraction of rows whose projection onto `attrs` is unique — the
/// standard re-identification risk measure. Computed from the clique
/// partition of G_A.
double UniquenessRate(const qikey::Dataset& data,
                      const qikey::AttributeSet& attrs) {
  qikey::Partition p = qikey::SeparationPartition(data, attrs);
  uint64_t singletons = 0;
  for (uint32_t size : p.block_sizes()) singletons += (size == 1);
  return static_cast<double>(singletons) /
         static_cast<double>(data.num_rows());
}

}  // namespace

int main() {
  using namespace qikey;
  Rng rng(2023);

  // A synthetic stand-in for UCI Adult (same shape: n = 32,561 records,
  // 14 attributes with realistic cardinalities).
  std::printf("Generating Adult-like census table...\n");
  Dataset data = MakeTabular(AdultLikeSpec(), &rng);
  const Schema& schema = data.schema();
  const double eps = 0.01;

  // Step 1: greedy minimum eps-separation key = the smallest
  // quasi-identifier the release should worry about.
  MinKeyOptions opts;
  opts.eps = eps;
  MinKeyResult qi = FindApproxMinimumEpsKey(data, opts, &rng).ValueOrDie();
  std::printf("\nSmallest quasi-identifier found (eps=%g): %s\n", eps,
              qi.key.ToString(&schema).c_str());
  std::printf("  separation ratio: %.4f%%\n",
              100.0 * SeparationRatio(data, qi.key));
  std::printf("  re-identification (uniqueness) rate: %.1f%% of records\n",
              100.0 * UniquenessRate(data, qi.key));

  // Step 2: risk of specific attribute combinations a privacy officer
  // might ask about. The filter answers all of these from one sample.
  TupleSampleFilterOptions filter_opts;
  filter_opts.eps = eps;
  TupleSampleFilter filter =
      TupleSampleFilter::Build(data, filter_opts, &rng).ValueOrDie();
  std::printf("\nScreening candidate quasi-identifiers (filter sample: %"
              PRIu64 " tuples):\n", filter.sample_size());

  std::vector<std::vector<AttributeIndex>> candidates = {
      {0, 9},          // age + sex
      {0, 9, 5},       // age + sex + marital status
      {0, 9, 13},      // age + sex + native country
      {0, 3, 6, 12},   // age + education + occupation + hours
      {2},             // fnlwgt alone (a near-unique weight column)
  };
  for (const auto& idx : candidates) {
    AttributeSet a = AttributeSet::FromIndices(14, idx);
    FilterVerdict v = filter.Query(a);
    std::printf("  %-44s %s\n", a.ToString(&schema).c_str(),
                v == FilterVerdict::kAccept
                    ? "HIGH RISK: behaves like a key"
                    : "low risk: provably not an eps-key");
  }

  // Step 3: for flagged combinations, quantify the residual ambiguity
  // with the non-separation sketch (Theorem 2) — no second pass over
  // the data needed once the sketch is built.
  NonSeparationSketchOptions sk_opts;
  sk_opts.k = 5;
  sk_opts.alpha = 0.001;
  sk_opts.eps = 0.2;
  NonSeparationSketch sketch =
      NonSeparationSketch::Build(data, sk_opts, &rng).ValueOrDie();
  std::printf("\nResidual ambiguity estimates (sketch: %" PRIu64
              " pairs, %.1f MB):\n",
              sketch.sample_size(),
              static_cast<double>(sketch.SizeBytes()) / 1e6);
  for (const auto& idx : candidates) {
    AttributeSet a = AttributeSet::FromIndices(14, idx);
    NonSeparationEstimate est = sketch.Estimate(a);
    if (est.small) {
      std::printf("  %-44s < %.2g%% of pairs indistinguishable\n",
                  a.ToString(&schema).c_str(), 100.0 * sk_opts.alpha);
    } else {
      std::printf("  %-44s ~%.3f%% of pairs indistinguishable\n",
                  a.ToString(&schema).c_str(),
                  100.0 * est.estimate /
                      static_cast<double>(data.num_pairs()));
    }
  }
  std::printf("\nAudit complete.\n");
  return 0;
}
