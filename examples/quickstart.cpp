// Quickstart: load a small table, test attribute subsets with the
// eps-separation key filter, and find an approximate minimum
// quasi-identifier.
//
// Build & run:  ./build/examples/quickstart

#include <cinttypes>
#include <cstdio>

#include "qikey.h"

int main() {
  using namespace qikey;

  // A toy "employees" table. In practice you would call
  // LoadCsvDataset("file.csv").
  const char* csv =
      "name,department,city,badge\n"
      "ann,eng,SD,1001\n"
      "bob,eng,SD,1002\n"
      "carol,sales,SF,1003\n"
      "dan,sales,SD,1004\n"
      "erin,eng,SF,1005\n"
      "frank,ops,SF,1006\n"
      "grace,eng,SD,1007\n"
      "heidi,sales,SF,1008\n";
  Dataset data = LoadCsvDatasetFromString(csv).ValueOrDie();
  std::printf("Loaded %zu rows x %zu attributes\n", data.num_rows(),
              data.num_attributes());

  // 1) Exact ground truth for a couple of subsets.
  const Schema& schema = data.schema();
  AttributeSet dept_city = AttributeSet::FromIndices(4, {1, 2});
  AttributeSet badge = AttributeSet::FromIndices(4, {3});
  std::printf("%s separates %.0f%% of pairs\n",
              dept_city.ToString(&schema).c_str(),
              100.0 * SeparationRatio(data, dept_city));
  std::printf("%s is a key: %s\n", badge.ToString(&schema).c_str(),
              IsKey(data, badge) ? "yes" : "no");

  // 2) The paper's filter: sample m/sqrt(eps) tuples once, then answer
  //    "is A an eps-separation key?" for any A from the sample alone.
  Rng rng(7);
  TupleSampleFilterOptions filter_opts;
  filter_opts.eps = 0.2;
  TupleSampleFilter filter =
      TupleSampleFilter::Build(data, filter_opts, &rng).ValueOrDie();
  std::printf("Filter holds %" PRIu64 " tuples (%" PRIu64 " bytes)\n",
              filter.sample_size(), filter.MemoryBytes());
  for (const AttributeSet& query : {dept_city, badge}) {
    FilterVerdict v = filter.Query(query);
    std::printf("  query %-24s -> %s\n", query.ToString(&schema).c_str(),
                v == FilterVerdict::kAccept ? "accept (may be a key)"
                                            : "reject (certainly not)");
  }

  // 3) Approximate minimum eps-separation key (greedy over the sample).
  MinKeyOptions minkey_opts;
  minkey_opts.eps = 0.2;
  MinKeyResult result =
      FindApproxMinimumEpsKey(data, minkey_opts, &rng).ValueOrDie();
  std::printf("Greedy quasi-identifier: %s (separates %.0f%% of pairs)\n",
              result.key.ToString(&schema).c_str(),
              100.0 * SeparationRatio(data, result.key));
  return 0;
}
