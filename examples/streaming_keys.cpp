// Streaming quasi-identifier monitoring: build both filters in one pass
// over a row stream (as Section 1 notes, sampling pairs/tuples is
// streaming-friendly), then answer key questions without revisiting the
// stream.
//
// The scenario: an event pipeline emits wide telemetry rows; we want to
// know — without storing the stream — which small column sets still
// identify events (so downstream anonymization knows what to mask).
//
// Build & run:  ./build/examples/streaming_keys

#include <cinttypes>
#include <cstdio>

#include "qikey.h"

int main() {
  using namespace qikey;
  Rng rng(5150);

  // Stream schema: 8 telemetry columns of varying cardinality.
  Schema schema({"host", "dc", "service", "status", "shard", "minute",
                 "build", "user_bucket"});
  std::vector<uint32_t> cards = {500, 4, 40, 6, 64, 1440, 30, 1000};

  const double eps = 0.01;
  const uint32_t m = 8;
  uint64_t tuple_budget = TupleSampleSizePaper(m, eps);    // m/sqrt(eps)
  uint64_t pair_budget = MxPairSampleSizePaper(m, eps);    // m/eps
  std::printf("Streaming budgets: %" PRIu64 " tuples (this paper) vs %"
              PRIu64 " pairs (Motwani-Xu)\n", tuple_budget, pair_budget);

  StreamingTupleFilterBuilder tuple_builder(schema, cards, tuple_budget,
                                            &rng);
  StreamingPairFilterBuilder pair_builder(schema, cards, pair_budget, &rng);

  // Synthesize one million stream rows. Rows are generated on the fly
  // and discarded — only the reservoirs persist.
  Rng stream_rng(42);
  const uint64_t kStreamLength = 1000000;
  std::printf("Streaming %" PRIu64 " rows...\n", kStreamLength);
  Timer timer;
  for (uint64_t i = 0; i < kStreamLength; ++i) {
    std::vector<ValueCode> row(m);
    for (uint32_t j = 0; j < m; ++j) {
      row[j] = static_cast<ValueCode>(stream_rng.Uniform(cards[j]));
    }
    QIKEY_CHECK(tuple_builder.Offer(row).ok());
    QIKEY_CHECK(pair_builder.Offer(row).ok());
  }
  std::printf("  one pass took %.2fs; reservoirs saw %" PRIu64 " rows\n",
              timer.ElapsedSeconds(), tuple_builder.rows_seen());

  TupleSampleFilter tuple_filter =
      std::move(tuple_builder).Finish().ValueOrDie();
  MxPairFilter pair_filter = std::move(pair_builder).Finish().ValueOrDie();
  std::printf("  retained state: %" PRIu64 " B (tuples) / %" PRIu64
              " B (pairs)\n",
              tuple_filter.MemoryBytes(), pair_filter.MemoryBytes());

  // Interrogate both filters about candidate identifier sets.
  std::vector<std::vector<AttributeIndex>> questions = {
      {0},              // host alone
      {0, 5},           // host + minute
      {0, 5, 7},        // host + minute + user bucket
      {1, 3},           // dc + status (coarse)
      {0, 2, 4, 5, 6},  // a wide operational tuple
  };
  std::printf("\n%-40s %-14s %-14s\n", "column set", "tuple filter",
              "pair filter");
  for (const auto& idx : questions) {
    AttributeSet a = AttributeSet::FromIndices(m, idx);
    const char* v1 = tuple_filter.Query(a) == FilterVerdict::kAccept
                         ? "accept" : "reject";
    const char* v2 = pair_filter.Query(a) == FilterVerdict::kAccept
                         ? "accept" : "reject";
    std::printf("%-40s %-14s %-14s\n", a.ToString(&schema).c_str(), v1, v2);
  }
  std::printf("\n'accept' = the set still uniquely identified every "
              "sampled event: mask it before release.\n");
  return 0;
}
