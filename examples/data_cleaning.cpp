// Data cleaning: use approximate keys to find fuzzy duplicates — the
// Ananthakrishna/Chaudhuri application the paper cites. A column set
// that is an eps-separation key but NOT an exact key flags a small
// population of suspicious near-identical records; the filter's
// rejection witnesses point straight at them.
//
// Build & run:  ./build/examples/data_cleaning

#include <cinttypes>
#include <cstdio>
#include <string>

#include "qikey.h"

namespace {

/// Builds a "customers" table of `n` clean rows plus `dup_count` noisy
/// duplicates (same person, one field re-entered differently).
qikey::Dataset MakeCustomerTable(int n, int dup_count, qikey::Rng* rng) {
  qikey::DatasetBuilder b({"first", "last", "street", "zip", "phone"});
  auto row_of = [&](int i, int variant) {
    std::vector<std::string> row = {
        "first" + std::to_string(i % 400),
        "last" + std::to_string(i % 700),
        "street" + std::to_string(i),
        "zip" + std::to_string(i % 90),
        "phone" + std::to_string(i),
    };
    if (variant == 1) row[2] = "street" + std::to_string(i) + "_apt";
    return row;
  };
  for (int i = 0; i < n; ++i) QIKEY_CHECK(b.AddRow(row_of(i, 0)).ok());
  for (int d = 0; d < dup_count; ++d) {
    int victim = static_cast<int>(rng->Uniform(n));
    QIKEY_CHECK(b.AddRow(row_of(victim, 1)).ok());  // re-entered record
  }
  return std::move(b).Finish();
}

}  // namespace

int main() {
  using namespace qikey;
  Rng rng(99);
  Dataset data = MakeCustomerTable(20000, 25, &rng);
  const Schema& schema = data.schema();
  std::printf("Customer table: %zu rows (25 noisy duplicates injected)\n",
              data.num_rows());

  // (first, last, zip) is the natural match key for deduplication.
  AttributeSet match_key = AttributeSet::FromIndices(5, {0, 1, 3});
  const double eps = 0.001;

  // It is an eps-separation key (identifies almost everyone)...
  std::printf("\n%s:\n", match_key.ToString(&schema).c_str());
  std::printf("  separation ratio  %.6f\n",
              SeparationRatio(data, match_key));
  std::printf("  eps-separation key (eps=%g): %s\n", eps,
              IsEpsSeparationKey(data, match_key, eps) ? "yes" : "no");
  // ...but not an exact key: the gap is exactly the duplicate suspects.
  std::printf("  exact key: %s\n",
              IsKey(data, match_key) ? "yes" : "no");

  // Enumerate the suspect groups from the clique partition of G_A.
  Partition p = SeparationPartition(data, match_key);
  std::printf("\nSuspect groups (same first/last/zip):\n");
  int shown = 0;
  std::vector<std::vector<RowIndex>> groups(p.num_blocks());
  for (RowIndex r = 0; r < data.num_rows(); ++r) {
    groups[p.block_of(r)].push_back(r);
  }
  for (const auto& g : groups) {
    if (g.size() < 2) continue;
    if (++shown > 5) continue;  // print the first few
    std::printf("  group of %zu:\n", g.size());
    for (RowIndex r : g) std::printf("    %s\n", data.FormatRow(r).c_str());
  }
  std::printf("  ... %d suspect groups total\n", shown);

  // A one-pass streaming screen for huge inputs: the tuple filter flags
  // the key's imperfection with a witness pair, without ever holding
  // the table in memory.
  std::vector<uint32_t> cards;
  for (size_t j = 0; j < data.num_attributes(); ++j) {
    cards.push_back(data.column(static_cast<AttributeIndex>(j)).cardinality());
  }
  StreamingTupleFilterBuilder builder(data.schema(), cards,
                                      /*sample_size=*/4000, &rng);
  for (RowIndex r = 0; r < data.num_rows(); ++r) {
    std::vector<ValueCode> row;
    for (AttributeIndex j = 0; j < data.num_attributes(); ++j) {
      row.push_back(data.code(r, j));
    }
    QIKEY_CHECK(builder.Offer(row).ok());
  }
  TupleSampleFilter filter = std::move(builder).Finish().ValueOrDie();
  auto witness = filter.QueryWitness(match_key);
  std::printf("\nStreaming screen (%" PRIu64 " retained tuples): %s\n",
              filter.sample_size(),
              witness.has_value()
                  ? "duplicates detected — match key is not exact"
                  : "no duplicates in sample");
  if (witness.has_value()) {
    std::printf("  witness pair (sample rows %u, %u) agrees on %s\n",
                witness->first, witness->second,
                match_key.ToString(&schema).c_str());
  }
  return 0;
}
