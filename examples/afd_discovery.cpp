// Approximate functional dependency discovery — the paper's cited
// application (Kivinen–Mannila; quasi-identifiers are the special case
// X -> everything). Profiles a table, mines minimal approximate FDs
// into a target column, and shows the sketch-based estimator giving
// the same answers from a compressed summary.
//
// Build & run:  ./build/examples/afd_discovery

#include <cstdio>

#include "qikey.h"

#include "core/afd.h"
#include "data/statistics.h"

int main() {
  using namespace qikey;
  Rng rng(31337);

  // A synthetic "orders" table with real dependency structure:
  //   warehouse -> region            (exact)
  //   product   -> category          (exact)
  //   customer  -> region            (approximate: movers)
  TabularSpec spec;
  spec.num_rows = 50000;
  spec.attributes = {
      {"region", 6, 0.5, -1, 0.0},
      {"warehouse", 40, 0.8, -1, 0.0},
      {"region_of_wh", 6, 0.0, 1, 0.0},     // pretend: region via warehouse
      {"product", 500, 1.0, -1, 0.0},
      {"category", 20, 0.0, 3, 0.0},        // product -> category, exact
      {"customer", 8000, 0.6, -1, 0.0},
      {"cust_region", 6, 0.0, 5, 0.03},     // customer -> region, 3% noise
      {"order_id", 50000, 0.0, -1, 0.0},
  };
  Dataset data = MakeTabular(spec, &rng);
  const Schema& schema = data.schema();
  std::printf("Orders table: %zu rows x %zu attributes\n\n",
              data.num_rows(), data.num_attributes());
  std::printf("%s\n", FormatProfileTable(ProfileDataset(data)).c_str());

  // Mine minimal approximate FDs into "category".
  const AttributeIndex category =
      static_cast<AttributeIndex>(schema.Find("category"));
  auto exact_fds =
      DiscoverMinimalAfds(data, category, /*max_conditional_error=*/0.01,
                          /*max_size=*/2)
          .ValueOrDie();
  std::printf("Minimal X -> category with conditional error <= 1%%:\n");
  for (const AfdCandidate& c : exact_fds) {
    std::printf("  %-36s g2=%.6f conditional=%.4f\n",
                c.lhs.ToString(&schema).c_str(), c.error.g2,
                c.error.conditional);
  }

  // The noisy dependency: quantify its error exactly and from a sketch.
  const AttributeIndex cust_region =
      static_cast<AttributeIndex>(schema.Find("cust_region"));
  AttributeSet customer = AttributeSet::FromIndices(
      data.num_attributes(),
      {static_cast<AttributeIndex>(schema.Find("customer"))});
  AfdError exact = ComputeAfdError(data, customer, cust_region);
  std::printf("\ncustomer -> cust_region (exact):   g2=%.6f "
              "conditional=%.4f (injected noise: 3%%)\n",
              exact.g2, exact.conditional);

  NonSeparationSketchOptions sk;
  sk.k = 2;
  sk.alpha = 1e-5;
  sk.eps = 0.15;
  sk.big_k = 2.0;
  // The dependency's Γ is ~4e-4 of all pairs; 2M retained pairs give
  // ~750 expected hits (well above the cutoff) at ~128 MB, instead of
  // the default formula's alpha-driven 37M pairs.
  sk.sample_size = 2000000;
  NonSeparationSketch sketch =
      NonSeparationSketch::Build(data, sk, &rng).ValueOrDie();
  auto est = EstimateAfdError(sketch, customer, cust_region);
  if (est.ok()) {
    std::printf("customer -> cust_region (sketched): g2=%.6f "
                "conditional=%.4f  (from %.1f MB summary)\n",
                est->g2, est->conditional,
                static_cast<double>(sketch.SizeBytes()) / 1e6);
  } else {
    std::printf("sketch: %s\n", est.status().ToString().c_str());
  }
  return 0;
}
