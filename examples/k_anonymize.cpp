// k-anonymization via generalization hierarchies: the ARX-style
// release pipeline built on quasi-identifier discovery. Flow:
//   1. audit the table to find the risky quasi-identifier,
//   2. attach interval hierarchies to its attributes,
//   3. search the generalization lattice for the minimal levels
//      reaching k-anonymity (optionally with suppression slack),
//   4. verify and compare information loss.
//
// Build & run:  ./build/examples/k_anonymize

#include <cstdio>
#include <numeric>

#include "qikey.h"

#include "core/generalization.h"
#include "data/statistics.h"

namespace {

/// Discernibility-style utility proxy: mean equivalence-class size
/// (smaller = more useful, k = perfectly tight).
double MeanClassSize(const qikey::Dataset& d, const qikey::AttributeSet& qi) {
  qikey::Partition p = qikey::SeparationPartition(d, qi);
  return static_cast<double>(d.num_rows()) /
         static_cast<double>(p.num_blocks());
}

}  // namespace

int main() {
  using namespace qikey;
  Rng rng(2024);

  // A patient-style table: age/zip/sex are the public quasi-identifier,
  // diagnosis is the sensitive value.
  TabularSpec spec;
  spec.num_rows = 20000;
  spec.attributes = {
      {"age", 90, 0.3, -1, 0.0},
      {"zip", 625, 0.5, -1, 0.0},
      {"sex", 2, 0.1, -1, 0.0},
      {"diagnosis", 30, 1.0, -1, 0.0},
  };
  Dataset data = MakeTabular(spec, &rng);
  const Schema& schema = data.schema();
  std::vector<AttributeIndex> qi{0, 1, 2};
  AttributeSet qi_set = AttributeSet::FromIndices(4, qi);

  std::printf("Patient table: %zu rows\n", data.num_rows());
  std::printf("QI = %s\n", qi_set.ToString(&schema).c_str());
  std::printf("  anonymity level: %llu  (rows unique under QI: %.1f%%)\n",
              static_cast<unsigned long long>(AnonymityLevel(data, qi_set)),
              100.0 * RowsBelowK(data, qi_set, 2));

  // Hierarchies: age in 5-year bands then decades...; zip by prefix
  // (factor 5 per level); sex only keep-or-suppress.
  std::vector<GeneralizationHierarchy> hierarchies{
      GeneralizationHierarchy::Intervals(90, 5),
      GeneralizationHierarchy::Intervals(625, 5),
      GeneralizationHierarchy::KeepOrSuppress(2),
  };

  for (uint64_t k : {5u, 25u}) {
    for (double suppression : {0.0, 0.02}) {
      GeneralizationOptions opts;
      opts.k = k;
      opts.max_suppression = suppression;
      auto result =
          FindMinimalGeneralization(data, qi, hierarchies, opts);
      if (!result.ok()) {
        std::printf("k=%llu suppr=%.0f%%: %s\n",
                    static_cast<unsigned long long>(k), 100 * suppression,
                    result.status().ToString().c_str());
        continue;
      }
      auto released =
          ApplyGeneralization(data, qi, hierarchies, result->levels)
              .ValueOrDie();
      std::printf("\nk=%llu, suppression budget %.0f%%:\n",
                  static_cast<unsigned long long>(k), 100 * suppression);
      std::printf("  levels: age->%u zip->%u sex->%u   (lattice nodes "
                  "evaluated: %llu)\n",
                  result->levels[0], result->levels[1], result->levels[2],
                  static_cast<unsigned long long>(result->nodes_evaluated));
      std::printf("  achieved k-anon=%llu, suppressed %.2f%%, classes=%llu, "
                  "mean class size %.1f\n",
                  static_cast<unsigned long long>(result->anonymity_level),
                  100.0 * result->suppressed,
                  static_cast<unsigned long long>(result->classes),
                  MeanClassSize(released, qi_set));
    }
  }

  // Release check: k-anonymity bounds the LINKING risk (no class
  // smaller than k), which is the quantity that matters for joins; the
  // table can still separate most PAIRS. Report both views.
  GeneralizationOptions opts;
  opts.k = 25;
  auto result = FindMinimalGeneralization(data, qi, hierarchies, opts)
                    .ValueOrDie();
  Dataset released =
      ApplyGeneralization(data, qi, hierarchies, result.levels)
          .ValueOrDie();
  std::printf("\nRelease check (QI = %s):\n",
              qi_set.ToString(&schema).c_str());
  std::printf("  %-22s %14s %14s\n", "", "before", "after");
  std::printf("  %-22s %14.6f %14.6f\n", "separation ratio",
              SeparationRatio(data, qi_set),
              SeparationRatio(released, qi_set));
  std::printf("  %-22s %13.2f%% %13.2f%%\n", "rows unique under QI",
              100.0 * RowsBelowK(data, qi_set, 2),
              100.0 * RowsBelowK(released, qi_set, 2));
  std::printf("  %-22s %14llu %14llu\n", "anonymity level",
              static_cast<unsigned long long>(AnonymityLevel(data, qi_set)),
              static_cast<unsigned long long>(
                  AnonymityLevel(released, qi_set)));
  return 0;
}
