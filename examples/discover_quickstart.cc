// Minimal end-to-end use of the discovery pipeline: generate a
// covtype-like table, run batched-parallel discovery, print the report.
//
//   ./discover_quickstart [num_threads]

#include <cstdio>

#include "qikey.h"
#include "util/flag_parse.h"

int main(int argc, char** argv) {
  long long threads_flag = 0;
  if (argc > 1 &&
      !qikey::ParseIntFlag("num_threads", argv[1], 0, 1 << 16,
                           &threads_flag)) {
    return 2;
  }
  size_t threads = static_cast<size_t>(threads_flag);

  qikey::Rng rng(42);
  qikey::TabularSpec spec = qikey::CovtypeLikeSpec();
  spec.num_rows = 50000;
  qikey::Dataset data = qikey::MakeTabular(spec, &rng);

  qikey::PipelineOptions options;
  options.eps = 0.001;
  options.num_threads = threads;  // 0 = one per hardware thread
  qikey::DiscoveryPipeline pipeline(options);

  auto result = pipeline.Run(data, &rng);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", result->Report(&data.schema()).c_str());
  return 0;
}
