// Minimal end-to-end use of the discovery pipeline: generate a
// covtype-like table, run batched-parallel discovery, print the report.
//
//   ./discover_quickstart [num_threads]

#include <cstdio>
#include <cstdlib>

#include "qikey.h"

int main(int argc, char** argv) {
  size_t threads = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 0;

  qikey::Rng rng(42);
  qikey::TabularSpec spec = qikey::CovtypeLikeSpec();
  spec.num_rows = 50000;
  qikey::Dataset data = qikey::MakeTabular(spec, &rng);

  qikey::PipelineOptions options;
  options.eps = 0.001;
  options.num_threads = threads;  // 0 = one per hardware thread
  qikey::DiscoveryPipeline pipeline(options);

  auto result = pipeline.Run(data, &rng);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", result->Report(&data.schema()).c_str());
  return 0;
}
