#include <gtest/gtest.h>

#include <tuple>

#include "data/generators/uniform_grid.h"
#include "data/partition.h"
#include "math/combinatorics.h"
#include "util/rng.h"

namespace qikey {
namespace {

/// Reference O(n^2) pair count used to validate the partition route.
uint64_t BruteForceUnseparated(const Dataset& d,
                               const std::vector<AttributeIndex>& attrs) {
  uint64_t count = 0;
  for (RowIndex i = 0; i < d.num_rows(); ++i) {
    for (RowIndex j = i + 1; j < d.num_rows(); ++j) {
      if (d.RowsAgreeOn(i, j, attrs)) ++count;
    }
  }
  return count;
}

TEST(PartitionTest, TrivialPartition) {
  Partition p = Partition::Trivial(5);
  EXPECT_EQ(p.num_blocks(), 1u);
  EXPECT_EQ(p.UnseparatedPairs(), 10u);
  EXPECT_FALSE(p.AllSingletons());
}

TEST(PartitionTest, TrivialEmpty) {
  Partition p = Partition::Trivial(0);
  EXPECT_EQ(p.num_blocks(), 0u);
  EXPECT_EQ(p.UnseparatedPairs(), 0u);
}

TEST(PartitionTest, ByColumnGroupsEqualCodes) {
  Column c({0, 1, 0, 2, 1});
  Partition p = Partition::ByColumn(c);
  EXPECT_EQ(p.num_blocks(), 3u);
  EXPECT_EQ(p.block_of(0), p.block_of(2));
  EXPECT_EQ(p.block_of(1), p.block_of(4));
  EXPECT_NE(p.block_of(0), p.block_of(3));
  // Unseparated: {0,2} and {1,4} -> 2 pairs.
  EXPECT_EQ(p.UnseparatedPairs(), 2u);
}

TEST(PartitionTest, RefinementSplitsBlocks) {
  Column c1({0, 0, 0, 1, 1});
  Column c2({0, 1, 0, 0, 0});
  Partition p = Partition::ByColumn(c1).RefinedBy(c2);
  // Blocks: {0,2}, {1}, {3,4}.
  EXPECT_EQ(p.num_blocks(), 3u);
  EXPECT_EQ(p.UnseparatedPairs(), 2u);
}

TEST(PartitionTest, RefinementGainEqualsGammaDrop) {
  Rng rng(99);
  Dataset d = MakeUniformGridSample(4, 3, 200, &rng);
  Partition p = Partition::ByColumn(d.column(0));
  for (AttributeIndex j = 1; j < 4; ++j) {
    uint64_t gain = p.RefinementGain(d.column(j));
    Partition refined = p.RefinedBy(d.column(j));
    EXPECT_EQ(gain, p.UnseparatedPairs() - refined.UnseparatedPairs())
        << "attribute " << j;
    p = refined;
  }
}

TEST(PartitionTest, AllSingletonsIffKey) {
  // Two rows identical on every attribute -> never all singletons.
  Column c1({0, 0, 1});
  Column c2({5, 5, 6});
  Dataset d(Schema::Anonymous(2), {c1, c2});
  Partition p = PartitionByAttributes(d, {0, 1});
  EXPECT_FALSE(p.AllSingletons());
  EXPECT_EQ(p.UnseparatedPairs(), 1u);
}

TEST(PartitionTest, EmptyAttrsIsTrivial) {
  Rng rng(1);
  Dataset d = MakeUniformGridSample(3, 4, 50, &rng);
  EXPECT_EQ(CountUnseparatedPairs(d, {}), PairCount(50));
}

// Property sweep: partition-based Γ equals brute force on random grids.
class PartitionPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(PartitionPropertyTest, GammaMatchesBruteForce) {
  auto [m, q, n, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  Dataset d = MakeUniformGridSample(m, q, n, &rng);
  // All singleton and pair attribute sets, plus the full set.
  for (AttributeIndex a = 0; a < static_cast<AttributeIndex>(m); ++a) {
    EXPECT_EQ(CountUnseparatedPairs(d, {a}), BruteForceUnseparated(d, {a}));
    for (AttributeIndex b = a + 1; b < static_cast<AttributeIndex>(m); ++b) {
      std::vector<AttributeIndex> attrs{a, b};
      EXPECT_EQ(CountUnseparatedPairs(d, attrs),
                BruteForceUnseparated(d, attrs));
    }
  }
  std::vector<AttributeIndex> all;
  for (int j = 0; j < m; ++j) all.push_back(static_cast<AttributeIndex>(j));
  EXPECT_EQ(CountUnseparatedPairs(d, all), BruteForceUnseparated(d, all));
}

INSTANTIATE_TEST_SUITE_P(
    Grids, PartitionPropertyTest,
    ::testing::Values(std::make_tuple(2, 2, 40, 1),
                      std::make_tuple(3, 3, 60, 2),
                      std::make_tuple(4, 2, 80, 3),
                      std::make_tuple(5, 5, 100, 4),
                      std::make_tuple(2, 10, 120, 5),
                      std::make_tuple(6, 2, 64, 6)));

// Monotonicity: refining can only reduce unseparated pairs.
class RefineMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(RefineMonotoneTest, GammaIsMonotone) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  Dataset d = MakeUniformGridSample(6, 3, 150, &rng);
  Partition p = Partition::Trivial(d.num_rows());
  uint64_t prev = p.UnseparatedPairs();
  for (AttributeIndex j = 0; j < 6; ++j) {
    p = p.RefinedBy(d.column(j));
    EXPECT_LE(p.UnseparatedPairs(), prev);
    prev = p.UnseparatedPairs();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefineMonotoneTest,
                         ::testing::Range(10, 16));

}  // namespace
}  // namespace qikey
