#include <gtest/gtest.h>

#include "qikey.h"

namespace qikey {
namespace {

/// Degenerate shapes every public entry point must survive: constant
/// columns, single rows/columns, all-duplicate tables, extreme eps.

Dataset ConstantTable(size_t rows, size_t cols) {
  std::vector<Column> columns;
  for (size_t j = 0; j < cols; ++j) {
    columns.emplace_back(std::vector<ValueCode>(rows, 0), 1);
  }
  return Dataset(Schema::Anonymous(cols), std::move(columns));
}

TEST(EdgeCaseTest, ConstantTableSeparatesNothing) {
  Dataset d = ConstantTable(20, 3);
  AttributeSet all = AttributeSet::All(3);
  EXPECT_EQ(ExactUnseparatedPairs(d, all), d.num_pairs());
  EXPECT_DOUBLE_EQ(SeparationRatio(d, all), 0.0);
  EXPECT_FALSE(IsKey(d, all));
  EXPECT_EQ(AnonymityLevel(d, all), 20u);
}

TEST(EdgeCaseTest, FiltersRejectEverythingOnConstantTable) {
  Dataset d = ConstantTable(20, 3);
  Rng rng(1);
  TupleSampleFilterOptions ts;
  ts.eps = 0.1;
  auto f = TupleSampleFilter::Build(d, ts, &rng);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->Query(AttributeSet::All(3)), FilterVerdict::kReject);
  EXPECT_EQ(f->Query(AttributeSet(3)), FilterVerdict::kReject);
}

TEST(EdgeCaseTest, GreedyOnConstantTableChoosesNothing) {
  Dataset d = ConstantTable(10, 3);
  RefineEngine engine(d);
  auto result = engine.RunGreedy();
  EXPECT_TRUE(result.chosen.empty());
  EXPECT_FALSE(result.is_sample_key);
  EXPECT_EQ(result.remaining_unseparated, d.num_pairs());
}

TEST(EdgeCaseTest, EnumerationOnConstantTableFindsNoKeys) {
  Dataset d = ConstantTable(10, 3);
  KeyEnumerationOptions opts;
  opts.max_size = 3;
  auto keys = EnumerateMinimalKeys(d, opts);
  ASSERT_TRUE(keys.ok());
  EXPECT_TRUE(keys->empty());
}

TEST(EdgeCaseTest, MaskingOnConstantTableIsImmediate) {
  // Already separates nothing: zero masking needed for any eps.
  Dataset d = ConstantTable(10, 3);
  MaskingResult r = GreedyMaskingExact(d, 0.5);
  EXPECT_TRUE(r.achieved);
  EXPECT_TRUE(r.masked.empty());
}

TEST(EdgeCaseTest, SingleColumnSingleRow) {
  DatasetBuilder b({"only"});
  ASSERT_TRUE(b.AddRow({"v"}).ok());
  Dataset d = std::move(b).Finish();
  EXPECT_EQ(d.num_pairs(), 0u);
  EXPECT_TRUE(IsKey(d, AttributeSet::All(1)));  // vacuously
  EXPECT_TRUE(IsKey(d, AttributeSet(1)));       // zero pairs to separate
  Rng rng(2);
  TupleSampleFilterOptions opts;
  EXPECT_FALSE(TupleSampleFilter::Build(d, opts, &rng).ok());
}

TEST(EdgeCaseTest, TwoIdenticalRows) {
  DatasetBuilder b({"x", "y"});
  ASSERT_TRUE(b.AddRow({"a", "b"}).ok());
  ASSERT_TRUE(b.AddRow({"a", "b"}).ok());
  Dataset d = std::move(b).Finish();
  Rng rng(3);
  TupleSampleFilterOptions opts;
  opts.eps = 0.5;
  opts.sample_size = 2;
  auto f = TupleSampleFilter::Build(d, opts, &rng);
  ASSERT_TRUE(f.ok());
  // Both rows retained; every subset fails to separate them.
  EXPECT_EQ(f->Query(AttributeSet::All(2)), FilterVerdict::kReject);
  auto witness = f->QueryWitness(AttributeSet::All(2));
  ASSERT_TRUE(witness.has_value());
  EXPECT_NE(witness->first, witness->second);
}

TEST(EdgeCaseTest, SketchOnTinyTable) {
  DatasetBuilder b({"x"});
  ASSERT_TRUE(b.AddRow({"1"}).ok());
  ASSERT_TRUE(b.AddRow({"2"}).ok());
  Dataset d = std::move(b).Finish();
  Rng rng(4);
  NonSeparationSketchOptions opts;
  opts.sample_size = 50;
  auto sketch = NonSeparationSketch::Build(d, opts, &rng);
  ASSERT_TRUE(sketch.ok());
  // The single pair is separated by {x}: zero hits.
  NonSeparationEstimate est =
      sketch->Estimate(AttributeSet::FromIndices(1, {0}));
  EXPECT_EQ(est.hits, 0u);
}

TEST(EdgeCaseTest, ExtremeEpsilonValidation) {
  Rng rng(5);
  Dataset d = MakeUniformGridSample(3, 3, 50, &rng);
  TupleSampleFilterOptions opts;
  for (double eps : {-0.1, 0.0, 1.0, 1.5}) {
    opts.eps = eps;
    EXPECT_FALSE(TupleSampleFilter::Build(d, opts, &rng).ok())
        << "eps=" << eps;
  }
  // eps arbitrarily close to the boundaries is fine.
  opts.eps = 1e-9;
  EXPECT_TRUE(TupleSampleFilter::Build(d, opts, &rng).ok());
  opts.eps = 1.0 - 1e-9;
  EXPECT_TRUE(TupleSampleFilter::Build(d, opts, &rng).ok());
}

TEST(EdgeCaseTest, AttributeSetOnEmptyUniverse) {
  AttributeSet s(0);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.ToIndices().empty());
  EXPECT_EQ(s.ToString(), "{}");
  EXPECT_EQ(s, AttributeSet(0));
}

TEST(EdgeCaseTest, PartitionOfCardinalityOneColumns) {
  Column c(std::vector<ValueCode>(8, 0), 1);
  Partition p = Partition::ByColumn(c);
  EXPECT_EQ(p.num_blocks(), 1u);
  Partition refined = p.RefinedBy(c);
  EXPECT_EQ(refined.num_blocks(), 1u);
  EXPECT_EQ(refined.UnseparatedPairs(), PairCount(8));
}

TEST(EdgeCaseTest, AuditOnKeylessTable) {
  Dataset d = ConstantTable(30, 2);
  Rng rng(6);
  auto report = AuditQuasiIdentifiers(d, 0.1, 2, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->quasi_identifiers.empty());
}

TEST(EdgeCaseTest, GeneralizationOfAlreadyAnonymousTable) {
  Dataset d = ConstantTable(30, 1);
  std::vector<GeneralizationHierarchy> h{
      GeneralizationHierarchy::KeepOrSuppress(1)};
  GeneralizationOptions opts;
  opts.k = 30;
  auto r = FindMinimalGeneralization(d, {0}, h, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->levels, GeneralizationVector{0});
  EXPECT_EQ(r->anonymity_level, 30u);
}

TEST(EdgeCaseTest, CsvWithSingleColumn) {
  auto d = LoadCsvDatasetFromString("h\nv1\nv2\nv1\n");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_rows(), 3u);
  EXPECT_EQ(ExactUnseparatedPairs(*d, AttributeSet::All(1)), 1u);
}

}  // namespace
}  // namespace qikey
