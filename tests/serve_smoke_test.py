#!/usr/bin/env python3
"""End-to-end smoke test for `qikey serve` as a real OS process.

Drives the shipped binary the way an operator would:

  1. start `qikey serve <csv> --listen 127.0.0.1:0` (ephemeral port),
  2. parse "listening on <host>:<port>" from its stdout,
  3. speak QIKEY/1 over a real TCP connection: hello, good requests,
     a malformed request,
  4. check the good responses are BIT-IDENTICAL to
     `qikey query --requests --wire` (the shared-codec guarantee),
  5. SIGTERM the server and require a clean exit code 0 (graceful
     drain) — under ASan builds this also proves a leak-free shutdown.

Usage: serve_smoke_test.py <qikey-binary> <csv>
"""

import json
import signal
import socket
import subprocess
import sys
import tempfile
import time

TIMEOUT_S = 60

REQUESTS = [
    "is-key first,last",
    "separation city",
    "min-key",
    "afd city,age -> last",
    "anonymity city 2",
]


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def wire_expectations(binary, csv):
    """The batch executor's --wire output: one line per request."""
    with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as f:
        f.write("QIKEY/1\n")  # versioned request file
        f.write("\n".join(REQUESTS) + "\n")
        path = f.name
    out = subprocess.run(
        [binary, "query", csv, "--requests", path, "--eps", "0.01",
         "--wire"],
        capture_output=True, text=True, timeout=TIMEOUT_S)
    if out.returncode != 0:
        fail(f"qikey query --wire exited {out.returncode}: {out.stderr}")
    lines = out.stdout.splitlines()
    if len(lines) != len(REQUESTS):
        fail(f"--wire printed {len(lines)} lines for {len(REQUESTS)} "
             f"requests: {lines}")
    return lines


def main():
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} <qikey-binary> <csv>")
    binary, csv = sys.argv[1], sys.argv[2]

    expected = wire_expectations(binary, csv)

    server = subprocess.Popen(
        [binary, "serve", csv, "--listen", "127.0.0.1:0", "--eps", "0.01"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        # The second stdout line announces the bound port.
        port = None
        deadline = time.time() + TIMEOUT_S
        while time.time() < deadline:
            line = server.stdout.readline()
            if not line:
                break
            if line.startswith("listening on "):
                port = int(line.rsplit(":", 1)[1])
                break
        if port is None:
            fail(f"server never announced its port: "
                 f"{server.stderr.read() if server.poll() is not None else ''}")

        with socket.create_connection(("127.0.0.1", port),
                                      timeout=TIMEOUT_S) as sock:
            f = sock.makefile("rw", newline="\n")
            greeting = f.readline().strip()
            if greeting != "QIKEY/1 ready":
                fail(f"bad greeting: {greeting!r}")

            f.write("QIKEY/1\n")
            f.flush()
            ack = f.readline().strip()
            if ack != "ok v1":
                fail(f"bad version ack: {ack!r}")

            # Pipelined good requests: bit-identical to --wire.
            f.write("\n".join(REQUESTS) + "\n")
            f.flush()
            for i, want in enumerate(expected):
                got = f.readline().strip()
                if got != want:
                    fail(f"response {i} diverged from --wire:\n"
                         f"  served: {got!r}\n  batch:  {want!r}")

            # A malformed request errs but keeps the connection open.
            f.write("not a verb\nmin-key\n")
            f.flush()
            err = f.readline().strip()
            if not err.startswith("err parse "):
                fail(f"expected err parse, got {err!r}")
            ok = f.readline().strip()
            if not ok.startswith("ok "):
                fail(f"connection died after parse error: {ok!r}")

            # The stats admin verb answers one line of valid JSON
            # covering the server/engine/cache/snapshot families.
            f.write("stats\n")
            f.flush()
            stats = f.readline().strip()
            if not stats.startswith("ok {"):
                fail(f"stats verb did not answer ok <json>: {stats!r}")
            try:
                doc = json.loads(stats[3:])
            except ValueError as exc:
                fail(f"stats payload is not valid JSON: {exc}")
            for section, key in [
                    ("counters", "server.responses_sent"),
                    ("counters", "cache.misses"),
                    ("gauges", "server.connections"),
                    ("gauges", "snapshot.epoch"),
                    ("histograms", "server.request_ns"),
                    ("histograms", "engine.pass.execute_ns")]:
                if key not in doc.get(section, {}):
                    fail(f"stats JSON missing {section}/{key}: {stats}")
            if doc["gauges"]["server.connections"] != 1:
                fail(f"stats server.connections != 1: {stats}")

        # Graceful drain: SIGTERM must exit 0, promptly.
        server.send_signal(signal.SIGTERM)
        try:
            code = server.wait(timeout=TIMEOUT_S)
        except subprocess.TimeoutExpired:
            fail("server did not drain within the timeout after SIGTERM")
        if code != 0:
            fail(f"server exited {code} after SIGTERM: "
                 f"{server.stderr.read()}")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()

    print("serve smoke test passed")


if __name__ == "__main__":
    main()
