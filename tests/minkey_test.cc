#include <gtest/gtest.h>

#include <cmath>

#include "core/bruteforce.h"
#include "math/combinatorics.h"
#include "core/minkey.h"
#include "core/refine_engine.h"
#include "core/separation.h"
#include "data/dataset_builder.h"
#include "data/generators/uniform_grid.h"
#include "util/rng.h"

namespace qikey {
namespace {

Dataset TwoAttributeKeyDataset() {
  // No single attribute is a key, but {hi, lo} is: a 4x4 grid of 16
  // distinct rows plus a redundant copy of "hi".
  DatasetBuilder b({"hi", "lo", "hi_copy"});
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(b.AddRow({std::to_string(i / 4), std::to_string(i % 4),
                          std::to_string(i / 4)})
                    .ok());
  }
  return std::move(b).Finish();
}

// ------------------------------------------------------------ RefineEngine

TEST(RefineEngineTest, GainMatchesApplyOnEveryStep) {
  Rng rng(1);
  Dataset d = MakeUniformGridSample(5, 3, 200, &rng);
  for (GainStrategy strategy :
       {GainStrategy::kLookupTable, GainStrategy::kSortPartition}) {
    RefineEngine engine(d, strategy);
    for (AttributeIndex a = 0; a < 5; ++a) {
      uint64_t gain = engine.GainOf(a);
      uint64_t applied = engine.Apply(a);
      EXPECT_EQ(gain, applied) << "attr " << a;
    }
  }
}

TEST(RefineEngineTest, StrategiesComputeIdenticalGains) {
  Rng rng(2);
  Dataset d = MakeUniformGridSample(6, 4, 300, &rng);
  RefineEngine lookup(d, GainStrategy::kLookupTable);
  RefineEngine sorted(d, GainStrategy::kSortPartition);
  for (AttributeIndex a = 0; a < 6; ++a) {
    EXPECT_EQ(lookup.GainOf(a), sorted.GainOf(a));
  }
  // Also after a refinement step.
  lookup.Apply(2);
  sorted.Apply(2);
  for (AttributeIndex a = 0; a < 6; ++a) {
    EXPECT_EQ(lookup.GainOf(a), sorted.GainOf(a));
  }
}

TEST(RefineEngineTest, GreedyFindsTwoAttributeKey) {
  Dataset d = TwoAttributeKeyDataset();
  RefineEngine engine(d);
  auto result = engine.RunGreedy();
  EXPECT_TRUE(result.is_sample_key);
  EXPECT_EQ(result.chosen.size(), 2u);
  EXPECT_TRUE(result.chosen.Contains(1));  // "lo" is required
  EXPECT_TRUE(IsKey(d, result.chosen));
  EXPECT_EQ(result.remaining_unseparated, 0u);
}

TEST(RefineEngineTest, StepsRecordDecreasingCoverage) {
  Rng rng(3);
  Dataset d = MakeUniformGridSample(8, 2, 300, &rng);
  RefineEngine engine(d);
  auto result = engine.RunGreedy();
  // Greedy gains are non-increasing for set cover on a fixed ground set?
  // Not in general for arbitrary systems, but each step must cover > 0.
  uint64_t total = 0;
  for (const auto& step : result.steps) {
    EXPECT_GT(step.gain, 0u);
    total += step.gain;
  }
  EXPECT_EQ(total + result.remaining_unseparated, PairCount(300));
}

TEST(RefineEngineTest, DuplicateRowsPreventSampleKey) {
  DatasetBuilder b({"x", "y"});
  ASSERT_TRUE(b.AddRow({"1", "1"}).ok());
  ASSERT_TRUE(b.AddRow({"1", "1"}).ok());  // exact duplicate
  ASSERT_TRUE(b.AddRow({"2", "1"}).ok());
  Dataset d = std::move(b).Finish();
  RefineEngine engine(d);
  auto result = engine.RunGreedy();
  EXPECT_FALSE(result.is_sample_key);
  EXPECT_EQ(result.remaining_unseparated, 1u);
}

TEST(RefineEngineTest, MaxAttributesStopsEarly) {
  Rng rng(4);
  Dataset d = MakeUniformGridSample(6, 2, 200, &rng);
  RefineEngine engine(d);
  auto result = engine.RunGreedy(2);
  EXPECT_LE(result.chosen.size(), 2u);
}

// ----------------------------------------------------- end-to-end min key

TEST(MinKeyTest, TupleSamplingReturnsEpsKey) {
  Rng rng(5);
  Dataset d = MakeUniformGridSample(8, 6, 3000, &rng);
  MinKeyOptions opts;
  opts.eps = 0.01;
  auto result = FindApproxMinimumEpsKey(d, opts, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->covered_sample);
  // The returned set must be an eps-separation key of the full data
  // (this holds w.h.p.; the seed is fixed).
  EXPECT_TRUE(IsEpsSeparationKey(d, result->key, opts.eps));
}

TEST(MinKeyTest, MxReturnsEpsKey) {
  Rng rng(6);
  Dataset d = MakeUniformGridSample(8, 6, 3000, &rng);
  MinKeyOptions opts;
  opts.eps = 0.01;
  auto result = FindApproxMinimumEpsKeyMx(d, opts, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->covered_sample);
  EXPECT_TRUE(IsEpsSeparationKey(d, result->key, opts.eps));
}

TEST(MinKeyTest, GreedyKeyNotAbsurdlyLarge) {
  // Greedy guarantee: |key| <= (ln N + 1) |K*| on the sample.
  Rng rng(7);
  Dataset d = MakeUniformGridSample(10, 4, 2000, &rng);
  MinKeyOptions opts;
  opts.eps = 0.01;
  auto greedy = FindApproxMinimumEpsKey(d, opts, &rng);
  ASSERT_TRUE(greedy.ok());
  auto exact = ExactMinimumEpsKey(d, opts.eps, 10);
  ASSERT_TRUE(exact.ok());
  double ln_n = std::log(static_cast<double>(
                    PairCount(greedy->sample_size))) + 1.0;
  EXPECT_LE(static_cast<double>(greedy->key.size()),
            ln_n * static_cast<double>(std::max<size_t>(exact->size(), 1)));
}

TEST(MinKeyTest, ExactSampledNeverLargerThanGreedy) {
  Rng rng(20);
  Dataset d = MakeUniformGridSample(7, 4, 1500, &rng);
  MinKeyOptions opts;
  opts.eps = 0.02;
  Rng rng_a(21), rng_b(21);  // identical samples for both methods
  auto greedy = FindApproxMinimumEpsKey(d, opts, &rng_a);
  auto exact = FindMinimumEpsKeyExact(d, opts, &rng_b);
  ASSERT_TRUE(greedy.ok() && exact.ok());
  EXPECT_LE(exact->key.size(), greedy->key.size());
  // The exact-cover result is an eps-key of the full data w.h.p.
  EXPECT_TRUE(IsEpsSeparationKey(d, exact->key, opts.eps));
  EXPECT_TRUE(exact->covered_sample);
}

TEST(MinKeyTest, ExactSampledHandlesDuplicateRows) {
  DatasetBuilder b({"x", "y"});
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(b.AddRow({std::to_string(i % 5), std::to_string(i % 4)})
                    .ok());
  }
  ASSERT_TRUE(b.AddRow({"0", "0"}).ok());  // duplicate of row 0
  Dataset d = std::move(b).Finish();
  MinKeyOptions opts;
  opts.eps = 0.2;
  opts.sample_size = d.num_rows();  // keep everything
  Rng rng(22);
  auto exact = FindMinimumEpsKeyExact(d, opts, &rng);
  ASSERT_TRUE(exact.ok());
  EXPECT_FALSE(exact->covered_sample);  // duplicates are uncoverable
  // It still covers every coverable pair: both attributes are needed.
  EXPECT_EQ(exact->key.size(), 2u);
}

TEST(MinKeyTest, GreedyMinimumKeyOnFullData) {
  Dataset d = TwoAttributeKeyDataset();
  MinKeyResult r = GreedyMinimumKey(d);
  EXPECT_TRUE(r.covered_sample);
  EXPECT_TRUE(IsKey(d, r.key));
  EXPECT_EQ(r.key.size(), 2u);
}

TEST(MinKeyTest, InvalidOptionsRejected) {
  Rng rng(8);
  Dataset d = TwoAttributeKeyDataset();
  MinKeyOptions opts;
  opts.eps = 0.0;
  EXPECT_FALSE(FindApproxMinimumEpsKey(d, opts, &rng).ok());
  EXPECT_FALSE(FindApproxMinimumEpsKeyMx(d, opts, &rng).ok());
  opts.eps = 0.1;
  EXPECT_FALSE(FindApproxMinimumEpsKey(d, opts, nullptr).ok());
}

// -------------------------------------------------------------- bruteforce

TEST(BruteForceTest, FindsExactMinimumKey) {
  Dataset d = TwoAttributeKeyDataset();
  auto key = ExactMinimumKey(d, 3);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key->size(), 2u);
  EXPECT_TRUE(IsKey(d, *key));
}

TEST(BruteForceTest, NoKeyWithinBound) {
  Dataset d = TwoAttributeKeyDataset();
  auto key = ExactMinimumKey(d, 1);  // no single attribute is a key
  EXPECT_FALSE(key.ok());
}

TEST(BruteForceTest, EpsRelaxationShrinksKey) {
  Rng rng(9);
  Dataset d = MakeUniformGridSample(6, 3, 500, &rng);
  auto strict = ExactMinimumEpsKey(d, 0.0001, 6);
  auto loose = ExactMinimumEpsKey(d, 0.2, 6);
  ASSERT_TRUE(loose.ok());
  if (strict.ok()) {
    EXPECT_LE(loose->size(), strict->size());
  }
}

TEST(BruteForceTest, EmptySetQualifiesOnlyWithoutPairs) {
  // For eps < 1 the empty set can never be an eps-separation key of a
  // multi-row data set (it separates nothing); with a single row there
  // are no pairs and the empty set qualifies vacuously.
  DatasetBuilder b({"x"});
  ASSERT_TRUE(b.AddRow({"solo"}).ok());
  Dataset one = std::move(b).Finish();
  auto key = ExactMinimumEpsKey(one, 0.5, 1);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key->size(), 0u);

  Rng rng(10);
  Dataset d = MakeUniformGridSample(3, 3, 50, &rng);
  auto loose = ExactMinimumEpsKey(d, 0.9999, 3);
  ASSERT_TRUE(loose.ok());
  EXPECT_GE(loose->size(), 1u);
}

TEST(BruteForceTest, DuplicateRowsMakeKeyImpossible) {
  DatasetBuilder b({"x"});
  ASSERT_TRUE(b.AddRow({"same"}).ok());
  ASSERT_TRUE(b.AddRow({"same"}).ok());
  Dataset d = std::move(b).Finish();
  EXPECT_FALSE(ExactMinimumKey(d, 1).ok());
}

}  // namespace
}  // namespace qikey
