#!/usr/bin/env python3
"""Golden end-to-end regression driver for `qikey discover`.

Usage:
  run_golden.py <qikey-binary> <csv> <expected-file> [--update]

Runs the CLI on the CSV with every filter backend (fixed seed), extracts
the emitted minimal key and the verify verdict from the report, and
diffs them against the committed expectation:

    tuple: {first, last} ACCEPT
    mx: {first, last} ACCEPT
    bitset: {first, last} ACCEPT

Any drift in the discovered frontier — from filter, greedy, minimize, or
backend changes — fails the test. `--update` rewrites the expected file
from the current output (for intentional changes; review the diff).
"""

import re
import subprocess
import sys

BACKENDS = ["tuple", "mx", "bitset"]
SEED = "1"
EPS = "0.01"


def discover(binary, csv, backend):
    proc = subprocess.run(
        [binary, "discover", csv, "--backend", backend, "--seed", SEED,
         "--eps", EPS],
        capture_output=True,
        text=True,
        timeout=120,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{backend}: exit {proc.returncode}\nstdout:\n{proc.stdout}"
            f"\nstderr:\n{proc.stderr}"
        )
    key = re.search(r"^\s+(\{.*\})$", proc.stdout, re.MULTILINE)
    verdict = re.search(r"verify: (ACCEPT|REJECT)", proc.stdout)
    if key is None or verdict is None:
        raise RuntimeError(f"{backend}: cannot parse report:\n{proc.stdout}")
    return f"{backend}: {key.group(1)} {verdict.group(1)}"


def main():
    if len(sys.argv) < 4:
        print(__doc__)
        return 2
    binary, csv, expected_path = sys.argv[1:4]
    update = "--update" in sys.argv[4:]

    actual = [discover(binary, csv, backend) for backend in BACKENDS]
    if update:
        with open(expected_path, "w") as f:
            f.write("\n".join(actual) + "\n")
        print(f"updated {expected_path}")
        return 0

    with open(expected_path) as f:
        expected = [line.rstrip("\n") for line in f if line.strip()]
    if actual != expected:
        print(f"golden mismatch for {csv}")
        for got, want in zip(actual + [""] * len(expected),
                             expected + [""] * len(actual)):
            marker = "  " if got == want else "! "
            print(f"{marker}got:  {got}\n{marker}want: {want}")
        print("(intentional change? re-run with --update and commit)")
        return 1
    print(f"ok: {csv} matches {expected_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
