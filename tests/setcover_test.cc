#include <gtest/gtest.h>

#include "setcover/set_cover.h"

namespace qikey {
namespace {

SetCoverInstance ChainInstance() {
  // Universe {0..5}; sets: {0,1},{1,2},{2,3},{3,4},{4,5},{0..5 odd}.
  SetCoverInstance inst(6, 6);
  auto add = [&](size_t s, std::initializer_list<size_t> elems) {
    for (size_t e : elems) inst.Add(s, e);
  };
  add(0, {0, 1});
  add(1, {1, 2});
  add(2, {2, 3});
  add(3, {3, 4});
  add(4, {4, 5});
  add(5, {1, 3, 5});
  return inst;
}

TEST(SetCoverTest, ContainsReflectsAdds) {
  SetCoverInstance inst = ChainInstance();
  EXPECT_TRUE(inst.Contains(0, 1));
  EXPECT_FALSE(inst.Contains(0, 2));
  EXPECT_TRUE(inst.Contains(5, 5));
}

TEST(SetCoverTest, GreedyCoversUniverse) {
  SetCoverInstance inst = ChainInstance();
  SetCoverResult r = GreedySetCover(inst);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.uncovered, 0u);
  // Verify the chosen sets really cover.
  std::vector<bool> covered(6, false);
  for (uint32_t s : r.chosen) {
    for (size_t e = 0; e < 6; ++e) {
      if (inst.Contains(s, e)) covered[e] = true;
    }
  }
  for (bool c : covered) EXPECT_TRUE(c);
}

TEST(SetCoverTest, GreedyReportsGapWhenUncoverable) {
  SetCoverInstance inst(4, 1);
  inst.Add(0, 0);
  inst.Add(0, 2);
  SetCoverResult r = GreedySetCover(inst);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.uncovered, 2u);
  EXPECT_EQ(r.chosen.size(), 1u);
}

TEST(SetCoverTest, ExactFindsOptimum) {
  SetCoverInstance inst = ChainInstance();
  auto exact = ExactSetCover(inst, 6);
  ASSERT_TRUE(exact.ok());
  // Optimal cover: {0,1}, {2,3}, {4,5} -> 3 sets. Set 5 + {0,1} + ...
  // also 3; the optimum is 3.
  EXPECT_EQ(exact->size(), 3u);
}

TEST(SetCoverTest, ExactRespectsBudget) {
  SetCoverInstance inst = ChainInstance();
  auto too_small = ExactSetCover(inst, 2);
  EXPECT_FALSE(too_small.ok());
  EXPECT_EQ(too_small.status().code(), StatusCode::kNotFound);
}

TEST(SetCoverTest, ExactNeverWorseThanGreedy) {
  // Classic greedy-suboptimal family: universe 0..7,
  // two "halves" {0..3},{4..7} cover optimally in 2, while a
  // tempting big set of 5 elements lures greedy into 3.
  SetCoverInstance inst(8, 3);
  for (size_t e = 0; e < 4; ++e) inst.Add(0, e);
  for (size_t e = 4; e < 8; ++e) inst.Add(1, e);
  for (size_t e = 1; e < 6; ++e) inst.Add(2, e);
  SetCoverResult greedy = GreedySetCover(inst);
  auto exact = ExactSetCover(inst, 8);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(greedy.complete);
  EXPECT_LE(exact->size(), greedy.chosen.size());
  EXPECT_EQ(exact->size(), 2u);
  EXPECT_EQ(greedy.chosen.size(), 3u);  // greedy takes the 5-element set
}

TEST(SetCoverTest, SingleElementUniverse) {
  SetCoverInstance inst(1, 2);
  inst.Add(1, 0);
  SetCoverResult r = GreedySetCover(inst);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.chosen, (std::vector<uint32_t>{1}));
  auto exact = ExactSetCover(inst, 1);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->size(), 1u);
}

TEST(SetCoverTest, EmptyUniverseIsTriviallyCovered) {
  SetCoverInstance inst(0, 3);
  SetCoverResult r = GreedySetCover(inst);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.chosen.empty());
  auto exact = ExactSetCover(inst, 0);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->empty());
}

}  // namespace
}  // namespace qikey
