#include <gtest/gtest.h>

#include <algorithm>

#include "core/afd.h"
#include "core/anonymity.h"
#include "core/key_enumeration.h"
#include "core/masking.h"
#include "core/separation.h"
#include "data/dataset_builder.h"
#include "data/generators/tabular.h"
#include "data/generators/uniform_grid.h"
#include "util/rng.h"

namespace qikey {
namespace {

/// id is a key; (hi, lo) is the only other minimal key; rest are weak.
Dataset LatticeDataset() {
  DatasetBuilder b({"id", "hi", "lo", "flag"});
  for (int i = 0; i < 36; ++i) {
    EXPECT_TRUE(b.AddRow({std::to_string(i), std::to_string(i / 6),
                          std::to_string(i % 6), std::to_string(i % 2)})
                    .ok());
  }
  return std::move(b).Finish();
}

// ------------------------------------------------------------ enumeration

TEST(KeyEnumerationTest, FindsAllMinimalKeys) {
  Dataset d = LatticeDataset();
  KeyEnumerationOptions opts;
  opts.max_size = 4;
  auto keys = EnumerateMinimalKeys(d, opts);
  ASSERT_TRUE(keys.ok());
  // Minimal keys: {id} and {hi, lo}. ({lo, flag} gives 12 classes of 3?
  // lo has 6 values x flag 2 = 12 cells for 36 rows -> not a key.)
  ASSERT_EQ(keys->size(), 2u);
  EXPECT_EQ((*keys)[0], AttributeSet::FromIndices(4, {0}));
  EXPECT_EQ((*keys)[1], AttributeSet::FromIndices(4, {1, 2}));
}

TEST(KeyEnumerationTest, ResultsAreKeysAndMinimal) {
  Rng rng(3);
  Dataset d = MakeUniformGridSample(6, 4, 300, &rng);
  KeyEnumerationOptions opts;
  opts.eps = 0.01;
  opts.max_size = 6;
  auto keys = EnumerateMinimalKeys(d, opts);
  ASSERT_TRUE(keys.ok());
  const double budget = opts.eps * static_cast<double>(d.num_pairs());
  for (const AttributeSet& key : *keys) {
    EXPECT_LE(
        static_cast<double>(ExactUnseparatedPairs(d, key)), budget);
    // Minimality: dropping any attribute breaks the property.
    for (AttributeIndex a : key.ToIndices()) {
      AttributeSet smaller = key;
      smaller.Remove(a);
      EXPECT_GT(static_cast<double>(ExactUnseparatedPairs(d, smaller)),
                budget);
    }
    // No returned key contains another.
    for (const AttributeSet& other : *keys) {
      if (other == key) continue;
      EXPECT_FALSE(other.IsSubsetOf(key));
    }
  }
}

TEST(KeyEnumerationTest, EpsRelaxationFindsSmallerKeys) {
  Rng rng(4);
  Dataset d = MakeUniformGridSample(5, 3, 400, &rng);
  KeyEnumerationOptions strict;
  strict.eps = 0.0;
  strict.max_size = 5;
  KeyEnumerationOptions loose;
  loose.eps = 0.3;
  loose.max_size = 5;
  auto strict_keys = EnumerateMinimalKeys(d, strict);
  auto loose_keys = EnumerateMinimalKeys(d, loose);
  ASSERT_TRUE(strict_keys.ok() && loose_keys.ok());
  auto min_size = [](const std::vector<AttributeSet>& keys) {
    size_t best = ~size_t{0};
    for (const auto& k : keys) best = std::min(best, k.size());
    return best;
  };
  if (!strict_keys->empty() && !loose_keys->empty()) {
    EXPECT_LE(min_size(*loose_keys), min_size(*strict_keys));
  }
}

TEST(KeyEnumerationTest, BudgetExhaustionIsReported) {
  Rng rng(5);
  Dataset d = MakeUniformGridSample(12, 2, 100, &rng);
  KeyEnumerationOptions opts;
  opts.max_size = 12;
  opts.max_candidates = 20;  // absurdly small
  auto keys = EnumerateMinimalKeys(d, opts);
  EXPECT_FALSE(keys.ok());
  EXPECT_EQ(keys.status().code(), StatusCode::kOutOfRange);
}

// ----------------------------------------------------------------- masking

TEST(MaskingTest, ExactMaskingKillsSeparation) {
  Dataset d = LatticeDataset();
  double eps = 0.05;
  MaskingResult r = GreedyMaskingExact(d, eps);
  EXPECT_TRUE(r.achieved);
  EXPECT_LE(r.residual_separation, 1.0 - eps + 1e-12);
  // Verification from first principles: remaining attributes are not an
  // eps-key, hence (by monotonicity) no released subset is.
  AttributeSet remaining =
      AttributeSet::All(4).Difference(r.masked);
  EXPECT_FALSE(IsEpsSeparationKey(d, remaining, eps));
  // It must mask id (a standalone key).
  EXPECT_TRUE(r.masked.Contains(0));
}

TEST(MaskingTest, StepsAreMonotoneDecreasing) {
  Dataset d = LatticeDataset();
  MaskingResult r = GreedyMaskingExact(d, 0.5);
  uint64_t prev = ~uint64_t{0};
  for (const MaskingStep& step : r.steps) {
    EXPECT_LE(step.separated_after, prev);
    prev = step.separated_after;
  }
}

TEST(MaskingTest, SampledMaskingMatchesExactOnFullSample) {
  Dataset d = LatticeDataset();
  MaskingOptions opts;
  opts.eps = 0.05;
  opts.sample_size = d.num_rows();  // sample everything: must match exact
  Rng rng(6);
  auto sampled = FindMaskingSet(d, opts, &rng);
  ASSERT_TRUE(sampled.ok());
  MaskingResult exact = GreedyMaskingExact(d, 0.05);
  EXPECT_EQ(sampled->masked, exact.masked);
}

TEST(MaskingTest, BudgetLimitsRespected) {
  Dataset d = LatticeDataset();
  MaskingOptions opts;
  opts.eps = 0.9;  // very aggressive target
  opts.max_masked = 1;
  Rng rng(7);
  auto r = FindMaskingSet(d, opts, &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->masked.size(), 1u);
}

TEST(MaskingTest, RejectsBadArguments) {
  Dataset d = LatticeDataset();
  MaskingOptions opts;
  Rng rng(8);
  EXPECT_FALSE(FindMaskingSet(d, opts, nullptr).ok());
  opts.eps = 0.0;
  EXPECT_FALSE(FindMaskingSet(d, opts, &rng).ok());
}

// -------------------------------------------------------------------- AFD

Dataset FdDataset() {
  // dept -> floor exactly; city -> dept with some noise.
  DatasetBuilder b({"dept", "floor", "city", "emp"});
  const char* depts[] = {"eng", "sales", "ops"};
  const char* floors[] = {"3", "1", "2"};
  for (int i = 0; i < 120; ++i) {
    int dep = i % 3;
    // city determines dept except for 6 "travelers".
    int city = (i < 6) ? (dep + 1) % 3 : dep;
    // += instead of "e" + to_string: gcc 12 -Wrestrict FP (PR105651).
    std::string emp = "e";
    emp += std::to_string(i);
    EXPECT_TRUE(b.AddRow({depts[dep], floors[dep],
                          std::string("city") + std::to_string(city), emp})
                    .ok());
  }
  return std::move(b).Finish();
}

TEST(AfdTest, ExactFdHasZeroError) {
  Dataset d = FdDataset();
  AfdError err = ComputeAfdError(
      d, AttributeSet::FromIndices(4, {0}), /*rhs=*/1);
  EXPECT_EQ(err.violating, 0u);
  EXPECT_DOUBLE_EQ(err.g2, 0.0);
  EXPECT_DOUBLE_EQ(err.conditional, 0.0);
  EXPECT_TRUE(HoldsApproxFd(d, AttributeSet::FromIndices(4, {0}), 1, 0.0));
}

TEST(AfdTest, NoisyFdHasSmallError) {
  Dataset d = FdDataset();
  AfdError err = ComputeAfdError(
      d, AttributeSet::FromIndices(4, {2}), /*rhs=*/0);
  EXPECT_GT(err.violating, 0u);
  EXPECT_LT(err.conditional, 0.25);
  EXPECT_GT(err.conditional, 0.0);
}

TEST(AfdTest, ViolatingCountIsExact) {
  // Cross-check against a brute-force pair scan.
  Dataset d = FdDataset();
  AttributeSet lhs = AttributeSet::FromIndices(4, {2});
  AttributeIndex rhs = 0;
  uint64_t brute = 0;
  for (RowIndex i = 0; i < d.num_rows(); ++i) {
    for (RowIndex j = i + 1; j < d.num_rows(); ++j) {
      if (d.RowsAgreeOn(i, j, {2}) && d.code(i, rhs) != d.code(j, rhs)) {
        ++brute;
      }
    }
  }
  EXPECT_EQ(ComputeAfdError(d, lhs, rhs).violating, brute);
}

TEST(AfdTest, DiscoveryFindsMinimalLhs) {
  Dataset d = FdDataset();
  auto found = DiscoverMinimalAfds(d, /*rhs=*/1, /*max_cond=*/0.0,
                                   /*max_size=*/2);
  ASSERT_TRUE(found.ok());
  // dept -> floor exactly; emp -> floor trivially (emp is a key).
  bool has_dept = false, has_emp = false;
  for (const AfdCandidate& c : *found) {
    if (c.lhs == AttributeSet::FromIndices(4, {0})) has_dept = true;
    if (c.lhs == AttributeSet::FromIndices(4, {3})) has_emp = true;
    // Minimality of every returned LHS.
    for (AttributeIndex a : c.lhs.ToIndices()) {
      AttributeSet smaller = c.lhs;
      smaller.Remove(a);
      EXPECT_GT(ComputeAfdError(d, smaller, 1).conditional, 0.0);
    }
  }
  EXPECT_TRUE(has_dept);
  EXPECT_TRUE(has_emp);
}

TEST(AfdTest, SketchEstimateTracksExact) {
  Rng rng(9);
  TabularSpec spec;
  spec.num_rows = 8000;
  spec.attributes = {{"g4", 4, 0.4, -1, 0.0},
                     {"g4_fn", 7, 0.0, 0, 0.05},  // noisy function of g4
                     {"g40", 40, 0.6, -1, 0.0}};
  Dataset d = MakeTabular(spec, &rng);
  NonSeparationSketchOptions opts;
  opts.k = 2;
  opts.alpha = 0.01;
  opts.eps = 0.05;
  opts.big_k = 6.0;
  auto sketch = NonSeparationSketch::Build(d, opts, &rng);
  ASSERT_TRUE(sketch.ok());
  AttributeSet lhs = AttributeSet::FromIndices(3, {0});
  AfdError exact = ComputeAfdError(d, lhs, 1);
  auto est = EstimateAfdError(*sketch, lhs, 1);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->g2, exact.g2, 0.15 * exact.g2 + 1e-4);
  EXPECT_NEAR(est->conditional, exact.conditional,
              0.15 * exact.conditional + 1e-3);
}

TEST(AfdTest, RejectsRhsInsideLhs) {
  Dataset d = FdDataset();
  Rng rng(10);
  NonSeparationSketchOptions opts;
  opts.sample_size = 50;
  auto sketch = NonSeparationSketch::Build(d, opts, &rng);
  ASSERT_TRUE(sketch.ok());
  EXPECT_FALSE(
      EstimateAfdError(*sketch, AttributeSet::FromIndices(4, {1}), 1).ok());
}

// -------------------------------------------------------------- anonymity

TEST(AnonymityTest, LevelIsMinClassSize) {
  Dataset d = LatticeDataset();
  // flag: two classes of 18 -> 18-anonymous.
  EXPECT_EQ(AnonymityLevel(d, AttributeSet::FromIndices(4, {3})), 18u);
  // id: all unique -> 1-anonymous.
  EXPECT_EQ(AnonymityLevel(d, AttributeSet::FromIndices(4, {0})), 1u);
}

TEST(AnonymityTest, RowsBelowK) {
  Dataset d = LatticeDataset();
  AttributeSet flag = AttributeSet::FromIndices(4, {3});
  EXPECT_DOUBLE_EQ(RowsBelowK(d, flag, 18), 0.0);
  EXPECT_DOUBLE_EQ(RowsBelowK(d, flag, 19), 1.0);
  AttributeSet id = AttributeSet::FromIndices(4, {0});
  EXPECT_DOUBLE_EQ(RowsBelowK(d, id, 2), 1.0);
}

TEST(AnonymityTest, SuppressionAchievesK) {
  // hi: 6 classes of 6; add some rows to make classes ragged.
  DatasetBuilder b({"g"});
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(b.AddRow({"big"}).ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(b.AddRow({"small"}).ok());
  ASSERT_TRUE(b.AddRow({"solo"}).ok());
  Dataset d = std::move(b).Finish();
  AttributeSet g = AttributeSet::FromIndices(1, {0});
  std::vector<RowIndex> suppressed = SuppressForKAnonymity(d, g, 3);
  EXPECT_EQ(suppressed.size(), 3u);  // the 2 "small" + 1 "solo"
  // Remaining rows are 3-anonymous.
  std::vector<RowIndex> keep;
  for (RowIndex r = 0; r < d.num_rows(); ++r) {
    if (std::find(suppressed.begin(), suppressed.end(), r) ==
        suppressed.end()) {
      keep.push_back(r);
    }
  }
  Dataset rest = d.SelectRows(keep);
  EXPECT_GE(AnonymityLevel(rest, AttributeSet::FromIndices(1, {0})), 3u);
}

TEST(AnonymityTest, AuditFindsTheRiskyIdentifiers) {
  Dataset d = LatticeDataset();
  Rng rng(11);
  auto report = AuditQuasiIdentifiers(d, 0.05, 2, &rng);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->quasi_identifiers.empty());
  // The top entry must be a genuine eps-key with uniqueness ~1.
  const QuasiIdentifierRisk& top = report->quasi_identifiers.front();
  EXPECT_GE(top.separation_ratio, 0.95);
  EXPECT_EQ(top.anonymity_level, 1u);
  // Report is sorted by separation ratio.
  for (size_t i = 1; i < report->quasi_identifiers.size(); ++i) {
    EXPECT_GE(report->quasi_identifiers[i - 1].separation_ratio,
              report->quasi_identifiers[i].separation_ratio);
  }
  // Formatting does not crash and mentions the schema names.
  std::string text = FormatRiskReport(*report, d.schema());
  EXPECT_NE(text.find("id"), std::string::npos);
}

}  // namespace
}  // namespace qikey
