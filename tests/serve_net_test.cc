// Loopback integration tests for the qikey serve network layer: the
// QIKEY/1 wire protocol, the epoll reactor, admission control, idle
// reaping, snapshot hot-swap, and graceful drain — all over real
// sockets against a real QueryEngine, with server responses required
// to be BIT-IDENTICAL to the shared encoder run directly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/generators/tabular.h"
#include "engine/pipeline.h"
#include "serve/conn.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "snapfile/snapfile.h"
#include "util/net.h"
#include "util/rng.h"

namespace qikey {
namespace {

// --------------------------------------------------------------------
// Protocol module (satellite: versioning + old request files parse)
// --------------------------------------------------------------------

TEST(ProtocolTest, HelloRoundTrip) {
  EXPECT_TRUE(IsHelloLine("QIKEY/1"));
  EXPECT_TRUE(IsHelloLine("QIKEY/9"));
  EXPECT_FALSE(IsHelloLine("is-key a,b"));
  EXPECT_FALSE(IsHelloLine("QIKEY/"));
  EXPECT_FALSE(IsHelloLine(""));

  auto v1 = ParseHelloLine(kHelloV1);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(*v1, ProtocolVersion::kV1);
  EXPECT_EQ(FormatHelloLine(*v1), "QIKEY/1 ready");

  // A version this build does not speak is a validation error, not a
  // parse error (the line is well-formed protocol).
  auto v9 = ParseHelloLine("QIKEY/9");
  EXPECT_FALSE(v9.ok());
}

TEST(ProtocolTest, UnversionedRequestFileStillParsesAsV1) {
  Schema schema({"a", "b", "c"});
  const char* body = "# comment\nis-key a,b\n\nmin-key\n";
  auto bare = ParseQueryRequests(body, schema);
  ASSERT_TRUE(bare.ok()) << bare.status().ToString();
  ASSERT_EQ(bare->size(), 2u);

  // The same body with an explicit v1 hello header parses identically:
  // the header selects the version, it is not a request.
  auto versioned = ParseQueryRequests(std::string("QIKEY/1\n") + body, schema);
  ASSERT_TRUE(versioned.ok()) << versioned.status().ToString();
  ASSERT_EQ(versioned->size(), 2u);
  EXPECT_EQ((*bare)[0].kind, (*versioned)[0].kind);
  EXPECT_EQ((*bare)[0].attrs, (*versioned)[0].attrs);

  // An unsupported version header rejects the whole file.
  EXPECT_FALSE(ParseQueryRequests(std::string("QIKEY/2\n") + body, schema).ok());
}

TEST(ProtocolTest, ErrorCodeNamesAndStatusMapping) {
  EXPECT_STREQ(ServeErrorCodeName(ServeErrorCode::kParse), "parse");
  EXPECT_STREQ(ServeErrorCodeName(ServeErrorCode::kValidation), "validation");
  EXPECT_STREQ(ServeErrorCodeName(ServeErrorCode::kOverload), "overload");
  EXPECT_STREQ(ServeErrorCodeName(ServeErrorCode::kSnapshotUnavailable),
               "unavailable");
  EXPECT_STREQ(ServeErrorCodeName(ServeErrorCode::kInternal), "internal");

  EXPECT_EQ(ServeErrorCodeFromStatus(Status::InvalidArgument("x")),
            ServeErrorCode::kValidation);
  EXPECT_EQ(ServeErrorCodeFromStatus(Status::NotFound("x")),
            ServeErrorCode::kSnapshotUnavailable);
  EXPECT_EQ(ServeErrorCodeFromStatus(Status::IOError("x")),
            ServeErrorCode::kInternal);
}

TEST(ProtocolTest, ErrorLineFlattensNewlines) {
  std::string line = EncodeErrorLine(ServeErrorCode::kOverload, "a\nb\rc");
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.find('\r'), std::string::npos);
  EXPECT_EQ(line.rfind("err overload ", 0), 0u) << line;
}

// --------------------------------------------------------------------
// LineSplitter (framing under the per-line cap)
// --------------------------------------------------------------------

TEST(LineSplitterTest, SplitsAndCarriesPartials) {
  LineSplitter splitter(64);
  std::vector<std::string> lines;
  EXPECT_TRUE(splitter.Ingest("ab", &lines));
  EXPECT_TRUE(lines.empty());
  EXPECT_EQ(splitter.buffered_bytes(), 2u);
  EXPECT_TRUE(splitter.Ingest("c\r\nsecond\nthi", &lines));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "abc");  // CR stripped, partial joined
  EXPECT_EQ(lines[1], "second");
  EXPECT_TRUE(splitter.Ingest("rd\n", &lines));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2], "third");
}

TEST(LineSplitterTest, OverflowIsPermanent) {
  LineSplitter splitter(8);
  std::vector<std::string> lines;
  EXPECT_FALSE(splitter.Ingest("waaaaay too long for the cap\n", &lines));
  EXPECT_TRUE(splitter.overflowed());
  EXPECT_TRUE(lines.empty());
  // Even a well-framed follow-up is refused: framing is lost for good.
  EXPECT_FALSE(splitter.Ingest("ok\n", &lines));
}

// --------------------------------------------------------------------
// Loopback server fixture
// --------------------------------------------------------------------

/// A table whose first column is a row id (an exact key by
/// construction) over low-cardinality columns.
Dataset MakeKeyedData(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<ValueCode> id(rows);
  for (size_t i = 0; i < rows; ++i) id[i] = static_cast<ValueCode>(i);
  std::vector<Column> columns;
  columns.emplace_back(std::move(id));
  for (uint32_t card : {5u, 7u, 3u, 11u, 2u}) {
    std::vector<ValueCode> codes(rows);
    for (size_t i = 0; i < rows; ++i) {
      codes[i] = static_cast<ValueCode>(rng.Uniform(card));
    }
    columns.emplace_back(std::move(codes), card);
  }
  return Dataset(
      Schema({"id", "c1", "c2", "c3", "c4", "c5"}), std::move(columns));
}

/// Store + engine + running server over one published pipeline
/// snapshot; tears everything down in order.
struct TestServer {
  explicit TestServer(ServerOptions options = {}, bool publish = true,
                      size_t rows = 96) {
    data = std::make_unique<Dataset>(MakeKeyedData(rows, /*seed=*/7));
    if (publish) {
      PipelineOptions popts;
      popts.eps = 0.01;
      Rng rng(11);
      auto result = DiscoveryPipeline(popts).Run(*data, &rng);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      auto snapshot = SnapshotFromPipelineResult(*result, popts.eps);
      EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
      auto epoch = store.Publish(std::move(*snapshot));
      EXPECT_TRUE(epoch.ok()) << epoch.status().ToString();
    }
    QueryEngineOptions eopts;
    eopts.num_threads = 1;
    engine = std::make_unique<QueryEngine>(&store, eopts);
    options.listen = {"127.0.0.1", 0};
    server = std::make_unique<ServeServer>(engine.get(), data->schema(),
                                           options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  ~TestServer() {
    server->Shutdown();
    server->Join();
  }

  BlockingLineClient Connect(bool eat_greeting = true,
                             int recv_timeout_ms = 5000) {
    auto fd = OpenClientSocket({"127.0.0.1", server->port()},
                               recv_timeout_ms);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    BlockingLineClient client(std::move(*fd));
    if (eat_greeting) {
      auto greeting = client.RecvLine();
      EXPECT_TRUE(greeting.ok()) << greeting.status().ToString();
      if (greeting.ok()) {
        EXPECT_EQ(*greeting, "QIKEY/1 ready");
      }
    }
    return client;
  }

  std::unique_ptr<Dataset> data;
  SnapshotStore store;
  std::unique_ptr<QueryEngine> engine;
  std::unique_ptr<ServeServer> server;
};

/// Renders a request back into its wire line using schema names.
std::string RequestLine(const QueryRequest& request, const Schema& schema) {
  auto names = [&](const AttributeSet& set) {
    std::string out;
    for (AttributeIndex a : set.ToIndices()) {
      if (!out.empty()) out += ',';
      out += schema.name(a);
    }
    return out;
  };
  switch (request.kind) {
    case QueryKind::kIsKey:
      return "is-key " + names(request.attrs);
    case QueryKind::kSeparation:
      return "separation " + names(request.attrs);
    case QueryKind::kMinKey:
      return "min-key";
    case QueryKind::kAfd:
      return "afd " + names(request.attrs) + " -> " +
             schema.name(request.rhs);
    case QueryKind::kAnonymity:
      return "anonymity " + names(request.attrs) + " " +
             std::to_string(request.k);
  }
  return "";
}

/// A deterministic mixed-kind wire workload (every line parses).
std::vector<std::string> MakeWireWorkload(const Schema& schema, size_t count,
                                          uint64_t seed) {
  Rng rng(seed);
  size_t m = schema.num_attributes();
  std::vector<std::string> lines;
  for (size_t i = 0; i < count; ++i) {
    QueryRequest request;
    switch (rng.Uniform(5)) {
      case 0:
        request.kind = QueryKind::kIsKey;
        request.attrs = AttributeSet::Random(m, 0.4, &rng);
        break;
      case 1:
        request.kind = QueryKind::kSeparation;
        request.attrs = AttributeSet::Random(m, 0.4, &rng);
        break;
      case 2:
        request.kind = QueryKind::kMinKey;
        request.attrs = AttributeSet(m);
        break;
      case 3: {
        request.kind = QueryKind::kAfd;
        AttributeIndex rhs = static_cast<AttributeIndex>(
            rng.Uniform(static_cast<uint32_t>(m)));
        request.attrs = AttributeSet::Random(m, 0.3, &rng);
        request.attrs.Remove(rhs);
        request.rhs = rhs;
        // The grammar needs a non-empty lhs.
        if (request.attrs.ToIndices().empty()) {
          request.attrs.Add(rhs == 0 ? 1 : 0);
        }
        break;
      }
      default:
        request.kind = QueryKind::kAnonymity;
        request.attrs = AttributeSet::Random(m, 0.3, &rng);
        request.k = 2 + rng.Uniform(3);
        break;
    }
    if (request.kind != QueryKind::kMinKey &&
        request.attrs.ToIndices().empty()) {
      request.attrs.Add(0);
    }
    lines.push_back(RequestLine(request, schema));
  }
  return lines;
}

/// What the server MUST answer for `lines`: parse with the shared
/// parser, execute directly on the engine, encode with the shared
/// encoder. Any divergence on the socket is a codec fork.
std::vector<std::string> ExpectedResponses(
    const QueryEngine& engine, const Schema& schema,
    const std::vector<std::string>& lines) {
  std::vector<QueryRequest> requests;
  for (const std::string& line : lines) {
    auto request = ParseQueryRequest(line, schema);
    EXPECT_TRUE(request.ok()) << line << ": " << request.status().ToString();
    requests.push_back(std::move(*request));
  }
  std::vector<QueryResponse> responses = engine.ExecuteBatch(requests);
  std::vector<std::string> expected;
  for (size_t i = 0; i < requests.size(); ++i) {
    expected.push_back(EncodeResponseLine(requests[i], responses[i], schema));
  }
  return expected;
}

// --------------------------------------------------------------------
// Bit-identical serving
// --------------------------------------------------------------------

TEST(ServeNetTest, PipelinedClientGetsBitIdenticalResponses) {
  TestServer ts;
  const Schema& schema = ts.data->schema();
  std::vector<std::string> lines = MakeWireWorkload(schema, 60, 21);
  std::vector<std::string> expected =
      ExpectedResponses(*ts.engine, schema, lines);

  BlockingLineClient client = ts.Connect();
  std::string blob;
  for (const std::string& line : lines) blob += line + "\n";
  ASSERT_TRUE(client.SendAll(blob).ok());  // one burst: full pipelining
  for (size_t i = 0; i < lines.size(); ++i) {
    auto got = client.RecvLine();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, expected[i]) << "line " << i << ": " << lines[i];
  }
}

TEST(ServeNetTest, ConcurrentClientsEachBitIdentical) {
  ServerOptions options;
  options.worker_threads = 2;
  TestServer ts(options);
  const Schema& schema = ts.data->schema();

  constexpr size_t kClients = 4;
  constexpr size_t kLines = 40;
  std::vector<std::vector<std::string>> all_lines, all_expected;
  for (size_t c = 0; c < kClients; ++c) {
    all_lines.push_back(MakeWireWorkload(schema, kLines, 100 + c));
    all_expected.push_back(
        ExpectedResponses(*ts.engine, schema, all_lines.back()));
  }

  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      BlockingLineClient client = ts.Connect();
      for (size_t i = 0; i < kLines; ++i) {
        // Request/response lockstep: interleaves batches across
        // clients as hard as a 1-core box allows.
        if (!client.SendLine(all_lines[c][i]).ok()) {
          failures[c] = "send failed at line " + std::to_string(i);
          return;
        }
        auto got = client.RecvLine();
        if (!got.ok() || *got != all_expected[c][i]) {
          failures[c] = "line " + std::to_string(i) + ": got '" +
                        (got.ok() ? *got : got.status().ToString()) +
                        "' want '" + all_expected[c][i] + "'";
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }
}

// --------------------------------------------------------------------
// Protocol errors on the wire
// --------------------------------------------------------------------

TEST(ServeNetTest, MalformedLineAnswersErrAndKeepsConnectionOpen) {
  TestServer ts;
  BlockingLineClient client = ts.Connect();
  ASSERT_TRUE(client.SendLine("gibberish query").ok());
  auto err = client.RecvLine();
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->rfind("err parse ", 0), 0u) << *err;

  // The connection survives a parse error: framing was never lost.
  ASSERT_TRUE(client.SendLine("min-key").ok());
  auto ok = client.RecvLine();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->rfind("ok ", 0), 0u) << *ok;
}

TEST(ServeNetTest, UnsupportedHelloIsValidationErrorButConnectionSurvives) {
  TestServer ts;
  BlockingLineClient client = ts.Connect();
  ASSERT_TRUE(client.SendLine("QIKEY/2").ok());
  auto err = client.RecvLine();
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->rfind("err validation ", 0), 0u) << *err;

  ASSERT_TRUE(client.SendLine("QIKEY/1").ok());
  auto ok = client.RecvLine();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "ok v1");
}

TEST(ServeNetTest, OversizedLineGetsErrParseThenClose) {
  ServerOptions options;
  options.max_line_bytes = 64;
  TestServer ts(options);
  BlockingLineClient client = ts.Connect();
  ASSERT_TRUE(
      client.SendLine("is-key " + std::string(200, 'x')).ok());
  auto err = client.RecvLine();
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->rfind("err parse ", 0), 0u) << *err;
  // Framing is lost, so the server closes: next read is EOF.
  EXPECT_FALSE(client.RecvLine().ok());
}

TEST(ServeNetTest, NoSnapshotAnswersErrUnavailable) {
  TestServer ts({}, /*publish=*/false);
  BlockingLineClient client = ts.Connect();
  ASSERT_TRUE(client.SendLine("min-key").ok());
  auto err = client.RecvLine();
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->rfind("err unavailable ", 0), 0u) << *err;
}

// --------------------------------------------------------------------
// Backpressure
// --------------------------------------------------------------------

TEST(ServeNetTest, FloodIsShedWithErrOverloadNeverUnbounded) {
  ServerOptions options;
  options.max_pending_per_conn = 2;
  options.max_batch = 1;
  TestServer ts(options);
  BlockingLineClient client = ts.Connect();

  constexpr size_t kFlood = 64;
  std::string blob;
  for (size_t i = 0; i < kFlood; ++i) blob += "min-key\n";
  ASSERT_TRUE(client.SendAll(blob).ok());

  // Exactly one response per request line — admitted lines answer
  // `ok`, shed lines answer `err overload` immediately (possibly ahead
  // of earlier in-flight responses; see server.h).
  size_t ok = 0, overload = 0;
  for (size_t i = 0; i < kFlood; ++i) {
    auto got = client.RecvLine();
    ASSERT_TRUE(got.ok()) << "response " << i << ": "
                          << got.status().ToString();
    if (got->rfind("ok ", 0) == 0) {
      ++ok;
    } else {
      EXPECT_EQ(got->rfind("err overload ", 0), 0u) << *got;
      ++overload;
    }
  }
  EXPECT_EQ(ok + overload, kFlood);
  EXPECT_GE(ok, 1u);        // the queue made progress
  EXPECT_GE(overload, 1u);  // and the flood was shed, not buffered
  EXPECT_GE(ts.server->stats().overload_responses, overload);
}

// --------------------------------------------------------------------
// Snapshot hot-swap
// --------------------------------------------------------------------

TEST(ServeNetTest, HotSwapServesNewSnapshotWithoutDroppingConnection) {
  TestServer ts;
  BlockingLineClient client = ts.Connect();

  ASSERT_TRUE(client.SendLine("min-key").ok());
  auto before = client.RecvLine();
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rfind("ok ", 0), 0u);

  // Publish a snapshot whose min-key answer is visibly different (two
  // tracked minimal keys instead of one).
  ServeSnapshot next = *ts.store.Current();
  std::vector<AttributeSet> keys = *next.keys;
  AttributeSet extra(ts.data->schema().num_attributes());
  extra.Add(1);
  extra.Add(2);
  keys.push_back(extra);
  next.keys =
      std::make_shared<const std::vector<AttributeSet>>(std::move(keys));
  ASSERT_TRUE(ts.store.Publish(std::move(next)).ok());

  // Same connection, next request: the new epoch answers.
  ASSERT_TRUE(client.SendLine("min-key").ok());
  auto after = client.RecvLine();
  ASSERT_TRUE(after.ok());
  EXPECT_NE(*after, *before);
  EXPECT_EQ(after->rfind("ok ", 0), 0u);
  EXPECT_EQ(after->substr(after->size() - 2), " 2") << *after;
}

TEST(ServeNetTest, HotSwapFromSnapshotFileMidConnection) {
  TestServer ts;
  BlockingLineClient client = ts.Connect();

  ASSERT_TRUE(client.SendLine("min-key").ok());
  auto before = client.RecvLine();
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rfind("ok ", 0), 0u);

  // Freeze a visibly different snapshot (an extra tracked minimal key)
  // into a QSNP1 artifact, load it back through the mmap reader, and
  // publish the loaded snapshot — the serve --snapshot-file SIGHUP
  // path, minus the signal.
  ServeSnapshot next = *ts.store.Current();
  std::vector<AttributeSet> keys = *next.keys;
  AttributeSet extra(ts.data->schema().num_attributes());
  extra.Add(1);
  extra.Add(2);
  keys.push_back(extra);
  next.keys =
      std::make_shared<const std::vector<AttributeSet>>(std::move(keys));
  const std::string path = "/tmp/qikey_serve_net_hotswap.qsnp";
  ASSERT_TRUE(snapfile::WriteSnapshotFile(next, path).ok());
  auto loaded = snapfile::ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(ts.store.Publish(std::move(*loaded)).ok());

  // Same connection, next request: answered from the mmap-backed
  // snapshot without a reconnect.
  ASSERT_TRUE(client.SendLine("min-key").ok());
  auto after = client.RecvLine();
  ASSERT_TRUE(after.ok());
  EXPECT_NE(*after, *before);
  EXPECT_EQ(after->rfind("ok ", 0), 0u);
  EXPECT_EQ(after->substr(after->size() - 2), " 2") << *after;
  std::remove(path.c_str());
}

// --------------------------------------------------------------------
// Lifecycle: graceful drain, EOF, idle reaping
// --------------------------------------------------------------------

TEST(ServeNetTest, GracefulDrainAnswersEverythingAdmittedThenCloses) {
  TestServer ts;
  const Schema& schema = ts.data->schema();
  std::vector<std::string> lines = MakeWireWorkload(schema, 24, 33);
  std::vector<std::string> expected =
      ExpectedResponses(*ts.engine, schema, lines);

  BlockingLineClient client = ts.Connect();
  std::string blob;
  for (const std::string& line : lines) blob += line + "\n";
  ASSERT_TRUE(client.SendAll(blob).ok());

  // Wait until every line is admitted, then drain mid-flight.
  while (ts.server->stats().lines_received < lines.size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ts.server->Shutdown();

  for (size_t i = 0; i < lines.size(); ++i) {
    auto got = client.RecvLine();
    ASSERT_TRUE(got.ok()) << "response " << i << " lost in drain: "
                          << got.status().ToString();
    EXPECT_EQ(*got, expected[i]) << "line " << i;
  }
  EXPECT_FALSE(client.RecvLine().ok());  // then EOF
  ts.server->Join();
  EXPECT_FALSE(ts.server->running());
}

TEST(ServeNetTest, HalfCloseFlushesAllResponsesThenEof) {
  TestServer ts;
  BlockingLineClient client = ts.Connect();
  ASSERT_TRUE(client.SendAll("min-key\nmin-key\nmin-key\n").ok());
  client.ShutdownWrite();
  for (int i = 0; i < 3; ++i) {
    auto got = client.RecvLine();
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(got->rfind("ok ", 0), 0u);
  }
  EXPECT_FALSE(client.RecvLine().ok());
}

TEST(ServeNetTest, SlowLorisIsReapedByIdleTimeout) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  TestServer ts(options);
  BlockingLineClient client = ts.Connect();
  // A partial line, never terminated: the classic slow loris.
  ASSERT_TRUE(client.SendAll("is-key c1,c").ok());
  // The server must close us, not wait forever.
  EXPECT_FALSE(client.RecvLine().ok());
  // The fd closes a moment before the reactor bumps the counter — poll.
  for (int i = 0; i < 500 && ts.server->stats().idle_reaped == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(ts.server->stats().idle_reaped, 1u);
}

TEST(ServeNetTest, ConnectionLimitGreetsOverloadAndCloses) {
  ServerOptions options;
  options.max_connections = 1;
  TestServer ts(options);
  BlockingLineClient first = ts.Connect();
  // Second connection: greeted with err overload, then EOF.
  BlockingLineClient second = ts.Connect(/*eat_greeting=*/false);
  auto greeting = second.RecvLine();
  ASSERT_TRUE(greeting.ok());
  EXPECT_EQ(greeting->rfind("err overload ", 0), 0u) << *greeting;
  EXPECT_FALSE(second.RecvLine().ok());
  // The first connection is unaffected.
  ASSERT_TRUE(first.SendLine("min-key").ok());
  EXPECT_TRUE(first.RecvLine().ok());
}

// --------------------------------------------------------------------
// LoadSnapshot facade (satellite: one entry point for all sources)
// --------------------------------------------------------------------

TEST(LoadSnapshotTest, PipelineRunAndMonitorSources) {
  std::string path = ::testing::TempDir() + "/qikey_serve_net_src.csv";
  {
    std::ofstream out(path);
    out << "a,b\n";
    for (int i = 0; i < 32; ++i) {
      out << i << "," << (i % 3) << "\n";
    }
  }
  SnapshotSource source;
  source.kind = SnapshotSource::Kind::kPipelineRun;
  source.csv_path = path;
  source.pipeline.eps = 0.01;
  auto from_run = LoadSnapshot(source);
  ASSERT_TRUE(from_run.ok()) << from_run.status().ToString();
  EXPECT_EQ(from_run->schema().num_attributes(), 2u);
  EXPECT_EQ(from_run->source_rows, 32u);

  source.kind = SnapshotSource::Kind::kMonitor;
  source.window = 16;
  auto from_monitor = LoadSnapshot(source);
  ASSERT_TRUE(from_monitor.ok()) << from_monitor.status().ToString();
  EXPECT_EQ(from_monitor->schema().num_attributes(), 2u);
  EXPECT_EQ(from_monitor->source_rows, 16u);  // the sliding window

  std::remove(path.c_str());
}

TEST(LoadSnapshotTest, ErrorsComeBackAsStatuses) {
  SnapshotSource source;
  source.kind = SnapshotSource::Kind::kPipelineRun;
  source.csv_path = "/nonexistent/qikey.csv";
  source.pipeline.eps = 0.01;
  EXPECT_FALSE(LoadSnapshot(source).ok());

  source.kind = SnapshotSource::Kind::kShardArtifacts;
  source.artifact_paths.clear();
  EXPECT_FALSE(LoadSnapshot(source).ok());

  source.artifact_paths = {"/nonexistent/shard.qka"};
  EXPECT_FALSE(LoadSnapshot(source).ok());
}

// --------------------------------------------------------------------
// Observability: the stats verb, bit-stable snapshots, request traces
// --------------------------------------------------------------------

/// Zeroes every time-valued number in a rendered metrics JSON line:
/// the sum/p50/p99/p999/max of histograms whose name ends in `_ns`
/// and the value of `_ns`-named gauges. Counts and all non-timing
/// metrics are left untouched, so two normalized snapshots are equal
/// exactly when the servers did the same (counted) work.
std::string NormalizeTimings(std::string json) {
  std::vector<std::pair<size_t, size_t>> spans;  // digit runs to zero
  size_t pos = 0;
  while ((pos = json.find("_ns\":", pos)) != std::string::npos) {
    size_t v = pos + 5;
    pos = v;
    if (v >= json.size()) break;
    if (json[v] == '{') {
      size_t close = json.find('}', v);
      for (const char* key :
           {"\"sum\":", "\"p50\":", "\"p99\":", "\"p999\":", "\"max\":"}) {
        size_t k = json.find(key, v);
        if (k == std::string::npos || k > close) continue;
        size_t d = k + std::strlen(key);
        size_t e = d;
        while (e < json.size() &&
               std::isdigit(static_cast<unsigned char>(json[e]))) {
          ++e;
        }
        spans.emplace_back(d, e - d);
      }
    } else {
      size_t e = v;
      if (json[e] == '-') ++e;
      while (e < json.size() &&
             std::isdigit(static_cast<unsigned char>(json[e]))) {
        ++e;
      }
      spans.emplace_back(v, e - v);
    }
  }
  std::sort(spans.begin(), spans.end());
  for (auto it = spans.rbegin(); it != spans.rend(); ++it) {
    if (it->second == 0) continue;
    json[it->first] = '0';
    json.erase(it->first + 1, it->second - 1);
  }
  return json;
}

TEST(ServeNetTest, StatsVerbReturnsJsonCoveringAllFamilies) {
  TestServer ts;
  BlockingLineClient client = ts.Connect();
  ASSERT_TRUE(client.SendLine("is-key c1,c2").ok());
  ASSERT_TRUE(client.RecvLine().ok());
  ASSERT_TRUE(client.SendLine("min-key").ok());
  ASSERT_TRUE(client.RecvLine().ok());

  ASSERT_TRUE(client.SendLine("stats").ok());
  auto got = client.RecvLine();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->rfind("ok {", 0), 0u) << *got;
  std::string json = got->substr(3);
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find('\n'), std::string::npos);

  // Every required metric family is present in the one snapshot:
  // connections, admission, request latency, cache, snapshot epoch,
  // engine passes.
  for (const char* family :
       {"\"server.connections\":", "\"server.connections_accepted\":",
        "\"server.admission_queue_depth\":", "\"server.lines_admitted\":",
        "\"server.request_ns\":", "\"cache.hits\":", "\"cache.misses\":",
        "\"snapshot.epoch\":", "\"engine.pass.validate_ns\":",
        "\"engine.pass.execute_ns\":", "\"engine.batch_size\":"}) {
    EXPECT_NE(json.find(family), std::string::npos) << family;
  }
  // The counted state at render time is exact under lockstep: three
  // lines were received and admitted (two queries + stats itself), and
  // both query responses were flushed before stats was sent.
  EXPECT_NE(json.find("\"server.lines_received\":3"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"server.lines_admitted\":3"), std::string::npos);
  EXPECT_NE(json.find("\"server.connections\":1"), std::string::npos);
  EXPECT_NE(json.find("\"snapshot.epoch\":1"), std::string::npos);

  // The same snapshot is visible through the embedding API.
  ASSERT_NE(ts.server->metrics(), nullptr);
  std::string direct = ts.server->metrics()->RenderJson();
  EXPECT_EQ(NormalizeTimings(direct).substr(0, 12), json.substr(0, 12));
}

TEST(ServeNetTest, StatsSnapshotIsBitStableAcrossIdenticalRuns) {
  // Two fresh servers, the same lockstep request sequence: after
  // normalizing wall-clock timings, the stats JSON must be
  // byte-identical — every counter, gauge, histogram count, and the
  // key order itself is deterministic.
  auto run = [](const std::vector<std::string>& lines) {
    TestServer ts;
    BlockingLineClient client = ts.Connect();
    for (const std::string& line : lines) {
      EXPECT_TRUE(client.SendLine(line).ok());
      auto got = client.RecvLine();
      EXPECT_TRUE(got.ok()) << got.status().ToString();
    }
    EXPECT_TRUE(client.SendLine("stats").ok());
    auto got = client.RecvLine();
    EXPECT_TRUE(got.ok()) << got.status().ToString();
    return got.ok() ? got->substr(3) : std::string();
  };

  std::vector<std::string> lines =
      MakeWireWorkload(MakeKeyedData(4, 7).schema(), 24, 55);
  lines.push_back("not a verb");  // parse errors are counted state too
  lines.push_back("QIKEY/1");
  std::string first = NormalizeTimings(run(lines));
  std::string second = NormalizeTimings(run(lines));
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(ServeNetTest, TraceSampleEmitsPerStageTimings) {
  ServerOptions options;
  options.trace_sample = 1;  // trace every request
  std::mutex mu;
  std::vector<std::string> traces;
  options.trace_sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    traces.push_back(line);
  };
  TestServer ts(options);
  BlockingLineClient client = ts.Connect();
  for (const char* line : {"min-key", "is-key c1,c2", "separation c1"}) {
    ASSERT_TRUE(client.SendLine(line).ok());
    ASSERT_TRUE(client.RecvLine().ok());
  }
  // Traces are emitted by the reactor after the response flush; the
  // last one may land a beat after our read returns.
  for (int i = 0; i < 500; ++i) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (traces.size() >= 3) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(traces.size(), 3u);
  for (const std::string& trace : traces) {
    EXPECT_EQ(trace.rfind("{\"type\":\"trace\"", 0), 0u) << trace;
    for (const char* field :
         {"\"request_id\":", "\"conn\":", "\"parse_ns\":", "\"queue_ns\":",
          "\"execute_ns\":", "\"flush_ns\":", "\"total_ns\":"}) {
      EXPECT_NE(trace.find(field), std::string::npos)
          << field << " missing in " << trace;
    }
    EXPECT_EQ(trace.find('\n'), std::string::npos);
  }
  // Distinct, monotonically increasing request ids.
  EXPECT_NE(traces[0].find("\"request_id\":0"), std::string::npos);
  EXPECT_NE(traces[2].find("\"request_id\":2"), std::string::npos);
  EXPECT_GE(ts.server->stats().lines_received, 3u);
}

TEST(ServeNetTest, TraceSampleEveryNthPicksOneInN) {
  ServerOptions options;
  options.trace_sample = 3;
  std::mutex mu;
  std::vector<std::string> traces;
  options.trace_sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    traces.push_back(line);
  };
  TestServer ts(options);
  BlockingLineClient client = ts.Connect();
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(client.SendLine("min-key").ok());
    ASSERT_TRUE(client.RecvLine().ok());
  }
  for (int i = 0; i < 500; ++i) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (traces.size() >= 3) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(traces.size(), 3u);  // 9 requests at 1-in-3
}

// Engine-level error-code population (satellite: ServeErrorCode in
// QueryResponse, not just on the wire).
TEST(ServeErrorCodeTest, EngineTagsValidationAndUnavailable) {
  SnapshotStore store;
  QueryEngine engine(&store, {});
  QueryRequest request;
  request.kind = QueryKind::kMinKey;
  QueryResponse response = engine.Execute(request);
  EXPECT_EQ(response.error_code, ServeErrorCode::kSnapshotUnavailable);

  Dataset data = MakeKeyedData(16, 3);
  PipelineOptions popts;
  popts.eps = 0.01;
  Rng rng(5);
  auto result = DiscoveryPipeline(popts).Run(data, &rng);
  ASSERT_TRUE(result.ok());
  auto snapshot = SnapshotFromPipelineResult(*result, popts.eps);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(store.Publish(std::move(*snapshot)).ok());

  QueryRequest bad;
  bad.kind = QueryKind::kAnonymity;
  bad.attrs = AttributeSet(data.schema().num_attributes());
  bad.attrs.Add(0);
  bad.k = 0;  // k must be >= 1
  response = engine.Execute(bad);
  EXPECT_EQ(response.error_code, ServeErrorCode::kValidation);

  QueryRequest good;
  good.kind = QueryKind::kMinKey;
  response = engine.Execute(good);
  EXPECT_EQ(response.error_code, ServeErrorCode::kNone);
  EXPECT_TRUE(response.status.ok());
}

}  // namespace
}  // namespace qikey
