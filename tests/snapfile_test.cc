// QSNP1 snapshot artifacts (src/snapfile/): a serve snapshot frozen
// into one mmap-able file must load back as a snapshot that answers
// BIT-IDENTICALLY on the wire — across every filter backend, seed, and
// engine thread count — and a corrupted file must come back as a
// Status, never a crash or a wild read.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/tuple_sample_filter.h"
#include "data/wire_codec.h"
#include "engine/pipeline.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/request.h"
#include "serve/snapshot.h"
#include "snapfile/format.h"
#include "snapfile/snapfile.h"
#include "util/rng.h"

namespace qikey {
namespace {

/// A table whose first column is a row id (an exact key by
/// construction) over low-cardinality columns.
Dataset MakeKeyedData(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<ValueCode> id(rows);
  for (size_t i = 0; i < rows; ++i) id[i] = static_cast<ValueCode>(i);
  std::vector<Column> columns;
  columns.emplace_back(std::move(id));
  for (uint32_t card : {5u, 7u, 3u, 11u, 2u}) {
    std::vector<ValueCode> codes(rows);
    for (size_t i = 0; i < rows; ++i) {
      codes[i] = static_cast<ValueCode>(rng.Uniform(card));
    }
    columns.emplace_back(std::move(codes), card);
  }
  return Dataset(
      Schema({"id", "c1", "c2", "c3", "c4", "c5"}), std::move(columns));
}

/// One discovery run frozen into an (unpublished) serve snapshot.
ServeSnapshot BuildPipelineSnapshot(const Dataset& data,
                                    FilterBackend backend, double eps,
                                    uint64_t seed) {
  PipelineOptions options;
  options.eps = eps;
  options.backend = backend;
  Rng rng(seed);
  auto result = DiscoveryPipeline(options).Run(data, &rng);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  auto snapshot = SnapshotFromPipelineResult(*result, eps);
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  return std::move(*snapshot);
}

/// A deterministic mixed-kind workload over `schema`.
std::vector<QueryRequest> MakeWorkload(const Schema& schema, size_t count,
                                       uint64_t seed) {
  Rng rng(seed);
  size_t m = schema.num_attributes();
  std::vector<QueryRequest> requests;
  for (size_t i = 0; i < count; ++i) {
    QueryRequest request;
    switch (rng.Uniform(5)) {
      case 0:
        request.kind = QueryKind::kIsKey;
        request.attrs = AttributeSet::Random(m, 0.4, &rng);
        break;
      case 1:
        request.kind = QueryKind::kSeparation;
        request.attrs = AttributeSet::Random(m, 0.4, &rng);
        break;
      case 2:
        request.kind = QueryKind::kMinKey;
        request.attrs = AttributeSet(m);
        break;
      case 3: {
        request.kind = QueryKind::kAfd;
        AttributeIndex rhs = static_cast<AttributeIndex>(
            rng.Uniform(static_cast<uint32_t>(m)));
        request.attrs = AttributeSet::Random(m, 0.3, &rng);
        request.attrs.Remove(rhs);
        request.rhs = rhs;
        break;
      }
      default:
        request.kind = QueryKind::kAnonymity;
        request.attrs = AttributeSet::Random(m, 0.3, &rng);
        request.k = 2 + rng.Uniform(3);
        break;
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

/// Publishes `snapshot` into a fresh store and answers `requests`
/// through a QueryEngine, encoding every response with the shared wire
/// encoder. Fresh store => epoch 1 on both sides of a comparison.
std::vector<std::string> WireAnswers(ServeSnapshot snapshot,
                                     const std::vector<QueryRequest>& requests,
                                     size_t threads) {
  const Schema schema = snapshot.schema();
  SnapshotStore store;
  auto epoch = store.Publish(std::move(snapshot));
  EXPECT_TRUE(epoch.ok()) << epoch.status().ToString();
  QueryEngineOptions options;
  options.num_threads = threads;
  options.cache_capacity = 0;  // raw answers, no cache interference
  QueryEngine engine(&store, options);
  std::vector<QueryResponse> responses = engine.ExecuteBatch(requests);
  std::vector<std::string> lines;
  for (size_t i = 0; i < requests.size(); ++i) {
    lines.push_back(EncodeResponseLine(requests[i], responses[i], schema));
  }
  return lines;
}

/// Recomputes the header checksum after a deliberate header/table patch
/// so a test reaches the validation rule behind the checksum.
void RestampHeaderChecksum(std::string* image) {
  uint32_t section_count = 0;
  std::memcpy(&section_count, image->data() + 12, sizeof(section_count));
  size_t table_at = snapfile::kHeaderBytes;
  size_t table_bytes = section_count * snapfile::kSectionEntryBytes;
  uint64_t checksum = Fnv1a64(image->data(), 56);
  checksum = Fnv1a64(image->data() + table_at, table_bytes, checksum);
  std::memcpy(image->data() + 56, &checksum, sizeof(checksum));
}

void PatchU64(std::string* image, size_t at, uint64_t value) {
  std::memcpy(image->data() + at, &value, sizeof(value));
}

uint64_t ReadU64(const std::string& image, size_t at) {
  uint64_t value = 0;
  std::memcpy(&value, image.data() + at, sizeof(value));
  return value;
}

// ---------------------------------------------------------- round trip

TEST(SnapfileTest, RoundTripBitIdenticalAcrossBackendsSeedsThreads) {
  for (FilterBackend backend : {FilterBackend::kTupleSample,
                                FilterBackend::kMxPair,
                                FilterBackend::kBitset}) {
    for (uint64_t seed : {3u, 17u}) {
      Dataset data = MakeKeyedData(120, seed);
      ServeSnapshot built =
          BuildPipelineSnapshot(data, backend, 0.01, seed);
      auto image = snapfile::SerializeSnapshot(built);
      ASSERT_TRUE(image.ok()) << image.status().ToString();
      std::vector<QueryRequest> workload =
          MakeWorkload(built.schema(), 60, seed + 100);
      std::vector<std::string> want =
          WireAnswers(std::move(built), workload, 1);
      for (size_t threads : {size_t{1}, size_t{4}}) {
        auto loaded = snapfile::SnapshotFromOwnedBytes(*image);
        ASSERT_TRUE(loaded.ok())
            << static_cast<int>(backend) << ": "
            << loaded.status().ToString();
        std::vector<std::string> got =
            WireAnswers(std::move(*loaded), workload, threads);
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < want.size(); ++i) {
          EXPECT_EQ(got[i], want[i])
              << "backend " << static_cast<int>(backend) << " seed "
              << seed << " threads " << threads << " line " << i;
        }
      }
    }
  }
}

TEST(SnapfileTest, FileRoundTripServesIdentically) {
  const std::string path = "/tmp/qikey_snapfile_roundtrip.qsnp";
  Dataset data = MakeKeyedData(150, 5);
  for (FilterBackend backend :
       {FilterBackend::kTupleSample, FilterBackend::kBitset}) {
    ServeSnapshot built = BuildPipelineSnapshot(data, backend, 0.01, 9);
    std::vector<QueryRequest> workload =
        MakeWorkload(built.schema(), 40, 77);
    ASSERT_TRUE(snapfile::WriteSnapshotFile(built, path).ok());
    std::vector<std::string> want =
        WireAnswers(std::move(built), workload, 2);
    auto loaded = snapfile::ReadSnapshotFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(WireAnswers(std::move(*loaded), workload, 2), want);
  }
  std::remove(path.c_str());
}

TEST(SnapfileTest, LoadedSnapshotOutlivesTheSourceBytes) {
  Dataset data = MakeKeyedData(80, 2);
  ServeSnapshot built =
      BuildPipelineSnapshot(data, FilterBackend::kBitset, 0.01, 2);
  auto image = snapfile::SerializeSnapshot(built);
  ASSERT_TRUE(image.ok());
  auto loaded = snapfile::SnapshotFromOwnedBytes(*image);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // The load copied into its own aligned buffer: clobbering (and
  // freeing) the input image must not change a single answer.
  std::vector<QueryRequest> workload = MakeWorkload(built.schema(), 30, 8);
  std::vector<std::string> want = WireAnswers(*loaded, workload, 1);
  std::fill(image->begin(), image->end(), '\xff');
  image->clear();
  image->shrink_to_fit();
  // Copies of the components keep the backing buffer alive on their
  // own; dropping the originals must not invalidate them.
  ServeSnapshot copy = *loaded;
  *loaded = ServeSnapshot{};
  EXPECT_EQ(WireAnswers(std::move(copy), workload, 1), want);
}

// --------------------------------------------- tuple sample ownership

TEST(SnapfileTest, TupleFilterSharingTheSampleRoundTripsShared) {
  Dataset data = MakeKeyedData(90, 4);
  ServeSnapshot built =
      BuildPipelineSnapshot(data, FilterBackend::kTupleSample, 0.01, 4);
  const auto* tuple =
      dynamic_cast<const TupleSampleFilter*>(built.filter.get());
  ASSERT_NE(tuple, nullptr);
  ASSERT_EQ(tuple->shared_sample().get(), built.sample.get())
      << "pipeline tuple snapshots share the greedy sample";

  const std::string path = "/tmp/qikey_snapfile_shared.qsnp";
  ASSERT_TRUE(snapfile::WriteSnapshotFile(built, path).ok());
  auto info = snapfile::InspectSnapshotFile(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->header.flags & snapfile::kFlagFilterSharesSample,
            snapfile::kFlagFilterSharesSample);

  auto loaded = snapfile::ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto* loaded_tuple =
      dynamic_cast<const TupleSampleFilter*>(loaded->filter.get());
  ASSERT_NE(loaded_tuple, nullptr);
  // Sharing survives the file: one table, viewed zero-copy by both.
  EXPECT_EQ(loaded_tuple->shared_sample().get(), loaded->sample.get());
  EXPECT_EQ(loaded_tuple->provenance(), tuple->provenance());
  std::remove(path.c_str());
}

TEST(SnapfileTest, TupleFilterWithPrivateSampleRoundTrips) {
  // A filter whose sample diverges from the snapshot's evaluation
  // sample (the monitor-freeze shape): carried as a nested blob.
  Dataset data = MakeKeyedData(100, 6);
  Rng rng(6);
  TupleSampleFilterOptions options;
  options.eps = 0.01;
  options.sample_size = 24;
  auto filter = TupleSampleFilter::Build(data, options, &rng);
  ASSERT_TRUE(filter.ok());

  ServeSnapshot built;
  built.eps = 0.01;
  built.source_rows = data.num_rows();
  built.sample = std::make_shared<const Dataset>(MakeKeyedData(100, 6));
  built.filter =
      std::make_shared<const TupleSampleFilter>(std::move(*filter));
  built.keys = std::make_shared<const std::vector<AttributeSet>>();

  const std::string path = "/tmp/qikey_snapfile_private.qsnp";
  ASSERT_TRUE(snapfile::WriteSnapshotFile(built, path).ok());
  auto info = snapfile::InspectSnapshotFile(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->header.flags & snapfile::kFlagFilterSharesSample, 0u);
  bool has_blob = false;
  for (const auto& section : info->sections) {
    if (section.id ==
        static_cast<uint32_t>(snapfile::SectionId::kFilterSampleBlob)) {
      has_blob = true;
    }
  }
  EXPECT_TRUE(has_blob);

  auto loaded = snapfile::ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::vector<QueryRequest> workload = MakeWorkload(built.schema(), 30, 99);
  EXPECT_EQ(WireAnswers(std::move(*loaded), workload, 1),
            WireAnswers(std::move(built), workload, 1));
  std::remove(path.c_str());
}

TEST(SnapfileTest, EmptyKeyListRoundTrips) {
  Dataset data = MakeKeyedData(60, 3);
  ServeSnapshot built =
      BuildPipelineSnapshot(data, FilterBackend::kTupleSample, 0.01, 3);
  built.keys = std::make_shared<const std::vector<AttributeSet>>();
  auto image = snapfile::SerializeSnapshot(built);
  ASSERT_TRUE(image.ok());
  auto loaded = snapfile::SnapshotFromOwnedBytes(*image);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->keys->empty());
}

TEST(SnapfileTest, SerializeRejectsIncompleteSnapshots) {
  auto image = snapfile::SerializeSnapshot(ServeSnapshot{});
  EXPECT_FALSE(image.ok());
}

// ----------------------------------------------------------- inspect

TEST(SnapfileTest, InspectRendersSortedKeyJson) {
  Dataset data = MakeKeyedData(70, 8);
  ServeSnapshot built =
      BuildPipelineSnapshot(data, FilterBackend::kBitset, 0.01, 8);
  const std::string path = "/tmp/qikey_snapfile_inspect.qsnp";
  ASSERT_TRUE(snapfile::WriteSnapshotFile(built, path).ok());
  auto info = snapfile::InspectSnapshotFile(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->header.version, snapfile::kFormatVersion);
  EXPECT_EQ(info->header.backend, 2);
  EXPECT_EQ(info->header.source_rows, 70u);
  EXPECT_EQ(info->header.section_count, info->sections.size());

  std::string json = snapfile::RenderSnapshotInfoJson(*info);
  EXPECT_EQ(json.rfind("{\"backend\":\"bitset\"", 0), 0u) << json;
  for (const char* field :
       {"\"declared_sample_size\":", "\"eps\":", "\"file_bytes\":",
        "\"header_checksum\":\"0x", "\"sections\":[", "\"source_rows\":70",
        "\"version\":1", "\"name\":\"meta\"",
        "\"name\":\"evidence_words\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field << "\n" << json;
  }
  EXPECT_FALSE(snapfile::InspectSnapshotFile("/nonexistent.qsnp").ok());
  std::remove(path.c_str());
}

// --------------------------------------------------------- corruption

/// The base image every corruption case below mutates.
std::string ValidImage(FilterBackend backend = FilterBackend::kBitset) {
  Dataset data = MakeKeyedData(64, 12);
  ServeSnapshot built = BuildPipelineSnapshot(data, backend, 0.01, 12);
  auto image = snapfile::SerializeSnapshot(built);
  EXPECT_TRUE(image.ok());
  return *image;
}

TEST(SnapfileTest, RejectsTruncationAtEveryPrefix) {
  std::string image = ValidImage();
  // Every header-sized prefix, then coarse steps through the body.
  for (size_t n = 0; n <= 2 * snapfile::kHeaderBytes; ++n) {
    EXPECT_FALSE(
        snapfile::SnapshotFromOwnedBytes({image.data(), n}).ok()) << n;
  }
  for (size_t n = 2 * snapfile::kHeaderBytes; n < image.size(); n += 37) {
    EXPECT_FALSE(
        snapfile::SnapshotFromOwnedBytes({image.data(), n}).ok()) << n;
  }
}

TEST(SnapfileTest, RejectsBadMagicAndVersionAcceptsRecordedEpoch) {
  std::string image = ValidImage();
  std::string bad = image;
  bad[0] = 'X';
  EXPECT_FALSE(snapfile::SnapshotFromOwnedBytes(bad).ok());

  bad = image;
  bad[8] = 9;  // version
  RestampHeaderChecksum(&bad);
  auto status = snapfile::SnapshotFromOwnedBytes(bad).status();
  EXPECT_NE(status.message().find("version"), std::string::npos)
      << status.ToString();

  // Byte 52 is the recorded store epoch (formerly reserved-must-be-
  // zero): a nonzero value is data, not corruption, and rides back on
  // the restored snapshot.
  bad = image;
  bad[52] = 7;
  RestampHeaderChecksum(&bad);
  auto restored = snapfile::SnapshotFromOwnedBytes(bad);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->epoch, 7u);

  bad = image;
  bad[48] = 7;  // unknown backend
  RestampHeaderChecksum(&bad);
  EXPECT_FALSE(snapfile::SnapshotFromOwnedBytes(bad).ok());
}

TEST(SnapfileTest, RejectsHeaderAndSectionChecksumMismatch) {
  std::string image = ValidImage();
  std::string bad = image;
  bad[16] ^= 0x40;  // eps bits; checksum not restamped
  auto status = snapfile::SnapshotFromOwnedBytes(bad).status();
  EXPECT_NE(status.message().find("checksum"), std::string::npos)
      << status.ToString();

  // One flipped byte inside each section must trip that section's
  // checksum (padding bytes between sections are not covered, so walk
  // the table rather than flipping blindly).
  uint32_t section_count = 0;
  std::memcpy(&section_count, image.data() + 12, sizeof(section_count));
  for (uint32_t i = 0; i < section_count; ++i) {
    size_t entry = snapfile::kHeaderBytes + i * snapfile::kSectionEntryBytes;
    uint64_t offset = ReadU64(image, entry + 8);
    uint64_t bytes = ReadU64(image, entry + 16);
    if (bytes == 0) continue;
    bad = image;
    bad[offset + bytes / 2] ^= 0x01;
    status = snapfile::SnapshotFromOwnedBytes(bad).status();
    EXPECT_FALSE(status.ok()) << "section " << i;
    EXPECT_NE(status.message().find("checksum"), std::string::npos)
        << "section " << i << ": " << status.ToString();
  }
}

TEST(SnapfileTest, RejectsMisalignedOverlappingAndOutOfBoundsSections) {
  std::string image = ValidImage();
  size_t entry0 = snapfile::kHeaderBytes;
  size_t entry1 = entry0 + snapfile::kSectionEntryBytes;

  // Misaligned offset (stays inside the file, but off the 64 grid).
  std::string bad = image;
  PatchU64(&bad, entry0 + 8, ReadU64(bad, entry0 + 8) + 8);
  RestampHeaderChecksum(&bad);
  auto status = snapfile::SnapshotFromOwnedBytes(bad).status();
  EXPECT_NE(status.message().find("align"), std::string::npos)
      << status.ToString();

  // Two sections at the same offset.
  bad = image;
  PatchU64(&bad, entry1 + 8, ReadU64(bad, entry0 + 8));
  PatchU64(&bad, entry1 + 16, ReadU64(bad, entry0 + 16));
  PatchU64(&bad, entry1 + 24, ReadU64(bad, entry0 + 24));
  RestampHeaderChecksum(&bad);
  EXPECT_FALSE(snapfile::SnapshotFromOwnedBytes(bad).ok());

  // Section length running past the end of the file — including the
  // offset+bytes overflow shape.
  for (uint64_t length : {uint64_t{1} << 40, ~uint64_t{0} - 32}) {
    bad = image;
    PatchU64(&bad, entry0 + 16, length);
    RestampHeaderChecksum(&bad);
    EXPECT_FALSE(snapfile::SnapshotFromOwnedBytes(bad).ok());
  }

  // file_bytes disagreeing with the actual size.
  bad = image;
  PatchU64(&bad, 40, image.size() + 64);
  RestampHeaderChecksum(&bad);
  EXPECT_FALSE(snapfile::SnapshotFromOwnedBytes(bad).ok());
}

TEST(SnapfileTest, SurvivesRandomByteFlipsOnEveryBackend) {
  for (FilterBackend backend : {FilterBackend::kTupleSample,
                                FilterBackend::kMxPair,
                                FilterBackend::kBitset}) {
    std::string image = ValidImage(backend);
    Rng rng(31);
    for (int t = 0; t < 300; ++t) {
      std::string mutated = image;
      size_t at = static_cast<size_t>(rng.Uniform(mutated.size()));
      mutated[at] = static_cast<char>(rng.Uniform(256));
      auto loaded = snapfile::SnapshotFromOwnedBytes(mutated);
      if (loaded.ok()) {
        // Flips in inter-section padding load fine; the snapshot must
        // then actually work.
        AttributeSet all(loaded->schema().num_attributes());
        for (size_t j = 0; j < loaded->schema().num_attributes(); ++j) {
          all.Add(static_cast<AttributeIndex>(j));
        }
        (void)loaded->filter->Query(all);
      }
    }
  }
}

TEST(SnapfileTest, PublishRestoredSnapshotResumesEpochAndCountsPublishes) {
  Dataset data = MakeKeyedData(64, 9);
  ServeSnapshot built =
      BuildPipelineSnapshot(data, FilterBackend::kBitset, 0.01, 5);
  // Advance a store past epoch 1, then save its current snapshot so
  // the file records a nonzero epoch.
  SnapshotStore first;
  ASSERT_TRUE(first.Publish(built).ok());
  auto saved_epoch = first.Publish(built);
  ASSERT_TRUE(saved_epoch.ok()) << saved_epoch.status().ToString();
  ASSERT_EQ(*saved_epoch, 2u);
  auto image = snapfile::SerializeSnapshot(*first.Current());
  ASSERT_TRUE(image.ok()) << image.status().ToString();

  auto restored = snapfile::SnapshotFromOwnedBytes(*image);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->epoch, 2u);

  // A fresh store resumes the file's epoch sequence but counts only
  // its own publishes — the regression was reporting `epoch` as the
  // publish count, claiming work a previous incarnation did.
  SnapshotStore store;
  auto resumed = store.Publish(std::move(*restored));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(*resumed, 2u);
  EXPECT_EQ(store.epoch(), 2u);
  EXPECT_EQ(store.publishes(), 1u);

  auto next = store.Publish(built);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(*next, 3u);
  EXPECT_EQ(store.publishes(), 2u);
}

TEST(SnapfileTest, ReadSnapshotFileRejectsMissingAndEmptyFiles) {
  EXPECT_FALSE(snapfile::ReadSnapshotFile("/nonexistent.qsnp").ok());
  const std::string path = "/tmp/qikey_snapfile_empty.qsnp";
  std::fclose(std::fopen(path.c_str(), "wb"));
  EXPECT_FALSE(snapfile::ReadSnapshotFile(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qikey
