#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>
#include <vector>

#include "math/collision.h"
#include "math/kkt.h"

namespace qikey {
namespace {

/// Exhaustive validation of the KKT/Lemma-1 machinery at toy sizes:
/// enumerate EVERY integer clique-size profile (partition of n) that
/// satisfies the constraints, compute its exact non-collision
/// probability, and compare against the relaxed two-value search.

/// All partitions of `n` (as non-increasing positive parts).
std::vector<std::vector<double>> PartitionsOf(uint64_t n) {
  std::vector<std::vector<double>> out;
  std::vector<double> current;
  std::function<void(uint64_t, uint64_t)> rec = [&](uint64_t rest,
                                                    uint64_t max_part) {
    if (rest == 0) {
      out.push_back(current);
      return;
    }
    for (uint64_t part = std::min(rest, max_part); part >= 1; --part) {
      current.push_back(static_cast<double>(part));
      rec(rest - part, part);
      current.pop_back();
    }
  };
  rec(n, n);
  return out;
}

struct ExhaustiveBest {
  double log_p = -std::numeric_limits<double>::infinity();
  std::vector<double> profile;
};

ExhaustiveBest BestIntegerProfile(uint64_t n, double eps, uint64_t r) {
  double target_sq = eps * static_cast<double>(n) * static_cast<double>(n) /
                     4.0;
  ExhaustiveBest best;
  for (const auto& profile : PartitionsOf(n)) {
    double sum_sq = 0;
    for (double s : profile) sum_sq += s * s;
    if (sum_sq < target_sq) continue;  // violates constraint (1)
    double log_p = LogNonCollisionWithReplacement(profile, r);
    if (log_p > best.log_p) {
      best.log_p = log_p;
      best.profile = profile;
    }
  }
  return best;
}

class KktExhaustiveTest
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(KktExhaustiveTest, RelaxedSearchDominatesIntegerOptimum) {
  auto [n_int, eps, r_int] = GetParam();
  uint64_t n = static_cast<uint64_t>(n_int);
  uint64_t r = static_cast<uint64_t>(r_int);
  ExhaustiveBest integer_best = BestIntegerProfile(n, eps, r);
  ASSERT_TRUE(std::isfinite(integer_best.log_p))
      << "no feasible integer profile";
  TwoValueProfile relaxed = FindWorstCaseProfile(n, eps, r, 64);
  // The relaxed (real-valued, two-value) optimum can only be at least
  // as non-colliding as any feasible integer profile.
  EXPECT_GE(relaxed.log_non_collision, integer_best.log_p - 1e-6)
      << "integer profile beat the relaxed search";
}

TEST_P(KktExhaustiveTest, IntegerOptimumIsNearlyTwoValued) {
  // Lemma 1 is a statement about the REAL relaxation: its optimum has
  // at most two distinct non-zero values. The integer optimum may need
  // one extra value to absorb rounding against the tight constraint
  // (observed at n=18, eps=0.6: an {a, a±1} split), but never more —
  // and its probability stays within the relaxed two-value envelope
  // (previous test). Check both halves of that picture.
  auto [n_int, eps, r_int] = GetParam();
  uint64_t n = static_cast<uint64_t>(n_int);
  uint64_t r = static_cast<uint64_t>(r_int);
  ExhaustiveBest best = BestIntegerProfile(n, eps, r);
  ASSERT_TRUE(std::isfinite(best.log_p));
  std::set<double> distinct(best.profile.begin(), best.profile.end());
  EXPECT_LE(distinct.size(), 3u)
      << "optimal integer profile uses more than three distinct sizes";
  if (distinct.size() == 3) {
    // The third value only appears as a +-1 rounding neighbor.
    std::vector<double> vals(distinct.begin(), distinct.end());
    std::sort(vals.begin(), vals.end());
    EXPECT_LE(vals[1] - vals[0], 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ToySizes, KktExhaustiveTest,
    ::testing::Values(std::make_tuple(8, 0.5, 3),
                      std::make_tuple(10, 0.4, 3),
                      std::make_tuple(12, 0.3, 4),
                      std::make_tuple(14, 0.25, 4),
                      std::make_tuple(16, 0.2, 5),
                      std::make_tuple(18, 0.6, 4)));

}  // namespace
}  // namespace qikey
