#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/separation.h"
#include "core/tuple_sample_filter.h"
#include "data/csv_loader.h"
#include "data/dataset_builder.h"
#include "data/generators/uniform_grid.h"
#include "data/serialize.h"
#include "data/statistics.h"
#include "util/rng.h"

namespace qikey {
namespace {

Dataset DictDataset() {
  DatasetBuilder b({"word", "num"});
  EXPECT_TRUE(b.AddRow({"alpha", "1"}).ok());
  EXPECT_TRUE(b.AddRow({"beta", "2"}).ok());
  EXPECT_TRUE(b.AddRow({"alpha", "3"}).ok());
  return std::move(b).Finish();
}

// -------------------------------------------------------------- dataset

TEST(SerializeTest, RoundTripsSyntheticDataset) {
  Rng rng(1);
  Dataset d = MakeUniformGridSample(4, 5, 200, &rng);
  std::string bytes = SerializeDataset(d);
  auto back = DeserializeDataset(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), d.num_rows());
  EXPECT_EQ(back->num_attributes(), d.num_attributes());
  for (RowIndex r = 0; r < d.num_rows(); ++r) {
    for (AttributeIndex j = 0; j < d.num_attributes(); ++j) {
      ASSERT_EQ(back->code(r, j), d.code(r, j));
    }
  }
  EXPECT_EQ(back->schema().names(), d.schema().names());
}

TEST(SerializeTest, RoundTripsDictionaries) {
  Dataset d = DictDataset();
  auto back = DeserializeDataset(SerializeDataset(d));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->FormatRow(0), "alpha|1");
  EXPECT_EQ(back->FormatRow(2), "alpha|3");
}

TEST(SerializeTest, RejectsCorruption) {
  Dataset d = DictDataset();
  std::string bytes = SerializeDataset(d);
  EXPECT_FALSE(DeserializeDataset("garbage").ok());
  std::string truncated = bytes.substr(0, bytes.size() - 3);
  EXPECT_FALSE(DeserializeDataset(truncated).ok());
  std::string extended = bytes + "x";
  EXPECT_FALSE(DeserializeDataset(extended).ok());
  std::string magic_broken = bytes;
  magic_broken[0] = 'X';
  EXPECT_FALSE(DeserializeDataset(magic_broken).ok());
}

// Adversarial bytes: hostile declared sizes must come back as errors,
// never as crashes or multi-gigabyte allocations. Offsets follow the
// serialized layout: magic(4) version(4) m(4) n(8), then per column
// name(4+len) cardinality(4) has_dict(1) [entries(4) strings...] codes.
TEST(SerializeTest, RejectsHostileRowCount) {
  std::string bytes = SerializeDataset(DictDataset());
  for (int i = 0; i < 8; ++i) bytes[12 + i] = '\xff';
  auto result = DeserializeDataset(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, RejectsHostileAttributeCount) {
  std::string bytes = SerializeDataset(DictDataset());
  for (int i = 0; i < 4; ++i) bytes[8 + i] = '\xff';
  EXPECT_FALSE(DeserializeDataset(bytes).ok());
}

TEST(SerializeTest, RejectsHostileDictionaryEntryCount) {
  std::string bytes = SerializeDataset(DictDataset());
  // Column 0 is "word": name at 20..27, cardinality 28..31, flag 32,
  // entry count 33..36.
  ASSERT_EQ(bytes.substr(24, 4), "word");
  for (int i = 0; i < 4; ++i) bytes[33 + i] = '\xff';
  EXPECT_FALSE(DeserializeDataset(bytes).ok());
}

TEST(SerializeTest, HostileDictionaryCountFailsBeforeAllocating) {
  std::string bytes = SerializeDataset(DictDataset());
  // A mid-range count (256M entries) fits comfortably in the u32 field,
  // so only comparing the declared count against the bytes actually
  // remaining stops the decoder from reserving gigabytes up front.
  ASSERT_EQ(bytes.substr(24, 4), "word");
  bytes[33] = 0;
  bytes[34] = 0;
  bytes[35] = 0;
  bytes[36] = 0x10;  // 0x10000000 entries declared
  auto result = DeserializeDataset(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, RejectsDuplicateDictionaryEntries) {
  std::string bytes = SerializeDataset(DictDataset());
  // Rewrite the entry "beta" as a second "alpha": a code would then
  // render through an entry that does not exist.
  std::string beta = std::string("\x04\x00\x00\x00", 4) + "beta";
  std::string dup = std::string("\x05\x00\x00\x00", 4) + "alpha";
  size_t at = bytes.find(beta);
  ASSERT_NE(at, std::string::npos);
  bytes.replace(at, beta.size(), dup);
  auto result = DeserializeDataset(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("duplicate"), std::string::npos);
}

TEST(SerializeTest, RejectsCardinalityBeyondDictionary) {
  std::string bytes = SerializeDataset(DictDataset());
  bytes[28] = '\x64';  // column "word": cardinality 2 -> 100
  auto result = DeserializeDataset(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("cardinality"),
            std::string::npos);
}

TEST(SerializeTest, SurvivesRandomSingleByteFlips) {
  Dataset d = DictDataset();
  std::string bytes = SerializeDataset(d);
  Rng rng(99);
  for (int t = 0; t < 200; ++t) {
    std::string mutated = bytes;
    size_t at = static_cast<size_t>(rng.Uniform(mutated.size()));
    mutated[at] = static_cast<char>(rng.Uniform(256));
    // Must either fail cleanly or round-trip to a structurally valid
    // data set — never crash.
    auto result = DeserializeDataset(mutated);
    if (result.ok()) {
      EXPECT_EQ(result->num_attributes(), 2u);
    }
  }
}

TEST(SerializeTest, FilterDeserializeRejectsHostileProvenance) {
  Rng rng(41);
  Dataset d = MakeUniformGridSample(3, 3, 20, &rng);
  TupleSampleFilterOptions opts;
  opts.sample_size = 8;
  auto filter = TupleSampleFilter::Build(d, opts, &rng);
  ASSERT_TRUE(filter.ok());
  std::string bytes = filter->Serialize();
  // Provenance count u64 lives at offset 5.
  for (int i = 0; i < 8; ++i) bytes[5 + i] = '\xff';
  EXPECT_FALSE(TupleSampleFilter::Deserialize(bytes).ok());
  // A mid-range bomb (128M rows declared, ~512MB if resized eagerly)
  // must fail against the remaining byte count, not get allocated.
  bytes = filter->Serialize();
  for (int i = 0; i < 8; ++i) bytes[5 + i] = 0;
  bytes[8] = 0x08;  // 0x08000000 provenance entries declared
  EXPECT_FALSE(TupleSampleFilter::Deserialize(bytes).ok());
}

TEST(SerializeTest, FileReadRejectsCorruptFile) {
  std::string path = "/tmp/qikey_serialize_corrupt.bin";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "QIKD\x01\x00\x00\x00 definitely not a dataset";
  out.close();
  EXPECT_FALSE(ReadDatasetFile(path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, FileRoundTrip) {
  Rng rng(2);
  Dataset d = MakeUniformGridSample(3, 3, 50, &rng);
  std::string path = "/tmp/qikey_serialize_test.bin";
  ASSERT_TRUE(WriteDatasetFile(d, path).ok());
  auto back = ReadDatasetFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 50u);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadDatasetFile(path).ok());
}

TEST(SerializeTest, CsvExportRoundTripsSeparationStructure) {
  Rng rng(21);
  Dataset d = MakeUniformGridSample(4, 5, 150, &rng);
  std::string csv = DatasetToCsv(d);
  auto back = LoadCsvDatasetFromString(csv);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), d.num_rows());
  ASSERT_EQ(back->num_attributes(), d.num_attributes());
  // Dictionary codes may be renumbered, but the separation structure
  // (what the library computes on) must be identical.
  Rng qrng(22);
  for (int t = 0; t < 30; ++t) {
    AttributeSet a = AttributeSet::Random(4, 0.5, &qrng);
    EXPECT_EQ(ExactUnseparatedPairs(d, a), ExactUnseparatedPairs(*back, a));
  }
  EXPECT_EQ(back->schema().names(), d.schema().names());
}

TEST(SerializeTest, CsvExportPreservesDictionaryValues) {
  DatasetBuilder b({"word"});
  ASSERT_TRUE(b.AddRow({"hello, world"}).ok());  // needs quoting
  ASSERT_TRUE(b.AddRow({"plain"}).ok());
  Dataset d = std::move(b).Finish();
  auto back = LoadCsvDatasetFromString(DatasetToCsv(d));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->FormatRow(0), "hello, world");
}

// Full-fidelity CSV round trip: every value — quoted, delimiter-laden,
// newline-laden, empty, whitespace-edged — must come back verbatim.
TEST(SerializeTest, CsvRoundTripsHostileValues) {
  DatasetBuilder b({"name", "payload", "tail"});
  ASSERT_TRUE(b.AddRow({"comma", "a,b,c", "x"}).ok());
  ASSERT_TRUE(b.AddRow({"quote", "say \"hi\" now", "y"}).ok());
  ASSERT_TRUE(b.AddRow({"newline", "line1\nline2", "z"}).ok());
  ASSERT_TRUE(b.AddRow({"crlf", "line1\r\nline2", "w"}).ok());
  ASSERT_TRUE(b.AddRow({"empty", "", "v"}).ok());
  ASSERT_TRUE(b.AddRow({"spaces", "  padded  ", "u"}).ok());
  ASSERT_TRUE(b.AddRow({"mixed", "\"a\",\nb", "t"}).ok());
  Dataset d = std::move(b).Finish();

  std::string csv = DatasetToCsv(d);
  auto back = LoadCsvDatasetFromString(csv);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), d.num_rows());
  ASSERT_EQ(back->num_attributes(), d.num_attributes());
  EXPECT_EQ(back->schema().names(), d.schema().names());
  for (RowIndex i = 0; i < d.num_rows(); ++i) {
    EXPECT_EQ(back->FormatRow(i), d.FormatRow(i)) << "row " << i;
  }

  // And a second lap: export of the reload must be byte-identical.
  EXPECT_EQ(DatasetToCsv(*back), csv);
}

TEST(SerializeTest, CsvRoundTripsSingleEmptyField) {
  DatasetBuilder b({"only"});
  ASSERT_TRUE(b.AddRow({""}).ok());
  ASSERT_TRUE(b.AddRow({"x"}).ok());
  ASSERT_TRUE(b.AddRow({""}).ok());
  Dataset d = std::move(b).Finish();
  auto back = LoadCsvDatasetFromString(DatasetToCsv(d));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), 3u);
  EXPECT_EQ(back->FormatRow(0), "");
  EXPECT_EQ(back->FormatRow(1), "x");
  EXPECT_EQ(back->FormatRow(2), "");
}

TEST(SerializeTest, CsvParsesQuotedNewlinesFromRawText) {
  auto back = LoadCsvDatasetFromString(
      "a,b\n\"1\n2\",3\n4,\"5,6\"\n");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->FormatRow(0), "1\n2|3");
  EXPECT_EQ(back->FormatRow(1), "4|5,6");
}

// --------------------------------------------------------------- filter

TEST(SerializeTest, FilterRoundTripAnswersIdentically) {
  Rng rng(3);
  Dataset d = MakeUniformGridSample(6, 3, 500, &rng);
  TupleSampleFilterOptions opts;
  opts.eps = 0.02;
  opts.sample_size = 80;
  auto filter = TupleSampleFilter::Build(d, opts, &rng);
  ASSERT_TRUE(filter.ok());
  std::string bytes = filter->Serialize();
  auto back = TupleSampleFilter::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->sample_size(), filter->sample_size());
  Rng qrng(4);
  for (int t = 0; t < 100; ++t) {
    AttributeSet a = AttributeSet::Random(6, 0.4, &qrng);
    EXPECT_EQ(back->Query(a), filter->Query(a));
    EXPECT_EQ(back->QueryWitness(a), filter->QueryWitness(a));
  }
}

TEST(SerializeTest, FilterRejectsCorruptPayload) {
  EXPECT_FALSE(TupleSampleFilter::Deserialize("nope").ok());
  EXPECT_FALSE(TupleSampleFilter::Deserialize("QIKFxxxxxxxxx").ok());
}

// ------------------------------------------------------------ statistics

TEST(StatisticsTest, HandComputedProfile) {
  Dataset d = DictDataset();
  ColumnStats word = ComputeColumnStats(d, 0);
  EXPECT_EQ(word.distinct, 2u);
  EXPECT_NEAR(word.top_frequency, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(word.unseparated_pairs, 1u);  // the two alphas
  EXPECT_NEAR(word.separation_ratio, 1.0 - 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(word.uniqueness, 1.0 / 3.0, 1e-12);
  // Entropy of (2/3, 1/3).
  double p1 = 2.0 / 3.0, p2 = 1.0 / 3.0;
  EXPECT_NEAR(word.entropy_bits,
              -(p1 * std::log2(p1) + p2 * std::log2(p2)), 1e-12);

  ColumnStats num = ComputeColumnStats(d, 1);
  EXPECT_EQ(num.distinct, 3u);
  EXPECT_DOUBLE_EQ(num.separation_ratio, 1.0);
  EXPECT_DOUBLE_EQ(num.uniqueness, 1.0);
}

TEST(StatisticsTest, ProfileCoversAllColumns) {
  Rng rng(5);
  Dataset d = MakeUniformGridSample(5, 4, 300, &rng);
  std::vector<ColumnStats> profile = ProfileDataset(d);
  ASSERT_EQ(profile.size(), 5u);
  for (const ColumnStats& s : profile) {
    EXPECT_LE(s.distinct, 4u);
    EXPECT_GE(s.entropy_bits, 0.0);
    EXPECT_LE(s.entropy_bits, 2.0 + 1e-9);  // log2(4)
  }
  std::string table = FormatProfileTable(profile);
  EXPECT_NE(table.find("a0"), std::string::npos);
  EXPECT_NE(table.find("sep-ratio"), std::string::npos);
}

TEST(StatisticsTest, UniformGridEntropyNearMax) {
  Rng rng(6);
  Dataset d = MakeUniformGridSample(1, 8, 20000, &rng);
  ColumnStats s = ComputeColumnStats(d, 0);
  EXPECT_NEAR(s.entropy_bits, 3.0, 0.01);
}

}  // namespace
}  // namespace qikey
