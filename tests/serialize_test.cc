#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/separation.h"
#include "core/tuple_sample_filter.h"
#include "data/csv_loader.h"
#include "data/dataset_builder.h"
#include "data/generators/uniform_grid.h"
#include "data/serialize.h"
#include "data/statistics.h"
#include "util/rng.h"

namespace qikey {
namespace {

Dataset DictDataset() {
  DatasetBuilder b({"word", "num"});
  EXPECT_TRUE(b.AddRow({"alpha", "1"}).ok());
  EXPECT_TRUE(b.AddRow({"beta", "2"}).ok());
  EXPECT_TRUE(b.AddRow({"alpha", "3"}).ok());
  return std::move(b).Finish();
}

// -------------------------------------------------------------- dataset

TEST(SerializeTest, RoundTripsSyntheticDataset) {
  Rng rng(1);
  Dataset d = MakeUniformGridSample(4, 5, 200, &rng);
  std::string bytes = SerializeDataset(d);
  auto back = DeserializeDataset(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), d.num_rows());
  EXPECT_EQ(back->num_attributes(), d.num_attributes());
  for (RowIndex r = 0; r < d.num_rows(); ++r) {
    for (AttributeIndex j = 0; j < d.num_attributes(); ++j) {
      ASSERT_EQ(back->code(r, j), d.code(r, j));
    }
  }
  EXPECT_EQ(back->schema().names(), d.schema().names());
}

TEST(SerializeTest, RoundTripsDictionaries) {
  Dataset d = DictDataset();
  auto back = DeserializeDataset(SerializeDataset(d));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->FormatRow(0), "alpha|1");
  EXPECT_EQ(back->FormatRow(2), "alpha|3");
}

TEST(SerializeTest, RejectsCorruption) {
  Dataset d = DictDataset();
  std::string bytes = SerializeDataset(d);
  EXPECT_FALSE(DeserializeDataset("garbage").ok());
  std::string truncated = bytes.substr(0, bytes.size() - 3);
  EXPECT_FALSE(DeserializeDataset(truncated).ok());
  std::string extended = bytes + "x";
  EXPECT_FALSE(DeserializeDataset(extended).ok());
  std::string magic_broken = bytes;
  magic_broken[0] = 'X';
  EXPECT_FALSE(DeserializeDataset(magic_broken).ok());
}

TEST(SerializeTest, FileRoundTrip) {
  Rng rng(2);
  Dataset d = MakeUniformGridSample(3, 3, 50, &rng);
  std::string path = "/tmp/qikey_serialize_test.bin";
  ASSERT_TRUE(WriteDatasetFile(d, path).ok());
  auto back = ReadDatasetFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 50u);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadDatasetFile(path).ok());
}

TEST(SerializeTest, CsvExportRoundTripsSeparationStructure) {
  Rng rng(21);
  Dataset d = MakeUniformGridSample(4, 5, 150, &rng);
  std::string csv = DatasetToCsv(d);
  auto back = LoadCsvDatasetFromString(csv);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), d.num_rows());
  ASSERT_EQ(back->num_attributes(), d.num_attributes());
  // Dictionary codes may be renumbered, but the separation structure
  // (what the library computes on) must be identical.
  Rng qrng(22);
  for (int t = 0; t < 30; ++t) {
    AttributeSet a = AttributeSet::Random(4, 0.5, &qrng);
    EXPECT_EQ(ExactUnseparatedPairs(d, a), ExactUnseparatedPairs(*back, a));
  }
  EXPECT_EQ(back->schema().names(), d.schema().names());
}

TEST(SerializeTest, CsvExportPreservesDictionaryValues) {
  DatasetBuilder b({"word"});
  ASSERT_TRUE(b.AddRow({"hello, world"}).ok());  // needs quoting
  ASSERT_TRUE(b.AddRow({"plain"}).ok());
  Dataset d = std::move(b).Finish();
  auto back = LoadCsvDatasetFromString(DatasetToCsv(d));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->FormatRow(0), "hello, world");
}

// --------------------------------------------------------------- filter

TEST(SerializeTest, FilterRoundTripAnswersIdentically) {
  Rng rng(3);
  Dataset d = MakeUniformGridSample(6, 3, 500, &rng);
  TupleSampleFilterOptions opts;
  opts.eps = 0.02;
  opts.sample_size = 80;
  auto filter = TupleSampleFilter::Build(d, opts, &rng);
  ASSERT_TRUE(filter.ok());
  std::string bytes = filter->Serialize();
  auto back = TupleSampleFilter::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->sample_size(), filter->sample_size());
  Rng qrng(4);
  for (int t = 0; t < 100; ++t) {
    AttributeSet a = AttributeSet::Random(6, 0.4, &qrng);
    EXPECT_EQ(back->Query(a), filter->Query(a));
    EXPECT_EQ(back->QueryWitness(a), filter->QueryWitness(a));
  }
}

TEST(SerializeTest, FilterRejectsCorruptPayload) {
  EXPECT_FALSE(TupleSampleFilter::Deserialize("nope").ok());
  EXPECT_FALSE(TupleSampleFilter::Deserialize("QIKFxxxxxxxxx").ok());
}

// ------------------------------------------------------------ statistics

TEST(StatisticsTest, HandComputedProfile) {
  Dataset d = DictDataset();
  ColumnStats word = ComputeColumnStats(d, 0);
  EXPECT_EQ(word.distinct, 2u);
  EXPECT_NEAR(word.top_frequency, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(word.unseparated_pairs, 1u);  // the two alphas
  EXPECT_NEAR(word.separation_ratio, 1.0 - 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(word.uniqueness, 1.0 / 3.0, 1e-12);
  // Entropy of (2/3, 1/3).
  double p1 = 2.0 / 3.0, p2 = 1.0 / 3.0;
  EXPECT_NEAR(word.entropy_bits,
              -(p1 * std::log2(p1) + p2 * std::log2(p2)), 1e-12);

  ColumnStats num = ComputeColumnStats(d, 1);
  EXPECT_EQ(num.distinct, 3u);
  EXPECT_DOUBLE_EQ(num.separation_ratio, 1.0);
  EXPECT_DOUBLE_EQ(num.uniqueness, 1.0);
}

TEST(StatisticsTest, ProfileCoversAllColumns) {
  Rng rng(5);
  Dataset d = MakeUniformGridSample(5, 4, 300, &rng);
  std::vector<ColumnStats> profile = ProfileDataset(d);
  ASSERT_EQ(profile.size(), 5u);
  for (const ColumnStats& s : profile) {
    EXPECT_LE(s.distinct, 4u);
    EXPECT_GE(s.entropy_bits, 0.0);
    EXPECT_LE(s.entropy_bits, 2.0 + 1e-9);  // log2(4)
  }
  std::string table = FormatProfileTable(profile);
  EXPECT_NE(table.find("a0"), std::string::npos);
  EXPECT_NE(table.find("sep-ratio"), std::string::npos);
}

TEST(StatisticsTest, UniformGridEntropyNearMax) {
  Rng rng(6);
  Dataset d = MakeUniformGridSample(1, 8, 20000, &rng);
  ColumnStats s = ComputeColumnStats(d, 0);
  EXPECT_NEAR(s.entropy_bits, 3.0, 0.01);
}

}  // namespace
}  // namespace qikey
