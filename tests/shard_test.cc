#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/key_enumeration.h"
#include "core/mx_pair_filter.h"
#include "core/tuple_sample_filter.h"
#include "data/csv_loader.h"
#include "data/dataset_builder.h"
#include "data/generators/tabular.h"
#include "data/generators/uniform_grid.h"
#include "engine/pipeline.h"
#include "shard/filter_merger.h"
#include "shard/shard_artifact.h"
#include "shard/shard_builder.h"
#include "shard/sharded_loader.h"
#include "util/csv.h"
#include "util/rng.h"

namespace qikey {
namespace {

std::string WriteTempFile(const std::string& name, const std::string& text) {
  std::string path = "/tmp/qikey_shard_test_" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return path;
}

ShardedBuildOptions TupleBuild(uint64_t sample_size, size_t shards,
                               uint64_t seed) {
  ShardedBuildOptions options;
  options.backend = FilterBackend::kTupleSample;
  options.tuple_sample_size = sample_size;
  options.num_shards = shards;
  options.seed = seed;
  return options;
}

// ------------------------------------------------------------ primitives

TEST(HypergeometricTest, RespectsSupportAndMean) {
  Rng rng(7);
  const uint64_t n1 = 30, n2 = 70, draws = 20;
  double sum = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    uint64_t k = rng.HypergeometricDraw(draws, n1, n2);
    ASSERT_LE(k, std::min(draws, n1));
    ASSERT_GE(draws - k, draws > n2 ? draws - n2 : 0);
    sum += static_cast<double>(k);
  }
  // E[k] = draws * n1 / (n1 + n2) = 6; sd ~ 1.45/sqrt(trials).
  EXPECT_NEAR(sum / trials, 6.0, 0.12);
}

TEST(HypergeometricTest, ExhaustsOnePopulation) {
  Rng rng(8);
  EXPECT_EQ(rng.HypergeometricDraw(5, 5, 0), 5u);
  EXPECT_EQ(rng.HypergeometricDraw(5, 0, 5), 0u);
  EXPECT_EQ(rng.HypergeometricDraw(10, 4, 6), 4u);
}

// --------------------------------------------------------- tuple merge

// The merged tuple sample must be a uniform r-subset of the union:
// every row's inclusion frequency matches r/n, which is exactly what a
// single-pass build produces.
TEST(FilterMergeTest, TupleMergeInclusionIsUniform) {
  DatasetBuilder b({"v"});
  const uint64_t n = 12, r = 5;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(b.AddRow({"row" + std::to_string(i)}).ok());
  }
  Dataset d = std::move(b).Finish();

  const int trials = 4000;
  std::vector<int> hits(n, 0);
  for (int t = 0; t < trials; ++t) {
    auto artifacts = BuildShardArtifacts(d, TupleBuild(r, 3, 1000 + t));
    ASSERT_TRUE(artifacts.ok());
    FilterMerger::Options merge_options;
    merge_options.backend = FilterBackend::kTupleSample;
    merge_options.tuple_sample_size = r;
    merge_options.seed = 5000 + t;
    FilterMerger merger(merge_options);
    for (auto& a : *artifacts) ASSERT_TRUE(merger.Add(std::move(a)).ok());
    auto merged = std::move(merger).Finish();
    ASSERT_TRUE(merged.ok());
    ASSERT_EQ(merged->tuple_filter->sample_size(), r);
    std::set<RowIndex> rows(merged->tuple_filter->provenance().begin(),
                            merged->tuple_filter->provenance().end());
    ASSERT_EQ(rows.size(), r) << "duplicate rows in the merged sample";
    for (RowIndex row : rows) hits[row]++;
  }
  const double expect = static_cast<double>(r) / n;  // 0.4167
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(hits[i] / static_cast<double>(trials), expect, 0.04)
        << "row " << i;
  }
}

// Merged samples must answer like the sample they are: values survive
// re-encoding through the union dictionary.
TEST(FilterMergeTest, TupleMergePreservesValues) {
  DatasetBuilder b({"city", "zip"});
  ASSERT_TRUE(b.AddRow({"SF", "94103"}).ok());
  ASSERT_TRUE(b.AddRow({"SD", "92115"}).ok());
  ASSERT_TRUE(b.AddRow({"SF", "94110"}).ok());
  ASSERT_TRUE(b.AddRow({"LA", "90001"}).ok());
  Dataset d = std::move(b).Finish();
  auto artifacts = BuildShardArtifacts(d, TupleBuild(4, 2, 3));
  ASSERT_TRUE(artifacts.ok());
  FilterMerger::Options merge_options;
  merge_options.tuple_sample_size = 4;
  FilterMerger merger(merge_options);
  for (auto& a : *artifacts) ASSERT_TRUE(merger.Add(std::move(a)).ok());
  auto merged = std::move(merger).Finish();
  ASSERT_TRUE(merged.ok());
  const Dataset& sample = merged->tuple_filter->sample();
  ASSERT_EQ(sample.num_rows(), 4u);
  std::multiset<std::string> rows;
  for (RowIndex i = 0; i < sample.num_rows(); ++i) {
    rows.insert(sample.FormatRow(i));
  }
  EXPECT_EQ(rows, (std::multiset<std::string>{
                      "SF|94103", "SD|92115", "SF|94110", "LA|90001"}));
}

// ------------------------------------------------------------ MX merge

// With one slot, the merged pair must be uniform over all C(n,2)
// unordered pairs of the union — the distribution a single-pass MX
// build draws from.
TEST(FilterMergeTest, MxMergeSlotDistributionIsUniform) {
  DatasetBuilder b({"v"});
  const uint64_t n = 6;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(b.AddRow({"row" + std::to_string(i)}).ok());
  }
  Dataset d = std::move(b).Finish();

  const int trials = 6000;
  std::map<std::pair<std::string, std::string>, int> freq;
  for (int t = 0; t < trials; ++t) {
    ShardedBuildOptions options = TupleBuild(n, 2, 2000 + t);
    options.backend = FilterBackend::kMxPair;
    options.pair_slots = 1;
    auto artifacts = BuildShardArtifacts(d, options);
    ASSERT_TRUE(artifacts.ok());
    ASSERT_EQ(artifacts->size(), 2u);
    FilterMerger::Options merge_options;
    merge_options.backend = FilterBackend::kMxPair;
    merge_options.tuple_sample_size = n;
    merge_options.seed = 9000 + t;
    FilterMerger merger(merge_options);
    for (auto& a : *artifacts) ASSERT_TRUE(merger.Add(std::move(a)).ok());
    auto merged = std::move(merger).Finish();
    ASSERT_TRUE(merged.ok());
    const Dataset* table = merged->mx_filter->materialized();
    ASSERT_NE(table, nullptr);
    ASSERT_EQ(table->num_rows(), 2u);
    std::string a = table->FormatRow(0), b2 = table->FormatRow(1);
    if (b2 < a) std::swap(a, b2);
    EXPECT_NE(a, b2) << "self-pair in merged slot";
    freq[{a, b2}]++;
  }
  const double expect = 1.0 / 15.0;  // C(6,2) pairs
  EXPECT_EQ(freq.size(), 15u) << "some pair never sampled";
  for (const auto& [pair, count] : freq) {
    EXPECT_NEAR(count / static_cast<double>(trials), expect, 0.018)
        << pair.first << " x " << pair.second;
  }
}

// ------------------------------------------------- pipeline equivalence

// The acceptance-criteria property: in the exact regime (sample covers
// the table) RunSharded must return the same key as the single-process
// pipeline, and the merged filter must accept exactly the minimal keys
// a from-scratch enumeration finds — for random tables, shard counts,
// and seeds.
TEST(RunShardedTest, MatchesSinglePipelineFrontier) {
  for (int round = 0; round < 6; ++round) {
    Rng data_rng(100 + round);
    Dataset d = MakeUniformGridSample(5, 3, 40 + 10 * round, &data_rng);
    PipelineOptions options;
    options.eps = 0.001;
    options.sample_size = d.num_rows();  // exact regime
    DiscoveryPipeline pipeline(options);

    Rng run_rng(77);
    auto single = pipeline.Run(d, &run_rng);
    ASSERT_TRUE(single.ok());

    Rng shard_pick(500 + round);
    for (size_t shards : {size_t{1}, size_t{2}, size_t{3}, size_t{5}}) {
      ShardedRunOptions sharded;
      sharded.num_shards = shards;
      uint64_t seed = shard_pick.Next();
      auto result = pipeline.RunSharded(d, sharded, seed);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->key, single->key)
          << "round " << round << " shards " << shards;
      EXPECT_EQ(result->covered_sample, single->covered_sample);
      EXPECT_EQ(result->verdict, single->verdict);
      EXPECT_EQ(result->rows, d.num_rows());

      // Frontier: merged filter accepts exactly the minimal exact keys.
      auto artifacts = BuildShardArtifacts(
          d, TupleBuild(d.num_rows(), shards, seed));
      ASSERT_TRUE(artifacts.ok());
      FilterMerger::Options merge_options;
      merge_options.tuple_sample_size = d.num_rows();
      merge_options.seed = seed + 1;
      FilterMerger merger(merge_options);
      for (auto& a : *artifacts) ASSERT_TRUE(merger.Add(std::move(a)).ok());
      auto merged = std::move(merger).Finish();
      ASSERT_TRUE(merged.ok());
      KeyEnumerationOptions enum_options;
      enum_options.max_size = 5;
      auto sharded_frontier = EnumerateMinimalAcceptedSets(
          *merged->tuple_filter, d.num_attributes(), enum_options);
      auto exact_frontier = EnumerateMinimalKeys(d, enum_options);
      ASSERT_TRUE(sharded_frontier.ok());
      ASSERT_TRUE(exact_frontier.ok());
      EXPECT_EQ(*sharded_frontier, *exact_frontier)
          << "round " << round << " shards " << shards;
    }
  }
}

TEST(RunShardedTest, DeterministicAcrossThreadCounts) {
  Rng data_rng(42);
  Dataset d = MakeUniformGridSample(6, 4, 300, &data_rng);
  PipelineOptions serial;
  serial.eps = 0.01;
  serial.num_threads = 1;
  PipelineOptions parallel = serial;
  parallel.num_threads = 4;
  ShardedRunOptions sharded;
  sharded.num_shards = 4;
  auto a = DiscoveryPipeline(serial).RunSharded(d, sharded, 9);
  auto b = DiscoveryPipeline(parallel).RunSharded(d, sharded, 9);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->key, b->key);
  EXPECT_EQ(a->verdict, b->verdict);
  EXPECT_EQ(a->num_shards, b->num_shards);
}

TEST(RunShardedTest, MxBackendAcceptsTrueKeyAndIsDeterministic) {
  Rng data_rng(11);
  Dataset d = MakeUniformGridSample(5, 4, 200, &data_rng);
  PipelineOptions options;
  options.eps = 0.01;
  options.backend = FilterBackend::kMxPair;
  options.sample_size = d.num_rows();
  ShardedRunOptions sharded;
  sharded.num_shards = 3;
  auto a = DiscoveryPipeline(options).RunSharded(d, sharded, 21);
  auto b = DiscoveryPipeline(options).RunSharded(d, sharded, 21);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->key, b->key);
  // The exact-regime greedy key is a true key; MX never rejects one.
  EXPECT_EQ(a->verdict, FilterVerdict::kAccept);
}

// --------------------------------------------------------- CSV ingest

std::string TrickyCsv() {
  return
      "name,notes,code\n"
      "alice,\"line one\nline two\",7\n"
      "bob,\"comma, inside\",8\n"
      "carol,,9\n"
      "\n"
      "dave,\"quoted \"\"word\"\"\",10\n"
      "erin,plain,11\n"
      "frank,\"multi\nline\nagain\",12\n"
      "grace,last,13\n";
}

TEST(ShardedLoaderTest, PlanCoversEveryRowAcrossShardCounts) {
  std::string path = WriteTempFile("plan.csv", TrickyCsv());
  auto whole = LoadCsvDataset(path);
  ASSERT_TRUE(whole.ok());
  ASSERT_EQ(whole->num_rows(), 7u);

  for (size_t shards : {size_t{1}, size_t{2}, size_t{3}, size_t{4}}) {
    auto plan = PlanCsvShards(path, shards);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_EQ(plan->total_rows, 7u);
    EXPECT_EQ(plan->attribute_names,
              (std::vector<std::string>{"name", "notes", "code"}));
    uint64_t covered = 0;
    std::vector<std::vector<std::string>> collected;
    for (const ShardRange& range : plan->ranges) {
      EXPECT_EQ(range.first_row, covered);
      EXPECT_GE(range.num_rows, 2u);
      covered += range.num_rows;
      Status st = ForEachCsvRecordInRange(
          path, range, CsvOptions{},
          [&](const std::vector<std::string>& fields) {
            collected.push_back(fields);
            return Status::OK();
          });
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    EXPECT_EQ(covered, 7u);
    ASSERT_EQ(collected.size(), 7u);
    EXPECT_EQ(collected[0],
              (std::vector<std::string>{"alice", "line one\nline two", "7"}));
    EXPECT_EQ(collected[2], (std::vector<std::string>{"carol", "", "9"}));
    EXPECT_EQ(collected[3],
              (std::vector<std::string>{"dave", "quoted \"word\"", "10"}));
    EXPECT_EQ(collected[5],
              (std::vector<std::string>{"frank", "multi\nline\nagain", "12"}));
  }
}

TEST(ShardedLoaderTest, ChunkedIngestMatchesWholeFileLoad) {
  Rng rng(5);
  TabularSpec spec = AdultLikeSpec();
  spec.num_rows = 500;
  Dataset d = MakeTabular(spec, &rng);
  std::string path = WriteTempFile("chunks.csv", DatasetToCsv(d));

  ShardedLoaderOptions options;
  options.shard_rows = 64;
  ShardedLoader loader(options);
  std::vector<std::string> rows;
  uint64_t next_first = 0;
  auto stats = loader.Load(path, [&](ShardInput chunk) {
    EXPECT_EQ(chunk.first_row, next_first);
    next_first += chunk.rows.num_rows();
    for (RowIndex i = 0; i < chunk.rows.num_rows(); ++i) {
      rows.push_back(chunk.rows.FormatRow(i));
    }
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->total_rows, 500u);
  EXPECT_GE(stats->num_shards, 500u / 66);

  auto whole = LoadCsvDataset(path);
  ASSERT_TRUE(whole.ok());
  ASSERT_EQ(rows.size(), whole->num_rows());
  for (RowIndex i = 0; i < whole->num_rows(); ++i) {
    EXPECT_EQ(rows[i], whole->FormatRow(i));
  }
}

TEST(RunShardedTest, CsvMatchesInMemorySharding) {
  Rng rng(17);
  Dataset d = MakeUniformGridSample(4, 5, 150, &rng);
  std::string path = WriteTempFile("match.csv", DatasetToCsv(d));
  // Reload so both runs see the same dictionary-encoded table.
  auto reloaded = LoadCsvDataset(path);
  ASSERT_TRUE(reloaded.ok());

  PipelineOptions options;
  options.eps = 0.001;
  options.sample_size = d.num_rows();
  DiscoveryPipeline pipeline(options);
  ShardedRunOptions sharded;
  sharded.num_shards = 3;
  auto from_memory = pipeline.RunSharded(*reloaded, sharded, 33);
  auto from_csv = pipeline.RunSharded(path, sharded, 33);
  ASSERT_TRUE(from_memory.ok());
  ASSERT_TRUE(from_csv.ok()) << from_csv.status().ToString();
  EXPECT_EQ(from_csv->key, from_memory->key);
  EXPECT_EQ(from_csv->rows, from_memory->rows);
  EXPECT_EQ(from_csv->verdict, from_memory->verdict);
}

TEST(RunShardedTest, MemoryBudgetIsHonoredOrRefused) {
  Rng rng(23);
  TabularSpec spec = AdultLikeSpec();
  spec.num_rows = 2000;
  Dataset d = MakeTabular(spec, &rng);
  std::string path = WriteTempFile("budget.csv", DatasetToCsv(d));

  PipelineOptions options;
  options.eps = 0.01;
  DiscoveryPipeline pipeline(options);

  ShardedRunOptions roomy;
  roomy.memory_budget_bytes = 8 << 20;
  roomy.shard_rows = 256;
  auto ok = pipeline.RunSharded(path, roomy, 3);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_GT(ok->num_shards, 4u);
  EXPECT_LE(ok->peak_tracked_bytes, roomy.memory_budget_bytes);
  EXPECT_GT(ok->peak_tracked_bytes, 0u);

  ShardedRunOptions tiny;
  tiny.memory_budget_bytes = 2048;  // absurd: even one chunk won't fit
  tiny.shard_rows = 256;
  auto refused = pipeline.RunSharded(path, tiny, 3);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kOutOfRange);
}

// ---------------------------------------------------------- artifacts

TEST(ShardArtifactTest, RoundTripsThroughFilesAndMergesIdentically) {
  Rng rng(29);
  TabularSpec spec = AdultLikeSpec();
  spec.num_rows = 400;
  Dataset d = MakeTabular(spec, &rng);
  std::string csv = WriteTempFile("artifacts.csv", DatasetToCsv(d));

  ShardedBuildOptions build = TupleBuild(64, 3, 77);
  build.num_threads = 2;
  auto artifacts = BuildShardArtifactsFromCsv(csv, build);
  ASSERT_TRUE(artifacts.ok()) << artifacts.status().ToString();
  ASSERT_EQ(artifacts->size(), 3u);

  // Persist every artifact, restore, and check the restored merge
  // answers exactly like the in-process merge (same merge seed).
  std::vector<ShardFilterArtifact> restored;
  for (const ShardFilterArtifact& artifact : *artifacts) {
    std::string path = "/tmp/qikey_shard_test_artifact_" +
                       std::to_string(artifact.shard_index) + ".bin";
    ASSERT_TRUE(WriteShardArtifactFile(artifact, path).ok());
    auto back = ReadShardArtifactFile(path);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->shard_index, artifact.shard_index);
    EXPECT_EQ(back->rows_seen, artifact.rows_seen);
    EXPECT_EQ(back->first_row, artifact.first_row);
    EXPECT_EQ(back->provenance, artifact.provenance);
    restored.push_back(std::move(back).ValueOrDie());
    std::remove(path.c_str());
  }

  auto merge = [&](std::vector<ShardFilterArtifact> parts) {
    FilterMerger::Options merge_options;
    merge_options.tuple_sample_size = 64;
    merge_options.seed = 123;
    FilterMerger merger(merge_options);
    // Out-of-order on purpose: 2, 0, 1.
    std::swap(parts[0], parts[2]);
    for (auto& p : parts) EXPECT_TRUE(merger.Add(std::move(p)).ok());
    return std::move(merger).Finish();
  };
  auto direct = merge(std::move(*artifacts));
  auto from_disk = merge(std::move(restored));
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(from_disk.ok());
  ASSERT_EQ(direct->tuple_filter->sample_size(),
            from_disk->tuple_filter->sample_size());
  EXPECT_EQ(direct->tuple_filter->provenance(),
            from_disk->tuple_filter->provenance());
  Rng qrng(31);
  for (int t = 0; t < 50; ++t) {
    AttributeSet attrs =
        AttributeSet::Random(d.num_attributes(), 0.4, &qrng);
    EXPECT_EQ(direct->tuple_filter->Query(attrs),
              from_disk->tuple_filter->Query(attrs));
  }
}

TEST(ShardArtifactTest, RejectsCorruptBytes) {
  Rng rng(37);
  Dataset d = MakeUniformGridSample(3, 3, 30, &rng);
  auto artifacts = BuildShardArtifacts(d, TupleBuild(8, 1, 5));
  ASSERT_TRUE(artifacts.ok());
  std::string bytes = SerializeShardArtifact((*artifacts)[0]);

  EXPECT_FALSE(DeserializeShardArtifact("").ok());
  EXPECT_FALSE(DeserializeShardArtifact("garbage").ok());
  std::string magic = bytes;
  magic[0] = 'X';
  EXPECT_FALSE(DeserializeShardArtifact(magic).ok());
  for (size_t cut : {size_t{5}, size_t{20}, bytes.size() / 2,
                     bytes.size() - 1}) {
    EXPECT_FALSE(DeserializeShardArtifact(bytes.substr(0, cut)).ok())
        << "cut at " << cut;
  }
  EXPECT_FALSE(DeserializeShardArtifact(bytes + "x").ok());
  // Hostile provenance count: patch the u64 at offset 29 (after magic,
  // version, shard index, first_row, rows_seen, backend).
  std::string hostile = bytes;
  for (int i = 0; i < 8; ++i) hostile[29 + i] = '\xff';
  EXPECT_FALSE(DeserializeShardArtifact(hostile).ok());
}

TEST(FilterMergerTest, RejectsDuplicatesGapsAndMismatches) {
  Rng rng(41);
  Dataset d = MakeUniformGridSample(3, 3, 40, &rng);
  auto artifacts = BuildShardArtifacts(d, TupleBuild(8, 2, 5));
  ASSERT_TRUE(artifacts.ok());
  ASSERT_EQ(artifacts->size(), 2u);

  FilterMerger::Options merge_options;
  merge_options.tuple_sample_size = 8;
  {
    FilterMerger merger(merge_options);
    ShardFilterArtifact copy = (*artifacts)[0];
    ASSERT_TRUE(merger.Add((*artifacts)[0]).ok());
    EXPECT_FALSE(merger.Add(std::move(copy)).ok());  // duplicate index
  }
  {
    FilterMerger merger(merge_options);
    ASSERT_TRUE(merger.Add((*artifacts)[1]).ok());  // shard 0 missing
    auto merged = std::move(merger).Finish();
    EXPECT_FALSE(merged.ok());
  }
  {
    FilterMerger merger(merge_options);
    ShardFilterArtifact wrong = (*artifacts)[0];
    wrong.backend = FilterBackend::kMxPair;
    EXPECT_FALSE(merger.Add(std::move(wrong)).ok());
  }
  {
    auto empty = FilterMerger(merge_options);
    EXPECT_FALSE(std::move(empty).Finish().ok());
  }
}

}  // namespace
}  // namespace qikey
