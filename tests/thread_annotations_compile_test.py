#!/usr/bin/env python3
"""Negative-compile tests for the thread-safety annotations.

The annotations in src/util/thread_annotations.h only do anything under
clang's -Wthread-safety analysis, which gcc does not implement — so a
green gcc build proves nothing about them. This test drives clang
directly over small snippets built on qikey::Mutex:

  * a positive control (correct locking) must compile cleanly, proving
    the include paths and flags are right — without it, every violation
    snippet could be "failing" on a typo and the test would pass;
  * each violation snippet must FAIL to compile, and the diagnostic
    must come from the thread-safety analysis (checked against stderr),
    not from an unrelated error masquerading as a detection.

Exits 77 (the CTest SKIP_RETURN_CODE) when no clang is on PATH: local
gcc-only containers skip, the CI clang leg enforces.

Usage: thread_annotations_compile_test.py <src-dir>
"""

import shutil
import subprocess
import sys

CLANG_CANDIDATES = ["clang++"] + [f"clang++-{v}" for v in range(21, 13, -1)]

PRELUDE = """
#include "util/mutex.h"

using qikey::CondVar;
using qikey::Mutex;
using qikey::MutexLock;

struct Account {
  Mutex mu;
  CondVar changed;
  int balance GUARDED_BY(mu) = 0;

  void Deposit(int amount) REQUIRES(mu) { balance += amount; }
};
"""

POSITIVE_CONTROL = PRELUDE + """
int ReadBalance(Account& account) {
  MutexLock lock(account.mu);
  account.Deposit(1);
  while (account.balance == 0) account.changed.Wait(account.mu);
  return account.balance;
}
"""

# name -> snippet that must be rejected by -Werror=thread-safety.
VIOLATIONS = {
    "read_guarded_without_lock": PRELUDE + """
int ReadBalance(Account& account) {
  return account.balance;  // no lock held
}
""",
    "write_guarded_without_lock": PRELUDE + """
void Overwrite(Account& account) {
  account.balance = 7;  // no lock held
}
""",
    "call_requires_without_lock": PRELUDE + """
void DepositUnlocked(Account& account) {
  account.Deposit(5);  // REQUIRES(mu) not satisfied
}
""",
    "lock_not_released_on_return": PRELUDE + """
void LeakLock(Account& account) {
  account.mu.Lock();
  account.balance = 1;
  // missing Unlock: capability still held at end of function
}
""",
    "condvar_wait_without_mutex": PRELUDE + """
void WaitUnlocked(Account& account) {
  account.changed.Wait(account.mu);  // Wait REQUIRES(mu)
}
""",
}


def find_clang():
    for name in CLANG_CANDIDATES:
        if shutil.which(name):
            return name
    return None


def compile_snippet(clang, src_dir, code):
    cmd = [
        clang, "-std=c++20", "-fsyntax-only", "-I", src_dir,
        "-Wthread-safety", "-Werror=thread-safety", "-x", "c++", "-",
    ]
    proc = subprocess.run(
        cmd, input=code, capture_output=True, text=True, check=False
    )
    return proc.returncode, proc.stderr


def main():
    if len(sys.argv) != 2:
        print("usage: thread_annotations_compile_test.py <src-dir>")
        return 2
    src_dir = sys.argv[1]

    clang = find_clang()
    if clang is None:
        print("SKIP: no clang on PATH; thread-safety analysis needs clang")
        return 77

    failures = 0

    rc, stderr = compile_snippet(clang, src_dir, POSITIVE_CONTROL)
    if rc != 0:
        print("FAIL positive_control: correct locking did not compile:")
        print(stderr)
        failures += 1
    else:
        print("PASS positive_control (compiles cleanly)")

    for name, code in VIOLATIONS.items():
        rc, stderr = compile_snippet(clang, src_dir, code)
        if rc == 0:
            print(f"FAIL {name}: violation compiled without a diagnostic")
            failures += 1
        elif "thread-safety" not in stderr and "thread safety" not in stderr:
            print(f"FAIL {name}: rejected, but not by the thread-safety "
                  "analysis:")
            print(stderr)
            failures += 1
        else:
            print(f"PASS {name} (rejected by -Wthread-safety)")

    if failures:
        print(f"{failures} case(s) failed")
        return 1
    print(f"all {1 + len(VIOLATIONS)} cases passed with {clang}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
