#include <gtest/gtest.h>

#include <vector>

#include "core/key_enumeration.h"
#include "core/mx_pair_filter.h"
#include "core/tuple_sample_filter.h"
#include "data/generators/tabular.h"
#include "data/generators/uniform_grid.h"
#include "engine/pipeline.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace qikey {
namespace {

Dataset AdultishTable(uint64_t rows, uint64_t seed) {
  Rng rng(seed);
  TabularSpec spec = AdultLikeSpec();
  spec.num_rows = rows;
  return MakeTabular(spec, &rng);
}

// -------------------------------------------------- QueryBatch == Query

TEST(QueryBatchTest, MatchesPerSetQueryTupleSample) {
  Rng rng(11);
  Dataset d = MakeUniformGridSample(8, 3, 600, &rng);
  TupleSampleFilterOptions opts;
  opts.eps = 0.01;
  opts.sample_size = 80;
  auto filter = TupleSampleFilter::Build(d, opts, &rng);
  ASSERT_TRUE(filter.ok());

  Rng qrng(12);
  std::vector<AttributeSet> queries;
  for (int i = 0; i < 100; ++i) {
    queries.push_back(AttributeSet::Random(8, 0.4, &qrng));
  }
  std::vector<FilterVerdict> serial = filter->QueryBatch(queries, nullptr);
  ThreadPool pool(4);
  std::vector<FilterVerdict> parallel = filter->QueryBatch(queries, &pool);
  ASSERT_EQ(serial.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(serial[i], filter->Query(queries[i])) << i;
    EXPECT_EQ(parallel[i], serial[i]) << i;
  }
}

TEST(QueryBatchTest, MatchesPerSetQueryMxPair) {
  Rng rng(21);
  Dataset d = MakeUniformGridSample(8, 3, 600, &rng);
  MxPairFilterOptions opts;
  opts.eps = 0.01;
  opts.sample_size = 400;
  auto filter = MxPairFilter::Build(d, opts, &rng);
  ASSERT_TRUE(filter.ok());

  Rng qrng(22);
  std::vector<AttributeSet> queries;
  for (int i = 0; i < 100; ++i) {
    queries.push_back(AttributeSet::Random(8, 0.4, &qrng));
  }
  std::vector<FilterVerdict> serial = filter->QueryBatch(queries, nullptr);
  ThreadPool pool(4);
  std::vector<FilterVerdict> parallel = filter->QueryBatch(queries, &pool);
  ASSERT_EQ(serial.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(serial[i], filter->Query(queries[i])) << i;
    EXPECT_EQ(parallel[i], serial[i]) << i;
  }
}

TEST(QueryBatchTest, EmptyBatch) {
  Rng rng(31);
  Dataset d = MakeUniformGridSample(4, 3, 100, &rng);
  TupleSampleFilterOptions opts;
  opts.eps = 0.05;
  auto filter = TupleSampleFilter::Build(d, opts, &rng);
  ASSERT_TRUE(filter.ok());
  EXPECT_TRUE(filter->QueryBatch({}, nullptr).empty());
  ThreadPool pool(2);
  EXPECT_TRUE(filter->QueryBatch({}, &pool).empty());
}

// ------------------------------------- batched levelwise enumeration

TEST(QueryBatchTest, BatchedEnumerationMatchesExactOnFullSample) {
  // A filter whose sample is the entire table answers exactly, so the
  // batched filter-driven enumeration must equal the exact one (eps=0).
  Rng rng(41);
  Dataset d = MakeUniformGridSample(6, 3, 200, &rng);
  TupleSampleFilterOptions opts;
  opts.eps = 0.5;
  opts.sample_size = d.num_rows();
  auto filter = TupleSampleFilter::Build(d, opts, &rng);
  ASSERT_TRUE(filter.ok());

  KeyEnumerationOptions enum_opts;
  enum_opts.eps = 0.0;
  enum_opts.max_size = 6;
  auto exact = EnumerateMinimalKeys(d, enum_opts);
  auto filtered =
      EnumerateMinimalAcceptedSets(*filter, d.num_attributes(), enum_opts);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(*exact, *filtered);

  ThreadPool pool(4);
  auto parallel = EnumerateMinimalAcceptedSets(*filter, d.num_attributes(),
                                               enum_opts, &pool);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(*exact, *parallel);
}

// ------------------------------------------------------------ pipeline

TEST(PipelineTest, RejectsDegenerateInput) {
  DiscoveryPipeline pipeline(PipelineOptions{});
  Rng rng(1);
  Dataset empty;
  EXPECT_FALSE(pipeline.Run(empty, &rng).ok());
  Dataset d = AdultishTable(100, 2);
  EXPECT_FALSE(pipeline.Run(d, nullptr).ok());
  PipelineOptions bad;
  bad.eps = 0.0;
  EXPECT_FALSE(DiscoveryPipeline(bad).Run(d, &rng).ok());
}

TEST(PipelineTest, FindsAcceptedKeyTupleBackend) {
  Dataset d = AdultishTable(5000, 3);
  PipelineOptions options;
  options.eps = 0.01;
  DiscoveryPipeline pipeline(options);
  Rng rng(7);
  auto result = pipeline.Run(d, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->covered_sample);
  EXPECT_EQ(result->verdict, FilterVerdict::kAccept);
  EXPECT_FALSE(result->key.empty());
  EXPECT_FALSE(result->witness.has_value());
  EXPECT_EQ(result->rows, 5000u);
  // All five stages present, in order.
  ASSERT_EQ(result->stages.size(), 5u);
  EXPECT_EQ(result->stages[0].name, "sample");
  EXPECT_EQ(result->stages[4].name, "verify");
  EXPECT_FALSE(result->Report(&d.schema()).empty());
}

TEST(PipelineTest, MxBackendVerifiesAgainstIndependentPairs) {
  Dataset d = AdultishTable(5000, 4);
  PipelineOptions options;
  options.eps = 0.01;
  options.backend = FilterBackend::kMxPair;
  DiscoveryPipeline pipeline(options);
  Rng rng(8);
  auto result = pipeline.Run(d, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->covered_sample);
  // The pair sample is independent of the greedy tuple sample; at these
  // sizes a key of the tuple sample is (w.h.p.) accepted by it too.
  EXPECT_EQ(result->verdict, FilterVerdict::kAccept);
  EXPECT_GT(result->filter_sample_size, 0u);
}

TEST(PipelineTest, EmittedKeyIsLocallyMinimal) {
  Dataset d = AdultishTable(3000, 5);
  PipelineOptions options;
  options.eps = 0.01;
  options.sample_size = 300;
  DiscoveryPipeline pipeline(options);
  Rng rng(9);
  auto result = pipeline.Run(d, &rng);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->covered_sample);
  ASSERT_GE(result->key.size(), 1u);
  // Rebuild the identical retained sample (same seed, same draw) and
  // check the minimize stage left nothing droppable: removing any one
  // attribute must be rejected by the filter.
  Rng rng2(9);
  std::vector<uint64_t> chosen =
      rng2.SampleWithoutReplacement(d.num_rows(), result->tuple_sample_size);
  std::vector<RowIndex> rows(chosen.begin(), chosen.end());
  TupleSampleFilter filter = TupleSampleFilter::FromSample(
      d.SelectRows(rows), rows, DuplicateDetection::kSort);
  EXPECT_EQ(filter.Query(result->key), FilterVerdict::kAccept);
  for (AttributeIndex a : result->key.ToIndices()) {
    AttributeSet dropped = result->key;
    dropped.Remove(a);
    if (dropped.empty()) continue;
    EXPECT_EQ(filter.Query(dropped), FilterVerdict::kReject) << a;
  }
}

TEST(PipelineTest, DeterministicAcrossThreadCounts) {
  Dataset d = AdultishTable(4000, 6);
  for (FilterBackend backend :
       {FilterBackend::kTupleSample, FilterBackend::kMxPair}) {
    PipelineOptions serial_opts;
    serial_opts.eps = 0.01;
    serial_opts.backend = backend;
    serial_opts.num_threads = 1;
    Rng rng_a(55);
    auto serial = DiscoveryPipeline(serial_opts).Run(d, &rng_a);
    ASSERT_TRUE(serial.ok());
    for (size_t threads : {2u, 4u, 7u}) {
      PipelineOptions par_opts = serial_opts;
      par_opts.num_threads = threads;
      Rng rng_b(55);
      auto parallel = DiscoveryPipeline(par_opts).Run(d, &rng_b);
      ASSERT_TRUE(parallel.ok());
      EXPECT_EQ(serial->key, parallel->key) << threads;
      EXPECT_EQ(serial->covered_sample, parallel->covered_sample);
      EXPECT_EQ(serial->verdict, parallel->verdict);
      EXPECT_EQ(serial->pruned_attributes, parallel->pruned_attributes);
      ASSERT_EQ(serial->steps.size(), parallel->steps.size());
      for (size_t i = 0; i < serial->steps.size(); ++i) {
        EXPECT_EQ(serial->steps[i].chosen, parallel->steps[i].chosen);
        EXPECT_EQ(serial->steps[i].gain, parallel->steps[i].gain);
      }
    }
  }
}

TEST(PipelineTest, ReservoirEntryMatchesInMemorySample) {
  // Drawing the sample by hand and entering through RunOnReservoir must
  // reproduce Run()'s post-sample stages exactly.
  Dataset d = AdultishTable(4000, 10);
  PipelineOptions options;
  options.eps = 0.01;
  DiscoveryPipeline pipeline(options);

  Rng rng_a(77);
  auto full = pipeline.Run(d, &rng_a);
  ASSERT_TRUE(full.ok());

  Rng rng_b(77);
  uint64_t r = full->tuple_sample_size;
  std::vector<uint64_t> chosen = rng_b.SampleWithoutReplacement(
      d.num_rows(), r);
  std::vector<RowIndex> rows(chosen.begin(), chosen.end());
  Dataset sample = d.SelectRows(rows);
  auto streamed = pipeline.RunOnReservoir(sample, rows);
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(full->key, streamed->key);
  EXPECT_EQ(full->covered_sample, streamed->covered_sample);
  EXPECT_EQ(full->verdict, streamed->verdict);
}

TEST(PipelineTest, ReservoirRejectsMxBackend) {
  Dataset d = AdultishTable(200, 11);
  PipelineOptions options;
  options.backend = FilterBackend::kMxPair;
  DiscoveryPipeline pipeline(options);
  EXPECT_FALSE(pipeline.RunOnReservoir(d, {}).ok());
}

}  // namespace
}  // namespace qikey
