#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "math/collision.h"
#include "math/combinatorics.h"
#include "math/kkt.h"
#include "math/sympoly.h"
#include "util/rng.h"

namespace qikey {
namespace {

// ---------------------------------------------------- ElementarySymmetric

TEST(SympolyTest, SmallHandComputedValues) {
  std::vector<double> s{1, 2, 3};
  EXPECT_DOUBLE_EQ(ElementarySymmetric(s, 0), 1.0);
  EXPECT_DOUBLE_EQ(ElementarySymmetric(s, 1), 6.0);    // 1+2+3
  EXPECT_DOUBLE_EQ(ElementarySymmetric(s, 2), 11.0);   // 2+3+6
  EXPECT_DOUBLE_EQ(ElementarySymmetric(s, 3), 6.0);    // 1*2*3
  EXPECT_DOUBLE_EQ(ElementarySymmetric(s, 4), 0.0);
}

TEST(SympolyTest, AllRowMatchesIndividual) {
  std::vector<double> s{0.5, 1.5, 2.0, 4.0, 7.0};
  auto all = ElementarySymmetricAll(s, 5);
  for (uint64_t r = 0; r <= 5; ++r) {
    EXPECT_DOUBLE_EQ(all[r], ElementarySymmetric(s, r)) << "r=" << r;
  }
}

TEST(SympolyTest, LogVersionMatchesLinear) {
  std::vector<double> s{2.5, 2.5, 1.0, 0.0, 3.0, 0.5};
  for (uint64_t r = 0; r <= 5; ++r) {
    double lin = ElementarySymmetric(s, r);
    double log_v = LogElementarySymmetric(s, r);
    if (lin == 0.0) {
      EXPECT_EQ(log_v, -std::numeric_limits<double>::infinity());
    } else {
      EXPECT_NEAR(log_v, std::log(lin), 1e-10) << "r=" << r;
    }
  }
}

TEST(SympolyTest, TwoValueClosedFormMatchesDp) {
  double a = 2.5, b = 1.0;
  uint64_t ka = 4, kb = 7;
  std::vector<double> s;
  s.insert(s.end(), ka, a);
  s.insert(s.end(), kb, b);
  for (uint64_t r = 0; r <= 11; ++r) {
    double dp = LogElementarySymmetric(s, r);
    double cf = LogElementarySymmetricTwoValue(a, ka, b, kb, r);
    if (dp == -std::numeric_limits<double>::infinity()) {
      EXPECT_EQ(cf, dp);
    } else {
      EXPECT_NEAR(cf, dp, 1e-9) << "r=" << r;
    }
  }
}

TEST(SympolyTest, TwoValueHandlesZeroCounts) {
  // ka = 0 reduces to C(kb, r) b^r.
  double got = LogElementarySymmetricTwoValue(5.0, 0, 2.0, 6, 3);
  double want = LogBinomial(6, 3) + 3 * std::log(2.0);
  EXPECT_NEAR(got, want, 1e-12);
}

// ------------------------------------------- Appendix C.3 counterexample

TEST(SympolyTest, AppendixC3ExampleValues) {
  // n = 40, eps' = 1/16, r = 10.
  std::vector<double> s1(16, 2.5);             // "uniform intuition"
  std::vector<double> s2;                      // (10, 1 x 30)
  s2.push_back(10.0);
  s2.insert(s2.end(), 30, 1.0);

  double f1 = ElementarySymmetric(s1, 10);
  double f2 = ElementarySymmetric(s2, 10);
  // f(s1) = C(16,10) * 2.5^10 = 76370239.25...
  EXPECT_NEAR(f1, 8008.0 * std::pow(2.5, 10.0), 1e-3);
  EXPECT_NEAR(f1, 76370239.2572784424, 1.0);
  // f(s2) = C(30,10) + 10*C(30,9) = 173116515.
  EXPECT_NEAR(f2, 173116515.0, 1e-2);
  // The paper's point: the uniform profile is NOT the maximizer.
  EXPECT_LT(f1, f2);
}

TEST(SympolyTest, C3ProfilesSatisfyConstraints) {
  // Both profiles are feasible for P with n = 40, eps*n^2/4 = 100.
  double n = 40, target = 100;
  std::vector<double> s1(16, 2.5);
  std::vector<double> s2{10.0};
  s2.insert(s2.end(), 30, 1.0);
  for (const auto& s : {s1, s2}) {
    double sum = 0, sumsq = 0;
    for (double x : s) {
      sum += x;
      sumsq += x * x;
    }
    EXPECT_DOUBLE_EQ(sum, n);
    EXPECT_GE(sumsq, target - 1e-9);
  }
}

// ----------------------------------------------------- Collision closed forms

TEST(CollisionTest, UniformProfileMatchesBirthdayFormula) {
  // All-singleton profile of size n: non-collision of r draws equals the
  // classic birthday probability.
  uint64_t n = 50, r = 8;
  std::vector<double> profile(n, 1.0);
  double log_p = LogNonCollisionWithReplacement(profile, r);
  double expected = 1.0;
  for (uint64_t i = 1; i < r; ++i) {
    expected *= 1.0 - static_cast<double>(i) / static_cast<double>(n);
  }
  EXPECT_NEAR(std::exp(log_p), expected, 1e-12);
}

TEST(CollisionTest, WithoutReplacementSingletonsNeverCollide) {
  std::vector<double> profile(20, 1.0);
  double log_p = LogNonCollisionWithoutReplacement(profile, 10);
  EXPECT_NEAR(std::exp(log_p), 1.0, 1e-12);
}

TEST(CollisionTest, WithoutReplacementExactSmallCase) {
  // Profile (2,2): 4 items in 2 cliques of 2. Draw 2 without
  // replacement: P(different cliques) = 4/ (C(4,2)) ... ordered: first
  // any (4), second must be in the other clique (2 of remaining 3):
  // 2/3.
  std::vector<double> profile{2.0, 2.0};
  double log_p = LogNonCollisionWithoutReplacement(profile, 2);
  EXPECT_NEAR(std::exp(log_p), 2.0 / 3.0, 1e-12);
}

TEST(CollisionTest, MonteCarloAgreesWithClosedForm) {
  Rng rng(1234);
  std::vector<uint64_t> profile{5, 3, 2, 1, 1};  // n = 12
  std::vector<double> profile_d(profile.begin(), profile.end());
  for (uint64_t r : {2u, 3u, 4u}) {
    double exact = std::exp(LogNonCollisionWithReplacement(profile_d, r));
    double mc = EstimateNonCollisionMonteCarlo(profile, r, 200000, &rng);
    EXPECT_NEAR(mc, exact, 0.01) << "r=" << r;
  }
}

TEST(CollisionTest, TwoValueVariantsMatchGeneric) {
  double a = 4.0, b = 1.5;
  uint64_t ka = 3, kb = 10, r = 5;
  std::vector<double> s;
  s.insert(s.end(), ka, a);
  s.insert(s.end(), kb, b);
  EXPECT_NEAR(LogNonCollisionWithReplacementTwoValue(a, ka, b, kb, r),
              LogNonCollisionWithReplacement(s, r), 1e-9);
  // Integer-sum variant for the without-replacement form: 3*4+10*1.5=27.
  EXPECT_NEAR(LogNonCollisionWithoutReplacementTwoValue(a, ka, b, kb, r),
              LogNonCollisionWithoutReplacement(s, r), 1e-9);
}

TEST(CollisionTest, Claim1RatioBound) {
  // n^r / (n)_r <= e^{r(r-1)/(n-r+1)} (Eq. 4 in the paper).
  for (uint64_t n : {100u, 1000u}) {
    for (uint64_t r : {5u, 20u}) {
      double log_ratio = LogWithoutToWithRatio(n, r);
      double bound = static_cast<double>(r) * (r - 1) /
                     static_cast<double>(n - r + 1);
      EXPECT_LE(log_ratio, bound + 1e-9);
      EXPECT_GE(log_ratio, 0.0);
    }
  }
}

// ---------------------------------------------------------- KKT search

TEST(KktTest, TildeProfileIsFeasible) {
  uint64_t n = 400;
  double eps = 0.04;
  TwoValueProfile p = PaperTildeProfile(n, eps);
  EXPECT_NEAR(p.Sum(), static_cast<double>(n), 2.0);  // rounding slack
  EXPECT_GE(p.SumSquares(), eps * n * n / 4.0 * 0.95);
}

TEST(KktTest, UniformIntuitionProfileIsTight) {
  uint64_t n = 400;
  double eps = 0.04;  // 4/eps = 100 entries of value 4
  TwoValueProfile p = UniformIntuitionProfile(n, eps);
  EXPECT_DOUBLE_EQ(p.Sum(), static_cast<double>(n));
  EXPECT_NEAR(p.SumSquares(), eps * n * n / 4.0, 1e-6);
}

TEST(KktTest, SearchBeatsUniformProfileC3Regime) {
  // In the C.3 regime the optimum is strictly better than uniform.
  uint64_t n = 40, r = 10;
  double eps = 0.25;  // eps*n^2/4 = 100 = eps'*n^2 with eps' = 1/16
  TwoValueProfile uniform = UniformIntuitionProfile(n, eps);
  double log_uniform = LogNonCollisionWithReplacementTwoValue(
      uniform.a, uniform.ka, uniform.b, uniform.kb, r);
  TwoValueProfile best = FindWorstCaseProfile(n, eps, r, 40);
  EXPECT_GT(best.log_non_collision, log_uniform);
}

TEST(KktTest, SearchResultIsFeasible) {
  uint64_t n = 200, r = 12;
  double eps = 0.09;
  TwoValueProfile best = FindWorstCaseProfile(n, eps, r, 32);
  EXPECT_NEAR(best.Sum(), static_cast<double>(n), 1e-3 * n);
  EXPECT_GE(best.SumSquares(), eps * n * n / 4.0 * (1 - 1e-6));
  EXPECT_LE(best.log_non_collision, 0.0);  // it is a probability
}

TEST(KktTest, WorstCaseDegradesWithMoreSamples) {
  // More samples can only reduce the best achievable non-collision
  // probability.
  uint64_t n = 200;
  double eps = 0.09;
  double prev = 0.0;
  for (uint64_t r : {4u, 8u, 16u, 32u}) {
    TwoValueProfile best = FindWorstCaseProfile(n, eps, r, 24);
    EXPECT_LE(best.log_non_collision, prev + 1e-9) << "r=" << r;
    prev = best.log_non_collision;
  }
}

TEST(KktTest, ToVectorMaterializesCorrectly) {
  TwoValueProfile p{3.0, 2, 1.0, 4, 0.0};
  std::vector<double> v = p.ToVector(10);
  ASSERT_EQ(v.size(), 10u);
  EXPECT_EQ(std::count(v.begin(), v.end(), 3.0), 2);
  EXPECT_EQ(std::count(v.begin(), v.end(), 1.0), 4);
  EXPECT_EQ(std::count(v.begin(), v.end(), 0.0), 4);
}

}  // namespace
}  // namespace qikey
