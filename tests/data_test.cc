#include <gtest/gtest.h>

#include "data/concat.h"
#include "data/csv_loader.h"
#include "data/dataset.h"
#include "data/dataset_builder.h"
#include "data/dictionary.h"
#include "data/schema.h"

namespace qikey {
namespace {

// ------------------------------------------------------------ Dictionary

TEST(DictionaryTest, AssignsDenseCodes) {
  Dictionary d;
  EXPECT_EQ(d.GetOrAdd("x"), 0u);
  EXPECT_EQ(d.GetOrAdd("y"), 1u);
  EXPECT_EQ(d.GetOrAdd("x"), 0u);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.Value(1), "y");
}

TEST(DictionaryTest, FindMissing) {
  Dictionary d;
  d.GetOrAdd("present");
  EXPECT_EQ(d.Find("present"), 0u);
  EXPECT_EQ(d.Find("absent"), Dictionary::kNotFound);
}

// ---------------------------------------------------------------- Column

TEST(ColumnTest, ComputesCardinalityWhenUnspecified) {
  Column c({3, 1, 4, 1, 5});
  EXPECT_EQ(c.cardinality(), 6u);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.code(2), 4u);
}

TEST(ColumnTest, CountDistinct) {
  Column c({0, 1, 0, 2, 1, 0}, 10);
  EXPECT_EQ(c.CountDistinct(), 3u);
  // Cached second call.
  EXPECT_EQ(c.CountDistinct(), 3u);
}

// ---------------------------------------------------------------- Schema

TEST(SchemaTest, AnonymousNames) {
  Schema s = Schema::Anonymous(3);
  EXPECT_EQ(s.num_attributes(), 3u);
  EXPECT_EQ(s.name(0), "a0");
  EXPECT_EQ(s.name(2), "a2");
}

TEST(SchemaTest, FindByName) {
  Schema s({"age", "zip"});
  EXPECT_EQ(s.Find("zip"), 1);
  EXPECT_EQ(s.Find("nope"), -1);
}

// --------------------------------------------------------------- Dataset

Dataset SmallDataset() {
  DatasetBuilder b({"city", "zip", "age"});
  EXPECT_TRUE(b.AddRow({"SF", "94103", "30"}).ok());
  EXPECT_TRUE(b.AddRow({"SF", "94103", "40"}).ok());
  EXPECT_TRUE(b.AddRow({"SD", "92115", "30"}).ok());
  EXPECT_TRUE(b.AddRow({"SD", "92116", "30"}).ok());
  return std::move(b).Finish();
}

TEST(DatasetTest, ShapeAndPairCount) {
  Dataset d = SmallDataset();
  EXPECT_EQ(d.num_rows(), 4u);
  EXPECT_EQ(d.num_attributes(), 3u);
  EXPECT_EQ(d.num_pairs(), 6u);
}

TEST(DatasetTest, RowsAgreeOn) {
  Dataset d = SmallDataset();
  // Rows 0,1 share city+zip but not age.
  EXPECT_TRUE(d.RowsAgreeOn(0, 1, {0, 1}));
  EXPECT_FALSE(d.RowsAgreeOn(0, 1, {0, 1, 2}));
  // Rows 2,3 share city and age but not zip.
  EXPECT_TRUE(d.RowsAgreeOn(2, 3, {0, 2}));
  EXPECT_FALSE(d.RowsAgreeOn(2, 3, {1}));
  // Empty attribute set: everything "agrees".
  EXPECT_TRUE(d.RowsAgreeOn(0, 3, {}));
}

TEST(DatasetTest, CompareProjectionsIsConsistent) {
  Dataset d = SmallDataset();
  std::vector<AttributeIndex> attrs{0, 2};
  for (RowIndex i = 0; i < 4; ++i) {
    for (RowIndex j = 0; j < 4; ++j) {
      int cmp = d.CompareProjections(i, j, attrs);
      EXPECT_EQ(cmp == 0, d.RowsAgreeOn(i, j, attrs));
      EXPECT_EQ(cmp, -d.CompareProjections(j, i, attrs));
    }
  }
}

TEST(DatasetTest, HashProjectionRespectsEquality) {
  Dataset d = SmallDataset();
  std::vector<AttributeIndex> attrs{0, 1};
  EXPECT_EQ(d.HashProjection(0, attrs), d.HashProjection(1, attrs));
  EXPECT_NE(d.HashProjection(0, attrs), d.HashProjection(2, attrs));
}

TEST(DatasetTest, SelectRowsPreservesValues) {
  Dataset d = SmallDataset();
  Dataset sub = d.SelectRows({2, 0});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.code(0, 0), d.code(2, 0));
  EXPECT_EQ(sub.code(1, 2), d.code(0, 2));
  EXPECT_EQ(sub.FormatRow(0), d.FormatRow(2));
}

TEST(DatasetTest, FormatRowUsesDictionary) {
  Dataset d = SmallDataset();
  EXPECT_EQ(d.FormatRow(0), "SF|94103|30");
}

TEST(DatasetTest, MakeValidatesShape) {
  auto bad = Dataset::Make(Schema({"a"}), {Column({0, 1}), Column({0, 1})});
  EXPECT_FALSE(bad.ok());
  auto ragged = Dataset::Make(Schema({"a", "b"}),
                              {Column({0, 1}), Column({0, 1, 2})});
  EXPECT_FALSE(ragged.ok());
}

// ---------------------------------------------------------------- Builder

TEST(DatasetBuilderTest, RejectsWrongArity) {
  DatasetBuilder b({"a", "b"});
  EXPECT_FALSE(b.AddRow({"only-one"}).ok());
  EXPECT_TRUE(b.AddRow({"1", "2"}).ok());
  EXPECT_EQ(b.num_rows(), 1u);
}

// ------------------------------------------------------------- CSV loader

TEST(CsvLoaderTest, LoadsAndEncodes) {
  auto d = LoadCsvDatasetFromString("name,team\nann,red\nbob,red\nann,blue\n");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_rows(), 3u);
  EXPECT_EQ(d->num_attributes(), 2u);
  // "ann" appears twice -> same code.
  EXPECT_EQ(d->code(0, 0), d->code(2, 0));
  EXPECT_NE(d->code(0, 1), d->code(2, 1));
  EXPECT_EQ(d->schema().name(1), "team");
}

TEST(CsvLoaderTest, HeaderlessGetsAnonymousSchema) {
  CsvOptions options;
  options.has_header = false;
  auto d = LoadCsvDatasetFromString("1,2\n3,4\n", options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_rows(), 2u);
  EXPECT_EQ(d->schema().name(0), "a0");
}

TEST(CsvLoaderTest, PropagatesParseError) {
  auto d = LoadCsvDatasetFromString("a,b\n1\n");
  EXPECT_FALSE(d.ok());
}

// ------------------------------------------------------------ concat

TEST(ConcatTest, RemapsIndependentDictionaries) {
  // Same values, inserted in different orders: per-part codes differ,
  // the union must still compare values correctly.
  DatasetBuilder a({"city"});
  ASSERT_TRUE(a.AddRow({"SF"}).ok());
  ASSERT_TRUE(a.AddRow({"LA"}).ok());
  DatasetBuilder b({"city"});
  ASSERT_TRUE(b.AddRow({"LA"}).ok());
  ASSERT_TRUE(b.AddRow({"SF"}).ok());
  ASSERT_TRUE(b.AddRow({"NY"}).ok());
  Dataset da = std::move(a).Finish();
  Dataset db = std::move(b).Finish();
  auto merged = ConcatDatasets({&da, &db});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged->num_rows(), 5u);
  EXPECT_EQ(merged->FormatRow(0), "SF");
  EXPECT_EQ(merged->FormatRow(1), "LA");
  EXPECT_EQ(merged->FormatRow(2), "LA");
  EXPECT_EQ(merged->FormatRow(3), "SF");
  EXPECT_EQ(merged->FormatRow(4), "NY");
  EXPECT_EQ(merged->code(0, 0), merged->code(3, 0));  // both SF
  EXPECT_EQ(merged->code(1, 0), merged->code(2, 0));  // both LA
  EXPECT_NE(merged->code(0, 0), merged->code(4, 0));
  EXPECT_EQ(merged->column(0).cardinality(), 3u);
}

TEST(ConcatTest, RejectsMismatches) {
  DatasetBuilder a({"x"});
  ASSERT_TRUE(a.AddRow({"1"}).ok());
  DatasetBuilder b({"y"});
  ASSERT_TRUE(b.AddRow({"1"}).ok());
  Dataset da = std::move(a).Finish();
  Dataset db = std::move(b).Finish();
  EXPECT_FALSE(ConcatDatasets({&da, &db}).ok());  // schema names differ
  EXPECT_FALSE(ConcatDatasets({}).ok());

  // Dictionary vs raw encoding at the same position.
  Dataset raw(Schema({"x"}), {Column({0, 1, 0})});
  EXPECT_FALSE(ConcatDatasets({&da, &raw}).ok());
}

TEST(ConcatTest, AppendsRawCodesWithWidenedCardinality) {
  Dataset a(Schema({"x"}), {Column({0, 1}, 2)});
  Dataset b(Schema({"x"}), {Column({4, 2}, 5)});
  auto merged = ConcatDatasets({&a, &b});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->column(0).cardinality(), 5u);
  EXPECT_EQ(merged->code(2, 0), 4u);
}

// ------------------------------------------------- shard-aware builder

TEST(DatasetBuilderTest, TakeShardSharesDictionaries) {
  DatasetBuilder b({"word"});
  ASSERT_TRUE(b.AddRow({"alpha"}).ok());
  ASSERT_TRUE(b.AddRow({"beta"}).ok());
  Dataset first = b.TakeShard();
  EXPECT_EQ(b.num_rows(), 0u);
  ASSERT_TRUE(b.AddRow({"beta"}).ok());
  ASSERT_TRUE(b.AddRow({"gamma"}).ok());
  Dataset second = b.TakeShard();
  // Shared dictionary: codes compare across shards without remapping.
  EXPECT_EQ(first.code(1, 0), second.code(0, 0));  // both "beta"
  EXPECT_EQ(first.FormatRow(0), "alpha");
  EXPECT_EQ(second.FormatRow(1), "gamma");
  // The second shard's cardinality covers the grown dictionary.
  EXPECT_EQ(second.column(0).cardinality(), 3u);
}

TEST(DatasetBuilderTest, EstimatedBytesGrowsWithRowsAndDictionary) {
  DatasetBuilder b({"a", "b"});
  uint64_t empty = b.EstimatedBytes();
  ASSERT_TRUE(b.AddRow({"one", "two"}).ok());
  uint64_t one = b.EstimatedBytes();
  EXPECT_GT(one, empty);
  ASSERT_TRUE(b.AddRow({"one", "two"}).ok());  // no new dict entries
  uint64_t two = b.EstimatedBytes();
  EXPECT_EQ(two - one, 2 * sizeof(ValueCode));
}

}  // namespace
}  // namespace qikey
