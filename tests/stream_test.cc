#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "core/separation.h"
#include "core/sketch.h"
#include "engine/pipeline.h"
#include "math/combinatorics.h"
#include "data/generators/uniform_grid.h"
#include "stream/pair_reservoir.h"
#include "stream/reservoir.h"
#include "stream/stream_builder.h"
#include "util/rng.h"

namespace qikey {
namespace {

// --------------------------------------------------------------- reservoir

TEST(ReservoirTest, KeepsEverythingWhenStreamIsSmall) {
  Rng rng(1);
  ReservoirSampler<int> res(10, &rng);
  for (int i = 0; i < 7; ++i) res.Offer(i);
  EXPECT_EQ(res.seen(), 7u);
  EXPECT_EQ(res.items().size(), 7u);
}

TEST(ReservoirTest, CapsAtCapacity) {
  Rng rng(2);
  ReservoirSampler<int> res(5, &rng);
  for (int i = 0; i < 1000; ++i) res.Offer(i);
  EXPECT_EQ(res.items().size(), 5u);
  std::set<int> distinct(res.items().begin(), res.items().end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(ReservoirTest, ExactCapacityBoundary) {
  // Window exactly the stream length: everything retained, in order.
  Rng rng(20);
  ReservoirSampler<int> res(8, &rng);
  for (int i = 0; i < 8; ++i) res.Offer(i);
  EXPECT_EQ(res.items().size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(res.items()[i], i);
  // One more item: still capped, still a valid subset of the stream.
  res.Offer(8);
  EXPECT_EQ(res.items().size(), 8u);
  EXPECT_EQ(res.seen(), 9u);
}

TEST(ReservoirTest, WindowOfOne) {
  // Degenerate capacity: after n items the slot is a uniform pick.
  constexpr int kTrials = 20000;
  std::vector<int> counts(10, 0);
  Rng rng(21);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSampler<int> res(1, &rng);
    for (int i = 0; i < 10; ++i) res.Offer(i);
    ++counts[res.items()[0]];
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(counts[i], kTrials / 10, kTrials / 25) << i;
  }
}

TEST(ReservoirTest, DuplicateItemsAreRetainedIndependently) {
  // A constant stream must fill the reservoir with copies, not dedupe.
  Rng rng(22);
  ReservoirSampler<int> res(5, &rng);
  for (int i = 0; i < 300; ++i) res.Offer(7);
  EXPECT_EQ(res.items().size(), 5u);
  for (int kept : res.items()) EXPECT_EQ(kept, 7);
}

TEST(ReservoirTest, SeedStability) {
  auto draw = [](uint64_t seed) {
    Rng rng(seed);
    ReservoirSampler<int> res(10, &rng);
    for (int i = 0; i < 500; ++i) res.Offer(i);
    return res.items();
  };
  EXPECT_EQ(draw(23), draw(23));
  EXPECT_NE(draw(23), draw(24));
}

TEST(ReservoirTest, InclusionProbabilityIsUniform) {
  // Each of 50 stream items should be retained w.p. 10/50.
  constexpr int kTrials = 20000;
  std::vector<int> counts(50, 0);
  Rng rng(3);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSampler<int> res(10, &rng);
    for (int i = 0; i < 50; ++i) res.Offer(i);
    for (int kept : res.items()) ++counts[kept];
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_NEAR(counts[i], kTrials / 5, kTrials / 50)
        << "position " << i;
  }
}

// ----------------------------------------------------------- merge

TEST(ReservoirMergeTest, KeepsUnionOfSmallStreams) {
  Rng rng(5);
  ReservoirSampler<int> a(10, &rng);
  ReservoirSampler<int> b(10, &rng);
  for (int i = 0; i < 4; ++i) a.Offer(i);
  for (int i = 4; i < 7; ++i) b.Offer(i);
  a.Merge(std::move(b));
  EXPECT_EQ(a.seen(), 7u);
  std::set<int> kept(a.items().begin(), a.items().end());
  EXPECT_EQ(kept, (std::set<int>{0, 1, 2, 3, 4, 5, 6}));
}

// Merging two reservoirs over disjoint streams must leave every item
// of the concatenated stream with the same inclusion probability a
// single reservoir would give it.
TEST(ReservoirMergeTest, InclusionProbabilityMatchesSinglePass) {
  constexpr int kTrials = 20000;
  constexpr int kA = 30, kB = 20, kCap = 10;
  std::vector<int> counts(kA + kB, 0);
  Rng rng(7);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSampler<int> a(kCap, &rng);
    ReservoirSampler<int> b(kCap, &rng);
    for (int i = 0; i < kA; ++i) a.Offer(i);
    for (int i = kA; i < kA + kB; ++i) b.Offer(i);
    a.Merge(std::move(b));
    EXPECT_EQ(a.items().size(), static_cast<size_t>(kCap));
    for (int kept : a.items()) ++counts[kept];
  }
  // p = 10/50 for every position, merged or not.
  for (int i = 0; i < kA + kB; ++i) {
    EXPECT_NEAR(counts[i], kTrials / 5, kTrials / 50) << "position " << i;
  }
}

// A merged reservoir must stay a valid sampler: offering more items
// afterwards keeps inclusion uniform over the whole stream.
TEST(ReservoirMergeTest, OffersAfterMergeStayUniform) {
  constexpr int kTrials = 20000;
  constexpr int kA = 15, kB = 15, kTail = 20, kCap = 10;
  const int total = kA + kB + kTail;
  std::vector<int> counts(total, 0);
  Rng rng(11);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSampler<int> a(kCap, &rng);
    ReservoirSampler<int> b(kCap, &rng);
    for (int i = 0; i < kA; ++i) a.Offer(i);
    for (int i = kA; i < kA + kB; ++i) b.Offer(i);
    a.Merge(std::move(b));
    for (int i = kA + kB; i < total; ++i) a.Offer(i);
    for (int kept : a.items()) ++counts[kept];
  }
  for (int i = 0; i < total; ++i) {
    EXPECT_NEAR(counts[i], kTrials * kCap / total, kTrials / 50)
        << "position " << i;
  }
}

TEST(ReservoirMergeTest, DeterministicForFixedSeed) {
  auto run = [] {
    Rng rng(13);
    ReservoirSampler<int> a(5, &rng);
    ReservoirSampler<int> b(5, &rng);
    for (int i = 0; i < 40; ++i) a.Offer(i);
    for (int i = 40; i < 90; ++i) b.Offer(i);
    a.Merge(std::move(b));
    for (int i = 90; i < 120; ++i) a.Offer(i);
    return a.items();
  };
  EXPECT_EQ(run(), run());
}

// ----------------------------------------------------------- pair reservoir

TEST(PairReservoirTest, SlotsHoldDistinctPositions) {
  Rng rng(4);
  PairReservoir res(20, &rng);
  for (int i = 0; i < 500; ++i) res.Offer();
  for (const auto& [a, b] : res.pairs()) {
    EXPECT_NE(a, b);
    EXPECT_LT(a, 500u);
    EXPECT_LT(b, 500u);
  }
}

TEST(PairReservoirTest, TwoItemStreamBoundary) {
  // The smallest stream supporting pairs: every slot must hold {0, 1}.
  Rng rng(25);
  PairReservoir res(8, &rng);
  res.Offer();
  res.Offer();
  EXPECT_EQ(res.seen(), 2u);
  for (auto [a, b] : res.pairs()) {
    if (a > b) std::swap(a, b);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
  }
}

TEST(PairReservoirTest, SeedStability) {
  auto draw = [](uint64_t seed) {
    Rng rng(seed);
    PairReservoir res(10, &rng);
    for (int i = 0; i < 400; ++i) res.Offer();
    return res.pairs();
  };
  EXPECT_EQ(draw(26), draw(26));
  EXPECT_NE(draw(26), draw(27));
}

TEST(PairReservoirTest, PairDistributionIsUniform) {
  // One slot over a 6-item stream: each of the 15 pairs w.p. 1/15.
  constexpr int kTrials = 30000;
  std::map<std::pair<uint64_t, uint64_t>, int> counts;
  Rng rng(5);
  for (int t = 0; t < kTrials; ++t) {
    PairReservoir res(1, &rng);
    for (int i = 0; i < 6; ++i) res.Offer();
    auto [a, b] = res.pairs()[0];
    if (a > b) std::swap(a, b);
    ++counts[{a, b}];
  }
  EXPECT_EQ(counts.size(), 15u);
  for (const auto& [pair, count] : counts) {
    EXPECT_NEAR(count, kTrials / 15, 250)
        << pair.first << "," << pair.second;
  }
}

// ------------------------------------------------------------- builders

std::vector<std::vector<ValueCode>> DatasetRows(const Dataset& d) {
  std::vector<std::vector<ValueCode>> rows(d.num_rows());
  for (RowIndex r = 0; r < d.num_rows(); ++r) {
    for (AttributeIndex j = 0; j < d.num_attributes(); ++j) {
      rows[r].push_back(d.code(r, j));
    }
  }
  return rows;
}

std::vector<uint32_t> Cardinalities(const Dataset& d) {
  std::vector<uint32_t> out;
  for (size_t j = 0; j < d.num_attributes(); ++j) {
    out.push_back(d.column(static_cast<AttributeIndex>(j)).cardinality());
  }
  return out;
}

TEST(StreamBuilderTest, TupleFilterMatchesBatchSemantics) {
  Rng data_rng(6);
  Dataset d = MakeUniformGridSample(5, 3, 800, &data_rng);
  Rng rng(7);
  StreamingTupleFilterBuilder builder(d.schema(), Cardinalities(d), 100,
                                      &rng);
  for (const auto& row : DatasetRows(d)) {
    ASSERT_TRUE(builder.Offer(row).ok());
  }
  EXPECT_EQ(builder.rows_seen(), 800u);
  auto filter = std::move(builder).Finish();
  ASSERT_TRUE(filter.ok());
  EXPECT_EQ(filter->sample_size(), 100u);
  // Keys of the data set are always accepted; the constant-free part of
  // the contract holds for any retained sample.
  AttributeSet all = AttributeSet::All(5);
  if (IsKey(d, all)) {
    EXPECT_EQ(filter->Query(all), FilterVerdict::kAccept);
  }
  // The empty set is maximally bad and must be rejected (any two
  // retained tuples witness it).
  EXPECT_EQ(filter->Query(AttributeSet(5)), FilterVerdict::kReject);
}

TEST(StreamBuilderTest, TupleFilterRejectsArityMismatch) {
  Rng rng(8);
  StreamingTupleFilterBuilder builder(Schema::Anonymous(3), {2, 2, 2}, 10,
                                      &rng);
  EXPECT_FALSE(builder.Offer({0, 1}).ok());
}

TEST(StreamBuilderTest, PairFilterMatchesBatchSemantics) {
  Rng data_rng(9);
  Dataset d = MakeUniformGridSample(4, 2, 600, &data_rng);
  Rng rng(10);
  StreamingPairFilterBuilder builder(d.schema(), Cardinalities(d), 300,
                                     &rng);
  for (const auto& row : DatasetRows(d)) {
    ASSERT_TRUE(builder.Offer(row).ok());
  }
  auto filter = std::move(builder).Finish();
  ASSERT_TRUE(filter.ok());
  EXPECT_EQ(filter->sample_size(), 300u);
  EXPECT_EQ(filter->Query(AttributeSet(4)), FilterVerdict::kReject);
  // Singleton {0} on a binary grid separates only half the pairs: with
  // 300 retained pairs the filter misses with prob 2^-300.
  EXPECT_EQ(filter->Query(AttributeSet::FromIndices(4, {0})),
            FilterVerdict::kReject);
}

TEST(StreamBuilderTest, PairFilterStoresOnlyLivePayloads) {
  Rng rng(11);
  constexpr uint64_t kSlots = 50;
  StreamingPairFilterBuilder builder(Schema::Anonymous(2), {4, 4}, kSlots,
                                     &rng);
  Rng data_rng(12);
  for (int i = 0; i < 20000; ++i) {
    std::vector<ValueCode> row{
        static_cast<ValueCode>(data_rng.Uniform(4)),
        static_cast<ValueCode>(data_rng.Uniform(4))};
    ASSERT_TRUE(builder.Offer(row).ok());
  }
  auto filter = std::move(builder).Finish();
  ASSERT_TRUE(filter.ok());
  // Finish materializes exactly 2 rows per slot.
  EXPECT_EQ(filter->MemoryBytes(),
            2 * kSlots * 2 * sizeof(ValueCode) +
                kSlots * sizeof(std::pair<RowIndex, RowIndex>));
}

TEST(StreamBuilderTest, SketchBuilderTracksExactGamma) {
  Rng data_rng(14);
  Dataset d = MakeUniformGridSample(4, 4, 3000, &data_rng);
  Rng rng(15);
  // 8000 retained pairs; singleton Γ ≈ C(n,2)/4 is dense.
  StreamingSketchBuilder builder(d.schema(), Cardinalities(d), 8000,
                                 /*small_cutoff=*/10, &rng);
  for (const auto& row : DatasetRows(d)) {
    ASSERT_TRUE(builder.Offer(row).ok());
  }
  auto sketch = std::move(builder).Finish();
  ASSERT_TRUE(sketch.ok());
  EXPECT_EQ(sketch->sample_size(), 8000u);
  EXPECT_EQ(sketch->total_pairs(), PairCount(3000));
  for (AttributeIndex a = 0; a < 4; ++a) {
    AttributeSet attrs = AttributeSet::FromIndices(4, {a});
    uint64_t truth = ExactUnseparatedPairs(d, attrs);
    NonSeparationEstimate est = sketch->Estimate(attrs);
    ASSERT_FALSE(est.small);
    EXPECT_NEAR(est.estimate, static_cast<double>(truth),
                0.15 * static_cast<double>(truth))
        << "attribute " << a;
  }
  // Serialization works for streamed sketches too.
  auto back = NonSeparationSketch::Deserialize(sketch->Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Estimate(AttributeSet(4)).hits, 8000u);
}

TEST(StreamBuilderTest, DuplicateRowsForceRejection) {
  // A window smaller than a duplicate-only stream still retains enough
  // copies that even the full attribute set is rejected: no key exists.
  Rng rng(30);
  StreamingTupleFilterBuilder builder(Schema::Anonymous(2), {3, 3}, 6, &rng);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(builder.Offer({1, 2}).ok());
  }
  auto filter = std::move(builder).Finish();
  ASSERT_TRUE(filter.ok());
  EXPECT_EQ(filter->sample_size(), 6u);
  EXPECT_EQ(filter->Query(AttributeSet::All(2)), FilterVerdict::kReject);
}

TEST(StreamBuilderTest, ReservoirPipelineDeterministicAcrossThreadCounts) {
  // Same seed -> same retained sample -> identical discovery results
  // through RunOnReservoir at any thread count (the "seed stability
  // across thread counts" contract for the streaming entry).
  Rng data_rng(31);
  Dataset d = MakeUniformGridSample(6, 4, 2000, &data_rng);
  auto draw_sample = [&](uint64_t seed) {
    Rng rng(seed);
    StreamingTupleFilterBuilder builder(d.schema(), Cardinalities(d), 150,
                                        &rng);
    for (const auto& row : DatasetRows(d)) {
      EXPECT_TRUE(builder.Offer(row).ok());
    }
    auto filter = std::move(builder).Finish();
    EXPECT_TRUE(filter.ok());
    return filter->sample();
  };
  Dataset sample_a = draw_sample(77);
  Dataset sample_b = draw_sample(77);
  ASSERT_EQ(sample_a.num_rows(), sample_b.num_rows());
  for (RowIndex i = 0; i < sample_a.num_rows(); ++i) {
    for (AttributeIndex j = 0; j < sample_a.num_attributes(); ++j) {
      ASSERT_EQ(sample_a.code(i, j), sample_b.code(i, j)) << i << "," << j;
    }
  }

  PipelineOptions serial_opts;
  serial_opts.eps = 0.01;
  serial_opts.num_threads = 1;
  auto serial = DiscoveryPipeline(serial_opts).RunOnReservoir(sample_a, {});
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {2u, 5u}) {
    PipelineOptions par_opts = serial_opts;
    par_opts.num_threads = threads;
    auto parallel =
        DiscoveryPipeline(par_opts).RunOnReservoir(sample_a, {});
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial->key, parallel->key) << threads;
    EXPECT_EQ(serial->covered_sample, parallel->covered_sample);
    EXPECT_EQ(serial->verdict, parallel->verdict);
  }
}

TEST(StreamBuilderTest, RejectsEmptyStream) {
  Rng rng(13);
  StreamingTupleFilterBuilder tb(Schema::Anonymous(1), {2}, 5, &rng);
  EXPECT_FALSE(std::move(tb).Finish().ok());
  StreamingPairFilterBuilder pb(Schema::Anonymous(1), {2}, 5, &rng);
  EXPECT_FALSE(std::move(pb).Finish().ok());
}

}  // namespace
}  // namespace qikey
