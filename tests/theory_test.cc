#include <gtest/gtest.h>

#include <tuple>

#include "core/separation.h"
#include "core/sketch.h"
#include "core/theory.h"
#include "data/generators/encoding_lb.h"
#include "util/rng.h"

namespace qikey {
namespace {

/// Exact-Γ oracle over a data set (a "perfect sketch").
std::function<NonSeparationEstimate(const AttributeSet&)> ExactOracle(
    const Dataset& d) {
  return [&d](const AttributeSet& attrs) {
    NonSeparationEstimate est;
    est.small = false;
    est.hits = 0;
    est.estimate = static_cast<double>(ExactUnseparatedPairs(d, attrs));
    return est;
  };
}

// -------------------------------------------------- Lemma 6 closed form

TEST(TheoryTest, ClosedFormHandCase) {
  // k=1, t=2: u=1 -> Γ=1; u=0 -> Γ=3 (worked through in the docs).
  EXPECT_EQ(EncodingGammaClosedForm(2, 1, 1), 1u);
  EXPECT_EQ(EncodingGammaClosedForm(2, 1, 0), 3u);
}

TEST(TheoryTest, ClosedFormDecreasesInU) {
  // Expression is decreasing in u for u <= 3k/2 — more correct guesses
  // mean fewer unseparated pairs.
  for (uint32_t t : {2u, 3u, 5u}) {
    for (uint32_t k : {1u, 2u, 4u}) {
      uint64_t prev = EncodingGammaClosedForm(t, k, 0);
      for (uint32_t u = 1; u <= k; ++u) {
        uint64_t cur = EncodingGammaClosedForm(t, k, u);
        EXPECT_LT(cur, prev) << "t=" << t << " k=" << k << " u=" << u;
        prev = cur;
      }
    }
  }
}

// Parameterized sweep: the closed form matches the exact Γ computed on
// the materialized encoding data set for every u.
class ClosedFormMatchTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ClosedFormMatchTest, MatchesExactGamma) {
  auto [k, t, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  const uint32_t m = 5;
  const uint32_t n = static_cast<uint32_t>(k) * static_cast<uint32_t>(t);
  BitMatrix c = MakeRandomColumnSparseMatrix(k, t, m, &rng);
  Dataset d = MakeEncodingDataset(c);

  for (uint32_t col = 0; col < m; ++col) {
    // Collect the true 1-rows of this column.
    std::vector<uint32_t> ones;
    for (uint32_t r = 0; r < n; ++r) {
      if (c.at(r, col)) ones.push_back(r);
    }
    ASSERT_EQ(ones.size(), static_cast<size_t>(k));
    // Try guesses with u = k (all correct) down to u = 0 by swapping
    // correct rows for wrong ones.
    std::vector<uint32_t> zeros;
    for (uint32_t r = 0; r < n; ++r) {
      if (!c.at(r, col)) zeros.push_back(r);
    }
    for (uint32_t u = 0; u <= static_cast<uint32_t>(k); ++u) {
      std::vector<uint32_t> guess(ones.begin(), ones.begin() + u);
      for (uint32_t w = 0; w < static_cast<uint32_t>(k) - u; ++w) {
        guess.push_back(zeros[w]);
      }
      AttributeSet attrs = AttributeSet::FromIndices(
          d.num_attributes(), EncodingQueryAttributes(col, guess, m));
      uint64_t exact = ExactUnseparatedPairs(d, attrs);
      EXPECT_EQ(exact, EncodingGammaClosedForm(t, k, u))
          << "col=" << col << " u=" << u << " k=" << k << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClosedFormMatchTest,
    ::testing::Values(std::make_tuple(1, 2, 1), std::make_tuple(1, 4, 2),
                      std::make_tuple(2, 2, 3), std::make_tuple(2, 3, 4),
                      std::make_tuple(3, 3, 5), std::make_tuple(2, 5, 6),
                      std::make_tuple(4, 2, 7)));

// ----------------------------------------------------------- threshold/t

TEST(TheoryTest, GoodGuessThresholdSeparates) {
  // With t from EncodingChooseT, even (1+eps)-inflated all-correct Γ is
  // below the u = k-1 value.
  for (double eps : {0.01, 0.001}) {
    uint32_t t = EncodingChooseT(eps);
    EXPECT_GE(t, 2u);
    for (uint32_t k : {2u, 5u}) {
      double threshold = EncodingGoodGuessThreshold(t, k, eps);
      double next = (1.0 - eps) *
                    static_cast<double>(EncodingGammaClosedForm(t, k, k - 1));
      EXPECT_LT(threshold, next) << "eps=" << eps << " k=" << k;
    }
  }
}

TEST(TheoryTest, ChooseTScalesAsInverseSqrtEps) {
  uint32_t t1 = EncodingChooseT(0.01);
  uint32_t t2 = EncodingChooseT(0.0001);
  EXPECT_NEAR(static_cast<double>(t2) / static_cast<double>(t1), 10.0, 2.0);
}

// -------------------------------------------------------------- decoding

TEST(TheoryTest, DecodeRecoversColumnsWithExactOracle) {
  Rng rng(42);
  const uint32_t k = 2, t = 3, m = 4;
  const uint32_t n = k * t;
  BitMatrix c = MakeRandomColumnSparseMatrix(k, t, m, &rng);
  Dataset d = MakeEncodingDataset(c);
  auto oracle = ExactOracle(d);
  for (uint32_t col = 0; col < m; ++col) {
    std::vector<uint8_t> truth(n);
    for (uint32_t r = 0; r < n; ++r) truth[r] = c.at(r, col);
    std::vector<uint8_t> decoded =
        DecodeEncodingColumn(oracle, col, m, n, k, t, 0.01);
    EXPECT_EQ(decoded, truth) << "column " << col;
  }
}

TEST(TheoryTest, DecodeRecoversColumnsWithRealSketch) {
  // End-to-end Section 3.2: a Theorem-2 sketch with eps below the
  // decoding threshold lets Bob reconstruct C exactly (u=k guesses are
  // accepted, wrong ones rejected).
  Rng rng(43);
  const uint32_t k = 2, t = 3, m = 3;
  const uint32_t n = k * t;
  BitMatrix c = MakeRandomColumnSparseMatrix(k, t, m, &rng);
  Dataset d = MakeEncodingDataset(c);

  // eps = 0.05 suffices for t = 3 (gap Γ(u=k-1)/Γ(u=k) = 24/21); the
  // retained-pair count is set high so the sketch's realized error is
  // well inside that budget.
  NonSeparationSketchOptions opts;
  opts.k = k + 1;
  opts.alpha = 1.0 / 16.0;  // the construction's density bound
  opts.eps = 0.05;
  opts.sample_size = 200000;
  auto sketch = NonSeparationSketch::Build(d, opts, &rng);
  ASSERT_TRUE(sketch.ok());
  auto oracle = [&sketch](const AttributeSet& attrs) {
    return sketch->Estimate(attrs);
  };
  int exact_columns = 0;
  for (uint32_t col = 0; col < m; ++col) {
    std::vector<uint8_t> truth(n);
    for (uint32_t r = 0; r < n; ++r) truth[r] = c.at(r, col);
    std::vector<uint8_t> decoded =
        DecodeEncodingColumn(oracle, col, m, n, k, t, opts.eps);
    exact_columns += (decoded == truth) ? 1 : 0;
  }
  EXPECT_EQ(exact_columns, static_cast<int>(m));
}

}  // namespace
}  // namespace qikey
