#include <gtest/gtest.h>

#include <cmath>

#include "core/separation.h"
#include "core/sketch.h"
#include "data/generators/uniform_grid.h"
#include "util/rng.h"

namespace qikey {
namespace {

TEST(SketchTest, RejectsBadOptions) {
  Rng rng(1);
  Dataset d = MakeUniformGridSample(4, 3, 100, &rng);
  NonSeparationSketchOptions opts;
  opts.eps = 0.0;
  EXPECT_FALSE(NonSeparationSketch::Build(d, opts, &rng).ok());
  opts.eps = 0.1;
  opts.alpha = 0.0;
  EXPECT_FALSE(NonSeparationSketch::Build(d, opts, &rng).ok());
  opts.alpha = 0.1;
  EXPECT_FALSE(NonSeparationSketch::Build(d, opts, nullptr).ok());
}

TEST(SketchTest, DenseSetsEstimatedWithinEps) {
  Rng rng(2);
  // Small grid: singleton sets have Γ_A ≈ C(n,2)/q — dense.
  Dataset d = MakeUniformGridSample(4, 4, 2000, &rng);
  NonSeparationSketchOptions opts;
  opts.k = 2;
  opts.alpha = 0.05;
  opts.eps = 0.1;
  opts.big_k = 8.0;  // generous constant for a deterministic test
  auto sketch = NonSeparationSketch::Build(d, opts, &rng);
  ASSERT_TRUE(sketch.ok());
  for (AttributeIndex a = 0; a < 4; ++a) {
    AttributeSet attrs = AttributeSet::FromIndices(4, {a});
    uint64_t truth = ExactUnseparatedPairs(d, attrs);
    ASSERT_GE(truth, static_cast<uint64_t>(0.05 * d.num_pairs()));
    NonSeparationEstimate est = sketch->Estimate(attrs);
    ASSERT_FALSE(est.small) << "a=" << a;
    EXPECT_NEAR(est.estimate, static_cast<double>(truth),
                opts.eps * static_cast<double>(truth))
        << "a=" << a;
  }
}

TEST(SketchTest, SparseSetsReportedSmall) {
  Rng rng(3);
  // Full set of a 6-attribute grid on few rows: almost everything
  // separated -> Γ tiny -> "small".
  Dataset d = MakeUniformGridSample(6, 8, 500, &rng);
  NonSeparationSketchOptions opts;
  opts.k = 6;
  opts.alpha = 0.1;
  opts.eps = 0.2;
  opts.big_k = 4.0;
  auto sketch = NonSeparationSketch::Build(d, opts, &rng);
  ASSERT_TRUE(sketch.ok());
  AttributeSet all = AttributeSet::All(6);
  EXPECT_LT(ExactUnseparatedPairs(d, all),
            static_cast<uint64_t>(0.001 * d.num_pairs()));
  EXPECT_TRUE(sketch->Estimate(all).small);
}

TEST(SketchTest, EmptySetEstimatesTotalPairs) {
  Rng rng(4);
  Dataset d = MakeUniformGridSample(3, 3, 300, &rng);
  NonSeparationSketchOptions opts;
  opts.k = 1;
  opts.alpha = 0.5;
  opts.eps = 0.2;
  auto sketch = NonSeparationSketch::Build(d, opts, &rng);
  ASSERT_TRUE(sketch.ok());
  // The empty set separates nothing: every retained pair is a hit.
  NonSeparationEstimate est = sketch->Estimate(AttributeSet(3));
  ASSERT_FALSE(est.small);
  EXPECT_EQ(est.hits, sketch->sample_size());
  EXPECT_DOUBLE_EQ(est.estimate, static_cast<double>(d.num_pairs()));
}

TEST(SketchTest, SerializationRoundTripsAnswers) {
  Rng rng(5);
  Dataset d = MakeUniformGridSample(5, 3, 400, &rng);
  NonSeparationSketchOptions opts;
  opts.k = 3;
  opts.alpha = 0.05;
  opts.eps = 0.15;
  auto sketch = NonSeparationSketch::Build(d, opts, &rng);
  ASSERT_TRUE(sketch.ok());
  std::string bytes = sketch->Serialize();
  EXPECT_EQ(bytes.size(), sketch->SizeBytes());
  auto back = NonSeparationSketch::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  Rng qrng(6);
  for (int t = 0; t < 50; ++t) {
    AttributeSet a = AttributeSet::Random(5, 0.4, &qrng);
    NonSeparationEstimate e1 = sketch->Estimate(a);
    NonSeparationEstimate e2 = back->Estimate(a);
    EXPECT_EQ(e1.small, e2.small);
    EXPECT_EQ(e1.hits, e2.hits);
    EXPECT_DOUBLE_EQ(e1.estimate, e2.estimate);
  }
}

TEST(SketchTest, DeserializeRejectsCorruptPayloads) {
  EXPECT_FALSE(NonSeparationSketch::Deserialize("short").ok());
  Rng rng(7);
  Dataset d = MakeUniformGridSample(3, 3, 100, &rng);
  NonSeparationSketchOptions opts;
  opts.sample_size = 10;
  auto sketch = NonSeparationSketch::Build(d, opts, &rng);
  ASSERT_TRUE(sketch.ok());
  std::string bytes = sketch->Serialize();
  bytes.pop_back();
  EXPECT_FALSE(NonSeparationSketch::Deserialize(bytes).ok());
}

TEST(SketchTest, SizeMatchesTheoryShape) {
  // Size grows linearly in k (the Θ(mk/(αε²) log|U|)-bit upper bound).
  Rng rng(8);
  Dataset d = MakeUniformGridSample(4, 3, 200, &rng);
  NonSeparationSketchOptions opts;
  opts.alpha = 0.1;
  opts.eps = 0.2;
  opts.k = 2;
  auto s2 = NonSeparationSketch::Build(d, opts, &rng);
  opts.k = 8;
  auto s8 = NonSeparationSketch::Build(d, opts, &rng);
  ASSERT_TRUE(s2.ok() && s8.ok());
  double ratio = static_cast<double>(s8->SizeBytes()) /
                 static_cast<double>(s2->SizeBytes());
  EXPECT_NEAR(ratio, 4.0, 0.2);
}

}  // namespace
}  // namespace qikey
