#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"

namespace qikey {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad eps");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad eps");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nothing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, 500);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(13);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<uint64_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (uint64_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(13);
  auto sample = rng.SampleWithoutReplacement(8, 8);
  std::set<uint64_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 8u);
}

TEST(RngTest, SampleWithoutReplacementIsUniform) {
  // Each element of [0,6) should appear in a 3-subset w.p. 1/2.
  Rng rng(17);
  constexpr int kTrials = 20000;
  int counts[6] = {0};
  for (int t = 0; t < kTrials; ++t) {
    for (uint64_t v : rng.SampleWithoutReplacement(6, 3)) ++counts[v];
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(counts[i], kTrials / 2, kTrials / 20);
  }
}

TEST(RngTest, SamplePairOrderedDistinct) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    auto [a, b] = rng.SamplePair(10);
    EXPECT_LT(a, b);
    EXPECT_LT(b, 10u);
  }
}

TEST(RngTest, SamplePairIsUniformOverPairs) {
  Rng rng(23);
  constexpr int kTrials = 45000;  // 45 pairs from [0,10)
  std::map<std::pair<uint64_t, uint64_t>, int> counts;
  for (int t = 0; t < kTrials; ++t) ++counts[rng.SamplePair(10)];
  EXPECT_EQ(counts.size(), 45u);
  for (const auto& [pair, count] : counts) {
    EXPECT_NEAR(count, kTrials / 45, 300) << pair.first << "," << pair.second;
  }
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(29);
  double p = 0.2;
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(static_cast<double>(rng.Geometric(p)));
  }
  EXPECT_NEAR(stats.mean(), (1 - p) / p, 0.1);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ----------------------------------------------------------------- Stats

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(QuantileSketchTest, MedianAndExtremes) {
  QuantileSketch q;
  for (int i = 1; i <= 101; ++i) q.Add(i);
  EXPECT_DOUBLE_EQ(q.Median(), 51);
  EXPECT_DOUBLE_EQ(q.Quantile(0.0), 1);
  EXPECT_DOUBLE_EQ(q.Quantile(1.0), 101);
}

TEST(QuantileSketchTest, AddAfterQueryResorts) {
  QuantileSketch q;
  q.Add(10);
  EXPECT_DOUBLE_EQ(q.Median(), 10);
  q.Add(0);
  q.Add(1);
  EXPECT_DOUBLE_EQ(q.Median(), 1);
}

// ------------------------------------------------------------------- CSV

TEST(CsvTest, SplitsSimpleLine) {
  auto fields = SplitCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvTest, HandlesQuotedDelimiter) {
  auto fields = SplitCsvLine(R"(x,"a,b",y)");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "a,b");
}

TEST(CsvTest, HandlesDoubledQuotes) {
  auto fields = SplitCsvLine(R"("say ""hi""",2)");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(CsvTest, TrimsUnquotedWhitespace) {
  auto fields = SplitCsvLine("  a ,\tb ,c");
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
}

TEST(CsvTest, ParseWithHeader) {
  auto table = ParseCsv("h1,h2\n1,2\n3,4\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"h1", "h2"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][1], "4");
}

TEST(CsvTest, ParseSkipsBlankLines) {
  auto table = ParseCsv("h\n\n1\n\n2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows.size(), 2u);
}

TEST(CsvTest, RejectsRaggedRows) {
  auto table = ParseCsv("a,b\n1,2\n3\n");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RoundTripsThroughWrite) {
  CsvTable t;
  t.header = {"name", "notes"};
  t.rows = {{"alice", "has,comma"}, {"bob", "quote\"inside"}};
  std::string text = WriteCsv(t);
  auto back = ParseCsv(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows[0][1], "has,comma");
  EXPECT_EQ(back->rows[1][1], "quote\"inside");
}

TEST(CsvTest, MissingFileIsIOError) {
  auto r = ReadCsvFile("/nonexistent/path.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace qikey
