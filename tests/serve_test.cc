#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/separation.h"
#include "data/generators/tabular.h"
#include "engine/pipeline.h"
#include "monitor/key_monitor.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/request.h"
#include "serve/snapshot.h"
#include "serve/verdict_cache.h"
#include "shard/shard_builder.h"
#include "util/rng.h"

namespace qikey {
namespace {

/// A table whose first column is a row id (an exact key by
/// construction, so key/non-key verdicts below are deterministic) over
/// a handful of low-cardinality columns.
Dataset MakeKeyedData(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<ValueCode> id(rows);
  for (size_t i = 0; i < rows; ++i) id[i] = static_cast<ValueCode>(i);
  std::vector<Column> columns;
  columns.emplace_back(std::move(id));
  for (uint32_t card : {5u, 7u, 3u, 11u, 2u}) {
    std::vector<ValueCode> codes(rows);
    for (size_t i = 0; i < rows; ++i) {
      codes[i] = static_cast<ValueCode>(rng.Uniform(card));
    }
    columns.emplace_back(std::move(codes), card);
  }
  return Dataset(
      Schema({"id", "c1", "c2", "c3", "c4", "c5"}), std::move(columns));
}

/// Runs the pipeline and publishes its result into `store`.
uint64_t PublishPipeline(const Dataset& data, FilterBackend backend,
                         double eps, uint64_t seed, SnapshotStore* store) {
  PipelineOptions options;
  options.eps = eps;
  options.backend = backend;
  Rng rng(seed);
  auto result = DiscoveryPipeline(options).Run(data, &rng);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  auto snapshot = SnapshotFromPipelineResult(*result, eps);
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  auto epoch = store->Publish(std::move(*snapshot));
  EXPECT_TRUE(epoch.ok()) << epoch.status().ToString();
  return *epoch;
}

/// A deterministic mixed-kind workload over `schema`.
std::vector<QueryRequest> MakeWorkload(const Schema& schema, size_t count,
                                       uint64_t seed) {
  Rng rng(seed);
  size_t m = schema.num_attributes();
  std::vector<QueryRequest> requests;
  for (size_t i = 0; i < count; ++i) {
    QueryRequest request;
    switch (rng.Uniform(5)) {
      case 0:
        request.kind = QueryKind::kIsKey;
        request.attrs = AttributeSet::Random(m, 0.4, &rng);
        break;
      case 1:
        request.kind = QueryKind::kSeparation;
        request.attrs = AttributeSet::Random(m, 0.4, &rng);
        break;
      case 2:
        request.kind = QueryKind::kMinKey;
        request.attrs = AttributeSet(m);
        break;
      case 3: {
        request.kind = QueryKind::kAfd;
        AttributeIndex rhs =
            static_cast<AttributeIndex>(rng.Uniform(static_cast<uint32_t>(m)));
        request.attrs = AttributeSet::Random(m, 0.3, &rng);
        request.attrs.Remove(rhs);
        request.rhs = rhs;
        break;
      }
      default:
        request.kind = QueryKind::kAnonymity;
        request.attrs = AttributeSet::Random(m, 0.3, &rng);
        request.k = 2 + rng.Uniform(3);
        break;
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

/// Payload equality (everything except the cache_hit latency flag).
void ExpectSameAnswers(const std::vector<QueryResponse>& a,
                       const std::vector<QueryResponse>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status) << i;
    EXPECT_EQ(a[i].epoch, b[i].epoch) << i;
    EXPECT_EQ(a[i].verdict, b[i].verdict) << i;
    EXPECT_EQ(a[i].separation_ratio, b[i].separation_ratio) << i;
    EXPECT_EQ(a[i].separation_class, b[i].separation_class) << i;
    EXPECT_EQ(a[i].has_key, b[i].has_key) << i;
    EXPECT_EQ(a[i].key, b[i].key) << i;
    EXPECT_EQ(a[i].num_minimal_keys, b[i].num_minimal_keys) << i;
    EXPECT_EQ(a[i].afd.violating, b[i].afd.violating) << i;
    EXPECT_EQ(a[i].afd.g2, b[i].afd.g2) << i;
    EXPECT_EQ(a[i].anonymity_level, b[i].anonymity_level) << i;
    EXPECT_EQ(a[i].below_k_fraction, b[i].below_k_fraction) << i;
  }
}

TEST(ServeSnapshotTest, FromPipelineResultCarriesRunState) {
  Dataset data = MakeKeyedData(500, 7);
  PipelineOptions options;
  options.eps = 0.01;
  Rng rng(1);
  auto result = DiscoveryPipeline(options).Run(data, &rng);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->filter, nullptr);
  ASSERT_NE(result->sample, nullptr);

  auto snapshot = SnapshotFromPipelineResult(*result, options.eps);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->source_rows, data.num_rows());
  ASSERT_EQ(snapshot->keys->size(), 1u);
  EXPECT_EQ(snapshot->keys->front(), result->key);

  SnapshotStore store;
  EXPECT_EQ(store.Current(), nullptr);
  auto epoch = store.Publish(std::move(*snapshot));
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 1u);
  ASSERT_NE(store.Current(), nullptr);
  EXPECT_EQ(store.Current()->epoch, 1u);
  EXPECT_FALSE(store.Current()->Describe().empty());
}

TEST(ServeSnapshotTest, PublishRejectsIncompleteSnapshots) {
  SnapshotStore store;
  ServeSnapshot empty;
  auto status = store.Publish(std::move(empty));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(store.Current(), nullptr);
}

TEST(QueryEngineTest, NoSnapshotYieldsNotFound) {
  SnapshotStore store;
  QueryEngine engine(&store, QueryEngineOptions{});
  QueryRequest request;
  request.kind = QueryKind::kMinKey;
  QueryResponse response = engine.Execute(request);
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);
}

TEST(QueryEngineTest, DeterministicAcrossThreadsAndCache) {
  Dataset data = MakeKeyedData(1200, 3);
  SnapshotStore store;
  PublishPipeline(data, FilterBackend::kTupleSample, 0.01, 5, &store);
  std::vector<QueryRequest> workload = MakeWorkload(data.schema(), 300, 11);

  QueryEngineOptions serial;
  serial.num_threads = 1;
  serial.cache_capacity = 0;
  QueryEngine baseline(&store, serial);
  std::vector<QueryResponse> expected = baseline.ExecuteBatch(workload);

  for (size_t threads : {1u, 4u, 8u}) {
    for (size_t cache : {0u, 4096u}) {
      QueryEngineOptions options;
      options.num_threads = threads;
      options.cache_capacity = cache;
      QueryEngine engine(&store, options);
      // Twice: the second round answers is-key from the cache when on.
      ExpectSameAnswers(expected, engine.ExecuteBatch(workload));
      ExpectSameAnswers(expected, engine.ExecuteBatch(workload));
    }
  }
}

TEST(QueryEngineTest, CacheHitsSecondRoundAndNeverChangesAnswers) {
  Dataset data = MakeKeyedData(800, 9);
  SnapshotStore store;
  PublishPipeline(data, FilterBackend::kTupleSample, 0.01, 5, &store);

  std::vector<QueryRequest> keys;
  Rng rng(21);
  for (size_t i = 0; i < 64; ++i) {
    QueryRequest request;
    request.kind = QueryKind::kIsKey;
    request.attrs = AttributeSet::Random(data.num_attributes(), 0.5, &rng);
    keys.push_back(std::move(request));
  }

  QueryEngineOptions options;
  options.num_threads = 4;
  QueryEngine engine(&store, options);
  std::vector<QueryResponse> first = engine.ExecuteBatch(keys);
  EXPECT_EQ(engine.cache_hits(), 0u);
  std::vector<QueryResponse> second = engine.ExecuteBatch(keys);
  EXPECT_GT(engine.cache_hits(), 0u);
  ExpectSameAnswers(first, second);
  for (const QueryResponse& response : second) {
    EXPECT_TRUE(response.cache_hit);
  }
}

TEST(QueryEngineTest, BackendsAgreeOnDeterministicVerdicts) {
  Dataset data = MakeKeyedData(600, 13);
  size_t m = data.num_attributes();
  AttributeSet id_only(m);
  id_only.Add(0);  // exact key by construction
  AttributeSet empty(m);  // separates nothing

  QueryRequest key_request;
  key_request.kind = QueryKind::kIsKey;
  key_request.attrs = id_only;
  QueryRequest empty_request;
  empty_request.kind = QueryKind::kIsKey;
  empty_request.attrs = empty;

  for (FilterBackend backend :
       {FilterBackend::kTupleSample, FilterBackend::kMxPair,
        FilterBackend::kBitset}) {
    SnapshotStore store;
    PublishPipeline(data, backend, 0.01, 5, &store);
    QueryEngine engine(&store, QueryEngineOptions{});
    EXPECT_EQ(engine.Execute(key_request).verdict, FilterVerdict::kAccept);
    EXPECT_EQ(engine.Execute(empty_request).verdict, FilterVerdict::kReject);
  }

  // MX and bitset draw the same pairs for a fixed seed, so ALL their
  // verdicts must agree, not just the deterministic extremes.
  SnapshotStore mx_store, bitset_store;
  PublishPipeline(data, FilterBackend::kMxPair, 0.01, 5, &mx_store);
  PublishPipeline(data, FilterBackend::kBitset, 0.01, 5, &bitset_store);
  QueryEngine mx_engine(&mx_store, QueryEngineOptions{});
  QueryEngine bitset_engine(&bitset_store, QueryEngineOptions{});
  Rng rng(31);
  for (size_t i = 0; i < 100; ++i) {
    QueryRequest request;
    request.kind = QueryKind::kIsKey;
    request.attrs = AttributeSet::Random(m, 0.35, &rng);
    EXPECT_EQ(mx_engine.Execute(request).verdict,
              bitset_engine.Execute(request).verdict)
        << request.attrs.ToString();
  }
}

TEST(QueryEngineTest, SnapshotSwapWhileQuerying) {
  Dataset data_a = MakeKeyedData(400, 17);
  Dataset data_b = MakeKeyedData(900, 19);

  // Reference answers per source, computed single-threaded up front.
  std::vector<QueryRequest> workload = MakeWorkload(data_a.schema(), 40, 23);
  SnapshotStore ref_a, ref_b;
  PublishPipeline(data_a, FilterBackend::kTupleSample, 0.01, 5, &ref_a);
  PublishPipeline(data_b, FilterBackend::kTupleSample, 0.01, 5, &ref_b);
  QueryEngineOptions serial;
  serial.num_threads = 1;
  serial.cache_capacity = 0;
  QueryEngine engine_a(&ref_a, serial);
  QueryEngine engine_b(&ref_b, serial);
  std::vector<QueryResponse> expected_a = engine_a.ExecuteBatch(workload);
  std::vector<QueryResponse> expected_b = engine_b.ExecuteBatch(workload);

  // Live store: the writer alternates publishing A- and B-derived
  // snapshots while readers hammer it. Odd epochs carry A, even B.
  SnapshotStore store;
  PublishPipeline(data_a, FilterBackend::kTupleSample, 0.01, 5, &store);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mismatches{0};
  auto reader = [&]() {
    QueryEngineOptions options;
    options.num_threads = 1;
    QueryEngine engine(&store, options);
    // Keep reading past the writer's last publish so every reader is
    // guaranteed to overlap swaps (and to observe the final snapshot).
    for (int iteration = 0;
         iteration < 50 || !stop.load(std::memory_order_relaxed);
         ++iteration) {
      std::vector<QueryResponse> got = engine.ExecuteBatch(workload);
      uint64_t epoch = got.front().epoch;
      const std::vector<QueryResponse>& expected =
          (epoch % 2 == 1) ? expected_a : expected_b;
      for (size_t i = 0; i < got.size(); ++i) {
        // Every response of a batch must come from ONE snapshot and
        // match that snapshot's reference answers exactly.
        if (got[i].epoch != epoch ||
            got[i].verdict != expected[i].verdict ||
            got[i].separation_ratio != expected[i].separation_ratio ||
            got[i].anonymity_level != expected[i].anonymity_level ||
            got[i].afd.violating != expected[i].afd.violating ||
            got[i].key != expected[i].key) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  };
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) readers.emplace_back(reader);
  for (int round = 0; round < 20; ++round) {
    const Dataset& data = (round % 2 == 0) ? data_b : data_a;
    PublishPipeline(data, FilterBackend::kTupleSample, 0.01, 5, &store);
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(store.epoch(), 21u);
}

TEST(ServeSnapshotTest, FromMonitorFreezesWindowExactly) {
  Dataset data = MakeKeyedData(200, 29);
  MonitorOptions options;
  options.eps = 0.01;
  options.max_key_size = 3;
  options.sample_size = 10000;  // covers the window: exact monitor
  auto monitor = KeyMonitor::Make(data.schema(), options, 1);
  ASSERT_TRUE(monitor.ok());
  ASSERT_TRUE((*monitor)->InsertDataset(data).ok());

  auto snapshot = SnapshotFromMonitor(**monitor);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->source_rows, data.num_rows());
  EXPECT_EQ(*snapshot->keys, (*monitor)->Snapshot()->minimal_keys());

  SnapshotStore store;
  ASSERT_TRUE(store.Publish(std::move(*snapshot)).ok());
  QueryEngine engine(&store, QueryEngineOptions{});

  // The exact monitor's minimal keys are keys of the frozen window;
  // any proper subset of a minimal key is not.
  ASSERT_FALSE(store.Current()->keys->empty());
  for (const AttributeSet& key : *store.Current()->keys) {
    QueryRequest request;
    request.kind = QueryKind::kIsKey;
    request.attrs = key;
    EXPECT_EQ(engine.Execute(request).verdict, FilterVerdict::kAccept);
    for (AttributeIndex a : key.ToIndices()) {
      request.attrs = key;
      request.attrs.Remove(a);
      EXPECT_EQ(engine.Execute(request).verdict, FilterVerdict::kReject);
    }
  }
}

TEST(ServeSnapshotTest, FromShardArtifactsMatchesMergedRun) {
  Dataset data = MakeKeyedData(1000, 37);
  PipelineOptions options;
  options.eps = 0.01;

  ShardedBuildOptions build;
  build.eps = options.eps;
  build.num_shards = 4;
  build.seed = 99;
  auto artifacts = BuildShardArtifacts(data, build);
  ASSERT_TRUE(artifacts.ok());
  auto artifacts_copy = *artifacts;

  auto reference =
      DiscoveryPipeline(options).RunOnShardArtifacts(*artifacts, 123);
  ASSERT_TRUE(reference.ok());

  auto snapshot =
      SnapshotFromShardArtifacts(std::move(artifacts_copy), options, 123);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot->keys->size(), 1u);
  EXPECT_EQ(snapshot->keys->front(), reference->key);
  EXPECT_EQ(snapshot->source_rows, data.num_rows());

  SnapshotStore store;
  ASSERT_TRUE(store.Publish(std::move(*snapshot)).ok());
  QueryEngine engine(&store, QueryEngineOptions{});
  QueryRequest request;
  request.kind = QueryKind::kMinKey;
  request.attrs = AttributeSet(data.num_attributes());
  QueryResponse response = engine.Execute(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.key, reference->key);
}

TEST(QueryEngineTest, RejectsRequestsThatDoNotFitTheSnapshot) {
  Dataset data = MakeKeyedData(100, 41);
  SnapshotStore store;
  PublishPipeline(data, FilterBackend::kTupleSample, 0.01, 5, &store);
  QueryEngine engine(&store, QueryEngineOptions{});

  QueryRequest wrong_arity;
  wrong_arity.kind = QueryKind::kIsKey;
  wrong_arity.attrs = AttributeSet(3);  // snapshot has 6 attributes
  EXPECT_EQ(engine.Execute(wrong_arity).status.code(),
            StatusCode::kInvalidArgument);

  QueryRequest rhs_in_lhs;
  rhs_in_lhs.kind = QueryKind::kAfd;
  rhs_in_lhs.attrs = AttributeSet::FromIndices(data.num_attributes(), {1, 2});
  rhs_in_lhs.rhs = 2;
  EXPECT_EQ(engine.Execute(rhs_in_lhs).status.code(),
            StatusCode::kInvalidArgument);

  // One bad request must not poison its batch.
  QueryRequest good;
  good.kind = QueryKind::kMinKey;
  good.attrs = AttributeSet(data.num_attributes());
  std::vector<QueryRequest> batch{wrong_arity, good};
  std::vector<QueryResponse> responses = engine.ExecuteBatch(batch);
  EXPECT_FALSE(responses[0].status.ok());
  EXPECT_TRUE(responses[1].status.ok());
  EXPECT_TRUE(responses[1].has_key);
}

TEST(RequestParsingTest, ParsesEveryVerb) {
  Schema schema({"zip", "dob", "sex", "name"});
  auto is_key = ParseQueryRequest("is-key zip,dob", schema);
  ASSERT_TRUE(is_key.ok());
  EXPECT_EQ(is_key->kind, QueryKind::kIsKey);
  EXPECT_EQ(is_key->attrs, AttributeSet::FromIndices(4, {0, 1}));

  auto separation = ParseQueryRequest("  separation \t sex ", schema);
  ASSERT_TRUE(separation.ok());
  EXPECT_EQ(separation->kind, QueryKind::kSeparation);

  auto min_key = ParseQueryRequest("min-key", schema);
  ASSERT_TRUE(min_key.ok());
  EXPECT_EQ(min_key->kind, QueryKind::kMinKey);

  auto afd = ParseQueryRequest("afd zip,dob -> name", schema);
  ASSERT_TRUE(afd.ok());
  EXPECT_EQ(afd->kind, QueryKind::kAfd);
  EXPECT_EQ(afd->rhs, 3u);

  auto anonymity = ParseQueryRequest("anonymity zip,dob 5", schema);
  ASSERT_TRUE(anonymity.ok());
  EXPECT_EQ(anonymity->kind, QueryKind::kAnonymity);
  EXPECT_EQ(anonymity->k, 5u);
}

TEST(RequestParsingTest, RejectsMalformedRequests) {
  Schema schema({"zip", "dob"});
  const char* bad[] = {
      "",                      // empty
      "frobnicate zip",        // unknown verb
      "is-key",                // missing attrs
      "is-key zip dob",        // two tokens, not a list
      "is-key zip,,dob",       // empty name inside the list
      "is-key ssn",            // unknown attribute
      "min-key zip",           // junk after min-key
      "afd zip dob",           // missing ->
      "afd zip -> ssn",        // unknown rhs
      "anonymity zip banana",  // non-integer k
      "anonymity zip 0",       // k = 0
      "anonymity zip -3",      // negative k
      "anonymity zip 2 junk",  // trailing junk
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ParseQueryRequest(line, schema).ok()) << line;
  }
}

TEST(RequestParsingTest, FileBodySkipsCommentsAndNamesBadLines) {
  Schema schema({"zip", "dob"});
  auto good = ParseQueryRequests(
      "# header comment\n\nis-key zip\r\n   \nmin-key\n", schema);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->size(), 2u);

  auto bad = ParseQueryRequests("min-key\nis-key ssn\n", schema);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos)
      << bad.status().ToString();
}

TEST(VerdictCacheTest, LruEvictionAndEpochKeying) {
  VerdictCacheOptions options;
  options.capacity = 2;
  options.shards = 1;
  VerdictCache cache(options);
  AttributeSet a = AttributeSet::FromIndices(4, {0});
  AttributeSet b = AttributeSet::FromIndices(4, {1});
  AttributeSet c = AttributeSet::FromIndices(4, {2});

  cache.Insert(1, a, FilterVerdict::kAccept);
  cache.Insert(1, b, FilterVerdict::kReject);
  FilterVerdict verdict;
  ASSERT_TRUE(cache.Lookup(1, a, &verdict));  // refreshes a
  EXPECT_EQ(verdict, FilterVerdict::kAccept);
  cache.Insert(1, c, FilterVerdict::kAccept);  // evicts b (LRU)
  EXPECT_FALSE(cache.Lookup(1, b, &verdict));
  ASSERT_TRUE(cache.Lookup(1, a, &verdict));
  ASSERT_TRUE(cache.Lookup(1, c, &verdict));
  EXPECT_EQ(cache.size(), 2u);

  // Same set, other epoch: a distinct key, not a stale answer.
  EXPECT_FALSE(cache.Lookup(2, a, &verdict));

  VerdictCacheOptions disabled;
  disabled.capacity = 0;
  VerdictCache off(disabled);
  EXPECT_FALSE(off.enabled());
  off.Insert(1, a, FilterVerdict::kAccept);
  EXPECT_FALSE(off.Lookup(1, a, &verdict));
}

}  // namespace
}  // namespace qikey
