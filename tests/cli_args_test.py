#!/usr/bin/env python3
"""Table-driven CLI argument-parsing regression test.

Usage:
  cli_args_test.py <qikey-binary> <qikey-gen-binary> <golden-csv-dir>

Covers every flag's reject paths and the documented exit codes:
  0 success
  1 load/runtime error (missing CSV, malformed --requests file)
  2 usage error (garbage or out-of-range flag values, unknown flags)
  3 discover verification failure (emitted key rejected by the filter)

Every numeric flag must parse strictly: garbage ("banana"), partial
numbers ("3x"), out-of-range values, and NaN must exit 2 with a message
on stderr — never be silently coerced to 0 (the old atoi/atof behavior,
where `--eps 0` then fed the Θ(m/ε) pair-count computation).
"""

import os
import subprocess
import sys
import tempfile


def run(argv):
    proc = subprocess.run(argv, capture_output=True, text=True, timeout=120)
    return proc.returncode, proc.stdout, proc.stderr


def main():
    if len(sys.argv) != 4:
        print(__doc__)
        return 2
    qikey, qikey_gen, golden_dir = sys.argv[1:4]
    people = os.path.join(golden_dir, "people.csv")

    tmp = tempfile.mkdtemp(prefix="qikey_cli_args_")
    # Two identical rows: no attribute set separates them, so discover's
    # verify stage deterministically rejects the emitted key -> exit 3.
    unkeyable = os.path.join(tmp, "unkeyable.csv")
    with open(unkeyable, "w") as f:
        f.write("a,b\nsame,same\nsame,same\n")
    good_requests = os.path.join(tmp, "good_requests.txt")
    with open(good_requests, "w") as f:
        f.write("# comment\nis-key first,last\nmin-key\n")
    bad_requests = os.path.join(tmp, "bad_requests.txt")
    with open(bad_requests, "w") as f:
        f.write("min-key\nis-key no_such_column\n")
    out_csv = os.path.join(tmp, "gen_out.csv")
    snap_file = os.path.join(tmp, "people.qsnp")
    missing_snap = os.path.join(tmp, "missing.qsnp")
    # Right magic, garbage body: inspect must diagnose it, exit 2.
    not_snap = os.path.join(tmp, "not_a_snapshot.qsnp")
    with open(not_snap, "wb") as f:
        f.write(b"QSNP1\x00\x00\x00 but then garbage all the way down")

    # (binary, args, expected exit code, required stderr substring)
    cases = [
        # --- success paths ---
        (qikey, ["discover", people, "--eps", "0.01"], 0, None),
        (qikey, ["discover", people, "--eps", "5e-3", "--seed", "7"], 0,
         None),
        (qikey, ["query", people, "--requests", good_requests], 0, None),
        # keys runs exact UCC enumeration, which admits eps = 0
        (qikey, ["keys", people, "--eps", "0"], 0, None),
        (qikey_gen, ["grid", "--out", out_csv, "--rows", "50", "--m", "4",
                     "--q", "5"], 0, None),
        # --- exit 1: load/runtime errors ---
        (qikey, ["discover", os.path.join(tmp, "missing.csv")], 1,
         "cannot load"),
        (qikey, ["query", people, "--requests",
                 os.path.join(tmp, "missing_requests.txt")], 1,
         "cannot load"),
        (qikey, ["query", people, "--requests", bad_requests], 1, "line 2"),
        # --- exit 3: verification failure ---
        (qikey, ["discover", unkeyable], 3, "verification failed"),
        # --- exit 2: command-level usage errors ---
        (qikey, [], 2, None),
        (qikey, ["frobnicate", people], 2, None),
        (qikey, ["discover", people, "--frobnicate", "1"], 2,
         "unknown flag"),
        (qikey, ["discover", people, "--eps"], 2, "missing its value"),
        (qikey, ["query", people], 2, "--attrs"),
        (qikey, ["afd", people], 2, "--rhs"),
        (qikey, ["discover", people, "--backend", "bogus"], 2,
         "unknown backend"),
        # --- exit 2: strict numeric parsing, flag by flag ---
        # --eps must be a number in (0, 1)
        (qikey, ["discover", people, "--eps", "0"], 2, "must be"),
        (qikey, ["discover", people, "--eps", "1"], 2, "must be"),
        (qikey, ["discover", people, "--eps", "-0.5"], 2, "must be"),
        (qikey, ["discover", people, "--eps", "banana"], 2, "must be"),
        (qikey, ["discover", people, "--eps", "nan"], 2, "must be"),
        (qikey, ["discover", people, "--eps", "inf"], 2, "must be"),
        (qikey, ["discover", people, "--eps", "0.5x"], 2, "must be"),
        # --max-size
        (qikey, ["keys", people, "--max-size", "0"], 2, "must be"),
        (qikey, ["keys", people, "--max-size", "-1"], 2, "must be"),
        (qikey, ["keys", people, "--max-size", "banana"], 2, "must be"),
        (qikey, ["keys", people, "--max-size", "2.5"], 2, "must be"),
        # --error (afd threshold) in [0, 1]
        (qikey, ["afd", people, "--rhs", "age", "--error", "-0.1"], 2,
         "must be"),
        (qikey, ["afd", people, "--rhs", "age", "--error", "2"], 2,
         "must be"),
        (qikey, ["afd", people, "--rhs", "age", "--error", "banana"], 2,
         "must be"),
        # --seed
        (qikey, ["discover", people, "--seed", "banana"], 2, "must be"),
        (qikey, ["discover", people, "--seed", "-1"], 2, "must be"),
        # strtoull skips whitespace and wraps negatives; the parser must
        # not let " -1" become 2^64-1
        (qikey, ["discover", people, "--seed", " -1"], 2, "must be"),
        (qikey, ["discover", people, "--seed", "1.5"], 2, "must be"),
        # --k
        (qikey, ["anonymize", people, "--attrs", "city", "--k", "0"], 2,
         "must be"),
        (qikey, ["anonymize", people, "--attrs", "city", "--k", "banana"],
         2, "must be"),
        # --suppress in [0, 1]
        (qikey, ["anonymize", people, "--attrs", "city", "--suppress",
                 "-0.1"], 2, "must be"),
        (qikey, ["anonymize", people, "--attrs", "city", "--suppress",
                 "1.5"], 2, "must be"),
        (qikey, ["anonymize", people, "--attrs", "city", "--suppress",
                 "nan"], 2, "must be"),
        # --threads
        (qikey, ["discover", people, "--threads", "-1"], 2, "must be"),
        (qikey, ["discover", people, "--threads", "99999"], 2, "must be"),
        (qikey, ["discover", people, "--threads", "banana"], 2, "must be"),
        # --window
        (qikey, ["monitor", people, "--window", "banana"], 2, "must be"),
        (qikey, ["monitor", people, "--window", "-2"], 2, "must be"),
        # --shards / --shard-rows / --cache (counted flags)
        (qikey, ["discover", people, "--shards", "banana"], 2, "must be"),
        (qikey, ["discover", people, "--shards", "-1"], 2, "must be"),
        (qikey, ["discover", people, "--shard-rows", "x"], 2, "must be"),
        (qikey, ["query", people, "--cache", "banana"], 2, "must be"),
        # --memory-budget
        (qikey, ["discover", people, "--memory-budget", "-1"], 2,
         "must be"),
        (qikey, ["discover", people, "--memory-budget", "banana"], 2,
         "must be"),
        (qikey, ["discover", people, "--memory-budget", "nan"], 2,
         "must be"),
        # --stats-interval-sec
        (qikey, ["serve", people, "--stats-interval-sec", "banana"], 2,
         "must be"),
        (qikey, ["serve", people, "--stats-interval-sec", "-1"], 2,
         "must be"),
        (qikey, ["serve", people, "--stats-interval-sec"], 2,
         "missing its value"),
        # --trace-sample: N or 1/N, strictly numeric either way
        (qikey, ["serve", people, "--trace-sample", "banana"], 2,
         "must be"),
        (qikey, ["serve", people, "--trace-sample", "-5"], 2, "must be"),
        (qikey, ["serve", people, "--trace-sample", "1/"], 2, "must be"),
        (qikey, ["serve", people, "--trace-sample", "1/banana"], 2,
         "must be"),
        (qikey, ["serve", people, "--trace-sample", "2/3"], 2, "must be"),
        # --stats with the engine metrics snapshot appended as JSON
        (qikey, ["query", people, "--requests", good_requests, "--stats"],
         0, None),
        # --- qikey snapshot save / inspect (order matters: the save
        # case writes the file the inspect-success case reads) ---
        (qikey, ["snapshot", "save", people, "--out", snap_file], 0, None),
        (qikey, ["snapshot", "inspect", snap_file], 0, None),
        (qikey, ["snapshot"], 2, None),
        (qikey, ["snapshot", "save"], 2, None),
        (qikey, ["snapshot", "frobnicate", people], 2, "save|inspect"),
        (qikey, ["snapshot", "save", people], 2, "--out"),
        (qikey, ["snapshot", "save", people, "--out", snap_file, "--eps",
                 "banana"], 2, "must be"),
        (qikey, ["snapshot", "save", os.path.join(tmp, "missing.csv"),
                 "--out", snap_file + ".tmp"], 1, "cannot build snapshot"),
        # malformed / missing artifacts: exit 2 with a diagnosis
        (qikey, ["snapshot", "inspect", not_snap], 2, None),
        (qikey, ["snapshot", "inspect", missing_snap], 2, None),
        # --- qikey serve --snapshot-file plumbing ---
        (qikey, ["serve"], 2, None),
        (qikey, ["serve", "--snapshot-file"], 2, "missing its value"),
        (qikey, ["serve", people, "--snapshot-file", snap_file], 2,
         "not both"),
        (qikey, ["serve", "--snapshot-file", missing_snap], 1,
         "cannot build snapshot"),
        # --- qikey-gen strict parsing ---
        (qikey_gen, [], 2, None),
        (qikey_gen, ["grid", "--rows", "50"], 2, "--out"),
        (qikey_gen, ["grid", "--out", out_csv, "--rows", "banana"], 2,
         "must be"),
        (qikey_gen, ["grid", "--out", out_csv, "--rows", "0"], 2,
         "must be"),
        (qikey_gen, ["grid", "--out", out_csv, "--rows", "-5"], 2,
         "must be"),
        (qikey_gen, ["grid", "--out", out_csv, "--rows", "50", "--m",
                     "banana"], 2, "must be"),
        (qikey_gen, ["grid", "--out", out_csv, "--rows", "50", "--m", "0"],
         2, "must be"),
        (qikey_gen, ["grid", "--out", out_csv, "--rows", "50", "--q",
                     "1.5"], 2, "must be"),
        (qikey_gen, ["clique", "--out", out_csv, "--rows", "50", "--eps",
                     "0"], 2, "must be"),
        (qikey_gen, ["clique", "--out", out_csv, "--rows", "50", "--eps",
                     "banana"], 2, "must be"),
        (qikey_gen, ["grid", "--out", out_csv, "--rows", "50", "--seed",
                     "banana"], 2, "must be"),
        (qikey_gen, ["grid", "--out", out_csv, "--rows", "50", "--seed",
                     " -1"], 2, "must be"),
        (qikey_gen, ["grid", "--out", out_csv, "--rows", "50",
                     "--frobnicate", "1"], 2, "unknown flag"),
        (qikey_gen, ["grid", "--out", out_csv, "--rows", "50", "--seed"],
         2, "missing its value"),
    ]

    failures = []
    for binary, args, want_exit, want_stderr in cases:
        code, out, err = run([binary] + args)
        label = " ".join([os.path.basename(binary)] + args)
        if code != want_exit:
            failures.append(
                f"{label}\n  exit {code}, want {want_exit}\n"
                f"  stdout: {out.strip()[:200]}\n"
                f"  stderr: {err.strip()[:200]}")
        elif want_stderr is not None and want_stderr not in err:
            failures.append(
                f"{label}\n  stderr missing {want_stderr!r}\n"
                f"  stderr: {err.strip()[:200]}")
        # Usage errors must say SOMETHING on stderr.
        elif want_exit == 2 and not err.strip():
            failures.append(f"{label}\n  exit 2 with empty stderr")

    if failures:
        print(f"{len(failures)} of {len(cases)} case(s) failed:\n")
        print("\n\n".join(failures))
        return 1
    print(f"ok: all {len(cases)} CLI argument cases behaved")
    return 0


if __name__ == "__main__":
    sys.exit(main())
