// Tests for the observability primitives (src/obs/): sharded counters,
// gauges, the log-linear latency histogram (quantile accuracy against a
// sorted-sample oracle, bucket-exact merges, multi-threaded recording),
// and the metrics registry's deterministic JSON rendering.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace qikey {
namespace {

// ---------------------------------------------------------------------------
// Counter / Gauge

TEST(CounterTest, SingleThreadCounts) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.Set(7);
  EXPECT_EQ(g.value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.value(), -3);
}

// ---------------------------------------------------------------------------
// Histogram bucket scheme

TEST(HistogramTest, SmallValuesAreExact) {
  // Values below 2 * kSubCount = 64 get unit-width buckets: the
  // representative equals the value.
  for (uint64_t v = 0; v < 2 * LatencyHistogram::kSubCount; ++v) {
    size_t idx = LatencyHistogram::BucketIndex(v);
    EXPECT_EQ(LatencyHistogram::BucketValue(idx), v) << "value " << v;
    EXPECT_EQ(LatencyHistogram::BucketUpperEdge(idx), v) << "value " << v;
  }
}

TEST(HistogramTest, BucketIndexIsMonotoneAndInRange) {
  size_t prev = 0;
  for (uint64_t v = 0; v < 1 << 16; ++v) {
    size_t idx = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(idx, LatencyHistogram::kNumBuckets);
    ASSERT_GE(idx, prev) << "index decreased at value " << v;
    prev = idx;
  }
  // The largest representable value maps to the last bucket.
  EXPECT_EQ(LatencyHistogram::BucketIndex(~uint64_t{0}),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(HistogramTest, BucketEdgesCoverTheValue) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    // Random magnitudes across all ranges: a random bit width, then
    // random bits below it.
    uint64_t v = rng.Next() >> rng.Uniform(64);
    size_t idx = LatencyHistogram::BucketIndex(v);
    EXPECT_LE(LatencyHistogram::BucketValue(idx),
              LatencyHistogram::BucketUpperEdge(idx));
    EXPECT_GE(LatencyHistogram::BucketUpperEdge(idx), v);
    if (idx > 0) {
      EXPECT_LT(LatencyHistogram::BucketUpperEdge(idx - 1), v);
    }
  }
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  LatencyHistogram h;
  h.Record(-5);
  h.Record(-1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 0u);
}

TEST(HistogramTest, EmptyHistogramQuantilesAreZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.max, 0u);
}

// ---------------------------------------------------------------------------
// Quantiles vs a sorted-sample oracle

// Records `values` and checks p50/p90/p99/p999 against the exact
// order statistics, requiring the histogram's answer to be within the
// documented 1/kSubCount relative error of the true sample.
void CheckQuantilesAgainstOracle(const std::vector<uint64_t>& values) {
  LatencyHistogram h;
  std::vector<uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (uint64_t v : sorted) h.Record(static_cast<int64_t>(v));
  ASSERT_EQ(h.count(), sorted.size());

  const double kMaxRelErr =
      1.0 / static_cast<double>(LatencyHistogram::kSubCount);
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    if (rank == 0) rank = 1;
    if (rank > sorted.size()) rank = sorted.size();
    uint64_t exact = sorted[rank - 1];
    uint64_t approx = h.ValueAtQuantile(q);
    // The reported value is the midpoint of the bucket holding the
    // exact order statistic, so it differs by at most half a bucket
    // width — bounded by the relative error of the bucket scheme.
    double err = std::abs(static_cast<double>(approx) -
                          static_cast<double>(exact));
    double bound = kMaxRelErr * static_cast<double>(exact) + 1.0;
    EXPECT_LE(err, bound) << "q=" << q << " exact=" << exact
                          << " approx=" << approx;
  }
}

TEST(HistogramTest, QuantilesUniform) {
  Rng rng(1);
  std::vector<uint64_t> values;
  for (int i = 0; i < 50000; ++i) values.push_back(rng.Uniform(10000000));
  CheckQuantilesAgainstOracle(values);
}

TEST(HistogramTest, QuantilesZipf) {
  // Heavy-tailed: value ~ floor(1/u^1.2), spanning many decades — the
  // regime log-linear bucketing exists for.
  Rng rng(2);
  std::vector<uint64_t> values;
  for (int i = 0; i < 50000; ++i) {
    double u = rng.UniformDouble();
    if (u < 1e-9) u = 1e-9;
    values.push_back(static_cast<uint64_t>(1.0 / std::pow(u, 1.2)));
  }
  CheckQuantilesAgainstOracle(values);
}

TEST(HistogramTest, QuantilesBimodal) {
  // Fast-path/slow-path mixture: 90% near 1us, 10% near 50ms.
  Rng rng(3);
  std::vector<uint64_t> values;
  for (int i = 0; i < 50000; ++i) {
    if (rng.Bernoulli(0.9)) {
      values.push_back(800 + rng.Uniform(400));
    } else {
      values.push_back(45000000 + rng.Uniform(10000000));
    }
  }
  CheckQuantilesAgainstOracle(values);
}

TEST(HistogramTest, SumIsExactNotBucketed) {
  LatencyHistogram h;
  uint64_t expect = 0;
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(1u << 30);
    h.Record(static_cast<int64_t>(v));
    expect += v;
  }
  EXPECT_EQ(h.sum(), expect);
}

// ---------------------------------------------------------------------------
// Merge semantics

TEST(HistogramTest, MergeIsCommutativeBucketExact) {
  Rng rng(5);
  LatencyHistogram a, b, ab, ba, all;
  for (int i = 0; i < 5000; ++i) {
    int64_t va = static_cast<int64_t>(rng.Uniform(1u << 20));
    int64_t vb = static_cast<int64_t>(rng.Uniform(1u << 28));
    a.Record(va);
    b.Record(vb);
    all.Record(va);
    all.Record(vb);
  }
  ab.MergeFrom(a);
  ab.MergeFrom(b);
  ba.MergeFrom(b);
  ba.MergeFrom(a);
  HistogramSnapshot sab = ab.Snapshot();
  HistogramSnapshot sba = ba.Snapshot();
  HistogramSnapshot sall = all.Snapshot();
  EXPECT_EQ(sab.buckets, sba.buckets);
  EXPECT_EQ(sab.buckets, sall.buckets);
  EXPECT_EQ(sab.count, sall.count);
  EXPECT_EQ(sab.sum, sall.sum);
  EXPECT_EQ(sab.max, sall.max);
}

TEST(HistogramTest, SnapshotMergeMatchesHistogramMerge) {
  Rng rng(6);
  LatencyHistogram a, b;
  for (int i = 0; i < 2000; ++i) {
    a.Record(static_cast<int64_t>(rng.Uniform(1000)));
    b.Record(static_cast<int64_t>(rng.Uniform(1u << 24)));
  }
  HistogramSnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  LatencyHistogram combined;
  combined.MergeFrom(a);
  combined.MergeFrom(b);
  HistogramSnapshot expect = combined.Snapshot();
  EXPECT_EQ(merged.buckets, expect.buckets);
  EXPECT_EQ(merged.count, expect.count);
  EXPECT_EQ(merged.sum, expect.sum);
  EXPECT_EQ(merged.max, expect.max);
}

// ---------------------------------------------------------------------------
// Multi-threaded recording

TEST(HistogramTest, ConcurrentRecordsLoseNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<int64_t>(rng.Uniform(1u << 22)));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  // Bucket totals agree with the count (no torn or dropped updates).
  HistogramSnapshot s = h.Snapshot();
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Registry

TEST(RegistryTest, RenderJsonIsDeterministicAndSorted) {
  Counter c;
  c.Increment(3);
  Gauge g;
  g.Set(-2);
  LatencyHistogram h;
  h.Record(10);
  MetricsRegistry registry;
  registry.RegisterCounter("b.count", &c);
  registry.RegisterGauge("a.gauge", &g);
  registry.RegisterHistogram("c.lat_ns", &h);
  registry.RegisterCounterFn("a.count", [] { return uint64_t{9}; });
  registry.RegisterGaugeFn("z.gauge", [] { return int64_t{4}; });

  std::string first = registry.RenderJson();
  std::string second = registry.RenderJson();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first,
            "{\"counters\":{\"a.count\":9,\"b.count\":3},"
            "\"gauges\":{\"a.gauge\":-2,\"z.gauge\":4},"
            "\"histograms\":{\"c.lat_ns\":{\"count\":1,\"sum\":10,"
            "\"p50\":10,\"p99\":10,\"p999\":10,\"max\":10}}}");
}

TEST(RegistryTest, ReRegisterReplacesAcrossKinds) {
  Counter c;
  c.Increment(5);
  MetricsRegistry registry;
  registry.RegisterCounterFn("x", [] { return uint64_t{1}; });
  registry.RegisterCounter("x", &c);  // replaces the fn entry
  MetricsSnapshot snap = registry.SnapshotAll();
  ASSERT_EQ(snap.counters.count("x"), 1u);
  EXPECT_EQ(snap.counters.at("x"), 5u);

  // And the other way around: a fn replaces a pointer registration.
  registry.RegisterCounterFn("x", [] { return uint64_t{77}; });
  snap = registry.SnapshotAll();
  EXPECT_EQ(snap.counters.at("x"), 77u);
}

TEST(RegistryTest, SnapshotReadsLiveValues) {
  Counter c;
  MetricsRegistry registry;
  registry.RegisterCounter("events", &c);
  EXPECT_EQ(registry.SnapshotAll().counters.at("events"), 0u);
  c.Increment(12);
  EXPECT_EQ(registry.SnapshotAll().counters.at("events"), 12u);
}

}  // namespace
}  // namespace qikey
