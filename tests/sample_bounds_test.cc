#include <gtest/gtest.h>

#include <cmath>

#include "core/sample_bounds.h"

namespace qikey {
namespace {

TEST(SampleBoundsTest, PaperTableOneSizes) {
  // The Table 1 sample sizes of the paper: S(*) = m/eps pairs and
  // S(**) = m/sqrt(eps) tuples with eps = 0.001.
  EXPECT_EQ(MxPairSampleSizePaper(13, 0.001), 13000u);   // Adult
  EXPECT_EQ(MxPairSampleSizePaper(55, 0.001), 55000u);   // Covtype
  EXPECT_EQ(MxPairSampleSizePaper(372, 0.001), 372000u); // CPS

  EXPECT_EQ(TupleSampleSizePaper(13, 0.001), 412u);      // ~411 in Table 1
  EXPECT_EQ(TupleSampleSizePaper(55, 0.001), 1740u);     // ~1,739
  EXPECT_EQ(TupleSampleSizePaper(372, 0.001), 11764u);   // 11,764
}

TEST(SampleBoundsTest, TupleIsSqrtEpsFactorSmaller) {
  for (uint32_t m : {10u, 100u, 500u}) {
    for (double eps : {0.01, 0.001, 0.0001}) {
      double ratio =
          static_cast<double>(MxPairSampleSizePaper(m, eps)) /
          static_cast<double>(TupleSampleSizePaper(m, eps));
      EXPECT_NEAR(ratio, 1.0 / std::sqrt(eps), 0.02 / std::sqrt(eps));
    }
  }
}

TEST(SampleBoundsTest, ForDeltaCoversUnionBound) {
  // s pairs with (1-eps)^s <= delta / 2^m.
  uint32_t m = 20;
  double eps = 0.01, delta = 0.001;
  uint64_t s = MxPairSampleSizeForDelta(m, eps, delta);
  double fail = static_cast<double>(m) * std::log(2.0) +
                std::log(1.0 / delta) - eps * static_cast<double>(s);
  EXPECT_LE(fail, 1e-9);  // log of (2^m/delta * (1-eps)^s) <= 0
}

TEST(SampleBoundsTest, ForDeltaGrowsWithConfidence) {
  EXPECT_LT(MxPairSampleSizeForDelta(10, 0.01, 0.1),
            MxPairSampleSizeForDelta(10, 0.01, 0.0001));
  EXPECT_LT(TupleSampleSizeForDelta(10, 0.01, 0.1),
            TupleSampleSizeForDelta(10, 0.01, 0.0001));
}

TEST(SampleBoundsTest, TupleForDeltaScalesAsInverseSqrtEps) {
  uint32_t m = 50;
  double delta = 0.01;
  uint64_t r1 = TupleSampleSizeForDelta(m, 0.01, delta);
  uint64_t r2 = TupleSampleSizeForDelta(m, 0.0001, delta);
  // eps shrinks 100x -> r grows ~10x.
  EXPECT_NEAR(static_cast<double>(r2) / static_cast<double>(r1), 10.0, 0.5);
}

TEST(SampleBoundsTest, SketchSizeFormula) {
  uint64_t s = SketchPairSampleSize(4, 100, 0.1, 0.1, 2.0);
  double expected = 2.0 * 4 * std::log(100.0) / (0.1 * 0.01);
  EXPECT_NEAR(static_cast<double>(s), expected, 1.0);
  // Cutoff is alpha-free and 10x below the sample's dense-regime mean.
  EXPECT_LT(SketchSmallCutoff(4, 100, 0.1, 2.0), s);
}

TEST(SampleBoundsTest, LowerBoundReferenceCurves) {
  EXPECT_NEAR(LowerBoundExpDelta(100, 0.01), 1000.0, 1e-9);
  EXPECT_NEAR(LowerBoundConstantDelta(100, 0.01),
              std::sqrt(std::log(100.0) / 0.01), 1e-9);
  // The exp-delta curve dominates for every m >= 1.
  for (uint32_t m : {1u, 10u, 1000u}) {
    EXPECT_GE(LowerBoundExpDelta(m, 0.01),
              LowerBoundConstantDelta(m, 0.01) * 0.1);
  }
}

}  // namespace
}  // namespace qikey
