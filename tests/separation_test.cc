#include <gtest/gtest.h>

#include "core/separation.h"
#include "data/dataset_builder.h"
#include "data/generators/uniform_grid.h"
#include "util/rng.h"

namespace qikey {
namespace {

Dataset KeyedDataset() {
  // "id" is a key by itself; "group" separates only across groups.
  DatasetBuilder b({"id", "group"});
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(
        b.AddRow({std::to_string(i), i < 3 ? std::string("a")
                                           : std::string("b")})
            .ok());
  }
  return std::move(b).Finish();
}

TEST(SeparationTest, KeyDetection) {
  Dataset d = KeyedDataset();
  EXPECT_TRUE(IsKey(d, AttributeSet::FromIndices(2, {0})));
  EXPECT_FALSE(IsKey(d, AttributeSet::FromIndices(2, {1})));
  EXPECT_TRUE(IsKey(d, AttributeSet::All(2)));
  EXPECT_FALSE(IsKey(d, AttributeSet(2)));
}

TEST(SeparationTest, ExactGammaValues) {
  Dataset d = KeyedDataset();
  // group: two cliques of 3 -> 2 * C(3,2) = 6 unseparated of 15.
  EXPECT_EQ(ExactUnseparatedPairs(d, AttributeSet::FromIndices(2, {1})), 6u);
  EXPECT_EQ(ExactUnseparatedPairs(d, AttributeSet::FromIndices(2, {0})), 0u);
  EXPECT_EQ(ExactUnseparatedPairs(d, AttributeSet(2)), 15u);
}

TEST(SeparationTest, SeparationRatio) {
  Dataset d = KeyedDataset();
  EXPECT_DOUBLE_EQ(SeparationRatio(d, AttributeSet::FromIndices(2, {1})),
                   1.0 - 6.0 / 15.0);
  EXPECT_DOUBLE_EQ(SeparationRatio(d, AttributeSet::FromIndices(2, {0})), 1.0);
}

TEST(SeparationTest, ClassifyThresholds) {
  Dataset d = KeyedDataset();
  AttributeSet group = AttributeSet::FromIndices(2, {1});
  // Γ_group/total = 0.4.
  EXPECT_EQ(Classify(d, group, 0.3), SeparationClass::kBad);
  EXPECT_EQ(Classify(d, group, 0.5), SeparationClass::kIntermediate);
  EXPECT_EQ(Classify(d, AttributeSet::FromIndices(2, {0}), 0.3),
            SeparationClass::kKey);
}

TEST(SeparationTest, IsEpsSeparationKeyBoundary) {
  Dataset d = KeyedDataset();
  AttributeSet group = AttributeSet::FromIndices(2, {1});
  EXPECT_TRUE(IsEpsSeparationKey(d, group, 0.4));   // exactly at threshold
  EXPECT_FALSE(IsEpsSeparationKey(d, group, 0.39));
}

TEST(SeparationTest, MonotoneUnderInclusion) {
  Rng rng(5);
  Dataset d = MakeUniformGridSample(5, 3, 120, &rng);
  AttributeSet s(5);
  uint64_t prev = ExactUnseparatedPairs(d, s);
  for (AttributeIndex j = 0; j < 5; ++j) {
    s.Add(j);
    uint64_t cur = ExactUnseparatedPairs(d, s);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

TEST(SeparationTest, PartitionMatchesGamma) {
  Rng rng(6);
  Dataset d = MakeUniformGridSample(4, 4, 90, &rng);
  AttributeSet s = AttributeSet::FromIndices(4, {1, 3});
  Partition p = SeparationPartition(d, s);
  EXPECT_EQ(p.UnseparatedPairs(), ExactUnseparatedPairs(d, s));
}

}  // namespace
}  // namespace qikey
