#include <gtest/gtest.h>

#include <unordered_set>

#include "core/attribute_set.h"
#include "util/rng.h"

namespace qikey {
namespace {

TEST(AttributeSetTest, StartsEmpty) {
  AttributeSet s(100);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.Contains(0));
  EXPECT_FALSE(s.Contains(99));
}

TEST(AttributeSetTest, AddRemoveContains) {
  AttributeSet s(130);  // spans three words
  s.Add(0);
  s.Add(64);
  s.Add(129);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.Contains(64));
  s.Remove(64);
  EXPECT_FALSE(s.Contains(64));
  EXPECT_EQ(s.size(), 2u);
}

TEST(AttributeSetTest, FromToIndicesRoundTrip) {
  std::vector<AttributeIndex> idx{3, 65, 127, 7};
  AttributeSet s = AttributeSet::FromIndices(128, idx);
  EXPECT_EQ(s.ToIndices(),
            (std::vector<AttributeIndex>{3, 7, 65, 127}));  // sorted
}

TEST(AttributeSetTest, AllContainsEverything) {
  AttributeSet s = AttributeSet::All(70);
  EXPECT_EQ(s.size(), 70u);
  EXPECT_TRUE(s.Contains(69));
}

TEST(AttributeSetTest, SetAlgebra) {
  AttributeSet a = AttributeSet::FromIndices(10, {1, 2, 3});
  AttributeSet b = AttributeSet::FromIndices(10, {3, 4});
  EXPECT_EQ(a.Union(b).ToIndices(),
            (std::vector<AttributeIndex>{1, 2, 3, 4}));
  EXPECT_EQ(a.Intersection(b).ToIndices(),
            (std::vector<AttributeIndex>{3}));
  EXPECT_EQ(a.Difference(b).ToIndices(),
            (std::vector<AttributeIndex>{1, 2}));
  EXPECT_TRUE(a.Intersection(b).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE(AttributeSet(10).IsSubsetOf(b));
}

TEST(AttributeSetTest, EqualityAndHash) {
  AttributeSet a = AttributeSet::FromIndices(200, {0, 100, 199});
  AttributeSet b = AttributeSet::FromIndices(200, {199, 0, 100});
  AttributeSet c = AttributeSet::FromIndices(200, {0, 100});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());

  std::unordered_set<AttributeSet, AttributeSetHasher> set;
  set.insert(a);
  set.insert(b);
  set.insert(c);
  EXPECT_EQ(set.size(), 2u);
}

TEST(AttributeSetTest, RandomOfSizeHasExactSize) {
  Rng rng(77);
  for (size_t k : {0u, 1u, 5u, 20u}) {
    AttributeSet s = AttributeSet::RandomOfSize(20, k, &rng);
    EXPECT_EQ(s.size(), k);
  }
}

TEST(AttributeSetTest, RandomInclusionProbability) {
  Rng rng(78);
  int total = 0;
  for (int t = 0; t < 2000; ++t) {
    total += static_cast<int>(AttributeSet::Random(50, 0.3, &rng).size());
  }
  EXPECT_NEAR(total / 2000.0, 15.0, 0.5);
}

TEST(AttributeSetTest, ToStringWithSchema) {
  Schema schema({"age", "zip", "city"});
  AttributeSet s = AttributeSet::FromIndices(3, {0, 2});
  EXPECT_EQ(s.ToString(&schema), "{age, city}");
  EXPECT_EQ(s.ToString(), "{0, 2}");
  EXPECT_EQ(AttributeSet(3).ToString(), "{}");
}

}  // namespace
}  // namespace qikey
