#include <gtest/gtest.h>

#include "qikey.h"

namespace qikey {
namespace {

/// End-to-end pipelines over realistic(ish) synthetic data, exercising
/// the public API the way the examples and benches do.

TEST(IntegrationTest, CsvToFilterPipeline) {
  // Build a CSV in memory, load, filter, and cross-check with exact
  // classification.
  std::string csv = "user,city,plan\n";
  for (int i = 0; i < 200; ++i) {
    // Appended piecewise: gcc 12 -Wrestrict FP on "u" + to_string
    // (PR105651).
    csv += "u";
    csv += std::to_string(i);
    csv += ",c";
    csv += std::to_string(i % 5);
    csv += ",p";
    csv += std::to_string(i % 2);
    csv += "\n";
  }
  auto d = LoadCsvDatasetFromString(csv);
  ASSERT_TRUE(d.ok());
  Rng rng(1);
  TupleSampleFilterOptions opts;
  opts.eps = 0.05;
  opts.sample_size = 60;
  auto filter = TupleSampleFilter::Build(*d, opts, &rng);
  ASSERT_TRUE(filter.ok());

  AttributeSet user = AttributeSet::FromIndices(3, {0});
  AttributeSet city_plan = AttributeSet::FromIndices(3, {1, 2});
  EXPECT_TRUE(IsKey(*d, user));
  EXPECT_EQ(filter->Query(user), FilterVerdict::kAccept);
  EXPECT_EQ(Classify(*d, city_plan, opts.eps), SeparationClass::kBad);
  EXPECT_EQ(filter->Query(city_plan), FilterVerdict::kReject);
}

TEST(IntegrationTest, AdultLikeFiltersAgreeWithGroundTruth) {
  Rng rng(2);
  TabularSpec spec = AdultLikeSpec();
  spec.num_rows = 5000;  // scaled for test runtime
  Dataset d = MakeTabular(spec, &rng);
  const double eps = 0.01;
  const uint32_t m = static_cast<uint32_t>(d.num_attributes());

  MxPairFilterOptions mx_opts;
  mx_opts.eps = eps;
  auto mx = MxPairFilter::Build(d, mx_opts, &rng);
  TupleSampleFilterOptions ts_opts;
  ts_opts.eps = eps;
  auto ts = TupleSampleFilter::Build(d, ts_opts, &rng);
  ASSERT_TRUE(mx.ok() && ts.ok());
  EXPECT_EQ(mx->sample_size(), MxPairSampleSizePaper(m, eps));

  Rng qrng(3);
  int checked = 0, agreements = 0;
  for (int t = 0; t < 60; ++t) {
    AttributeSet a = AttributeSet::Random(m, 0.3, &qrng);
    FilterVerdict vm = mx->Query(a);
    FilterVerdict vt = ts->Query(a);
    agreements += (vm == vt);
    ++checked;
    SeparationClass truth = Classify(d, a, eps);
    if (truth == SeparationClass::kKey) {
      EXPECT_EQ(vm, FilterVerdict::kAccept);
      EXPECT_EQ(vt, FilterVerdict::kAccept);
    }
  }
  // Table 1 reports 95-100% agreement; at test scale we only require a
  // strong majority to keep the test deterministic-robust.
  EXPECT_GE(agreements * 100, checked * 85);
}

TEST(IntegrationTest, MinKeyPipelineProducesVerifiableQuasiIdentifier) {
  Rng rng(4);
  TabularSpec spec = AdultLikeSpec();
  spec.num_rows = 4000;
  Dataset d = MakeTabular(spec, &rng);
  MinKeyOptions opts;
  opts.eps = 0.02;
  auto result = FindApproxMinimumEpsKey(d, opts, &rng);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->covered_sample);
  // The quasi-identifier it found must hold on the full data set.
  EXPECT_TRUE(IsEpsSeparationKey(d, result->key, opts.eps));
  // And it should be much smaller than the full attribute set (the
  // fnlwgt-like column is near-unique, so very few attributes needed).
  EXPECT_LE(result->key.size(), 4u);
}

TEST(IntegrationTest, StreamingAndBatchFiltersAgreeOnVerdicts) {
  Rng data_rng(5);
  TabularSpec spec;
  spec.num_rows = 3000;
  spec.attributes = {{"a", 50, 0.4, -1, 0.0},
                     {"b", 4, 0.8, -1, 0.0},
                     {"c", 700, 0.2, -1, 0.0},
                     {"d", 2, 0.0, -1, 0.0}};
  Dataset d = MakeTabular(spec, &data_rng);

  Rng rng(6);
  TupleSampleFilterOptions batch_opts;
  batch_opts.eps = 0.02;
  batch_opts.sample_size = 250;
  auto batch = TupleSampleFilter::Build(d, batch_opts, &rng);
  ASSERT_TRUE(batch.ok());

  std::vector<uint32_t> cards;
  for (size_t j = 0; j < d.num_attributes(); ++j) {
    cards.push_back(d.column(static_cast<AttributeIndex>(j)).cardinality());
  }
  StreamingTupleFilterBuilder builder(d.schema(), cards, 250, &rng);
  for (RowIndex r = 0; r < d.num_rows(); ++r) {
    std::vector<ValueCode> row;
    for (AttributeIndex j = 0; j < d.num_attributes(); ++j) {
      row.push_back(d.code(r, j));
    }
    ASSERT_TRUE(builder.Offer(row).ok());
  }
  auto streamed = std::move(builder).Finish();
  ASSERT_TRUE(streamed.ok());

  // The two filters hold independent samples; they must agree on
  // everything that is certain (keys accepted, empty set rejected) and
  // nearly everything else at these sample sizes.
  Rng qrng(7);
  int agree = 0, total = 0;
  for (int t = 0; t < 40; ++t) {
    AttributeSet a = AttributeSet::Random(4, 0.5, &qrng);
    agree += (batch->Query(a) == streamed->Query(a));
    ++total;
  }
  EXPECT_GE(agree * 100, total * 80);
  EXPECT_EQ(streamed->Query(AttributeSet(4)), FilterVerdict::kReject);
}

TEST(IntegrationTest, SketchTracksExactGammaOnTabularData) {
  Rng rng(8);
  TabularSpec spec;
  spec.num_rows = 4000;
  spec.attributes = {{"coarse", 3, 0.5, -1, 0.0},
                     {"mid", 12, 0.7, -1, 0.0},
                     {"fine", 300, 0.3, -1, 0.0}};
  Dataset d = MakeTabular(spec, &rng);
  NonSeparationSketchOptions opts;
  opts.k = 2;
  opts.alpha = 0.02;
  opts.eps = 0.1;
  opts.big_k = 6.0;
  auto sketch = NonSeparationSketch::Build(d, opts, &rng);
  ASSERT_TRUE(sketch.ok());
  for (const std::vector<AttributeIndex>& attrs :
       std::vector<std::vector<AttributeIndex>>{{0}, {1}, {0, 1}}) {
    AttributeSet a = AttributeSet::FromIndices(3, attrs);
    uint64_t truth = ExactUnseparatedPairs(d, a);
    NonSeparationEstimate est = sketch->Estimate(a);
    if (static_cast<double>(truth) >=
        opts.alpha * static_cast<double>(d.num_pairs())) {
      ASSERT_FALSE(est.small);
      EXPECT_NEAR(est.estimate, static_cast<double>(truth),
                  0.15 * static_cast<double>(truth));
    }
  }
}

}  // namespace
}  // namespace qikey
