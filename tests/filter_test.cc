#include <gtest/gtest.h>

#include <tuple>

#include "core/mx_pair_filter.h"
#include "core/separation.h"
#include "core/tuple_sample_filter.h"
#include "data/dataset_builder.h"
#include "data/generators/planted_clique.h"
#include "data/generators/uniform_grid.h"
#include "util/rng.h"

namespace qikey {
namespace {

Dataset KeyAndGroups() {
  // a0: key. a1: two groups. a2: constant (separates nothing).
  DatasetBuilder b({"id", "group", "const"});
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(b.AddRow({std::to_string(i),
                          std::to_string(i % 2), "x"})
                    .ok());
  }
  return std::move(b).Finish();
}

// ----------------------------------------------------------- construction

TEST(MxPairFilterTest, RejectsDegenerateInput) {
  Rng rng(1);
  DatasetBuilder b({"a"});
  ASSERT_TRUE(b.AddRow({"only"}).ok());
  Dataset one = std::move(b).Finish();
  EXPECT_FALSE(MxPairFilter::Build(one, {}, &rng).ok());
  Dataset d = KeyAndGroups();
  EXPECT_FALSE(MxPairFilter::Build(d, {}, nullptr).ok());
  MxPairFilterOptions bad;
  bad.eps = 1.5;
  EXPECT_FALSE(MxPairFilter::Build(d, bad, &rng).ok());
}

TEST(TupleSampleFilterTest, RejectsDegenerateInput) {
  Rng rng(1);
  Dataset d = KeyAndGroups();
  EXPECT_FALSE(TupleSampleFilter::Build(d, {}, nullptr).ok());
  TupleSampleFilterOptions bad;
  bad.eps = 0.0;
  EXPECT_FALSE(TupleSampleFilter::Build(d, bad, &rng).ok());
}

TEST(TupleSampleFilterTest, SampleSizeClampedToDataset) {
  Rng rng(2);
  Dataset d = KeyAndGroups();  // 40 rows
  TupleSampleFilterOptions opts;
  opts.eps = 0.0001;  // would demand far more than 40 tuples
  auto f = TupleSampleFilter::Build(d, opts, &rng);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->sample_size(), 40u);
}

// ----------------------------------------- completeness: keys always pass

TEST(FilterTest, KeysAlwaysAccepted) {
  Rng rng(3);
  Dataset d = KeyAndGroups();
  MxPairFilterOptions mx_opts;
  mx_opts.eps = 0.05;
  auto mx = MxPairFilter::Build(d, mx_opts, &rng);
  TupleSampleFilterOptions ts_opts;
  ts_opts.eps = 0.05;
  auto ts = TupleSampleFilter::Build(d, ts_opts, &rng);
  ASSERT_TRUE(mx.ok() && ts.ok());

  AttributeSet key = AttributeSet::FromIndices(3, {0});
  AttributeSet key2 = AttributeSet::All(3);
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_EQ(mx->Query(key), FilterVerdict::kAccept);
    EXPECT_EQ(ts->Query(key), FilterVerdict::kAccept);
    EXPECT_EQ(mx->Query(key2), FilterVerdict::kAccept);
    EXPECT_EQ(ts->Query(key2), FilterVerdict::kAccept);
  }
}

// ------------------------------------------------- soundness: bad rejected

TEST(FilterTest, VeryBadSetsRejectedWithAmpleSamples) {
  Rng rng(4);
  Dataset d = KeyAndGroups();
  // {group}: separates ~half the pairs -> bad for eps = 0.05.
  // {const}: separates nothing.
  MxPairFilterOptions mx_opts;
  mx_opts.eps = 0.05;
  mx_opts.sample_size = 500;
  auto mx = MxPairFilter::Build(d, mx_opts, &rng);
  TupleSampleFilterOptions ts_opts;
  ts_opts.eps = 0.05;
  ts_opts.sample_size = 30;
  auto ts = TupleSampleFilter::Build(d, ts_opts, &rng);
  ASSERT_TRUE(mx.ok() && ts.ok());
  for (AttributeIndex bad_attr : {1u, 2u}) {
    AttributeSet bad = AttributeSet::FromIndices(3, {bad_attr});
    EXPECT_EQ(mx->Query(bad), FilterVerdict::kReject) << bad_attr;
    EXPECT_EQ(ts->Query(bad), FilterVerdict::kReject) << bad_attr;
  }
}

TEST(FilterTest, WitnessIsGenuinelyUnseparated) {
  Rng rng(5);
  Dataset d = KeyAndGroups();
  TupleSampleFilterOptions opts;
  opts.eps = 0.05;
  opts.sample_size = 30;
  auto ts = TupleSampleFilter::Build(d, opts, &rng);
  MxPairFilterOptions mx_opts;
  mx_opts.eps = 0.05;
  mx_opts.sample_size = 400;
  auto mx = MxPairFilter::Build(d, mx_opts, &rng);
  ASSERT_TRUE(ts.ok() && mx.ok());
  AttributeSet bad = AttributeSet::FromIndices(3, {1});
  for (const SeparationFilter* f :
       {static_cast<const SeparationFilter*>(&*ts),
        static_cast<const SeparationFilter*>(&*mx)}) {
    auto witness = f->QueryWitness(bad);
    ASSERT_TRUE(witness.has_value());
    auto [i, j] = *witness;
    EXPECT_NE(i, j);
    EXPECT_TRUE(d.RowsAgreeOn(i, j, bad.ToIndices()));
  }
}

TEST(FilterTest, SortAndHashBackendsAgree) {
  Rng rng(6);
  Dataset d = MakeUniformGridSample(6, 4, 500, &rng);
  TupleSampleFilterOptions sort_opts;
  sort_opts.eps = 0.01;
  sort_opts.sample_size = 60;
  sort_opts.detection = DuplicateDetection::kSort;
  Rng rng_a(99);
  auto sorted = TupleSampleFilter::Build(d, sort_opts, &rng_a);
  TupleSampleFilterOptions hash_opts = sort_opts;
  hash_opts.detection = DuplicateDetection::kHash;
  Rng rng_b(99);  // identical sample
  auto hashed = TupleSampleFilter::Build(d, hash_opts, &rng_b);
  ASSERT_TRUE(sorted.ok() && hashed.ok());
  Rng qrng(7);
  for (int t = 0; t < 200; ++t) {
    AttributeSet a = AttributeSet::Random(6, 0.4, &qrng);
    EXPECT_EQ(sorted->Query(a), hashed->Query(a));
  }
}

TEST(MxPairFilterTest, MaterializedAnswersIdentically) {
  Rng data_rng(8);
  Dataset d = MakeUniformGridSample(5, 3, 300, &data_rng);
  MxPairFilterOptions plain_opts;
  plain_opts.eps = 0.01;
  plain_opts.sample_size = 200;
  Rng rng_a(55);
  auto plain = MxPairFilter::Build(d, plain_opts, &rng_a);
  MxPairFilterOptions mat_opts = plain_opts;
  mat_opts.materialize = true;
  Rng rng_b(55);
  auto materialized = MxPairFilter::Build(d, mat_opts, &rng_b);
  ASSERT_TRUE(plain.ok() && materialized.ok());
  EXPECT_GT(materialized->MemoryBytes(), plain->MemoryBytes());
  Rng qrng(9);
  for (int t = 0; t < 100; ++t) {
    AttributeSet a = AttributeSet::Random(5, 0.5, &qrng);
    EXPECT_EQ(plain->Query(a), materialized->Query(a));
  }
}

TEST(MxPairFilterTest, ExhaustiveCompareAnswersIdentically) {
  Rng data_rng(12);
  Dataset d = MakeUniformGridSample(6, 3, 400, &data_rng);
  MxPairFilterOptions fast_opts;
  fast_opts.eps = 0.01;
  fast_opts.sample_size = 300;
  Rng rng_a(77);
  auto fast = MxPairFilter::Build(d, fast_opts, &rng_a);
  MxPairFilterOptions model_opts = fast_opts;
  model_opts.exhaustive_compare = true;
  Rng rng_b(77);  // identical sample
  auto model = MxPairFilter::Build(d, model_opts, &rng_b);
  ASSERT_TRUE(fast.ok() && model.ok());
  Rng qrng(13);
  for (int t = 0; t < 150; ++t) {
    AttributeSet a = AttributeSet::Random(6, 0.5, &qrng);
    EXPECT_EQ(fast->Query(a), model->Query(a));
    EXPECT_EQ(fast->QueryWitness(a), model->QueryWitness(a));
  }
}

// -------------------------------------- statistical power on hard instance

TEST(FilterTest, DetectsPlantedCliqueAtPaperSampleSize) {
  // Lemma 4's instance: attribute {0} is bad; the paper-size tuple
  // sample must reject it in (nearly) all trials.
  Rng rng(10);
  PlantedCliqueOptions pc;
  pc.num_rows = 20000;
  pc.num_attributes = 6;
  pc.epsilon = 0.01;
  Dataset d = MakePlantedClique(pc, &rng);
  AttributeSet bad = AttributeSet::FromIndices(6, {0});
  ASSERT_EQ(Classify(d, bad, pc.epsilon), SeparationClass::kBad);

  int rejections = 0;
  constexpr int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    TupleSampleFilterOptions opts;
    opts.eps = pc.epsilon;  // r = m/sqrt(eps) = 60
    auto f = TupleSampleFilter::Build(d, opts, &rng);
    ASSERT_TRUE(f.ok());
    rejections += (f->Query(bad) == FilterVerdict::kReject);
  }
  // r=60 draws from a clique of ~0.14 mass: detection prob ~1-(1+8.5)e^-8.5
  // ~ 0.998; allow a couple of misses.
  EXPECT_GE(rejections, kTrials - 3);
}

// --------------------------------------------------- parameterized sweep

class FilterAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(FilterAgreementTest, NeverDisagreeOnCertainties) {
  auto [m, q, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  Dataset d = MakeUniformGridSample(m, q, 400, &rng);
  double eps = 0.02;
  MxPairFilterOptions mx_opts;
  mx_opts.eps = eps;
  mx_opts.sample_size = 2000;
  auto mx = MxPairFilter::Build(d, mx_opts, &rng);
  TupleSampleFilterOptions ts_opts;
  ts_opts.eps = eps;
  ts_opts.sample_size = 150;
  auto ts = TupleSampleFilter::Build(d, ts_opts, &rng);
  ASSERT_TRUE(mx.ok() && ts.ok());
  Rng qrng(seed + 1000);
  for (int t = 0; t < 50; ++t) {
    AttributeSet a = AttributeSet::Random(m, 0.5, &qrng);
    SeparationClass truth = Classify(d, a, eps);
    if (truth == SeparationClass::kKey) {
      EXPECT_EQ(mx->Query(a), FilterVerdict::kAccept);
      EXPECT_EQ(ts->Query(a), FilterVerdict::kAccept);
    }
    if (truth == SeparationClass::kBad) {
      // Ample samples: both reject with overwhelming probability; we
      // assert rejection (flaky only with probability << 1e-6 at these
      // sample sizes given eps*samples >= 40).
      EXPECT_EQ(mx->Query(a), FilterVerdict::kReject);
      EXPECT_EQ(ts->Query(a), FilterVerdict::kReject);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, FilterAgreementTest,
    ::testing::Values(std::make_tuple(4, 3, 1), std::make_tuple(5, 2, 2),
                      std::make_tuple(6, 4, 3), std::make_tuple(8, 2, 4),
                      std::make_tuple(3, 8, 5)));

}  // namespace
}  // namespace qikey
