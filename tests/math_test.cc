#include <gtest/gtest.h>

#include <cmath>

#include "math/birthday.h"
#include "math/chernoff.h"
#include "math/combinatorics.h"

namespace qikey {
namespace {

// ---------------------------------------------------------- Combinatorics

TEST(CombinatoricsTest, LogFactorialSmallValues) {
  EXPECT_DOUBLE_EQ(LogFactorial(0), 0.0);
  EXPECT_DOUBLE_EQ(LogFactorial(1), 0.0);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-9);
}

TEST(CombinatoricsTest, LogBinomialMatchesPascal) {
  for (uint64_t n = 0; n <= 20; ++n) {
    double row_sum = 0;
    for (uint64_t k = 0; k <= n; ++k) {
      row_sum += std::exp(LogBinomial(n, k));
    }
    EXPECT_NEAR(row_sum, std::pow(2.0, static_cast<double>(n)),
                1e-6 * row_sum);
  }
}

TEST(CombinatoricsTest, BinomialKnownValues) {
  EXPECT_NEAR(BinomialDouble(16, 10), 8008.0, 1e-6);
  EXPECT_NEAR(BinomialDouble(30, 10), 30045015.0, 1e-3);
  EXPECT_EQ(BinomialDouble(5, 9), 0.0);
}

TEST(CombinatoricsTest, PairCountMatchesFormula) {
  EXPECT_EQ(PairCount(0), 0u);
  EXPECT_EQ(PairCount(1), 0u);
  EXPECT_EQ(PairCount(2), 1u);
  EXPECT_EQ(PairCount(5), 10u);
  EXPECT_EQ(PairCount(581012), uint64_t{581012} * 581011 / 2);
}

TEST(CombinatoricsTest, LogFallingFactorial) {
  // 7*6*5 = 210
  EXPECT_NEAR(LogFallingFactorial(7, 3), std::log(210.0), 1e-12);
  EXPECT_EQ(LogFallingFactorial(3, 4),
            -std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(LogFallingFactorial(5, 0), 0.0);
}

TEST(CombinatoricsTest, LogSumExpStability) {
  EXPECT_NEAR(LogSumExp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  // One far-dominant term.
  EXPECT_NEAR(LogSumExp(1000.0, 0.0), 1000.0, 1e-12);
  EXPECT_DOUBLE_EQ(
      LogSumExp(-std::numeric_limits<double>::infinity(), 1.5), 1.5);
}

TEST(CombinatoricsTest, Log1mExp) {
  // log(1 - e^{-1})
  EXPECT_NEAR(Log1mExp(-1.0), std::log(1.0 - std::exp(-1.0)), 1e-12);
  // Tiny |x|: 1 - e^x ~ -x.
  EXPECT_NEAR(Log1mExp(-1e-12), std::log(1e-12), 1e-3);
}

// -------------------------------------------------------------- Birthday

TEST(BirthdayTest, ClassicBirthdayParadox) {
  // 23 people, 365 days: collision probability just over 1/2.
  double p = 1.0 - UniformNonCollisionProbability(365, 23);
  EXPECT_GT(p, 0.5);
  EXPECT_LT(p, 0.54);
}

TEST(BirthdayTest, NonCollisionEdgeCases) {
  EXPECT_DOUBLE_EQ(UniformNonCollisionProbability(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(UniformNonCollisionProbability(10, 1), 1.0);
  EXPECT_DOUBLE_EQ(UniformNonCollisionProbability(3, 4), 0.0);
}

TEST(BirthdayTest, LowerBoundIsValid) {
  // Theorem 4: C(N,q) >= 1 - exp(-q(q-1)/2N); compare with exact.
  for (uint64_t bins : {10u, 100u, 1000u}) {
    for (uint64_t balls : {2u, 5u, 10u}) {
      if (balls > bins) continue;
      double exact = 1.0 - UniformNonCollisionProbability(bins, balls);
      double bound = CollisionProbabilityLowerBound(bins, balls);
      EXPECT_LE(bound, exact + 1e-12)
          << "bins=" << bins << " balls=" << balls;
    }
  }
}

TEST(BirthdayTest, BallsForCollisionSuffices) {
  for (uint64_t bins : {50u, 500u, 5000u}) {
    for (double delta : {0.1, 0.01}) {
      uint64_t q = BallsForCollision(bins, delta);
      // With q balls, the non-collision probability (by the exp bound
      // the formula inverts) is at most delta.
      double q_d = static_cast<double>(q);
      double bound = std::exp(-q_d * (q_d - 1) / (2.0 * bins));
      EXPECT_LE(bound, delta * 1.0000001);
      // The paper's simplified count is never smaller than needed.
      EXPECT_GE(BallsForCollisionSimple(bins, delta), q / 2);
    }
  }
}

// -------------------------------------------------------------- Chernoff

TEST(ChernoffTest, BoundDecreasesWithMu) {
  double prev = 1.0;
  for (double mu : {1.0, 10.0, 100.0, 1000.0}) {
    double b = ChernoffTwoSidedBound(mu, 0.5);
    EXPECT_LE(b, prev);
    prev = b;
  }
}

TEST(ChernoffTest, BoundClampedToOne) {
  EXPECT_LE(ChernoffTwoSidedBound(0.001, 0.1), 1.0);
  EXPECT_LE(ChernoffLowerHalfBound(0.0), 1.0);
}

TEST(ChernoffTest, LargeEpsRegime) {
  // eps >= 2 switches to exp(-eps*mu/2).
  double mu = 10.0, eps = 4.0;
  EXPECT_NEAR(ChernoffTwoSidedBound(mu, eps), 2.0 * std::exp(-eps * mu / 2),
              1e-12);
}

TEST(ChernoffTest, TrialsForRelativeErrorMeetsTarget) {
  double p = 0.01, eps = 0.2, delta = 1e-6;
  uint64_t n = TrialsForRelativeError(p, eps, delta);
  EXPECT_LE(ChernoffTwoSidedBound(p * static_cast<double>(n), eps),
            delta * 1.0000001);
  // And not wildly larger than needed (within 2x of the fixed point).
  EXPECT_GT(ChernoffTwoSidedBound(p * static_cast<double>(n / 2), eps),
            delta);
}

}  // namespace
}  // namespace qikey
