#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/minkey.h"
#include "core/refine_engine.h"
#include "data/generators/tabular.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace qikey {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 50 * (round + 1));
  }
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(10000);
  ThreadPool::ParallelFor(&pool, hits.size(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForInlineWithoutPool) {
  std::vector<int> hits(100, 0);
  ThreadPool::ParallelFor(nullptr, hits.size(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  ThreadPool::ParallelFor(&pool, 0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelGreedyMatchesSerial) {
  // The parallel gain computation must be bit-identical to serial.
  Rng rng(5);
  TabularSpec spec = CpsLikeSpec(1500);
  Dataset d = MakeTabular(spec, &rng);

  RefineEngine serial(d);
  auto serial_result = serial.RunGreedy();

  ThreadPool pool(8);
  RefineEngine parallel(d);
  parallel.set_thread_pool(&pool);
  auto parallel_result = parallel.RunGreedy();

  EXPECT_EQ(serial_result.chosen, parallel_result.chosen);
  ASSERT_EQ(serial_result.steps.size(), parallel_result.steps.size());
  for (size_t i = 0; i < serial_result.steps.size(); ++i) {
    EXPECT_EQ(serial_result.steps[i].chosen,
              parallel_result.steps[i].chosen);
    EXPECT_EQ(serial_result.steps[i].gain, parallel_result.steps[i].gain);
  }
  EXPECT_EQ(serial_result.remaining_unseparated,
            parallel_result.remaining_unseparated);
}

}  // namespace
}  // namespace qikey
