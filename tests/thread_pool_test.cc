#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/minkey.h"
#include "core/refine_engine.h"
#include "data/generators/tabular.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace qikey {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 50 * (round + 1));
  }
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(10000);
  ThreadPool::ParallelFor(&pool, hits.size(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForMinGrainBoundsChunkSizeAndStillCovers) {
  ThreadPool pool(8);
  for (size_t min_grain : {1u, 7u, 64u, 1000u, 100000u}) {
    std::vector<std::atomic<int>> hits(10000);
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> chunks;
    ThreadPool::ParallelFor(
        &pool, hits.size(),
        [&](size_t b, size_t e) {
          for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
          std::lock_guard<std::mutex> lock(mu);
          chunks.emplace_back(b, e);
        },
        min_grain);
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << min_grain;
    for (const auto& [b, e] : chunks) {
      // Every chunk except possibly the final remainder honors the
      // grain floor.
      if (e != hits.size()) {
        EXPECT_GE(e - b, min_grain);
      }
    }
    // A range at or below the grain must not fan out at all.
    if (min_grain >= hits.size()) {
      EXPECT_EQ(chunks.size(), 1u);
    }
  }
}

TEST(ThreadPoolTest, ParallelForManyBatchesReuseThePool) {
  // The batch path enqueues helper tasks; back-to-back batches (the
  // serve pattern) must not leak state between batches or deadlock
  // when stale helpers from batch k drain during batch k+1.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<size_t> sum{0};
    ThreadPool::ParallelFor(
        &pool, 97, [&](size_t b, size_t e) { sum.fetch_add(e - b); }, 4);
    ASSERT_EQ(sum.load(), 97u) << round;
  }
}

TEST(ThreadPoolTest, ParallelForInlineWithoutPool) {
  std::vector<int> hits(100, 0);
  ThreadPool::ParallelFor(nullptr, hits.size(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  ThreadPool::ParallelFor(&pool, 0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ThrowingTaskSurfacesInWaitAndKeepsWorkersAlive) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter, i] {
      if (i == 37) throw std::runtime_error("task 37 failed");
      counter.fetch_add(1);
    });
  }
  // Deterministic failure: the batch always throws, and every
  // non-throwing task still ran (the worker survived the exception).
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(counter.load(), 99);

  // The pool is reusable after a failed batch; the captured exception
  // was consumed by the throwing Wait().
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 149);
}

TEST(ThreadPoolTest, OnlyFirstOfManyExceptionsIsRethrown) {
  ThreadPool pool(4);
  for (int i = 0; i < 16; ++i) {
    pool.Submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // All later exceptions were discarded: the next Wait is clean.
  pool.Wait();
}

TEST(ThreadPoolTest, ParallelForPropagatesCallbackException) {
  ThreadPool pool(4);
  EXPECT_THROW(ThreadPool::ParallelFor(
                   &pool, 1000,
                   [&](size_t begin, size_t end) {
                     for (size_t i = begin; i < end; ++i) {
                       if (i == 500) throw std::invalid_argument("mid-batch");
                     }
                   }),
               std::invalid_argument);
  // And inline (no pool) the exception propagates directly.
  EXPECT_THROW(ThreadPool::ParallelFor(
                   nullptr, 10,
                   [](size_t, size_t) { throw std::invalid_argument("x"); }),
               std::invalid_argument);
}

TEST(ThreadPoolTest, ConcurrentParallelForsDoNotStealExceptions) {
  // Two callers share one pool; only one of them throws. The failing
  // caller must see its exception every time, and the healthy caller
  // must never see it (exceptions are captured per ParallelFor call,
  // not parked in pool state for whichever Wait() wakes first).
  ThreadPool pool(4);
  std::atomic<int> bad_caught{0};
  std::atomic<bool> healthy_threw{false};
  std::thread bad([&] {
    for (int round = 0; round < 50; ++round) {
      try {
        ThreadPool::ParallelFor(&pool, 64, [](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            if (i == 10) throw std::runtime_error("bad batch");
          }
        });
      } catch (const std::runtime_error&) {
        bad_caught.fetch_add(1);
      }
    }
  });
  std::thread good([&] {
    for (int round = 0; round < 50; ++round) {
      try {
        ThreadPool::ParallelFor(&pool, 64, [](size_t, size_t) {});
      } catch (...) {
        healthy_threw.store(true);
      }
    }
  });
  bad.join();
  good.join();
  EXPECT_EQ(bad_caught.load(), 50);
  EXPECT_FALSE(healthy_threw.load());
  pool.Wait();  // nothing left parked in the pool either
}

TEST(ThreadPoolTest, ThrowingQueryBatchCallbackDoesNotKillThePool) {
  // The serve/pipeline pattern: a QueryBatch-style fan-out whose chunk
  // callback throws must fail the batch without wedging the pool for
  // the next, well-behaved batch.
  ThreadPool pool(4);
  std::atomic<int> queries{0};
  auto query_batch = [&](bool poisoned) {
    ThreadPool::ParallelFor(&pool, 256, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        if (poisoned && i == 128) {
          throw std::runtime_error("query evaluation failed");
        }
        queries.fetch_add(1);
      }
    });
  };
  EXPECT_THROW(query_batch(true), std::runtime_error);
  int after_failure = queries.load();
  EXPECT_GT(after_failure, 0);
  query_batch(false);
  EXPECT_EQ(queries.load(), after_failure + 256);
}

TEST(ThreadPoolTest, ParallelGreedyMatchesSerial) {
  // The parallel gain computation must be bit-identical to serial.
  Rng rng(5);
  TabularSpec spec = CpsLikeSpec(1500);
  Dataset d = MakeTabular(spec, &rng);

  RefineEngine serial(d);
  auto serial_result = serial.RunGreedy();

  ThreadPool pool(8);
  RefineEngine parallel(d);
  parallel.set_thread_pool(&pool);
  auto parallel_result = parallel.RunGreedy();

  EXPECT_EQ(serial_result.chosen, parallel_result.chosen);
  ASSERT_EQ(serial_result.steps.size(), parallel_result.steps.size());
  for (size_t i = 0; i < serial_result.steps.size(); ++i) {
    EXPECT_EQ(serial_result.steps[i].chosen,
              parallel_result.steps[i].chosen);
    EXPECT_EQ(serial_result.steps[i].gain, parallel_result.steps[i].gain);
  }
  EXPECT_EQ(serial_result.remaining_unseparated,
            parallel_result.remaining_unseparated);
}

}  // namespace
}  // namespace qikey
