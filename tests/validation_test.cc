// Regression tests for strict argument validation at the library's API
// boundaries: degenerate eps values (0, negative, NaN, infinite) must
// come back as InvalidArgument from every entry point instead of
// feeding the Θ(m/ε) size formulas (where eps = 0 overflows and NaN —
// which compares false against every bound — used to slip past the
// naive range checks and abort deep inside `QIKEY_CHECK`).

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/afd.h"
#include "core/anonymity.h"
#include "core/bitset_filter.h"
#include "core/generalization.h"
#include "core/key_enumeration.h"
#include "core/masking.h"
#include "core/minkey.h"
#include "core/mx_pair_filter.h"
#include "core/sample_bounds.h"
#include "core/sketch.h"
#include "core/tuple_sample_filter.h"
#include "data/hierarchy.h"
#include "engine/pipeline.h"
#include "monitor/incremental_filter.h"
#include "monitor/key_monitor.h"
#include "util/rng.h"

namespace qikey {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// The degenerate thresholds every eps-taking boundary must reject.
const double kBadEps[] = {0.0, -0.25, 1.0, 1.5, kNan, kInf, -kInf};

Dataset SmallData() {
  std::vector<Column> columns;
  columns.emplace_back(std::vector<ValueCode>{0, 1, 2, 3, 0, 1});
  columns.emplace_back(std::vector<ValueCode>{0, 0, 1, 1, 2, 2});
  return Dataset(Schema({"x", "y"}), std::move(columns));
}

TEST(ValidationTest, IsValidEpsRejectsNonFiniteAndOutOfRange) {
  EXPECT_TRUE(IsValidEps(0.001));
  EXPECT_TRUE(IsValidEps(0.999));
  for (double eps : kBadEps) {
    EXPECT_FALSE(IsValidEps(eps)) << eps;
    EXPECT_EQ(ValidateEps(eps).code(), StatusCode::kInvalidArgument) << eps;
  }
}

TEST(ValidationTest, FiltersRejectDegenerateEps) {
  Dataset data = SmallData();
  for (double eps : kBadEps) {
    Rng rng(1);
    TupleSampleFilterOptions tuple;
    tuple.eps = eps;
    EXPECT_EQ(TupleSampleFilter::Build(data, tuple, &rng).status().code(),
              StatusCode::kInvalidArgument)
        << eps;

    MxPairFilterOptions mx;
    mx.eps = eps;
    EXPECT_EQ(MxPairFilter::Build(data, mx, &rng).status().code(),
              StatusCode::kInvalidArgument)
        << eps;

    BitsetFilterOptions bitset;
    bitset.eps = eps;
    EXPECT_EQ(BitsetSeparationFilter::Build(data, bitset, &rng)
                  .status()
                  .code(),
              StatusCode::kInvalidArgument)
        << eps;
  }
}

TEST(ValidationTest, MinKeyEntryPointsRejectDegenerateEps) {
  Dataset data = SmallData();
  for (double eps : kBadEps) {
    Rng rng(1);
    MinKeyOptions options;
    options.eps = eps;
    EXPECT_EQ(FindApproxMinimumEpsKey(data, options, &rng).status().code(),
              StatusCode::kInvalidArgument)
        << eps;
    EXPECT_EQ(
        FindApproxMinimumEpsKeyMx(data, options, &rng).status().code(),
        StatusCode::kInvalidArgument)
        << eps;
    EXPECT_EQ(FindMinimumEpsKeyExact(data, options, &rng).status().code(),
              StatusCode::kInvalidArgument)
        << eps;
  }
}

TEST(ValidationTest, PipelineMonitorAndApplicationsRejectDegenerateEps) {
  Dataset data = SmallData();
  for (double eps : kBadEps) {
    Rng rng(1);
    PipelineOptions pipeline_options;
    pipeline_options.eps = eps;
    EXPECT_EQ(
        DiscoveryPipeline(pipeline_options).Run(data, &rng).status().code(),
        StatusCode::kInvalidArgument)
        << eps;

    MonitorOptions monitor_options;
    monitor_options.eps = eps;
    EXPECT_EQ(
        KeyMonitor::Make(data.schema(), monitor_options, 1).status().code(),
        StatusCode::kInvalidArgument)
        << eps;

    IncrementalFilterOptions filter_options;
    filter_options.eps = eps;
    EXPECT_EQ(IncrementalFilter::Make(data.schema(), filter_options, 1)
                  .status()
                  .code(),
              StatusCode::kInvalidArgument)
        << eps;

    MaskingOptions masking_options;
    masking_options.eps = eps;
    EXPECT_EQ(FindMaskingSet(data, masking_options, &rng).status().code(),
              StatusCode::kInvalidArgument)
        << eps;

    EXPECT_EQ(AuditQuasiIdentifiers(data, eps, 2, &rng).status().code(),
              StatusCode::kInvalidArgument)
        << eps;
  }

  // Enumeration admits eps = 0 (exact keys) but not NaN or negatives.
  KeyEnumerationOptions enum_options;
  enum_options.eps = 0.0;
  EXPECT_TRUE(EnumerateMinimalKeys(data, enum_options).ok());
  for (double eps : {-0.25, 1.0, kNan, kInf}) {
    enum_options.eps = eps;
    EXPECT_EQ(EnumerateMinimalKeys(data, enum_options).status().code(),
              StatusCode::kInvalidArgument)
        << eps;
  }
}

TEST(ValidationTest, SketchRejectsDegenerateEpsAndAlpha) {
  Dataset data = SmallData();
  for (double eps : kBadEps) {
    Rng rng(1);
    NonSeparationSketchOptions options;
    options.eps = eps;
    EXPECT_EQ(NonSeparationSketch::Build(data, options, &rng).status().code(),
              StatusCode::kInvalidArgument)
        << eps;
  }
  for (double alpha : {0.0, -1.0, 1.5, kNan}) {
    Rng rng(1);
    NonSeparationSketchOptions options;
    options.alpha = alpha;
    EXPECT_EQ(NonSeparationSketch::Build(data, options, &rng).status().code(),
              StatusCode::kInvalidArgument)
        << alpha;
  }
}

TEST(ValidationTest, AfdRejectsDegenerateErrorThreshold) {
  Dataset data = SmallData();
  for (double error : {-0.1, 1.5, kNan, kInf}) {
    EXPECT_EQ(DiscoverMinimalAfds(data, 1, error, 2).status().code(),
              StatusCode::kInvalidArgument)
        << error;
  }
  EXPECT_TRUE(DiscoverMinimalAfds(data, 1, 0.0, 2).ok());
  EXPECT_TRUE(DiscoverMinimalAfds(data, 1, 1.0, 2).ok());
}

TEST(ValidationTest, GeneralizationRejectsDegenerateSuppression) {
  Dataset data = SmallData();
  std::vector<AttributeIndex> qi{0};
  std::vector<GeneralizationHierarchy> hierarchies{
      GeneralizationHierarchy::Intervals(4, 2)};
  for (double suppress : {-0.1, 1.5, kNan, kInf}) {
    GeneralizationOptions options;
    options.k = 2;
    options.max_suppression = suppress;
    EXPECT_EQ(
        FindMinimalGeneralization(data, qi, hierarchies, options)
            .status()
            .code(),
        StatusCode::kInvalidArgument)
        << suppress;
  }
}

}  // namespace
}  // namespace qikey
