#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/key_enumeration.h"
#include "core/tuple_sample_filter.h"
#include "data/column.h"
#include "engine/pipeline.h"
#include "monitor/incremental_filter.h"
#include "monitor/key_monitor.h"
#include "util/rng.h"

namespace qikey {
namespace {

using Row = std::vector<ValueCode>;

/// Large enough that the tuple sample always covers the window, making
/// the monitor exact.
constexpr uint64_t kExact = 1u << 30;

Dataset RowsToDataset(size_t m, const std::vector<Row>& rows) {
  std::vector<Column> columns;
  for (size_t j = 0; j < m; ++j) {
    std::vector<ValueCode> codes;
    codes.reserve(rows.size());
    for (const Row& row : rows) codes.push_back(row[j]);
    columns.emplace_back(std::move(codes));
  }
  return Dataset(Schema::Anonymous(m), std::move(columns));
}

std::vector<AttributeSet> ExactMinimalKeys(size_t m,
                                           const std::vector<Row>& rows) {
  KeyEnumerationOptions opts;
  opts.eps = 0.0;
  opts.max_size = static_cast<uint32_t>(m);
  auto keys = EnumerateMinimalKeys(RowsToDataset(m, rows), opts);
  EXPECT_TRUE(keys.ok());
  std::vector<AttributeSet> sorted = std::move(keys).ValueOrDie();
  std::sort(sorted.begin(), sorted.end(), CanonicalAttributeSetLess);
  return sorted;
}

MonitorOptions ExactOptions(size_t m) {
  MonitorOptions options;
  options.eps = 0.01;
  options.sample_size = kExact;
  options.max_key_size = static_cast<uint32_t>(m);
  return options;
}

// --------------------------------------------------------- basic lifecycle

TEST(MonitorTest, EmptyWindowAcceptsEmptySet) {
  auto monitor = KeyMonitor::Make(Schema::Anonymous(3), ExactOptions(3), 1);
  ASSERT_TRUE(monitor.ok());
  auto snap = (*monitor)->Snapshot();
  ASSERT_EQ(snap->minimal_keys().size(), 1u);
  EXPECT_TRUE(snap->minimal_keys()[0].empty());
  EXPECT_EQ(snap->epoch, 0u);

  // One row: still no pair to violate the empty set.
  ASSERT_TRUE((*monitor)->Insert({0, 1, 2}).ok());
  snap = (*monitor)->Snapshot();
  ASSERT_EQ(snap->minimal_keys().size(), 1u);
  EXPECT_TRUE(snap->minimal_keys()[0].empty());

  // A second, distinct row invalidates ∅ and bootstraps real keys.
  ASSERT_TRUE((*monitor)->Insert({0, 1, 0}).ok());
  snap = (*monitor)->Snapshot();
  ASSERT_FALSE(snap->minimal_keys().empty());
  for (const AttributeSet& key : snap->minimal_keys()) {
    EXPECT_FALSE(key.empty());
  }
  EXPECT_EQ(snap->epoch, 2u);
  EXPECT_EQ(snap->window_rows, 2u);
}

TEST(MonitorTest, RejectsBadArgumentsAndMissingRows) {
  auto monitor = KeyMonitor::Make(Schema::Anonymous(3), ExactOptions(3), 1);
  ASSERT_TRUE(monitor.ok());
  EXPECT_FALSE((*monitor)->Insert({0, 1}).ok());  // arity
  EXPECT_EQ((*monitor)->Erase({9, 9, 9}).code(), StatusCode::kNotFound);
  MonitorOptions bad = ExactOptions(3);
  bad.eps = 0.0;
  EXPECT_FALSE(KeyMonitor::Make(Schema::Anonymous(3), bad, 1).ok());
  EXPECT_FALSE(KeyMonitor::Make(Schema(), ExactOptions(3), 1).ok());
}

// --------------------------------------- equivalence with batch discovery

// The acceptance property: after ANY interleaving of inserts and
// erases, the monitor's snapshot reports exactly the minimal keys a
// from-scratch enumeration (and the discovery pipeline) finds on the
// final window.
TEST(MonitorTest, ExactModeMatchesEnumerationUnderRandomUpdates) {
  constexpr size_t kAttributes = 5;
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    auto monitor = KeyMonitor::Make(Schema::Anonymous(kAttributes),
                                    ExactOptions(kAttributes), seed);
    ASSERT_TRUE(monitor.ok());
    Rng rng(seed * 1000 + 7);
    std::vector<Row> reference;
    for (int step = 0; step < 180; ++step) {
      bool insert = reference.size() < 3 || rng.Bernoulli(0.62);
      if (insert) {
        Row row(kAttributes);
        for (size_t j = 0; j < kAttributes; ++j) {
          row[j] = static_cast<ValueCode>(rng.Uniform(3));
        }
        ASSERT_TRUE((*monitor)->Insert(row).ok());
        reference.push_back(std::move(row));
      } else {
        size_t victim = static_cast<size_t>(rng.Uniform(reference.size()));
        ASSERT_TRUE((*monitor)->Erase(reference[victim]).ok());
        reference.erase(reference.begin() + victim);
      }
      if (reference.size() < 2) continue;
      auto snap = (*monitor)->Snapshot();
      std::vector<AttributeSet> expected =
          ExactMinimalKeys(kAttributes, reference);
      ASSERT_EQ(snap->minimal_keys(), expected)
          << "seed " << seed << " step " << step << " rows "
          << reference.size();
    }
  }
}

TEST(MonitorTest, MatchesFromScratchPipelineAfterInterleaving) {
  constexpr size_t kAttributes = 6;
  auto monitor = KeyMonitor::Make(Schema::Anonymous(kAttributes),
                                  ExactOptions(kAttributes), 3);
  ASSERT_TRUE(monitor.ok());
  Rng rng(99);
  std::vector<Row> reference;
  for (int step = 0; step < 400; ++step) {
    bool insert = reference.size() < 10 || rng.Bernoulli(0.7);
    if (insert) {
      // Column 0 and 1 jointly near-unique so exact keys exist w.h.p.
      Row row{static_cast<ValueCode>(rng.Uniform(40)),
              static_cast<ValueCode>(rng.Uniform(40)),
              static_cast<ValueCode>(rng.Uniform(3)),
              static_cast<ValueCode>(rng.Uniform(3)),
              static_cast<ValueCode>(rng.Uniform(2)),
              static_cast<ValueCode>(rng.Uniform(2))};
      ASSERT_TRUE((*monitor)->Insert(row).ok());
      reference.push_back(std::move(row));
    } else {
      size_t victim = static_cast<size_t>(rng.Uniform(reference.size()));
      ASSERT_TRUE((*monitor)->Erase(reference[victim]).ok());
      reference.erase(reference.begin() + victim);
    }
  }
  ASSERT_GE(reference.size(), 2u);
  auto snap = (*monitor)->Snapshot();
  EXPECT_EQ(snap->minimal_keys(), ExactMinimalKeys(kAttributes, reference));

  // From-scratch pipeline on the final window, with a full-table sample
  // so its filter answers exactly: the emitted key must be one of the
  // monitor's minimal keys.
  Dataset final_data = RowsToDataset(kAttributes, reference);
  PipelineOptions popts;
  popts.eps = 0.01;
  popts.sample_size = final_data.num_rows();
  Rng prng(5);
  auto result = DiscoveryPipeline(popts).Run(final_data, &prng);
  ASSERT_TRUE(result.ok());
  if (result->covered_sample) {
    EXPECT_EQ(result->verdict, FilterVerdict::kAccept);
    EXPECT_TRUE(std::find(snap->minimal_keys().begin(),
                          snap->minimal_keys().end(),
                          result->key) != snap->minimal_keys().end())
        << result->key.ToString();
    EXPECT_TRUE(snap->CoversKey(result->key));
  }
}

TEST(MonitorTest, DeterministicAcrossThreadCounts) {
  constexpr size_t kAttributes = 5;
  auto run = [&](size_t threads) {
    MonitorOptions options = ExactOptions(kAttributes);
    options.num_threads = threads;
    auto monitor =
        KeyMonitor::Make(Schema::Anonymous(kAttributes), options, 17);
    EXPECT_TRUE(monitor.ok());
    Rng rng(31);
    std::vector<Row> reference;
    for (int step = 0; step < 150; ++step) {
      if (reference.size() < 3 || rng.Bernoulli(0.6)) {
        Row row(kAttributes);
        for (size_t j = 0; j < kAttributes; ++j) {
          row[j] = static_cast<ValueCode>(rng.Uniform(3));
        }
        EXPECT_TRUE((*monitor)->Insert(row).ok());
        reference.push_back(std::move(row));
      } else {
        size_t victim = static_cast<size_t>(rng.Uniform(reference.size()));
        EXPECT_TRUE((*monitor)->Erase(reference[victim]).ok());
        reference.erase(reference.begin() + victim);
      }
    }
    return std::move(*monitor);
  };
  auto serial = run(1);
  for (size_t threads : {2u, 4u}) {
    auto parallel = run(threads);
    EXPECT_EQ(serial->Snapshot()->minimal_keys(),
              parallel->Snapshot()->minimal_keys())
        << threads;
    ASSERT_EQ(serial->events().size(), parallel->events().size()) << threads;
    for (size_t i = 0; i < serial->events().size(); ++i) {
      EXPECT_EQ(serial->events()[i].epoch, parallel->events()[i].epoch);
      EXPECT_EQ(serial->events()[i].kind, parallel->events()[i].kind);
      EXPECT_EQ(serial->events()[i].key, parallel->events()[i].key);
    }
    EXPECT_EQ(serial->repaired_updates(), parallel->repaired_updates());
    EXPECT_EQ(serial->rebuilds(), parallel->rebuilds());
  }
}

// ------------------------------------------------------------- key churn

TEST(MonitorTest, EraseRevealsSmallerKeysAndReportsChurn) {
  auto monitor = KeyMonitor::Make(Schema::Anonymous(2), ExactOptions(2), 1);
  ASSERT_TRUE(monitor.ok());
  for (const Row& row :
       {Row{0, 0}, Row{0, 1}, Row{1, 0}, Row{1, 1}}) {
    ASSERT_TRUE((*monitor)->Insert(row).ok());
  }
  // {a0} misses (0,0)/(0,1); {a1} misses (0,0)/(1,0): only {a0,a1}.
  auto snap = (*monitor)->Snapshot();
  ASSERT_EQ(snap->minimal_keys().size(), 1u);
  EXPECT_EQ(snap->minimal_keys()[0], AttributeSet::FromIndices(2, {0, 1}));

  ASSERT_TRUE((*monitor)->Erase({0, 1}).ok());
  ASSERT_TRUE((*monitor)->Erase({1, 0}).ok());
  // Remaining rows (0,0) and (1,1) disagree everywhere: both singletons
  // are now minimal keys, discovered via the freed agree-set regions.
  snap = (*monitor)->Snapshot();
  std::vector<AttributeSet> expected{AttributeSet::FromIndices(2, {0}),
                                     AttributeSet::FromIndices(2, {1})};
  EXPECT_EQ(snap->minimal_keys(), expected);
  EXPECT_EQ(snap->primary_key(), expected[0]);

  bool saw_added_singleton = false;
  bool saw_removed_pair = false;
  for (const KeyEvent& event : (*monitor)->events()) {
    if (event.kind == KeyEventKind::kAdded && event.key == expected[0]) {
      saw_added_singleton = true;
    }
    if (event.kind == KeyEventKind::kRemoved &&
        event.key == AttributeSet::FromIndices(2, {0, 1})) {
      saw_removed_pair = true;
    }
  }
  EXPECT_TRUE(saw_added_singleton);
  EXPECT_TRUE(saw_removed_pair);
}

TEST(MonitorTest, SlidingWindowEvictsOldest) {
  MonitorOptions options = ExactOptions(2);
  options.window_capacity = 4;
  auto monitor = KeyMonitor::Make(Schema::Anonymous(2), options, 1);
  ASSERT_TRUE(monitor.ok());
  std::vector<Row> stream;
  Rng rng(8);
  for (int i = 0; i < 12; ++i) {
    Row row{static_cast<ValueCode>(rng.Uniform(4)),
            static_cast<ValueCode>(rng.Uniform(4))};
    stream.push_back(row);
    ASSERT_TRUE((*monitor)->Insert(row).ok());
  }
  auto snap = (*monitor)->Snapshot();
  EXPECT_EQ(snap->window_rows, 4u);
  std::vector<Row> last4(stream.end() - 4, stream.end());
  EXPECT_EQ(snap->minimal_keys(), ExactMinimalKeys(2, last4));
  EXPECT_EQ((*monitor)->Erase(last4[0]).code(),
            StatusCode::kInvalidArgument);
}

// ----------------------------------------------- sampled (inexact) modes

TEST(MonitorTest, SampledTupleModeSelfConsistent) {
  // With a genuine sub-window sample the frontier cannot be compared to
  // exact enumeration, but it must equal a from-scratch levelwise
  // enumeration against the monitor's OWN current sample — and most
  // updates must not have touched that sample at all.
  constexpr size_t kAttributes = 6;
  MonitorOptions options;
  options.eps = 0.01;
  options.sample_size = 40;
  options.max_key_size = 4;
  auto monitor =
      KeyMonitor::Make(Schema::Anonymous(kAttributes), options, 21);
  ASSERT_TRUE(monitor.ok());
  Rng rng(77);
  std::vector<Row> reference;
  for (int step = 0; step < 600; ++step) {
    if (reference.size() < 50 || rng.Bernoulli(0.8)) {
      Row row(kAttributes);
      for (size_t j = 0; j < kAttributes; ++j) {
        row[j] = static_cast<ValueCode>(rng.Uniform(5));
      }
      ASSERT_TRUE((*monitor)->Insert(row).ok());
      reference.push_back(std::move(row));
    } else {
      size_t victim = static_cast<size_t>(rng.Uniform(reference.size()));
      ASSERT_TRUE((*monitor)->Erase(reference[victim]).ok());
      reference.erase(reference.begin() + victim);
    }
  }
  EXPECT_EQ((*monitor)->filter().sample_size(), 40u);
  EXPECT_GT((*monitor)->untouched_updates(), 300u);

  KeyEnumerationOptions enum_opts;
  enum_opts.max_size = options.max_key_size;
  auto expected = EnumerateMinimalAcceptedSets(
      (*monitor)->filter(), kAttributes, enum_opts);
  ASSERT_TRUE(expected.ok());
  std::sort(expected->begin(), expected->end(), CanonicalAttributeSetLess);
  EXPECT_EQ((*monitor)->Snapshot()->minimal_keys(), *expected);
}

TEST(MonitorTest, MxBackendSelfConsistent) {
  constexpr size_t kAttributes = 5;
  MonitorOptions options;
  options.eps = 0.05;
  options.backend = FilterBackend::kMxPair;
  options.pair_sample_size = 60;
  options.max_key_size = 4;
  auto monitor =
      KeyMonitor::Make(Schema::Anonymous(kAttributes), options, 5);
  ASSERT_TRUE(monitor.ok());
  Rng rng(42);
  std::vector<Row> reference;
  for (int step = 0; step < 250; ++step) {
    if (reference.size() < 20 || rng.Bernoulli(0.75)) {
      Row row(kAttributes);
      for (size_t j = 0; j < kAttributes; ++j) {
        row[j] = static_cast<ValueCode>(rng.Uniform(4));
      }
      ASSERT_TRUE((*monitor)->Insert(row).ok());
      reference.push_back(std::move(row));
    } else {
      size_t victim = static_cast<size_t>(rng.Uniform(reference.size()));
      ASSERT_TRUE((*monitor)->Erase(reference[victim]).ok());
      reference.erase(reference.begin() + victim);
    }
  }
  EXPECT_EQ((*monitor)->filter().sample_size(), 60u);

  KeyEnumerationOptions enum_opts;
  enum_opts.max_size = options.max_key_size;
  auto expected = EnumerateMinimalAcceptedSets(
      (*monitor)->filter(), kAttributes, enum_opts);
  ASSERT_TRUE(expected.ok());
  std::sort(expected->begin(), expected->end(), CanonicalAttributeSetLess);
  EXPECT_EQ((*monitor)->Snapshot()->minimal_keys(), *expected);
}

// ------------------------------------------------------ snapshot reading

TEST(MonitorTest, SnapshotsAreImmutableAndEpochMonotone) {
  auto monitor = KeyMonitor::Make(Schema::Anonymous(3), ExactOptions(3), 9);
  ASSERT_TRUE(monitor.ok());
  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::thread reader([&] {
    uint64_t last_epoch = 0;
    while (!done.load(std::memory_order_acquire)) {
      auto snap = (*monitor)->Snapshot();
      if (snap->epoch < last_epoch) failed.store(true);
      last_epoch = snap->epoch;
      // Touch the keys: ASan flags any writer-side mutation of a
      // published snapshot.
      for (const AttributeSet& key : snap->minimal_keys()) {
        (void)key.size();
      }
    }
  });
  Rng rng(12);
  std::vector<Row> reference;
  for (int step = 0; step < 300; ++step) {
    if (reference.size() < 3 || rng.Bernoulli(0.7)) {
      Row row{static_cast<ValueCode>(rng.Uniform(3)),
              static_cast<ValueCode>(rng.Uniform(3)),
              static_cast<ValueCode>(rng.Uniform(3))};
      ASSERT_TRUE((*monitor)->Insert(row).ok());
      reference.push_back(std::move(row));
    } else {
      size_t victim = static_cast<size_t>(rng.Uniform(reference.size()));
      ASSERT_TRUE((*monitor)->Erase(reference[victim]).ok());
      reference.erase(reference.begin() + victim);
    }
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ((*monitor)->Snapshot()->epoch, 300u);
}

// ------------------------------------------------------- pipeline entry

TEST(MonitorTest, RunIncrementalPrimesMonitorFromDataset) {
  Rng rng(10);
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back({static_cast<ValueCode>(i % 25),
                    static_cast<ValueCode>(i / 25),
                    static_cast<ValueCode>(rng.Uniform(3)),
                    static_cast<ValueCode>(rng.Uniform(3))});
  }
  Dataset initial = RowsToDataset(4, rows);
  PipelineOptions options;
  options.eps = 0.01;
  options.sample_size = kExact;
  DiscoveryPipeline pipeline(options);
  auto monitor = pipeline.RunIncremental(initial, /*max_key_size=*/4,
                                         /*seed=*/123);
  ASSERT_TRUE(monitor.ok());
  auto snap = (*monitor)->Snapshot();
  EXPECT_EQ(snap->window_rows, 200u);
  EXPECT_EQ(snap->minimal_keys(), ExactMinimalKeys(4, rows));

  // The from-scratch pipeline's key on the same table (same exact
  // filter regime) is one of the monitor's minimal keys.
  Rng prng(55);
  auto result = pipeline.Run(initial, &prng);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->covered_sample);
  EXPECT_TRUE(snap->CoversKey(result->key));

  // And the monitor keeps serving under further updates.
  ASSERT_TRUE((*monitor)->Insert({0, 0, 0, 0}).ok());
  ASSERT_TRUE((*monitor)->Erase({0, 0, 0, 0}).ok());
  EXPECT_EQ((*monitor)->Snapshot()->minimal_keys(), ExactMinimalKeys(4, rows));
}

// ------------------------------------------------- incremental filter unit

TEST(IncrementalFilterTest, TupleSampleTracksTargetAcrossRegimes) {
  IncrementalFilterOptions options;
  options.sample_size = 10;
  auto filter = IncrementalFilter::Make(Schema::Anonymous(3), options, 7);
  ASSERT_TRUE(filter.ok());
  Rng rng(3);
  std::vector<Row> rows;
  for (int i = 0; i < 50; ++i) {
    Row row{static_cast<ValueCode>(i), static_cast<ValueCode>(rng.Uniform(4)),
            static_cast<ValueCode>(rng.Uniform(4))};
    ASSERT_TRUE(filter->Insert(row).ok());
    rows.push_back(std::move(row));
  }
  EXPECT_EQ(filter->window_size(), 50u);
  EXPECT_EQ(filter->sample_size(), 10u);
  EXPECT_EQ(filter->WindowDataset().num_rows(), 50u);

  // Shrink below the target: the sample must track the whole window
  // again (exact regime).
  for (int i = 0; i < 45; ++i) {
    ASSERT_TRUE(filter->Erase(rows[i]).ok());
  }
  EXPECT_EQ(filter->window_size(), 5u);
  EXPECT_EQ(filter->sample_size(), 5u);

  EXPECT_EQ(filter->Erase({77, 77, 77}).status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(filter->Insert({1, 2}).ok());
}

TEST(IncrementalFilterTest, ExactRegimeMatchesTupleSampleFilter) {
  IncrementalFilterOptions options;
  options.sample_size = kExact;
  auto filter = IncrementalFilter::Make(Schema::Anonymous(4), options, 11);
  ASSERT_TRUE(filter.ok());
  Rng rng(19);
  std::vector<Row> reference;
  for (int step = 0; step < 120; ++step) {
    if (reference.size() < 2 || rng.Bernoulli(0.7)) {
      Row row(4);
      for (size_t j = 0; j < 4; ++j) {
        row[j] = static_cast<ValueCode>(rng.Uniform(3));
      }
      ASSERT_TRUE(filter->Insert(row).ok());
      reference.push_back(std::move(row));
    } else {
      size_t victim = static_cast<size_t>(rng.Uniform(reference.size()));
      ASSERT_TRUE(filter->Erase(reference[victim]).ok());
      reference.erase(reference.begin() + victim);
    }
  }
  TupleSampleFilter oracle = TupleSampleFilter::FromSample(
      filter->WindowDataset(), {}, DuplicateDetection::kSort);
  Rng qrng(4);
  std::vector<AttributeSet> queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(AttributeSet::Random(4, 0.5, &qrng));
  }
  std::vector<FilterVerdict> batched = filter->QueryBatch(queries, nullptr);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(filter->Query(queries[i]), oracle.Query(queries[i])) << i;
    EXPECT_EQ(batched[i], filter->Query(queries[i])) << i;
  }
}

TEST(IncrementalFilterTest, ResampleRedrawsFromWindow) {
  IncrementalFilterOptions options;
  options.sample_size = 8;
  auto filter = IncrementalFilter::Make(Schema::Anonymous(2), options, 2);
  ASSERT_TRUE(filter.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        filter->Insert({static_cast<ValueCode>(i), 0}).ok());
  }
  filter->Resample();
  EXPECT_EQ(filter->sample_size(), 8u);
  // Column 1 is constant: any sample rejects {a1}; column 0 is unique:
  // any sample accepts {a0}.
  EXPECT_EQ(filter->Query(AttributeSet::FromIndices(2, {1})),
            FilterVerdict::kReject);
  EXPECT_EQ(filter->Query(AttributeSet::FromIndices(2, {0})),
            FilterVerdict::kAccept);
  EXPECT_TRUE(filter->QueryWitness(AttributeSet::FromIndices(2, {1}))
                  .has_value());
  EXPECT_GT(filter->MemoryBytes(), 0u);
}

TEST(IncrementalFilterTest, MxPairsStayWithinLiveWindow) {
  IncrementalFilterOptions options;
  options.backend = FilterBackend::kMxPair;
  options.pair_sample_size = 30;
  auto filter = IncrementalFilter::Make(Schema::Anonymous(2), options, 6);
  ASSERT_TRUE(filter.ok());
  Rng rng(14);
  std::vector<Row> reference;
  for (int step = 0; step < 200; ++step) {
    if (reference.size() < 5 || rng.Bernoulli(0.6)) {
      Row row{static_cast<ValueCode>(rng.Uniform(6)),
              static_cast<ValueCode>(rng.Uniform(6))};
      ASSERT_TRUE(filter->Insert(row).ok());
      reference.push_back(std::move(row));
    } else {
      size_t victim = static_cast<size_t>(rng.Uniform(reference.size()));
      ASSERT_TRUE(filter->Erase(reference[victim]).ok());
      reference.erase(reference.begin() + victim);
    }
    // The empty set is rejected whenever a pair exists at all.
    if (reference.size() >= 2) {
      EXPECT_EQ(filter->sample_size(), 30u);
      EXPECT_EQ(filter->Query(AttributeSet(2)), FilterVerdict::kReject);
    }
  }
  // Erase everything: all constraints must drop, ∅ accepted again.
  for (const Row& row : reference) {
    ASSERT_TRUE(filter->Erase(row).ok());
  }
  EXPECT_EQ(filter->window_size(), 0u);
  EXPECT_EQ(filter->Query(AttributeSet(2)), FilterVerdict::kAccept);
}

}  // namespace
}  // namespace qikey
