#include <gtest/gtest.h>

#include <set>

#include "core/separation.h"
#include "data/generators/encoding_lb.h"
#include "data/generators/planted_clique.h"
#include "data/generators/tabular.h"
#include "data/generators/uniform_grid.h"
#include "math/combinatorics.h"
#include "util/rng.h"

namespace qikey {
namespace {

// ------------------------------------------------------------ uniform grid

TEST(UniformGridTest, FullGridShape) {
  auto d = MakeFullUniformGrid(3, 4);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_rows(), 64u);
  EXPECT_EQ(d->num_attributes(), 3u);
  // All rows distinct: full set is a key.
  EXPECT_TRUE(IsKey(*d, AttributeSet::All(3)));
}

TEST(UniformGridTest, FullGridRefusesHugeProducts) {
  auto d = MakeFullUniformGrid(20, 10, 1 << 20);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kOutOfRange);
}

TEST(UniformGridTest, SingletonsAreBadInFullGrid) {
  // Lemma 3's property: every singleton separates fewer than
  // (1-eps)C(n,2) pairs for eps ~ 1/q.
  auto d = MakeFullUniformGrid(3, 5);
  ASSERT_TRUE(d.ok());
  double eps = 1.0 / 5.5;  // paper uses 1/eps = q + 1/2
  for (AttributeIndex a = 0; a < 3; ++a) {
    EXPECT_EQ(Classify(*d, AttributeSet::FromIndices(3, {a}), eps),
              SeparationClass::kBad)
        << "attribute " << a;
  }
}

TEST(UniformGridTest, SampleMarginalsRoughlyUniform) {
  Rng rng(1);
  Dataset d = MakeUniformGridSample(2, 4, 40000, &rng);
  for (AttributeIndex a = 0; a < 2; ++a) {
    std::vector<int> counts(4, 0);
    for (RowIndex r = 0; r < d.num_rows(); ++r) ++counts[d.code(r, a)];
    for (int c : counts) EXPECT_NEAR(c, 10000, 500);
  }
}

// --------------------------------------------------------- planted clique

TEST(PlantedCliqueTest, CliqueSizeFormula) {
  EXPECT_EQ(PlantedCliqueSize(10000, 0.02), 2000u);
  EXPECT_EQ(PlantedCliqueSize(100, 0.02), 20u);
}

TEST(PlantedCliqueTest, FirstAttributeIsBadAndShapedRight) {
  Rng rng(2);
  PlantedCliqueOptions opts;
  opts.num_rows = 5000;
  opts.num_attributes = 4;
  opts.epsilon = 0.01;
  Dataset d = MakePlantedClique(opts, &rng);
  AttributeSet first = AttributeSet::FromIndices(4, {0});
  // Γ_{1} = C(clique, 2) > eps * C(n, 2) (the Lemma 4 inequality).
  uint64_t clique = PlantedCliqueSize(opts.num_rows, opts.epsilon);
  EXPECT_EQ(ExactUnseparatedPairs(d, first), PairCount(clique));
  EXPECT_EQ(Classify(d, first, opts.epsilon), SeparationClass::kBad);
  // G_{1}: one clique + isolated vertices => number of blocks is
  // n - clique + 1.
  Partition p = SeparationPartition(d, first);
  EXPECT_EQ(p.num_blocks(), opts.num_rows - clique + 1);
}

TEST(PlantedCliqueTest, FullAttributeSetIsKey) {
  Rng rng(3);
  PlantedCliqueOptions opts;
  opts.num_rows = 3000;
  opts.num_attributes = 5;
  opts.epsilon = 0.02;
  Dataset d = MakePlantedClique(opts, &rng);
  EXPECT_TRUE(IsKey(d, AttributeSet::All(5)));
  // Even without the planted attribute (the index-digit attributes
  // alone form a key).
  EXPECT_TRUE(IsKey(d, AttributeSet::FromIndices(5, {1, 2, 3, 4})));
}

TEST(PlantedCliqueTest, ShuffleDoesNotChangeProfile) {
  PlantedCliqueOptions opts;
  opts.num_rows = 1000;
  opts.num_attributes = 3;
  opts.epsilon = 0.05;
  opts.shuffle_rows = false;
  Rng rng_a(4);
  Dataset plain = MakePlantedClique(opts, &rng_a);
  opts.shuffle_rows = true;
  Rng rng_b(5);
  Dataset shuffled = MakePlantedClique(opts, &rng_b);
  AttributeSet first = AttributeSet::FromIndices(3, {0});
  EXPECT_EQ(ExactUnseparatedPairs(plain, first),
            ExactUnseparatedPairs(shuffled, first));
}

// ------------------------------------------------------------ encoding LB

TEST(EncodingTest, ColumnSparseMatrixHasExactlyKOnesPerColumn) {
  Rng rng(6);
  BitMatrix c = MakeRandomColumnSparseMatrix(3, 4, 7, &rng);
  EXPECT_EQ(c.rows, 12u);
  EXPECT_EQ(c.cols, 7u);
  for (size_t col = 0; col < c.cols; ++col) {
    int ones = 0;
    for (size_t row = 0; row < c.rows; ++row) ones += c.at(row, col);
    EXPECT_EQ(ones, 3) << "column " << col;
  }
}

TEST(EncodingTest, DatasetShape) {
  Rng rng(7);
  BitMatrix c = MakeRandomColumnSparseMatrix(2, 3, 5, &rng);
  Dataset d = MakeEncodingDataset(c);
  EXPECT_EQ(d.num_rows(), 12u);        // 2n with n = 6
  EXPECT_EQ(d.num_attributes(), 11u);  // m + n = 5 + 6
  // Identity block: attribute m+i is 1 exactly at top row i.
  for (size_t i = 0; i < 6; ++i) {
    for (size_t r = 0; r < 12; ++r) {
      EXPECT_EQ(d.code(static_cast<RowIndex>(r),
                       static_cast<AttributeIndex>(5 + i)),
                (r == i) ? 1u : 0u);
    }
  }
  // Bottom half of the C-block is all ones.
  for (size_t j = 0; j < 5; ++j) {
    for (size_t r = 6; r < 12; ++r) {
      EXPECT_EQ(d.code(static_cast<RowIndex>(r),
                       static_cast<AttributeIndex>(j)),
                1u);
    }
  }
}

TEST(EncodingTest, HammingDistance) {
  EXPECT_EQ(HammingDistance({0, 1, 1, 0}, {0, 1, 0, 1}), 2u);
  EXPECT_EQ(HammingDistance({1}, {1}), 0u);
}

TEST(EncodingTest, QueryAttributesLayout) {
  auto attrs = EncodingQueryAttributes(3, {0, 5, 7}, 10);
  EXPECT_EQ(attrs, (std::vector<AttributeIndex>{3, 10, 15, 17}));
}

// ---------------------------------------------------------------- tabular

TEST(TabularTest, RespectsShapeAndCardinalities) {
  Rng rng(8);
  TabularSpec spec;
  spec.num_rows = 500;
  spec.attributes = {{"a", 4, 0.0, -1, 0.0},
                     {"b", 10, 1.0, -1, 0.0},
                     {"c", 10, 0.0, 1, 0.0}};
  Dataset d = MakeTabular(spec, &rng);
  EXPECT_EQ(d.num_rows(), 500u);
  EXPECT_EQ(d.num_attributes(), 3u);
  for (RowIndex r = 0; r < 500; ++r) {
    EXPECT_LT(d.code(r, 0), 4u);
    EXPECT_LT(d.code(r, 1), 10u);
  }
}

TEST(TabularTest, DerivedColumnWithoutNoiseIsFunctional) {
  Rng rng(9);
  TabularSpec spec;
  spec.num_rows = 1000;
  spec.attributes = {{"src", 8, 0.5, -1, 0.0}, {"dst", 8, 0.0, 0, 0.0}};
  Dataset d = MakeTabular(spec, &rng);
  // dst is a deterministic function of src: partition by src refines
  // (or equals) partition by dst; jointly they separate exactly what
  // src separates.
  EXPECT_EQ(ExactUnseparatedPairs(d, AttributeSet::FromIndices(2, {0})),
            ExactUnseparatedPairs(d, AttributeSet::FromIndices(2, {0, 1})));
}

TEST(TabularTest, ZipfSkewsMarginals) {
  Rng rng(10);
  ZipfSampler zipf(100, 1.5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10] * 5);
  EXPECT_GT(counts[0], 10000);
}

TEST(TabularTest, ZipfZeroExponentIsUniform) {
  Rng rng(11);
  ZipfSampler flat(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[flat.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 400);
}

TEST(TabularTest, PaperProfilesHaveDocumentedShapes) {
  TabularSpec adult = AdultLikeSpec();
  EXPECT_EQ(adult.num_rows, 32561u);
  EXPECT_EQ(adult.attributes.size(), 14u);

  TabularSpec covtype = CovtypeLikeSpec();
  EXPECT_EQ(covtype.num_rows, 581012u);
  EXPECT_EQ(covtype.attributes.size(), 55u);

  TabularSpec cps = CpsLikeSpec(1000);
  EXPECT_EQ(cps.num_rows, 1000u);
  EXPECT_EQ(cps.attributes.size(), 372u);
}

TEST(TabularTest, AdultLikeIsGenerable) {
  Rng rng(12);
  TabularSpec spec = AdultLikeSpec();
  spec.num_rows = 2000;  // shrink for test speed
  Dataset d = MakeTabular(spec, &rng);
  EXPECT_EQ(d.num_rows(), 2000u);
  EXPECT_EQ(d.num_attributes(), 14u);
  // The high-cardinality fnlwgt column should be near-unique.
  EXPECT_GT(d.column(2).CountDistinct(), 1500u);
  // sex is binary.
  EXPECT_LE(d.column(9).CountDistinct(), 2u);
}

}  // namespace
}  // namespace qikey
