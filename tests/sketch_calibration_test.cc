#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/separation.h"
#include "core/sketch.h"
#include "data/generators/uniform_grid.h"
#include "math/chernoff.h"
#include "util/rng.h"
#include "util/stats.h"

namespace qikey {
namespace {

/// Calibration of the Theorem 2 sketch against its own Chernoff
/// analysis: across (eps, sample-size) configurations, the realized
/// relative error of Γ̂_A must stay within the deviation the bound
/// predicts at the configured confidence — and the *distribution* of
/// errors must match binomial sampling noise (std ≈ sqrt(p(1-p)s)/ps).

class SketchCalibrationTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SketchCalibrationTest, ErrorWithinChernoffEnvelope) {
  auto [seed, eps] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  // Grid with q=4: singleton Γ ≈ C(n,2)/4 — comfortably dense.
  Dataset d = MakeUniformGridSample(4, 4, 3000, &rng);
  AttributeSet a = AttributeSet::FromIndices(4, {0});
  uint64_t truth = ExactUnseparatedPairs(d, a);
  double p = static_cast<double>(truth) /
             static_cast<double>(d.num_pairs());

  NonSeparationSketchOptions opts;
  opts.sample_size = 20000;
  // Realized per-trial error distribution across independent sketches.
  const int kTrials = 60;
  RunningStats rel_err;
  int within = 0;
  for (int t = 0; t < kTrials; ++t) {
    auto sketch = NonSeparationSketch::Build(d, opts, &rng);
    ASSERT_TRUE(sketch.ok());
    NonSeparationEstimate est = sketch->Estimate(a);
    ASSERT_FALSE(est.small);
    double err = (est.estimate - static_cast<double>(truth)) /
                 static_cast<double>(truth);
    rel_err.Add(err);
    within += (std::abs(err) <= eps) ? 1 : 0;
  }
  // Chernoff: P(|D - ps| >= eps*ps) <= bound. The empirical violation
  // rate must not exceed the bound by more than sampling noise.
  double mu = p * static_cast<double>(opts.sample_size);
  double bound = ChernoffTwoSidedBound(mu, eps);
  double violation_rate = 1.0 - static_cast<double>(within) / kTrials;
  double noise = 3.0 * std::sqrt(0.25 / kTrials);  // worst-case binomial
  EXPECT_LE(violation_rate, std::min(1.0, bound + noise))
      << "eps=" << eps << " mu=" << mu;
  // The estimator is unbiased: mean relative error ~ 0 within noise.
  double expected_std =
      std::sqrt(p * (1 - p) * static_cast<double>(opts.sample_size)) / mu;
  EXPECT_NEAR(rel_err.mean(), 0.0, 4.0 * expected_std / std::sqrt(kTrials))
      << "bias detected";
  // And its spread matches binomial noise (within broad factor-2 band).
  EXPECT_LT(rel_err.stddev(), 2.0 * expected_std);
  EXPECT_GT(rel_err.stddev(), expected_std / 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SketchCalibrationTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0.02, 0.05, 0.1)));

TEST(SketchCalibrationTest, SmallCutoffSidesAreConsistent) {
  // A set just above the density cutoff is never reported small when
  // the sample is large; a set far below it always is.
  Rng rng(9);
  Dataset d = MakeUniformGridSample(6, 3, 2000, &rng);
  NonSeparationSketchOptions opts;
  opts.k = 6;
  opts.alpha = 0.2;
  opts.eps = 0.1;
  opts.big_k = 4.0;
  auto sketch = NonSeparationSketch::Build(d, opts, &rng);
  ASSERT_TRUE(sketch.ok());
  // Empty set: Γ = C(n,2), maximally dense.
  EXPECT_FALSE(sketch->Estimate(AttributeSet(6)).small);
  // Full set on a 3^6=729-cell grid with n=2000: Γ tiny relative to
  // alpha = 0.2.
  uint64_t gamma_full = ExactUnseparatedPairs(d, AttributeSet::All(6));
  ASSERT_LT(static_cast<double>(gamma_full),
            0.01 * static_cast<double>(d.num_pairs()));
  EXPECT_TRUE(sketch->Estimate(AttributeSet::All(6)).small);
}

}  // namespace
}  // namespace qikey
