#include <gtest/gtest.h>

#include <cmath>

#include "qikey.h"

namespace qikey {
namespace {

/// Randomized cross-validation: generate a random table from a random
/// spec, then check that every pair of independent implementations of
/// the same quantity agrees. One TEST_P instance per seed; each runs
/// dozens of random queries, so the suite covers thousands of
/// configurations.

TabularSpec RandomSpec(Rng* rng) {
  TabularSpec spec;
  spec.num_rows = 50 + rng->Uniform(400);
  uint32_t m = 2 + static_cast<uint32_t>(rng->Uniform(7));
  for (uint32_t j = 0; j < m; ++j) {
    AttributeSpec a;
    // += instead of "c" + to_string: gcc 12 -Wrestrict FP (PR105651).
    a.name = "c";
    a.name += std::to_string(j);
    a.cardinality = 1 + static_cast<uint32_t>(rng->Uniform(40));
    a.zipf_exponent = rng->UniformDouble() * 2.0;
    if (j > 0 && rng->Bernoulli(0.25)) {
      a.derived_from = static_cast<int32_t>(rng->Uniform(j));
      a.noise = rng->UniformDouble() * 0.2;
    }
    spec.attributes.push_back(std::move(a));
  }
  return spec;
}

uint64_t BruteForceGamma(const Dataset& d,
                         const std::vector<AttributeIndex>& attrs) {
  uint64_t count = 0;
  for (RowIndex i = 0; i < d.num_rows(); ++i) {
    for (RowIndex j = i + 1; j < d.num_rows(); ++j) {
      count += d.RowsAgreeOn(i, j, attrs) ? 1 : 0;
    }
  }
  return count;
}

class FuzzConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzConsistencyTest, AllImplementationsAgree) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  TabularSpec spec = RandomSpec(&rng);
  Dataset d = MakeTabular(spec, &rng);
  const size_t m = d.num_attributes();

  // (1) Γ via partition == Γ via pair scan, on random subsets.
  for (int t = 0; t < 12; ++t) {
    AttributeSet a = AttributeSet::Random(m, 0.5, &rng);
    EXPECT_EQ(ExactUnseparatedPairs(d, a), BruteForceGamma(d, a.ToIndices()));
  }

  // (2) Serialization round trip preserves every separation answer.
  auto back = DeserializeDataset(SerializeDataset(d));
  ASSERT_TRUE(back.ok());
  for (int t = 0; t < 6; ++t) {
    AttributeSet a = AttributeSet::Random(m, 0.5, &rng);
    EXPECT_EQ(ExactUnseparatedPairs(d, a), ExactUnseparatedPairs(*back, a));
  }

  // (3) Filter completeness on the full attribute set, both backends,
  // and sort/hash equivalence on random queries from the SAME sample.
  TupleSampleFilterOptions sort_opts;
  sort_opts.eps = 0.05;
  sort_opts.sample_size = 40;
  sort_opts.detection = DuplicateDetection::kSort;
  Rng build_a(GetParam() + 1000);
  auto sorted = TupleSampleFilter::Build(d, sort_opts, &build_a);
  TupleSampleFilterOptions hash_opts = sort_opts;
  hash_opts.detection = DuplicateDetection::kHash;
  Rng build_b(GetParam() + 1000);
  auto hashed = TupleSampleFilter::Build(d, hash_opts, &build_b);
  ASSERT_TRUE(sorted.ok() && hashed.ok());
  for (int t = 0; t < 20; ++t) {
    AttributeSet a = AttributeSet::Random(m, 0.5, &rng);
    EXPECT_EQ(sorted->Query(a), hashed->Query(a));
  }
  AttributeSet all = AttributeSet::All(m);
  if (IsKey(d, all)) {
    EXPECT_EQ(sorted->Query(all), FilterVerdict::kAccept);
  }

  // (4) Greedy engines: both gain strategies pick identical keys, and
  // the greedy trace's total gain accounts for every separated pair.
  RefineEngine lookup(d, GainStrategy::kLookupTable);
  RefineEngine sorted_engine(d, GainStrategy::kSortPartition);
  auto g1 = lookup.RunGreedy();
  auto g2 = sorted_engine.RunGreedy();
  EXPECT_EQ(g1.chosen, g2.chosen);
  uint64_t covered = 0;
  for (const auto& step : g1.steps) covered += step.gain;
  EXPECT_EQ(covered + g1.remaining_unseparated, d.num_pairs());

  // (5) AFD identity: violating(X -> y) == Γ_X - Γ_{X ∪ {y}} computed
  // independently.
  for (int t = 0; t < 6; ++t) {
    AttributeIndex rhs = static_cast<AttributeIndex>(rng.Uniform(m));
    AttributeSet lhs = AttributeSet::Random(m, 0.4, &rng);
    lhs.Remove(rhs);
    AfdError err = ComputeAfdError(d, lhs, rhs);
    AttributeSet both = lhs;
    both.Add(rhs);
    EXPECT_EQ(err.violating, ExactUnseparatedPairs(d, lhs) -
                                 ExactUnseparatedPairs(d, both));
  }

  // (6) Anonymity identities: uniqueness-rate consistency between
  // AnonymityLevel / RowsBelowK / SuppressForKAnonymity.
  AttributeSet qi = AttributeSet::Random(m, 0.5, &rng);
  uint64_t level = AnonymityLevel(d, qi);
  EXPECT_DOUBLE_EQ(RowsBelowK(d, qi, level), 0.0);
  EXPECT_GT(RowsBelowK(d, qi, level + 1), 0.0);
  std::vector<RowIndex> suppressed = SuppressForKAnonymity(d, qi, 2);
  EXPECT_NEAR(static_cast<double>(suppressed.size()) /
                  static_cast<double>(d.num_rows()),
              RowsBelowK(d, qi, 2), 1e-12);

  // (7) Masking postcondition: exact greedy masking leaves a released
  // set that is not an eps-key.
  MaskingResult masked = GreedyMaskingExact(d, 0.2);
  if (masked.achieved) {
    AttributeSet released = AttributeSet::All(m).Difference(masked.masked);
    EXPECT_FALSE(IsEpsSeparationKey(d, released, 0.2));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzConsistencyTest,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace qikey
