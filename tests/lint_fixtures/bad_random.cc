// LINT-PATH: src/core/bad_random.cc
// EXPECT-LINT: QL002
// EXPECT-LINT: QL002
//
// Unseeded randomness: results would differ run to run, so no bug
// report or benchmark number could ever be reproduced from a seed.

#include <cstdlib>
#include <random>

int Pick(int n) {
  std::random_device entropy;
  return static_cast<int>((entropy() + std::rand()) % n);
}
