// LINT-PATH: src/core/good_clean.cc
//
// Clean control fixture: every rule's sanctioned alternative in one
// file. Nothing here may be flagged — strings and comments mentioning
// atoi( or rand( included ("atoi(x)" is data, not a call).

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

class ByteWriter {
 public:
  void AppendU64(uint64_t v) { total_ += v; }

 private:
  uint64_t total_ = 0;
};

// QL001: strtoll with a checked end-pointer is the approved parse.
bool ParseCount(const char* text, long long* out) {
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

// QL003: serialization iterates an ordered map — byte-stable.
void SerializeCounts(const std::map<uint64_t, uint64_t>& counts,
                     ByteWriter* writer) {
  for (const auto& [code, count] : counts) {
    writer->AppendU64(code);
    writer->AppendU64(count);
  }
}

// QL004: same-statement adoption, including the reset form.
std::shared_ptr<std::string> MakeShared() {
  std::shared_ptr<std::string> owned(new std::string("atoi(x) is banned"));
  owned.reset(new std::string("rand() too"));
  return owned;
}

// QL005 applies to stderr only; stdout reporting is fine.
void PrintSummary(uint64_t rows) {
  std::printf("rows=%llu\n", static_cast<unsigned long long>(rows));
}
