// LINT-PATH: src/engine/bad_naked_new.cc
// EXPECT-LINT: QL004
//
// A raw owning pointer: if anything between the new and the delete
// throws, the allocation leaks. The adopted allocation below is the
// sanctioned form and must NOT be flagged.

#include <memory>

struct Widget {
  int value = 0;
};

Widget* MakeRaw() {
  return new Widget();  // QL004: no owner
}

std::unique_ptr<Widget> MakeOwned() {
  return std::unique_ptr<Widget>(new Widget());  // same-statement adoption
}
