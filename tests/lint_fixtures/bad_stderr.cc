// LINT-PATH: src/serve/bad_stderr.cc
// EXPECT-LINT: QL005
//
// Raw stderr from library code: concurrent writers interleave partial
// lines (stderr is unbuffered but fprintf is not atomic across the
// format expansion). WriteRawLine's single write(2) is.

#include <cstdio>

void ReportFailure(int code) {
  std::fprintf(stderr, "request failed: %d\n", code);
}
