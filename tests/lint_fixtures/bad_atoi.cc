// LINT-PATH: examples/bad_atoi.cc
// EXPECT-LINT: QL001
// EXPECT-LINT: QL001
//
// Both failure modes of QL001: the atoi family (error == 0 == valid
// input), and strtoull with a null end-pointer (trailing garbage
// silently accepted).

#include <cstdlib>

int main(int argc, char** argv) {
  int threads = argc > 1 ? std::atoi(argv[1]) : 0;
  unsigned long long rows =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0;
  return static_cast<int>(threads + rows);
}
