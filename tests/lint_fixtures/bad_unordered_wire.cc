// LINT-PATH: src/data/bad_unordered_wire.cc
// EXPECT-LINT: QL003
//
// Hash-order leaking into wire bytes: the serialize function iterates
// an unordered_map directly, so two runs (or two standard libraries)
// produce different byte streams for identical data.

#include <cstdint>
#include <unordered_map>

class ByteWriter {
 public:
  void AppendU64(uint64_t v) { total_ += v; }

 private:
  uint64_t total_ = 0;
};

class CodeTable {
 public:
  void Serialize(ByteWriter* writer) const {
    for (const auto& [code, count] : counts_) {
      writer->AppendU64(code);
      writer->AppendU64(count);
    }
  }

 private:
  std::unordered_map<uint64_t, uint64_t> counts_;
};
