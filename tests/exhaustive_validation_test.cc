#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <tuple>

#include "qikey.h"

namespace qikey {
namespace {

/// Exhaustive ground-truth validation at small m: enumerate ALL 2^m
/// attribute subsets (or all lattice nodes) and compare the sampled /
/// greedy / pruned algorithms against complete search.

// --------------------------------------------------------------------------
// The "for all" guarantee of Theorem 1, checked literally: for every
// one of the 2^m subsets simultaneously, the filter must be correct
// (keys accepted, bad rejected); gray-zone subsets are free. We verify
// the empirical failure rate of the whole-universe event is small at
// the paper's sample size.
// --------------------------------------------------------------------------

class ForAllGuaranteeTest : public ::testing::TestWithParam<int> {};

TEST_P(ForAllGuaranteeTest, WholeUniverseCorrectWithHighProbability) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const uint32_t m = 6;
  const double eps = 0.02;
  Dataset d = MakeUniformGridSample(m, 6, 3000, &rng);

  // Precompute the exact class of every subset.
  const uint32_t universe = 1u << m;
  std::vector<SeparationClass> truth(universe);
  for (uint32_t mask = 0; mask < universe; ++mask) {
    AttributeSet a(m);
    for (uint32_t j = 0; j < m; ++j) {
      if (mask & (1u << j)) a.Add(j);
    }
    truth[mask] = Classify(d, a, eps);
  }

  int universe_failures = 0;
  const int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    TupleSampleFilterOptions opts;
    opts.eps = eps;  // r = m/sqrt(eps) = 43
    auto f = TupleSampleFilter::Build(d, opts, &rng);
    ASSERT_TRUE(f.ok());
    bool all_correct = true;
    for (uint32_t mask = 0; mask < universe && all_correct; ++mask) {
      if (truth[mask] == SeparationClass::kIntermediate) continue;
      AttributeSet a(m);
      for (uint32_t j = 0; j < m; ++j) {
        if (mask & (1u << j)) a.Add(j);
      }
      FilterVerdict expected = truth[mask] == SeparationClass::kKey
                                   ? FilterVerdict::kAccept
                                   : FilterVerdict::kReject;
      all_correct = (f->Query(a) == expected);
    }
    universe_failures += all_correct ? 0 : 1;
  }
  // At r = m/sqrt(eps) with these margins the whole-universe failure
  // probability is far below 1/20; allow a single flake.
  EXPECT_LE(universe_failures, 1) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForAllGuaranteeTest,
                         ::testing::Range(100, 106));

// --------------------------------------------------------------------------
// Minimal-key enumeration vs complete search.
// --------------------------------------------------------------------------

class EnumerationExhaustiveTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(EnumerationExhaustiveTest, MatchesCompleteSubsetSearch) {
  auto [seed, eps] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  const uint32_t m = 7;
  Dataset d = MakeUniformGridSample(m, 3, 250, &rng);
  const double budget = eps * static_cast<double>(d.num_pairs());

  KeyEnumerationOptions opts;
  opts.eps = eps;
  opts.max_size = m;
  auto enumerated = EnumerateMinimalKeys(d, opts);
  ASSERT_TRUE(enumerated.ok());

  // Complete search: all qualifying subsets, filtered to minimal ones.
  std::vector<AttributeSet> reference;
  for (uint32_t mask = 1; mask < (1u << m); ++mask) {
    AttributeSet a(m);
    for (uint32_t j = 0; j < m; ++j) {
      if (mask & (1u << j)) a.Add(j);
    }
    if (static_cast<double>(ExactUnseparatedPairs(d, a)) > budget) continue;
    bool minimal = true;
    for (AttributeIndex j : a.ToIndices()) {
      AttributeSet smaller = a;
      smaller.Remove(j);
      if (static_cast<double>(ExactUnseparatedPairs(d, smaller)) <=
          budget) {
        minimal = false;
        break;
      }
    }
    if (minimal) reference.push_back(std::move(a));
  }

  ASSERT_EQ(enumerated->size(), reference.size());
  for (const AttributeSet& key : reference) {
    EXPECT_NE(std::find(enumerated->begin(), enumerated->end(), key),
              enumerated->end())
        << "missing minimal key " << key.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnumerationExhaustiveTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0.0, 0.05, 0.3)));

// --------------------------------------------------------------------------
// Greedy masking vs the exact minimum masking set (complete search).
// --------------------------------------------------------------------------

class MaskingExhaustiveTest : public ::testing::TestWithParam<int> {};

TEST_P(MaskingExhaustiveTest, GreedyWithinOneOfOptimal) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const uint32_t m = 7;
  const double eps = 0.15;
  Dataset d = MakeUniformGridSample(m, 4, 300, &rng);
  const double max_separated =
      (1.0 - eps) * static_cast<double>(d.num_pairs());

  // Exact minimum: smallest mask whose complement separates few
  // enough pairs.
  uint32_t optimal = m + 1;
  for (uint32_t mask = 0; mask < (1u << m); ++mask) {
    AttributeSet remaining(m);
    for (uint32_t j = 0; j < m; ++j) {
      if (!(mask & (1u << j))) remaining.Add(j);
    }
    uint64_t separated =
        d.num_pairs() - ExactUnseparatedPairs(d, remaining);
    if (static_cast<double>(separated) <= max_separated) {
      optimal = std::min(optimal, static_cast<uint32_t>(
                                      std::popcount(mask)));
    }
  }
  ASSERT_LE(optimal, m);  // masking everything always qualifies

  MaskingResult greedy = GreedyMaskingExact(d, eps);
  ASSERT_TRUE(greedy.achieved);
  // Greedy attribute deletion has no constant-factor guarantee in
  // general, but at these sizes it stays within a small additive gap;
  // the postcondition (target met) is the hard requirement.
  EXPECT_LE(greedy.masked.size(), optimal + 2);
  EXPECT_GE(greedy.masked.size(), optimal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskingExhaustiveTest,
                         ::testing::Range(10, 16));

// --------------------------------------------------------------------------
// Generalization lattice search vs complete lattice scan.
// --------------------------------------------------------------------------

class GeneralizationExhaustiveTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneralizationExhaustiveTest, FindsAGlobalMinimalNode) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  TabularSpec spec;
  spec.num_rows = 400;
  spec.attributes = {{"a", 16, 0.4, -1, 0.0},
                     {"b", 9, 0.6, -1, 0.0},
                     {"c", 8, 0.2, -1, 0.0}};
  Dataset d = MakeTabular(spec, &rng);
  std::vector<AttributeIndex> qi{0, 1, 2};
  std::vector<GeneralizationHierarchy> h{
      GeneralizationHierarchy::Intervals(16, 2),  // 5 levels
      GeneralizationHierarchy::Intervals(9, 3),   // 3 levels
      GeneralizationHierarchy::Intervals(8, 2)};  // 4 levels
  GeneralizationOptions opts;
  opts.k = 4;
  auto result = FindMinimalGeneralization(d, qi, h, opts);
  ASSERT_TRUE(result.ok());

  // Complete scan of the lattice for the minimum qualifying level sum.
  uint32_t best_sum = ~0u;
  for (uint32_t l0 = 0; l0 < h[0].levels(); ++l0) {
    for (uint32_t l1 = 0; l1 < h[1].levels(); ++l1) {
      for (uint32_t l2 = 0; l2 < h[2].levels(); ++l2) {
        auto g = ApplyGeneralization(d, qi, h, {l0, l1, l2});
        ASSERT_TRUE(g.ok());
        if (AnonymityLevel(*g, AttributeSet::FromIndices(3, qi)) >=
            opts.k) {
          best_sum = std::min(best_sum, l0 + l1 + l2);
        }
      }
    }
  }
  uint32_t found_sum = std::accumulate(result->levels.begin(),
                                       result->levels.end(), 0u);
  EXPECT_EQ(found_sum, best_sum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralizationExhaustiveTest,
                         ::testing::Range(20, 25));

}  // namespace
}  // namespace qikey
