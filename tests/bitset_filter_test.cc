// Differential property tests for the bit-packed separation backend:
// for randomized datasets x seeds x thread counts, the bitset filter
// must produce bit-identical Query/QueryBatch answers to the scalar MX
// pair filter over the same sampled pairs, and identical minimal-key
// results through DiscoveryPipeline, RunSharded, and KeyMonitor
// insert/erase streams — including agreement with the tuple-sample
// backend wherever every backend is exact.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/bitset_filter.h"
#include "core/evidence_block.h"
#include "core/key_enumeration.h"
#include "core/mx_pair_filter.h"
#include "core/tuple_sample_filter.h"
#include "data/column.h"
#include "data/generators/tabular.h"
#include "data/generators/uniform_grid.h"
#include "engine/pipeline.h"
#include "monitor/key_monitor.h"
#include "shard/shard_artifact.h"
#include "shard/shard_builder.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace qikey {
namespace {

using Row = std::vector<ValueCode>;
using RowPair = std::pair<RowIndex, RowIndex>;

Dataset RowsToDataset(size_t m, const std::vector<Row>& rows) {
  std::vector<Column> columns;
  for (size_t j = 0; j < m; ++j) {
    std::vector<ValueCode> codes;
    codes.reserve(rows.size());
    for (const Row& row : rows) codes.push_back(row[j]);
    columns.emplace_back(std::move(codes));
  }
  return Dataset(Schema::Anonymous(m), std::move(columns));
}

Dataset AdultishTable(uint64_t rows, uint64_t seed) {
  Rng rng(seed);
  TabularSpec spec = AdultLikeSpec();
  spec.num_rows = rows;
  return MakeTabular(spec, &rng);
}

// ------------------------------------------------------- packed evidence

TEST(PackedEvidenceTest, AlignedBufferIsCacheLineAlignedAndCopies) {
  AlignedWordBuffer buffer(130);
  ASSERT_EQ(buffer.size(), 130u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buffer.data()) % 64, 0u);
  for (size_t i = 0; i < buffer.size(); ++i) {
    buffer.data()[i] = i * 0x9E3779B97F4A7C15ULL;
  }
  AlignedWordBuffer copy = buffer;
  EXPECT_EQ(reinterpret_cast<uintptr_t>(copy.data()) % 64, 0u);
  for (size_t i = 0; i < copy.size(); ++i) {
    EXPECT_EQ(copy.data()[i], buffer.data()[i]);
  }
  AlignedWordBuffer moved = std::move(copy);
  EXPECT_EQ(moved.size(), 130u);
  EXPECT_EQ(moved.data()[129], 129 * 0x9E3779B97F4A7C15ULL);
}

TEST(PackedEvidenceTest, HandDataSemanticsAndDedup) {
  std::vector<Row> rows = {{0, 0, 1}, {0, 0, 2}, {1, 2, 1}, {1, 2, 2}};
  Dataset d = RowsToDataset(3, rows);
  // All six pairs. Disagree masks: {c}, {a,b}, {a,b,c}, {a,b,c}, {a,b},
  // {c} — three distinct.
  std::vector<RowPair> pairs = {{0, 1}, {0, 2}, {0, 3},
                                {1, 2}, {1, 3}, {2, 3}};
  PackedEvidence ev = PackedEvidence::FromDatasetPairs(d, pairs);
  EXPECT_EQ(ev.source_pairs(), 6u);
  EXPECT_EQ(ev.num_pairs(), 3u);
  EXPECT_EQ(ev.words_per_pair(), 1u);

  // {c} separates pairs (0,1) and (2,3) but not (0,2): reject.
  AttributeSet c_only = AttributeSet::FromIndices(3, {2});
  EXPECT_TRUE(ev.FindUnseparated(c_only.words()).has_value());
  // {a,c} separates everything: accept.
  AttributeSet ac = AttributeSet::FromIndices(3, {0, 2});
  EXPECT_FALSE(ev.FindUnseparated(ac.words()).has_value());
  // The empty set separates nothing: any pair is a witness.
  AttributeSet none(3);
  EXPECT_TRUE(ev.FindUnseparated(none.words()).has_value());
  // The witness pair for the rejected {c} query genuinely agrees on c.
  auto rep = ev.representative(*ev.FindUnseparated(c_only.words()));
  EXPECT_TRUE(d.RowsAgreeOn(rep.first, rep.second, c_only.ToIndices()));
}

TEST(PackedEvidenceTest, NoPairsAcceptsEverything) {
  Dataset d = RowsToDataset(4, {{1, 2, 3, 4}, {5, 6, 7, 8}});
  PackedEvidence ev = PackedEvidence::FromDatasetPairs(d, {});
  EXPECT_EQ(ev.num_pairs(), 0u);
  AttributeSet none(4);
  EXPECT_FALSE(ev.FindUnseparated(none.words()).has_value());
}

TEST(PackedEvidenceTest, BlockMajorBatchMatchesPerMaskScan) {
  // > 64 pairs to cross a block boundary, 70 attributes to force two
  // mask words per pair.
  Rng rng(3);
  Dataset d = MakeUniformGridSample(70, 2, 500, &rng);
  std::vector<RowPair> pairs;
  for (int i = 0; i < 150; ++i) {
    auto [a, b] = rng.SamplePair(d.num_rows());
    pairs.emplace_back(static_cast<RowIndex>(a), static_cast<RowIndex>(b));
  }
  PackedEvidence ev = PackedEvidence::FromDatasetPairs(d, pairs);
  EXPECT_EQ(ev.words_per_pair(), 2u);
  ASSERT_GT(ev.num_blocks(), 1u);

  std::vector<AttributeSet> queries;
  Rng qrng(4);
  for (int i = 0; i < 200; ++i) {
    queries.push_back(AttributeSet::Random(70, 0.02 + 0.3 * (i % 7), &qrng));
  }
  std::vector<uint64_t> masks(queries.size() * 2);
  std::vector<uint8_t> rejected(queries.size(), 0);
  for (size_t i = 0; i < queries.size(); ++i) {
    std::span<const uint64_t> w = queries[i].words();
    std::copy(w.begin(), w.end(), masks.begin() + i * 2);
  }
  ev.TestMasksBlockMajor(masks.data(), 2, queries.size(), rejected.data());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(rejected[i] != 0,
              ev.FindUnseparated(queries[i].words()).has_value())
        << i;
  }
}

// ------------------------------------------------ kernel tiers (SIMD)

/// Restores automatic kernel dispatch when a test scope ends, so a
/// failing assertion cannot leak a pinned tier into later tests.
struct KernelGuard {
  ~KernelGuard() { (void)SetEvidenceKernel("auto"); }
};

/// The tiers this build and CPU can actually run; scalar (the oracle)
/// is always first.
std::vector<const char*> AvailableKernels() {
  std::vector<const char*> tiers = {"scalar"};
  for (const char* name : {"avx2", "avx512"}) {
    if (SetEvidenceKernel(name).ok()) tiers.push_back(name);
  }
  (void)SetEvidenceKernel("auto");
  return tiers;
}

/// Random lane-stable evidence: `pairs` pairs over `m` attributes with
/// mixed agree/disagree structure.
PackedEvidence MakeRandomEvidence(size_t m, size_t pairs, uint64_t seed,
                                  std::vector<std::vector<ValueCode>>* store) {
  Rng rng(seed);
  store->clear();
  store->reserve(2 * pairs);
  std::vector<std::pair<const ValueCode*, const ValueCode*>> rows;
  std::vector<std::pair<uint32_t, uint32_t>> ids;
  for (size_t p = 0; p < pairs; ++p) {
    std::vector<ValueCode> a(m), b(m);
    for (size_t j = 0; j < m; ++j) {
      a[j] = static_cast<ValueCode>(rng.Uniform(3));
      b[j] = static_cast<ValueCode>(rng.Uniform(3));
    }
    store->push_back(std::move(a));
    store->push_back(std::move(b));
    ids.emplace_back(static_cast<uint32_t>(p), static_cast<uint32_t>(p + 1));
  }
  for (size_t p = 0; p < pairs; ++p) {
    rows.emplace_back((*store)[2 * p].data(), (*store)[2 * p + 1].data());
  }
  return PackedEvidence::FromRowMajorPairs(m, rows, ids, /*dedupe=*/false);
}

TEST(EvidenceKernelTest, DispatchNamesAndOverrides) {
  KernelGuard guard;
  EXPECT_STREQ(EvidenceKernelName(EvidenceKernel::kScalar), "scalar");
  EXPECT_STREQ(EvidenceKernelName(EvidenceKernel::kAvx2), "avx2");
  EXPECT_STREQ(EvidenceKernelName(EvidenceKernel::kAvx512), "avx512");
  // The scalar oracle and auto detection are always available.
  ASSERT_TRUE(SetEvidenceKernel("scalar").ok());
  EXPECT_EQ(ActiveEvidenceKernel(), EvidenceKernel::kScalar);
  ASSERT_TRUE(SetEvidenceKernel("auto").ok());
  // Unknown names fail without changing dispatch.
  EvidenceKernel before = ActiveEvidenceKernel();
  EXPECT_FALSE(SetEvidenceKernel("sse9").ok());
  EXPECT_EQ(ActiveEvidenceKernel(), before);
}

TEST(EvidenceKernelTest, TiersBitIdenticalOnBlockAndWidthEdges) {
  KernelGuard guard;
  const std::vector<const char*> tiers = AvailableKernels();
  // m crosses the 1-word (40), 2-word (70), and many-word (600)
  // mask widths; pairs covers sub-block, exact-block, partial-last-
  // block, and multi-superblock shapes (the LiveLanes padding edge
  // and the 4-/8-block vector group remainders).
  for (size_t m : {40u, 70u, 600u}) {
    for (size_t pairs : {1u, 63u, 64u, 129u, 256u, 257u, 1000u}) {
      std::vector<std::vector<ValueCode>> store;
      PackedEvidence ev =
          MakeRandomEvidence(m, pairs, m * 10007 + pairs, &store);
      const size_t wpp = ev.words_per_pair();
      Rng qrng(m + pairs);
      const size_t count = 37;
      std::vector<uint64_t> masks(count * wpp, 0);
      for (size_t i = 0; i < count; ++i) {
        for (size_t j = 0; j < m; ++j) {
          if (qrng.Uniform(4) == 0) {
            masks[i * wpp + j / 64] |= uint64_t{1} << (j % 64);
          }
        }
      }
      // Mask 5 is empty (rejects immediately on any live block).
      std::fill(masks.begin() + 5 * wpp, masks.begin() + 6 * wpp, 0);

      std::vector<uint8_t> want_rejected;
      std::vector<std::optional<uint32_t>> want_first;
      for (const char* tier : tiers) {
        ASSERT_TRUE(SetEvidenceKernel(tier).ok());
        std::vector<uint8_t> rejected(count, 0);
        rejected[3] = 1;  // pre-seeded entries must be skipped
        ev.TestMasksBlockMajor(masks.data(), wpp, count, rejected.data());
        std::vector<std::optional<uint32_t>> first(count);
        for (size_t i = 0; i < count; ++i) {
          first[i] = ev.FindUnseparated(
              std::span<const uint64_t>(masks.data() + i * wpp, wpp));
        }
        if (std::string(tier) == "scalar") {
          want_rejected = std::move(rejected);
          want_first = std::move(first);
        } else {
          // Bit-identical to the oracle: same rejections AND the same
          // first-witness pair index.
          EXPECT_EQ(rejected, want_rejected)
              << tier << " m=" << m << " pairs=" << pairs;
          EXPECT_EQ(first, want_first)
              << tier << " m=" << m << " pairs=" << pairs;
        }
      }
    }
  }
}

TEST(EvidenceKernelTest, TiersAgreeOnDegenerateInputs) {
  KernelGuard guard;
  std::vector<std::vector<ValueCode>> store;
  PackedEvidence ev = MakeRandomEvidence(70, 100, 77, &store);
  PackedEvidence empty;
  for (const char* tier : AvailableKernels()) {
    ASSERT_TRUE(SetEvidenceKernel(tier).ok());
    // Empty candidate set: a no-op at every tier.
    ev.TestMasksBlockMajor(nullptr, 2, 0, nullptr);
    // All candidates pre-rejected: nothing is touched.
    std::vector<uint64_t> masks(2, ~uint64_t{0});
    std::vector<uint8_t> rejected = {1};
    ev.TestMasksBlockMajor(masks.data(), 2, 1, rejected.data());
    EXPECT_EQ(rejected[0], 1) << tier;
    // Evidence with no pairs accepts everything.
    EXPECT_FALSE(empty.FindUnseparated(std::span<const uint64_t>())
                     .has_value())
        << tier;
  }
}

TEST(PackedEvidenceTest, MemoryBytesCountsOwnedBytesOnly) {
  std::vector<std::vector<ValueCode>> store;
  PackedEvidence owned = MakeRandomEvidence(70, 100, 5, &store);
  EXPECT_EQ(owned.BorrowedBytes(), 0u);
  EXPECT_EQ(owned.MemoryBytes(),
            owned.raw_words().size_bytes() + owned.raw_reps().size_bytes());

  auto borrowed = PackedEvidence::FromBorrowed(
      owned.num_attributes(), owned.source_pairs(), owned.num_pairs(),
      owned.raw_words().data(), owned.raw_words().size(),
      owned.raw_reps().data());
  ASSERT_TRUE(borrowed.ok()) << borrowed.status().ToString();
  ASSERT_TRUE(borrowed->borrowed());
  // A borrowed instance owns nothing — its words and reps live in the
  // (notionally mmap-ed) donor storage, shared with the page cache.
  // Charging them as owned would double-count the snapshot image
  // against a process memory budget.
  EXPECT_EQ(borrowed->MemoryBytes(), 0u);
  EXPECT_EQ(borrowed->BorrowedBytes(),
            owned.raw_words().size_bytes() + owned.raw_reps().size_bytes());
}

TEST(EvidenceKernelTest, RandomizedFilterPropertyAcrossSeedsAndThreads) {
  KernelGuard guard;
  const std::vector<const char*> tiers = AvailableKernels();
  for (uint64_t seed : {11u, 29u}) {
    for (size_t m : {70u, 600u}) {
      Rng drng(seed * 1000 + m);
      Dataset d = MakeUniformGridSample(m, 2, 300, &drng);
      BitsetFilterOptions opts;
      opts.eps = 0.01;
      opts.sample_size = 500;
      Rng brng(seed);
      auto bs = BitsetSeparationFilter::Build(d, opts, &brng);
      ASSERT_TRUE(bs.ok());

      Rng qrng(seed ^ 0x5EED);
      std::vector<AttributeSet> queries;
      for (int i = 0; i < 100; ++i) {
        queries.push_back(
            AttributeSet::Random(m, 0.02 + 0.5 * (i % 9) / 9.0, &qrng));
      }
      queries.push_back(AttributeSet(m));
      queries.push_back(AttributeSet::All(m));

      ASSERT_TRUE(SetEvidenceKernel("scalar").ok());
      const std::vector<FilterVerdict> want = bs->QueryBatch(queries, nullptr);
      std::vector<std::optional<std::pair<RowIndex, RowIndex>>> witnesses;
      for (const AttributeSet& q : queries) {
        witnesses.push_back(bs->QueryWitness(q));
      }
      for (const char* tier : tiers) {
        ASSERT_TRUE(SetEvidenceKernel(tier).ok());
        EXPECT_EQ(bs->QueryBatch(queries, nullptr), want) << tier;
        for (size_t threads : {3u, 8u}) {
          ThreadPool pool(threads);
          EXPECT_EQ(bs->QueryBatch(queries, &pool), want)
              << tier << " threads=" << threads;
        }
        // Witness reporting (first unseparated pair) is also tier-
        // independent, not just the verdict.
        for (size_t i = 0; i < queries.size(); ++i) {
          EXPECT_EQ(bs->QueryWitness(queries[i]), witnesses[i])
              << tier << " query " << i;
        }
      }
    }
  }
}

// ------------------------------------------- filter-level differential

void ExpectFiltersAgree(const Dataset& d, uint64_t seed, uint64_t pair_count,
                        size_t num_threads) {
  MxPairFilterOptions mx_opts;
  mx_opts.eps = 0.01;
  mx_opts.sample_size = pair_count;
  BitsetFilterOptions bs_opts;
  bs_opts.eps = 0.01;
  bs_opts.sample_size = pair_count;

  // Separate Rng instances with one seed: both Build paths make the
  // same SamplePair calls, so the evidence covers the same pairs.
  Rng mx_rng(seed), bs_rng(seed);
  auto mx = MxPairFilter::Build(d, mx_opts, &mx_rng);
  auto bs = BitsetSeparationFilter::Build(d, bs_opts, &bs_rng);
  ASSERT_TRUE(mx.ok());
  ASSERT_TRUE(bs.ok());
  ASSERT_EQ(mx->sample_size(), bs->sample_size());

  const size_t m = d.num_attributes();
  Rng qrng(seed ^ 0xABCD);
  std::vector<AttributeSet> queries;
  for (int i = 0; i < 120; ++i) {
    queries.push_back(
        AttributeSet::Random(m, 0.05 + 0.9 * (i % 11) / 10.0, &qrng));
  }
  queries.push_back(AttributeSet(m));       // empty
  queries.push_back(AttributeSet::All(m));  // full

  std::vector<FilterVerdict> mx_batch = mx->QueryBatch(queries, nullptr);
  std::vector<FilterVerdict> bs_batch = bs->QueryBatch(queries, nullptr);
  EXPECT_EQ(mx_batch, bs_batch);
  ThreadPool pool(num_threads);
  EXPECT_EQ(bs->QueryBatch(queries, &pool), mx_batch);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(bs->Query(queries[i]), mx->Query(queries[i])) << i;
    // A bitset witness is some unseparated sampled pair of original
    // rows; when present it must be a genuine counterexample.
    auto witness = bs->QueryWitness(queries[i]);
    ASSERT_EQ(witness.has_value(), mx_batch[i] == FilterVerdict::kReject);
    if (witness.has_value()) {
      std::vector<AttributeIndex> idx = queries[i].ToIndices();
      EXPECT_TRUE(d.RowsAgreeOn(witness->first, witness->second, idx));
    }
  }
}

TEST(BitsetDifferentialTest, QueriesMatchMxFilterAcrossSeedsAndThreads) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    Rng drng(seed * 100 + 3);
    Dataset grid = MakeUniformGridSample(9, 3, 400, &drng);
    for (size_t threads : {2u, 5u}) {
      ExpectFiltersAgree(grid, seed, 700, threads);
      ExpectFiltersAgree(grid, seed + 1, 0, threads);  // paper-size s
    }
    Dataset adultish = AdultishTable(700, seed * 100 + 4);
    ExpectFiltersAgree(adultish, seed, 2000, 3);
  }
}

TEST(BitsetDifferentialTest, WideSchemaUsesMultiWordMasks) {
  // 70 attributes forces two mask words per pair.
  Rng drng(5);
  Dataset d = MakeUniformGridSample(70, 2, 300, &drng);
  BitsetFilterOptions opts;
  opts.eps = 0.01;
  opts.sample_size = 500;
  Rng rng(5);
  auto bs = BitsetSeparationFilter::Build(d, opts, &rng);
  ASSERT_TRUE(bs.ok());
  EXPECT_EQ(bs->evidence().words_per_pair(), 2u);
  ExpectFiltersAgree(d, 6, 500, 4);
}

TEST(BitsetDifferentialTest, MergeDisjointMatchesMxMerge) {
  Dataset d = AdultishTable(600, 99);
  std::vector<RowIndex> left_rows, right_rows;
  for (RowIndex i = 0; i < 300; ++i) left_rows.push_back(i);
  for (RowIndex i = 300; i < 600; ++i) right_rows.push_back(i);
  Dataset left = d.SelectRows(left_rows);
  Dataset right = d.SelectRows(right_rows);

  // Materialized MX filters on each half; the bitset twins pack the
  // same pair tables.
  MxPairFilterOptions mx_opts;
  mx_opts.sample_size = 400;
  mx_opts.materialize = true;
  Rng build_rng(41);
  auto mx_a = MxPairFilter::Build(left, mx_opts, &build_rng);
  auto mx_b = MxPairFilter::Build(right, mx_opts, &build_rng);
  ASSERT_TRUE(mx_a.ok() && mx_b.ok());
  auto bs_a = BitsetSeparationFilter::FromMaterializedPairs(
      Dataset(*mx_a->materialized()));
  auto bs_b = BitsetSeparationFilter::FromMaterializedPairs(
      Dataset(*mx_b->materialized()));
  ASSERT_TRUE(bs_a.ok() && bs_b.ok());

  Rng mx_merge_rng(55), bs_merge_rng(55);
  auto mx_merged =
      MxPairFilter::MergeDisjoint(*mx_a, 300, *mx_b, 300, &mx_merge_rng);
  auto bs_merged = BitsetSeparationFilter::MergeDisjoint(*bs_a, 300, *bs_b,
                                                         300, &bs_merge_rng);
  ASSERT_TRUE(mx_merged.ok());
  ASSERT_TRUE(bs_merged.ok());
  ASSERT_EQ(mx_merged->sample_size(), bs_merged->sample_size());

  Rng qrng(77);
  for (int i = 0; i < 200; ++i) {
    AttributeSet q = AttributeSet::Random(d.num_attributes(), 0.3, &qrng);
    EXPECT_EQ(bs_merged->Query(q), mx_merged->Query(q)) << i;
  }
}

// ---------------------------------------------- pipeline differential

void ExpectSameResult(const PipelineResult& a, const PipelineResult& b) {
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.covered_sample, b.covered_sample);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.pruned_attributes, b.pruned_attributes);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].chosen, b.steps[i].chosen);
    EXPECT_EQ(a.steps[i].gain, b.steps[i].gain);
  }
}

PipelineOptions BackendOptions(FilterBackend backend, size_t threads) {
  PipelineOptions options;
  options.eps = 0.01;
  options.backend = backend;
  options.num_threads = threads;
  return options;
}

TEST(BitsetDifferentialTest, PipelineMatchesMxBackendBitForBit) {
  // Same seed -> same greedy sample and the same sampled pairs, so the
  // pair-backend runs must agree on every stage output.
  for (uint64_t seed : {3u, 17u, 29u}) {
    Dataset d = AdultishTable(900, seed + 1000);
    for (size_t threads : {1u, 4u}) {
      Rng mx_rng(seed), bs_rng(seed);
      auto mx =
          DiscoveryPipeline(BackendOptions(FilterBackend::kMxPair, threads))
              .Run(d, &mx_rng);
      auto bs =
          DiscoveryPipeline(BackendOptions(FilterBackend::kBitset, threads))
              .Run(d, &bs_rng);
      ASSERT_TRUE(mx.ok());
      ASSERT_TRUE(bs.ok());
      ExpectSameResult(*mx, *bs);
      EXPECT_EQ(mx->filter_sample_size, bs->filter_sample_size);
    }
  }
}

TEST(BitsetDifferentialTest, PipelineMatchesTupleWhenAllBackendsAreExact) {
  // Full tuple sample and a saturated pair sample (~64x the pair count
  // of a 48-row table) make all three backends exact filters of the
  // same relation, so the emitted keys must coincide.
  for (uint64_t seed : {2u, 11u}) {
    Dataset d = AdultishTable(48, seed + 2000);
    PipelineOptions base = BackendOptions(FilterBackend::kTupleSample, 2);
    base.sample_size = d.num_rows();
    base.pair_sample_size = 72000;

    PipelineOptions mx = base;
    mx.backend = FilterBackend::kMxPair;
    PipelineOptions bs = base;
    bs.backend = FilterBackend::kBitset;

    Rng r1(seed), r2(seed), r3(seed);
    auto ts_res = DiscoveryPipeline(base).Run(d, &r1);
    auto mx_res = DiscoveryPipeline(mx).Run(d, &r2);
    auto bs_res = DiscoveryPipeline(bs).Run(d, &r3);
    ASSERT_TRUE(ts_res.ok() && mx_res.ok() && bs_res.ok());
    ExpectSameResult(*mx_res, *bs_res);
    EXPECT_EQ(bs_res->key, ts_res->key);
    EXPECT_EQ(bs_res->verdict, ts_res->verdict);
  }
}

// ----------------------------------------------- sharded differential

TEST(BitsetDifferentialTest, RunShardedMatchesMxBackend) {
  Dataset d = AdultishTable(1200, 31);
  for (size_t shards : {1u, 3u, 5u}) {
    ShardedRunOptions sharded;
    sharded.num_shards = shards;
    auto mx = DiscoveryPipeline(BackendOptions(FilterBackend::kMxPair, 2))
                  .RunSharded(d, sharded, 71);
    auto bs = DiscoveryPipeline(BackendOptions(FilterBackend::kBitset, 2))
                  .RunSharded(d, sharded, 71);
    ASSERT_TRUE(mx.ok());
    ASSERT_TRUE(bs.ok());
    EXPECT_EQ(bs->num_shards, shards);
    ExpectSameResult(*mx, *bs);
  }
}

TEST(BitsetDifferentialTest, RunShardedAllBackendsAgreeWhenExact) {
  // Tiny relation, full per-shard tuple samples, saturated pair slots:
  // every backend's merged filter is exact, so the sharded frontier is
  // backend-independent.
  Dataset d = AdultishTable(60, 83);
  ShardedRunOptions sharded;
  sharded.num_shards = 3;
  PipelineOptions base = BackendOptions(FilterBackend::kTupleSample, 2);
  base.sample_size = d.num_rows();
  base.pair_sample_size = 60000;
  PipelineOptions mx = base;
  mx.backend = FilterBackend::kMxPair;
  PipelineOptions bs = base;
  bs.backend = FilterBackend::kBitset;

  auto ts_res = DiscoveryPipeline(base).RunSharded(d, sharded, 5);
  auto mx_res = DiscoveryPipeline(mx).RunSharded(d, sharded, 5);
  auto bs_res = DiscoveryPipeline(bs).RunSharded(d, sharded, 5);
  ASSERT_TRUE(ts_res.ok() && mx_res.ok() && bs_res.ok());
  ExpectSameResult(*mx_res, *bs_res);
  EXPECT_EQ(bs_res->key, ts_res->key);
  EXPECT_EQ(bs_res->verdict, ts_res->verdict);
}

TEST(BitsetDifferentialTest, ShardArtifactsRoundTripWithBitsetBackend) {
  Dataset d = AdultishTable(500, 47);
  PipelineOptions options = BackendOptions(FilterBackend::kBitset, 1);
  options.sample_size = 64;
  options.pair_sample_size = 500;

  ShardedBuildOptions build;
  build.backend = FilterBackend::kBitset;
  build.eps = options.eps;
  build.tuple_sample_size = 64;
  build.pair_slots = 500;
  build.num_shards = 3;
  build.seed = 5;
  auto artifacts = BuildShardArtifacts(d, build);
  ASSERT_TRUE(artifacts.ok());
  ASSERT_EQ(artifacts->size(), 3u);

  // Serialize/deserialize every artifact (version-2 payloads carrying
  // the bitset backend byte and a pair table) and finish discovery
  // from the copies.
  std::vector<ShardFilterArtifact> restored;
  for (const ShardFilterArtifact& artifact : *artifacts) {
    EXPECT_EQ(artifact.backend, FilterBackend::kBitset);
    EXPECT_GT(artifact.pair_table.num_rows(), 0u);
    std::string bytes = SerializeShardArtifact(artifact);
    auto back = DeserializeShardArtifact(bytes);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->backend, FilterBackend::kBitset);
    restored.push_back(std::move(back).ValueOrDie());
  }
  auto direct = DiscoveryPipeline(options).RunOnShardArtifacts(
      std::move(artifacts).ValueOrDie(), 13);
  auto roundtrip =
      DiscoveryPipeline(options).RunOnShardArtifacts(std::move(restored), 13);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(roundtrip.ok());
  ExpectSameResult(*direct, *roundtrip);
}

// ----------------------------------------------- monitor differential

/// Drives two monitors through one interleaved insert/erase stream and
/// asserts snapshot equality at every epoch (or at checkpoints).
void ExpectMonitorsTrackEachOther(const MonitorOptions& a_opts,
                                  const MonitorOptions& b_opts, uint64_t seed,
                                  bool compare_every_step, int steps = 160) {
  const size_t m = 6;
  auto a = KeyMonitor::Make(Schema::Anonymous(m), a_opts, seed);
  auto b = KeyMonitor::Make(Schema::Anonymous(m), b_opts, seed);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  Rng stream_rng(seed * 31 + 7);
  std::vector<Row> live;
  for (int step = 0; step < steps; ++step) {
    if (live.size() > 10 && stream_rng.Uniform(3) == 0) {
      size_t victim = stream_rng.Uniform(live.size());
      ASSERT_TRUE((*a)->Erase(live[victim]).ok());
      ASSERT_TRUE((*b)->Erase(live[victim]).ok());
      live.erase(live.begin() + victim);
    } else {
      Row row(m);
      for (size_t j = 0; j < m; ++j) {
        row[j] = static_cast<ValueCode>(stream_rng.Uniform(3));
      }
      ASSERT_TRUE((*a)->Insert(row).ok());
      ASSERT_TRUE((*b)->Insert(row).ok());
      live.push_back(std::move(row));
    }
    if (compare_every_step || step % 20 == 19 || step == steps - 1) {
      auto sa = (*a)->Snapshot();
      auto sb = (*b)->Snapshot();
      ASSERT_EQ(sa->minimal_keys(), sb->minimal_keys()) << "step " << step;
      // Sample sizes are comparable only within one sampling scheme
      // (pair slots vs tuples).
      if (IsPairSampledBackend(a_opts.backend) ==
          IsPairSampledBackend(b_opts.backend)) {
        EXPECT_EQ(sa->filter_sample_size, sb->filter_sample_size);
      }
    }
  }
  // Event-for-event equality only holds when the two monitors agree at
  // every epoch (sampling differences can flicker transiently between
  // checkpoints even when the checkpoints themselves coincide).
  if (compare_every_step) {
    EXPECT_EQ((*a)->events().size(), (*b)->events().size());
  }
}

TEST(BitsetDifferentialTest, MonitorMatchesMxBackendSampledMode) {
  // Genuinely sampled pair slots; bit-identical slot churn -> the two
  // monitors must agree at EVERY epoch.
  for (uint64_t seed : {4u, 13u, 27u}) {
    MonitorOptions mx;
    mx.eps = 0.01;
    mx.backend = FilterBackend::kMxPair;
    mx.pair_sample_size = 64;
    mx.max_key_size = 6;
    MonitorOptions bitset = mx;
    bitset.backend = FilterBackend::kBitset;
    ExpectMonitorsTrackEachOther(mx, bitset, seed, true);
  }
}

TEST(BitsetDifferentialTest, MonitorMatchesTupleBackendWhenBothAreExact) {
  // Exact tuple window vs a saturated bitset pair sample: ~40 live
  // rows have < 800 pairs; 20k slots miss any one of them with
  // probability ~e^-25 per pair, so for this fixed seed the frontiers
  // coincide. (Shorter stream: pair backends churn ~2s/n slots per
  // update.)
  MonitorOptions tuple;
  tuple.eps = 0.01;
  tuple.sample_size = 1u << 30;
  tuple.max_key_size = 6;
  MonitorOptions bitset;
  bitset.eps = 0.01;
  bitset.backend = FilterBackend::kBitset;
  bitset.pair_sample_size = 20000;
  bitset.max_key_size = 6;
  ExpectMonitorsTrackEachOther(tuple, bitset, 21, false, 60);
}

// ----------------------------------- deterministic across thread counts

TEST(BitsetDifferentialTest, ShardedBitsetDeterministicAcrossThreads) {
  Dataset d = AdultishTable(800, 61);
  ShardedRunOptions sharded;
  sharded.num_shards = 4;
  auto serial = DiscoveryPipeline(BackendOptions(FilterBackend::kBitset, 1))
                    .RunSharded(d, sharded, 19);
  auto parallel = DiscoveryPipeline(BackendOptions(FilterBackend::kBitset, 6))
                      .RunSharded(d, sharded, 19);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectSameResult(*serial, *parallel);
}

}  // namespace
}  // namespace qikey
