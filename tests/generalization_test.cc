#include <gtest/gtest.h>

#include <numeric>

#include "core/anonymity.h"
#include "core/generalization.h"
#include "data/dataset_builder.h"
#include "data/generators/tabular.h"
#include "data/hierarchy.h"
#include "util/rng.h"

namespace qikey {
namespace {

// -------------------------------------------------------------- hierarchy

TEST(HierarchyTest, IntervalsShape) {
  GeneralizationHierarchy h = GeneralizationHierarchy::Intervals(100, 10);
  // 100 -> 10 -> 1: levels 0,1,2.
  EXPECT_EQ(h.levels(), 3u);
  EXPECT_EQ(h.CardinalityAt(0), 100u);
  EXPECT_EQ(h.CardinalityAt(1), 10u);
  EXPECT_EQ(h.CardinalityAt(2), 1u);
  EXPECT_EQ(h.Generalize(37, 0), 37u);
  EXPECT_EQ(h.Generalize(37, 1), 3u);
  EXPECT_EQ(h.Generalize(37, 2), 0u);
}

TEST(HierarchyTest, IntervalsNonPowerDomain) {
  GeneralizationHierarchy h = GeneralizationHierarchy::Intervals(7, 2);
  // 7 -> 4 -> 2 -> 1.
  EXPECT_EQ(h.levels(), 4u);
  EXPECT_EQ(h.CardinalityAt(1), 4u);
  EXPECT_EQ(h.Generalize(6, 1), 3u);
  EXPECT_EQ(h.Generalize(6, 3), 0u);
}

TEST(HierarchyTest, KeepOrSuppress) {
  GeneralizationHierarchy h = GeneralizationHierarchy::KeepOrSuppress(42);
  EXPECT_EQ(h.levels(), 2u);
  EXPECT_EQ(h.CardinalityAt(1), 1u);
  EXPECT_EQ(h.Generalize(41, 1), 0u);
}

TEST(HierarchyTest, MakeValidatesMaps) {
  // Map length must match the previous domain.
  auto bad = GeneralizationHierarchy::Make(3, {{0, 0}});
  EXPECT_FALSE(bad.ok());
  // Growth is forbidden.
  auto growing = GeneralizationHierarchy::Make(2, {{0, 3}});
  EXPECT_FALSE(growing.ok());
  // A valid custom hierarchy.
  auto ok = GeneralizationHierarchy::Make(4, {{0, 0, 1, 1}, {0, 0}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->levels(), 3u);
  EXPECT_EQ(ok->Generalize(3, 1), 1u);
  EXPECT_EQ(ok->Generalize(3, 2), 0u);
}

TEST(HierarchyTest, GeneralizeColumnMergesClasses) {
  Column c({0, 1, 2, 3, 4, 5, 6, 7}, 8);
  GeneralizationHierarchy h = GeneralizationHierarchy::Intervals(8, 2);
  Column g1 = h.GeneralizeColumn(c, 1);
  EXPECT_EQ(g1.cardinality(), 4u);
  EXPECT_EQ(g1.code(0), g1.code(1));
  EXPECT_NE(g1.code(1), g1.code(2));
  Column top = h.GeneralizeColumn(c, 3);
  for (size_t r = 0; r < top.size(); ++r) EXPECT_EQ(top.code(r), 0u);
}

// ---------------------------------------------------------- generalization

Dataset AgesAndZips() {
  // 12 rows; ages 0..11 all distinct, zips in two groups.
  std::vector<ValueCode> ages(12), zips(12);
  std::iota(ages.begin(), ages.end(), 0u);
  for (int i = 0; i < 12; ++i) zips[i] = static_cast<ValueCode>(i % 4);
  return Dataset(Schema({"age", "zip"}),
                 {Column(std::move(ages), 12), Column(std::move(zips), 4)});
}

TEST(GeneralizationTest, ApplyRewritesOnlyQiColumns) {
  Dataset d = AgesAndZips();
  std::vector<AttributeIndex> qi{0};
  std::vector<GeneralizationHierarchy> h{
      GeneralizationHierarchy::Intervals(12, 3)};
  auto g = ApplyGeneralization(d, qi, h, {1});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->column(0).cardinality(), 4u);
  EXPECT_EQ(g->code(0, 1), d.code(0, 1));  // zip untouched
}

TEST(GeneralizationTest, ApplyValidatesArguments) {
  Dataset d = AgesAndZips();
  std::vector<GeneralizationHierarchy> h{
      GeneralizationHierarchy::Intervals(12, 3)};
  EXPECT_FALSE(ApplyGeneralization(d, {0, 1}, h, {1}).ok());
  EXPECT_FALSE(ApplyGeneralization(d, {0}, h, {9}).ok());
  EXPECT_FALSE(ApplyGeneralization(d, {5}, h, {0}).ok());
}

TEST(GeneralizationTest, FindsMinimalKAnonymousVector) {
  Dataset d = AgesAndZips();
  std::vector<AttributeIndex> qi{0, 1};
  std::vector<GeneralizationHierarchy> h{
      GeneralizationHierarchy::Intervals(12, 3),   // 12->4->2->1
      GeneralizationHierarchy::Intervals(4, 2)};   // 4->2->1
  GeneralizationOptions opts;
  opts.k = 3;
  auto result = FindMinimalGeneralization(d, qi, h, opts);
  ASSERT_TRUE(result.ok());
  // Verify from first principles: the returned vector achieves k = 3.
  auto g = ApplyGeneralization(d, qi, h, result->levels);
  ASSERT_TRUE(g.ok());
  AttributeSet qi_set = AttributeSet::FromIndices(2, {0, 1});
  EXPECT_GE(AnonymityLevel(*g, qi_set), 3u);
  EXPECT_EQ(result->anonymity_level, AnonymityLevel(*g, qi_set));
  // And minimality: lowering any coordinate breaks it.
  for (size_t i = 0; i < result->levels.size(); ++i) {
    if (result->levels[i] == 0) continue;
    GeneralizationVector lower = result->levels;
    --lower[i];
    auto g2 = ApplyGeneralization(d, qi, h, lower);
    ASSERT_TRUE(g2.ok());
    EXPECT_LT(AnonymityLevel(*g2, qi_set), 3u)
        << "coordinate " << i << " was not needed";
  }
}

TEST(GeneralizationTest, SuppressionSlackLowersTheLevels) {
  Rng rng(7);
  TabularSpec spec;
  spec.num_rows = 2000;
  spec.attributes = {{"age", 90, 0.4, -1, 0.0}, {"zip", 100, 0.7, -1, 0.0}};
  Dataset d = MakeTabular(spec, &rng);
  std::vector<AttributeIndex> qi{0, 1};
  std::vector<GeneralizationHierarchy> h{
      GeneralizationHierarchy::Intervals(90, 3),
      GeneralizationHierarchy::Intervals(100, 5)};
  GeneralizationOptions strict;
  strict.k = 5;
  GeneralizationOptions slack = strict;
  slack.max_suppression = 0.05;
  auto strict_r = FindMinimalGeneralization(d, qi, h, strict);
  auto slack_r = FindMinimalGeneralization(d, qi, h, slack);
  ASSERT_TRUE(strict_r.ok() && slack_r.ok());
  uint32_t strict_sum = std::accumulate(strict_r->levels.begin(),
                                        strict_r->levels.end(), 0u);
  uint32_t slack_sum = std::accumulate(slack_r->levels.begin(),
                                       slack_r->levels.end(), 0u);
  EXPECT_LE(slack_sum, strict_sum);
  EXPECT_LE(slack_r->suppressed, 0.05 + 1e-12);
}

TEST(GeneralizationTest, K1IsAlwaysTheBottom) {
  Dataset d = AgesAndZips();
  std::vector<AttributeIndex> qi{0};
  std::vector<GeneralizationHierarchy> h{
      GeneralizationHierarchy::Intervals(12, 3)};
  GeneralizationOptions opts;
  opts.k = 1;
  auto result = FindMinimalGeneralization(d, qi, h, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->levels, GeneralizationVector{0});
}

TEST(GeneralizationTest, BudgetExhaustionReported) {
  Rng rng(8);
  TabularSpec spec;
  spec.num_rows = 200;
  spec.attributes = {};
  for (int j = 0; j < 8; ++j) {
    // += instead of "c" + to_string: gcc 12 -Wrestrict FP (PR105651).
    std::string name = "c";
    name += std::to_string(j);
    spec.attributes.push_back({std::move(name), 64, 0.0, -1, 0.0});
  }
  Dataset d = MakeTabular(spec, &rng);
  std::vector<AttributeIndex> qi;
  std::vector<GeneralizationHierarchy> h;
  for (AttributeIndex j = 0; j < 8; ++j) {
    qi.push_back(j);
    h.push_back(GeneralizationHierarchy::Intervals(64, 2));
  }
  GeneralizationOptions opts;
  opts.k = 200;  // forces deep search
  opts.max_nodes = 10;
  auto result = FindMinimalGeneralization(d, qi, h, opts);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace qikey
