#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/mx_pair_filter.h"
#include "core/separation.h"
#include "core/tuple_sample_filter.h"
#include "data/generators/planted_clique.h"
#include "data/generators/tabular.h"
#include "data/generators/uniform_grid.h"
#include "math/collision.h"
#include "util/rng.h"

namespace qikey {
namespace {

/// Cross-cutting invariants checked over parameter sweeps. These encode
/// the paper's correctness contracts rather than specific outputs.

// --------------------------------------------------------------------------
// Invariant 1 (completeness, deterministic): for ANY data set, sample,
// and query, a key is accepted — a key separates every pair of the
// original data, hence every retained pair/tuple-pair.
// --------------------------------------------------------------------------

class CompletenessTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CompletenessTest, KeysAlwaysAccepted) {
  auto [n, m, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  // Data with a guaranteed key: planted clique includes index digits.
  PlantedCliqueOptions opts;
  opts.num_rows = static_cast<uint64_t>(n);
  opts.num_attributes = static_cast<uint32_t>(m);
  opts.epsilon = 0.02;
  Dataset d = MakePlantedClique(opts, &rng);
  AttributeSet key = AttributeSet::All(m);
  ASSERT_TRUE(IsKey(d, key));

  for (uint64_t sample_size : {2ull, 10ull, 50ull}) {
    TupleSampleFilterOptions ts;
    ts.eps = 0.02;
    ts.sample_size = sample_size;
    auto f = TupleSampleFilter::Build(d, ts, &rng);
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(f->Query(key), FilterVerdict::kAccept);

    MxPairFilterOptions mx;
    mx.eps = 0.02;
    mx.sample_size = sample_size;
    auto g = MxPairFilter::Build(d, mx, &rng);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->Query(key), FilterVerdict::kAccept);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompletenessTest,
    ::testing::Combine(::testing::Values(500, 2000),
                       ::testing::Values(3, 6),
                       ::testing::Values(1, 2, 3)));

// --------------------------------------------------------------------------
// Invariant 2 (anti-monotonicity of rejection): if B ⊆ A and the filter
// rejects A, it must reject B on the same sample (B separates a subset
// of what A separates).
// --------------------------------------------------------------------------

class AntiMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(AntiMonotoneTest, SubsetsOfRejectedAreRejected) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  Dataset d = MakeUniformGridSample(8, 3, 600, &rng);
  TupleSampleFilterOptions ts;
  ts.eps = 0.02;
  ts.sample_size = 120;
  auto f = TupleSampleFilter::Build(d, ts, &rng);
  ASSERT_TRUE(f.ok());
  Rng qrng(GetParam() + 500);
  for (int t = 0; t < 60; ++t) {
    AttributeSet a = AttributeSet::Random(8, 0.5, &qrng);
    if (f->Query(a) == FilterVerdict::kReject) {
      AttributeSet b = a;
      // Drop one random member if possible.
      auto idx = a.ToIndices();
      if (!idx.empty()) {
        b.Remove(idx[qrng.Uniform(idx.size())]);
        EXPECT_EQ(f->Query(b), FilterVerdict::kReject);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AntiMonotoneTest, ::testing::Range(1, 7));

// --------------------------------------------------------------------------
// Invariant 3 (soundness is statistical and calibrated): on the Lemma 4
// hard instance, the miss probability of the tuple filter at sample size
// r matches the closed-form non-collision probability of the planted
// profile within Monte-Carlo error.
// --------------------------------------------------------------------------

class CalibrationTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(CalibrationTest, MissRateMatchesClosedForm) {
  auto [r, eps] = GetParam();
  Rng rng(99);
  PlantedCliqueOptions opts;
  opts.num_rows = 4000;
  opts.num_attributes = 3;
  opts.epsilon = eps;
  Dataset d = MakePlantedClique(opts, &rng);
  AttributeSet bad = AttributeSet::FromIndices(3, {0});

  // Closed form: profile = one clique of size `c`, singletons elsewhere;
  // sampling r tuples without replacement misses iff < 2 land in the
  // clique.
  uint64_t clique = PlantedCliqueSize(opts.num_rows, eps);
  std::vector<double> profile;
  profile.push_back(static_cast<double>(clique));
  profile.insert(profile.end(), opts.num_rows - clique, 1.0);
  double p_miss = std::exp(LogNonCollisionWithoutReplacement(
      profile, static_cast<uint64_t>(r)));

  constexpr int kTrials = 400;
  int misses = 0;
  for (int t = 0; t < kTrials; ++t) {
    TupleSampleFilterOptions ts;
    ts.eps = eps;
    ts.sample_size = static_cast<uint64_t>(r);
    auto f = TupleSampleFilter::Build(d, ts, &rng);
    ASSERT_TRUE(f.ok());
    misses += (f->Query(bad) == FilterVerdict::kAccept);
  }
  double observed = static_cast<double>(misses) / kTrials;
  double sigma = std::sqrt(p_miss * (1 - p_miss) / kTrials) + 0.01;
  EXPECT_NEAR(observed, p_miss, 5 * sigma)
      << "r=" << r << " eps=" << eps << " clique=" << clique;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CalibrationTest,
    ::testing::Values(std::make_tuple(5, 0.01), std::make_tuple(15, 0.01),
                      std::make_tuple(30, 0.01), std::make_tuple(10, 0.05),
                      std::make_tuple(25, 0.05)));

// --------------------------------------------------------------------------
// Invariant 4: MX pair filter rejection probability for a bad set is
// 1 - (1 - Γ/C(n,2))^s exactly; check calibration on a two-group data
// set where Γ is known in closed form.
// --------------------------------------------------------------------------

class MxCalibrationTest : public ::testing::TestWithParam<int> {};

TEST_P(MxCalibrationTest, MissRateMatchesClosedForm) {
  const int s = GetParam();
  Rng rng(7);
  // Binary attribute on 100 rows, 50/50: Γ = 2*C(50,2) = 2450 of 4950.
  TabularSpec spec;
  spec.num_rows = 100;
  spec.attributes = {{"bit", 2, 0.0, -1, 0.0}};
  Dataset d = MakeTabular(spec, &rng);
  AttributeSet a = AttributeSet::FromIndices(1, {0});
  double gamma = static_cast<double>(ExactUnseparatedPairs(d, a));
  double p_hit_per_pair = gamma / static_cast<double>(d.num_pairs());
  double p_miss = std::pow(1.0 - p_hit_per_pair, s);

  constexpr int kTrials = 600;
  int misses = 0;
  for (int t = 0; t < kTrials; ++t) {
    MxPairFilterOptions mx;
    mx.eps = 0.5;
    mx.sample_size = static_cast<uint64_t>(s);
    auto f = MxPairFilter::Build(d, mx, &rng);
    ASSERT_TRUE(f.ok());
    misses += (f->Query(a) == FilterVerdict::kAccept);
  }
  double observed = static_cast<double>(misses) / kTrials;
  double sigma = std::sqrt(p_miss * (1 - p_miss) / kTrials) + 0.01;
  EXPECT_NEAR(observed, p_miss, 5 * sigma) << "s=" << s;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MxCalibrationTest,
                         ::testing::Values(1, 2, 4, 8));

// --------------------------------------------------------------------------
// Invariant 5: the tuple filter needs ~sqrt(eps) factor fewer samples
// than the pair filter for the same power on uniform data — the
// headline of Theorem 1. We verify the ordering empirically.
// --------------------------------------------------------------------------

TEST(SampleEfficiencyTest, TupleFilterDetectsWithFarFewerSamples) {
  Rng rng(21);
  Dataset d = MakeUniformGridSample(4, 100, 20000, &rng);
  // Singleton {0}: Γ ≈ C(n,2)/100, i.e. eps ≈ 0.01-bad.
  AttributeSet bad = AttributeSet::FromIndices(4, {0});
  const double eps = 0.005;
  ASSERT_EQ(Classify(d, bad, eps), SeparationClass::kBad);

  // r = 80 tuples -> C(80,2)=3160 implicit pairs, detection whp.
  int tuple_detects = 0, pair_detects = 0;
  constexpr int kTrials = 25;
  for (int t = 0; t < kTrials; ++t) {
    TupleSampleFilterOptions ts;
    ts.eps = eps;
    ts.sample_size = 80;
    auto f = TupleSampleFilter::Build(d, ts, &rng);
    ASSERT_TRUE(f.ok());
    tuple_detects += (f->Query(bad) == FilterVerdict::kReject);

    MxPairFilterOptions mx;
    mx.eps = eps;
    mx.sample_size = 80;  // same budget in samples
    auto g = MxPairFilter::Build(d, mx, &rng);
    ASSERT_TRUE(g.ok());
    pair_detects += (g->Query(bad) == FilterVerdict::kReject);
  }
  // 80 pairs at hit rate ~1% -> ~55% detection; 80 tuples -> ~100%.
  EXPECT_EQ(tuple_detects, kTrials);
  EXPECT_LT(pair_detects, kTrials);
}

}  // namespace
}  // namespace qikey
