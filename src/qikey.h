#ifndef QIKEY_QIKEY_H_
#define QIKEY_QIKEY_H_

/// \file qikey.h
/// \brief Umbrella header for the qikey library: quasi-identifier
/// discovery with the improved sampling bounds of
/// "Towards Better Bounds for Finding Quasi-Identifiers" (PODS 2023).
///
/// Typical usage (low-level filter API):
///
///     qikey::Rng rng(42);
///     auto dataset = qikey::LoadCsvDataset("people.csv").ValueOrDie();
///     qikey::TupleSampleFilterOptions opts{.eps = 0.001};
///     auto filter =
///         qikey::TupleSampleFilter::Build(dataset, opts, &rng).ValueOrDie();
///     qikey::AttributeSet qi = ...;
///     if (filter.Query(qi) == qikey::FilterVerdict::kReject) { ... }
///
/// Or run the whole paper workflow — sample, filter, thread-parallel
/// greedy, batched minimization, verify — through `engine/pipeline.h`:
///
///     qikey::PipelineOptions popts;
///     popts.eps = 0.001;
///     popts.num_threads = 0;  // one worker per hardware thread
///     auto report = qikey::DiscoveryPipeline(popts).Run(dataset, &rng);
///
/// Batched candidate evaluation (`SeparationFilter::QueryBatch`,
/// `EnumerateMinimalAcceptedSets`) fans filter queries out over a
/// `ThreadPool` with answers identical to one `Query` per set.

#include "core/afd.h"
#include "core/anonymity.h"
#include "core/attribute_set.h"
#include "core/bitset_filter.h"
#include "core/bruteforce.h"
#include "core/evidence_block.h"
#include "core/filter.h"
#include "core/generalization.h"
#include "core/key_enumeration.h"
#include "core/masking.h"
#include "core/minkey.h"
#include "core/mx_pair_filter.h"
#include "core/refine_engine.h"
#include "core/sample_bounds.h"
#include "core/separation.h"
#include "core/sketch.h"
#include "core/theory.h"
#include "core/tuple_sample_filter.h"
#include "data/concat.h"
#include "data/csv_loader.h"
#include "data/dataset.h"
#include "data/dataset_builder.h"
#include "data/generators/encoding_lb.h"
#include "data/generators/planted_clique.h"
#include "data/generators/tabular.h"
#include "data/generators/uniform_grid.h"
#include "data/hierarchy.h"
#include "data/partition.h"
#include "data/serialize.h"
#include "data/statistics.h"
#include "engine/pipeline.h"
#include "math/birthday.h"
#include "math/chernoff.h"
#include "math/collision.h"
#include "math/combinatorics.h"
#include "math/kkt.h"
#include "math/sympoly.h"
#include "monitor/incremental_filter.h"
#include "monitor/key_monitor.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "serve/conn.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/request.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/verdict_cache.h"
#include "setcover/set_cover.h"
#include "shard/filter_merger.h"
#include "shard/shard_artifact.h"
#include "shard/shard_builder.h"
#include "shard/sharded_loader.h"
#include "stream/pair_reservoir.h"
#include "stream/reservoir.h"
#include "stream/stream_builder.h"
#include "util/csv.h"
#include "util/jsonw.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

#endif  // QIKEY_QIKEY_H_
