#include <algorithm>
#include <bit>

#include "setcover/set_cover.h"
#include "util/logging.h"

namespace qikey {

namespace {

/// Depth-limited search: returns true and fills `chosen` if a cover of
/// size <= budget exists extending the current coverage.
bool Search(const SetCoverInstance& instance, std::vector<uint64_t>* covered,
            uint32_t budget, std::vector<uint32_t>* chosen) {
  // Find the first uncovered element.
  size_t uncovered_element = instance.universe_size();
  for (size_t w = 0; w < covered->size(); ++w) {
    uint64_t missing = ~(*covered)[w];
    if (w == covered->size() - 1 && instance.universe_size() % 64 != 0) {
      missing &= (uint64_t{1} << (instance.universe_size() % 64)) - 1;
    }
    if (missing != 0) {
      uncovered_element = w * 64 + static_cast<size_t>(std::countr_zero(missing));
      break;
    }
  }
  if (uncovered_element >= instance.universe_size()) return true;  // covered
  if (budget == 0) return false;
  // Branch on the sets that contain the uncovered element.
  for (size_t s = 0; s < instance.num_sets(); ++s) {
    if (!instance.Contains(s, uncovered_element)) continue;
    std::vector<uint64_t> next = *covered;
    instance.CoverWith(s, &next);
    chosen->push_back(static_cast<uint32_t>(s));
    if (Search(instance, &next, budget - 1, chosen)) return true;
    chosen->pop_back();
  }
  return false;
}

}  // namespace

Result<std::vector<uint32_t>> ExactSetCover(const SetCoverInstance& instance,
                                            uint32_t max_size) {
  for (uint32_t budget = 0; budget <= max_size; ++budget) {
    std::vector<uint64_t> covered(instance.words_per_set(), 0);
    std::vector<uint32_t> chosen;
    if (Search(instance, &covered, budget, &chosen)) {
      return chosen;
    }
  }
  return Status::NotFound("no set cover within the requested size bound");
}

}  // namespace qikey
