#ifndef QIKEY_SETCOVER_SET_COVER_H_
#define QIKEY_SETCOVER_SET_COVER_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace qikey {

/// \brief A set cover instance over a ground set `{0, ..., N-1}`.
///
/// Sets are stored as bitsets (packed 64-bit words) for fast
/// coverage-count updates — the reduction of minimum-key finding
/// (Motwani–Xu) produces one set per attribute whose elements are the
/// sampled pairs that attribute separates.
class SetCoverInstance {
 public:
  SetCoverInstance(size_t universe_size, size_t num_sets);

  size_t universe_size() const { return universe_size_; }
  size_t num_sets() const { return sets_.size(); }

  /// Adds element `e` to set `s`.
  void Add(size_t set, size_t element);
  bool Contains(size_t set, size_t element) const;

  /// Number of elements of `set` not yet covered, given `covered` (a
  /// bitset of the same word count as the universe).
  uint64_t CountUncovered(size_t set,
                          const std::vector<uint64_t>& covered) const;

  /// ORs `set` into `covered`.
  void CoverWith(size_t set, std::vector<uint64_t>* covered) const;

  size_t words_per_set() const { return words_; }
  const std::vector<uint64_t>& set_bits(size_t set) const {
    return sets_[set];
  }

 private:
  size_t universe_size_;
  size_t words_;
  std::vector<std::vector<uint64_t>> sets_;
};

struct SetCoverResult {
  /// Chosen set indices in selection order.
  std::vector<uint32_t> chosen;
  /// Whether the union of all sets covers the universe (if not, `chosen`
  /// covers as much as possible and `uncovered > 0`).
  bool complete = false;
  uint64_t uncovered = 0;
};

/// \brief Greedy set cover (Algorithm 2): repeatedly picks the set
/// covering the most uncovered elements. `(ln N + 1)`-approximate;
/// `O(num_sets^2 * N / 64)` worst case with the bitset representation.
SetCoverResult GreedySetCover(const SetCoverInstance& instance);

/// \brief Exact minimum set cover by iterative-deepening branch and
/// bound (branches on an uncovered element, tries only sets containing
/// it). Exponential; intended for small instances (tests, γ=1 studies).
/// Fails with NotFound if no cover of size <= `max_size` exists.
Result<std::vector<uint32_t>> ExactSetCover(const SetCoverInstance& instance,
                                            uint32_t max_size);

}  // namespace qikey

#endif  // QIKEY_SETCOVER_SET_COVER_H_
