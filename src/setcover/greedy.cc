#include <bit>

#include "setcover/set_cover.h"
#include "util/logging.h"

namespace qikey {

SetCoverInstance::SetCoverInstance(size_t universe_size, size_t num_sets)
    : universe_size_(universe_size),
      words_((universe_size + 63) / 64),
      sets_(num_sets, std::vector<uint64_t>(words_, 0)) {}

void SetCoverInstance::Add(size_t set, size_t element) {
  QIKEY_DCHECK(set < sets_.size() && element < universe_size_);
  sets_[set][element / 64] |= uint64_t{1} << (element % 64);
}

bool SetCoverInstance::Contains(size_t set, size_t element) const {
  return (sets_[set][element / 64] >> (element % 64)) & 1;
}

uint64_t SetCoverInstance::CountUncovered(
    size_t set, const std::vector<uint64_t>& covered) const {
  const std::vector<uint64_t>& bits = sets_[set];
  uint64_t count = 0;
  for (size_t w = 0; w < words_; ++w) {
    count += static_cast<uint64_t>(std::popcount(bits[w] & ~covered[w]));
  }
  return count;
}

void SetCoverInstance::CoverWith(size_t set,
                                 std::vector<uint64_t>* covered) const {
  const std::vector<uint64_t>& bits = sets_[set];
  for (size_t w = 0; w < words_; ++w) (*covered)[w] |= bits[w];
}

namespace {

uint64_t CountCovered(const std::vector<uint64_t>& covered) {
  uint64_t count = 0;
  for (uint64_t w : covered) count += static_cast<uint64_t>(std::popcount(w));
  return count;
}

}  // namespace

SetCoverResult GreedySetCover(const SetCoverInstance& instance) {
  SetCoverResult result;
  const size_t universe = instance.universe_size();
  std::vector<uint64_t> covered(instance.words_per_set(), 0);
  uint64_t covered_count = 0;
  std::vector<bool> used(instance.num_sets(), false);
  while (covered_count < universe) {
    size_t best_set = instance.num_sets();
    uint64_t best_gain = 0;
    for (size_t s = 0; s < instance.num_sets(); ++s) {
      if (used[s]) continue;
      uint64_t gain = instance.CountUncovered(s, covered);
      if (gain > best_gain) {
        best_gain = gain;
        best_set = s;
      }
    }
    if (best_set == instance.num_sets()) break;  // nothing else coverable
    used[best_set] = true;
    instance.CoverWith(best_set, &covered);
    covered_count += best_gain;
    result.chosen.push_back(static_cast<uint32_t>(best_set));
  }
  covered_count = CountCovered(covered);
  result.complete = covered_count >= universe;
  result.uncovered = universe - covered_count;
  return result;
}

}  // namespace qikey
