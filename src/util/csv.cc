#include "util/csv.h"

#include <fstream>
#include <sstream>
#include <utility>

namespace qikey {

namespace {

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

bool NeedsQuoting(std::string_view field, const CsvOptions& options) {
  for (char c : field) {
    if (c == options.delimiter || c == options.quote || c == '\n' || c == '\r') {
      return true;
    }
  }
  // Whitespace at either edge would be eaten by trim_whitespace on the
  // way back in; quote it so values round-trip.
  if (!field.empty() &&
      (field.front() == ' ' || field.front() == '\t' || field.back() == ' ' ||
       field.back() == '\t')) {
    return true;
  }
  return false;
}

}  // namespace

bool CsvRecordScanner::Feed(char c) {
  if (in_quotes_) {
    if (quote_pending_) {
      quote_pending_ = false;
      if (c == quote_) return false;  // doubled quote, literal; stay quoted
      in_quotes_ = false;             // the pending quote closed the field
      // Fall through: c belongs to the unquoted remainder of the field.
    } else {
      if (c == quote_) {
        quote_pending_ = true;
      } else {
        field_empty_ = false;
      }
      return false;
    }
  }
  if (c == quote_) {
    record_blank_ = false;
    if (field_empty_) {
      in_quotes_ = true;
    } else {
      field_empty_ = false;
    }
    return false;
  }
  if (c == '\n') {
    ResetRecord();
    return true;
  }
  if (c == delimiter_) {
    record_blank_ = false;
    field_empty_ = true;
    return false;
  }
  field_empty_ = false;
  if (c != ' ' && c != '\t' && c != '\r') record_blank_ = false;
  return false;
}

void CsvRecordScanner::ResetRecord() {
  in_quotes_ = false;
  quote_pending_ = false;
  field_empty_ = true;
  record_blank_ = true;
}

std::vector<std::string> SplitCsvLine(std::string_view line,
                                      const CsvOptions& options) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  bool was_quoted = false;
  size_t i = 0;
  auto flush = [&]() {
    if (options.trim_whitespace && !was_quoted) {
      std::string_view t = Trim(current);
      fields.emplace_back(t);
    } else {
      fields.push_back(std::move(current));
    }
    current.clear();
    was_quoted = false;
  };
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == options.quote) {
        if (i + 1 < line.size() && line[i + 1] == options.quote) {
          current.push_back(options.quote);  // doubled quote -> literal
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
      continue;
    }
    if (c == options.quote && current.empty()) {
      in_quotes = true;
      was_quoted = true;
      ++i;
      continue;
    }
    if (c == options.delimiter) {
      flush();
      ++i;
      continue;
    }
    current.push_back(c);
    ++i;
  }
  flush();
  return fields;
}

Result<CsvTable> ParseCsv(std::string_view text, const CsvOptions& options) {
  CsvTable table;
  size_t expected_fields = 0;
  bool saw_first_row = false;
  bool header_pending = options.has_header;
  size_t record_no = 0;

  // Record-at-a-time walk with the quote-aware scanner, so newlines
  // inside quoted fields stay part of their record.
  CsvRecordScanner scanner(options);
  size_t record_start = 0;
  size_t i = 0;
  Status error = Status::OK();
  auto handle_record = [&](std::string_view record, bool blank) -> bool {
    // Strip one trailing \r so CRLF input parses like LF input even for
    // records ending in a quoted field.
    if (!record.empty() && record.back() == '\r') {
      record.remove_suffix(1);
    }
    ++record_no;
    if (blank) return true;
    std::vector<std::string> fields = SplitCsvLine(record, options);
    if (header_pending) {
      table.header = std::move(fields);
      expected_fields = table.header.size();
      header_pending = false;
      return true;
    }
    if (!saw_first_row && expected_fields == 0) {
      expected_fields = fields.size();
    }
    saw_first_row = true;
    if (fields.size() != expected_fields) {
      std::ostringstream msg;
      msg << "CSV record " << record_no << " has " << fields.size()
          << " fields, expected " << expected_fields;
      error = Status::InvalidArgument(msg.str());
      return false;
    }
    table.rows.push_back(std::move(fields));
    return true;
  };
  for (; i < text.size(); ++i) {
    bool blank = scanner.record_blank();
    if (scanner.Feed(text[i])) {
      if (!handle_record(text.substr(record_start, i - record_start), blank)) {
        return error;
      }
      record_start = i + 1;
    }
  }
  if (record_start < text.size()) {  // final record without a newline
    if (!handle_record(text.substr(record_start), scanner.record_blank())) {
      return error;
    }
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), options);
}

std::string WriteCsv(const CsvTable& table, const CsvOptions& options) {
  std::string out;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(options.delimiter);
      // A lone empty field must be quoted or the record reads back as a
      // blank line and is skipped.
      if (NeedsQuoting(row[i], options) || (row.size() == 1 && row[i].empty())) {
        out.push_back(options.quote);
        for (char c : row[i]) {
          if (c == options.quote) out.push_back(options.quote);
          out.push_back(c);
        }
        out.push_back(options.quote);
      } else {
        out += row[i];
      }
    }
    out.push_back('\n');
  };
  if (!table.header.empty()) write_row(table.header);
  for (const auto& row : table.rows) write_row(row);
  return out;
}

}  // namespace qikey
