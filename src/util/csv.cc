#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace qikey {

namespace {

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

bool NeedsQuoting(std::string_view field, const CsvOptions& options) {
  for (char c : field) {
    if (c == options.delimiter || c == options.quote || c == '\n' || c == '\r') {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<std::string> SplitCsvLine(std::string_view line,
                                      const CsvOptions& options) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  bool was_quoted = false;
  size_t i = 0;
  auto flush = [&]() {
    if (options.trim_whitespace && !was_quoted) {
      std::string_view t = Trim(current);
      fields.emplace_back(t);
    } else {
      fields.push_back(current);
    }
    current.clear();
    was_quoted = false;
  };
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == options.quote) {
        if (i + 1 < line.size() && line[i + 1] == options.quote) {
          current.push_back(options.quote);  // doubled quote -> literal
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
      continue;
    }
    if (c == options.quote && current.empty()) {
      in_quotes = true;
      was_quoted = true;
      ++i;
      continue;
    }
    if (c == options.delimiter) {
      flush();
      ++i;
      continue;
    }
    current.push_back(c);
    ++i;
  }
  flush();
  return fields;
}

Result<CsvTable> ParseCsv(std::string_view text, const CsvOptions& options) {
  CsvTable table;
  size_t expected_fields = 0;
  bool saw_first_row = false;
  bool header_pending = options.has_header;
  size_t pos = 0;
  size_t line_no = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line = (nl == std::string_view::npos)
                                ? text.substr(pos)
                                : text.substr(pos, nl - pos);
    pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line, options);
    if (header_pending) {
      table.header = std::move(fields);
      expected_fields = table.header.size();
      header_pending = false;
      continue;
    }
    if (!saw_first_row && expected_fields == 0) {
      expected_fields = fields.size();
    }
    saw_first_row = true;
    if (fields.size() != expected_fields) {
      std::ostringstream msg;
      msg << "CSV line " << line_no << " has " << fields.size()
          << " fields, expected " << expected_fields;
      return Status::InvalidArgument(msg.str());
    }
    table.rows.push_back(std::move(fields));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), options);
}

std::string WriteCsv(const CsvTable& table, const CsvOptions& options) {
  std::string out;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(options.delimiter);
      if (NeedsQuoting(row[i], options)) {
        out.push_back(options.quote);
        for (char c : row[i]) {
          if (c == options.quote) out.push_back(options.quote);
          out.push_back(c);
        }
        out.push_back(options.quote);
      } else {
        out += row[i];
      }
    }
    out.push_back('\n');
  };
  if (!table.header.empty()) write_row(table.header);
  for (const auto& row : table.rows) write_row(row);
  return out;
}

}  // namespace qikey
