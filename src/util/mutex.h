#ifndef QIKEY_UTIL_MUTEX_H_
#define QIKEY_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace qikey {

/// \brief `std::mutex` annotated as a clang thread-safety capability.
///
/// Every mutex in the project goes through this wrapper so the data it
/// protects can be declared `GUARDED_BY(mu_)` and the locking
/// discipline is checked at compile time (see thread_annotations.h).
/// Zero overhead: the wrapper is a plain `std::mutex` plus attributes
/// the optimizer never sees.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief Scoped lock over `Mutex` (the project's `std::lock_guard`).
///
/// Prefer this to manual Lock/Unlock pairs: the analysis proves the
/// release happens on every path, including exceptional ones.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable paired with `qikey::Mutex`.
///
/// `Wait` atomically releases and reacquires the mutex, but from the
/// analysis' point of view the capability is held across the call
/// (`REQUIRES`) — the guarded state may have changed, which is why
/// every wait site spells its predicate as an explicit
/// `while (!cond) cv.Wait(mu);` loop over `GUARDED_BY` data instead of
/// passing a predicate lambda (a lambda body is analyzed as a separate
/// unannotated function and would defeat the checking).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible — always wait in
  /// a predicate loop). The caller must hold `mu`.
  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait;
    // `release()` hands ownership back without unlocking, so the
    // capability is genuinely held again when Wait returns.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Like `Wait`, returning false if `timeout` elapsed first.
  template <class Rep, class Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    bool notified = cv_.wait_for(native, timeout) == std::cv_status::no_timeout;
    native.release();
    return notified;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qikey

#endif  // QIKEY_UTIL_MUTEX_H_
