#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "util/logging.h"

namespace qikey {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  QIKEY_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  task_ready_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  int64_t submit_ns =
      task_ns_.load(std::memory_order_acquire) != nullptr ? NowNs() : 0;
  Gauge* depth = queue_depth_.load(std::memory_order_acquire);
  {
    MutexLock lock(mu_);
    QIKEY_CHECK(!shutdown_) << "Submit after shutdown";
    Task t;
    t.fn = std::move(task);
    t.submit_ns = submit_ns;
    tasks_.push(std::move(t));
    if (depth != nullptr) depth->Set(static_cast<int64_t>(tasks_.size()));
  }
  task_ready_.NotifyOne();
}

void ThreadPool::SubmitBatch(void (*raw_fn)(void*), std::shared_ptr<void> state,
                             size_t copies) {
  if (copies == 0) return;
  int64_t submit_ns =
      task_ns_.load(std::memory_order_acquire) != nullptr ? NowNs() : 0;
  Gauge* depth = queue_depth_.load(std::memory_order_acquire);
  {
    MutexLock lock(mu_);
    QIKEY_CHECK(!shutdown_) << "Submit after shutdown";
    for (size_t i = 0; i < copies; ++i) {
      Task t;
      t.raw_fn = raw_fn;
      t.state = state;
      t.submit_ns = submit_ns;
      tasks_.push(std::move(t));
    }
    if (depth != nullptr) depth->Set(static_cast<int64_t>(tasks_.size()));
  }
  if (copies == 1) {
    task_ready_.NotifyOne();
  } else {
    task_ready_.NotifyAll();
  }
}

void ThreadPool::AttachMetrics(Gauge* queue_depth, LatencyHistogram* task_ns) {
  queue_depth_.store(queue_depth, std::memory_order_release);
  task_ns_.store(task_ns, std::memory_order_release);
}

void ThreadPool::Wait() {
  std::exception_ptr e;
  {
    MutexLock lock(mu_);
    while (!tasks_.empty() || active_ != 0) all_idle_.Wait(mu_);
    e = first_exception_;
    first_exception_ = nullptr;
  }
  if (e) std::rethrow_exception(e);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Task task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && tasks_.empty()) task_ready_.Wait(mu_);
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
      Gauge* depth = queue_depth_.load(std::memory_order_acquire);
      if (depth != nullptr) depth->Set(static_cast<int64_t>(tasks_.size()));
    }
    try {
      if (task.raw_fn != nullptr) {
        task.raw_fn(task.state.get());
      } else {
        task.fn();
      }
    } catch (...) {
      MutexLock lock(mu_);
      if (!first_exception_) first_exception_ = std::current_exception();
    }
    if (task.submit_ns != 0) {
      LatencyHistogram* hist = task_ns_.load(std::memory_order_acquire);
      if (hist != nullptr) hist->Record(NowNs() - task.submit_ns);
    }
    // Drop the batch-state reference before going idle so the last
    // worker to finish a batch doesn't pin its control block while
    // parked on the condvar.
    task = Task{};
    {
      MutexLock lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) all_idle_.NotifyAll();
    }
  }
}

namespace {

/// Shared control block of one ParallelFor batch. Helpers and the
/// calling thread claim fixed-size chunks off `next` — one relaxed
/// fetch_add per chunk, no queue traffic — so chunks can stay small
/// enough to load-balance without paying a mutex per chunk. Heap-owned
/// via shared_ptr: a helper task that only runs after the caller has
/// already returned (every chunk was claimed by others) still touches
/// live memory. `fn` is the caller's reference; it is only invoked for
/// a successfully claimed chunk, and the caller cannot return before
/// every claimed chunk has completed, so the reference never dangles.
///
/// Exceptions are confined to THIS batch, not parked in the pool:
/// concurrent ParallelFor batches sharing one pool must each see their
/// own callback's failure, never a sibling batch's.
struct ParallelForState {
  const std::function<void(size_t, size_t)>* fn = nullptr;
  size_t n = 0;
  size_t chunk = 0;
  size_t num_chunks = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> chunks_done{0};
  Mutex mu;
  CondVar done;
  std::exception_ptr first GUARDED_BY(mu);

  void Drain() {
    for (;;) {
      size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      size_t begin = c * chunk;
      size_t end = std::min(n, begin + chunk);
      try {
        (*fn)(begin, end);
      } catch (...) {
        MutexLock lock(mu);
        if (!first) first = std::current_exception();
      }
      if (chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_chunks) {
        // Lock before notifying so the waiter cannot check the
        // predicate and park between our load and our notify.
        MutexLock lock(mu);
        done.NotifyAll();
      }
    }
  }
};

void DrainParallelFor(void* state) {
  static_cast<ParallelForState*>(state)->Drain();
}

}  // namespace

void ThreadPool::ParallelFor(ThreadPool* pool, size_t n,
                             const std::function<void(size_t, size_t)>& fn,
                             size_t min_grain) {
  if (n == 0) return;
  if (min_grain == 0) min_grain = 1;
  if (pool == nullptr || pool->num_threads() == 1 || n <= min_grain) {
    fn(0, n);
    return;
  }
  const size_t threads = pool->num_threads();
  // 8 claimable chunks per thread bounds tail imbalance at ~1/8 of one
  // thread's share; the grain floor keeps cheap per-element bodies
  // from drowning in per-chunk overhead.
  const size_t chunk =
      std::max(min_grain, (n + 8 * threads - 1) / (8 * threads));
  const size_t num_chunks = (n + chunk - 1) / chunk;
  if (num_chunks <= 1) {
    fn(0, n);
    return;
  }
  auto state = std::make_shared<ParallelForState>();
  state->fn = &fn;
  state->n = n;
  state->chunk = chunk;
  state->num_chunks = num_chunks;
  // The caller participates, so at most num_chunks - 1 helpers can
  // ever claim work.
  pool->SubmitBatch(&DrainParallelFor, state,
                    std::min(threads, num_chunks - 1));
  state->Drain();
  std::exception_ptr first;
  {
    MutexLock lock(state->mu);
    while (state->chunks_done.load(std::memory_order_acquire) !=
           state->num_chunks) {
      state->done.Wait(state->mu);
    }
    first = state->first;
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace qikey
