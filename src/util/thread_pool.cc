#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace qikey {

ThreadPool::ThreadPool(size_t num_threads) {
  QIKEY_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    QIKEY_CHECK(!shutdown_) << "Submit after shutdown";
    tasks_.push(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(ThreadPool* pool, size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() == 1 || n == 1) {
    fn(0, n);
    return;
  }
  size_t chunks = std::min(n, 4 * pool->num_threads());
  size_t chunk_size = (n + chunks - 1) / chunks;
  for (size_t begin = 0; begin < n; begin += chunk_size) {
    size_t end = std::min(n, begin + chunk_size);
    pool->Submit([fn, begin, end] { fn(begin, end); });
  }
  pool->Wait();
}

}  // namespace qikey
