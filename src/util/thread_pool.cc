#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "util/logging.h"

namespace qikey {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  QIKEY_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  int64_t submit_ns =
      task_ns_.load(std::memory_order_acquire) != nullptr ? NowNs() : 0;
  Gauge* depth = queue_depth_.load(std::memory_order_acquire);
  {
    std::unique_lock<std::mutex> lock(mu_);
    QIKEY_CHECK(!shutdown_) << "Submit after shutdown";
    tasks_.push(Task{std::move(task), submit_ns});
    if (depth != nullptr) depth->Set(static_cast<int64_t>(tasks_.size()));
  }
  task_ready_.notify_one();
}

void ThreadPool::AttachMetrics(Gauge* queue_depth, LatencyHistogram* task_ns) {
  queue_depth_.store(queue_depth, std::memory_order_release);
  task_ns_.store(task_ns, std::memory_order_release);
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
  if (first_exception_) {
    std::exception_ptr e = first_exception_;
    first_exception_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
      Gauge* depth = queue_depth_.load(std::memory_order_acquire);
      if (depth != nullptr) depth->Set(static_cast<int64_t>(tasks_.size()));
    }
    try {
      task.fn();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!first_exception_) first_exception_ = std::current_exception();
    }
    if (task.submit_ns != 0) {
      LatencyHistogram* hist = task_ns_.load(std::memory_order_acquire);
      if (hist != nullptr) hist->Record(NowNs() - task.submit_ns);
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(ThreadPool* pool, size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() == 1 || n == 1) {
    fn(0, n);
    return;
  }
  size_t chunks = std::min(n, 4 * pool->num_threads());
  size_t chunk_size = (n + chunks - 1) / chunks;
  // Exceptions are confined to THIS call, not parked in the pool:
  // concurrent ParallelFor batches sharing one pool must each see
  // their own callback's failure, never a sibling batch's (the pool-
  // level capture in Wait() only attributes correctly for a single
  // caller).
  std::mutex mu;
  std::exception_ptr first;
  for (size_t begin = 0; begin < n; begin += chunk_size) {
    size_t end = std::min(n, begin + chunk_size);
    pool->Submit([&fn, &mu, &first, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!first) first = std::current_exception();
      }
    });
  }
  pool->Wait();
  if (first) std::rethrow_exception(first);
}

}  // namespace qikey
