#include "util/logging.h"

#include <atomic>

namespace qikey {

namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= threshold() || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

void LogMessage::SetThreshold(LogLevel level) { g_threshold.store(level); }

LogLevel LogMessage::threshold() { return g_threshold.load(); }

}  // namespace qikey
