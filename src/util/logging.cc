#include "util/logging.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>

#include "util/jsonw.h"

namespace qikey {

namespace {

// Logging configuration is two independent atomics, not a
// mutex-guarded struct: writers are setup-time only (main, tests) and
// every log statement reads them, so the read path must stay a plain
// load. Torn cross-field views (new threshold with old format) are
// harmless — each field is self-consistent.
std::atomic<LogLevel> g_threshold{LogLevel::kInfo};
std::atomic<bool> g_json_lines{false};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (level_ >= threshold() || level_ == LogLevel::kFatal) {
    std::string out;
    if (json_lines()) {
      out += "{\"ts_ms\":";
      out += std::to_string(NowMillis());
      out += ",\"level\":";
      AppendJsonString(LevelName(level_), &out);
      out += ",\"src\":";
      std::string src = file_;
      src += ':';
      src += std::to_string(line_);
      AppendJsonString(src, &out);
      out += ",\"msg\":";
      AppendJsonString(stream_.str(), &out);
      out += '}';
    } else {
      out += '[';
      out += LevelName(level_);
      out += ' ';
      out += file_;
      out += ':';
      out += std::to_string(line_);
      out += "] ";
      out += stream_.str();
    }
    WriteRawLine(out);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

void LogMessage::SetThreshold(LogLevel level) { g_threshold.store(level); }

LogLevel LogMessage::threshold() { return g_threshold.load(); }

void LogMessage::SetJsonLines(bool enabled) { g_json_lines.store(enabled); }

bool LogMessage::json_lines() { return g_json_lines.load(); }

void WriteRawLine(std::string_view line) {
  std::string buf;
  buf.reserve(line.size() + 1);
  buf.append(line);
  buf.push_back('\n');
  const char* data = buf.data();
  size_t remaining = buf.size();
  while (remaining > 0) {
    ssize_t n = ::write(2, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // stderr gone; nothing sensible left to do
    }
    data += n;
    remaining -= static_cast<size_t>(n);
  }
}

}  // namespace qikey
