#ifndef QIKEY_UTIL_JSONW_H_
#define QIKEY_UTIL_JSONW_H_

#include <string>
#include <string_view>

namespace qikey {

/// Appends `s` to `*out` as a quoted JSON string literal, escaping the
/// characters RFC 8259 requires (quote, backslash, control bytes).
/// Bytes >= 0x80 are passed through untouched (UTF-8 stays UTF-8).
void AppendJsonString(std::string_view s, std::string* out);

/// Returns `s` as a quoted JSON string literal.
std::string JsonQuote(std::string_view s);

}  // namespace qikey

#endif  // QIKEY_UTIL_JSONW_H_
