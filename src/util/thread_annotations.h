#ifndef QIKEY_UTIL_THREAD_ANNOTATIONS_H_
#define QIKEY_UTIL_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attribute macros (no-ops on every other
// compiler). Annotating a mutex-protected member with GUARDED_BY, and a
// function's locking contract with REQUIRES/ACQUIRE/RELEASE/EXCLUDES,
// turns the locking discipline into a compile-time contract: a clang
// build with -Wthread-safety (cmake -DQIKEY_THREAD_SAFETY=ON promotes
// it to an error) rejects any access to the member without the mutex
// held, on every path, under every schedule — where TSan can only
// catch the interleavings a test happens to provoke.
//
// The annotated wrappers living on top of these macros are
// `qikey::Mutex` / `qikey::MutexLock` / `qikey::CondVar` in
// util/mutex.h; annotate with:
//
//   Mutex mu_;
//   std::deque<Task> queue_ GUARDED_BY(mu_);   // data behind the lock
//   void DrainLocked() REQUIRES(mu_);          // caller must hold it
//   void Drain() EXCLUDES(mu_);                // caller must NOT hold it
//
// See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for the
// full attribute semantics.

#if defined(__clang__) && defined(__has_attribute)
#define QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define CAPABILITY(x) QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define SCOPED_CAPABILITY QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Declares that the member it annotates is protected by the given
/// capability: reads require the capability held (shared or exclusive),
/// writes require it held exclusively.
#define GUARDED_BY(x) QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Like GUARDED_BY, for the data POINTED TO by a pointer member (the
/// pointer itself is not protected).
#define PT_GUARDED_BY(x) QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Declares that the annotated function may only be called with the
/// given capabilities held (and does not release them).
#define REQUIRES(...) \
  QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Declares that the annotated function acquires the capability and
/// holds it on return.
#define ACQUIRE(...) \
  QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Declares that the annotated function releases the capability (which
/// must be held on entry).
#define RELEASE(...) \
  QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// Declares that the annotated function acquires the capability iff it
/// returns `b`.
#define TRY_ACQUIRE(b, ...) \
  QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(b, __VA_ARGS__))

/// Declares that the annotated function must NOT be called with the
/// given capabilities held (deadlock guard for self-locking APIs).
#define EXCLUDES(...) \
  QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations (deadlock prevention across mutexes).
#define ACQUIRED_BEFORE(...) \
  QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Declares that the annotated function returns a reference to the
/// given capability (accessor for an embedded mutex).
#define RETURN_CAPABILITY(x) \
  QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Runtime assertion that the capability is held; informs the analysis
/// on paths it cannot see through (e.g. external synchronization).
#define ASSERT_CAPABILITY(x) \
  QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the contract cannot be expressed.
#define NO_THREAD_SAFETY_ANALYSIS \
  QIKEY_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // QIKEY_UTIL_THREAD_ANNOTATIONS_H_
