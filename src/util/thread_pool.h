#ifndef QIKEY_UTIL_THREAD_POOL_H_
#define QIKEY_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"

namespace qikey {

/// \brief Minimal fixed-size worker pool.
///
/// Used to parallelize embarrassingly parallel inner loops (per-
/// attribute greedy gains, batch filter queries, serve-layer request
/// batches).
///
/// Exception safety: a throwing task does not kill its worker. For
/// directly `Submit`ted tasks the first exception is captured (later
/// ones are discarded), every remaining task still runs, and the next
/// `Wait()` rethrows it once the pool is idle — so a batch with a
/// throwing task fails deterministically (it always throws, never
/// half-succeeds silently) and the pool stays usable for the next
/// batch. `ParallelFor` additionally confines its callback's
/// exceptions to the invoking call, so concurrent batches sharing one
/// pool each see their own failure (the Submit/Wait capture alone
/// cannot attribute an exception to the right concurrent caller).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Attaches borrowed observability instruments: `queue_depth` tracks
  /// the number of queued (not yet started) tasks, `task_ns` records
  /// submit-to-completion wall time per task. Either may be null.
  /// The instruments must outlive the pool; the pointers are atomics
  /// (release/acquire) because workers started before the attach read
  /// them concurrently. Tasks already queued at attach time are not
  /// timed (their submit timestamp was never taken).
  void AttachMetrics(Gauge* queue_depth, LatencyHistogram* task_ns);

  /// Blocks until the queue is empty and all workers are idle. If any
  /// task threw since the last `Wait()`, rethrows the first captured
  /// exception (and clears it, leaving the pool ready for reuse).
  void Wait();

  /// \brief Splits `[0, n)` into contiguous chunks and runs
  /// `fn(begin, end)` for each — on `pool` if non-null, inline
  /// otherwise. Blocks until all chunks complete; the first exception
  /// a chunk throws is rethrown from THIS call (captured per-call, so
  /// concurrent ParallelFor batches on a shared pool cannot observe
  /// each other's failures).
  ///
  /// `min_grain` is the smallest chunk worth fanning out: ranges of at
  /// most `min_grain` run inline, and no chunk is smaller (so cheap
  /// per-element bodies amortize the per-chunk claim). Fan-out is a
  /// batch path, not a queue path: the call enqueues at most one
  /// helper task per worker under a single queue-lock acquisition, the
  /// helpers and the calling thread claim fixed-size chunks off one
  /// shared atomic counter (no per-chunk heap `std::function`, no per-
  /// chunk queue mutex), and the caller returns as soon as the last
  /// chunk completes — it does not wait for the rest of the pool to go
  /// idle, so concurrent batches on a shared pool do not serialize
  /// behind each other.
  static void ParallelFor(ThreadPool* pool, size_t n,
                          const std::function<void(size_t, size_t)>& fn,
                          size_t min_grain = 1);

 private:
  struct Task {
    std::function<void()> fn;
    /// Batch fast path: when set, the worker runs `raw_fn(state.get())`
    /// instead of `fn`. Copies of one batch's Task share `state`
    /// (refcount bump, no allocation).
    void (*raw_fn)(void*) = nullptr;
    std::shared_ptr<void> state;
    int64_t submit_ns = 0;  ///< 0 when task latency is not being timed.
  };

  /// Enqueues `copies` identical batch-helper tasks under one lock
  /// acquisition and wakes enough workers for them.
  void SubmitBatch(void (*raw_fn)(void*), std::shared_ptr<void> state,
                   size_t copies);

  void WorkerLoop();

  std::vector<std::thread> workers_;
  /// Queue capability: guards the task queue, the idle accounting, the
  /// shutdown flag, and the captured exception below.
  Mutex mu_;
  CondVar task_ready_;
  CondVar all_idle_;
  std::queue<Task> tasks_ GUARDED_BY(mu_);
  /// Borrowed instruments, atomically published by `AttachMetrics`
  /// (release) and read by workers that may predate the attach
  /// (acquire) — deliberately NOT behind `mu_`: the hot task path must
  /// not take the queue lock to record a latency.
  std::atomic<Gauge*> queue_depth_{nullptr};
  std::atomic<LatencyHistogram*> task_ns_{nullptr};
  size_t active_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  /// First exception thrown by a task since the last Wait(); rethrown
  /// and cleared by Wait().
  std::exception_ptr first_exception_ GUARDED_BY(mu_);
};

}  // namespace qikey

#endif  // QIKEY_UTIL_THREAD_POOL_H_
