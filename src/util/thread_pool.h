#ifndef QIKEY_UTIL_THREAD_POOL_H_
#define QIKEY_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qikey {

/// \brief Minimal fixed-size worker pool.
///
/// Used to parallelize embarrassingly parallel inner loops (per-
/// attribute greedy gains, batch filter queries). Tasks must not
/// throw. `Wait()` blocks until every submitted task has finished.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void Wait();

  /// \brief Splits `[0, n)` into contiguous chunks and runs
  /// `fn(begin, end)` for each — on `pool` if non-null, inline
  /// otherwise. Blocks until all chunks complete.
  static void ParallelFor(
      ThreadPool* pool, size_t n,
      const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::queue<std::function<void()>> tasks_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace qikey

#endif  // QIKEY_UTIL_THREAD_POOL_H_
