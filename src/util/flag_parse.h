#ifndef QIKEY_UTIL_FLAG_PARSE_H_
#define QIKEY_UTIL_FLAG_PARSE_H_

// Strict numeric flag parsing shared by the qikey tools, benchmarks,
// and examples. Everything here uses strtoll/strtoull/strtod with
// end-pointer checks — never atoi/atof — so garbage, trailing junk,
// out-of-range values, and NaN are usage errors with a message on
// stderr, not silent zeros. tools/qikey_lint.py (QL001) bans the
// atoi family and endptr-less strtol outside src/util/; this header
// is the sanctioned way to parse a number from argv.
//
// Error output goes through WriteRawLine — the project's single-write
// logging primitive — so a parse error cannot interleave with
// concurrent log lines (QL005).

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "util/logging.h"

namespace qikey {

/// Strict integer flag: the whole value must be digits (optionally
/// signed) and inside `[min, max]`.
inline bool ParseIntFlag(const std::string& flag, const char* v,
                         long long min, long long max, long long* out) {
  char* end = nullptr;
  errno = 0;
  long long t = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || t < min || t > max ||
      std::isspace(static_cast<unsigned char>(v[0]))) {
    WriteRawLine(flag + " must be an integer in [" + std::to_string(min) +
                 ", " + std::to_string(max) + "], got " + v);
    return false;
  }
  *out = t;
  return true;
}

/// Strict uint64 flag (`--seed` wants the full 64-bit range, which
/// `strtoll` cannot cover). The first character must be a digit:
/// `strtoull` itself skips whitespace and accepts a sign, silently
/// wrapping negatives — " -1" must not become 2^64-1.
inline bool ParseUint64Flag(const std::string& flag, const char* v,
                            uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  unsigned long long t = std::strtoull(v, &end, 10);
  if (!std::isdigit(static_cast<unsigned char>(v[0])) || end == v ||
      *end != '\0' || errno == ERANGE) {
    WriteRawLine(flag + " must be a non-negative integer, got " + v);
    return false;
  }
  *out = static_cast<uint64_t>(t);
  return true;
}

/// Strict double flag: fully consumed, finite (NaN compares false
/// against any bound, so it is rejected explicitly), and inside the
/// range described by `range`.
inline bool ParseDoubleFlag(const std::string& flag, const char* v,
                            double min, double max, bool min_exclusive,
                            bool max_exclusive, const char* range,
                            double* out) {
  char* end = nullptr;
  errno = 0;
  double t = std::strtod(v, &end);
  bool in_range = min_exclusive ? t > min : t >= min;
  in_range = in_range && (max_exclusive ? t < max : t <= max);
  if (end == v || *end != '\0' || !std::isfinite(t) || !in_range) {
    WriteRawLine(flag + " must be a number in " + range + ", got " + v);
    return false;
  }
  *out = t;
  return true;
}

}  // namespace qikey

#endif  // QIKEY_UTIL_FLAG_PARSE_H_
