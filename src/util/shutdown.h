#ifndef QIKEY_UTIL_SHUTDOWN_H_
#define QIKEY_UTIL_SHUTDOWN_H_

namespace qikey {

/// \brief Process-wide, async-signal-safe shutdown/reload flags.
///
/// `InstallSignalFlags()` registers SIGTERM/SIGINT ("drain and exit"),
/// SIGHUP ("reload the serving snapshot"), and SIGUSR1 ("dump a stats
/// snapshot") handlers that do nothing
/// but set `volatile sig_atomic_t` flags — the only thing a signal
/// handler can safely do. Long-running front ends (`qikey serve`) poll
/// the flags from their main loop and translate them into the orderly
/// API calls (`ServeServer::Shutdown`, snapshot rebuild + publish);
/// the handlers themselves never touch locks, the heap, or the server.
///
/// The flags are process-global on purpose: signals are process-global.
/// Not for use by library code or tests that need isolation — tests
/// drive `ServeServer::Shutdown()` directly.
namespace shutdown_flags {

/// Installs the SIGTERM/SIGINT/SIGHUP/SIGUSR1 handlers (idempotent).
void InstallSignalFlags();

/// True once SIGTERM or SIGINT has been received.
bool ShutdownRequested();

/// True if SIGHUP has been received since the last `ClearReload()`.
bool ReloadRequested();
void ClearReload();

/// True if SIGUSR1 has been received since the last
/// `ClearStatsDump()` — the front end answers by dumping a metrics
/// snapshot to stderr.
bool StatsDumpRequested();
void ClearStatsDump();

/// Test/debug hook: simulates a received SIGTERM.
void RequestShutdown();

}  // namespace shutdown_flags

}  // namespace qikey

#endif  // QIKEY_UTIL_SHUTDOWN_H_
