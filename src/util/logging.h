#ifndef QIKEY_UTIL_LOGGING_H_
#define QIKEY_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

namespace qikey {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Minimal stream-style logger.
///
/// Usage: `QIKEY_LOG(INFO) << "built filter with " << r << " samples";`
/// Messages below the global threshold (default: kInfo) are dropped.
/// kFatal aborts the process after emitting the message.
///
/// The full line (prefix + message + newline) is buffered and emitted
/// with a single `write(2)` to stderr, so concurrent log lines from
/// the reactor, workers, and pool tasks never interleave mid-line.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

  /// Sets the global minimum severity that is emitted.
  static void SetThreshold(LogLevel level);
  static LogLevel threshold();

  /// Switches log emission to JSON lines:
  ///   {"ts_ms":...,"level":"INFO","src":"file.cc:42","msg":"..."}
  /// (one object per line, message JSON-escaped). Default: plain text.
  static void SetJsonLines(bool enabled);
  static bool json_lines();

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Writes `line` plus a trailing newline to stderr as one `write(2)`
/// (retrying on partial writes / EINTR), so it cannot interleave with
/// concurrent log or trace lines. Used for metrics dumps and request
/// traces, which are already fully formatted JSON.
void WriteRawLine(std::string_view line);

/// Internal: expands to a LogMessage for the given severity name.
#define QIKEY_LOG(severity)                                               \
  ::qikey::LogMessage(::qikey::LogLevel::k##severity, __FILE__, __LINE__) \
      .stream()

/// Checks a condition in all build modes; logs and aborts on failure.
#define QIKEY_CHECK(cond)                                      \
  if (!(cond)) QIKEY_LOG(Fatal) << "Check failed: " #cond " "

#define QIKEY_CHECK_OK(expr)                                        \
  do {                                                              \
    ::qikey::Status _st = (expr);                                   \
    if (!_st.ok()) QIKEY_LOG(Fatal) << "Status not OK: " << _st.ToString(); \
  } while (false)

#ifndef NDEBUG
#define QIKEY_DCHECK(cond) QIKEY_CHECK(cond)
#else
#define QIKEY_DCHECK(cond) \
  if (false) QIKEY_LOG(Fatal)
#endif

}  // namespace qikey

#endif  // QIKEY_UTIL_LOGGING_H_
