#ifndef QIKEY_UTIL_LOGGING_H_
#define QIKEY_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace qikey {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Minimal stream-style logger.
///
/// Usage: `QIKEY_LOG(INFO) << "built filter with " << r << " samples";`
/// Messages below the global threshold (default: kInfo) are dropped.
/// kFatal aborts the process after emitting the message.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

  /// Sets the global minimum severity that is emitted.
  static void SetThreshold(LogLevel level);
  static LogLevel threshold();

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Internal: expands to a LogMessage for the given severity name.
#define QIKEY_LOG(severity)                                               \
  ::qikey::LogMessage(::qikey::LogLevel::k##severity, __FILE__, __LINE__) \
      .stream()

/// Checks a condition in all build modes; logs and aborts on failure.
#define QIKEY_CHECK(cond)                                      \
  if (!(cond)) QIKEY_LOG(Fatal) << "Check failed: " #cond " "

#define QIKEY_CHECK_OK(expr)                                        \
  do {                                                              \
    ::qikey::Status _st = (expr);                                   \
    if (!_st.ok()) QIKEY_LOG(Fatal) << "Status not OK: " << _st.ToString(); \
  } while (false)

#ifndef NDEBUG
#define QIKEY_DCHECK(cond) QIKEY_CHECK(cond)
#else
#define QIKEY_DCHECK(cond) \
  if (false) QIKEY_LOG(Fatal)
#endif

}  // namespace qikey

#endif  // QIKEY_UTIL_LOGGING_H_
