#include "util/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace qikey {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Builds the sockaddr for `addr`; InvalidArgument on a bad host.
Result<sockaddr_in> MakeSockaddr(const HostPort& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + addr.host);
  }
  return sa;
}

}  // namespace

Result<HostPort> ParseHostPort(std::string_view spec) {
  size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return Status::InvalidArgument("want <host>:<port>, got '" +
                                   std::string(spec) + "'");
  }
  HostPort out;
  out.host = std::string(spec.substr(0, colon));
  std::string_view port = spec.substr(colon + 1);
  uint32_t value = 0;
  for (char c : port) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("port must be a decimal integer, got '" +
                                     std::string(port) + "'");
    }
    value = value * 10 + static_cast<uint32_t>(c - '0');
    if (value > 65535) {
      return Status::InvalidArgument("port out of range [0, 65535]: '" +
                                     std::string(port) + "'");
    }
  }
  out.port = static_cast<uint16_t>(value);
  // Validate the host eagerly so `qikey serve --listen banana:1` is a
  // usage error, not a bind failure at runtime.
  in_addr probe;
  if (inet_pton(AF_INET, out.host.c_str(), &probe) != 1) {
    return Status::InvalidArgument("host must be a dotted-quad IPv4 "
                                   "address, got '" + out.host + "'");
  }
  return out;
}

void OwnedFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(Errno("fcntl(O_NONBLOCK)"));
  }
  return Status::OK();
}

Result<OwnedFd> OpenListenSocket(const HostPort& addr,
                                 uint16_t* bound_port) {
  Result<sockaddr_in> sa = MakeSockaddr(addr);
  if (!sa.ok()) return sa.status();
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IOError(Errno("socket"));
  int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                   sizeof(one)) < 0) {
    return Status::IOError(Errno("setsockopt(SO_REUSEADDR)"));
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&*sa),
             sizeof(*sa)) < 0) {
    return Status::IOError(
        Errno("bind " + addr.host + ":" + std::to_string(addr.port)));
  }
  if (::listen(fd.get(), SOMAXCONN) < 0) {
    return Status::IOError(Errno("listen"));
  }
  QIKEY_RETURN_NOT_OK(SetNonBlocking(fd.get()));
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual),
                      &len) < 0) {
      return Status::IOError(Errno("getsockname"));
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

Result<OwnedFd> OpenClientSocket(const HostPort& addr,
                                 int recv_timeout_ms) {
  Result<sockaddr_in> sa = MakeSockaddr(addr);
  if (!sa.ok()) return sa.status();
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IOError(Errno("socket"));
  if (recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv,
                     sizeof(tv)) < 0) {
      return Status::IOError(Errno("setsockopt(SO_RCVTIMEO)"));
    }
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&*sa),
                sizeof(*sa)) < 0) {
    return Status::IOError(
        Errno("connect " + addr.host + ":" + std::to_string(addr.port)));
  }
  return fd;
}

Status BlockingLineClient::SendAll(std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd_.get(), data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("send"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status BlockingLineClient::SendLine(std::string_view line) {
  std::string framed(line);
  framed += '\n';
  return SendAll(framed);
}

Result<std::string> BlockingLineClient::RecvLine() {
  while (true) {
    size_t eol = buffer_.find('\n');
    if (eol != std::string::npos) {
      std::string line = buffer_.substr(0, eol);
      buffer_.erase(0, eol + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("recv"));
    }
    if (n == 0) {
      return Status::IOError("connection closed mid-line (" +
                             std::to_string(buffer_.size()) +
                             " unterminated byte(s) buffered)");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

void BlockingLineClient::ShutdownWrite() {
  ::shutdown(fd_.get(), SHUT_WR);
}

}  // namespace qikey
