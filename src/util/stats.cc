#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace qikey {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double QuantileSketch::Quantile(double q) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  size_t rank = static_cast<size_t>(q * static_cast<double>(values_.size() - 1) + 0.5);
  return values_[rank];
}

}  // namespace qikey
