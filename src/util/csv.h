#ifndef QIKEY_UTIL_CSV_H_
#define QIKEY_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace qikey {

/// Options controlling CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  char quote = '"';
  /// Whether the first non-empty line is a header row.
  bool has_header = true;
  /// Whether surrounding whitespace of unquoted fields is trimmed.
  bool trim_whitespace = true;
};

/// \brief Splits one CSV record into fields, honoring quotes.
///
/// Handles RFC-4180 style quoting including embedded delimiters and
/// doubled quotes. Does not handle embedded newlines (records must be
/// one physical line, which holds for the tabular data this library
/// targets).
std::vector<std::string> SplitCsvLine(std::string_view line,
                                      const CsvOptions& options = {});

/// Parsed CSV content: optional header plus rows of string fields.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// \brief Parses CSV text. Rows with a field count differing from the
/// first data row produce an InvalidArgument error.
Result<CsvTable> ParseCsv(std::string_view text, const CsvOptions& options = {});

/// \brief Reads and parses a CSV file from disk.
Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

/// \brief Serializes rows to CSV text (quoting fields when needed).
std::string WriteCsv(const CsvTable& table, const CsvOptions& options = {});

}  // namespace qikey

#endif  // QIKEY_UTIL_CSV_H_
