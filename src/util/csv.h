#ifndef QIKEY_UTIL_CSV_H_
#define QIKEY_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace qikey {

/// Options controlling CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  char quote = '"';
  /// Whether the first non-empty line is a header row.
  bool has_header = true;
  /// Whether surrounding whitespace of unquoted fields is trimmed.
  bool trim_whitespace = true;
};

/// \brief Splits one CSV record into fields, honoring quotes.
///
/// Handles RFC-4180 style quoting including embedded delimiters,
/// doubled quotes, and (when the caller hands it a whole record, as
/// `ParseCsv` does) newlines inside quoted fields.
std::vector<std::string> SplitCsvLine(std::string_view line,
                                      const CsvOptions& options = {});

/// \brief Incremental quote-aware record-boundary detector.
///
/// Feed bytes one at a time; `Feed` returns true exactly when the byte
/// is a record terminator (a newline at quote depth zero). Mirrors
/// `SplitCsvLine`'s quoting rules (quotes open only on an empty field,
/// doubled quotes are literal), so newlines inside quoted fields do not
/// end a record. Used by `ParseCsv` and by the sharded loader's file
/// scanner, which must find shard boundaries without parsing fields.
class CsvRecordScanner {
 public:
  explicit CsvRecordScanner(const CsvOptions& options)
      : delimiter_(options.delimiter), quote_(options.quote) {}

  /// Consumes one byte; true iff it terminates the current record.
  bool Feed(char c);

  /// True while the record seen so far is only whitespace (such records
  /// are skipped by `ParseCsv`; any quote makes a record non-blank).
  bool record_blank() const { return record_blank_; }

  /// True if the scanner is inside a quoted field (a record spanning a
  /// buffer boundary).
  bool in_quotes() const { return in_quotes_; }

  /// Resets per-record state (called automatically after a terminator).
  void ResetRecord();

 private:
  char delimiter_;
  char quote_;
  bool in_quotes_ = false;
  bool quote_pending_ = false;  // saw a quote inside quotes; close or literal?
  bool field_empty_ = true;     // quotes may only open on an empty field
  bool record_blank_ = true;
};

/// Parsed CSV content: optional header plus rows of string fields.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// \brief Parses CSV text. Rows with a field count differing from the
/// first data row produce an InvalidArgument error.
Result<CsvTable> ParseCsv(std::string_view text, const CsvOptions& options = {});

/// \brief Reads and parses a CSV file from disk.
Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

/// \brief Serializes rows to CSV text (quoting fields when needed).
std::string WriteCsv(const CsvTable& table, const CsvOptions& options = {});

}  // namespace qikey

#endif  // QIKEY_UTIL_CSV_H_
