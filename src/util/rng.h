#ifndef QIKEY_UTIL_RNG_H_
#define QIKEY_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qikey {

/// \brief Deterministic pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64.
///
/// All randomized algorithms in the library take an `Rng&` so experiments
/// are reproducible from a single seed. Satisfies the essentials of
/// UniformRandomBitGenerator (min/max/operator()), so it can also drive
/// `std::` distributions if needed.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four-word state from `seed` using SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next 64 random bits.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform integer in `[0, bound)`. `bound` must be positive.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in `[lo, hi]` inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in `[0, 1)` with 53 bits of precision.
  double UniformDouble();

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard exponential variate (rate 1).
  double Exponential();

  /// Geometric number of failures before first success, success prob `p`.
  /// Used by reservoir-sampling Algorithm L for skip lengths.
  uint64_t Geometric(double p);

  /// \brief Samples `k` distinct indices from `[0, n)` uniformly at random
  /// (a uniform k-subset) using Robert Floyd's algorithm; `O(k)` expected.
  /// Result is in no particular order. Requires `k <= n`.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// \brief Samples a uniform unordered pair `{i, j}`, `i != j`, from
  /// `[0, n)`. Requires `n >= 2`. Returned with `first < second`.
  std::pair<uint64_t, uint64_t> SamplePair(uint64_t n);

  /// \brief How many of `draws` items, drawn without replacement from an
  /// urn of `n1 + n2` items, come from the first `n1` — an exact
  /// hypergeometric variate, by sequential urn simulation in O(draws).
  ///
  /// This is the split underlying every disjoint-population sample
  /// merge: a uniform `k`-subset of population 1 unioned with a uniform
  /// `draws - k`-subset of population 2 is a uniform `draws`-subset of
  /// the union. Requires `draws <= n1 + n2`.
  uint64_t HypergeometricDraw(uint64_t draws, uint64_t n1, uint64_t n2);

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator (for parallel workers).
  Rng Split();

 private:
  uint64_t s_[4];
};

}  // namespace qikey

#endif  // QIKEY_UTIL_RNG_H_
