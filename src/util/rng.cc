#include "util/rng.h"

#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace qikey {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(&sm);
  // Avoid the all-zero state (cannot happen with SplitMix64 in practice,
  // but cheap to guard).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  QIKEY_DCHECK(bound > 0);
  // Lemire's method with rejection to remove modulo bias.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  QIKEY_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Exponential() {
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -std::log(u);
}

uint64_t Rng::Geometric(double p) {
  QIKEY_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  QIKEY_CHECK(k <= n) << "cannot sample " << k << " distinct items from " << n;
  // Robert Floyd's algorithm: for j = n-k .. n-1, draw t in [0, j]; insert
  // t unless present, else insert j. Produces a uniform k-subset.
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(static_cast<size_t>(k) * 2);
  std::vector<uint64_t> out;
  out.reserve(static_cast<size_t>(k));
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = Uniform(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

std::pair<uint64_t, uint64_t> Rng::SamplePair(uint64_t n) {
  QIKEY_CHECK(n >= 2) << "need at least two items to sample a pair";
  uint64_t i = Uniform(n);
  uint64_t j = Uniform(n - 1);
  if (j >= i) ++j;
  if (i > j) std::swap(i, j);
  return {i, j};
}

uint64_t Rng::HypergeometricDraw(uint64_t draws, uint64_t n1, uint64_t n2) {
  QIKEY_CHECK(draws <= n1 + n2)
      << "cannot draw " << draws << " from an urn of " << n1 + n2;
  // After t draws of which k came from population 1, the urn holds
  // n1 - k population-1 items out of n1 + n2 - t total.
  uint64_t k = 0;
  for (uint64_t t = 0; t < draws; ++t) {
    if (Uniform(n1 + n2 - t) < n1 - k) ++k;
  }
  return k;
}

Rng Rng::Split() { return Rng(Next() ^ 0xA5A5A5A5A5A5A5A5ULL); }

}  // namespace qikey
