#include "util/jsonw.h"

#include <cstdio>

namespace qikey {

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  AppendJsonString(s, &out);
  return out;
}

}  // namespace qikey
