#ifndef QIKEY_UTIL_STATS_H_
#define QIKEY_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace qikey {

/// \brief Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable; O(1) per observation. Used by benches to report
/// averages across trials, and by generators to validate marginals.
class RunningStats {
 public:
  RunningStats() = default;

  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two observations).
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Exact quantiles over a retained sample of doubles.
///
/// Stores all observations; suitable for bench-scale data (<= millions).
class QuantileSketch {
 public:
  void Add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  size_t count() const { return values_.size(); }

  /// Returns the q-quantile (q in [0,1]) by nearest-rank on sorted data.
  /// Returns 0 for an empty sketch.
  double Quantile(double q) const;

  double Median() const { return Quantile(0.5); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace qikey

#endif  // QIKEY_UTIL_STATS_H_
