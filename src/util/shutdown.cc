#include "util/shutdown.h"

#include <csignal>

namespace qikey {
namespace shutdown_flags {

namespace {

// sig_atomic_t is the only type the standard guarantees a handler may
// write; nothing here allocates, locks, or calls the serve layer.
volatile std::sig_atomic_t g_shutdown = 0;
volatile std::sig_atomic_t g_reload = 0;
volatile std::sig_atomic_t g_stats_dump = 0;

void OnShutdownSignal(int) { g_shutdown = 1; }
void OnReloadSignal(int) { g_reload = 1; }
void OnStatsDumpSignal(int) { g_stats_dump = 1; }

}  // namespace

void InstallSignalFlags() {
  struct sigaction sa {};
  sa.sa_handler = OnShutdownSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking sleeps promptly
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  sa.sa_handler = OnReloadSignal;
  sigaction(SIGHUP, &sa, nullptr);
  sa.sa_handler = OnStatsDumpSignal;
  sigaction(SIGUSR1, &sa, nullptr);
}

bool ShutdownRequested() { return g_shutdown != 0; }

bool ReloadRequested() { return g_reload != 0; }

void ClearReload() { g_reload = 0; }

bool StatsDumpRequested() { return g_stats_dump != 0; }

void ClearStatsDump() { g_stats_dump = 0; }

void RequestShutdown() { g_shutdown = 1; }

}  // namespace shutdown_flags
}  // namespace qikey
