#ifndef QIKEY_UTIL_STATUS_H_
#define QIKEY_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace qikey {

/// \brief Error categories used across the library.
///
/// Follows the Arrow/RocksDB convention: fallible operations return a
/// `Status` (or a `Result<T>`) instead of throwing. The set of codes is
/// deliberately small; `ToString()` carries the human-readable detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kIOError,
  kAlreadyExists,
  kUnimplemented,
  kInternal,
};

/// \brief Return value for fallible operations that produce no payload.
///
/// A default-constructed `Status` is OK. Error statuses carry a code and a
/// message. The class is cheap to copy in the OK case (empty string).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type `T` or an error `Status`.
///
/// Mirrors `arrow::Result`. Accessing the value of an errored result
/// aborts in debug builds and is undefined otherwise; callers must check
/// `ok()` first (or use `ValueOr`).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : state_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// Returns the error status; OK if the result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(state_);
  }

  const T& ValueOrDie() const& { return std::get<T>(state_); }
  T& ValueOrDie() & { return std::get<T>(state_); }
  T&& ValueOrDie() && { return std::get<T>(std::move(state_)); }

  /// Returns the value if OK, otherwise `fallback`.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(state_);
    return fallback;
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> state_;
};

/// Propagates a non-OK status to the caller.
#define QIKEY_RETURN_NOT_OK(expr)               \
  do {                                          \
    ::qikey::Status _st = (expr);               \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace qikey

#endif  // QIKEY_UTIL_STATUS_H_
