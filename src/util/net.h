#ifndef QIKEY_UTIL_NET_H_
#define QIKEY_UTIL_NET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace qikey {

/// A parsed `<host>:<port>` listen/connect address. IPv4 only: `host`
/// is a dotted quad (`127.0.0.1`, `0.0.0.0`); `port` 0 means "let the
/// kernel pick" (the bound port is reported back by `OpenListenSocket`).
struct HostPort {
  std::string host;
  uint16_t port = 0;
};

/// Strict `<host>:<port>` parse: the host must be a dotted-quad IPv4
/// address and the port a decimal integer in [0, 65535] with no junk.
Result<HostPort> ParseHostPort(std::string_view spec);

/// \brief Owns one file descriptor; closes it on destruction.
///
/// The serve layer's sockets/eventfds are all held through this so an
/// early error return never leaks a descriptor.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { Reset(); }

  OwnedFd(OwnedFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Closes the held descriptor (if any).
  void Reset();
  /// Releases ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Sets O_NONBLOCK on `fd`.
Status SetNonBlocking(int fd);

/// Creates a non-blocking TCP listen socket bound to `addr`
/// (SO_REUSEADDR set, listening). On success `*bound_port` carries the
/// actual port — meaningful when `addr.port` was 0.
Result<OwnedFd> OpenListenSocket(const HostPort& addr, uint16_t* bound_port);

/// Connects a BLOCKING TCP socket to `addr` (client side: tests,
/// benches, ops tooling — the server itself is non-blocking).
/// `recv_timeout_ms` > 0 sets SO_RCVTIMEO so a silent server cannot
/// hang the caller forever.
Result<OwnedFd> OpenClientSocket(const HostPort& addr, int recv_timeout_ms);

/// \brief Minimal blocking line-oriented client over a connected
/// socket: the counterpart of the server's newline-delimited protocol,
/// used by the loopback tests and the latency bench.
class BlockingLineClient {
 public:
  /// Takes ownership of a connected socket fd.
  explicit BlockingLineClient(OwnedFd fd) : fd_(std::move(fd)) {}

  int fd() const { return fd_.get(); }

  /// Sends all of `data` (handles short writes). IOError on failure.
  Status SendAll(std::string_view data);

  /// Sends `line` plus the terminating newline.
  Status SendLine(std::string_view line);

  /// Receives the next newline-terminated line (newline stripped).
  /// IOError on EOF/timeout/error; bytes of a partial final line are
  /// reported in the error message.
  Result<std::string> RecvLine();

  /// Half-closes the write side (the server sees EOF but can still
  /// flush responses to us).
  void ShutdownWrite();

 private:
  OwnedFd fd_;
  std::string buffer_;  ///< bytes received beyond the last returned line
};

}  // namespace qikey

#endif  // QIKEY_UTIL_NET_H_
