#include "obs/histogram.h"

#include <bit>
#include <cmath>

namespace qikey {

namespace {

/// Inclusive lower edge and width of bucket `index`.
struct BucketRange {
  uint64_t lower;
  uint64_t width;
};

BucketRange RangeOf(size_t index) {
  constexpr uint64_t kSub = LatencyHistogram::kSubCount;
  if (index < kSub) return {index, 1};
  uint64_t range = index >> LatencyHistogram::kSubBits;  // >= 1
  uint64_t sub = index & (kSub - 1);
  int shift = static_cast<int>(range) - 1;
  return {(kSub + sub) << shift, uint64_t{1} << shift};
}

}  // namespace

size_t LatencyHistogram::BucketIndex(uint64_t value) {
  if (value < kSubCount) return static_cast<size_t>(value);
  // exponent e = floor(log2(value)) >= kSubBits; the top kSubBits+1
  // bits of the value select the linear sub-bucket within [2^e, 2^(e+1)).
  int e = std::bit_width(value) - 1;
  uint64_t sub = (value >> (e - kSubBits)) - kSubCount;
  return static_cast<size_t>((e - kSubBits + 1)) * kSubCount +
         static_cast<size_t>(sub);
}

uint64_t LatencyHistogram::BucketValue(size_t index) {
  BucketRange r = RangeOf(index);
  return r.lower + (r.width >> 1);
}

uint64_t LatencyHistogram::BucketUpperEdge(size_t index) {
  BucketRange r = RangeOf(index);
  return r.lower + r.width - 1;
}

void LatencyHistogram::RecordN(int64_t value, uint64_t n) {
  if (n == 0) return;
  uint64_t v = value < 0 ? 0 : static_cast<uint64_t>(value);
  buckets_[BucketIndex(v)].fetch_add(n, std::memory_order_relaxed);
  sum_.fetch_add(v * n, std::memory_order_relaxed);
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

uint64_t LatencyHistogram::count() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    snap.buckets[i] = c;
    snap.count += c;
    if (c != 0) snap.max = BucketUpperEdge(i);
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

uint64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return LatencyHistogram::BucketValue(i);
  }
  return max;
}

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size());
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
}

}  // namespace qikey
