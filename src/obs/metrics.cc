#include "obs/metrics.h"

#include "util/jsonw.h"

namespace qikey {

size_t Counter::SlotIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kSlots;
  return slot;
}

void MetricsRegistry::RegisterCounter(const std::string& name,
                                      const Counter* counter) {
  MutexLock lock(mu_);
  counter_fns_.erase(name);
  counters_[name] = counter;
}

void MetricsRegistry::RegisterCounterFn(const std::string& name,
                                        std::function<uint64_t()> fn) {
  MutexLock lock(mu_);
  counters_.erase(name);
  counter_fns_[name] = std::move(fn);
}

void MetricsRegistry::RegisterGauge(const std::string& name,
                                    const Gauge* gauge) {
  MutexLock lock(mu_);
  gauge_fns_.erase(name);
  gauges_[name] = gauge;
}

void MetricsRegistry::RegisterGaugeFn(const std::string& name,
                                      std::function<int64_t()> fn) {
  MutexLock lock(mu_);
  gauges_.erase(name);
  gauge_fns_[name] = std::move(fn);
}

void MetricsRegistry::RegisterHistogram(const std::string& name,
                                        const LatencyHistogram* histogram) {
  MutexLock lock(mu_);
  histograms_[name] = histogram;
}

MetricsSnapshot MetricsRegistry::SnapshotAll() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, fn] : counter_fns_) {
    snap.counters[name] = fn();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, fn] : gauge_fns_) {
    snap.gauges[name] = fn();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snapshot();
  }
  return snap;
}

std::string MetricsRegistry::RenderJson() const {
  return SnapshotAll().RenderJson();
}

std::string MetricsSnapshot::RenderJson() const {
  std::string out;
  out.reserve(1024);
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(name, &out);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(name, &out);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(name, &out);
    out += ":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += std::to_string(h.sum);
    out += ",\"p50\":";
    out += std::to_string(h.ValueAtQuantile(0.50));
    out += ",\"p99\":";
    out += std::to_string(h.ValueAtQuantile(0.99));
    out += ",\"p999\":";
    out += std::to_string(h.ValueAtQuantile(0.999));
    out += ",\"max\":";
    out += std::to_string(h.max);
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace qikey
