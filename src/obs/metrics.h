#ifndef QIKEY_OBS_METRICS_H_
#define QIKEY_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "obs/histogram.h"
#include "util/mutex.h"

namespace qikey {

/// \brief Monotonic event counter, sharded across cache lines.
///
/// `Increment` is one relaxed `fetch_add` on a per-thread slot (8
/// slots, each on its own cache line), so concurrent writers from the
/// reactor, workers, and pool tasks do not bounce a shared line.
/// `value()` sums the slots; it is exact once writers quiesce and
/// never under-counts completed increments.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    slots_[SlotIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t value() const {
    uint64_t total = 0;
    for (const Slot& s : slots_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  static constexpr size_t kSlots = 8;

  /// Stable per-thread slot: threads round-robin over the slots in
  /// creation order, so a single-writer counter always hits one line.
  static size_t SlotIndex();

  Slot slots_[kSlots];
};

/// \brief Last-written-value gauge (queue depths, buffer bytes).
///
/// Typically written from one thread (the reactor) and read from any;
/// all accesses are relaxed atomics.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief One consistent read of every registered metric.
///
/// Map-keyed by metric name, so iteration (and the rendered JSON) is
/// deterministically sorted.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Renders the snapshot as one line of JSON:
  ///   {"counters":{...},"gauges":{...},"histograms":{"x_ns":
  ///    {"count":..,"sum":..,"p50":..,"p99":..,"p999":..,"max":..}}}
  /// Every value is an integer; keys are sorted — two snapshots of
  /// identical metric states render byte-identically.
  std::string RenderJson() const;
};

/// \brief Named registry over borrowed metric instances.
///
/// Components register their `Counter`/`Gauge`/`LatencyHistogram`
/// members (or a read callback for values they derive on demand);
/// the registry takes no ownership and every registered pointer or
/// callback must outlive it. Registering an existing name replaces
/// the previous entry (re-created components re-register cleanly).
/// Registration and snapshotting take a mutex; the hot recording path
/// never touches the registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void RegisterCounter(const std::string& name, const Counter* counter);
  void RegisterCounterFn(const std::string& name,
                         std::function<uint64_t()> fn);
  void RegisterGauge(const std::string& name, const Gauge* gauge);
  void RegisterGaugeFn(const std::string& name, std::function<int64_t()> fn);
  void RegisterHistogram(const std::string& name,
                         const LatencyHistogram* histogram);

  /// Reads every registered metric under the registry lock.
  MetricsSnapshot SnapshotAll() const;

  /// SnapshotAll().RenderJson().
  std::string RenderJson() const;

 private:
  /// Registry capability: guards the five name→instrument maps below.
  /// Only registration and snapshotting take it — recording into an
  /// instrument never does (the instruments are internally lock-free).
  mutable Mutex mu_;
  std::map<std::string, const Counter*> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::function<uint64_t()>> counter_fns_
      GUARDED_BY(mu_);
  std::map<std::string, const Gauge*> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::function<int64_t()>> gauge_fns_ GUARDED_BY(mu_);
  std::map<std::string, const LatencyHistogram*> histograms_ GUARDED_BY(mu_);
};

}  // namespace qikey

#endif  // QIKEY_OBS_METRICS_H_
