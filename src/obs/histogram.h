#ifndef QIKEY_OBS_HISTOGRAM_H_
#define QIKEY_OBS_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qikey {

/// \brief Point-in-time copy of a LatencyHistogram (see below).
///
/// `buckets` is bucket-exact: merging two snapshots element-wise gives
/// the same result as recording both value streams into one histogram,
/// in either order. Quantile extraction walks the cumulative counts,
/// so it costs O(kNumBuckets) and allocates nothing.
struct HistogramSnapshot {
  uint64_t count = 0;  ///< Total recorded values (sum of buckets).
  uint64_t sum = 0;    ///< Sum of recorded values (exact, not bucketed).
  uint64_t max = 0;    ///< Upper edge of the highest non-empty bucket.
  std::vector<uint64_t> buckets;

  /// Returns the representative value at quantile `q` in [0, 1]:
  /// the midpoint of the bucket holding the ceil(q * count)-th
  /// smallest recorded value. Returns 0 for an empty histogram.
  uint64_t ValueAtQuantile(double q) const;

  /// Element-wise bucket add; count/sum/max combine exactly.
  void MergeFrom(const HistogramSnapshot& other);
};

/// \brief Lock-free mergeable latency histogram (HDR-style log-linear).
///
/// Non-negative 64-bit values land in one of 1920 buckets: each
/// power-of-two range [2^e, 2^(e+1)) is split into 32 linear
/// sub-buckets, so the bucket width is at most value/32 — every
/// quantile read back is within a 1/32 relative error of the true
/// sample, and values 0..63 are recorded exactly. Negative values
/// clamp to 0.
///
/// `Record` is two relaxed `fetch_add`s (bucket + sum) — no locks, no
/// CAS loops — so it is safe and cheap to call from the reactor,
/// worker threads, and pool tasks concurrently. Reads (`Snapshot`,
/// `count`, `sum`) are relaxed too: a snapshot taken while writers are
/// active is a consistent-enough view (each bucket is atomically
/// read), and is exact once writers quiesce.
class LatencyHistogram {
 public:
  /// Sub-buckets per power-of-two range (2^kSubBits).
  static constexpr int kSubBits = 5;
  static constexpr uint64_t kSubCount = uint64_t{1} << kSubBits;
  /// 2*32 exact low buckets + 58 ranges of 32: indices 0..1919.
  static constexpr size_t kNumBuckets =
      (64 - kSubBits + 1) * static_cast<size_t>(kSubCount);

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one value (negatives clamp to 0).
  void Record(int64_t value) { RecordN(value, 1); }

  /// Records `n` occurrences of `value`.
  void RecordN(int64_t value, uint64_t n);

  /// Adds every recorded value of `other` into this histogram,
  /// bucket-exact (commutative and associative across histograms).
  void MergeFrom(const LatencyHistogram& other);

  /// Total number of recorded values.
  uint64_t count() const;

  /// Exact sum of recorded (clamped) values.
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Copies the current state; see HistogramSnapshot.
  HistogramSnapshot Snapshot() const;

  /// Convenience: Snapshot().ValueAtQuantile(q).
  uint64_t ValueAtQuantile(double q) const {
    return Snapshot().ValueAtQuantile(q);
  }

  /// Bucket index for a value (see class comment for the scheme).
  static size_t BucketIndex(uint64_t value);

  /// Midpoint representative of bucket `index` (exact value for the
  /// unit-width buckets below 64).
  static uint64_t BucketValue(size_t index);

  /// One past the largest value bucket `index` covers, minus one
  /// (i.e. the inclusive upper edge).
  static uint64_t BucketUpperEdge(size_t index);

 private:
  // Lock-free by design: every cell is an independent relaxed atomic,
  // so there is no capability to annotate — concurrent Record/Snapshot
  // tearing across buckets is accepted and documented above.
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

}  // namespace qikey

#endif  // QIKEY_OBS_HISTOGRAM_H_
