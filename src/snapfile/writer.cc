#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/bitset_filter.h"
#include "core/mx_pair_filter.h"
#include "core/tuple_sample_filter.h"
#include "data/serialize.h"
#include "data/wire_codec.h"
#include "snapfile/snapfile.h"

namespace qikey {
namespace snapfile {

namespace {

/// Cardinality + optional dictionary of one column, as the meta stream
/// carries it (the schema name is written separately where needed).
void AppendColumnMeta(const Column& col, ByteWriter* w) {
  w->U32(col.cardinality());
  const Dictionary* dict = col.dictionary();
  if (dict == nullptr) {
    w->U8(0);
    return;
  }
  w->U8(1);
  w->U32(static_cast<uint32_t>(dict->size()));
  for (ValueCode c = 0; c < dict->size(); ++c) {
    w->Str(dict->Value(c));
  }
}

/// Column-major code block: each column's `rows * 4` bytes of codes,
/// zero-padded so every column starts on a 64-byte boundary within the
/// (itself 64-byte-aligned) section — the layout `Column::Borrowed`
/// views in place.
std::string PackCodesColumnMajor(const Dataset& table) {
  const uint64_t stride = ColumnStrideBytes(table.num_rows());
  std::string out(table.num_attributes() * stride, '\0');
  for (size_t j = 0; j < table.num_attributes(); ++j) {
    std::span<const ValueCode> codes =
        table.column(static_cast<AttributeIndex>(j)).codes();
    if (!codes.empty()) {
      std::memcpy(out.data() + j * stride, codes.data(),
                  codes.size() * sizeof(ValueCode));
    }
  }
  return out;
}

struct PendingSection {
  SectionId id;
  std::string payload;
};

std::string BytesToString(const void* p, size_t n) {
  return n == 0 ? std::string()
                : std::string(static_cast<const char*>(p), n);
}

}  // namespace

Result<std::string> SerializeSnapshot(const ServeSnapshot& snapshot) {
  if (snapshot.sample == nullptr || snapshot.filter == nullptr ||
      snapshot.keys == nullptr) {
    return Status::InvalidArgument(
        "snapshot must carry a sample, a filter, and keys");
  }
  const Dataset& sample = *snapshot.sample;
  const size_t m = sample.num_attributes();
  if (m == 0 || m > kMaxAttributes) {
    return Status::InvalidArgument(
        "snapshot sample attribute count out of range");
  }
  if (sample.num_rows() > kMaxRows) {
    return Status::InvalidArgument("snapshot sample has too many rows");
  }

  const auto* tuple =
      dynamic_cast<const TupleSampleFilter*>(snapshot.filter.get());
  const auto* mx = dynamic_cast<const MxPairFilter*>(snapshot.filter.get());
  const auto* bitset =
      dynamic_cast<const BitsetSeparationFilter*>(snapshot.filter.get());
  if (tuple == nullptr && mx == nullptr && bitset == nullptr) {
    return Status::Unimplemented(
        "snapshot filter backend cannot be serialized");
  }

  SnapshotHeader header;
  header.eps = snapshot.eps;
  header.source_rows = snapshot.source_rows;
  header.declared_sample_size = snapshot.filter->sample_size();
  // Epochs that overflow the u32 field are saved as "unrecorded"
  // rather than truncated — a restore then starts a fresh sequence
  // instead of silently rewinding.
  header.epoch = snapshot.epoch <= 0xFFFFFFFFull
                     ? static_cast<uint32_t>(snapshot.epoch)
                     : 0;
  // Meta stream: counts, schema, dictionaries, backend extras. Every
  // variable-size structure of the file is declared here and
  // cross-checked against exact section sizes by the reader.
  ByteWriter meta;
  meta.U32(static_cast<uint32_t>(m));
  meta.U64(sample.num_rows());
  for (size_t j = 0; j < m; ++j) {
    meta.Str(sample.schema().name(static_cast<AttributeIndex>(j)));
    AppendColumnMeta(sample.column(static_cast<AttributeIndex>(j)), &meta);
  }
  const std::vector<AttributeSet>& keys = *snapshot.keys;
  meta.U64(keys.size());

  std::vector<PendingSection> sections;

  if (tuple != nullptr) {
    header.backend = 0;
    header.detection =
        tuple->detection() == DuplicateDetection::kHash ? 1 : 0;
    const std::vector<RowIndex>& provenance = tuple->provenance();
    meta.U32(static_cast<uint32_t>(provenance.size()));
    meta.Raw(provenance.data(), provenance.size() * sizeof(RowIndex));
    if (tuple->shared_sample().get() == snapshot.sample.get()) {
      header.flags |= kFlagFilterSharesSample;
    }
  } else {
    meta.U32(0);
  }
  if (mx != nullptr) {
    header.backend = 1;
    Dataset pair_table = mx->MaterializePairTable();
    if (pair_table.num_attributes() != m) {
      return Status::InvalidArgument(
          "pair filter arity does not match the snapshot sample");
    }
    meta.U64(pair_table.num_rows());
    for (size_t j = 0; j < m; ++j) {
      AppendColumnMeta(pair_table.column(static_cast<AttributeIndex>(j)),
                       &meta);
    }
    sections.emplace_back(SectionId::kPairCodes,
                          PackCodesColumnMajor(pair_table));
  }
  if (bitset != nullptr) {
    header.backend = 2;
    const PackedEvidence& evidence = bitset->evidence();
    if (evidence.num_attributes() != m && evidence.num_pairs() > 0) {
      return Status::InvalidArgument(
          "bitset evidence arity does not match the snapshot sample");
    }
    meta.U64(evidence.num_pairs());
    meta.U64(evidence.source_pairs());
    std::span<const uint64_t> words = evidence.raw_words();
    std::span<const uint32_t> reps = evidence.raw_reps();
    sections.emplace_back(SectionId::kEvidenceWords,
                          BytesToString(words.data(), words.size_bytes()));
    sections.emplace_back(SectionId::kEvidenceReps,
                          BytesToString(reps.data(), reps.size_bytes()));
  }

  // Keys: ceil(m/64) packed words each, the AttributeSet layout.
  const size_t key_words = (m + 63) / 64;
  std::string keys_payload;
  keys_payload.reserve(keys.size() * key_words * sizeof(uint64_t));
  for (const AttributeSet& key : keys) {
    if (key.universe_size() != m) {
      return Status::InvalidArgument(
          "snapshot key universe does not match the sample arity");
    }
    std::span<const uint64_t> words = key.words();
    keys_payload.append(reinterpret_cast<const char*>(words.data()),
                        words.size_bytes());
  }

  if (tuple != nullptr &&
      (header.flags & kFlagFilterSharesSample) == 0) {
    // The tuple filter evaluates over its own sample (monitor freezes
    // and merges can diverge from the snapshot sample); carry it as a
    // nested QIKD blob.
    sections.emplace_back(SectionId::kFilterSampleBlob,
                          SerializeDataset(tuple->sample()));
  }

  sections.insert(sections.begin(),
                  {SectionId::kSampleCodes, PackCodesColumnMajor(sample)});
  sections.insert(sections.begin(), {SectionId::kMeta, std::move(meta).Take()});
  sections.emplace_back(SectionId::kKeys, std::move(keys_payload));

  // Lay the sections out 64-byte aligned and stamp the table.
  header.section_count = static_cast<uint32_t>(sections.size());
  std::vector<SectionEntry> entries(sections.size());
  uint64_t offset = AlignUp(kHeaderBytes +
                            sections.size() * kSectionEntryBytes);
  for (size_t i = 0; i < sections.size(); ++i) {
    entries[i].id = static_cast<uint32_t>(sections[i].id);
    entries[i].offset = offset;
    entries[i].bytes = sections[i].payload.size();
    entries[i].checksum =
        Fnv1a64(sections[i].payload.data(), sections[i].payload.size());
    offset = AlignUp(offset + entries[i].bytes);
  }
  header.file_bytes = offset;

  ByteWriter head;
  head.Raw(kMagic, sizeof(kMagic));
  head.U32(header.version);
  head.U32(header.section_count);
  head.F64(header.eps);
  head.U64(header.source_rows);
  head.U64(header.declared_sample_size);
  head.U64(header.file_bytes);
  head.U8(header.backend);
  head.U8(header.detection);
  head.U16(header.flags);
  head.U32(header.epoch);
  std::string head_bytes = std::move(head).Take();

  ByteWriter table;
  for (const SectionEntry& e : entries) {
    table.U32(e.id);
    table.U32(0);  // reserved
    table.U64(e.offset);
    table.U64(e.bytes);
    table.U64(e.checksum);
  }
  std::string table_bytes = std::move(table).Take();

  uint64_t checksum = Fnv1a64(head_bytes.data(), head_bytes.size());
  checksum = Fnv1a64(table_bytes.data(), table_bytes.size(), checksum);

  std::string out;
  out.reserve(header.file_bytes);
  out += head_bytes;
  out.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out += table_bytes;
  for (size_t i = 0; i < sections.size(); ++i) {
    out.resize(entries[i].offset, '\0');
    out += sections[i].payload;
  }
  out.resize(header.file_bytes, '\0');
  return out;
}

Status WriteSnapshotFile(const ServeSnapshot& snapshot,
                         const std::string& path) {
  Result<std::string> image = SerializeSnapshot(snapshot);
  if (!image.ok()) return image.status();
  return WriteFileBytes(*image, path);
}

}  // namespace snapfile
}  // namespace qikey
