#ifndef QIKEY_SNAPFILE_FORMAT_H_
#define QIKEY_SNAPFILE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace qikey {
namespace snapfile {

/// The QSNP1 on-disk snapshot format (see docs/architecture.md for the
/// byte-layout reference).
///
/// A file is:
///
///   [64-byte header][section table][pad][section 0][pad][section 1]...
///
/// Every section starts on a 64-byte boundary. Because mmap returns
/// page-aligned (>= 64) bases, a 64-byte-aligned file offset yields a
/// 64-byte-aligned pointer — which is exactly the alignment contract of
/// `AlignedWordBuffer`, so the packed-evidence words are served from the
/// mapping with zero copies.
///
/// Header (64 bytes, little-endian):
///   off  0  char[8]  magic "QSNP1\0\0\0"
///   off  8  u32      format version (1)
///   off 12  u32      section count
///   off 16  f64      eps
///   off 24  u64      source rows
///   off 32  u64      declared filter sample size (pairs or tuples)
///   off 40  u64      total file bytes
///   off 48  u8       backend (0 tuple, 1 mx-pair, 2 bitset)
///   off 49  u8       duplicate detection (0 sort, 1 hash)
///   off 50  u16      flags
///   off 52  u32      store epoch at save time (0 = unrecorded; files
///                    written before epochs were stored carry 0 here,
///                    the field's former reserved value, so they stay
///                    readable — as do epochs above 2^32-1, which are
///                    saved as 0 rather than truncated)
///   off 56  u64      FNV-1a over header[0..56) ++ section table
///
/// Section table entry (32 bytes each, immediately after the header):
///   off  0  u32      section id
///   off  4  u32      reserved (0)
///   off  8  u64      file offset (64-byte aligned)
///   off 16  u64      payload bytes (exact, excluding padding)
///   off 24  u64      FNV-1a over the payload bytes

inline constexpr char kMagic[8] = {'Q', 'S', 'N', 'P', '1', 0, 0, 0};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kHeaderBytes = 64;
inline constexpr size_t kSectionEntryBytes = 32;
inline constexpr size_t kSectionAlign = 64;
/// Far above what v1 writes (at most 6); bounds hostile table sizes.
inline constexpr uint32_t kMaxSections = 64;

/// Snapshot sample rows and pair-table rows must fit `RowIndex`.
inline constexpr uint64_t kMaxRows = 0xFFFFFFFFull;
/// Attribute count ceiling; bounds per-attribute metadata allocations.
inline constexpr uint32_t kMaxAttributes = 1u << 20;

enum class SectionId : uint32_t {
  /// ByteWriter stream: schema, dictionaries, counts, backend extras.
  kMeta = 1,
  /// Snapshot sample codes, column-major, each column 64-byte aligned.
  kSampleCodes = 2,
  /// Minimal keys: `num_keys x ceil(m/64)` packed u64 words.
  kKeys = 3,
  /// `PackedEvidence` block words exactly as `AlignedWordBuffer` holds
  /// them (bitset backend; mapped in place).
  kEvidenceWords = 4,
  /// `PackedEvidence` representative endpoints, `2 x pairs` u32
  /// (bitset backend; mapped in place).
  kEvidenceReps = 5,
  /// MX pair-table codes, column-major as `kSampleCodes` (mx backend).
  kPairCodes = 6,
  /// QIKD dataset blob: the tuple filter's own sample when it does not
  /// share the snapshot sample (tuple backend without bit 0 of flags).
  kFilterSampleBlob = 7,
};

/// Flags (header off 50). Bit 0: the tuple filter evaluates over the
/// snapshot sample itself (no `kFilterSampleBlob` section).
inline constexpr uint16_t kFlagFilterSharesSample = 1u << 0;

/// Section name for inspection output ("meta", "sample_codes", ...).
std::string SectionName(uint32_t id);

struct SnapshotHeader {
  uint32_t version = kFormatVersion;
  uint32_t section_count = 0;
  double eps = 0.0;
  uint64_t source_rows = 0;
  uint64_t declared_sample_size = 0;
  uint64_t file_bytes = 0;
  uint8_t backend = 0;
  uint8_t detection = 0;
  uint16_t flags = 0;
  /// Store epoch when the snapshot was saved; 0 = unrecorded.
  uint32_t epoch = 0;
  uint64_t checksum = 0;
};

struct SectionEntry {
  uint32_t id = 0;
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint64_t checksum = 0;
};

/// Parsed and fully validated header + section table.
struct SnapshotLayout {
  SnapshotHeader header;
  std::vector<SectionEntry> sections;

  /// The entry for `id`, or null when the file has no such section.
  const SectionEntry* Find(SectionId id) const;
};

/// `n` rounded up to the next multiple of `kSectionAlign`.
constexpr uint64_t AlignUp(uint64_t n) {
  return (n + (kSectionAlign - 1)) & ~uint64_t{kSectionAlign - 1};
}

/// Bytes one column of `rows` codes occupies in a column-major codes
/// section (padded so the next column starts 64-byte aligned).
constexpr uint64_t ColumnStrideBytes(uint64_t rows) {
  return AlignUp(rows * sizeof(uint32_t));
}

/// \brief Validates and parses the header and section table of a
/// snapshot image: magic, version, declared size vs `size`, section
/// count bound, header checksum, per-section 64-byte alignment,
/// overflow-safe bounds, pairwise disjointness, unique known ids, and
/// (unless `verify_checksums` is false) every section's payload
/// checksum. After this returns OK, every `SectionEntry` range is safe
/// to read.
///
/// `data` must be 64-byte aligned (checked) — the alignment everything
/// downstream borrows pointers under.
Result<SnapshotLayout> ParseLayout(const uint8_t* data, size_t size,
                                   bool verify_checksums = true);

}  // namespace snapfile
}  // namespace qikey

#endif  // QIKEY_SNAPFILE_FORMAT_H_
