#include "snapfile/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace qikey {
namespace snapfile {

Result<MappedFile> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat '" + path +
                           "': " + std::strerror(err));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IOError("'" + path + "' is not a regular file");
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Status::InvalidArgument("'" + path + "' is empty");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The fd can be closed immediately; the mapping pins the file.
  ::close(fd);
  if (base == MAP_FAILED) {
    return Status::IOError("cannot mmap '" + path +
                           "': " + std::strerror(errno));
  }
  MappedFile file;
  file.data_ = static_cast<const uint8_t*>(base);
  file.size_ = size;
  return file;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

}  // namespace snapfile
}  // namespace qikey
