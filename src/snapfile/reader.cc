#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/bitset_filter.h"
#include "core/mx_pair_filter.h"
#include "core/sample_bounds.h"
#include "core/tuple_sample_filter.h"
#include "data/serialize.h"
#include "data/wire_codec.h"
#include "snapfile/mapped_file.h"
#include "snapfile/snapfile.h"
#include "util/jsonw.h"

namespace qikey {
namespace snapfile {

namespace {

/// Per-column metadata parsed from the meta section.
struct ColumnMeta {
  uint32_t cardinality = 0;
  std::shared_ptr<Dictionary> dict;
};

Status ReadColumnMeta(ByteReader* r, ColumnMeta* out) {
  uint8_t has_dict = 0;
  if (!r->U32(&out->cardinality) || !r->U8(&has_dict)) {
    return Status::InvalidArgument("snapshot column metadata truncated");
  }
  if (has_dict > 1) {
    return Status::InvalidArgument("snapshot column dictionary flag corrupt");
  }
  if (has_dict == 0) return Status::OK();
  uint32_t entries = 0;
  if (!r->U32(&entries)) {
    return Status::InvalidArgument("snapshot column metadata truncated");
  }
  // Each entry costs at least its 4-byte length prefix, so a count the
  // remaining bytes cannot possibly hold is rejected before anything is
  // allocated from it.
  if (entries > r->remaining() / sizeof(uint32_t)) {
    return Status::InvalidArgument(
        "snapshot dictionary entry count exceeds its metadata");
  }
  if (out->cardinality > entries) {
    return Status::InvalidArgument(
        "snapshot column cardinality exceeds its dictionary");
  }
  auto dict = std::make_shared<Dictionary>();
  std::string value;
  for (uint32_t i = 0; i < entries; ++i) {
    if (!r->Str(&value)) {
      return Status::InvalidArgument("snapshot dictionary truncated");
    }
    if (dict->GetOrAdd(value) != i) {
      return Status::InvalidArgument(
          "snapshot dictionary holds a duplicate value");
    }
  }
  out->dict = std::move(dict);
  return Status::OK();
}

/// Builds a dataset over a column-major codes section without copying a
/// single code: every column is a `Column::Borrowed` view into the
/// image. All codes are range-checked against their column's declared
/// cardinality first — after this, every downstream consumer
/// (projection hashing, dictionary rendering, evidence packing) is safe.
Result<Dataset> BorrowCodesDataset(Schema schema,
                                   const std::vector<ColumnMeta>& metas,
                                   const uint8_t* image,
                                   const SectionEntry& section,
                                   uint64_t rows, const char* what) {
  const size_t m = metas.size();
  const uint64_t stride = ColumnStrideBytes(rows);
  if (section.bytes != m * stride) {
    return Status::InvalidArgument(std::string("snapshot ") + what +
                                   " section size does not match its "
                                   "declared shape");
  }
  std::vector<Column> columns;
  columns.reserve(m);
  for (size_t j = 0; j < m; ++j) {
    const auto* codes = reinterpret_cast<const ValueCode*>(
        image + section.offset + j * stride);
    const uint32_t cardinality = metas[j].cardinality;
    if (rows > 0 && cardinality == 0) {
      return Status::InvalidArgument(std::string("snapshot ") + what +
                                     " column has rows but zero "
                                     "cardinality");
    }
    for (uint64_t i = 0; i < rows; ++i) {
      if (codes[i] >= cardinality) {
        return Status::InvalidArgument(std::string("snapshot ") + what +
                                       " holds a code outside its "
                                       "column's cardinality");
      }
    }
    columns.push_back(Column::Borrowed(codes, static_cast<size_t>(rows),
                                       cardinality, metas[j].dict));
  }
  return Dataset::Make(std::move(schema), std::move(columns));
}

}  // namespace

Result<ServeSnapshot> SnapshotFromBytes(const uint8_t* data, size_t size,
                                        std::shared_ptr<const void> owner) {
  Result<SnapshotLayout> layout = ParseLayout(data, size);
  if (!layout.ok()) return layout.status();
  const SnapshotHeader& h = layout->header;
  if (h.backend > 2) {
    return Status::InvalidArgument("unknown snapshot filter backend");
  }
  if (h.detection > 1) {
    return Status::InvalidArgument("unknown snapshot duplicate detection");
  }
  if ((h.flags & ~kFlagFilterSharesSample) != 0) {
    return Status::InvalidArgument("unknown snapshot flags");
  }
  if (h.flags != 0 && h.backend != 0) {
    return Status::InvalidArgument(
        "sample-sharing flag is only valid for the tuple backend");
  }
  QIKEY_RETURN_NOT_OK(ValidateEps(h.eps));

  const SectionEntry* meta_sec = layout->Find(SectionId::kMeta);
  const SectionEntry* codes_sec = layout->Find(SectionId::kSampleCodes);
  const SectionEntry* keys_sec = layout->Find(SectionId::kKeys);
  if (meta_sec == nullptr || codes_sec == nullptr || keys_sec == nullptr) {
    return Status::InvalidArgument(
        "snapshot is missing a required section");
  }

  ByteReader meta(std::string_view(
      reinterpret_cast<const char*>(data + meta_sec->offset),
      static_cast<size_t>(meta_sec->bytes)));
  uint32_t m = 0;
  uint64_t rows = 0;
  if (!meta.U32(&m) || !meta.U64(&rows)) {
    return Status::InvalidArgument("snapshot metadata truncated");
  }
  if (m == 0 || m > kMaxAttributes) {
    return Status::InvalidArgument(
        "snapshot attribute count out of range");
  }
  if (rows > kMaxRows) {
    return Status::InvalidArgument("snapshot sample row count out of range");
  }
  std::vector<std::string> names(m);
  std::vector<ColumnMeta> sample_metas(m);
  for (uint32_t j = 0; j < m; ++j) {
    if (!meta.Str(&names[j])) {
      return Status::InvalidArgument("snapshot metadata truncated");
    }
    QIKEY_RETURN_NOT_OK(ReadColumnMeta(&meta, &sample_metas[j]));
  }
  uint64_t num_keys = 0;
  uint32_t prov_count = 0;
  if (!meta.U64(&num_keys) || !meta.U32(&prov_count)) {
    return Status::InvalidArgument("snapshot metadata truncated");
  }
  if (h.backend != 0 && prov_count != 0) {
    return Status::InvalidArgument(
        "snapshot carries provenance for a pair backend");
  }
  if (prov_count > meta.remaining() / sizeof(RowIndex)) {
    return Status::InvalidArgument("snapshot provenance truncated");
  }
  std::vector<RowIndex> provenance(prov_count);
  if (prov_count > 0 &&
      !meta.Raw(provenance.data(), prov_count * sizeof(RowIndex))) {
    return Status::InvalidArgument("snapshot provenance truncated");
  }

  uint64_t pair_rows = 0;
  std::vector<ColumnMeta> pair_metas;
  uint64_t ev_pairs = 0;
  uint64_t ev_source_pairs = 0;
  if (h.backend == 1) {
    if (!meta.U64(&pair_rows)) {
      return Status::InvalidArgument("snapshot metadata truncated");
    }
    pair_metas.resize(m);
    for (uint32_t j = 0; j < m; ++j) {
      QIKEY_RETURN_NOT_OK(ReadColumnMeta(&meta, &pair_metas[j]));
    }
  } else if (h.backend == 2) {
    if (!meta.U64(&ev_pairs) || !meta.U64(&ev_source_pairs)) {
      return Status::InvalidArgument("snapshot metadata truncated");
    }
  }
  if (!meta.AtEnd()) {
    return Status::InvalidArgument(
        "trailing bytes after snapshot metadata");
  }

  // Exact section census: everything the backend needs, nothing else.
  size_t expected = 3;
  if (h.backend == 1) expected += 1;  // pair codes
  if (h.backend == 2) expected += 2;  // evidence words + reps
  const bool shares_sample = (h.flags & kFlagFilterSharesSample) != 0;
  if (h.backend == 0 && !shares_sample) expected += 1;  // filter blob
  if (layout->sections.size() != expected) {
    return Status::InvalidArgument(
        "snapshot section set does not match its backend");
  }

  Result<Dataset> sample_ds =
      BorrowCodesDataset(Schema(names), sample_metas, data, *codes_sec,
                         rows, "sample");
  if (!sample_ds.ok()) return sample_ds.status();
  // Every component that views the image carries `owner` in its
  // deleter, so the mapping lives exactly as long as the last view.
  std::shared_ptr<Dataset> sample(
      new Dataset(std::move(*sample_ds)),
      [owner](Dataset* p) { delete p; });

  const uint64_t key_words = (uint64_t{m} + 63) / 64;
  const uint64_t key_bytes = key_words * sizeof(uint64_t);
  if (keys_sec->bytes % key_bytes != 0 ||
      keys_sec->bytes / key_bytes != num_keys) {
    return Status::InvalidArgument(
        "snapshot key section size does not match its key count");
  }
  std::vector<AttributeSet> keys;
  keys.reserve(static_cast<size_t>(num_keys));
  const auto* key_data =
      reinterpret_cast<const uint64_t*>(data + keys_sec->offset);
  for (uint64_t k = 0; k < num_keys; ++k) {
    AttributeSet key(m);
    for (uint64_t w = 0; w < key_words; ++w) {
      uint64_t bits = key_data[k * key_words + w];
      while (bits != 0) {
        const uint64_t j =
            w * 64 + static_cast<uint64_t>(std::countr_zero(bits));
        bits &= bits - 1;
        if (j >= m) {
          return Status::InvalidArgument(
              "snapshot key has a bit beyond the sample arity");
        }
        key.Add(static_cast<AttributeIndex>(j));
      }
    }
    keys.push_back(std::move(key));
  }

  std::shared_ptr<const SeparationFilter> filter;
  switch (h.backend) {
    case 0: {
      const DuplicateDetection detection = h.detection == 1
                                               ? DuplicateDetection::kHash
                                               : DuplicateDetection::kSort;
      if (shares_sample) {
        if (prov_count != 0 && prov_count != rows) {
          return Status::InvalidArgument(
              "snapshot provenance does not match its sample");
        }
        filter = std::make_shared<const TupleSampleFilter>(
            TupleSampleFilter::FromSample(sample, std::move(provenance),
                                          detection));
        break;
      }
      const SectionEntry* blob_sec =
          layout->Find(SectionId::kFilterSampleBlob);
      if (blob_sec == nullptr) {
        return Status::InvalidArgument(
            "snapshot is missing its filter sample");
      }
      Result<Dataset> filter_sample = DeserializeDataset(std::string_view(
          reinterpret_cast<const char*>(data + blob_sec->offset),
          static_cast<size_t>(blob_sec->bytes)));
      if (!filter_sample.ok()) return filter_sample.status();
      if (filter_sample->num_attributes() != m) {
        return Status::InvalidArgument(
            "snapshot filter sample arity does not match the snapshot");
      }
      if (prov_count != 0 && prov_count != filter_sample->num_rows()) {
        return Status::InvalidArgument(
            "snapshot provenance does not match its filter sample");
      }
      filter = std::make_shared<const TupleSampleFilter>(
          TupleSampleFilter::FromSample(std::move(*filter_sample),
                                        std::move(provenance), detection));
      break;
    }
    case 1: {
      const SectionEntry* pair_sec = layout->Find(SectionId::kPairCodes);
      if (pair_sec == nullptr) {
        return Status::InvalidArgument("snapshot is missing its pair table");
      }
      if (pair_rows % 2 != 0 || pair_rows > kMaxRows) {
        return Status::InvalidArgument(
            "snapshot pair table row count out of range");
      }
      if (pair_rows / 2 != h.declared_sample_size) {
        return Status::InvalidArgument(
            "snapshot pair table does not match its declared sample size");
      }
      Result<Dataset> pair_ds =
          BorrowCodesDataset(Schema(names), pair_metas, data, *pair_sec,
                             pair_rows, "pair table");
      if (!pair_ds.ok()) return pair_ds.status();
      Result<MxPairFilter> mx =
          MxPairFilter::FromMaterializedPairs(std::move(*pair_ds));
      if (!mx.ok()) return mx.status();
      filter = std::shared_ptr<const SeparationFilter>(
          new MxPairFilter(std::move(*mx)),
          [owner](const SeparationFilter* p) { delete p; });
      break;
    }
    case 2: {
      const SectionEntry* words_sec =
          layout->Find(SectionId::kEvidenceWords);
      const SectionEntry* reps_sec = layout->Find(SectionId::kEvidenceReps);
      if (words_sec == nullptr || reps_sec == nullptr) {
        return Status::InvalidArgument(
            "snapshot is missing its packed evidence");
      }
      if (ev_pairs > kMaxRows) {
        return Status::InvalidArgument(
            "snapshot evidence pair count out of range");
      }
      if (reps_sec->bytes != ev_pairs * 2 * sizeof(uint32_t)) {
        return Status::InvalidArgument(
            "snapshot evidence reps size does not match its pair count");
      }
      if (words_sec->bytes % sizeof(uint64_t) != 0) {
        return Status::InvalidArgument(
            "snapshot evidence words section is not word-sized");
      }
      Result<PackedEvidence> evidence = PackedEvidence::FromBorrowed(
          m, ev_source_pairs, static_cast<size_t>(ev_pairs),
          reinterpret_cast<const uint64_t*>(data + words_sec->offset),
          static_cast<size_t>(words_sec->bytes / sizeof(uint64_t)),
          reinterpret_cast<const uint32_t*>(data + reps_sec->offset));
      if (!evidence.ok()) return evidence.status();
      Result<BitsetSeparationFilter> bitset =
          BitsetSeparationFilter::FromPackedEvidence(
              std::move(*evidence), h.declared_sample_size);
      if (!bitset.ok()) return bitset.status();
      filter = std::shared_ptr<const SeparationFilter>(
          new BitsetSeparationFilter(std::move(*bitset)),
          [owner](const SeparationFilter* p) { delete p; });
      break;
    }
  }

  ServeSnapshot snapshot;
  // The recorded epoch rides along so publishing the restored snapshot
  // resumes the store's epoch sequence instead of restarting it.
  snapshot.epoch = h.epoch;
  snapshot.eps = h.eps;
  snapshot.source_rows = h.source_rows;
  snapshot.sample = sample;
  snapshot.filter = std::move(filter);
  snapshot.keys = std::make_shared<const std::vector<AttributeSet>>(
      std::move(keys));
  return snapshot;
}

Result<ServeSnapshot> SnapshotFromOwnedBytes(std::string_view bytes) {
  auto buffer =
      std::make_shared<AlignedWordBuffer>((bytes.size() + 7) / 8);
  if (!bytes.empty()) {
    std::memcpy(buffer->data(), bytes.data(), bytes.size());
  }
  const auto* base = reinterpret_cast<const uint8_t*>(
      static_cast<const AlignedWordBuffer&>(*buffer).data());
  return SnapshotFromBytes(base, bytes.size(), buffer);
}

Result<ServeSnapshot> ReadSnapshotFile(const std::string& path) {
  Result<MappedFile> mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  auto owner = std::make_shared<MappedFile>(std::move(*mapped));
  Result<ServeSnapshot> snapshot =
      SnapshotFromBytes(owner->data(), owner->size(), owner);
  if (!snapshot.ok()) {
    return Status::InvalidArgument("'" + path +
                                   "': " + snapshot.status().message());
  }
  return snapshot;
}

Result<SnapshotFileInfo> InspectSnapshotFile(const std::string& path) {
  Result<MappedFile> mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  Result<SnapshotLayout> layout =
      ParseLayout(mapped->data(), mapped->size());
  if (!layout.ok()) {
    return Status::InvalidArgument("'" + path +
                                   "': " + layout.status().message());
  }
  SnapshotFileInfo info;
  info.header = layout->header;
  info.sections = std::move(layout->sections);
  return info;
}

namespace {

void AppendHex64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"0x%016llx\"",
                static_cast<unsigned long long>(v));
  *out += buf;
}

void AppendDouble(double v, std::string* out) {
  if (!std::isfinite(v)) {
    // Keep the output valid JSON for files carrying garbage eps.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    AppendJsonString(buf, out);
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

std::string BackendName(uint8_t backend) {
  switch (backend) {
    case 0:
      return "tuple";
    case 1:
      return "mx";
    case 2:
      return "bitset";
  }
  return "unknown(" + std::to_string(backend) + ")";
}

std::string DetectionName(uint8_t detection) {
  switch (detection) {
    case 0:
      return "sort";
    case 1:
      return "hash";
  }
  return "unknown(" + std::to_string(detection) + ")";
}

}  // namespace

std::string RenderSnapshotInfoJson(const SnapshotFileInfo& info) {
  // Keys sorted alphabetically at every level, matching the repo's
  // other JSON emitters.
  std::string out = "{\"backend\":";
  AppendJsonString(BackendName(info.header.backend), &out);
  out += ",\"declared_sample_size\":";
  out += std::to_string(info.header.declared_sample_size);
  out += ",\"detection\":";
  AppendJsonString(DetectionName(info.header.detection), &out);
  out += ",\"epoch\":";
  out += std::to_string(info.header.epoch);
  out += ",\"eps\":";
  AppendDouble(info.header.eps, &out);
  out += ",\"file_bytes\":";
  out += std::to_string(info.header.file_bytes);
  out += ",\"flags\":";
  out += std::to_string(info.header.flags);
  out += ",\"header_checksum\":";
  AppendHex64(info.header.checksum, &out);
  out += ",\"section_count\":";
  out += std::to_string(info.header.section_count);
  out += ",\"sections\":[";
  for (size_t i = 0; i < info.sections.size(); ++i) {
    const SectionEntry& s = info.sections[i];
    if (i > 0) out += ",";
    out += "{\"bytes\":";
    out += std::to_string(s.bytes);
    out += ",\"checksum\":";
    AppendHex64(s.checksum, &out);
    out += ",\"id\":";
    out += std::to_string(s.id);
    out += ",\"name\":";
    AppendJsonString(SectionName(s.id), &out);
    out += ",\"offset\":";
    out += std::to_string(s.offset);
    out += "}";
  }
  out += "],\"source_rows\":";
  out += std::to_string(info.header.source_rows);
  out += ",\"version\":";
  out += std::to_string(info.header.version);
  out += "}";
  return out;
}

}  // namespace snapfile
}  // namespace qikey
