#ifndef QIKEY_SNAPFILE_SNAPFILE_H_
#define QIKEY_SNAPFILE_SNAPFILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "serve/snapshot.h"
#include "snapfile/format.h"
#include "util/status.h"

namespace qikey {
namespace snapfile {

/// \brief QSNP1 snapshot artifacts: a `ServeSnapshot` frozen into one
/// mmap-able file (see format.h for the layout and docs/architecture.md
/// for the reference).
///
/// The writer lays the hot structures out exactly as their in-memory
/// owners hold them — packed-evidence words as `AlignedWordBuffer`
/// does, code columns 64-byte aligned — so the reader's snapshot is a
/// set of borrowed views into the mapping: serving starts as soon as
/// the file is validated, and the data pages are faulted in from page
/// cache on first touch, shared across processes.

/// The whole file image of `snapshot`, in memory. The snapshot's epoch
/// is recorded in the header (u32; 0 when it never was published), and
/// a loaded snapshot carries it back so `SnapshotStore::Publish`
/// resumes the epoch sequence instead of restarting at 1.
/// Unimplemented when the snapshot's filter is not one of the three
/// library backends.
Result<std::string> SerializeSnapshot(const ServeSnapshot& snapshot);

/// Serializes `snapshot` and writes it to `path` (truncating).
Status WriteSnapshotFile(const ServeSnapshot& snapshot,
                         const std::string& path);

/// \brief Reconstructs a servable snapshot from a snapshot image,
/// borrowing storage from it: sample (and pair-table) codes and the
/// packed-evidence words/representatives are views into `data`, kept
/// alive by storing `owner` in every component's deleter.
///
/// `data` must be 64-byte aligned and stay immutable while any piece of
/// the returned snapshot (or a copy) is alive. The image is fully
/// validated — bounds, alignment, checksums, code ranges — before any
/// borrowed pointer is created; a malformed image yields a `Status`,
/// never a crash.
Result<ServeSnapshot> SnapshotFromBytes(const uint8_t* data, size_t size,
                                        std::shared_ptr<const void> owner);

/// As `SnapshotFromBytes` for unaligned/ephemeral bytes: copies them
/// into an aligned buffer owned by the returned snapshot. For tests and
/// fuzzing; file serving goes through `ReadSnapshotFile`.
Result<ServeSnapshot> SnapshotFromOwnedBytes(std::string_view bytes);

/// Maps `path` and reconstructs the snapshot it holds; the mapping
/// lives exactly as long as the snapshot's components do.
Result<ServeSnapshot> ReadSnapshotFile(const std::string& path);

/// Header + section table of a snapshot file, structurally validated
/// (`ParseLayout`, including checksums) but without reconstructing the
/// snapshot.
struct SnapshotFileInfo {
  SnapshotHeader header;
  std::vector<SectionEntry> sections;
};

Result<SnapshotFileInfo> InspectSnapshotFile(const std::string& path);

/// `qikey snapshot inspect` output: the info as one sorted-key JSON
/// object (stable field order; checksums rendered as hex strings).
std::string RenderSnapshotInfoJson(const SnapshotFileInfo& info);

}  // namespace snapfile
}  // namespace qikey

#endif  // QIKEY_SNAPFILE_SNAPFILE_H_
