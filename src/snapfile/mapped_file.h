#ifndef QIKEY_SNAPFILE_MAPPED_FILE_H_
#define QIKEY_SNAPFILE_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace qikey {
namespace snapfile {

/// \brief RAII read-only memory mapping of a whole file.
///
/// The mapping is `PROT_READ`/`MAP_PRIVATE`: the pages come straight
/// from (and stay in) the page cache, shared with every other process
/// mapping the same file, and nothing here can write the file. The base
/// is page-aligned, which satisfies the 64-byte section alignment the
/// snapshot format is laid out for.
class MappedFile {
 public:
  static Result<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace snapfile
}  // namespace qikey

#endif  // QIKEY_SNAPFILE_MAPPED_FILE_H_
