#include "snapfile/format.h"

#include <algorithm>
#include <cstring>

#include "data/wire_codec.h"

namespace qikey {
namespace snapfile {

std::string SectionName(uint32_t id) {
  switch (static_cast<SectionId>(id)) {
    case SectionId::kMeta:
      return "meta";
    case SectionId::kSampleCodes:
      return "sample_codes";
    case SectionId::kKeys:
      return "keys";
    case SectionId::kEvidenceWords:
      return "evidence_words";
    case SectionId::kEvidenceReps:
      return "evidence_reps";
    case SectionId::kPairCodes:
      return "pair_codes";
    case SectionId::kFilterSampleBlob:
      return "filter_sample";
  }
  return "unknown(" + std::to_string(id) + ")";
}

const SectionEntry* SnapshotLayout::Find(SectionId id) const {
  for (const SectionEntry& s : sections) {
    if (s.id == static_cast<uint32_t>(id)) return &s;
  }
  return nullptr;
}

Result<SnapshotLayout> ParseLayout(const uint8_t* data, size_t size,
                                   bool verify_checksums) {
  if (data == nullptr ||
      (reinterpret_cast<uintptr_t>(data) & (kSectionAlign - 1)) != 0) {
    return Status::InvalidArgument("snapshot image base is not 64-byte "
                                   "aligned");
  }
  if (size < kHeaderBytes) {
    return Status::InvalidArgument("snapshot file shorter than its header");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a qikey snapshot file (bad magic)");
  }
  ByteReader r(std::string_view(reinterpret_cast<const char*>(data), size));
  r.Skip(sizeof(kMagic));
  SnapshotLayout layout;
  SnapshotHeader& h = layout.header;
  // The header is a fixed 64 bytes and `size >= kHeaderBytes`, so these
  // reads cannot fail; the reader keeps them bounds-checked anyway.
  if (!r.U32(&h.version) || !r.U32(&h.section_count) || !r.F64(&h.eps) ||
      !r.U64(&h.source_rows) || !r.U64(&h.declared_sample_size) ||
      !r.U64(&h.file_bytes) || !r.U8(&h.backend) || !r.U8(&h.detection) ||
      !r.U16(&h.flags) || !r.U32(&h.epoch) || !r.U64(&h.checksum)) {
    return Status::InvalidArgument("snapshot header truncated");
  }
  if (h.version != kFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot format version " +
                                   std::to_string(h.version));
  }
  if (h.file_bytes != size) {
    return Status::InvalidArgument(
        "snapshot file size does not match its header");
  }
  if (h.section_count == 0 || h.section_count > kMaxSections) {
    return Status::InvalidArgument("snapshot section count out of range");
  }
  const uint64_t table_bytes =
      uint64_t{h.section_count} * kSectionEntryBytes;
  if (table_bytes > size - kHeaderBytes) {
    return Status::InvalidArgument("snapshot section table truncated");
  }
  if (verify_checksums) {
    uint64_t expect = Fnv1a64(data, kHeaderBytes - sizeof(uint64_t));
    expect = Fnv1a64(data + kHeaderBytes, table_bytes, expect);
    if (expect != h.checksum) {
      return Status::InvalidArgument("snapshot header checksum mismatch");
    }
  }
  layout.sections.reserve(h.section_count);
  for (uint32_t i = 0; i < h.section_count; ++i) {
    SectionEntry s;
    uint32_t entry_reserved = 0;
    if (!r.U32(&s.id) || !r.U32(&entry_reserved) || !r.U64(&s.offset) ||
        !r.U64(&s.bytes) || !r.U64(&s.checksum)) {
      return Status::InvalidArgument("snapshot section table truncated");
    }
    if (entry_reserved != 0) {
      return Status::InvalidArgument(
          "snapshot section entry reserved field is set");
    }
    if (s.id < static_cast<uint32_t>(SectionId::kMeta) ||
        s.id > static_cast<uint32_t>(SectionId::kFilterSampleBlob)) {
      // v1 readers reject ids v1 writers cannot produce; additions bump
      // the format version.
      return Status::InvalidArgument("unknown snapshot section id " +
                                     std::to_string(s.id));
    }
    if ((s.offset & (kSectionAlign - 1)) != 0) {
      return Status::InvalidArgument("snapshot section is misaligned");
    }
    // Overflow-safe bounds: offset and bytes are both validated against
    // the real file size before their sum is formed.
    if (s.offset > size || s.bytes > size - s.offset) {
      return Status::InvalidArgument("snapshot section out of bounds");
    }
    if (s.offset < kHeaderBytes + table_bytes) {
      return Status::InvalidArgument(
          "snapshot section overlaps the header");
    }
    layout.sections.push_back(s);
  }
  // Disjointness and id uniqueness over the (small, bounded) table.
  std::vector<SectionEntry> sorted = layout.sections;
  std::sort(sorted.begin(), sorted.end(),
            [](const SectionEntry& a, const SectionEntry& b) {
              return a.offset < b.offset;
            });
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].offset < sorted[i - 1].offset + sorted[i - 1].bytes) {
      return Status::InvalidArgument("snapshot sections overlap");
    }
  }
  for (size_t i = 0; i < layout.sections.size(); ++i) {
    for (size_t j = i + 1; j < layout.sections.size(); ++j) {
      if (layout.sections[i].id == layout.sections[j].id) {
        return Status::InvalidArgument("duplicate snapshot section id " +
                                       std::to_string(layout.sections[i].id));
      }
    }
  }
  if (verify_checksums) {
    for (const SectionEntry& s : layout.sections) {
      if (Fnv1a64(data + s.offset, s.bytes) != s.checksum) {
        return Status::InvalidArgument("snapshot section '" +
                                       SectionName(s.id) +
                                       "' checksum mismatch");
      }
    }
  }
  return layout;
}

}  // namespace snapfile
}  // namespace qikey
