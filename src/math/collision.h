#ifndef QIKEY_MATH_COLLISION_H_
#define QIKEY_MATH_COLLISION_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace qikey {

/// \brief Non-collision probabilities for the constrained balls-into-bins
/// problem at the heart of the paper's analysis (Section 2.1).
///
/// A clique-size profile `s = (s_1, ..., s_n)` (non-negative, summing to
/// `n`) induces the color distribution `D_s = (s_1/n, ..., s_n/n)`.
/// Drawing `r` balls, the probability that no two share a color is
///   with replacement:    P = r!/n^r * e_r(s)            (paper: P_{r,D_s})
///   without replacement: P = r! * e_r(s) / (n)_r        (paper: P_{r,D_s,<>})
/// For integer profiles the without-replacement value is the exact
/// probability of sampling `r` distinct tuples no two of which fall in the
/// same clique of the auxiliary graph `G_A`.

/// `log` of the with-replacement non-collision probability.
double LogNonCollisionWithReplacement(const std::vector<double>& profile,
                                      uint64_t r);

/// `log` of the without-replacement non-collision probability. The profile
/// must sum to `n >= r` (entries may be real for the relaxed problem).
double LogNonCollisionWithoutReplacement(const std::vector<double>& profile,
                                         uint64_t r);

/// Two-valued profile versions (`ka` entries of `a`, `kb` of `b`; the sum
/// `ka*a + kb*b` plays the role of `n`).
double LogNonCollisionWithReplacementTwoValue(double a, uint64_t ka, double b,
                                              uint64_t kb, uint64_t r);
double LogNonCollisionWithoutReplacementTwoValue(double a, uint64_t ka,
                                                 double b, uint64_t kb,
                                                 uint64_t r);

/// \brief Monte-Carlo estimate of the with-replacement non-collision
/// probability for an integer profile; used to cross-check the closed
/// forms in tests.
double EstimateNonCollisionMonteCarlo(const std::vector<uint64_t>& profile,
                                      uint64_t r, uint64_t trials, Rng* rng);

/// \brief Claim 1 of the paper: for `n > r(r-1)/m + r - 1`,
/// `P_without < e^m * P_with`. Returns the exact ratio bound
/// `n^r / (n)_r` in log space.
double LogWithoutToWithRatio(uint64_t n, uint64_t r);

}  // namespace qikey

#endif  // QIKEY_MATH_COLLISION_H_
