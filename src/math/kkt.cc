#include "math/kkt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "math/collision.h"
#include "util/logging.h"

namespace qikey {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

std::vector<double> TwoValueProfile::ToVector(uint64_t n) const {
  QIKEY_CHECK(ka + kb <= n);
  std::vector<double> s;
  s.reserve(n);
  s.insert(s.end(), ka, a);
  s.insert(s.end(), kb, b);
  s.insert(s.end(), n - ka - kb, 0.0);
  return s;
}

double TwoValueProfile::Sum() const {
  return a * static_cast<double>(ka) + b * static_cast<double>(kb);
}

double TwoValueProfile::SumSquares() const {
  return a * a * static_cast<double>(ka) + b * b * static_cast<double>(kb);
}

TwoValueProfile PaperTildeProfile(uint64_t n, double eps) {
  TwoValueProfile p;
  double dn = static_cast<double>(n);
  p.a = std::sqrt(eps) * dn / 2.0;
  p.ka = 1;
  p.b = 1.0;
  p.kb = static_cast<uint64_t>(std::llround((1.0 - std::sqrt(eps) / 2.0) * dn));
  return p;
}

TwoValueProfile UniformIntuitionProfile(uint64_t n, double eps) {
  TwoValueProfile p;
  double dn = static_cast<double>(n);
  uint64_t support = static_cast<uint64_t>(std::floor(4.0 / eps));
  support = std::min<uint64_t>(std::max<uint64_t>(support, 1), n);
  p.a = dn / static_cast<double>(support);
  p.ka = support;
  p.b = 0.0;
  p.kb = 0;
  return p;
}

TwoValueProfile FindWorstCaseProfile(uint64_t n, double eps, uint64_t r,
                                     uint64_t support_grid) {
  QIKEY_CHECK(n >= 2);
  QIKEY_CHECK(eps > 0.0 && eps <= 1.0);
  double dn = static_cast<double>(n);
  double target_sq = eps * dn * dn / 4.0;  // constraint (1), held tight

  TwoValueProfile best;
  best.log_non_collision = kNegInf;

  auto consider = [&](double a, uint64_t ka, double b, uint64_t kb) {
    if (a < 0.0 || b < 0.0) return;
    if (ka + kb > n || ka + kb == 0) return;
    TwoValueProfile cand{a, ka, b, kb, 0.0};
    // Allow small numeric slack on the constraints.
    if (std::abs(cand.Sum() - dn) > 1e-6 * dn) return;
    if (cand.SumSquares() < target_sq * (1.0 - 1e-9)) return;
    cand.log_non_collision =
        LogNonCollisionWithReplacementTwoValue(a, ka, b, kb, r);
    if (cand.log_non_collision > best.log_non_collision) best = cand;
  };

  // Log-spaced candidate support sizes in [1, n].
  std::vector<uint64_t> supports;
  for (uint64_t g = 0; g <= support_grid; ++g) {
    double f = static_cast<double>(g) / static_cast<double>(support_grid);
    uint64_t k = static_cast<uint64_t>(std::llround(std::pow(dn, f)));
    k = std::min<uint64_t>(std::max<uint64_t>(k, 1), n);
    if (supports.empty() || supports.back() != k) supports.push_back(k);
  }

  // One-value candidates: support k, value n/k; feasible iff n^2/k >= S.
  for (uint64_t k : supports) {
    double a = dn / static_cast<double>(k);
    if (a * a * static_cast<double>(k) >= target_sq * (1.0 - 1e-12)) {
      consider(a, k, 0.0, 0);
    }
  }

  // Two-value candidates with constraint (1) tight: for (ka, kb), solve
  //   ka*a + kb*b = n,  ka*a^2 + kb*b^2 = S
  // Substituting b = (n - ka*a)/kb gives the quadratic
  //   ka*(ka+kb)*a^2 - 2*n*ka*a + (n^2 - S*kb) = 0.
  for (uint64_t ka : supports) {
    for (uint64_t kb : supports) {
      if (ka + kb > n) continue;
      double dka = static_cast<double>(ka);
      double dkb = static_cast<double>(kb);
      double qa = dka * (dka + dkb);
      double qb = -2.0 * dn * dka;
      double qc = dn * dn - target_sq * dkb;
      double disc = qb * qb - 4.0 * qa * qc;
      if (disc < 0.0) continue;
      double sq = std::sqrt(disc);
      for (double root : {(-qb + sq) / (2.0 * qa), (-qb - sq) / (2.0 * qa)}) {
        double a = root;
        double b = (dn - dka * a) / dkb;
        if (a >= 0.0 && b >= 0.0) consider(a, ka, b, kb);
      }
    }
  }

  // Always include the paper's witness profile.
  TwoValueProfile tilde = PaperTildeProfile(n, eps);
  if (tilde.ka + tilde.kb <= n) {
    // Its sum may differ from n by rounding; rescale b-count weighting by
    // adjusting the big entry so the sum is exactly n.
    tilde.a = dn - static_cast<double>(tilde.kb);
    if (tilde.a > 0.0 &&
        tilde.SumSquares() >= target_sq * (1.0 - 1e-9)) {
      tilde.log_non_collision = LogNonCollisionWithReplacementTwoValue(
          tilde.a, tilde.ka, tilde.b, tilde.kb, r);
      if (tilde.log_non_collision > best.log_non_collision) best = tilde;
    }
  }

  QIKEY_CHECK(best.log_non_collision != kNegInf)
      << "no feasible two-value profile found (n=" << n << ", eps=" << eps
      << ", r=" << r << ")";
  return best;
}

}  // namespace qikey
