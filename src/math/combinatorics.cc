#include "math/combinatorics.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace qikey {

double LogFactorial(uint64_t n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogBinomial(uint64_t n, uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double BinomialDouble(uint64_t n, uint64_t k) {
  if (k > n) return 0.0;
  return std::exp(LogBinomial(n, k));
}

uint64_t PairCount(uint64_t n) {
  if (n < 2) return 0;
  // n or n-1 is even, so the division is exact with no overflow for
  // n < 2^32.
  QIKEY_DCHECK(n <= (uint64_t{1} << 32));
  return (n % 2 == 0) ? (n / 2) * (n - 1) : n * ((n - 1) / 2);
}

double LogFallingFactorial(uint64_t n, uint64_t r) {
  if (r > n) return -std::numeric_limits<double>::infinity();
  return LogFactorial(n) - LogFactorial(n - r);
}

double LogSumExp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  double hi = a > b ? a : b;
  double lo = a > b ? b : a;
  return hi + std::log1p(std::exp(lo - hi));
}

double Log1mExp(double x) {
  QIKEY_DCHECK(x <= 0.0);
  if (x == 0.0) return -std::numeric_limits<double>::infinity();
  // Mächler's rule: use log(-expm1(x)) for x > -ln 2, log1p(-exp(x)) else.
  if (x > -0.6931471805599453) {
    return std::log(-std::expm1(x));
  }
  return std::log1p(-std::exp(x));
}

}  // namespace qikey
