#include "math/collision.h"

#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "math/combinatorics.h"
#include "math/sympoly.h"
#include "util/logging.h"

namespace qikey {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

double ProfileSum(const std::vector<double>& profile) {
  return std::accumulate(profile.begin(), profile.end(), 0.0);
}

}  // namespace

double LogNonCollisionWithReplacement(const std::vector<double>& profile,
                                      uint64_t r) {
  double n = ProfileSum(profile);
  if (n <= 0.0) return kNegInf;
  double log_e = LogElementarySymmetric(profile, r);
  if (log_e == kNegInf) return kNegInf;
  return LogFactorial(r) - static_cast<double>(r) * std::log(n) + log_e;
}

double LogNonCollisionWithoutReplacement(const std::vector<double>& profile,
                                         uint64_t r) {
  double n = ProfileSum(profile);
  uint64_t n_int = static_cast<uint64_t>(std::llround(n));
  if (r > n_int) return kNegInf;
  double log_e = LogElementarySymmetric(profile, r);
  if (log_e == kNegInf) return kNegInf;
  return LogFactorial(r) - LogFallingFactorial(n_int, r) + log_e;
}

double LogNonCollisionWithReplacementTwoValue(double a, uint64_t ka, double b,
                                              uint64_t kb, uint64_t r) {
  double n = a * static_cast<double>(ka) + b * static_cast<double>(kb);
  if (n <= 0.0) return kNegInf;
  double log_e = LogElementarySymmetricTwoValue(a, ka, b, kb, r);
  if (log_e == kNegInf) return kNegInf;
  return LogFactorial(r) - static_cast<double>(r) * std::log(n) + log_e;
}

double LogNonCollisionWithoutReplacementTwoValue(double a, uint64_t ka,
                                                 double b, uint64_t kb,
                                                 uint64_t r) {
  double n = a * static_cast<double>(ka) + b * static_cast<double>(kb);
  uint64_t n_int = static_cast<uint64_t>(std::llround(n));
  if (r > n_int) return kNegInf;
  double log_e = LogElementarySymmetricTwoValue(a, ka, b, kb, r);
  if (log_e == kNegInf) return kNegInf;
  return LogFactorial(r) - LogFallingFactorial(n_int, r) + log_e;
}

double EstimateNonCollisionMonteCarlo(const std::vector<uint64_t>& profile,
                                      uint64_t r, uint64_t trials, Rng* rng) {
  QIKEY_CHECK(rng != nullptr);
  uint64_t n = std::accumulate(profile.begin(), profile.end(), uint64_t{0});
  QIKEY_CHECK(n > 0);
  // Build the cumulative distribution once.
  std::vector<uint64_t> cum(profile.size());
  uint64_t acc = 0;
  for (size_t i = 0; i < profile.size(); ++i) {
    acc += profile[i];
    cum[i] = acc;
  }
  uint64_t no_collision = 0;
  std::unordered_set<size_t> seen;
  for (uint64_t t = 0; t < trials; ++t) {
    seen.clear();
    bool collided = false;
    for (uint64_t b = 0; b < r && !collided; ++b) {
      uint64_t u = rng->Uniform(n);
      // Binary search for the color of ball value u.
      size_t lo = 0, hi = cum.size();
      while (lo + 1 < hi) {
        size_t mid = (lo + hi) / 2;
        if (u < cum[mid - 1]) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      size_t color = (u < cum[0]) ? 0 : lo;
      if (!seen.insert(color).second) collided = true;
    }
    if (!collided) ++no_collision;
  }
  return static_cast<double>(no_collision) / static_cast<double>(trials);
}

double LogWithoutToWithRatio(uint64_t n, uint64_t r) {
  return static_cast<double>(r) * std::log(static_cast<double>(n)) -
         LogFallingFactorial(n, r);
}

}  // namespace qikey
