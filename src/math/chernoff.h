#ifndef QIKEY_MATH_CHERNOFF_H_
#define QIKEY_MATH_CHERNOFF_H_

#include <cstdint>

namespace qikey {

/// \brief Chernoff-bound helpers (Theorem 3 of the paper).
///
/// For `X = sum of N` i.i.d. Bernoulli(p), `mu = pN`:
///   P(|X - mu| >= eps * mu) <= 2 exp(-eps^2 mu / (2 + eps)),
/// and for eps >= 2: P(|X - mu| >= eps*mu) <= 2 exp(-eps*mu/2),
/// and P(X <= mu/2) <= 2 exp(-0.1 mu).

/// Upper bound on `P(|X - mu| >= eps*mu)` from Theorem 3.
double ChernoffTwoSidedBound(double mu, double eps);

/// Upper bound on `P(X <= mu/2)`: `2 exp(-0.1 mu)`.
double ChernoffLowerHalfBound(double mu);

/// \brief Smallest number of Bernoulli(p) trials such that
/// `ChernoffTwoSidedBound(p*N, eps) <= delta`.
uint64_t TrialsForRelativeError(double p, double eps, double delta);

}  // namespace qikey

#endif  // QIKEY_MATH_CHERNOFF_H_
