#ifndef QIKEY_MATH_BIRTHDAY_H_
#define QIKEY_MATH_BIRTHDAY_H_

#include <cstdint>

namespace qikey {

/// \brief Birthday-problem bounds (Theorem 4 of the paper).
///
/// Throwing `q` balls into `N` bins uniformly at random, collision
/// probability `C(N, q) >= 1 - exp(-q(q-1)/(2N))`.

/// Exact non-collision probability for `q` balls into `N` uniform bins:
/// `prod_{i=0}^{q-1} (1 - i/N)`. Returns 0 if `q > N`.
double UniformNonCollisionProbability(uint64_t bins, uint64_t balls);

/// The paper's lower bound on the collision probability:
/// `1 - exp(-q(q-1)/(2N))`.
double CollisionProbabilityLowerBound(uint64_t bins, uint64_t balls);

/// \brief Number of balls sufficient for the non-collision probability to
/// drop below `delta_star` (Theorem 4):
/// `q >= (1 + sqrt(8 N ln(1/delta*) + 1)) / 2`, and the paper's simpler
/// sufficient value `4 sqrt(N ln(1/delta*))`.
uint64_t BallsForCollision(uint64_t bins, double delta_star);

/// The paper's simplified sufficient count `ceil(4 sqrt(N ln(1/delta*)))`.
uint64_t BallsForCollisionSimple(uint64_t bins, double delta_star);

}  // namespace qikey

#endif  // QIKEY_MATH_BIRTHDAY_H_
