#ifndef QIKEY_MATH_KKT_H_
#define QIKEY_MATH_KKT_H_

#include <cstdint>
#include <vector>

namespace qikey {

/// \brief Numeric companion to Lemma 1 (KKT worst case).
///
/// The paper proves that the clique-size profile maximizing the
/// non-collision probability, subject to
///   (1) sum s_i^2 >= eps * n^2 / 4,
///   (2) sum s_i = n,
///   (3) s_i >= 0,
/// has at most two distinct non-zero values. This module searches that
/// two-value family numerically to (a) exhibit the worst case for a given
/// `(n, eps, r)` and (b) reproduce the Appendix C.3 counterexample showing
/// the uniform profile is *not* the maximizer.

/// A two-valued profile: `ka` entries of value `a`, `kb` entries of `b`,
/// remaining `n - ka - kb` entries zero.
struct TwoValueProfile {
  double a = 0.0;
  uint64_t ka = 0;
  double b = 0.0;
  uint64_t kb = 0;
  /// log of the with-replacement non-collision probability for `r` draws.
  double log_non_collision = 0.0;

  /// Materializes the profile as an explicit vector of length `n`.
  std::vector<double> ToVector(uint64_t n) const;
  double Sum() const;
  double SumSquares() const;
};

/// \brief The feasible witness profile from Eq. (5) of the paper:
/// one entry `sqrt(eps)*n/2` plus `(1 - sqrt(eps)/2) * n` unit entries.
TwoValueProfile PaperTildeProfile(uint64_t n, double eps);

/// \brief The uniform intuition profile: `4/eps` entries of value
/// `eps*n/4` (constraint (1) tight, all non-zero entries equal).
TwoValueProfile UniformIntuitionProfile(uint64_t n, double eps);

/// \brief Grid search over two-value profiles satisfying constraints
/// (1)-(3) with (1) tight, maximizing the non-collision probability of
/// `r` with-replacement draws. `support_grid` controls how many (ka, kb)
/// combinations are tried.
///
/// Returns the best profile found (its `log_non_collision` is exact for
/// the returned parameters, computed with the closed-form two-value
/// elementary symmetric polynomial).
TwoValueProfile FindWorstCaseProfile(uint64_t n, double eps, uint64_t r,
                                     uint64_t support_grid = 64);

}  // namespace qikey

#endif  // QIKEY_MATH_KKT_H_
