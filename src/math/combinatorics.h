#ifndef QIKEY_MATH_COMBINATORICS_H_
#define QIKEY_MATH_COMBINATORICS_H_

#include <cstdint>

namespace qikey {

/// Natural log of `n!` via lgamma; exact to double precision.
double LogFactorial(uint64_t n);

/// Natural log of the binomial coefficient `C(n, k)`; -inf if `k > n`.
double LogBinomial(uint64_t n, uint64_t k);

/// `C(n, k)` as a double (may overflow to +inf for huge arguments).
double BinomialDouble(uint64_t n, uint64_t k);

/// Exact `C(n, 2) = n(n-1)/2` for pair counting. `n` up to 2^32 is safe.
uint64_t PairCount(uint64_t n);

/// Natural log of the falling factorial `n·(n-1)···(n-r+1)`;
/// -inf if `r > n`.
double LogFallingFactorial(uint64_t n, uint64_t r);

/// Numerically stable `log(exp(a) + exp(b))`.
double LogSumExp(double a, double b);

/// Numerically stable `log(1 - exp(x))` for `x < 0`.
double Log1mExp(double x);

}  // namespace qikey

#endif  // QIKEY_MATH_COMBINATORICS_H_
