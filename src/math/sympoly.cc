#include "math/sympoly.h"

#include <cmath>
#include <limits>

#include "math/combinatorics.h"
#include "util/logging.h"

namespace qikey {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

std::vector<double> ElementarySymmetricAll(const std::vector<double>& s,
                                           uint64_t r) {
  std::vector<double> e(r + 1, 0.0);
  e[0] = 1.0;
  for (double x : s) {
    uint64_t hi = r;
    for (uint64_t j = hi; j >= 1; --j) {
      e[j] += x * e[j - 1];
    }
  }
  return e;
}

double ElementarySymmetric(const std::vector<double>& s, uint64_t r) {
  if (r > s.size()) return 0.0;
  return ElementarySymmetricAll(s, r)[r];
}

double LogElementarySymmetric(const std::vector<double>& s, uint64_t r) {
  std::vector<double> loge(r + 1, kNegInf);
  loge[0] = 0.0;
  for (double x : s) {
    QIKEY_DCHECK(x >= 0.0);
    if (x <= 0.0) continue;
    double lx = std::log(x);
    for (uint64_t j = r; j >= 1; --j) {
      loge[j] = LogSumExp(loge[j], lx + loge[j - 1]);
    }
  }
  return loge[r];
}

double LogElementarySymmetricTwoValue(double a, uint64_t ka, double b,
                                      uint64_t kb, uint64_t r) {
  QIKEY_DCHECK(a >= 0.0 && b >= 0.0);
  double log_a = a > 0.0 ? std::log(a) : kNegInf;
  double log_b = b > 0.0 ? std::log(b) : kNegInf;
  double acc = kNegInf;
  // e_r = sum_{i=max(0,r-kb)}^{min(r,ka)} C(ka,i) a^i C(kb,r-i) b^{r-i}.
  uint64_t lo = (r > kb) ? r - kb : 0;
  uint64_t hi = std::min(r, ka);
  for (uint64_t i = lo; i <= hi; ++i) {
    double term = LogBinomial(ka, i) + LogBinomial(kb, r - i);
    if (i > 0) {
      if (log_a == kNegInf) continue;
      term += static_cast<double>(i) * log_a;
    }
    if (r - i > 0) {
      if (log_b == kNegInf) continue;
      term += static_cast<double>(r - i) * log_b;
    }
    acc = LogSumExp(acc, term);
  }
  return acc;
}

}  // namespace qikey
