#ifndef QIKEY_MATH_SYMPOLY_H_
#define QIKEY_MATH_SYMPOLY_H_

#include <cstdint>
#include <vector>

namespace qikey {

/// \brief Elementary symmetric polynomials.
///
/// `e_r(s) = sum over all r-subsets J of prod_{j in J} s_j`. This is the
/// quantity `f_r(s)` in the paper's non-collision analysis (Section 2.1):
/// the non-collision probability when sampling `r` colored balls is
/// `r!/n^r * e_r(s)` (with replacement) and `r! e_r(s) / (n)_r` (without).

/// \brief Exact DP evaluation of `e_r(s)` in double precision.
///
/// `O(|s| * r)` time. Values can overflow for large inputs; use
/// `LogElementarySymmetric` for those.
double ElementarySymmetric(const std::vector<double>& s, uint64_t r);

/// \brief All of `e_0..e_r` at once (same DP, returns the whole row).
std::vector<double> ElementarySymmetricAll(const std::vector<double>& s,
                                           uint64_t r);

/// \brief `log e_r(s)` computed with a log-space DP (log-sum-exp).
///
/// Entries of `s` must be non-negative; zero entries are skipped.
/// Returns -inf when `r` exceeds the number of positive entries.
double LogElementarySymmetric(const std::vector<double>& s, uint64_t r);

/// \brief `log e_r` of a two-valued multiset: `ka` copies of `a` and `kb`
/// copies of `b` (either count may be zero).
///
/// Uses the closed form `e_r = sum_i C(ka,i) a^i C(kb,r-i) b^{r-i}`,
/// evaluated in log space; `O(r)` time. This is the shape the KKT analysis
/// (Lemma 1) proves sufficient for the worst case.
double LogElementarySymmetricTwoValue(double a, uint64_t ka, double b,
                                      uint64_t kb, uint64_t r);

}  // namespace qikey

#endif  // QIKEY_MATH_SYMPOLY_H_
