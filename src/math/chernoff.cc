#include "math/chernoff.h"

#include <cmath>

#include "util/logging.h"

namespace qikey {

double ChernoffTwoSidedBound(double mu, double eps) {
  QIKEY_DCHECK(mu >= 0.0 && eps > 0.0);
  double exponent = (eps >= 2.0) ? (eps * mu / 2.0)
                                 : (eps * eps * mu / (2.0 + eps));
  double bound = 2.0 * std::exp(-exponent);
  return bound > 1.0 ? 1.0 : bound;
}

double ChernoffLowerHalfBound(double mu) {
  double bound = 2.0 * std::exp(-0.1 * mu);
  return bound > 1.0 ? 1.0 : bound;
}

uint64_t TrialsForRelativeError(double p, double eps, double delta) {
  QIKEY_CHECK(p > 0.0 && p <= 1.0);
  QIKEY_CHECK(eps > 0.0);
  QIKEY_CHECK(delta > 0.0 && delta < 1.0);
  // Solve 2 exp(-eps^2 pN/(2+eps)) <= delta for N.
  double ln_term = std::log(2.0 / delta);
  double n = (2.0 + eps) * ln_term / (eps * eps * p);
  return static_cast<uint64_t>(std::ceil(n));
}

}  // namespace qikey
