#include "math/birthday.h"

#include <cmath>

#include "util/logging.h"

namespace qikey {

double UniformNonCollisionProbability(uint64_t bins, uint64_t balls) {
  if (balls > bins) return 0.0;
  double log_p = 0.0;
  for (uint64_t i = 1; i < balls; ++i) {
    log_p += std::log1p(-static_cast<double>(i) / static_cast<double>(bins));
  }
  return std::exp(log_p);
}

double CollisionProbabilityLowerBound(uint64_t bins, uint64_t balls) {
  if (balls < 2) return 0.0;
  double q = static_cast<double>(balls);
  double n = static_cast<double>(bins);
  return 1.0 - std::exp(-q * (q - 1.0) / (2.0 * n));
}

uint64_t BallsForCollision(uint64_t bins, double delta_star) {
  QIKEY_CHECK(delta_star > 0.0 && delta_star < 1.0);
  double n = static_cast<double>(bins);
  double t = std::log(1.0 / delta_star);
  double q = 0.5 * (1.0 + std::sqrt(8.0 * n * t + 1.0));
  return static_cast<uint64_t>(std::ceil(q));
}

uint64_t BallsForCollisionSimple(uint64_t bins, double delta_star) {
  QIKEY_CHECK(delta_star > 0.0 && delta_star < 1.0);
  double n = static_cast<double>(bins);
  double t = std::log(1.0 / delta_star);
  return static_cast<uint64_t>(std::ceil(4.0 * std::sqrt(n * t)));
}

}  // namespace qikey
