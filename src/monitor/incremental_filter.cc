#include "monitor/incremental_filter.h"

#include <algorithm>

#include "core/sample_bounds.h"
#include "data/column.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace qikey {

IncrementalFilter::IncrementalFilter(Schema schema,
                                     const IncrementalFilterOptions& options,
                                     uint64_t seed)
    : schema_(std::move(schema)), options_(options), rng_(seed) {
  const uint32_t m = static_cast<uint32_t>(schema_.num_attributes());
  switch (options_.backend) {
    case FilterBackend::kTupleSample:
      target_ = options_.sample_size > 0
                    ? options_.sample_size
                    : TupleSampleSizePaper(m, options_.eps);
      break;
    case FilterBackend::kMxPair:
    case FilterBackend::kBitset:
      target_ = options_.pair_sample_size > 0
                    ? options_.pair_sample_size
                    : MxPairSampleSizePaper(m, options_.eps);
      break;
  }
}

Result<IncrementalFilter> IncrementalFilter::Make(
    Schema schema, const IncrementalFilterOptions& options, uint64_t seed) {
  QIKEY_RETURN_NOT_OK(ValidateEps(options.eps));
  if (schema.num_attributes() == 0) {
    return Status::InvalidArgument("schema must have attributes");
  }
  return IncrementalFilter(std::move(schema), options, seed);
}

// ----------------------------------------------------------- window slots

uint64_t IncrementalFilter::HashRow(const std::vector<ValueCode>& row) {
  // FNV-1a over the codes; only used to bucket erase-by-content lookups.
  uint64_t h = 1469598103934665603ULL;
  for (ValueCode c : row) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

uint32_t IncrementalFilter::AddSlot(const std::vector<ValueCode>& row) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = row;
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(row);
    live_pos_.push_back(kNone);
    sample_pos_.push_back(kNone);
  }
  live_pos_[slot] = static_cast<uint32_t>(live_slots_.size());
  live_slots_.push_back(slot);
  index_.emplace(HashRow(row), slot);
  return slot;
}

void IncrementalFilter::RemoveSlot(uint32_t slot) {
  auto range = index_.equal_range(HashRow(slots_[slot]));
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == slot) {
      index_.erase(it);
      break;
    }
  }
  uint32_t pos = live_pos_[slot];
  uint32_t last = live_slots_.back();
  live_slots_[pos] = last;
  live_pos_[last] = pos;
  live_slots_.pop_back();
  live_pos_[slot] = kNone;
  slots_[slot].clear();
  slots_[slot].shrink_to_fit();
  free_slots_.push_back(slot);
}

uint32_t IncrementalFilter::FindSlot(const std::vector<ValueCode>& row) const {
  auto range = index_.equal_range(HashRow(row));
  for (auto it = range.first; it != range.second; ++it) {
    if (slots_[it->second] == row) return it->second;
  }
  return kNone;
}

// ----------------------------------------------------------- tuple sample

void IncrementalFilter::SampleAdd(uint32_t slot) {
  sample_pos_[slot] = static_cast<uint32_t>(sample_slots_.size());
  sample_slots_.push_back(slot);
}

void IncrementalFilter::SampleRemove(uint32_t slot) {
  uint32_t pos = sample_pos_[slot];
  uint32_t last = sample_slots_.back();
  sample_slots_[pos] = last;
  sample_pos_[last] = pos;
  sample_slots_.pop_back();
  sample_pos_[slot] = kNone;
}

uint32_t IncrementalFilter::DrawUnsampledSlot() {
  const size_t n = live_slots_.size();
  const size_t r = sample_slots_.size();
  if (r >= n) return kNone;
  // Rejection sampling against the sample: expected n/(n-r) draws. When
  // the sample covers most of the window, scan instead.
  if (n >= 2 * (n - r)) {
    uint64_t skip = rng_.Uniform(n - r);
    for (uint32_t slot : live_slots_) {
      if (sample_pos_[slot] != kNone) continue;
      if (skip == 0) return slot;
      --skip;
    }
    QIKEY_CHECK(false);
  }
  for (;;) {
    uint32_t slot = live_slots_[rng_.Uniform(n)];
    if (sample_pos_[slot] == kNone) return slot;
  }
}

void IncrementalFilter::TopUpSample(FilterUpdateDelta* delta) {
  while (sample_slots_.size() < target_ &&
         sample_slots_.size() < live_slots_.size()) {
    uint32_t slot = DrawUnsampledSlot();
    QIKEY_CHECK(slot != kNone);
    SampleAdd(slot);
    delta->sample_changed = true;
    delta->constraints_added = true;
  }
}

void IncrementalFilter::KeepMaximalRegions(
    std::vector<AttributeSet>* regions) {
  std::vector<AttributeSet> maximal;
  for (size_t i = 0; i < regions->size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < regions->size() && !dominated; ++j) {
      if (i == j) continue;
      if ((*regions)[i].IsSubsetOf((*regions)[j]) &&
          ((*regions)[i] != (*regions)[j] || j < i)) {
        dominated = true;
      }
    }
    if (!dominated) maximal.push_back((*regions)[i]);
  }
  *regions = std::move(maximal);
}

std::vector<AttributeSet> IncrementalFilter::FreedRegionsOfTuple(
    const std::vector<ValueCode>& row, uint32_t exclude_slot) const {
  const size_t m = schema_.num_attributes();
  std::vector<AttributeSet> regions;
  for (uint32_t slot : sample_slots_) {
    if (slot == exclude_slot) continue;
    AttributeSet region(m);
    const std::vector<ValueCode>& other = slots_[slot];
    for (size_t j = 0; j < m; ++j) {
      if (row[j] == other[j]) region.Add(static_cast<AttributeIndex>(j));
    }
    regions.push_back(std::move(region));
  }
  KeepMaximalRegions(&regions);
  return regions;
}

// ---------------------------------------------------------------- updates

Result<FilterUpdateDelta> IncrementalFilter::Insert(
    const std::vector<ValueCode>& row) {
  if (row.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("row arity does not match the schema");
  }
  uint32_t slot = AddSlot(row);
  return UsesTupleSample() ? InsertTuple(slot) : InsertMx(slot);
}

Result<FilterUpdateDelta> IncrementalFilter::Erase(
    const std::vector<ValueCode>& row) {
  if (row.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("row arity does not match the schema");
  }
  uint32_t slot = FindSlot(row);
  if (slot == kNone) {
    return Status::NotFound("no live tuple matches the erased row");
  }
  std::vector<ValueCode> payload = slots_[slot];
  return UsesTupleSample() ? EraseTuple(slot, std::move(payload))
                           : EraseMx(slot, std::move(payload));
}

Result<FilterUpdateDelta> IncrementalFilter::InsertTuple(uint32_t slot) {
  FilterUpdateDelta delta;
  const uint64_t n = live_slots_.size();
  if (sample_slots_.size() < target_) {
    SampleAdd(slot);
    delta.sample_changed = true;
    delta.constraints_added = true;
    return delta;
  }
  // Algorithm R step: the new tuple displaces a uniform victim with
  // probability r/n, keeping the sample a uniform r-subset.
  if (rng_.Uniform(n) < target_) {
    uint32_t victim = sample_slots_[rng_.Uniform(sample_slots_.size())];
    std::vector<ValueCode> payload = slots_[victim];
    SampleRemove(victim);
    delta.freed_regions = FreedRegionsOfTuple(payload, victim);
    SampleAdd(slot);
    delta.sample_changed = true;
    delta.constraints_added = true;
  }
  return delta;
}

Result<FilterUpdateDelta> IncrementalFilter::EraseTuple(
    uint32_t slot, std::vector<ValueCode> row) {
  FilterUpdateDelta delta;
  bool sampled = sample_pos_[slot] != kNone;
  if (sampled) SampleRemove(slot);
  RemoveSlot(slot);
  if (sampled) {
    delta.sample_changed = true;
    delta.freed_regions = FreedRegionsOfTuple(row, kNone);
    // Conditioned on containing the erased tuple, the rest of the
    // sample is a uniform (r-1)-subset; one uniform draw from the
    // unretained window restores a uniform r-subset of the survivors.
    TopUpSample(&delta);
  }
  return delta;
}

AttributeSet IncrementalFilter::PairAgreeSet(uint32_t a, uint32_t b) const {
  const size_t m = schema_.num_attributes();
  AttributeSet region(m);
  const std::vector<ValueCode>& ra = slots_[a];
  const std::vector<ValueCode>& rb = slots_[b];
  for (size_t j = 0; j < m; ++j) {
    if (ra[j] == rb[j]) region.Add(static_cast<AttributeIndex>(j));
  }
  return region;
}

std::pair<uint32_t, uint32_t> IncrementalFilter::DrawUniformPair() {
  auto [i, j] = rng_.SamplePair(live_slots_.size());
  return {live_slots_[i], live_slots_[j]};
}

Result<FilterUpdateDelta> IncrementalFilter::InsertMx(uint32_t slot) {
  FilterUpdateDelta delta;
  const uint64_t n = live_slots_.size();
  if (n < 2) return delta;
  if (pair_slots_.empty()) {
    // First moment the window supports pairs: every slot holds the only
    // possible pair.
    pair_slots_.assign(target_, {live_slots_[0], live_slots_[1]});
    RebuildEvidence();
    delta.sample_changed = true;
    delta.constraints_added = true;
    return delta;
  }
  // Each slot is an independent size-2 reservoir: the new tuple evicts
  // a uniform end with probability 2/n.
  for (size_t i = 0; i < pair_slots_.size(); ++i) {
    auto& [a, b] = pair_slots_[i];
    if (rng_.Uniform(n) >= 2) continue;
    delta.freed_regions.push_back(PairAgreeSet(a, b));
    if (rng_.Uniform(2) == 0) {
      a = slot;
    } else {
      b = slot;
    }
    PatchEvidencePair(i);
    delta.sample_changed = true;
    delta.constraints_added = true;
  }
  KeepMaximalRegions(&delta.freed_regions);
  return delta;
}

Result<FilterUpdateDelta> IncrementalFilter::EraseMx(
    uint32_t slot, std::vector<ValueCode> row) {
  FilterUpdateDelta delta;
  RemoveSlot(slot);
  if (pair_slots_.empty()) return delta;
  if (live_slots_.size() < 2) {
    // The window no longer supports pairs: drop every constraint.
    delta.sample_changed = true;
    delta.freed_regions.assign(1, AttributeSet::All(
                                      schema_.num_attributes()));
    pair_slots_.clear();
    RebuildEvidence();
    return delta;
  }
  for (size_t i = 0; i < pair_slots_.size(); ++i) {
    auto& pair = pair_slots_[i];
    if (pair.first != slot && pair.second != slot) continue;
    // The dropped pair's agree set, computed from the erased payload
    // (its slot is already recycled) and the surviving end.
    AttributeSet region(schema_.num_attributes());
    uint32_t survivor = pair.first == slot ? pair.second : pair.first;
    const std::vector<ValueCode>& other = slots_[survivor];
    for (size_t j = 0; j < row.size(); ++j) {
      if (row[j] == other[j]) region.Add(static_cast<AttributeIndex>(j));
    }
    delta.freed_regions.push_back(std::move(region));
    pair = DrawUniformPair();
    PatchEvidencePair(i);
    delta.sample_changed = true;
    delta.constraints_added = true;
  }
  KeepMaximalRegions(&delta.freed_regions);
  return delta;
}

void IncrementalFilter::RebuildEvidence() {
  if (options_.backend != FilterBackend::kBitset) return;
  std::vector<std::pair<const ValueCode*, const ValueCode*>> rows;
  rows.reserve(pair_slots_.size());
  for (const auto& [a, b] : pair_slots_) {
    rows.emplace_back(slots_[a].data(), slots_[b].data());
  }
  // Lane-stable (no dedup): evidence pair i IS pair slot i, so single
  // slot redraws patch one lane instead of re-packing all s slots.
  evidence_ = PackedEvidence::FromRowMajorPairs(schema_.num_attributes(),
                                                rows, pair_slots_,
                                                /*dedupe=*/false);
}

void IncrementalFilter::PatchEvidencePair(size_t index) {
  if (options_.backend != FilterBackend::kBitset) return;
  const auto [a, b] = pair_slots_[index];
  evidence_.PatchPair(static_cast<uint32_t>(index), slots_[a].data(),
                      slots_[b].data(), {a, b});
}

void IncrementalFilter::Resample() {
  if (UsesTupleSample()) {
    for (uint32_t slot : sample_slots_) sample_pos_[slot] = kNone;
    sample_slots_.clear();
    FilterUpdateDelta ignored;
    TopUpSample(&ignored);
    return;
  }
  pair_slots_.clear();
  if (live_slots_.size() >= 2) {
    pair_slots_.reserve(target_);
    for (uint64_t i = 0; i < target_; ++i) {
      pair_slots_.push_back(DrawUniformPair());
    }
  }
  RebuildEvidence();
}

// ---------------------------------------------------------------- queries

FilterVerdict IncrementalFilter::Query(const AttributeSet& attrs) const {
  return QueryWitness(attrs).has_value() ? FilterVerdict::kReject
                                         : FilterVerdict::kAccept;
}

std::vector<FilterVerdict> IncrementalFilter::QueryBatch(
    std::span<const AttributeSet> attrs, ThreadPool* pool) const {
  const size_t count = attrs.size();
  std::vector<FilterVerdict> verdicts(count, FilterVerdict::kAccept);
  if (options_.backend == FilterBackend::kBitset) {
    if (count == 0 || evidence_.num_pairs() == 0) return verdicts;
    // Same block-major staging as BitsetSeparationFilter::QueryBatch:
    // each resident evidence block serves the whole candidate batch.
    const size_t wpp = evidence_.words_per_pair();
    std::vector<uint64_t> masks(count * wpp);
    for (size_t i = 0; i < count; ++i) {
      std::span<const uint64_t> w = attrs[i].words();
      std::copy(w.begin(), w.begin() + wpp, masks.begin() + i * wpp);
    }
    std::vector<uint8_t> rejected(count, 0);
    ThreadPool::ParallelFor(pool, count, [&](size_t begin, size_t end) {
      evidence_.TestMasksBlockMajor(masks.data() + begin * wpp, wpp,
                                    end - begin, rejected.data() + begin);
    });
    for (size_t i = 0; i < count; ++i) {
      if (rejected[i]) verdicts[i] = FilterVerdict::kReject;
    }
    return verdicts;
  }
  ThreadPool::ParallelFor(pool, count, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) verdicts[i] = Query(attrs[i]);
  });
  return verdicts;
}

std::optional<std::pair<RowIndex, RowIndex>> IncrementalFilter::QueryWitness(
    const AttributeSet& attrs) const {
  if (options_.backend == FilterBackend::kBitset) {
    // Word-wise kernel over the packed pair slots; representatives are
    // window slot ids, matching the scalar MX path's reporting.
    std::optional<uint32_t> hit = evidence_.FindUnseparated(attrs.words());
    if (!hit.has_value()) return std::nullopt;
    auto [a, b] = evidence_.representative(*hit);
    return std::make_pair(static_cast<RowIndex>(a),
                          static_cast<RowIndex>(b));
  }
  std::vector<AttributeIndex> idx = attrs.ToIndices();
  if (options_.backend == FilterBackend::kMxPair) {
    for (const auto& [a, b] : pair_slots_) {
      const std::vector<ValueCode>& ra = slots_[a];
      const std::vector<ValueCode>& rb = slots_[b];
      bool agree = true;
      for (AttributeIndex j : idx) {
        if (ra[j] != rb[j]) {
          agree = false;
          break;
        }
      }
      if (agree) return std::make_pair(a, b);
    }
    return std::nullopt;
  }
  // Tuple backend: hash the retained projections; verify on hash hits.
  std::unordered_multimap<uint64_t, uint32_t> seen;
  seen.reserve(sample_slots_.size() * 2);
  for (uint32_t slot : sample_slots_) {
    const std::vector<ValueCode>& row = slots_[slot];
    uint64_t h = 1469598103934665603ULL;
    for (AttributeIndex j : idx) {
      h ^= row[j];
      h *= 1099511628211ULL;
    }
    auto range = seen.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      const std::vector<ValueCode>& other = slots_[it->second];
      bool agree = true;
      for (AttributeIndex j : idx) {
        if (row[j] != other[j]) {
          agree = false;
          break;
        }
      }
      if (agree) return std::make_pair(it->second, slot);
    }
    seen.emplace(h, slot);
  }
  return std::nullopt;
}

uint64_t IncrementalFilter::sample_size() const {
  return UsesTupleSample() ? sample_slots_.size() : pair_slots_.size();
}

uint64_t IncrementalFilter::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const auto& row : slots_) bytes += row.capacity() * sizeof(ValueCode);
  bytes += live_slots_.size() * sizeof(uint32_t);
  bytes += live_pos_.size() * sizeof(uint32_t) * 2;  // live_pos_+sample_pos_
  bytes += sample_slots_.size() * sizeof(uint32_t);
  bytes += pair_slots_.size() * sizeof(std::pair<uint32_t, uint32_t>);
  bytes += index_.size() * (sizeof(uint64_t) + sizeof(uint32_t));
  bytes += evidence_.MemoryBytes();
  return bytes;
}

Dataset IncrementalFilter::WindowDataset() const {
  const size_t m = schema_.num_attributes();
  std::vector<Column> columns;
  columns.reserve(m);
  for (size_t j = 0; j < m; ++j) {
    std::vector<ValueCode> codes;
    codes.reserve(live_slots_.size());
    for (uint32_t slot : live_slots_) codes.push_back(slots_[slot][j]);
    columns.emplace_back(std::move(codes));
  }
  return Dataset(schema_, std::move(columns));
}

}  // namespace qikey
