#include "monitor/key_monitor.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <utility>

#include "core/key_enumeration.h"
#include "core/sample_bounds.h"
#include "util/logging.h"

namespace qikey {

bool CanonicalAttributeSetLess(const AttributeSet& a, const AttributeSet& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  return a.ToIndices() < b.ToIndices();
}

bool MonitorSnapshot::CoversKey(const AttributeSet& attrs) const {
  for (const AttributeSet& key : *keys) {
    if (key.IsSubsetOf(attrs)) return true;
  }
  return false;
}

std::string MonitorSnapshot::Report(const Schema* schema) const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "monitor epoch %llu: %llu window rows, %llu retained "
                "samples, %llu update(s)\n",
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(window_rows),
                static_cast<unsigned long long>(filter_sample_size),
                static_cast<unsigned long long>(updates_applied));
  out += line;
  std::snprintf(line, sizeof(line), "  minimal keys: %zu\n", keys->size());
  out += line;
  for (const AttributeSet& key : *keys) {
    out += "    " + key.ToString(schema) + "\n";
  }
  if (keys->empty()) {
    out += "    (none within the tracked size cap)\n";
  }
  return out;
}

KeyMonitor::KeyMonitor(Schema schema, const MonitorOptions& options,
                       uint64_t seed)
    : options_(options),
      filter_(std::move(schema),
              IncrementalFilterOptions{options.eps, options.backend,
                                       options.sample_size,
                                       options.pair_sample_size},
              seed) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  // An empty window accepts the empty set: no retained pair violates it.
  frontier_.push_back(AttributeSet(filter_.num_attributes()));
  frontier_shared_ =
      std::make_shared<const std::vector<AttributeSet>>(frontier_);
  Publish();
}

Result<std::unique_ptr<KeyMonitor>> KeyMonitor::Make(
    Schema schema, const MonitorOptions& options, uint64_t seed) {
  QIKEY_RETURN_NOT_OK(ValidateEps(options.eps));
  if (schema.num_attributes() == 0) {
    return Status::InvalidArgument("schema must have attributes");
  }
  if (options.max_key_size == 0) {
    return Status::InvalidArgument("max_key_size must be at least 1");
  }
  return std::unique_ptr<KeyMonitor>(
      new KeyMonitor(std::move(schema), options, seed));
}

Status KeyMonitor::Insert(const std::vector<ValueCode>& row) {
  if (row.size() != filter_.num_attributes()) {
    return Status::InvalidArgument("row arity does not match monitor");
  }
  ++updates_applied_;
  update_repaired_ = false;
  if (options_.window_capacity > 0 &&
      filter_.window_size() >= options_.window_capacity) {
    std::vector<ValueCode> oldest = std::move(fifo_.front());
    fifo_.pop_front();
    Result<FilterUpdateDelta> evicted = filter_.Erase(oldest);
    if (!evicted.ok()) return evicted.status();
    QIKEY_RETURN_NOT_OK(ApplyDelta(*evicted));
  }
  Result<FilterUpdateDelta> delta = filter_.Insert(row);
  if (!delta.ok()) return delta.status();
  if (options_.window_capacity > 0) fifo_.push_back(row);
  QIKEY_RETURN_NOT_OK(ApplyDelta(*delta));
  if (update_repaired_) {
    ++repaired_updates_;
  } else {
    ++untouched_updates_;
  }
  Publish();
  return Status::OK();
}

Status KeyMonitor::Erase(const std::vector<ValueCode>& row) {
  if (options_.window_capacity > 0) {
    return Status::InvalidArgument(
        "sliding-window monitors evict automatically; explicit Erase is "
        "only available with window_capacity = 0");
  }
  Result<FilterUpdateDelta> delta = filter_.Erase(row);
  if (!delta.ok()) return delta.status();
  ++updates_applied_;
  update_repaired_ = false;
  QIKEY_RETURN_NOT_OK(ApplyDelta(*delta));
  if (update_repaired_) {
    ++repaired_updates_;
  } else {
    ++untouched_updates_;
  }
  Publish();
  return Status::OK();
}

Status KeyMonitor::InsertDataset(const Dataset& dataset) {
  if (dataset.num_attributes() != filter_.num_attributes()) {
    return Status::InvalidArgument("dataset arity does not match monitor");
  }
  std::vector<ValueCode> row(dataset.num_attributes());
  for (RowIndex i = 0; i < dataset.num_rows(); ++i) {
    for (AttributeIndex j = 0; j < dataset.num_attributes(); ++j) {
      row[j] = dataset.code(i, j);
    }
    QIKEY_RETURN_NOT_OK(Insert(row));
  }
  return Status::OK();
}

Status KeyMonitor::ApplyDelta(const FilterUpdateDelta& delta) {
  if (!delta.sample_changed) return Status::OK();
  update_repaired_ = true;
  std::vector<AttributeSet> next;
  bool within_budget = true;
  if (!delta.freed_regions.empty()) {
    within_budget = SearchFreedRegions(delta.freed_regions, &next);
  }
  if (within_budget) {
    if (delta.constraints_added) {
      std::vector<AttributeSet> kept;
      std::vector<AttributeSet> expanded;
      within_budget = RepairAddedConstraints(&kept, &expanded);
      next.insert(next.end(), kept.begin(), kept.end());
      next.insert(next.end(), expanded.begin(), expanded.end());
    } else {
      // Constraints only relaxed: every frontier key is still accepted.
      next.insert(next.end(), frontier_.begin(), frontier_.end());
    }
  }
  if (!within_budget) {
    return RebuildFrontier();
  }
  CommitFrontier(std::move(next));
  return Status::OK();
}

bool KeyMonitor::SearchFreedRegions(const std::vector<AttributeSet>& regions,
                                    std::vector<AttributeSet>* out) {
  // Every set that flipped rejected -> accepted is a subset of some
  // region, and so is the whole chain below it, so an ascending-
  // extension levelwise search restricted to region subsets finds every
  // newly minimal key. Its outputs are even globally minimal: a smaller
  // accepted set would itself be a region subset and prune its
  // supersets.
  const size_t m = filter_.num_attributes();
  const uint32_t max_size =
      std::min<uint32_t>(options_.max_key_size, static_cast<uint32_t>(m));
  uint64_t evaluations = 0;

  AttributeSet empty(m);
  if (filter_.Query(empty) == FilterVerdict::kAccept) {
    out->push_back(std::move(empty));
    return true;
  }
  std::vector<AttributeSet> found;
  std::vector<std::vector<AttributeIndex>> bases{{}};
  for (uint32_t level = 1; level <= max_size && !bases.empty(); ++level) {
    std::vector<std::vector<AttributeIndex>> candidates;
    std::vector<AttributeSet> queries;
    for (const auto& base : bases) {
      AttributeIndex start = base.empty() ? 0 : base.back() + 1;
      for (AttributeIndex a = start; a < m; ++a) {
        if (++evaluations > options_.max_candidates) return false;
        std::vector<AttributeIndex> candidate = base;
        candidate.push_back(a);
        AttributeSet attrs = AttributeSet::FromIndices(m, candidate);
        bool inside = false;
        for (const AttributeSet& region : regions) {
          if (attrs.IsSubsetOf(region)) {
            inside = true;
            break;
          }
        }
        if (!inside) continue;
        bool contains_key = false;
        for (const AttributeSet& key : found) {
          if (key.IsSubsetOf(attrs)) {
            contains_key = true;
            break;
          }
        }
        if (contains_key) continue;
        candidates.push_back(std::move(candidate));
        queries.push_back(std::move(attrs));
      }
    }
    std::vector<FilterVerdict> verdicts =
        filter_.QueryBatch(queries, pool_.get());
    std::vector<std::vector<AttributeIndex>> next_bases;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (verdicts[i] == FilterVerdict::kAccept) {
        found.push_back(std::move(queries[i]));
      } else {
        next_bases.push_back(std::move(candidates[i]));
      }
    }
    bases = std::move(next_bases);
  }
  out->insert(out->end(), found.begin(), found.end());
  return true;
}

bool KeyMonitor::RepairAddedConstraints(std::vector<AttributeSet>* kept,
                                        std::vector<AttributeSet>* expanded) {
  if (frontier_.empty()) return true;
  const size_t m = filter_.num_attributes();
  const uint32_t max_size =
      std::min<uint32_t>(options_.max_key_size, static_cast<uint32_t>(m));

  std::vector<FilterVerdict> verdicts =
      filter_.QueryBatch(frontier_, pool_.get());
  std::vector<AttributeSet> dirty;
  for (size_t i = 0; i < frontier_.size(); ++i) {
    if (verdicts[i] == FilterVerdict::kAccept) {
      kept->push_back(frontier_[i]);
    } else {
      dirty.push_back(frontier_[i]);
    }
  }
  if (dirty.empty()) return true;

  // Every newly minimal key strictly contains an invalidated key, with
  // every set in between rejected, so breadth-first superset expansion
  // from the dirty keys (pruned on reaching anything accepted) is
  // complete.
  std::unordered_set<AttributeSet, AttributeSetHasher> seen(dirty.begin(),
                                                            dirty.end());
  uint64_t evaluations = 0;
  while (!dirty.empty()) {
    std::vector<AttributeSet> children;
    for (const AttributeSet& base : dirty) {
      if (base.size() + 1 > max_size) continue;
      for (AttributeIndex a = 0; a < m; ++a) {
        if (base.Contains(a)) continue;
        AttributeSet child = base;
        child.Add(a);
        if (!seen.insert(child).second) continue;
        if (++evaluations > options_.max_candidates) return false;
        bool contains_key = false;
        for (const AttributeSet& key : *kept) {
          if (key.IsSubsetOf(child)) {
            contains_key = true;
            break;
          }
        }
        for (size_t k = 0; k < expanded->size() && !contains_key; ++k) {
          if ((*expanded)[k].IsSubsetOf(child)) contains_key = true;
        }
        if (contains_key) continue;
        children.push_back(std::move(child));
      }
    }
    std::vector<FilterVerdict> child_verdicts =
        filter_.QueryBatch(children, pool_.get());
    dirty.clear();
    for (size_t i = 0; i < children.size(); ++i) {
      if (child_verdicts[i] == FilterVerdict::kAccept) {
        expanded->push_back(std::move(children[i]));
      } else {
        dirty.push_back(std::move(children[i]));
      }
    }
  }
  return true;
}

Status KeyMonitor::RebuildFrontier() {
  ++rebuilds_;
  events_.push_back({updates_applied_, KeyEventKind::kRebuilt,
                     AttributeSet(filter_.num_attributes())});
  std::vector<AttributeSet> next;
  if (filter_.sample_size() < 2) {
    next.push_back(AttributeSet(filter_.num_attributes()));
  } else {
    KeyEnumerationOptions opts;
    opts.max_size = options_.max_key_size;
    opts.max_candidates = options_.max_candidates;
    Result<std::vector<AttributeSet>> found = EnumerateMinimalAcceptedSets(
        filter_, filter_.num_attributes(), opts, pool_.get());
    if (!found.ok()) return found.status();
    next = std::move(found).ValueOrDie();
  }
  CommitFrontier(std::move(next));
  return Status::OK();
}

void KeyMonitor::CommitFrontier(std::vector<AttributeSet> next) {
  std::sort(next.begin(), next.end(), CanonicalAttributeSetLess);
  next.erase(std::unique(next.begin(), next.end()), next.end());
  // Minimality pass: drop anything containing a (strictly smaller)
  // accepted candidate. Sorted by size, so only earlier entries can be
  // proper subsets.
  std::vector<AttributeSet> minimal;
  for (const AttributeSet& candidate : next) {
    bool contains_smaller = false;
    for (const AttributeSet& key : minimal) {
      if (key.size() >= candidate.size()) break;
      if (key.IsSubsetOf(candidate)) {
        contains_smaller = true;
        break;
      }
    }
    if (!contains_smaller) minimal.push_back(candidate);
  }

  // Churn events: canonical-order merge diff against the old frontier.
  size_t i = 0;
  size_t j = 0;
  while (i < frontier_.size() || j < minimal.size()) {
    if (j == minimal.size() ||
        (i < frontier_.size() &&
         CanonicalAttributeSetLess(frontier_[i], minimal[j]))) {
      events_.push_back(
          {updates_applied_, KeyEventKind::kRemoved, frontier_[i]});
      ++i;
    } else if (i == frontier_.size() ||
               CanonicalAttributeSetLess(minimal[j], frontier_[i])) {
      events_.push_back(
          {updates_applied_, KeyEventKind::kAdded, minimal[j]});
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  frontier_ = std::move(minimal);
  frontier_shared_ =
      std::make_shared<const std::vector<AttributeSet>>(frontier_);
}

void KeyMonitor::Publish() {
  epoch_ = updates_applied_;
  auto snapshot = std::make_shared<MonitorSnapshot>();
  snapshot->epoch = epoch_;
  snapshot->updates_applied = updates_applied_;
  snapshot->window_rows = filter_.window_size();
  snapshot->filter_sample_size = filter_.sample_size();
  snapshot->keys = frontier_shared_;
  snapshot_.store(std::move(snapshot), std::memory_order_release);
}

std::shared_ptr<const MonitorSnapshot> KeyMonitor::Snapshot() const {
  return snapshot_.load(std::memory_order_acquire);
}

}  // namespace qikey
