#ifndef QIKEY_MONITOR_INCREMENTAL_FILTER_H_
#define QIKEY_MONITOR_INCREMENTAL_FILTER_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/attribute_set.h"
#include "core/evidence_block.h"
#include "core/filter.h"
#include "data/dataset.h"
#include "data/schema.h"
#include "util/rng.h"
#include "util/status.h"

namespace qikey {

/// Options for `IncrementalFilter`.
struct IncrementalFilterOptions {
  double eps = 0.001;
  FilterBackend backend = FilterBackend::kTupleSample;
  /// Tuple-sample target; 0 = `TupleSampleSizePaper(m, eps)`. A target
  /// at least as large as the window keeps the whole window retained,
  /// so the filter answers exactly.
  uint64_t sample_size = 0;
  /// MX pair-slot count; 0 = `MxPairSampleSizePaper(m, eps)`.
  uint64_t pair_sample_size = 0;
};

/// What one `Insert`/`Erase` did to the retained sample. Consumers that
/// maintain state derived from filter verdicts (the `KeyMonitor`'s
/// minimal-key frontier) repair exactly the regions named here and skip
/// all work when `sample_changed` is false.
struct FilterUpdateDelta {
  /// False iff the update left the retained sample untouched (the
  /// common case: an insert not drawn into the sample, or an erase of
  /// an unretained tuple). Verdicts are then unchanged.
  bool sample_changed = false;
  /// True iff the sample gained separation constraints (a retained
  /// tuple or pair was added): the accepted family can only shrink, so
  /// previously accepted sets need rechecking.
  bool constraints_added = false;
  /// Agree sets of constraints the sample lost (for a dropped tuple
  /// `t`, one region per retained `u`: the attributes `t` and `u`
  /// agreed on; for a dropped pair, its agree set). Every attribute set
  /// that flipped from rejected to accepted is a subset of one of these
  /// regions, so consumers can localize their search for newly minimal
  /// keys. Maximal under inclusion; empty regions are represented by a
  /// single empty set.
  std::vector<AttributeSet> freed_regions;
};

/// \brief A live-updatable ε-separation filter: the paper's sampled
/// filters maintained under `Insert`/`Erase` instead of rebuilt.
///
/// Owns the current window (the live multiset of tuples) plus an
/// incrementally maintained sample of it:
///   - tuple backend (Algorithm 1): a reservoir of `r = Θ(m/√ε)`
///     tuples. Inserts run one Algorithm-R step (the new tuple enters
///     with probability `r/n`); erasing a retained tuple redraws a
///     uniform replacement from the rest of the window. Expected work
///     is O(1) sample edits per update, so maintenance cost tracks
///     sample churn (`~r/n` of inserts), not the stream rate.
///   - MX pair backend: `s = Θ(m/ε)` pair slots, each an independent
///     size-2 reservoir over the window; erases redraw the pairs that
///     referenced the dropped tuple.
///   - bitset backend: the SAME pair slots as the MX backend (identical
///     sampling decisions and RNG consumption, so deltas and verdicts
///     match bit-for-bit), but queries run against `PackedEvidence`
///     re-packed whenever the retained slots change — the common
///     untouched updates pay nothing.
///
/// Queries implement `SeparationFilter` against the current sample, so
/// all batched machinery (`QueryBatch`, `EnumerateMinimalAcceptedSets`)
/// applies unchanged. Witness row indices are *window slot ids* (stable
/// while a tuple is live, reused after erase).
class IncrementalFilter : public SeparationFilter {
 public:
  /// An empty window over `schema`'s attributes. All randomness
  /// (sampling decisions, replacement draws) comes from `seed`, so a
  /// fixed seed and update sequence reproduce the filter exactly.
  IncrementalFilter(Schema schema, const IncrementalFilterOptions& options,
                    uint64_t seed);

  static Result<IncrementalFilter> Make(
      Schema schema, const IncrementalFilterOptions& options, uint64_t seed);

  /// Appends one tuple (dictionary codes, one per attribute).
  Result<FilterUpdateDelta> Insert(const std::vector<ValueCode>& row);

  /// Removes one tuple equal to `row` from the window (multiset
  /// semantics); NotFound if no live tuple matches.
  Result<FilterUpdateDelta> Erase(const std::vector<ValueCode>& row);

  /// Redraws the whole sample from the current window (tuple backend:
  /// a fresh uniform `r`-subset; MX backend: fresh uniform pairs).
  /// Consumers must rebuild verdict-derived state from scratch.
  void Resample();

  // SeparationFilter interface, answered against the current sample.
  FilterVerdict Query(const AttributeSet& attrs) const override;
  std::vector<FilterVerdict> QueryBatch(
      std::span<const AttributeSet> attrs,
      ThreadPool* pool = nullptr) const override;
  std::optional<std::pair<RowIndex, RowIndex>> QueryWitness(
      const AttributeSet& attrs) const override;
  uint64_t sample_size() const override;
  uint64_t MemoryBytes() const override;

  size_t num_attributes() const { return schema_.num_attributes(); }
  const Schema& schema() const { return schema_; }
  uint64_t window_size() const { return live_slots_.size(); }
  /// Tuple target `r` (tuple backend) or pair-slot count (MX backend).
  uint64_t sample_target() const { return target_; }

  /// Materializes the current window as an immutable data set (rows in
  /// internal order). O(n·m); used by rebuild baselines and reports.
  Dataset WindowDataset() const;

 private:
  static constexpr uint32_t kNone = ~uint32_t{0};

  bool UsesTupleSample() const {
    return options_.backend == FilterBackend::kTupleSample;
  }
  /// Bitset backend: re-packs all evidence lanes from the current pair
  /// slots (no-op otherwise). Only for wholesale slot changes — the
  /// empty→full transitions and `Resample` — single slot redraws go
  /// through `PatchEvidencePair`.
  void RebuildEvidence();
  /// Bitset backend: recomputes pair slot `index`'s evidence lane in
  /// place, `O(m)` (no-op otherwise).
  void PatchEvidencePair(size_t index);

  uint32_t AddSlot(const std::vector<ValueCode>& row);
  void RemoveSlot(uint32_t slot);
  uint32_t FindSlot(const std::vector<ValueCode>& row) const;
  static uint64_t HashRow(const std::vector<ValueCode>& row);

  void SampleAdd(uint32_t slot);
  void SampleRemove(uint32_t slot);
  /// A uniform live slot outside the sample; kNone if the sample
  /// already covers the window.
  uint32_t DrawUnsampledSlot();
  /// Grows the sample back to min(target, window) with uniform draws.
  void TopUpSample(FilterUpdateDelta* delta);
  /// Agree sets of `row` against every retained tuple except
  /// `exclude_slot`, reduced to maximal regions.
  std::vector<AttributeSet> FreedRegionsOfTuple(
      const std::vector<ValueCode>& row, uint32_t exclude_slot) const;
  static void KeepMaximalRegions(std::vector<AttributeSet>* regions);

  Result<FilterUpdateDelta> InsertTuple(uint32_t slot);
  Result<FilterUpdateDelta> EraseTuple(uint32_t slot,
                                       std::vector<ValueCode> row);
  Result<FilterUpdateDelta> InsertMx(uint32_t slot);
  Result<FilterUpdateDelta> EraseMx(uint32_t slot,
                                    std::vector<ValueCode> row);
  AttributeSet PairAgreeSet(uint32_t a, uint32_t b) const;
  std::pair<uint32_t, uint32_t> DrawUniformPair();

  Schema schema_;
  IncrementalFilterOptions options_;
  Rng rng_;
  uint64_t target_ = 0;

  // Window storage: slot id -> payload; erased slots go on a free list
  // and are reused. `live_slots_` is the dense list of live ids for
  // O(1) uniform draws; `live_pos_[slot]` is its position (kNone when
  // dead). `index_` maps row-content hashes to slots for erase-by-
  // content.
  std::vector<std::vector<ValueCode>> slots_;
  std::vector<uint32_t> free_slots_;
  std::vector<uint32_t> live_slots_;
  std::vector<uint32_t> live_pos_;
  std::unordered_multimap<uint64_t, uint32_t> index_;

  // Tuple backend: the retained sample as slot ids (dense + position).
  std::vector<uint32_t> sample_slots_;
  std::vector<uint32_t> sample_pos_;

  // MX backend: pair slots over window slot ids.
  std::vector<std::pair<uint32_t, uint32_t>> pair_slots_;

  // Bitset backend: packed disagree masks of the pair slots,
  // lane-stable (evidence pair i = slot i, representatives are window
  // slot ids). Kept current eagerly — per-lane patches on slot
  // redraws, full re-packs on wholesale changes — so concurrent
  // readers (QueryBatch on a pool) never race a lazy rebuild.
  PackedEvidence evidence_;
};

}  // namespace qikey

#endif  // QIKEY_MONITOR_INCREMENTAL_FILTER_H_
