#ifndef QIKEY_MONITOR_KEY_MONITOR_H_
#define QIKEY_MONITOR_KEY_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/attribute_set.h"
#include "monitor/incremental_filter.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace qikey {

/// Options for `KeyMonitor`.
struct MonitorOptions {
  double eps = 0.001;
  FilterBackend backend = FilterBackend::kTupleSample;
  /// Frontier cap: minimal keys larger than this are not tracked (the
  /// `max_size` of levelwise UCC enumeration). Clamped to `m`.
  uint32_t max_key_size = 5;
  /// See `IncrementalFilterOptions`; a `sample_size` at least the
  /// window size makes the monitor exact.
  uint64_t sample_size = 0;
  uint64_t pair_sample_size = 0;
  /// Worker threads for batched repair queries; 1 = serial. Results
  /// are identical at any thread count.
  size_t num_threads = 1;
  /// Repair abandons incremental search and falls back to a full
  /// levelwise rebuild after this many candidate evaluations.
  uint64_t max_candidates = 1u << 20;
  /// When > 0 the monitor is a sliding window: inserting at capacity
  /// first evicts the oldest tuple, and explicit `Erase` is rejected.
  uint64_t window_capacity = 0;
};

/// How the minimal-key frontier changed at one epoch.
enum class KeyEventKind {
  kAdded,    ///< a set became a minimal key
  kRemoved,  ///< a set stopped being a minimal key
  kRebuilt,  ///< incremental repair gave up; frontier re-enumerated
};

struct KeyEvent {
  uint64_t epoch = 0;
  KeyEventKind kind = KeyEventKind::kAdded;
  AttributeSet key;
};

/// \brief Immutable, epoch-numbered view of the monitor's state.
///
/// Published by the writer after every update; readers hold a
/// `shared_ptr` and are never blocked or invalidated by later writes.
struct MonitorSnapshot {
  uint64_t epoch = 0;
  uint64_t updates_applied = 0;
  uint64_t window_rows = 0;
  uint64_t filter_sample_size = 0;
  /// Shared with sibling snapshots: updates that do not change the
  /// frontier publish a new epoch without copying the keys.
  std::shared_ptr<const std::vector<AttributeSet>> keys;

  /// All minimal accepted sets of size <= `max_key_size`, canonically
  /// ordered (by size, then lexicographically). `{∅}` when the window
  /// holds fewer than two retained tuples; empty when every minimal
  /// key exceeds the cap.
  const std::vector<AttributeSet>& minimal_keys() const { return *keys; }

  bool has_key() const { return !keys->empty(); }
  /// The canonical representative: the first (smallest) minimal key.
  const AttributeSet& primary_key() const { return keys->front(); }
  /// True iff `attrs` contains some tracked minimal key, i.e. the
  /// filter considers `attrs` a quasi-identifier.
  bool CoversKey(const AttributeSet& attrs) const;

  std::string Report(const Schema* schema = nullptr) const;
};

/// \brief Incremental quasi-identifier monitor: maintains the minimal
/// ε-key (UCC) frontier of a live window under inserts and erases.
///
/// The monitor keeps an `IncrementalFilter` and repairs the frontier
/// from the filter's update deltas instead of re-enumerating:
///   - updates that leave the retained sample untouched cost nothing;
///   - added constraints can only invalidate existing keys, so the
///     repair rechecks the frontier and expands the invalidated keys
///     levelwise (supersets of dirtied keys only);
///   - removed constraints can only reveal new keys inside the freed
///     agree-set regions, so the repair searches those subsets only.
/// A final minimality pass merges surviving, expanded, and freed-region
/// keys. If a repair's candidate budget is exhausted the monitor falls
/// back to one full levelwise enumeration (`kRebuilt` event).
///
/// With an exact filter (sample covering the window) the frontier
/// equals `EnumerateMinimalKeys` of the window at every epoch; with a
/// sampled filter it equals `EnumerateMinimalAcceptedSets` of the
/// current sample. Results are deterministic for a fixed seed and
/// update sequence at any `num_threads`.
///
/// Threading: one writer (`Insert`/`Erase`); any number of concurrent
/// readers via `Snapshot()`, which returns the latest immutable
/// snapshot through an atomic pointer — readers never take the
/// writer's locks and never observe partial repairs.
class KeyMonitor {
 public:
  static Result<std::unique_ptr<KeyMonitor>> Make(
      Schema schema, const MonitorOptions& options, uint64_t seed);

  Status Insert(const std::vector<ValueCode>& row);
  /// Multiset erase by content. InvalidArgument in sliding-window mode.
  Status Erase(const std::vector<ValueCode>& row);
  /// Feeds every row of `dataset` (e.g. the initial table).
  Status InsertDataset(const Dataset& dataset);

  /// Latest published snapshot; safe from any thread.
  std::shared_ptr<const MonitorSnapshot> Snapshot() const;

  /// Key-churn log (writer-side; do not read concurrently with writes).
  /// Grows with churn — long-running streams should drain it
  /// periodically via `clear_events`.
  const std::vector<KeyEvent>& events() const { return events_; }
  void clear_events() { events_.clear(); }

  const Schema& schema() const { return filter_.schema(); }
  const IncrementalFilter& filter() const { return filter_; }
  const MonitorOptions& options() const { return options_; }
  uint64_t epoch() const { return epoch_; }
  /// Updates (Insert/Erase calls) none of whose deltas — including a
  /// sliding-window eviction — changed a verdict: they cost no repair
  /// work. `untouched_updates() + repaired_updates()` equals the
  /// number of updates applied.
  uint64_t untouched_updates() const { return untouched_updates_; }
  uint64_t repaired_updates() const { return repaired_updates_; }
  uint64_t rebuilds() const { return rebuilds_; }

 private:
  KeyMonitor(Schema schema, const MonitorOptions& options, uint64_t seed);

  Status ApplyDelta(const FilterUpdateDelta& delta);
  /// Minimal accepted sets inside the freed regions (levelwise over
  /// subsets of the regions only). False on candidate-budget overflow.
  bool SearchFreedRegions(const std::vector<AttributeSet>& regions,
                          std::vector<AttributeSet>* out);
  /// Rechecks the frontier and expands invalidated keys levelwise
  /// (supersets of dirtied keys only). False on budget overflow.
  bool RepairAddedConstraints(std::vector<AttributeSet>* kept,
                              std::vector<AttributeSet>* expanded);
  Status RebuildFrontier();
  /// Installs `next` (accepted candidates, possibly redundant) as the
  /// new frontier: minimality pass, canonical sort, churn events.
  void CommitFrontier(std::vector<AttributeSet> next);
  void Publish();

  MonitorOptions options_;
  IncrementalFilter filter_;
  std::unique_ptr<ThreadPool> pool_;

  uint64_t epoch_ = 0;
  uint64_t updates_applied_ = 0;
  uint64_t untouched_updates_ = 0;
  uint64_t repaired_updates_ = 0;
  uint64_t rebuilds_ = 0;
  /// Set by ApplyDelta within one update; classifies the update for
  /// the counters above.
  bool update_repaired_ = false;

  /// Current minimal-key frontier, canonically ordered. `shared_`
  /// mirrors it for zero-copy snapshot publication and is refreshed
  /// only when the frontier actually changes.
  std::vector<AttributeSet> frontier_;
  std::shared_ptr<const std::vector<AttributeSet>> frontier_shared_;
  std::vector<KeyEvent> events_;
  std::deque<std::vector<ValueCode>> fifo_;  // sliding-window eviction order

  /// The single cross-thread member: `Publish()` (writer thread) stores
  /// an immutable snapshot here, `Snapshot()` (any thread) loads it.
  /// Everything above is writer-thread-only by contract — there is no
  /// mutex to hang a GUARDED_BY off, the atomic shared_ptr IS the
  /// synchronization (same seam as `SnapshotStore::current_`).
  std::atomic<std::shared_ptr<const MonitorSnapshot>> snapshot_;
};

/// Canonical frontier order: by size, then lexicographic on indices.
bool CanonicalAttributeSetLess(const AttributeSet& a, const AttributeSet& b);

}  // namespace qikey

#endif  // QIKEY_MONITOR_KEY_MONITOR_H_
