#include "core/masking.h"

#include <algorithm>

#include "core/sample_bounds.h"
#include "data/partition.h"
#include "util/logging.h"

namespace qikey {

namespace {

/// Greedy masking loop over `eval` (which is either the sample or the
/// full data set).
MaskingResult GreedyMask(const Dataset& eval, double eps,
                         size_t max_masked) {
  const size_t m = eval.num_attributes();
  const uint64_t total_pairs = eval.num_pairs();
  const double max_separated =
      (1.0 - eps) * static_cast<double>(total_pairs);

  MaskingResult result;
  result.masked = AttributeSet(m);
  AttributeSet remaining = AttributeSet::All(m);

  auto separated_by = [&](const AttributeSet& attrs) -> uint64_t {
    return total_pairs -
           CountUnseparatedPairs(eval, attrs.ToIndices());
  };

  uint64_t current = separated_by(remaining);
  while (static_cast<double>(current) > max_separated &&
         result.steps.size() < max_masked && !remaining.empty()) {
    // Mask the attribute whose removal leaves the fewest separated
    // pairs (destroys the most separation).
    AttributeIndex best_attr = 0;
    uint64_t best_separated = ~uint64_t{0};
    for (AttributeIndex a : remaining.ToIndices()) {
      AttributeSet candidate = remaining;
      candidate.Remove(a);
      uint64_t separated = separated_by(candidate);
      if (separated < best_separated) {
        best_separated = separated;
        best_attr = a;
      }
    }
    remaining.Remove(best_attr);
    result.masked.Add(best_attr);
    current = best_separated;
    result.steps.emplace_back(best_attr, best_separated);
  }
  result.achieved = static_cast<double>(current) <= max_separated;
  result.residual_separation =
      total_pairs > 0 ? static_cast<double>(current) /
                            static_cast<double>(total_pairs)
                      : 0.0;
  return result;
}

}  // namespace

Result<MaskingResult> FindMaskingSet(const Dataset& dataset,
                                     const MaskingOptions& options,
                                     Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (dataset.num_rows() < 2) {
    return Status::InvalidArgument("need at least two rows");
  }
  QIKEY_RETURN_NOT_OK(ValidateEps(options.eps));
  uint64_t r = options.sample_size > 0
                   ? options.sample_size
                   : TupleSampleSizePaper(
                         static_cast<uint32_t>(dataset.num_attributes()),
                         options.eps);
  r = std::min<uint64_t>(r, dataset.num_rows());
  std::vector<uint64_t> chosen =
      rng->SampleWithoutReplacement(dataset.num_rows(), r);
  std::vector<RowIndex> rows(chosen.begin(), chosen.end());
  Dataset sample = dataset.SelectRows(rows);
  MaskingResult result = GreedyMask(sample, options.eps, options.max_masked);
  result.sample_size = r;
  return result;
}

MaskingResult GreedyMaskingExact(const Dataset& dataset, double eps) {
  QIKEY_CHECK(eps > 0.0 && eps < 1.0);
  MaskingResult result =
      GreedyMask(dataset, eps, dataset.num_attributes());
  result.sample_size = dataset.num_rows();
  return result;
}

}  // namespace qikey
