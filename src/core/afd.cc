#include "core/afd.h"

#include <algorithm>

#include "core/sample_bounds.h"
#include "data/partition.h"
#include "util/logging.h"

namespace qikey {

AfdError ComputeAfdError(const Dataset& dataset, const AttributeSet& lhs,
                         AttributeIndex rhs) {
  QIKEY_CHECK(!lhs.Contains(rhs)) << "rhs must not be part of lhs";
  Partition by_lhs = PartitionByAttributes(dataset, lhs.ToIndices());
  uint64_t gamma_lhs = by_lhs.UnseparatedPairs();
  uint64_t gamma_both =
      by_lhs.RefinedBy(dataset.column(rhs)).UnseparatedPairs();
  AfdError err;
  err.lhs_agree = gamma_lhs;
  err.violating = gamma_lhs - gamma_both;
  uint64_t total = dataset.num_pairs();
  err.g2 = total > 0 ? static_cast<double>(err.violating) /
                           static_cast<double>(total)
                     : 0.0;
  err.conditional = gamma_lhs > 0
                        ? static_cast<double>(err.violating) /
                              static_cast<double>(gamma_lhs)
                        : 0.0;
  return err;
}

bool HoldsApproxFd(const Dataset& dataset, const AttributeSet& lhs,
                   AttributeIndex rhs, double max_g2) {
  return ComputeAfdError(dataset, lhs, rhs).g2 <= max_g2;
}

Result<AfdError> EstimateAfdError(const NonSeparationSketch& sketch,
                                  const AttributeSet& lhs,
                                  AttributeIndex rhs) {
  if (lhs.Contains(rhs)) {
    return Status::InvalidArgument("rhs must not be part of lhs");
  }
  NonSeparationEstimate est_lhs = sketch.Estimate(lhs);
  if (est_lhs.small) {
    return Status::OutOfRange(
        "Γ_lhs below the sketch's density cutoff; the FD is nearly exact");
  }
  AttributeSet both = lhs;
  both.Add(rhs);
  NonSeparationEstimate est_both = sketch.Estimate(both);
  double gamma_both = est_both.small ? 0.0 : est_both.estimate;

  AfdError err;
  err.lhs_agree = static_cast<uint64_t>(est_lhs.estimate);
  double violating = std::max(0.0, est_lhs.estimate - gamma_both);
  err.violating = static_cast<uint64_t>(violating);
  err.g2 = violating / static_cast<double>(sketch.total_pairs());
  err.conditional = est_lhs.estimate > 0 ? violating / est_lhs.estimate : 0.0;
  return err;
}

Result<std::vector<AfdCandidate>> DiscoverMinimalAfds(
    const Dataset& dataset, AttributeIndex rhs,
    double max_conditional_error, uint32_t max_size,
    uint64_t max_candidates) {
  const size_t m = dataset.num_attributes();
  if (rhs >= m) return Status::InvalidArgument("rhs out of range");
  QIKEY_RETURN_NOT_OK(
      ValidateUnitFraction(max_conditional_error, "max_conditional_error"));
  max_size = std::min<uint32_t>(max_size, static_cast<uint32_t>(m - 1));

  std::vector<AfdCandidate> found;
  // Level k candidates (as sorted index vectors), built by extending
  // level k-1 non-qualifying sets.
  std::vector<std::vector<AttributeIndex>> frontier{{}};
  uint64_t expansions = 0;

  for (uint32_t level = 1; level <= max_size && !frontier.empty(); ++level) {
    std::vector<std::vector<AttributeIndex>> next;
    for (const auto& base : frontier) {
      AttributeIndex start = base.empty() ? 0 : base.back() + 1;
      for (AttributeIndex a = start; a < m; ++a) {
        if (a == rhs) continue;
        if (++expansions > max_candidates) {
          return Status::OutOfRange(
              "candidate budget exhausted; raise max_candidates or lower "
              "max_size");
        }
        std::vector<AttributeIndex> candidate = base;
        candidate.push_back(a);
        AttributeSet lhs = AttributeSet::FromIndices(m, candidate);
        // Superset pruning: skip candidates containing a found LHS.
        bool contains_found = false;
        for (const AfdCandidate& f : found) {
          if (f.lhs.IsSubsetOf(lhs)) {
            contains_found = true;
            break;
          }
        }
        if (contains_found) continue;
        AfdError err = ComputeAfdError(dataset, lhs, rhs);
        if (err.conditional <= max_conditional_error) {
          found.emplace_back(std::move(lhs), err);
        } else {
          next.push_back(std::move(candidate));
        }
      }
    }
    frontier = std::move(next);
  }
  return found;
}

}  // namespace qikey
