#ifndef QIKEY_CORE_AFD_H_
#define QIKEY_CORE_AFD_H_

#include <cstdint>
#include <vector>

#include "core/attribute_set.h"
#include "core/sketch.h"
#include "data/dataset.h"
#include "util/status.h"

namespace qikey {

/// \brief Approximate functional dependencies (Kivinen–Mannila), the
/// application family the paper cites: quasi-identifiers are the
/// special case `X -> all attributes`.
///
/// For `X -> y` we use the pair-based error measures derivable from
/// non-separation counts:
///   violating  = Γ_X - Γ_{X ∪ {y}}
///              (pairs agreeing on X but differing on y),
///   g2         = violating / C(n,2),
///   conditional = violating / Γ_X   (error among X-agreeing pairs).
struct AfdError {
  uint64_t lhs_agree = 0;   ///< Γ_X
  uint64_t violating = 0;   ///< Γ_X - Γ_{X ∪ {y}}
  double g2 = 0.0;
  double conditional = 0.0;
};

/// Exact error of the dependency `lhs -> rhs` via partition refinement.
/// `O(n · |lhs|)`.
AfdError ComputeAfdError(const Dataset& dataset, const AttributeSet& lhs,
                         AttributeIndex rhs);

/// True iff `lhs -> rhs` holds with `g2` error at most `max_g2`.
bool HoldsApproxFd(const Dataset& dataset, const AttributeSet& lhs,
                   AttributeIndex rhs, double max_g2);

/// \brief Sketch-based estimate of the same error: two non-separation
/// estimates (Theorem 2) give `Γ_X` and `Γ_{X∪{y}}`; valid when both
/// are in the sketch's dense regime. Returns InvalidArgument when the
/// sketch reports "small" for `Γ_X` (the dependency is then nearly
/// exact anyway).
Result<AfdError> EstimateAfdError(const NonSeparationSketch& sketch,
                                  const AttributeSet& lhs,
                                  AttributeIndex rhs);

/// One discovered dependency.
struct AfdCandidate {
  AttributeSet lhs;
  AfdError error;
};

/// \brief Levelwise discovery of all minimal LHS sets (up to
/// `max_size`) such that `lhs -> rhs` holds with conditional error at
/// most `max_conditional_error`. Minimality: no strict subset of a
/// returned LHS qualifies. Standard Apriori-style lattice traversal
/// with superset pruning; exponential worst case, bounded by
/// `max_candidates` expansions.
Result<std::vector<AfdCandidate>> DiscoverMinimalAfds(
    const Dataset& dataset, AttributeIndex rhs,
    double max_conditional_error, uint32_t max_size,
    uint64_t max_candidates = 1u << 20);

}  // namespace qikey

#endif  // QIKEY_CORE_AFD_H_
