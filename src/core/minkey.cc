#include "core/minkey.h"

#include <algorithm>

#include "core/sample_bounds.h"
#include "setcover/set_cover.h"
#include "util/logging.h"

namespace qikey {

namespace {

MinKeyResult ResultFromGreedy(RefineEngine::GreedyResult greedy,
                              uint64_t sample_size) {
  MinKeyResult out;
  out.key = std::move(greedy.chosen);
  out.covered_sample = greedy.is_sample_key;
  out.sample_size = sample_size;
  out.steps = std::move(greedy.steps);
  return out;
}

}  // namespace

Result<MinKeyResult> FindApproxMinimumEpsKey(const Dataset& dataset,
                                             const MinKeyOptions& options,
                                             Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (dataset.num_rows() < 2) {
    return Status::InvalidArgument("need at least two rows");
  }
  QIKEY_RETURN_NOT_OK(ValidateEps(options.eps));
  uint64_t r = options.sample_size > 0
                   ? options.sample_size
                   : TupleSampleSizePaper(
                         static_cast<uint32_t>(dataset.num_attributes()),
                         options.eps);
  r = std::min<uint64_t>(r, dataset.num_rows());
  std::vector<uint64_t> chosen =
      rng->SampleWithoutReplacement(dataset.num_rows(), r);
  std::vector<RowIndex> rows(chosen.begin(), chosen.end());
  Dataset sample = dataset.SelectRows(rows);

  RefineEngine engine(sample, options.gain_strategy);
  return ResultFromGreedy(engine.RunGreedy(options.max_attributes), r);
}

Result<MinKeyResult> FindApproxMinimumEpsKeyMx(const Dataset& dataset,
                                               const MinKeyOptions& options,
                                               Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (dataset.num_rows() < 2) {
    return Status::InvalidArgument("need at least two rows");
  }
  QIKEY_RETURN_NOT_OK(ValidateEps(options.eps));
  const size_t m = dataset.num_attributes();
  uint64_t s = options.sample_size > 0
                   ? options.sample_size
                   : MxPairSampleSizePaper(static_cast<uint32_t>(m),
                                           options.eps);
  // Ground set: the sampled pairs. Set j: pairs separated by attribute j.
  SetCoverInstance instance(s, m);
  std::vector<std::pair<RowIndex, RowIndex>> pairs;
  pairs.reserve(s);
  for (uint64_t i = 0; i < s; ++i) {
    auto [a, b] = rng->SamplePair(dataset.num_rows());
    pairs.emplace_back(static_cast<RowIndex>(a), static_cast<RowIndex>(b));
    for (size_t j = 0; j < m; ++j) {
      AttributeIndex attr = static_cast<AttributeIndex>(j);
      if (dataset.code(pairs.back().first, attr) !=
          dataset.code(pairs.back().second, attr)) {
        instance.Add(j, i);
      }
    }
  }
  SetCoverResult cover = GreedySetCover(instance);

  MinKeyResult out;
  out.key = AttributeSet(m);
  for (uint32_t j : cover.chosen) out.key.Add(static_cast<AttributeIndex>(j));
  out.covered_sample = cover.complete;
  out.sample_size = s;
  return out;
}

Result<MinKeyResult> FindMinimumEpsKeyExact(const Dataset& dataset,
                                            const MinKeyOptions& options,
                                            Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (dataset.num_rows() < 2) {
    return Status::InvalidArgument("need at least two rows");
  }
  QIKEY_RETURN_NOT_OK(ValidateEps(options.eps));
  const size_t m = dataset.num_attributes();
  uint64_t r = options.sample_size > 0
                   ? options.sample_size
                   : TupleSampleSizePaper(static_cast<uint32_t>(m),
                                          options.eps);
  r = std::min<uint64_t>(r, dataset.num_rows());
  std::vector<uint64_t> chosen =
      rng->SampleWithoutReplacement(dataset.num_rows(), r);
  std::vector<RowIndex> rows(chosen.begin(), chosen.end());
  Dataset sample = dataset.SelectRows(rows);

  // Ground set: only the pairs the full attribute set leaves together
  // can never be covered; exclude them so a cover exists whenever the
  // sample has no exact duplicates. Enumerate the remaining pairs once.
  std::vector<std::pair<RowIndex, RowIndex>> ground;
  std::vector<AttributeIndex> all_attrs;
  for (size_t j = 0; j < m; ++j) {
    all_attrs.push_back(static_cast<AttributeIndex>(j));
  }
  bool has_duplicates = false;
  for (RowIndex i = 0; i < sample.num_rows(); ++i) {
    for (RowIndex j = i + 1; j < sample.num_rows(); ++j) {
      if (sample.RowsAgreeOn(i, j, all_attrs)) {
        has_duplicates = true;
      } else {
        ground.emplace_back(i, j);
      }
    }
  }
  SetCoverInstance instance(ground.size(), m);
  for (size_t e = 0; e < ground.size(); ++e) {
    for (size_t j = 0; j < m; ++j) {
      AttributeIndex a = static_cast<AttributeIndex>(j);
      if (sample.code(ground[e].first, a) !=
          sample.code(ground[e].second, a)) {
        instance.Add(j, e);
      }
    }
  }
  Result<std::vector<uint32_t>> cover =
      ExactSetCover(instance, static_cast<uint32_t>(m));
  if (!cover.ok()) return cover.status();

  MinKeyResult out;
  out.key = AttributeSet(m);
  for (uint32_t j : *cover) out.key.Add(static_cast<AttributeIndex>(j));
  out.covered_sample = !has_duplicates;
  out.sample_size = r;
  return out;
}

MinKeyResult GreedyMinimumKey(const Dataset& dataset, GainStrategy strategy) {
  RefineEngine engine(dataset, strategy);
  return ResultFromGreedy(engine.RunGreedy(),
                          static_cast<uint64_t>(dataset.num_rows()));
}

}  // namespace qikey
