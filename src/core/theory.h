#ifndef QIKEY_CORE_THEORY_H_
#define QIKEY_CORE_THEORY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/attribute_set.h"
#include "core/sketch.h"

namespace qikey {

/// \brief Closed forms from the paper's lower-bound machinery
/// (Section 3.2 and Lemma 6).

/// Lemma 6: for the encoding data set with `n = k·t`, querying
/// `A = {c} ∪ {m + r_1..r_k}` where `u` of the `k` guessed rows are
/// correct (are 1-entries of column `c`):
///   `Γ_A = (t² - t + 5/2)·k² - (t - 1/2)·k + u² - 3ku`.
/// The value is integral; computed exactly in 64-bit arithmetic.
uint64_t EncodingGammaClosedForm(uint32_t t, uint32_t k, uint32_t u);

/// Bob's acceptance threshold: a guess is declared good when
/// `Γ̂_A <= (1+eps) * EncodingGammaClosedForm(t, k, u=k)`.
double EncodingGoodGuessThreshold(uint32_t t, uint32_t k, double eps);

/// The paper's choice `t = 1/(K√ε)`: returns the smallest `t` making the
/// decoding gap exceed `(1+ε)/(1-ε)`, i.e. satisfying
/// `11 / (200 t² - 200 t + 11) > ε` fails for smaller epsilon... solved
/// numerically by scanning up from 2.
uint32_t EncodingChooseT(double eps);

/// \brief Bob's column decoder (Section 3.2): exhaustively tries all
/// `C(n, k)` row guesses, queries the estimate oracle with
/// `A = {column} ∪ {m + r_i}`, and returns the first good guess as a
/// reconstructed 0/1 column of length `n`. Exponential in `k`; intended
/// for small test instances.
///
/// `oracle` answers non-separation estimates over the encoding data set
/// (2n rows, m+n attributes).
std::vector<uint8_t> DecodeEncodingColumn(
    const std::function<NonSeparationEstimate(const AttributeSet&)>& oracle,
    uint32_t column, uint32_t m, uint32_t n, uint32_t k, uint32_t t,
    double eps);

}  // namespace qikey

#endif  // QIKEY_CORE_THEORY_H_
