#include "core/theory.h"

#include <cmath>

#include "util/logging.h"

namespace qikey {

uint64_t EncodingGammaClosedForm(uint32_t t, uint32_t k, uint32_t u) {
  QIKEY_CHECK(u <= k);
  // Γ = (t²-t+5/2)k² - (t-1/2)k + u² - 3ku
  //   = [2(t²-t)k² + 5k² - (2t-1)k + 2u² - 6ku] / 2, which is integral
  // (5k² + k is even for every k).
  const int64_t T = t, K = k, U = u;
  int64_t numerator = 2 * (T * T - T) * K * K + 5 * K * K - (2 * T - 1) * K +
                      2 * U * U - 6 * K * U;
  QIKEY_CHECK(numerator >= 0 && numerator % 2 == 0)
      << "closed form must be a non-negative integer";
  return static_cast<uint64_t>(numerator / 2);
}

double EncodingGoodGuessThreshold(uint32_t t, uint32_t k, double eps) {
  return (1.0 + eps) *
         static_cast<double>(EncodingGammaClosedForm(t, k, k));
}

uint32_t EncodingChooseT(double eps) {
  QIKEY_CHECK(eps > 0.0 && eps < 1.0);
  // Decoding needs 11 / (200 t² - 200 t + 11) > eps so the all-correct
  // and not-all-correct Γ values stay separated despite the (1±eps)
  // estimation ambiguity. The lower bound wants t as large as possible
  // (t = Θ(1/√eps)), so return the largest t still satisfying it.
  auto satisfied = [eps](uint64_t t) {
    double dt = static_cast<double>(t);
    return 11.0 / (200.0 * dt * dt - 200.0 * dt + 11.0) > eps;
  };
  uint64_t t = 2;
  while (t < (1u << 20) && satisfied(t + 1)) ++t;
  return static_cast<uint32_t>(t);
}

std::vector<uint8_t> DecodeEncodingColumn(
    const std::function<NonSeparationEstimate(const AttributeSet&)>& oracle,
    uint32_t column, uint32_t m, uint32_t n, uint32_t k, uint32_t t,
    double eps) {
  QIKEY_CHECK(k <= n);
  const double threshold = EncodingGoodGuessThreshold(t, k, eps);
  const size_t total_attrs = static_cast<size_t>(m) + n;
  std::vector<uint32_t> guess(k);
  for (uint32_t i = 0; i < k; ++i) guess[i] = i;
  std::vector<uint8_t> reconstruction(n, 0);
  while (true) {
    AttributeSet attrs(total_attrs);
    attrs.Add(column);
    for (uint32_t r : guess) attrs.Add(m + r);
    NonSeparationEstimate est = oracle(attrs);
    if (!est.small && est.estimate <= threshold) {
      for (uint32_t r : guess) reconstruction[r] = 1;
      return reconstruction;
    }
    // Next k-combination of [0, n).
    int32_t i = static_cast<int32_t>(k) - 1;
    while (i >= 0 && guess[i] == n - k + static_cast<uint32_t>(i)) --i;
    if (i < 0) break;
    ++guess[i];
    for (uint32_t j = static_cast<uint32_t>(i) + 1; j < k; ++j) {
      guess[j] = guess[j - 1] + 1;
    }
  }
  // No good guess found (estimation failure); return the all-zero column.
  return reconstruction;
}

}  // namespace qikey
