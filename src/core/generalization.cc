#include "core/generalization.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <queue>
#include <set>

#include "core/sample_bounds.h"
#include "data/partition.h"
#include "util/logging.h"

namespace qikey {

namespace {

/// k-anonymity check under a level vector, with row-suppression slack:
/// rows in classes of size < k are suppressed; the node qualifies if
/// their fraction is within budget.
struct NodeEval {
  bool qualifies = false;
  double suppressed = 0.0;
  uint64_t classes = 0;
  uint64_t min_class = 0;
};

NodeEval EvaluateNode(const Dataset& dataset,
                      const std::vector<AttributeIndex>& qi,
                      const std::vector<GeneralizationHierarchy>& hierarchies,
                      const GeneralizationVector& levels,
                      const GeneralizationOptions& options) {
  // Partition rows by the generalized QI projection.
  Partition p = Partition::Trivial(dataset.num_rows());
  for (size_t i = 0; i < qi.size(); ++i) {
    Column generalized =
        hierarchies[i].GeneralizeColumn(dataset.column(qi[i]), levels[i]);
    p = p.RefinedBy(generalized);
    // All rows merged into singleton-free classes can't happen early;
    // no early exit here because generalization only merges.
  }
  NodeEval eval;
  uint64_t below = 0;
  uint64_t min_class = ~uint64_t{0};
  for (uint32_t s : p.block_sizes()) {
    if (s < options.k) below += s;
    min_class = std::min<uint64_t>(min_class, s);
  }
  eval.suppressed = dataset.num_rows() > 0
                        ? static_cast<double>(below) /
                              static_cast<double>(dataset.num_rows())
                        : 0.0;
  eval.qualifies = eval.suppressed <= options.max_suppression + 1e-12;
  eval.classes = p.num_blocks();
  eval.min_class = p.num_blocks() > 0 ? min_class : 0;
  return eval;
}

}  // namespace

Result<Dataset> ApplyGeneralization(
    const Dataset& dataset, const std::vector<AttributeIndex>& qi,
    const std::vector<GeneralizationHierarchy>& hierarchies,
    const GeneralizationVector& levels) {
  if (qi.size() != hierarchies.size() || qi.size() != levels.size()) {
    return Status::InvalidArgument(
        "qi, hierarchies and levels must have equal length");
  }
  std::vector<Column> columns;
  columns.reserve(dataset.num_attributes());
  for (size_t j = 0; j < dataset.num_attributes(); ++j) {
    columns.push_back(dataset.column(static_cast<AttributeIndex>(j)));
  }
  for (size_t i = 0; i < qi.size(); ++i) {
    if (qi[i] >= dataset.num_attributes()) {
      return Status::InvalidArgument("qi attribute out of range");
    }
    if (levels[i] >= hierarchies[i].levels()) {
      return Status::InvalidArgument("generalization level out of range");
    }
    columns[qi[i]] =
        hierarchies[i].GeneralizeColumn(dataset.column(qi[i]), levels[i]);
  }
  return Dataset(dataset.schema(), std::move(columns));
}

Result<GeneralizationResult> FindMinimalGeneralization(
    const Dataset& dataset, const std::vector<AttributeIndex>& qi,
    const std::vector<GeneralizationHierarchy>& hierarchies,
    const GeneralizationOptions& options) {
  if (qi.empty() || qi.size() != hierarchies.size()) {
    return Status::InvalidArgument(
        "need a non-empty qi with one hierarchy per attribute");
  }
  if (options.k < 1) return Status::InvalidArgument("k must be >= 1");
  QIKEY_RETURN_NOT_OK(
      ValidateUnitFraction(options.max_suppression, "max_suppression"));
  const size_t d = qi.size();

  // Bottom-up BFS over the lattice in level-sum order. Roll-up
  // monotonicity: k-anonymity (with suppression slack) is upward
  // closed, so the first qualifying node on each chain is minimal; we
  // keep the best (smallest level-sum) qualifying node overall and
  // prune ancestors of qualifying nodes.
  std::queue<GeneralizationVector> frontier;
  std::set<GeneralizationVector> seen;
  std::vector<GeneralizationVector> qualifying;
  frontier.push(GeneralizationVector(d, 0));
  seen.insert(frontier.front());
  uint64_t evaluated = 0;

  GeneralizationResult best;
  bool found = false;
  uint32_t best_sum = ~uint32_t{0};

  while (!frontier.empty()) {
    GeneralizationVector node = frontier.front();
    frontier.pop();
    uint32_t sum = std::accumulate(node.begin(), node.end(), 0u);
    if (found && sum >= best_sum) continue;  // BFS order: can't improve
    // Prune ancestors of already-qualifying nodes (non-minimal).
    bool dominated = false;
    for (const GeneralizationVector& q : qualifying) {
      bool geq_all = true;
      for (size_t i = 0; i < d; ++i) geq_all &= (node[i] >= q[i]);
      if (geq_all) {
        dominated = true;
        break;
      }
    }
    // Every node <= a non-dominated node is itself non-dominated, so
    // skipping a dominated node's subtree cannot hide minimal nodes.
    if (dominated) continue;
    {
      if (++evaluated > options.max_nodes) {
        return Status::OutOfRange("lattice budget exhausted");
      }
      NodeEval eval =
          EvaluateNode(dataset, qi, hierarchies, node, options);
      if (eval.qualifies) {
        qualifying.push_back(node);
        if (!found || sum < best_sum) {
          found = true;
          best_sum = sum;
          best.levels = node;
          best.suppressed = eval.suppressed;
          best.classes = eval.classes;
          best.anonymity_level = eval.min_class;
        }
        continue;  // children are ancestors: non-minimal
      }
    }
    // Expand children (one level up in one coordinate).
    for (size_t i = 0; i < d; ++i) {
      if (node[i] + 1 >= hierarchies[i].levels()) continue;
      GeneralizationVector child = node;
      ++child[i];
      if (seen.insert(child).second) frontier.push(child);
    }
  }
  if (!found) {
    return Status::NotFound(
        "no generalization meets the k-anonymity target");
  }
  best.nodes_evaluated = evaluated;
  return best;
}

}  // namespace qikey
