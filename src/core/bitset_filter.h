#ifndef QIKEY_CORE_BITSET_FILTER_H_
#define QIKEY_CORE_BITSET_FILTER_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/evidence_block.h"
#include "core/filter.h"
#include "core/sample_bounds.h"
#include "util/rng.h"
#include "util/status.h"

namespace qikey {

/// Options for `BitsetSeparationFilter::Build`.
struct BitsetFilterOptions {
  double eps = 0.001;
  /// Override the pair count; 0 = use `MxPairSampleSizePaper(m, eps)`.
  uint64_t sample_size = 0;
};

/// \brief The MX pair filter answered from bit-packed disagree-set
/// evidence instead of per-pair value comparisons.
///
/// Build draws the SAME `Θ(m/ε)` uniform pairs as `MxPairFilter`
/// (identical RNG consumption, so a fixed seed yields the same sampled
/// pairs and therefore bit-identical verdicts), then encodes each
/// pair's disagree set — the attributes on which its two tuples differ
/// — as an `m`-bit mask packed into cache-line-aligned 64-pair blocks.
/// A query is word-wise AND over the blocks with an early exit on the
/// first unseparated pair, and `QueryBatch` walks the blocks
/// block-major so each resident block serves the whole candidate
/// batch. The masks ARE the sketch: `s·m` bits plus one representative
/// row pair per distinct mask for witness reporting — the original
/// relation is not referenced after Build.
class BitsetSeparationFilter : public SeparationFilter {
 public:
  static Result<BitsetSeparationFilter> Build(
      const Dataset& dataset, const BitsetFilterOptions& options, Rng* rng);

  /// Builds from an already-materialized pair table (the shard path):
  /// rows `2i` and `2i+1` of `pair_table` form sampled pair `i`. The
  /// table is retained (it is what `MergeDisjoint` re-encodes), and
  /// witness indices address its rows, exactly as for a materialized
  /// `MxPairFilter`.
  static Result<BitsetSeparationFilter> FromMaterializedPairs(
      Dataset pair_table);

  /// Packs the given row pairs of `table` without retaining the table;
  /// witness indices are `table` row indices.
  static BitsetSeparationFilter FromPairs(
      const Dataset& table,
      std::span<const std::pair<RowIndex, RowIndex>> pairs);

  /// Wraps already-packed evidence (the snapshot-file path — typically
  /// borrowed straight out of an mmap-ed section). `declared_pairs` is
  /// the pre-dedup slot count reported by `sample_size()` and must be
  /// at least the evidence's packed pair count.
  static Result<BitsetSeparationFilter> FromPackedEvidence(
      PackedEvidence evidence, uint64_t declared_pairs);

  /// \brief Sharded-construction primitive, mirroring
  /// `MxPairFilter::MergeDisjoint` (same preconditions: materialized
  /// inputs, equal slot counts, disjoint populations of `seen_a` and
  /// `seen_b` rows). Delegates the per-slot union algebra to the MX
  /// merge — identical RNG consumption — and re-packs the evidence.
  static Result<BitsetSeparationFilter> MergeDisjoint(
      const BitsetSeparationFilter& a, uint64_t seen_a,
      const BitsetSeparationFilter& b, uint64_t seen_b, Rng* rng);

  FilterVerdict Query(const AttributeSet& attrs) const override;
  std::optional<std::pair<RowIndex, RowIndex>> QueryWitness(
      const AttributeSet& attrs) const override;

  /// Block-major batched query (see
  /// `PackedEvidence::TestMasksBlockMajor`); the batch is partitioned
  /// over `pool` when given.
  std::vector<FilterVerdict> QueryBatch(
      std::span<const AttributeSet> attrs,
      ThreadPool* pool = nullptr) const override;

  /// Sampled pair slots (pre-dedup), matching `MxPairFilter`.
  uint64_t sample_size() const override { return declared_pairs_; }
  uint64_t MemoryBytes() const override;

  /// The retained pair table when built via `FromMaterializedPairs`
  /// (null otherwise).
  const Dataset* materialized() const { return materialized_.get(); }

  /// The packed evidence (block/dedup stats for benches and tests).
  const PackedEvidence& evidence() const { return evidence_; }

 private:
  BitsetSeparationFilter() = default;

  PackedEvidence evidence_;
  uint64_t declared_pairs_ = 0;
  std::shared_ptr<Dataset> materialized_;
};

}  // namespace qikey

#endif  // QIKEY_CORE_BITSET_FILTER_H_
