#include "core/sketch.h"

#include <cstring>

#include "core/sample_bounds.h"
#include "util/logging.h"

namespace qikey {

Result<NonSeparationSketch> NonSeparationSketch::Build(
    const Dataset& dataset, const NonSeparationSketchOptions& options,
    Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (dataset.num_rows() < 2) {
    return Status::InvalidArgument("need at least two rows");
  }
  if (!IsValidEps(options.eps) ||
      !(options.alpha > 0.0 && options.alpha <= 1.0)) {
    return Status::InvalidArgument("eps in (0,1) and alpha in (0,1] required");
  }
  const uint32_t m = static_cast<uint32_t>(dataset.num_attributes());
  uint64_t s = options.sample_size > 0
                   ? options.sample_size
                   : SketchPairSampleSize(options.k, m, options.alpha,
                                          options.eps, options.big_k);
  NonSeparationSketch sketch;
  sketch.num_attributes_ = m;
  sketch.num_pairs_ = s;
  sketch.total_pairs_ = dataset.num_pairs();
  sketch.small_cutoff_ =
      SketchSmallCutoff(options.k, m, options.eps, options.big_k);
  sketch.codes_.resize(2 * s * m);
  for (uint64_t i = 0; i < s; ++i) {
    auto [a, b] = rng->SamplePair(dataset.num_rows());
    for (uint32_t j = 0; j < m; ++j) {
      sketch.codes_[(2 * i) * m + j] = dataset.code(static_cast<RowIndex>(a), j);
      sketch.codes_[(2 * i + 1) * m + j] =
          dataset.code(static_cast<RowIndex>(b), j);
    }
  }
  return sketch;
}

Result<NonSeparationSketch> NonSeparationSketch::FromMaterializedPairs(
    uint32_t num_attributes, uint64_t total_pairs, uint64_t small_cutoff,
    std::vector<ValueCode> codes) {
  if (num_attributes == 0) {
    return Status::InvalidArgument("need at least one attribute");
  }
  if (codes.size() % (2 * static_cast<size_t>(num_attributes)) != 0) {
    return Status::InvalidArgument(
        "codes length must be a multiple of 2*num_attributes");
  }
  NonSeparationSketch sketch;
  sketch.num_attributes_ = num_attributes;
  sketch.num_pairs_ = codes.size() / (2 * num_attributes);
  sketch.total_pairs_ = total_pairs;
  sketch.small_cutoff_ = small_cutoff;
  sketch.codes_ = std::move(codes);
  return sketch;
}

NonSeparationEstimate NonSeparationSketch::Estimate(
    const AttributeSet& attrs) const {
  std::vector<AttributeIndex> idx = attrs.ToIndices();
  uint64_t hits = 0;
  const uint32_t m = num_attributes_;
  for (uint64_t i = 0; i < num_pairs_; ++i) {
    const ValueCode* left = &codes_[(2 * i) * m];
    const ValueCode* right = &codes_[(2 * i + 1) * m];
    bool agree = true;
    for (AttributeIndex a : idx) {
      if (left[a] != right[a]) {
        agree = false;
        break;
      }
    }
    if (agree) ++hits;
  }
  NonSeparationEstimate out;
  out.hits = hits;
  if (hits < small_cutoff_) {
    out.small = true;
    return out;
  }
  out.estimate = static_cast<double>(hits) *
                 static_cast<double>(total_pairs_) /
                 static_cast<double>(num_pairs_);
  return out;
}

uint64_t NonSeparationSketch::SizeBytes() const {
  return sizeof(num_attributes_) + sizeof(num_pairs_) +
         sizeof(total_pairs_) + sizeof(small_cutoff_) +
         codes_.size() * sizeof(ValueCode);
}

std::string NonSeparationSketch::Serialize() const {
  std::string out;
  out.resize(SizeBytes());
  char* p = out.data();
  auto put = [&p](const void* src, size_t bytes) {
    std::memcpy(p, src, bytes);
    p += bytes;
  };
  put(&num_attributes_, sizeof(num_attributes_));
  put(&num_pairs_, sizeof(num_pairs_));
  put(&total_pairs_, sizeof(total_pairs_));
  put(&small_cutoff_, sizeof(small_cutoff_));
  put(codes_.data(), codes_.size() * sizeof(ValueCode));
  return out;
}

Result<NonSeparationSketch> NonSeparationSketch::Deserialize(
    const std::string& bytes) {
  NonSeparationSketch sketch;
  size_t header = sizeof(sketch.num_attributes_) + sizeof(sketch.num_pairs_) +
                  sizeof(sketch.total_pairs_) + sizeof(sketch.small_cutoff_);
  if (bytes.size() < header) {
    return Status::InvalidArgument("sketch payload too short");
  }
  const char* p = bytes.data();
  auto get = [&p](void* dst, size_t n) {
    std::memcpy(dst, p, n);
    p += n;
  };
  get(&sketch.num_attributes_, sizeof(sketch.num_attributes_));
  get(&sketch.num_pairs_, sizeof(sketch.num_pairs_));
  get(&sketch.total_pairs_, sizeof(sketch.total_pairs_));
  get(&sketch.small_cutoff_, sizeof(sketch.small_cutoff_));
  uint64_t expected =
      2 * sketch.num_pairs_ * sketch.num_attributes_ * sizeof(ValueCode);
  if (bytes.size() != header + expected) {
    return Status::InvalidArgument("sketch payload size mismatch");
  }
  sketch.codes_.resize(2 * sketch.num_pairs_ * sketch.num_attributes_);
  get(sketch.codes_.data(), expected);
  return sketch;
}

}  // namespace qikey
