#include "core/bruteforce.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "core/separation.h"
#include "util/logging.h"

namespace qikey {

namespace {

/// Enumerates k-subsets of [0, m) in lexicographic order, invoking
/// `visit` on each; stops early when `visit` returns true.
bool ForEachCombination(
    uint32_t m, uint32_t k,
    const std::function<bool(const std::vector<AttributeIndex>&)>& visit) {
  if (k > m) return false;
  std::vector<AttributeIndex> combo(k);
  for (uint32_t i = 0; i < k; ++i) combo[i] = i;
  while (true) {
    if (visit(combo)) return true;
    // Advance to the next combination.
    int32_t i = static_cast<int32_t>(k) - 1;
    while (i >= 0 && combo[i] == m - k + static_cast<uint32_t>(i)) --i;
    if (i < 0) return false;
    ++combo[i];
    for (uint32_t j = static_cast<uint32_t>(i) + 1; j < k; ++j) {
      combo[j] = combo[j - 1] + 1;
    }
  }
}

Result<AttributeSet> SearchBySize(
    const Dataset& dataset, uint32_t max_size,
    const std::function<bool(const std::vector<AttributeIndex>&)>& good) {
  const uint32_t m = static_cast<uint32_t>(dataset.num_attributes());
  max_size = std::min(max_size, m);
  for (uint32_t k = 0; k <= max_size; ++k) {
    AttributeSet found;
    bool hit = ForEachCombination(
        m, k, [&](const std::vector<AttributeIndex>& combo) {
          if (good(combo)) {
            found = AttributeSet::FromIndices(m, combo);
            return true;
          }
          return false;
        });
    if (hit) return found;
  }
  return Status::NotFound("no qualifying subset within the size bound");
}

}  // namespace

Result<AttributeSet> ExactMinimumKey(const Dataset& dataset,
                                     uint32_t max_size) {
  return SearchBySize(dataset, max_size,
                      [&](const std::vector<AttributeIndex>& combo) {
                        return PartitionByAttributes(dataset, combo)
                            .AllSingletons();
                      });
}

Result<AttributeSet> ExactMinimumEpsKey(const Dataset& dataset, double eps,
                                        uint32_t max_size) {
  QIKEY_CHECK(eps >= 0.0 && eps < 1.0);
  const double budget =
      eps * static_cast<double>(dataset.num_pairs());
  return SearchBySize(dataset, max_size,
                      [&](const std::vector<AttributeIndex>& combo) {
                        uint64_t gamma =
                            CountUnseparatedPairs(dataset, combo);
                        return static_cast<double>(gamma) <= budget;
                      });
}

}  // namespace qikey
