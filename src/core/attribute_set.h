#ifndef QIKEY_CORE_ATTRIBUTE_SET_H_
#define QIKEY_CORE_ATTRIBUTE_SET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/schema.h"
#include "util/rng.h"

namespace qikey {

/// \brief A subset of the `m` attributes (the paper's `A ⊆ [m]`),
/// stored as a packed bitset.
///
/// Supports the set algebra the algorithms need plus conversion to the
/// index-vector form used by the data layer.
class AttributeSet {
 public:
  AttributeSet() = default;
  /// Empty set over a universe of `num_attributes` coordinates.
  explicit AttributeSet(size_t num_attributes);

  static AttributeSet FromIndices(size_t num_attributes,
                                  const std::vector<AttributeIndex>& indices);
  /// The full set `[m]`.
  static AttributeSet All(size_t num_attributes);
  /// A uniform random subset: each attribute included independently with
  /// probability `include_prob`.
  static AttributeSet Random(size_t num_attributes, double include_prob,
                             Rng* rng);
  /// A uniform random subset of exactly `k` attributes.
  static AttributeSet RandomOfSize(size_t num_attributes, size_t k, Rng* rng);

  size_t universe_size() const { return num_attributes_; }
  size_t size() const;  ///< number of attributes in the set
  bool empty() const { return size() == 0; }

  bool Contains(AttributeIndex i) const;
  void Add(AttributeIndex i);
  void Remove(AttributeIndex i);

  AttributeSet Union(const AttributeSet& other) const;
  AttributeSet Intersection(const AttributeSet& other) const;
  /// Set difference `this \ other`.
  AttributeSet Difference(const AttributeSet& other) const;
  bool IsSubsetOf(const AttributeSet& other) const;

  /// Ascending list of member indices.
  std::vector<AttributeIndex> ToIndices() const;

  /// The packed 64-bit words backing the set, lowest attributes first
  /// (`⌈universe_size/64⌉` words); the layout the packed-evidence
  /// kernels AND against.
  std::span<const uint64_t> words() const { return words_; }

  /// Renders as "{a0, a3}" using `schema` names, or indices if null.
  std::string ToString(const Schema* schema = nullptr) const;

  bool operator==(const AttributeSet& other) const;
  bool operator!=(const AttributeSet& other) const {
    return !(*this == other);
  }

  /// 64-bit hash (for use in unordered containers).
  uint64_t Hash() const;

 private:
  size_t num_attributes_ = 0;
  std::vector<uint64_t> words_;
};

struct AttributeSetHasher {
  size_t operator()(const AttributeSet& s) const {
    return static_cast<size_t>(s.Hash());
  }
};

}  // namespace qikey

#endif  // QIKEY_CORE_ATTRIBUTE_SET_H_
