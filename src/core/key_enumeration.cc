#include "core/key_enumeration.h"

#include <algorithm>

#include "core/sample_bounds.h"
#include "data/partition.h"
#include "util/logging.h"

namespace qikey {

Result<std::vector<AttributeSet>> EnumerateMinimalKeys(
    const Dataset& dataset, const KeyEnumerationOptions& options) {
  // NaN compares false against both bounds, so test for membership
  // rather than for violation (enumeration additionally admits eps = 0,
  // the exact-key case).
  if (!(options.eps >= 0.0 && options.eps < 1.0)) {
    return Status::InvalidArgument("eps must be in [0, 1)");
  }
  const size_t m = dataset.num_attributes();
  const uint32_t max_size =
      std::min<uint32_t>(options.max_size, static_cast<uint32_t>(m));
  const double budget =
      options.eps * static_cast<double>(dataset.num_pairs());

  std::vector<AttributeSet> found;
  std::vector<std::vector<AttributeIndex>> frontier{{}};
  uint64_t evaluations = 0;

  for (uint32_t level = 1; level <= max_size && !frontier.empty();
       ++level) {
    std::vector<std::vector<AttributeIndex>> next;
    for (const auto& base : frontier) {
      AttributeIndex start = base.empty() ? 0 : base.back() + 1;
      for (AttributeIndex a = start; a < m; ++a) {
        if (++evaluations > options.max_candidates) {
          return Status::OutOfRange(
              "candidate budget exhausted; raise max_candidates or lower "
              "max_size");
        }
        std::vector<AttributeIndex> candidate = base;
        candidate.push_back(a);
        AttributeSet attrs = AttributeSet::FromIndices(m, candidate);
        // Minimality pruning: all strict subsets were evaluated at
        // earlier levels, so containing a found key means non-minimal.
        bool contains_key = false;
        for (const AttributeSet& key : found) {
          if (key.IsSubsetOf(attrs)) {
            contains_key = true;
            break;
          }
        }
        if (contains_key) continue;
        uint64_t gamma = CountUnseparatedPairs(dataset, candidate);
        if (static_cast<double>(gamma) <= budget) {
          found.push_back(std::move(attrs));
        } else {
          next.push_back(std::move(candidate));
        }
      }
    }
    frontier = std::move(next);
  }
  return found;
}

Result<std::vector<AttributeSet>> EnumerateMinimalAcceptedSets(
    const SeparationFilter& filter, size_t num_attributes,
    const KeyEnumerationOptions& options, ThreadPool* pool) {
  const size_t m = num_attributes;
  const uint32_t max_size =
      std::min<uint32_t>(options.max_size, static_cast<uint32_t>(m));

  std::vector<AttributeSet> found;
  std::vector<std::vector<AttributeIndex>> frontier{{}};
  uint64_t evaluations = 0;

  for (uint32_t level = 1; level <= max_size && !frontier.empty(); ++level) {
    // Generate the level's candidates (minimality-pruned), then decide
    // the whole level with one batched filter call.
    std::vector<std::vector<AttributeIndex>> candidates;
    std::vector<AttributeSet> queries;
    for (const auto& base : frontier) {
      AttributeIndex start = base.empty() ? 0 : base.back() + 1;
      for (AttributeIndex a = start; a < m; ++a) {
        if (++evaluations > options.max_candidates) {
          return Status::OutOfRange(
              "candidate budget exhausted; raise max_candidates or lower "
              "max_size");
        }
        std::vector<AttributeIndex> candidate = base;
        candidate.push_back(a);
        AttributeSet attrs = AttributeSet::FromIndices(m, candidate);
        bool contains_key = false;
        for (const AttributeSet& key : found) {
          if (key.IsSubsetOf(attrs)) {
            contains_key = true;
            break;
          }
        }
        if (contains_key) continue;
        candidates.push_back(std::move(candidate));
        queries.push_back(std::move(attrs));
      }
    }
    std::vector<FilterVerdict> verdicts = filter.QueryBatch(queries, pool);
    std::vector<std::vector<AttributeIndex>> next;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (verdicts[i] == FilterVerdict::kAccept) {
        found.push_back(std::move(queries[i]));
      } else {
        next.push_back(std::move(candidates[i]));
      }
    }
    frontier = std::move(next);
  }
  return found;
}

}  // namespace qikey
