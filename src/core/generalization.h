#ifndef QIKEY_CORE_GENERALIZATION_H_
#define QIKEY_CORE_GENERALIZATION_H_

#include <cstdint>
#include <vector>

#include "core/attribute_set.h"
#include "data/dataset.h"
#include "data/hierarchy.h"
#include "util/status.h"

namespace qikey {

/// \brief Minimal k-anonymous generalization (the ARX problem): given a
/// quasi-identifier and a generalization hierarchy per QI attribute,
/// find the least-generalizing level vector under which every
/// equivalence class of the QI has size >= k (optionally after
/// suppressing a bounded fraction of outlier rows).
///
/// The search is the classic bottom-up lattice BFS with the roll-up
/// monotonicity prune: if a node is k-anonymous, all of its ancestors
/// are, so the minimal solutions form an antichain reachable by
/// level-order traversal.

/// A point in the generalization lattice: one level per QI attribute
/// (indices aligned with the `qi` vector passed to the search).
using GeneralizationVector = std::vector<uint32_t>;

struct GeneralizationOptions {
  uint64_t k = 2;
  /// Rows allowed to be suppressed (as a fraction of n) after
  /// generalizing; 0 = strict k-anonymity.
  double max_suppression = 0.0;
  /// Abort (OutOfRange) after visiting this many lattice nodes.
  uint64_t max_nodes = 1u << 20;
};

struct GeneralizationResult {
  /// A minimal (no coordinate can be lowered) k-anonymizing vector with
  /// the smallest total level sum among those found.
  GeneralizationVector levels;
  /// Fraction of rows suppressed under `levels` (<= max_suppression).
  double suppressed = 0.0;
  /// Equivalence classes and minimum class size after applying it.
  uint64_t classes = 0;
  uint64_t anonymity_level = 0;
  /// Lattice nodes evaluated (work measure).
  uint64_t nodes_evaluated = 0;
};

/// Applies a level vector: returns a data set whose QI columns are
/// generalized (non-QI columns unchanged).
Result<Dataset> ApplyGeneralization(
    const Dataset& dataset, const std::vector<AttributeIndex>& qi,
    const std::vector<GeneralizationHierarchy>& hierarchies,
    const GeneralizationVector& levels);

/// \brief Finds a minimal k-anonymizing generalization by bottom-up
/// lattice BFS. NotFound if even full generalization misses the target
/// (possible only with max_suppression > 0 semantics edge cases).
Result<GeneralizationResult> FindMinimalGeneralization(
    const Dataset& dataset, const std::vector<AttributeIndex>& qi,
    const std::vector<GeneralizationHierarchy>& hierarchies,
    const GeneralizationOptions& options);

}  // namespace qikey

#endif  // QIKEY_CORE_GENERALIZATION_H_
