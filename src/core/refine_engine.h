#ifndef QIKEY_CORE_REFINE_ENGINE_H_
#define QIKEY_CORE_REFINE_ENGINE_H_

#include <cstdint>
#include <vector>

#include "core/attribute_set.h"
#include "data/dataset.h"
#include "util/thread_pool.h"

namespace qikey {

/// How the per-attribute coverage gain `g_k` is computed each round.
enum class GainStrategy {
  /// Appendix B / Algorithm 3: bucket rows of each clique by their code
  /// through the precomputed lookup table (here, the dictionary codes
  /// themselves). `O(r)` per attribute per round -> `O(m² r)` total,
  /// i.e. `O(m³/√ε)` at the paper's sample size.
  kLookupTable,
  /// The "simplest approach" the paper mentions: sort each clique by the
  /// attribute's codes. `O(r log r)` comparisons per attribute per round
  /// -> `O(m² r log r)` total. Kept for the ablation bench.
  kSortPartition,
};

/// \brief Greedy minimum-key engine over a (sample) data set.
///
/// Implements Algorithm 2 specialized to the separation ground set
/// `(R choose 2)` using partition refinement: the state after choosing
/// `A` is the clique partition of `G_A` restricted to the sample, and
/// the greedy coverage gain of attribute `k` is
///   `g_k = ½ Σ_i (|C_i|² − Σ_a |D_a^{(i)}|²)`   (Appendix B),
/// the number of newly separated sample pairs.
class RefineEngine {
 public:
  explicit RefineEngine(const Dataset& sample,
                        GainStrategy strategy = GainStrategy::kLookupTable);

  struct Step {
    AttributeIndex chosen = 0;
    uint64_t gain = 0;            ///< newly separated sample pairs
    uint32_t blocks_after = 0;    ///< cliques after this step
  };

  struct GreedyResult {
    AttributeSet chosen;
    std::vector<Step> steps;
    /// True iff the chosen set separates all sample pairs (covers the
    /// ground set); false when the sample has full duplicates or
    /// `max_attributes` stopped the loop.
    bool is_sample_key = false;
    uint64_t remaining_unseparated = 0;
  };

  /// Runs greedy until all sample pairs are separated, no attribute
  /// helps, or `max_attributes` were chosen.
  GreedyResult RunGreedy(size_t max_attributes = ~size_t{0});

  /// Optional worker pool: when set, each greedy round computes the
  /// per-attribute gains in parallel (deterministic result — the
  /// argmax reduction is serial with index tie-breaking).
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Gain of refining the current partition by `attribute` (exposed for
  /// tests). Does not modify state.
  uint64_t GainOf(AttributeIndex attribute) const;

  /// Applies `attribute` to the state; returns pairs newly separated.
  uint64_t Apply(AttributeIndex attribute);

  uint32_t num_blocks() const { return num_blocks_; }
  uint64_t unseparated_pairs() const;

 private:
  /// Reusable per-thread buffers for the lookup-table gain.
  struct GainScratch {
    std::vector<uint32_t> code_count;
    std::vector<ValueCode> touched;
  };

  uint64_t GainLookupTable(AttributeIndex attribute,
                           GainScratch* scratch) const;
  uint64_t GainSortPartition(AttributeIndex attribute) const;
  GainScratch MakeScratch() const;
  /// Rebuilds `rows_by_block_` / `block_begin_` from `block_of_`.
  void RebuildBlockIndex();

  const Dataset& sample_;
  GainStrategy strategy_;
  ThreadPool* pool_ = nullptr;

  // Current partition state.
  std::vector<uint32_t> block_of_;       // row -> block
  uint32_t num_blocks_ = 0;
  std::vector<uint32_t> block_sizes_;    // block -> size
  // Rows grouped by block: rows_by_block_[block_begin_[b] ..
  // block_begin_[b+1]) lists the rows of block b.
  std::vector<RowIndex> rows_by_block_;
  std::vector<uint32_t> block_begin_;

  // Serial-path scratch (per-code counters plus a touched list),
  // reused across blocks and attributes. Parallel rounds use
  // per-thread `GainScratch` instances instead.
  mutable GainScratch scratch_;
  uint32_t max_cardinality_ = 1;
};

}  // namespace qikey

#endif  // QIKEY_CORE_REFINE_ENGINE_H_
