#include "core/refine_engine.h"

#include <algorithm>
#include <numeric>

#include "math/combinatorics.h"
#include "util/logging.h"

namespace qikey {

RefineEngine::RefineEngine(const Dataset& sample, GainStrategy strategy)
    : sample_(sample), strategy_(strategy) {
  const size_t r = sample_.num_rows();
  block_of_.assign(r, 0);
  num_blocks_ = r > 0 ? 1 : 0;
  block_sizes_.assign(num_blocks_, static_cast<uint32_t>(r));
  RebuildBlockIndex();
  for (size_t j = 0; j < sample_.num_attributes(); ++j) {
    max_cardinality_ = std::max(
        max_cardinality_,
        sample_.column(static_cast<AttributeIndex>(j)).cardinality());
  }
  scratch_ = MakeScratch();
}

RefineEngine::GainScratch RefineEngine::MakeScratch() const {
  GainScratch scratch;
  scratch.code_count.assign(max_cardinality_, 0);
  scratch.touched.reserve(64);
  return scratch;
}

void RefineEngine::RebuildBlockIndex() {
  const size_t r = block_of_.size();
  block_begin_.assign(num_blocks_ + 1, 0);
  for (size_t row = 0; row < r; ++row) ++block_begin_[block_of_[row] + 1];
  for (uint32_t b = 0; b < num_blocks_; ++b) {
    block_begin_[b + 1] += block_begin_[b];
  }
  rows_by_block_.resize(r);
  std::vector<uint32_t> cursor(block_begin_.begin(), block_begin_.end() - 1);
  for (size_t row = 0; row < r; ++row) {
    rows_by_block_[cursor[block_of_[row]]++] = static_cast<RowIndex>(row);
  }
}

uint64_t RefineEngine::unseparated_pairs() const {
  uint64_t total = 0;
  for (uint32_t s : block_sizes_) total += PairCount(s);
  return total;
}

uint64_t RefineEngine::GainOf(AttributeIndex attribute) const {
  return strategy_ == GainStrategy::kLookupTable
             ? GainLookupTable(attribute, &scratch_)
             : GainSortPartition(attribute);
}

uint64_t RefineEngine::GainLookupTable(AttributeIndex attribute,
                                       GainScratch* scratch) const {
  const Column& col = sample_.column(attribute);
  // g = 1/2 * sum over blocks (|C|^2 - sum_a |D_a|^2), computed per block
  // with a code-indexed counter array (Algorithm 3's bucket step; the
  // dictionary codes are the precomputed lookup table P).
  uint64_t delta = 0;  // sum over blocks of (|C|^2 - sum |D_a|^2)
  for (uint32_t b = 0; b < num_blocks_; ++b) {
    uint32_t begin = block_begin_[b];
    uint32_t end = block_begin_[b + 1];
    uint32_t size = end - begin;
    if (size <= 1) continue;
    scratch->touched.clear();
    for (uint32_t i = begin; i < end; ++i) {
      ValueCode c = col.code(rows_by_block_[i]);
      if (scratch->code_count[c] == 0) scratch->touched.push_back(c);
      ++scratch->code_count[c];
    }
    uint64_t sum_sq = 0;
    for (ValueCode c : scratch->touched) {
      uint64_t cnt = scratch->code_count[c];
      sum_sq += cnt * cnt;
      scratch->code_count[c] = 0;  // reset scratch for the next block
    }
    delta += static_cast<uint64_t>(size) * size - sum_sq;
  }
  return delta / 2;
}

uint64_t RefineEngine::GainSortPartition(AttributeIndex attribute) const {
  const Column& col = sample_.column(attribute);
  uint64_t delta = 0;
  std::vector<ValueCode> scratch;
  for (uint32_t b = 0; b < num_blocks_; ++b) {
    uint32_t begin = block_begin_[b];
    uint32_t end = block_begin_[b + 1];
    uint32_t size = end - begin;
    if (size <= 1) continue;
    scratch.clear();
    scratch.reserve(size);
    for (uint32_t i = begin; i < end; ++i) {
      scratch.push_back(col.code(rows_by_block_[i]));
    }
    std::sort(scratch.begin(), scratch.end());
    uint64_t sum_sq = 0;
    uint64_t run = 1;
    for (size_t i = 1; i < scratch.size(); ++i) {
      if (scratch[i] == scratch[i - 1]) {
        ++run;
      } else {
        sum_sq += run * run;
        run = 1;
      }
    }
    sum_sq += run * run;
    delta += static_cast<uint64_t>(size) * size - sum_sq;
  }
  return delta / 2;
}

uint64_t RefineEngine::Apply(AttributeIndex attribute) {
  const Column& col = sample_.column(attribute);
  uint64_t before = unseparated_pairs();
  // Split every block by code, assigning dense new block ids.
  std::vector<uint32_t> new_block_of(block_of_.size());
  std::vector<uint32_t> new_sizes;
  uint32_t next_block = 0;
  std::vector<uint32_t> code_to_new(max_cardinality_, ~uint32_t{0});
  std::vector<ValueCode> touched;
  for (uint32_t b = 0; b < num_blocks_; ++b) {
    uint32_t begin = block_begin_[b];
    uint32_t end = block_begin_[b + 1];
    touched.clear();
    for (uint32_t i = begin; i < end; ++i) {
      RowIndex row = rows_by_block_[i];
      ValueCode c = col.code(row);
      if (code_to_new[c] == ~uint32_t{0}) {
        code_to_new[c] = next_block++;
        new_sizes.push_back(0);
        touched.push_back(c);
      }
      new_block_of[row] = code_to_new[c];
      ++new_sizes[code_to_new[c]];
    }
    for (ValueCode c : touched) code_to_new[c] = ~uint32_t{0};
  }
  block_of_ = std::move(new_block_of);
  block_sizes_ = std::move(new_sizes);
  num_blocks_ = next_block;
  RebuildBlockIndex();
  return before - unseparated_pairs();
}

RefineEngine::GreedyResult RefineEngine::RunGreedy(size_t max_attributes) {
  GreedyResult result;
  result.chosen = AttributeSet(sample_.num_attributes());
  const size_t m = sample_.num_attributes();
  std::vector<uint64_t> gains(m, 0);
  while (result.steps.size() < max_attributes &&
         num_blocks_ < sample_.num_rows()) {
    // Compute all gains (in parallel when a pool is attached), then
    // reduce serially for a deterministic argmax.
    ThreadPool::ParallelFor(
        pool_, m, [&](size_t begin, size_t end) {
          GainScratch scratch = MakeScratch();
          for (size_t j = begin; j < end; ++j) {
            AttributeIndex a = static_cast<AttributeIndex>(j);
            if (result.chosen.Contains(a)) {
              gains[j] = 0;
              continue;
            }
            gains[j] = strategy_ == GainStrategy::kLookupTable
                           ? GainLookupTable(a, &scratch)
                           : GainSortPartition(a);
          }
        });
    AttributeIndex best_attr = 0;
    uint64_t best_gain = 0;
    for (size_t j = 0; j < m; ++j) {
      if (gains[j] > best_gain) {
        best_gain = gains[j];
        best_attr = static_cast<AttributeIndex>(j);
      }
    }
    if (best_gain == 0) break;  // no attribute separates anything further
    uint64_t applied = Apply(best_attr);
    QIKEY_DCHECK(applied == best_gain);
    result.chosen.Add(best_attr);
    result.steps.emplace_back(best_attr, applied, num_blocks_);
  }
  result.is_sample_key = num_blocks_ == sample_.num_rows();
  result.remaining_unseparated = unseparated_pairs();
  return result;
}

}  // namespace qikey
