#include "core/filter.h"

#include "util/thread_pool.h"

namespace qikey {

std::vector<FilterVerdict> SeparationFilter::QueryBatch(
    std::span<const AttributeSet> attrs, ThreadPool* /*pool*/) const {
  std::vector<FilterVerdict> verdicts;
  verdicts.reserve(attrs.size());
  for (const AttributeSet& a : attrs) verdicts.push_back(Query(a));
  return verdicts;
}

}  // namespace qikey
