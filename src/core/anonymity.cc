#include "core/anonymity.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/key_enumeration.h"
#include "core/sample_bounds.h"
#include "core/separation.h"
#include "data/partition.h"
#include "util/logging.h"

namespace qikey {

uint64_t AnonymityLevel(const Dataset& dataset, const AttributeSet& attrs) {
  Partition p = SeparationPartition(dataset, attrs);
  uint64_t min_class = ~uint64_t{0};
  for (uint32_t s : p.block_sizes()) {
    min_class = std::min<uint64_t>(min_class, s);
  }
  return p.num_blocks() == 0 ? 0 : min_class;
}

double RowsBelowK(const Dataset& dataset, const AttributeSet& attrs,
                  uint64_t k) {
  if (dataset.num_rows() == 0) return 0.0;
  Partition p = SeparationPartition(dataset, attrs);
  uint64_t at_risk = 0;
  for (uint32_t s : p.block_sizes()) {
    if (s < k) at_risk += s;
  }
  return static_cast<double>(at_risk) /
         static_cast<double>(dataset.num_rows());
}

std::vector<RowIndex> SuppressForKAnonymity(const Dataset& dataset,
                                            const AttributeSet& attrs,
                                            uint64_t k) {
  Partition p = SeparationPartition(dataset, attrs);
  std::vector<RowIndex> suppressed;
  for (RowIndex r = 0; r < dataset.num_rows(); ++r) {
    if (p.block_sizes()[p.block_of(r)] < k) suppressed.push_back(r);
  }
  return suppressed;
}

Result<RiskReport> AuditQuasiIdentifiers(const Dataset& dataset, double eps,
                                         uint32_t max_qi_size, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  QIKEY_RETURN_NOT_OK(ValidateEps(eps));
  // Enumerate candidate QIs on the paper's tuple sample (cheap), then
  // score the survivors exactly on the full data.
  uint64_t r = TupleSampleSizePaper(
      static_cast<uint32_t>(dataset.num_attributes()), eps);
  r = std::min<uint64_t>(r, dataset.num_rows());
  std::vector<uint64_t> chosen =
      rng->SampleWithoutReplacement(dataset.num_rows(), r);
  std::vector<RowIndex> rows(chosen.begin(), chosen.end());
  Dataset sample = dataset.SelectRows(rows);

  KeyEnumerationOptions enum_opts;
  enum_opts.eps = eps;
  enum_opts.max_size = max_qi_size;
  enum_opts.max_candidates = 1u << 18;
  Result<std::vector<AttributeSet>> keys =
      EnumerateMinimalKeys(sample, enum_opts);
  RiskReport report;
  std::vector<AttributeSet> candidates;
  if (keys.ok()) {
    candidates = std::move(keys).ValueOrDie();
  } else if (keys.status().code() == StatusCode::kOutOfRange) {
    report.truncated = true;
    return report;
  } else {
    return keys.status();
  }

  for (const AttributeSet& qi : candidates) {
    QuasiIdentifierRisk risk;
    risk.attrs = qi;
    risk.separation_ratio = SeparationRatio(dataset, qi);
    Partition p = SeparationPartition(dataset, qi);
    uint64_t min_class = ~uint64_t{0};
    uint64_t singletons = 0;
    uint64_t below2 = 0;
    for (uint32_t s : p.block_sizes()) {
      min_class = std::min<uint64_t>(min_class, s);
      if (s == 1) ++singletons;
      if (s < 2) below2 += s;
    }
    risk.anonymity_level = p.num_blocks() == 0 ? 0 : min_class;
    risk.uniqueness = static_cast<double>(singletons) /
                      static_cast<double>(dataset.num_rows());
    risk.suppression_for_k2 = static_cast<double>(below2) /
                              static_cast<double>(dataset.num_rows());
    report.quasi_identifiers.push_back(std::move(risk));
  }
  std::sort(report.quasi_identifiers.begin(),
            report.quasi_identifiers.end(),
            [](const QuasiIdentifierRisk& a, const QuasiIdentifierRisk& b) {
              return a.separation_ratio > b.separation_ratio;
            });
  return report;
}

std::string FormatRiskReport(const RiskReport& report, const Schema& schema) {
  std::ostringstream out;
  out << std::left << std::setw(44) << "quasi-identifier" << std::right
      << std::setw(11) << "sep-ratio" << std::setw(8) << "k-anon"
      << std::setw(12) << "uniqueness" << std::setw(12) << "suppr(k=2)"
      << "\n";
  for (const QuasiIdentifierRisk& r : report.quasi_identifiers) {
    out << std::left << std::setw(44) << r.attrs.ToString(&schema)
        << std::right << std::setw(11) << std::fixed << std::setprecision(6)
        << r.separation_ratio << std::setw(8) << r.anonymity_level
        << std::setw(11) << std::setprecision(2) << 100.0 * r.uniqueness
        << "%" << std::setw(11) << 100.0 * r.suppression_for_k2 << "%\n";
  }
  if (report.truncated) {
    out << "(enumeration truncated by candidate budget)\n";
  }
  return out.str();
}

}  // namespace qikey
