#ifndef QIKEY_CORE_SAMPLE_BOUNDS_H_
#define QIKEY_CORE_SAMPLE_BOUNDS_H_

#include <cstdint>

#include "util/status.h"

namespace qikey {

/// \brief Sample-size formulas from the paper, in two flavors:
/// *paper-table* sizes (the constants used for Table 1: `m/ε` pairs and
/// `m/√ε` tuples) and *for-delta* sizes with an explicit failure
/// probability `δ` against all `2^m` queries.

/// True iff `eps` is a usable separation threshold: finite and strictly
/// inside `(0, 1)`. The finiteness test matters — NaN compares false
/// against every bound, so the naive `eps <= 0 || eps >= 1` rejection
/// lets NaN through to the `Θ(m/ε)` size formulas, which then abort.
/// Every API boundary that takes an `eps` validates with this.
bool IsValidEps(double eps);

/// `IsValidEps` as a `Status` (InvalidArgument on failure), so call
/// sites stay one line: `QIKEY_RETURN_NOT_OK(ValidateEps(options.eps))`.
Status ValidateEps(double eps);

/// Shared check for the `[0, 1]` error/fraction knobs (`afd_error`,
/// `max_suppression`, ...): finite and within the closed unit interval.
/// `what` names the parameter in the error message.
Status ValidateUnitFraction(double value, const char* what);

/// Motwani–Xu pair sample for Table 1: `⌈m/ε⌉` pairs.
uint64_t MxPairSampleSizePaper(uint32_t m, double eps);

/// Motwani–Xu pair sample so that, union-bounded over `2^m` subsets,
/// every bad subset is rejected w.p. `1-δ`:
/// `s ≥ (m ln 2 + ln(1/δ)) / ε` (since `(1-ε)^s ≤ e^{-εs}`).
uint64_t MxPairSampleSizeForDelta(uint32_t m, double eps, double delta);

/// This paper's tuple sample for Table 1: `⌈m/√ε⌉` tuples.
uint64_t TupleSampleSizePaper(uint32_t m, double eps);

/// This paper's tuple sample with failure `δ = e^{-m}` (Theorem 1):
/// `r = ⌈c·m/√ε⌉`. `c` is the universal constant; the analysis proves a
/// (large) constant suffices, the default follows the implementation
/// convention of the paper's experiments (c = 1 reproduces Table 1;
/// larger c trades sample size for certainty).
uint64_t TupleSampleSizeForDelta(uint32_t m, double eps, double delta);

/// Non-separation sketch: `s = ⌈K·k·ln m/(α·ε²)⌉` pairs (Theorem 2).
uint64_t SketchPairSampleSize(uint32_t k, uint32_t m, double alpha,
                              double eps, double big_k = 1.0);

/// The "small" output threshold of the sketch: `K·k·ln m/(10·ε²)`.
uint64_t SketchSmallCutoff(uint32_t k, uint32_t m, double eps,
                           double big_k = 1.0);

/// Lower-bound reference curves (for bench output):
/// `Ω(√(log m/ε))` (Lemma 3) and `Ω(m/√ε)` (Lemma 4), unit constants.
double LowerBoundConstantDelta(uint32_t m, double eps);
double LowerBoundExpDelta(uint32_t m, double eps);

}  // namespace qikey

#endif  // QIKEY_CORE_SAMPLE_BOUNDS_H_
