#ifndef QIKEY_CORE_ANONYMITY_H_
#define QIKEY_CORE_ANONYMITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/attribute_set.h"
#include "data/dataset.h"
#include "util/rng.h"
#include "util/status.h"

namespace qikey {

/// \brief k-anonymity utilities (the ARX-style privacy layer on top of
/// quasi-identifier discovery): a data set is k-anonymous w.r.t. a
/// quasi-identifier `A` iff every equivalence class of `G_A` has size
/// >= k.

/// The anonymity level: the size of the smallest equivalence class of
/// the rows under `attrs` (1 means some row is unique — fully
/// re-identifiable).
uint64_t AnonymityLevel(const Dataset& dataset, const AttributeSet& attrs);

/// Fraction of rows in equivalence classes smaller than `k` (the
/// population at risk under a k-anonymity policy).
double RowsBelowK(const Dataset& dataset, const AttributeSet& attrs,
                  uint64_t k);

/// \brief Minimal row suppression for k-anonymity: the rows whose
/// removal makes the remainder k-anonymous w.r.t. `attrs` (all rows in
/// classes of size < k — this is exactly the optimal suppression set
/// for record-level suppression).
std::vector<RowIndex> SuppressForKAnonymity(const Dataset& dataset,
                                            const AttributeSet& attrs,
                                            uint64_t k);

/// One audited quasi-identifier in a risk report.
struct QuasiIdentifierRisk {
  AttributeSet attrs;
  double separation_ratio = 0.0;
  uint64_t anonymity_level = 0;
  double uniqueness = 0.0;  ///< fraction of rows unique under attrs
  double suppression_for_k2 = 0.0;  ///< rows to drop for 2-anonymity
};

struct RiskReport {
  /// Minimal ε-keys up to the audit size, most separating first.
  std::vector<QuasiIdentifierRisk> quasi_identifiers;
  /// True when the enumeration hit its candidate budget (report is then
  /// a lower bound on the QI population).
  bool truncated = false;
};

/// \brief End-to-end audit: enumerate minimal ε-separation keys up to
/// `max_qi_size` on a `m/sqrt(eps)` tuple sample (the paper's regime),
/// then score each on the full data set.
Result<RiskReport> AuditQuasiIdentifiers(const Dataset& dataset, double eps,
                                         uint32_t max_qi_size, Rng* rng);

/// Renders a risk report as an aligned text table.
std::string FormatRiskReport(const RiskReport& report, const Schema& schema);

}  // namespace qikey

#endif  // QIKEY_CORE_ANONYMITY_H_
