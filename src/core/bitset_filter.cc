#include "core/bitset_filter.h"

#include <algorithm>

#include "core/mx_pair_filter.h"
#include "core/sample_bounds.h"
#include "util/thread_pool.h"

namespace qikey {

Result<BitsetSeparationFilter> BitsetSeparationFilter::Build(
    const Dataset& dataset, const BitsetFilterOptions& options, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (dataset.num_rows() < 2) {
    return Status::InvalidArgument("need at least two rows to sample pairs");
  }
  QIKEY_RETURN_NOT_OK(ValidateEps(options.eps));
  // Identical draw to MxPairFilter::Build: same sample-size law, same
  // SamplePair loop, so a shared seed gives the same sampled pairs and
  // bit-identical verdicts across the two backends.
  uint64_t s = options.sample_size > 0
                   ? options.sample_size
                   : MxPairSampleSizePaper(
                         static_cast<uint32_t>(dataset.num_attributes()),
                         options.eps);
  std::vector<std::pair<RowIndex, RowIndex>> pairs;
  pairs.reserve(s);
  for (uint64_t i = 0; i < s; ++i) {
    auto [a, b] = rng->SamplePair(dataset.num_rows());
    pairs.emplace_back(static_cast<RowIndex>(a), static_cast<RowIndex>(b));
  }
  return FromPairs(dataset, pairs);
}

Result<BitsetSeparationFilter> BitsetSeparationFilter::FromMaterializedPairs(
    Dataset pair_table) {
  if (pair_table.num_rows() % 2 != 0) {
    return Status::InvalidArgument("pair table must have an even row count");
  }
  auto table = std::make_shared<Dataset>(std::move(pair_table));
  size_t s = table->num_rows() / 2;
  std::vector<std::pair<RowIndex, RowIndex>> pairs;
  pairs.reserve(s);
  for (size_t i = 0; i < s; ++i) {
    pairs.emplace_back(static_cast<RowIndex>(2 * i),
                       static_cast<RowIndex>(2 * i + 1));
  }
  BitsetSeparationFilter filter = FromPairs(*table, pairs);
  filter.materialized_ = std::move(table);
  return filter;
}

BitsetSeparationFilter BitsetSeparationFilter::FromPairs(
    const Dataset& table,
    std::span<const std::pair<RowIndex, RowIndex>> pairs) {
  BitsetSeparationFilter filter;
  filter.declared_pairs_ = pairs.size();
  filter.evidence_ = PackedEvidence::FromDatasetPairs(table, pairs);
  return filter;
}

Result<BitsetSeparationFilter> BitsetSeparationFilter::FromPackedEvidence(
    PackedEvidence evidence, uint64_t declared_pairs) {
  if (declared_pairs < evidence.num_pairs()) {
    return Status::InvalidArgument(
        "declared pair count below the packed evidence's pair count");
  }
  BitsetSeparationFilter filter;
  filter.declared_pairs_ = declared_pairs;
  filter.evidence_ = std::move(evidence);
  return filter;
}

Result<BitsetSeparationFilter> BitsetSeparationFilter::MergeDisjoint(
    const BitsetSeparationFilter& a, uint64_t seen_a,
    const BitsetSeparationFilter& b, uint64_t seen_b, Rng* rng) {
  if (a.materialized_ == nullptr || b.materialized_ == nullptr) {
    return Status::InvalidArgument("merge requires materialized pair filters");
  }
  // Delegate the slot algebra (exact integer category probabilities,
  // cross-pair endpoint draws, union-dictionary re-encoding) to the MX
  // merge; only the packing differs. RNG consumption matches, so
  // sharded discovery is pair-backend-independent for a fixed seed.
  Result<MxPairFilter> ma =
      MxPairFilter::FromMaterializedPairs(Dataset(*a.materialized_));
  if (!ma.ok()) return ma.status();
  Result<MxPairFilter> mb =
      MxPairFilter::FromMaterializedPairs(Dataset(*b.materialized_));
  if (!mb.ok()) return mb.status();
  Result<MxPairFilter> merged =
      MxPairFilter::MergeDisjoint(*ma, seen_a, *mb, seen_b, rng);
  if (!merged.ok()) return merged.status();
  return FromMaterializedPairs(Dataset(*merged->materialized()));
}

FilterVerdict BitsetSeparationFilter::Query(const AttributeSet& attrs) const {
  return evidence_.FindUnseparated(attrs.words()).has_value()
             ? FilterVerdict::kReject
             : FilterVerdict::kAccept;
}

std::vector<FilterVerdict> BitsetSeparationFilter::QueryBatch(
    std::span<const AttributeSet> attrs, ThreadPool* pool) const {
  const size_t count = attrs.size();
  std::vector<FilterVerdict> verdicts(count, FilterVerdict::kAccept);
  if (count == 0 || evidence_.num_pairs() == 0) return verdicts;
  // Stage the masks contiguously once; every worker then streams plain
  // words instead of re-walking AttributeSet internals per block.
  const size_t wpp = evidence_.words_per_pair();
  std::vector<uint64_t> masks(count * wpp);
  for (size_t i = 0; i < count; ++i) {
    std::span<const uint64_t> w = attrs[i].words();
    std::copy(w.begin(), w.begin() + wpp, masks.begin() + i * wpp);
  }
  std::vector<uint8_t> rejected(count, 0);
  // Each chunk owns a contiguous [begin, end) of the rejected bytes, so
  // per-worker writes never interleave on one cache line except at the
  // chunk seams; the grain keeps the block-major kernel's per-call
  // setup (mask flattening) amortized over enough candidates.
  ThreadPool::ParallelFor(
      pool, count,
      [&](size_t begin, size_t end) {
        evidence_.TestMasksBlockMajor(masks.data() + begin * wpp, wpp,
                                      end - begin, rejected.data() + begin);
      },
      /*min_grain=*/8);
  for (size_t i = 0; i < count; ++i) {
    if (rejected[i]) verdicts[i] = FilterVerdict::kReject;
  }
  return verdicts;
}

std::optional<std::pair<RowIndex, RowIndex>>
BitsetSeparationFilter::QueryWitness(const AttributeSet& attrs) const {
  std::optional<uint32_t> hit = evidence_.FindUnseparated(attrs.words());
  if (!hit.has_value()) return std::nullopt;
  auto [a, b] = evidence_.representative(*hit);
  return std::make_pair(static_cast<RowIndex>(a), static_cast<RowIndex>(b));
}

uint64_t BitsetSeparationFilter::MemoryBytes() const {
  uint64_t bytes = evidence_.MemoryBytes();
  if (materialized_ != nullptr) {
    bytes += materialized_->num_rows() * materialized_->num_attributes() *
             sizeof(ValueCode);
  }
  return bytes;
}

}  // namespace qikey
