#ifndef QIKEY_CORE_BRUTEFORCE_H_
#define QIKEY_CORE_BRUTEFORCE_H_

#include <cstdint>

#include "core/attribute_set.h"
#include "data/dataset.h"
#include "util/status.h"

namespace qikey {

/// \brief Exact minimum-key search by subset enumeration in increasing
/// size (the `2^O(m)` route that attains `γ = 1`). Feasible only for
/// small `m`; used to measure greedy's approximation quality.
///
/// Returns the lexicographically-first smallest key, or NotFound if no
/// key of size <= `max_size` exists.
Result<AttributeSet> ExactMinimumKey(const Dataset& dataset,
                                     uint32_t max_size);

/// Smallest subset whose unseparated-pair count is at most
/// `eps * C(n,2)` (exact minimum ε-separation key).
Result<AttributeSet> ExactMinimumEpsKey(const Dataset& dataset, double eps,
                                        uint32_t max_size);

}  // namespace qikey

#endif  // QIKEY_CORE_BRUTEFORCE_H_
