#ifndef QIKEY_CORE_MASKING_H_
#define QIKEY_CORE_MASKING_H_

#include <cstdint>
#include <vector>

#include "core/attribute_set.h"
#include "data/dataset.h"
#include "util/rng.h"
#include "util/status.h"

namespace qikey {

/// \brief Masking quasi-identifiers — the companion problem of
/// Motwani–Xu's "Efficient algorithms for masking and finding
/// quasi-identifiers": choose a smallest set of attributes to suppress
/// so that the remaining attributes no longer form an ε-separation key
/// (then *no* subset of the released attributes is a quasi-identifier
/// with separation ratio above 1-ε, since separation is monotone).
struct MaskingOptions {
  /// Release target: remaining attributes must separate at most
  /// `(1 - eps)` of all pairs.
  double eps = 0.01;
  /// Tuple-sample size for the sampled variant; 0 = the paper's
  /// `m/sqrt(eps)`.
  uint64_t sample_size = 0;
  /// Safety valve: stop after masking this many attributes.
  size_t max_masked = ~size_t{0};
};

struct MaskingStep {
  AttributeIndex masked = 0;
  /// Pairs separated by the remaining attributes after this step
  /// (on the evaluation data: sample or full set).
  uint64_t separated_after = 0;
};

struct MaskingResult {
  /// Attributes to suppress before release.
  AttributeSet masked;
  /// Whether the target was reached within `max_masked`.
  bool achieved = false;
  /// Separation ratio of the remaining attributes on the evaluation
  /// data when the algorithm stopped.
  double residual_separation = 1.0;
  std::vector<MaskingStep> steps;
  uint64_t sample_size = 0;
};

/// \brief Greedy masking on a tuple sample (scales to large n the same
/// way the filter does): repeatedly mask the attribute whose removal
/// destroys the most remaining separation, until the remaining set
/// separates at most `(1-eps)` of the sample pairs.
Result<MaskingResult> FindMaskingSet(const Dataset& dataset,
                                     const MaskingOptions& options, Rng* rng);

/// Exact greedy on the full data set (small inputs / verification).
MaskingResult GreedyMaskingExact(const Dataset& dataset, double eps);

}  // namespace qikey

#endif  // QIKEY_CORE_MASKING_H_
