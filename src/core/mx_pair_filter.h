#ifndef QIKEY_CORE_MX_PAIR_FILTER_H_
#define QIKEY_CORE_MX_PAIR_FILTER_H_

#include <memory>
#include <vector>

#include "core/filter.h"
#include "core/sample_bounds.h"
#include "util/rng.h"
#include "util/status.h"

namespace qikey {

/// Options for `MxPairFilter::Build`.
struct MxPairFilterOptions {
  double eps = 0.001;
  /// Override the sample size; 0 = use `MxPairSampleSizePaper(m, eps)`.
  uint64_t sample_size = 0;
  /// When true, the sampled pairs' values are copied out of the data set
  /// (a true sketch). When false, only row indices are kept and queries
  /// read through to the data set (cheaper to build; identical answers).
  bool materialize = false;
  /// When true, each pair comparison inspects every attribute of the
  /// query (no early exit on the first differing attribute). Answers
  /// are identical; the query then costs exactly the `O(s·|A|)` of the
  /// paper's analysis — the cost model behind Table 1's T(*) column.
  bool exhaustive_compare = false;
};

/// \brief The Motwani–Xu (2008) baseline filter: `Θ(m/ε)` uniform
/// *pairs* of tuples; reject `A` iff some retained pair is unseparated.
///
/// Query time `O(s · |A|)` with `s` the pair count.
class MxPairFilter : public SeparationFilter {
 public:
  /// Samples pairs from `dataset`. The data set must outlive the filter
  /// unless `options.materialize` is set.
  static Result<MxPairFilter> Build(const Dataset& dataset,
                                    const MxPairFilterOptions& options,
                                    Rng* rng);

  /// Builds from an already-materialized pair table (streaming path):
  /// rows `2i` and `2i+1` of `pair_table` form sampled pair `i`.
  static Result<MxPairFilter> FromMaterializedPairs(Dataset pair_table);

  /// \brief Merges two MATERIALIZED filters with equal slot counts,
  /// built over DISJOINT row populations of `seen_a` and `seen_b` rows,
  /// into one whose every slot holds a uniform pair of the union — the
  /// per-slot pair-reservoir union behind sharded construction.
  ///
  /// Per slot (independently, with exact integer-arithmetic category
  /// probabilities): with probability `C(seen_a,2)/C(n,2)` keep a's
  /// pair, with `C(seen_b,2)/C(n,2)` keep b's, otherwise form a cross
  /// pair from one uniform endpoint of each (a uniform element of a
  /// uniform pair is a uniform row). Values are re-encoded through a
  /// union dictionary. Requires `seen >= 2` on both sides and
  /// `seen_a + seen_b` within `RowIndex` range.
  static Result<MxPairFilter> MergeDisjoint(const MxPairFilter& a,
                                            uint64_t seen_a,
                                            const MxPairFilter& b,
                                            uint64_t seen_b, Rng* rng);

  /// The private pair table when materialized (null otherwise).
  const Dataset* materialized() const { return materialized_.get(); }

  /// \brief Copies the sampled pairs' values into a standalone pair
  /// table (rows `2i`/`2i+1` = pair `i`), regardless of whether this
  /// filter is materialized — the snapshot writer's source, since a
  /// non-materialized filter's verdicts depend on a data set that will
  /// not exist at load time. `FromMaterializedPairs` over the result
  /// answers identically.
  Dataset MaterializePairTable() const;

  FilterVerdict Query(const AttributeSet& attrs) const override;
  std::optional<std::pair<RowIndex, RowIndex>> QueryWitness(
      const AttributeSet& attrs) const override;

  /// Parallel batch query: chunks of the batch run on `pool` (queries
  /// only read the pair table, so they are safe concurrently).
  std::vector<FilterVerdict> QueryBatch(
      std::span<const AttributeSet> attrs,
      ThreadPool* pool = nullptr) const override;

  uint64_t sample_size() const override { return pairs_.size(); }
  uint64_t MemoryBytes() const override;

  const std::vector<std::pair<RowIndex, RowIndex>>& pairs() const {
    return pairs_;
  }

 private:
  MxPairFilter() = default;

  // Pair row indices; when materialized, indices address rows of
  // `materialized_` instead of the original data set.
  std::vector<std::pair<RowIndex, RowIndex>> pairs_;
  const Dataset* dataset_ = nullptr;
  std::shared_ptr<Dataset> materialized_;
  bool exhaustive_compare_ = false;
};

}  // namespace qikey

#endif  // QIKEY_CORE_MX_PAIR_FILTER_H_
