#include "core/separation.h"

#include "math/combinatorics.h"

namespace qikey {

uint64_t ExactUnseparatedPairs(const Dataset& dataset,
                               const AttributeSet& attrs) {
  return CountUnseparatedPairs(dataset, attrs.ToIndices());
}

double SeparationRatio(const Dataset& dataset, const AttributeSet& attrs) {
  uint64_t total = dataset.num_pairs();
  if (total == 0) return 1.0;
  uint64_t unseparated = ExactUnseparatedPairs(dataset, attrs);
  return 1.0 - static_cast<double>(unseparated) / static_cast<double>(total);
}

bool IsKey(const Dataset& dataset, const AttributeSet& attrs) {
  return SeparationPartition(dataset, attrs).AllSingletons();
}

bool IsEpsSeparationKey(const Dataset& dataset, const AttributeSet& attrs,
                        double eps) {
  uint64_t total = dataset.num_pairs();
  uint64_t unseparated = ExactUnseparatedPairs(dataset, attrs);
  return static_cast<double>(unseparated) <=
         eps * static_cast<double>(total);
}

SeparationClass Classify(const Dataset& dataset, const AttributeSet& attrs,
                         double eps) {
  uint64_t total = dataset.num_pairs();
  uint64_t unseparated = ExactUnseparatedPairs(dataset, attrs);
  if (unseparated == 0) return SeparationClass::kKey;
  if (static_cast<double>(unseparated) > eps * static_cast<double>(total)) {
    return SeparationClass::kBad;
  }
  return SeparationClass::kIntermediate;
}

Partition SeparationPartition(const Dataset& dataset,
                              const AttributeSet& attrs) {
  return PartitionByAttributes(dataset, attrs.ToIndices());
}

}  // namespace qikey
