#ifndef QIKEY_CORE_KEY_ENUMERATION_H_
#define QIKEY_CORE_KEY_ENUMERATION_H_

#include <cstdint>
#include <vector>

#include "core/attribute_set.h"
#include "data/dataset.h"
#include "util/status.h"

namespace qikey {

/// \brief Enumeration of ALL minimal (ε-separation) keys — unique
/// column combination (UCC) discovery in the dependency-discovery
/// literature (Metanome-style), with the paper's ε relaxation.
///
/// Since `Γ_A` is monotone non-increasing under attribute insertion,
/// "is an ε-key" is upward closed and Apriori levelwise search with
/// superset pruning enumerates exactly the minimal ε-keys.
struct KeyEnumerationOptions {
  /// ε = 0 enumerates exact minimal keys; ε > 0 minimal ε-keys.
  double eps = 0.0;
  /// Do not consider keys larger than this.
  uint32_t max_size = 8;
  /// Abort (OutOfRange) after this many candidate evaluations.
  uint64_t max_candidates = 1u << 20;
};

/// All minimal ε-separation keys of `dataset`, smallest-first (within a
/// size, lexicographic). Runs on the full data set; combine with tuple
/// sampling (`Dataset::SelectRows` of a `m/sqrt(eps)` sample) for the
/// paper's sampled regime.
Result<std::vector<AttributeSet>> EnumerateMinimalKeys(
    const Dataset& dataset, const KeyEnumerationOptions& options);

}  // namespace qikey

#endif  // QIKEY_CORE_KEY_ENUMERATION_H_
