#ifndef QIKEY_CORE_KEY_ENUMERATION_H_
#define QIKEY_CORE_KEY_ENUMERATION_H_

#include <cstdint>
#include <vector>

#include "core/attribute_set.h"
#include "core/filter.h"
#include "data/dataset.h"
#include "util/status.h"

namespace qikey {

/// \brief Enumeration of ALL minimal (ε-separation) keys — unique
/// column combination (UCC) discovery in the dependency-discovery
/// literature (Metanome-style), with the paper's ε relaxation.
///
/// Since `Γ_A` is monotone non-increasing under attribute insertion,
/// "is an ε-key" is upward closed and Apriori levelwise search with
/// superset pruning enumerates exactly the minimal ε-keys.
struct KeyEnumerationOptions {
  /// ε = 0 enumerates exact minimal keys; ε > 0 minimal ε-keys.
  double eps = 0.0;
  /// Do not consider keys larger than this.
  uint32_t max_size = 8;
  /// Abort (OutOfRange) after this many candidate evaluations.
  uint64_t max_candidates = 1u << 20;
};

/// All minimal ε-separation keys of `dataset`, smallest-first (within a
/// size, lexicographic). Runs on the full data set; combine with tuple
/// sampling (`Dataset::SelectRows` of a `m/sqrt(eps)` sample) for the
/// paper's sampled regime.
Result<std::vector<AttributeSet>> EnumerateMinimalKeys(
    const Dataset& dataset, const KeyEnumerationOptions& options);

/// \brief Levelwise enumeration of all minimal attribute sets a
/// separation filter accepts, over a universe of `num_attributes`.
///
/// Same Apriori search as `EnumerateMinimalKeys`, but each candidate is
/// decided by the filter instead of an exact `Γ_A` count (`options.eps`
/// is ignored — the filter's own ε applies), and every level is
/// evaluated as ONE `SeparationFilter::QueryBatch` call, optionally
/// fanned out over `pool`. This is the paper's sampled regime: w.h.p.
/// the output contains every minimal exact key and nothing bad.
Result<std::vector<AttributeSet>> EnumerateMinimalAcceptedSets(
    const SeparationFilter& filter, size_t num_attributes,
    const KeyEnumerationOptions& options, ThreadPool* pool = nullptr);

}  // namespace qikey

#endif  // QIKEY_CORE_KEY_ENUMERATION_H_
