#include "core/attribute_set.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "util/logging.h"

namespace qikey {

AttributeSet::AttributeSet(size_t num_attributes)
    : num_attributes_(num_attributes),
      words_((num_attributes + 63) / 64, 0) {}

AttributeSet AttributeSet::FromIndices(
    size_t num_attributes, const std::vector<AttributeIndex>& indices) {
  AttributeSet s(num_attributes);
  for (AttributeIndex i : indices) s.Add(i);
  return s;
}

AttributeSet AttributeSet::All(size_t num_attributes) {
  AttributeSet s(num_attributes);
  for (size_t i = 0; i < num_attributes; ++i) {
    s.Add(static_cast<AttributeIndex>(i));
  }
  return s;
}

AttributeSet AttributeSet::Random(size_t num_attributes, double include_prob,
                                  Rng* rng) {
  QIKEY_CHECK(rng != nullptr);
  AttributeSet s(num_attributes);
  for (size_t i = 0; i < num_attributes; ++i) {
    if (rng->Bernoulli(include_prob)) s.Add(static_cast<AttributeIndex>(i));
  }
  return s;
}

AttributeSet AttributeSet::RandomOfSize(size_t num_attributes, size_t k,
                                        Rng* rng) {
  QIKEY_CHECK(rng != nullptr);
  QIKEY_CHECK(k <= num_attributes);
  AttributeSet s(num_attributes);
  for (uint64_t i : rng->SampleWithoutReplacement(num_attributes, k)) {
    s.Add(static_cast<AttributeIndex>(i));
  }
  return s;
}

size_t AttributeSet::size() const {
  size_t count = 0;
  for (uint64_t w : words_) count += static_cast<size_t>(std::popcount(w));
  return count;
}

bool AttributeSet::Contains(AttributeIndex i) const {
  QIKEY_DCHECK(i < num_attributes_);
  return (words_[i / 64] >> (i % 64)) & 1;
}

void AttributeSet::Add(AttributeIndex i) {
  QIKEY_CHECK(i < num_attributes_)
      << "attribute " << i << " out of range [0," << num_attributes_ << ")";
  words_[i / 64] |= uint64_t{1} << (i % 64);
}

void AttributeSet::Remove(AttributeIndex i) {
  QIKEY_DCHECK(i < num_attributes_);
  words_[i / 64] &= ~(uint64_t{1} << (i % 64));
}

AttributeSet AttributeSet::Union(const AttributeSet& other) const {
  QIKEY_CHECK(num_attributes_ == other.num_attributes_);
  AttributeSet out(num_attributes_);
  for (size_t w = 0; w < words_.size(); ++w) {
    out.words_[w] = words_[w] | other.words_[w];
  }
  return out;
}

AttributeSet AttributeSet::Intersection(const AttributeSet& other) const {
  QIKEY_CHECK(num_attributes_ == other.num_attributes_);
  AttributeSet out(num_attributes_);
  for (size_t w = 0; w < words_.size(); ++w) {
    out.words_[w] = words_[w] & other.words_[w];
  }
  return out;
}

AttributeSet AttributeSet::Difference(const AttributeSet& other) const {
  QIKEY_CHECK(num_attributes_ == other.num_attributes_);
  AttributeSet out(num_attributes_);
  for (size_t w = 0; w < words_.size(); ++w) {
    out.words_[w] = words_[w] & ~other.words_[w];
  }
  return out;
}

bool AttributeSet::IsSubsetOf(const AttributeSet& other) const {
  QIKEY_CHECK(num_attributes_ == other.num_attributes_);
  for (size_t w = 0; w < words_.size(); ++w) {
    if ((words_[w] & ~other.words_[w]) != 0) return false;
  }
  return true;
}

std::vector<AttributeIndex> AttributeSet::ToIndices() const {
  std::vector<AttributeIndex> out;
  out.reserve(size());
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t bits = words_[w];
    while (bits != 0) {
      int b = std::countr_zero(bits);
      out.push_back(static_cast<AttributeIndex>(w * 64 + b));
      bits &= bits - 1;
    }
  }
  return out;
}

std::string AttributeSet::ToString(const Schema* schema) const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (AttributeIndex i : ToIndices()) {
    if (!first) out << ", ";
    first = false;
    if (schema != nullptr) {
      out << schema->name(i);
    } else {
      out << i;
    }
  }
  out << "}";
  return out.str();
}

bool AttributeSet::operator==(const AttributeSet& other) const {
  return num_attributes_ == other.num_attributes_ && words_ == other.words_;
}

uint64_t AttributeSet::Hash() const {
  uint64_t h = 0x9E3779B97F4A7C15ULL ^ num_attributes_;
  for (uint64_t w : words_) {
    h ^= w + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 29;
  }
  return h;
}

}  // namespace qikey
