#ifndef QIKEY_CORE_MINKEY_H_
#define QIKEY_CORE_MINKEY_H_

#include <cstdint>
#include <vector>

#include "core/attribute_set.h"
#include "core/refine_engine.h"
#include "data/dataset.h"
#include "util/rng.h"
#include "util/status.h"

namespace qikey {

/// Options for approximate minimum ε-separation key search.
struct MinKeyOptions {
  double eps = 0.001;
  /// Override the sample size (tuples for the tuple-sampling method,
  /// pairs for the MX method); 0 = the paper's Table-1 sizes.
  uint64_t sample_size = 0;
  /// Gain computation for the refine engine (tuple-sampling method).
  GainStrategy gain_strategy = GainStrategy::kLookupTable;
  /// Stop after this many attributes even if the sample is unseparated.
  size_t max_attributes = ~size_t{0};
};

/// Outcome of an approximate minimum ε-separation key search.
struct MinKeyResult {
  /// The returned quasi-identifier. W.h.p. it is an ε-separation key of
  /// size at most `γ|K*|` with `γ = O(ln m / ε)` (Proposition 1).
  AttributeSet key;
  /// Whether the key separates all retained sample pairs (if false, the
  /// sample contains exact duplicates or `max_attributes` was hit, and
  /// no attribute subset is a key of the sample).
  bool covered_sample = false;
  uint64_t sample_size = 0;
  /// Greedy trace (attribute picked and pairs newly covered per round).
  std::vector<RefineEngine::Step> steps;
};

/// \brief Proposition 1: sample `Θ(m/√ε)` tuples, then greedy set cover
/// on `(R choose 2)` via partition refinement. `O(m³/√ε)` time with the
/// lookup-table strategy.
Result<MinKeyResult> FindApproxMinimumEpsKey(const Dataset& dataset,
                                             const MinKeyOptions& options,
                                             Rng* rng);

/// \brief The Motwani–Xu baseline: sample `Θ(m/ε)` pairs, then greedy
/// set cover with the pairs as ground set. `O(m³/ε)` time (each of up to
/// `m` rounds scans `m` attribute sets of `Θ(m/ε)` bits).
Result<MinKeyResult> FindApproxMinimumEpsKeyMx(const Dataset& dataset,
                                               const MinKeyOptions& options,
                                               Rng* rng);

/// \brief Greedy minimum key of a complete (small) data set — no
/// sampling; the classic reduction run on `(X choose 2)`.
MinKeyResult GreedyMinimumKey(const Dataset& dataset,
                              GainStrategy strategy = GainStrategy::kLookupTable);

/// \brief The paper's γ = 1 route: sample `Θ(m/√ε)` tuples, build the
/// explicit set cover instance over the *unseparated* ground set
/// `(R choose 2)`, and solve it EXACTLY by branch and bound. Running
/// time `2^{O(m)}` but on a ground set of size `O(m²/ε)` instead of
/// `O(n²)` — feasible for small m. W.h.p. the result is an
/// ε-separation key of minimum size among all ε-keys of the sample.
Result<MinKeyResult> FindMinimumEpsKeyExact(const Dataset& dataset,
                                            const MinKeyOptions& options,
                                            Rng* rng);

}  // namespace qikey

#endif  // QIKEY_CORE_MINKEY_H_
