#ifndef QIKEY_CORE_TUPLE_SAMPLE_FILTER_H_
#define QIKEY_CORE_TUPLE_SAMPLE_FILTER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/filter.h"
#include "core/sample_bounds.h"
#include "util/rng.h"
#include "util/status.h"

namespace qikey {

/// Duplicate-detection back end for `TupleSampleFilter::Query`.
enum class DuplicateDetection {
  /// Sort the sample's projections (the paper's `O((m|A|/√ε)·log(m/ε))`
  /// query; comparison-based, no hashing assumption).
  kSort,
  /// Hash the projections; expected `O(r·|A|)` with full-equality
  /// verification on hash hits (no false rejects).
  kHash,
};

struct TupleSampleFilterOptions {
  double eps = 0.001;
  /// Override the tuple count; 0 = use `TupleSampleSizePaper(m, eps)`.
  uint64_t sample_size = 0;
  DuplicateDetection detection = DuplicateDetection::kSort;
};

/// \brief This paper's filter (Algorithm 1): `Θ(m/√ε)` tuples sampled
/// without replacement; reject `A` iff two retained tuples agree on all
/// of `A` (i.e. `A` misses a pair of `(R choose 2)`).
///
/// The retained sample is materialized into a private table, so the
/// filter is a genuine sketch: `r·m` codes ≈ `(m²/√ε)·log|U|` bits.
class TupleSampleFilter : public SeparationFilter {
 public:
  static Result<TupleSampleFilter> Build(
      const Dataset& dataset, const TupleSampleFilterOptions& options,
      Rng* rng);

  /// Builds directly from an already-drawn sample table (streaming path;
  /// `original_rows[i]` is the provenance of sample row `i`, used only
  /// for witness reporting and may be empty).
  static TupleSampleFilter FromSample(Dataset sample,
                                      std::vector<RowIndex> original_rows,
                                      DuplicateDetection detection);

  /// As above, but shares an existing sample instead of copying it
  /// (the pipeline runs greedy refinement on the same table).
  static TupleSampleFilter FromSample(std::shared_ptr<Dataset> sample,
                                      std::vector<RowIndex> original_rows,
                                      DuplicateDetection detection);

  /// \brief Merges two filters built over DISJOINT row populations into
  /// one whose retained sample is distributed exactly as a single
  /// uniform draw of `min(target_sample_size, seen_a + seen_b)` tuples
  /// from the union — the sharded-construction primitive: per-shard
  /// filters built independently (even in separate processes, with
  /// their own dictionaries) merge into the global filter without ever
  /// materializing the full relation.
  ///
  /// `seen_a`/`seen_b` are the row counts each filter's sample was
  /// drawn from. Each input must retain at least
  /// `min(target_sample_size, seen)` tuples — true whenever the shard
  /// sampled at the target rate. The split is hypergeometric (see
  /// `Rng::HypergeometricDraw`); values are re-encoded through a union
  /// dictionary, so answers are exact regardless of per-shard encoding.
  /// Provenance is preserved when both inputs carry it.
  static Result<TupleSampleFilter> MergeDisjoint(const TupleSampleFilter& a,
                                                 uint64_t seen_a,
                                                 const TupleSampleFilter& b,
                                                 uint64_t seen_b,
                                                 uint64_t target_sample_size,
                                                 Rng* rng);

  FilterVerdict Query(const AttributeSet& attrs) const override;
  std::optional<std::pair<RowIndex, RowIndex>> QueryWitness(
      const AttributeSet& attrs) const override;

  /// Parallel batch query: chunks of the batch run on `pool` (queries
  /// only read the retained sample, so they are safe concurrently).
  std::vector<FilterVerdict> QueryBatch(
      std::span<const AttributeSet> attrs,
      ThreadPool* pool = nullptr) const override;

  /// Byte serialization of the retained sample (the filter IS its
  /// sample); `Deserialize` restores a filter answering identically.
  std::string Serialize() const;
  static Result<TupleSampleFilter> Deserialize(std::string_view bytes);

  uint64_t sample_size() const override { return sample_->num_rows(); }
  uint64_t MemoryBytes() const override;

  /// The retained sample as a data set (used by the greedy min-key
  /// machinery, which runs set cover on `(R choose 2)`).
  const Dataset& sample() const { return *sample_; }

  /// Shared handle to the retained sample (the pipeline runs greedy
  /// refinement on the same table the filter answers from).
  std::shared_ptr<Dataset> shared_sample() const { return sample_; }

  /// Original-row provenance of each sample row (empty when unknown).
  const std::vector<RowIndex>& provenance() const { return original_rows_; }

  DuplicateDetection detection() const { return detection_; }

 private:
  TupleSampleFilter() = default;

  std::optional<std::pair<RowIndex, RowIndex>> FindDuplicateSorted(
      const std::vector<AttributeIndex>& idx) const;
  std::optional<std::pair<RowIndex, RowIndex>> FindDuplicateHashed(
      const std::vector<AttributeIndex>& idx) const;

  std::shared_ptr<Dataset> sample_;
  std::vector<RowIndex> original_rows_;
  DuplicateDetection detection_ = DuplicateDetection::kSort;
};

}  // namespace qikey

#endif  // QIKEY_CORE_TUPLE_SAMPLE_FILTER_H_
