#include "core/evidence_block.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "util/logging.h"

/// Vector tiers need the gcc/clang vector extensions plus per-function
/// target attributes and `__builtin_cpu_supports`; both compilers
/// provide all three on x86-64.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QIKEY_EVIDENCE_SIMD 1
#else
#define QIKEY_EVIDENCE_SIMD 0
#endif

namespace qikey {

void AlignedWordBuffer::Assign(size_t words) {
  // One extra cache line of slack: the aligned base can sit up to 7
  // words past the allocation start.
  storage_.assign(words + 8, 0);
  uintptr_t base = reinterpret_cast<uintptr_t>(storage_.data());
  uintptr_t aligned = (base + 63) & ~uintptr_t{63};
  data_ = storage_.data() + (aligned - base) / sizeof(uint64_t);
  size_ = words;
  borrowed_ = false;
}

void AlignedWordBuffer::Borrow(const uint64_t* data, size_t words) {
  QIKEY_CHECK(words == 0 ||
              (reinterpret_cast<uintptr_t>(data) & uintptr_t{63}) == 0);
  storage_.clear();
  data_ = data;
  size_ = words;
  borrowed_ = true;
}

void AlignedWordBuffer::CopyFrom(const AlignedWordBuffer& other) {
  if (other.borrowed_) {
    // A borrowed buffer is a view; its copies view the same external
    // storage (which outlives them by contract).
    storage_.clear();
    data_ = other.data_;
    size_ = other.size_;
    borrowed_ = true;
    return;
  }
  Assign(other.size_);
  std::copy(other.data_, other.data_ + other.size_, data());
}

void PackedEvidence::CopyFrom(const PackedEvidence& other) {
  num_attributes_ = other.num_attributes_;
  words_per_pair_ = other.words_per_pair_;
  source_pairs_ = other.source_pairs_;
  num_pairs_ = other.num_pairs_;
  words_ = other.words_;
  reps_storage_ = other.reps_storage_;
  // Owned reps follow the freshly copied vector; borrowed reps keep
  // viewing the external storage, mirroring `words_`.
  reps_ = other.reps_storage_.empty() ? other.reps_ : reps_storage_.data();
}

void PackedEvidence::MoveFrom(PackedEvidence&& other) noexcept {
  num_attributes_ = other.num_attributes_;
  words_per_pair_ = other.words_per_pair_;
  source_pairs_ = other.source_pairs_;
  num_pairs_ = other.num_pairs_;
  words_ = std::move(other.words_);
  reps_storage_ = std::move(other.reps_storage_);
  reps_ = reps_storage_.empty() ? other.reps_ : reps_storage_.data();
  other.num_attributes_ = 0;
  other.words_per_pair_ = 0;
  other.source_pairs_ = 0;
  other.num_pairs_ = 0;
  other.reps_ = nullptr;
}

void PackedEvidence::SetOwnedReps(std::vector<uint32_t> flat) {
  QIKEY_DCHECK(flat.size() % 2 == 0);
  reps_storage_ = std::move(flat);
  reps_ = reps_storage_.data();
  num_pairs_ = reps_storage_.size() / 2;
}

/// Shared dedup state of the two builders: pair-major masks plus a
/// hash index over them (collisions verified word-for-word, so the
/// dedup is exact and verdicts cannot drift).
struct PackedEvidence::MaskAccumulator {
  size_t wpp;
  std::vector<uint64_t> masks;  // pair-major, wpp words each
  std::vector<uint32_t> reps;   // flat endpoints, 2 per kept mask
  std::unordered_multimap<uint64_t, uint32_t> index;

  explicit MaskAccumulator(size_t words_per_pair) : wpp(words_per_pair) {}

  static uint64_t Hash(const uint64_t* mask, size_t wpp) {
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (size_t w = 0; w < wpp; ++w) {
      h ^= mask[w];
      h *= 0xBF58476D1CE4E5B9ULL;
      h ^= h >> 29;
    }
    return h;
  }

  /// Adds `mask` unless an identical mask is already present.
  void Offer(const uint64_t* mask, uint32_t rep_a, uint32_t rep_b) {
    uint64_t h = Hash(mask, wpp);
    auto range = index.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      const uint64_t* seen = masks.data() + size_t{it->second} * wpp;
      if (std::equal(seen, seen + wpp, mask)) return;
    }
    uint32_t id = static_cast<uint32_t>(reps.size() / 2);
    index.emplace(h, id);
    masks.insert(masks.end(), mask, mask + wpp);
    reps.push_back(rep_a);
    reps.push_back(rep_b);
  }
};

void PackedEvidence::Pack(const std::vector<uint64_t>& masks) {
  const size_t wpp = words_per_pair_;
  const size_t m = num_attributes_;
  const size_t pairs = num_pairs_;
  const size_t blocks = (pairs + kPairsPerBlock - 1) / kPairsPerBlock;
  // Attribute-major transpose: one word per attribute per block, bit
  // `lane` = that lane's disagree bit (zero-filled, so padding lanes of
  // the last block read as "agrees on everything" and are masked out by
  // `LiveLanes` at query time).
  words_.Assign(blocks * m);
  uint64_t* out = words_.data();
  for (size_t p = 0; p < pairs; ++p) {
    const size_t b = p / kPairsPerBlock;
    const uint64_t lane_bit = uint64_t{1} << (p % kPairsPerBlock);
    for (size_t w = 0; w < wpp; ++w) {
      uint64_t bits = masks[p * wpp + w];
      while (bits != 0) {
        const int j = std::countr_zero(bits);
        bits &= bits - 1;
        out[b * m + w * 64 + j] |= lane_bit;
      }
    }
  }
}

PackedEvidence PackedEvidence::FromDatasetPairs(
    const Dataset& table, std::span<const std::pair<RowIndex, RowIndex>> pairs) {
  PackedEvidence out;
  const size_t m = table.num_attributes();
  const size_t wpp = (m + 63) / 64;
  out.num_attributes_ = m;
  out.words_per_pair_ = wpp;
  out.source_pairs_ = pairs.size();
  if (pairs.empty() || m == 0) return out;

  // Column-major mask construction: one column's codes stay resident
  // while every pair probes it, instead of each pair striding across
  // all m columns of a large table.
  std::vector<uint64_t> masks(pairs.size() * wpp, 0);
  for (size_t j = 0; j < m; ++j) {
    const Column& col = table.column(static_cast<AttributeIndex>(j));
    const size_t word = j / 64;
    const uint64_t bit = uint64_t{1} << (j % 64);
    for (size_t p = 0; p < pairs.size(); ++p) {
      if (col.code(pairs[p].first) != col.code(pairs[p].second)) {
        masks[p * wpp + word] |= bit;
      }
    }
  }
  MaskAccumulator acc(wpp);
  for (size_t p = 0; p < pairs.size(); ++p) {
    acc.Offer(masks.data() + p * wpp, pairs[p].first, pairs[p].second);
  }
  out.SetOwnedReps(std::move(acc.reps));
  out.Pack(acc.masks);
  return out;
}

PackedEvidence PackedEvidence::FromRowMajorPairs(
    size_t num_attributes,
    std::span<const std::pair<const ValueCode*, const ValueCode*>> rows,
    std::span<const std::pair<uint32_t, uint32_t>> ids, bool dedupe) {
  QIKEY_CHECK(rows.size() == ids.size());
  PackedEvidence out;
  const size_t m = num_attributes;
  const size_t wpp = (m + 63) / 64;
  out.num_attributes_ = m;
  out.words_per_pair_ = wpp;
  out.source_pairs_ = rows.size();
  if (rows.empty() || m == 0) return out;

  std::vector<uint64_t> mask(wpp);
  if (dedupe) {
    MaskAccumulator acc(wpp);
    for (size_t i = 0; i < rows.size(); ++i) {
      const auto [ra, rb] = rows[i];
      std::fill(mask.begin(), mask.end(), 0);
      for (size_t j = 0; j < m; ++j) {
        mask[j / 64] |= uint64_t{ra[j] != rb[j]} << (j % 64);
      }
      acc.Offer(mask.data(), ids[i].first, ids[i].second);
    }
    out.SetOwnedReps(std::move(acc.reps));
    out.Pack(acc.masks);
    return out;
  }
  std::vector<uint64_t> masks(rows.size() * wpp, 0);
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto [ra, rb] = rows[i];
    for (size_t j = 0; j < m; ++j) {
      masks[i * wpp + j / 64] |= uint64_t{ra[j] != rb[j]} << (j % 64);
    }
  }
  std::vector<uint32_t> flat;
  flat.reserve(ids.size() * 2);
  for (const auto& [a, b] : ids) {
    flat.push_back(a);
    flat.push_back(b);
  }
  out.SetOwnedReps(std::move(flat));
  out.Pack(masks);
  return out;
}

Result<PackedEvidence> PackedEvidence::FromBorrowed(
    size_t num_attributes, uint64_t source_pairs, size_t num_pairs,
    const uint64_t* words, size_t num_words, const uint32_t* reps) {
  const size_t m = num_attributes;
  const size_t blocks = (num_pairs + kPairsPerBlock - 1) / kPairsPerBlock;
  if (num_pairs > 0 && m == 0) {
    return Status::InvalidArgument(
        "packed evidence with pairs but no attributes");
  }
  if (num_words != blocks * m) {
    return Status::InvalidArgument(
        "packed evidence word count does not match its pair count");
  }
  if (num_pairs > source_pairs) {
    return Status::InvalidArgument(
        "packed evidence holds more pairs than its sample drew");
  }
  if (num_words > 0 &&
      (reinterpret_cast<uintptr_t>(words) & uintptr_t{63}) != 0) {
    return Status::InvalidArgument("packed evidence words are misaligned");
  }
  if (num_pairs > 0 && reps == nullptr) {
    return Status::InvalidArgument("packed evidence is missing its reps");
  }
  PackedEvidence out;
  out.num_attributes_ = m;
  out.words_per_pair_ = (m + 63) / 64;
  out.source_pairs_ = source_pairs;
  out.num_pairs_ = num_pairs;
  out.words_.Borrow(words, num_words);
  out.reps_ = reps;
  return out;
}

void PackedEvidence::PatchPair(uint32_t index, const ValueCode* row_a,
                               const ValueCode* row_b,
                               std::pair<uint32_t, uint32_t> ids) {
  QIKEY_CHECK(!borrowed());
  QIKEY_DCHECK(index < num_pairs_);
  const size_t m = num_attributes_;
  uint64_t* block = words_.data() + (index / kPairsPerBlock) * m;
  const uint64_t lane_bit = uint64_t{1} << (index % kPairsPerBlock);
  for (size_t j = 0; j < m; ++j) {
    if (row_a[j] != row_b[j]) {
      block[j] |= lane_bit;
    } else {
      block[j] &= ~lane_bit;
    }
  }
  reps_storage_[2 * size_t{index}] = ids.first;
  reps_storage_[2 * size_t{index} + 1] = ids.second;
}

namespace {

/// Lanes of block `b` holding real pairs (the last block may be
/// partial; its padding lanes read as all-agree and must be ignored).
inline uint64_t LiveLanes(size_t block, size_t pairs) {
  const size_t base = block * PackedEvidence::kPairsPerBlock;
  const size_t active = pairs - base;
  return active >= 64 ? ~uint64_t{0} : (uint64_t{1} << active) - 1;
}

/// Flattens a pair-major query mask into its attribute indices (the
/// per-block loop then costs exactly |A| ORs).
inline void MaskToIndices(const uint64_t* mask, size_t wpp,
                          std::vector<uint32_t>* idx) {
  idx->clear();
  for (size_t w = 0; w < wpp; ++w) {
    uint64_t bits = mask[w];
    while (bits != 0) {
      idx->push_back(static_cast<uint32_t>(w * 64 + std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }
}

/// One block, one candidate: bitmap of lanes separated by no attribute
/// of the candidate.
inline uint64_t BlockHits(const uint64_t* block, const uint32_t* idx,
                          size_t count, uint64_t live) {
  uint64_t acc = 0;
  for (size_t a = 0; a < count; ++a) acc |= block[idx[a]];
  return ~acc & live;
}

// ---------------------------------------------------------------------------
// Kernel dispatch
// ---------------------------------------------------------------------------

bool ForceScalarFromEnv() {
  const char* e = std::getenv("QIKEY_FORCE_SCALAR");
  return e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0');
}

EvidenceKernel DetectEvidenceKernel() {
  if (ForceScalarFromEnv()) return EvidenceKernel::kScalar;
#if QIKEY_EVIDENCE_SIMD
  if (__builtin_cpu_supports("avx512f")) return EvidenceKernel::kAvx512;
  if (__builtin_cpu_supports("avx2")) return EvidenceKernel::kAvx2;
#endif
  return EvidenceKernel::kScalar;
}

/// Resolved tier; -1 until first use.
std::atomic<int> g_evidence_kernel{-1};

// ---------------------------------------------------------------------------
// Scalar kernels (the oracle) — block ranges so vector tiers can reuse
// them for the remainder after their full-block groups.
// ---------------------------------------------------------------------------

std::optional<uint32_t> FindUnseparatedScalarBlocks(
    const uint64_t* words, size_t m, size_t pairs, const uint32_t* idx,
    size_t count, size_t b_begin, size_t b_end) {
  for (size_t b = b_begin; b < b_end; ++b) {
    uint64_t hits = BlockHits(words + b * m, idx, count, LiveLanes(b, pairs));
    if (hits != 0) {
      return static_cast<uint32_t>(b * PackedEvidence::kPairsPerBlock +
                                   std::countr_zero(hits));
    }
  }
  return std::nullopt;
}

void TestMasksScalarBlocks(const uint64_t* words, size_t m, size_t pairs,
                           const uint32_t* flat,
                           const std::pair<uint32_t, uint32_t>* ranges,
                           std::vector<uint32_t>& active, uint8_t* rejected,
                           size_t b_begin, size_t b_end) {
  for (size_t b = b_begin; b < b_end && !active.empty(); ++b) {
    const uint64_t* block = words + b * m;
    const uint64_t live = LiveLanes(b, pairs);
    for (size_t a = 0; a < active.size();) {
      const auto [offset, len] = ranges[active[a]];
      if (BlockHits(block, flat + offset, len, live) != 0) {
        rejected[active[a]] = 1;
        active[a] = active.back();
        active.pop_back();
      } else {
        ++a;
      }
    }
  }
}

#if QIKEY_EVIDENCE_SIMD

// ---------------------------------------------------------------------------
// Vector kernels. The storage stays attribute-major (one word per
// attribute per block — the mmap contract), so a lane-OR gathers the
// same attribute's word from 4 (AVX2) or 8 (AVX-512F) CONSECUTIVE
// fully-live blocks: strided loads m words apart, then one vector OR.
// Only full blocks enter a group — the partial last block (LiveLanes
// masking) and the sub-group remainder run through the scalar oracle,
// so verdicts and first-witness indices are bit-identical by
// construction: groups scan blocks in ascending order and lanes low-
// to-high, exactly like the scalar loop.
// ---------------------------------------------------------------------------

typedef uint64_t V4 __attribute__((vector_size(32)));
typedef uint64_t V8 __attribute__((vector_size(64)));

__attribute__((target("avx2"))) std::optional<uint32_t> FindUnseparatedAvx2(
    const uint64_t* words, size_t m, size_t full_blocks, const uint32_t* idx,
    size_t count, size_t* resume_block) {
  size_t b = 0;
  for (; b + 4 <= full_blocks; b += 4) {
    const uint64_t* base = words + b * m;
    V4 acc = {0, 0, 0, 0};
    for (size_t a = 0; a < count; ++a) {
      const uint64_t* w = base + idx[a];
      acc |= V4{w[0], w[m], w[2 * m], w[3 * m]};
    }
    const V4 hits = ~acc;
    if ((hits[0] | hits[1] | hits[2] | hits[3]) != 0) {
      for (size_t lane = 0; lane < 4; ++lane) {
        if (hits[lane] != 0) {
          return static_cast<uint32_t>((b + lane) *
                                           PackedEvidence::kPairsPerBlock +
                                       std::countr_zero(hits[lane]));
        }
      }
    }
  }
  *resume_block = b;
  return std::nullopt;
}

__attribute__((target("avx512f"))) std::optional<uint32_t>
FindUnseparatedAvx512(const uint64_t* words, size_t m, size_t full_blocks,
                      const uint32_t* idx, size_t count,
                      size_t* resume_block) {
  size_t b = 0;
  for (; b + 8 <= full_blocks; b += 8) {
    const uint64_t* base = words + b * m;
    V8 acc = {0, 0, 0, 0, 0, 0, 0, 0};
    for (size_t a = 0; a < count; ++a) {
      const uint64_t* w = base + idx[a];
      acc |= V8{w[0],     w[m],     w[2 * m], w[3 * m],
                w[4 * m], w[5 * m], w[6 * m], w[7 * m]};
    }
    const V8 hits = ~acc;
    const uint64_t any = (hits[0] | hits[1] | hits[2] | hits[3]) |
                         (hits[4] | hits[5] | hits[6] | hits[7]);
    if (any != 0) {
      for (size_t lane = 0; lane < 8; ++lane) {
        if (hits[lane] != 0) {
          return static_cast<uint32_t>((b + lane) *
                                           PackedEvidence::kPairsPerBlock +
                                       std::countr_zero(hits[lane]));
        }
      }
    }
  }
  *resume_block = b;
  return std::nullopt;
}

__attribute__((target("avx2"))) size_t TestMasksAvx2Groups(
    const uint64_t* words, size_t m, size_t full_blocks, const uint32_t* flat,
    const std::pair<uint32_t, uint32_t>* ranges, std::vector<uint32_t>& active,
    uint8_t* rejected) {
  size_t b = 0;
  for (; b + 4 <= full_blocks && !active.empty(); b += 4) {
    const uint64_t* base = words + b * m;
    for (size_t a = 0; a < active.size();) {
      const auto [offset, len] = ranges[active[a]];
      const uint32_t* idx = flat + offset;
      V4 acc = {0, 0, 0, 0};
      for (size_t i = 0; i < len; ++i) {
        const uint64_t* w = base + idx[i];
        acc |= V4{w[0], w[m], w[2 * m], w[3 * m]};
      }
      const V4 hits = ~acc;
      if ((hits[0] | hits[1] | hits[2] | hits[3]) != 0) {
        rejected[active[a]] = 1;
        active[a] = active.back();
        active.pop_back();
      } else {
        ++a;
      }
    }
  }
  return b;
}

__attribute__((target("avx512f"))) size_t TestMasksAvx512Groups(
    const uint64_t* words, size_t m, size_t full_blocks, const uint32_t* flat,
    const std::pair<uint32_t, uint32_t>* ranges, std::vector<uint32_t>& active,
    uint8_t* rejected) {
  size_t b = 0;
  for (; b + 8 <= full_blocks && !active.empty(); b += 8) {
    const uint64_t* base = words + b * m;
    for (size_t a = 0; a < active.size();) {
      const auto [offset, len] = ranges[active[a]];
      const uint32_t* idx = flat + offset;
      V8 acc = {0, 0, 0, 0, 0, 0, 0, 0};
      for (size_t i = 0; i < len; ++i) {
        const uint64_t* w = base + idx[i];
        acc |= V8{w[0],     w[m],     w[2 * m], w[3 * m],
                  w[4 * m], w[5 * m], w[6 * m], w[7 * m]};
      }
      const V8 hits = ~acc;
      const uint64_t any = (hits[0] | hits[1] | hits[2] | hits[3]) |
                           (hits[4] | hits[5] | hits[6] | hits[7]);
      if (any != 0) {
        rejected[active[a]] = 1;
        active[a] = active.back();
        active.pop_back();
      } else {
        ++a;
      }
    }
  }
  return b;
}

#endif  // QIKEY_EVIDENCE_SIMD

}  // namespace

const char* EvidenceKernelName(EvidenceKernel kernel) {
  switch (kernel) {
    case EvidenceKernel::kScalar:
      return "scalar";
    case EvidenceKernel::kAvx2:
      return "avx2";
    case EvidenceKernel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

EvidenceKernel ActiveEvidenceKernel() {
  int k = g_evidence_kernel.load(std::memory_order_acquire);
  if (k < 0) {
    // A racing first use detects twice and stores the same answer.
    k = static_cast<int>(DetectEvidenceKernel());
    g_evidence_kernel.store(k, std::memory_order_release);
  }
  return static_cast<EvidenceKernel>(k);
}

Status SetEvidenceKernel(std::string_view name) {
  EvidenceKernel kernel;
  if (name == "auto") {
    kernel = DetectEvidenceKernel();
  } else if (name == "scalar") {
    kernel = EvidenceKernel::kScalar;
  } else if (name == "avx2") {
    kernel = EvidenceKernel::kAvx2;
  } else if (name == "avx512") {
    kernel = EvidenceKernel::kAvx512;
  } else {
    return Status::InvalidArgument("unknown evidence kernel \"" +
                                   std::string(name) +
                                   "\" (want scalar|avx2|avx512|auto)");
  }
#if QIKEY_EVIDENCE_SIMD
  if (kernel == EvidenceKernel::kAvx2 && !__builtin_cpu_supports("avx2")) {
    return Status::InvalidArgument("this CPU does not support avx2");
  }
  if (kernel == EvidenceKernel::kAvx512 &&
      !__builtin_cpu_supports("avx512f")) {
    return Status::InvalidArgument("this CPU does not support avx512f");
  }
#else
  if (kernel != EvidenceKernel::kScalar) {
    return Status::InvalidArgument(
        "vector kernels are not compiled into this build");
  }
#endif
  g_evidence_kernel.store(static_cast<int>(kernel), std::memory_order_release);
  return Status::OK();
}

std::optional<uint32_t> PackedEvidence::FindUnseparated(
    std::span<const uint64_t> mask) const {
  QIKEY_DCHECK(mask.size() >= words_per_pair_);
  const size_t pairs = num_pairs_;
  const size_t m = num_attributes_;
  const uint64_t* words = words_.data();
  const size_t blocks = num_blocks();
  std::vector<uint32_t> idx;
  idx.reserve(m);
  MaskToIndices(mask.data(), words_per_pair_, &idx);
  size_t b = 0;
#if QIKEY_EVIDENCE_SIMD
  // Vector tiers cover groups of fully-live blocks; everything after
  // `b` (group remainder + partial last block) falls through to the
  // scalar oracle below.
  const size_t full_blocks = pairs / kPairsPerBlock;
  switch (ActiveEvidenceKernel()) {
    case EvidenceKernel::kAvx512: {
      auto hit = FindUnseparatedAvx512(words, m, full_blocks, idx.data(),
                                       idx.size(), &b);
      if (hit.has_value()) return hit;
      break;
    }
    case EvidenceKernel::kAvx2: {
      auto hit = FindUnseparatedAvx2(words, m, full_blocks, idx.data(),
                                     idx.size(), &b);
      if (hit.has_value()) return hit;
      break;
    }
    case EvidenceKernel::kScalar:
      break;
  }
#endif
  return FindUnseparatedScalarBlocks(words, m, pairs, idx.data(), idx.size(),
                                     b, blocks);
}

void PackedEvidence::TestMasksBlockMajor(const uint64_t* masks, size_t stride,
                                         size_t count,
                                         uint8_t* rejected) const {
  QIKEY_DCHECK(stride >= words_per_pair_);
  const size_t pairs = num_pairs_;
  const size_t m = num_attributes_;
  const uint64_t* words = words_.data();
  const size_t blocks = num_blocks();
  // Flatten every candidate's attribute list once up front.
  std::vector<uint32_t> flat;
  std::vector<std::pair<uint32_t, uint32_t>> ranges(count);  // offset, len
  std::vector<uint32_t> idx;
  for (size_t i = 0; i < count; ++i) {
    MaskToIndices(masks + i * stride, words_per_pair_, &idx);
    ranges[i] = {static_cast<uint32_t>(flat.size()),
                 static_cast<uint32_t>(idx.size())};
    flat.insert(flat.end(), idx.begin(), idx.end());
  }
  // Dense list of still-undecided candidates; each reject shrinks it,
  // so later blocks only pay for the survivors.
  std::vector<uint32_t> active;
  active.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (!rejected[i]) active.push_back(static_cast<uint32_t>(i));
  }
  size_t b = 0;
#if QIKEY_EVIDENCE_SIMD
  const size_t full_blocks = pairs / kPairsPerBlock;
  switch (ActiveEvidenceKernel()) {
    case EvidenceKernel::kAvx512:
      b = TestMasksAvx512Groups(words, m, full_blocks, flat.data(),
                                ranges.data(), active, rejected);
      break;
    case EvidenceKernel::kAvx2:
      b = TestMasksAvx2Groups(words, m, full_blocks, flat.data(),
                              ranges.data(), active, rejected);
      break;
    case EvidenceKernel::kScalar:
      break;
  }
#endif
  TestMasksScalarBlocks(words, m, pairs, flat.data(), ranges.data(), active,
                        rejected, b, blocks);
}

uint64_t PackedEvidence::MemoryBytes() const {
  uint64_t bytes = reps_storage_.size() * sizeof(uint32_t);
  if (!words_.borrowed()) bytes += words_.size() * sizeof(uint64_t);
  return bytes;
}

uint64_t PackedEvidence::BorrowedBytes() const {
  if (!words_.borrowed()) return 0;
  return words_.size() * sizeof(uint64_t) +
         uint64_t{num_pairs_} * 2 * sizeof(uint32_t);
}

}  // namespace qikey
