#include "core/evidence_block.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "util/logging.h"

namespace qikey {

void AlignedWordBuffer::Assign(size_t words) {
  // One extra cache line of slack: the aligned base can sit up to 7
  // words past the allocation start.
  storage_.assign(words + 8, 0);
  uintptr_t base = reinterpret_cast<uintptr_t>(storage_.data());
  uintptr_t aligned = (base + 63) & ~uintptr_t{63};
  data_ = storage_.data() + (aligned - base) / sizeof(uint64_t);
  size_ = words;
  borrowed_ = false;
}

void AlignedWordBuffer::Borrow(const uint64_t* data, size_t words) {
  QIKEY_CHECK(words == 0 ||
              (reinterpret_cast<uintptr_t>(data) & uintptr_t{63}) == 0);
  storage_.clear();
  data_ = data;
  size_ = words;
  borrowed_ = true;
}

void AlignedWordBuffer::CopyFrom(const AlignedWordBuffer& other) {
  if (other.borrowed_) {
    // A borrowed buffer is a view; its copies view the same external
    // storage (which outlives them by contract).
    storage_.clear();
    data_ = other.data_;
    size_ = other.size_;
    borrowed_ = true;
    return;
  }
  Assign(other.size_);
  std::copy(other.data_, other.data_ + other.size_, data());
}

void PackedEvidence::CopyFrom(const PackedEvidence& other) {
  num_attributes_ = other.num_attributes_;
  words_per_pair_ = other.words_per_pair_;
  source_pairs_ = other.source_pairs_;
  num_pairs_ = other.num_pairs_;
  words_ = other.words_;
  reps_storage_ = other.reps_storage_;
  // Owned reps follow the freshly copied vector; borrowed reps keep
  // viewing the external storage, mirroring `words_`.
  reps_ = other.reps_storage_.empty() ? other.reps_ : reps_storage_.data();
}

void PackedEvidence::MoveFrom(PackedEvidence&& other) noexcept {
  num_attributes_ = other.num_attributes_;
  words_per_pair_ = other.words_per_pair_;
  source_pairs_ = other.source_pairs_;
  num_pairs_ = other.num_pairs_;
  words_ = std::move(other.words_);
  reps_storage_ = std::move(other.reps_storage_);
  reps_ = reps_storage_.empty() ? other.reps_ : reps_storage_.data();
  other.num_attributes_ = 0;
  other.words_per_pair_ = 0;
  other.source_pairs_ = 0;
  other.num_pairs_ = 0;
  other.reps_ = nullptr;
}

void PackedEvidence::SetOwnedReps(std::vector<uint32_t> flat) {
  QIKEY_DCHECK(flat.size() % 2 == 0);
  reps_storage_ = std::move(flat);
  reps_ = reps_storage_.data();
  num_pairs_ = reps_storage_.size() / 2;
}

/// Shared dedup state of the two builders: pair-major masks plus a
/// hash index over them (collisions verified word-for-word, so the
/// dedup is exact and verdicts cannot drift).
struct PackedEvidence::MaskAccumulator {
  size_t wpp;
  std::vector<uint64_t> masks;  // pair-major, wpp words each
  std::vector<uint32_t> reps;   // flat endpoints, 2 per kept mask
  std::unordered_multimap<uint64_t, uint32_t> index;

  explicit MaskAccumulator(size_t words_per_pair) : wpp(words_per_pair) {}

  static uint64_t Hash(const uint64_t* mask, size_t wpp) {
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (size_t w = 0; w < wpp; ++w) {
      h ^= mask[w];
      h *= 0xBF58476D1CE4E5B9ULL;
      h ^= h >> 29;
    }
    return h;
  }

  /// Adds `mask` unless an identical mask is already present.
  void Offer(const uint64_t* mask, uint32_t rep_a, uint32_t rep_b) {
    uint64_t h = Hash(mask, wpp);
    auto range = index.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      const uint64_t* seen = masks.data() + size_t{it->second} * wpp;
      if (std::equal(seen, seen + wpp, mask)) return;
    }
    uint32_t id = static_cast<uint32_t>(reps.size() / 2);
    index.emplace(h, id);
    masks.insert(masks.end(), mask, mask + wpp);
    reps.push_back(rep_a);
    reps.push_back(rep_b);
  }
};

void PackedEvidence::Pack(const std::vector<uint64_t>& masks) {
  const size_t wpp = words_per_pair_;
  const size_t m = num_attributes_;
  const size_t pairs = num_pairs_;
  const size_t blocks = (pairs + kPairsPerBlock - 1) / kPairsPerBlock;
  // Attribute-major transpose: one word per attribute per block, bit
  // `lane` = that lane's disagree bit (zero-filled, so padding lanes of
  // the last block read as "agrees on everything" and are masked out by
  // `LiveLanes` at query time).
  words_.Assign(blocks * m);
  uint64_t* out = words_.data();
  for (size_t p = 0; p < pairs; ++p) {
    const size_t b = p / kPairsPerBlock;
    const uint64_t lane_bit = uint64_t{1} << (p % kPairsPerBlock);
    for (size_t w = 0; w < wpp; ++w) {
      uint64_t bits = masks[p * wpp + w];
      while (bits != 0) {
        const int j = std::countr_zero(bits);
        bits &= bits - 1;
        out[b * m + w * 64 + j] |= lane_bit;
      }
    }
  }
}

PackedEvidence PackedEvidence::FromDatasetPairs(
    const Dataset& table, std::span<const std::pair<RowIndex, RowIndex>> pairs) {
  PackedEvidence out;
  const size_t m = table.num_attributes();
  const size_t wpp = (m + 63) / 64;
  out.num_attributes_ = m;
  out.words_per_pair_ = wpp;
  out.source_pairs_ = pairs.size();
  if (pairs.empty() || m == 0) return out;

  // Column-major mask construction: one column's codes stay resident
  // while every pair probes it, instead of each pair striding across
  // all m columns of a large table.
  std::vector<uint64_t> masks(pairs.size() * wpp, 0);
  for (size_t j = 0; j < m; ++j) {
    const Column& col = table.column(static_cast<AttributeIndex>(j));
    const size_t word = j / 64;
    const uint64_t bit = uint64_t{1} << (j % 64);
    for (size_t p = 0; p < pairs.size(); ++p) {
      if (col.code(pairs[p].first) != col.code(pairs[p].second)) {
        masks[p * wpp + word] |= bit;
      }
    }
  }
  MaskAccumulator acc(wpp);
  for (size_t p = 0; p < pairs.size(); ++p) {
    acc.Offer(masks.data() + p * wpp, pairs[p].first, pairs[p].second);
  }
  out.SetOwnedReps(std::move(acc.reps));
  out.Pack(acc.masks);
  return out;
}

PackedEvidence PackedEvidence::FromRowMajorPairs(
    size_t num_attributes,
    std::span<const std::pair<const ValueCode*, const ValueCode*>> rows,
    std::span<const std::pair<uint32_t, uint32_t>> ids, bool dedupe) {
  QIKEY_CHECK(rows.size() == ids.size());
  PackedEvidence out;
  const size_t m = num_attributes;
  const size_t wpp = (m + 63) / 64;
  out.num_attributes_ = m;
  out.words_per_pair_ = wpp;
  out.source_pairs_ = rows.size();
  if (rows.empty() || m == 0) return out;

  std::vector<uint64_t> mask(wpp);
  if (dedupe) {
    MaskAccumulator acc(wpp);
    for (size_t i = 0; i < rows.size(); ++i) {
      const auto [ra, rb] = rows[i];
      std::fill(mask.begin(), mask.end(), 0);
      for (size_t j = 0; j < m; ++j) {
        mask[j / 64] |= uint64_t{ra[j] != rb[j]} << (j % 64);
      }
      acc.Offer(mask.data(), ids[i].first, ids[i].second);
    }
    out.SetOwnedReps(std::move(acc.reps));
    out.Pack(acc.masks);
    return out;
  }
  std::vector<uint64_t> masks(rows.size() * wpp, 0);
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto [ra, rb] = rows[i];
    for (size_t j = 0; j < m; ++j) {
      masks[i * wpp + j / 64] |= uint64_t{ra[j] != rb[j]} << (j % 64);
    }
  }
  std::vector<uint32_t> flat;
  flat.reserve(ids.size() * 2);
  for (const auto& [a, b] : ids) {
    flat.push_back(a);
    flat.push_back(b);
  }
  out.SetOwnedReps(std::move(flat));
  out.Pack(masks);
  return out;
}

Result<PackedEvidence> PackedEvidence::FromBorrowed(
    size_t num_attributes, uint64_t source_pairs, size_t num_pairs,
    const uint64_t* words, size_t num_words, const uint32_t* reps) {
  const size_t m = num_attributes;
  const size_t blocks = (num_pairs + kPairsPerBlock - 1) / kPairsPerBlock;
  if (num_pairs > 0 && m == 0) {
    return Status::InvalidArgument(
        "packed evidence with pairs but no attributes");
  }
  if (num_words != blocks * m) {
    return Status::InvalidArgument(
        "packed evidence word count does not match its pair count");
  }
  if (num_pairs > source_pairs) {
    return Status::InvalidArgument(
        "packed evidence holds more pairs than its sample drew");
  }
  if (num_words > 0 &&
      (reinterpret_cast<uintptr_t>(words) & uintptr_t{63}) != 0) {
    return Status::InvalidArgument("packed evidence words are misaligned");
  }
  if (num_pairs > 0 && reps == nullptr) {
    return Status::InvalidArgument("packed evidence is missing its reps");
  }
  PackedEvidence out;
  out.num_attributes_ = m;
  out.words_per_pair_ = (m + 63) / 64;
  out.source_pairs_ = source_pairs;
  out.num_pairs_ = num_pairs;
  out.words_.Borrow(words, num_words);
  out.reps_ = reps;
  return out;
}

void PackedEvidence::PatchPair(uint32_t index, const ValueCode* row_a,
                               const ValueCode* row_b,
                               std::pair<uint32_t, uint32_t> ids) {
  QIKEY_CHECK(!borrowed());
  QIKEY_DCHECK(index < num_pairs_);
  const size_t m = num_attributes_;
  uint64_t* block = words_.data() + (index / kPairsPerBlock) * m;
  const uint64_t lane_bit = uint64_t{1} << (index % kPairsPerBlock);
  for (size_t j = 0; j < m; ++j) {
    if (row_a[j] != row_b[j]) {
      block[j] |= lane_bit;
    } else {
      block[j] &= ~lane_bit;
    }
  }
  reps_storage_[2 * size_t{index}] = ids.first;
  reps_storage_[2 * size_t{index} + 1] = ids.second;
}

namespace {

/// Lanes of block `b` holding real pairs (the last block may be
/// partial; its padding lanes read as all-agree and must be ignored).
inline uint64_t LiveLanes(size_t block, size_t pairs) {
  const size_t base = block * PackedEvidence::kPairsPerBlock;
  const size_t active = pairs - base;
  return active >= 64 ? ~uint64_t{0} : (uint64_t{1} << active) - 1;
}

/// Flattens a pair-major query mask into its attribute indices (the
/// per-block loop then costs exactly |A| ORs).
inline void MaskToIndices(const uint64_t* mask, size_t wpp,
                          std::vector<uint32_t>* idx) {
  idx->clear();
  for (size_t w = 0; w < wpp; ++w) {
    uint64_t bits = mask[w];
    while (bits != 0) {
      idx->push_back(static_cast<uint32_t>(w * 64 + std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }
}

/// One block, one candidate: bitmap of lanes separated by no attribute
/// of the candidate.
inline uint64_t BlockHits(const uint64_t* block, const uint32_t* idx,
                          size_t count, uint64_t live) {
  uint64_t acc = 0;
  for (size_t a = 0; a < count; ++a) acc |= block[idx[a]];
  return ~acc & live;
}

}  // namespace

std::optional<uint32_t> PackedEvidence::FindUnseparated(
    std::span<const uint64_t> mask) const {
  QIKEY_DCHECK(mask.size() >= words_per_pair_);
  const size_t pairs = num_pairs_;
  const size_t m = num_attributes_;
  const uint64_t* words = words_.data();
  const size_t blocks = num_blocks();
  std::vector<uint32_t> idx;
  idx.reserve(m);
  MaskToIndices(mask.data(), words_per_pair_, &idx);
  for (size_t b = 0; b < blocks; ++b) {
    uint64_t hits =
        BlockHits(words + b * m, idx.data(), idx.size(), LiveLanes(b, pairs));
    if (hits != 0) {
      return static_cast<uint32_t>(b * kPairsPerBlock +
                                   std::countr_zero(hits));
    }
  }
  return std::nullopt;
}

void PackedEvidence::TestMasksBlockMajor(const uint64_t* masks, size_t stride,
                                         size_t count,
                                         uint8_t* rejected) const {
  QIKEY_DCHECK(stride >= words_per_pair_);
  const size_t pairs = num_pairs_;
  const size_t m = num_attributes_;
  const uint64_t* words = words_.data();
  const size_t blocks = num_blocks();
  // Flatten every candidate's attribute list once up front.
  std::vector<uint32_t> flat;
  std::vector<std::pair<uint32_t, uint32_t>> ranges(count);  // offset, len
  std::vector<uint32_t> idx;
  for (size_t i = 0; i < count; ++i) {
    MaskToIndices(masks + i * stride, words_per_pair_, &idx);
    ranges[i] = {static_cast<uint32_t>(flat.size()),
                 static_cast<uint32_t>(idx.size())};
    flat.insert(flat.end(), idx.begin(), idx.end());
  }
  // Dense list of still-undecided candidates; each reject shrinks it,
  // so later blocks only pay for the survivors.
  std::vector<uint32_t> active;
  active.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (!rejected[i]) active.push_back(static_cast<uint32_t>(i));
  }
  for (size_t b = 0; b < blocks && !active.empty(); ++b) {
    const uint64_t* block = words + b * m;
    const uint64_t live = LiveLanes(b, pairs);
    for (size_t a = 0; a < active.size();) {
      const auto [offset, len] = ranges[active[a]];
      if (BlockHits(block, flat.data() + offset, len, live) != 0) {
        rejected[active[a]] = 1;
        active[a] = active.back();
        active.pop_back();
      } else {
        ++a;
      }
    }
  }
}

uint64_t PackedEvidence::MemoryBytes() const {
  return words_.size() * sizeof(uint64_t) +
         num_pairs_ * 2 * sizeof(uint32_t);
}

}  // namespace qikey
