#ifndef QIKEY_CORE_EVIDENCE_BLOCK_H_
#define QIKEY_CORE_EVIDENCE_BLOCK_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace qikey {

/// \brief SIMD tier of the block kernels (`FindUnseparated`,
/// `TestMasksBlockMajor`).
///
/// The scalar tier is always compiled in and serves as the differential
/// oracle for the vector tiers; every tier produces bit-identical
/// verdicts and witness indices. Vector tiers widen the per-attribute
/// OR to 4 (AVX2) or 8 (AVX-512F) consecutive 64-pair blocks per lane
/// without changing the storage layout, so mmap-borrowed snapshot words
/// are served unmodified.
enum class EvidenceKernel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Tier name: "scalar", "avx2", or "avx512".
const char* EvidenceKernelName(EvidenceKernel kernel);

/// \brief The tier block queries dispatch to right now.
///
/// The first call resolves it from the CPU (`__builtin_cpu_supports`,
/// preferring AVX-512F over AVX2 over scalar) — unless the
/// `QIKEY_FORCE_SCALAR` environment variable is set to anything other
/// than empty or "0", which pins the scalar oracle for differential
/// runs. The resolved tier is cached process-wide.
EvidenceKernel ActiveEvidenceKernel();

/// \brief Overrides kernel dispatch: "scalar", "avx2", "avx512", or
/// "auto" (re-run CPU detection, still honoring QIKEY_FORCE_SCALAR).
/// Fails without changing dispatch when this build or CPU lacks the
/// requested tier. Thread-compatible with concurrent queries (the tier
/// is an atomic), but meant for test/bench setup, not steady state.
Status SetEvidenceKernel(std::string_view name);

/// \brief Cache-line-aligned backing store for packed evidence words.
///
/// `std::vector<uint64_t>` only guarantees 8/16-byte alignment; the
/// block kernels want each 64-pair block to start on a cache line so
/// one block never straddles three lines. The buffer over-allocates by
/// one line and hands out an aligned view. Copies re-align into the new
/// allocation; moves keep the heap block, so the view stays valid.
///
/// `Borrow` turns the buffer into a read-only view over words owned
/// elsewhere (an mmap-ed snapshot section): no allocation, and copies
/// keep pointing at the external words. The external storage must stay
/// 64-byte aligned and alive for the lifetime of the buffer and all its
/// copies, and must never be written through this view.
class AlignedWordBuffer {
 public:
  AlignedWordBuffer() = default;
  explicit AlignedWordBuffer(size_t words) { Assign(words); }

  AlignedWordBuffer(const AlignedWordBuffer& other) { CopyFrom(other); }
  AlignedWordBuffer& operator=(const AlignedWordBuffer& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  AlignedWordBuffer(AlignedWordBuffer&& other) noexcept
      : storage_(std::move(other.storage_)),
        data_(other.data_),
        size_(other.size_),
        borrowed_(other.borrowed_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.borrowed_ = false;
  }
  AlignedWordBuffer& operator=(AlignedWordBuffer&& other) noexcept {
    storage_ = std::move(other.storage_);
    data_ = other.data_;
    size_ = other.size_;
    borrowed_ = other.borrowed_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.borrowed_ = false;
    return *this;
  }

  /// Zero-filled buffer of `words` 64-bit words, 64-byte aligned.
  void Assign(size_t words);

  /// Read-only view of `words` words at `data` (must be 64-byte
  /// aligned; checked). The caller keeps the storage alive and
  /// immutable.
  void Borrow(const uint64_t* data, size_t words);

  /// True when the words are a view into storage this buffer does not
  /// own. Mutation (via the non-const `data()`) is forbidden then.
  bool borrowed() const { return borrowed_; }

  uint64_t* data() { return const_cast<uint64_t*>(data_); }
  const uint64_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  void CopyFrom(const AlignedWordBuffer& other);

  std::vector<uint64_t> storage_;
  const uint64_t* data_ = nullptr;
  size_t size_ = 0;
  bool borrowed_ = false;
};

/// \brief Bit-packed tuple-pair evidence: the separation-filter hot
/// path reduced to word ops.
///
/// Each retained tuple pair contributes its *disagree set* — the
/// attributes on which the two tuples differ — as an `m`-bit mask. A
/// candidate attribute set `A` separates the pair iff `A`'s mask
/// intersects the pair's disagree mask, so the filter's reject test
/// ("some retained pair agrees on all of `A`") becomes: does any
/// evidence mask have an empty AND with `A`?
///
/// Layout: structure-of-arrays blocks of 64 pairs, bit-transposed to
/// attribute-major. Block `b` holds one 64-bit word per attribute at
/// `words[b*m + j]`, whose bit `lane` is pair `(b*64+lane)`'s disagree
/// bit for attribute `j`; blocks start on cache-line boundaries. A
/// lane is unseparated by `A` iff every attribute of `A` has a zero
/// bit there, so one block costs `|A|` sequential ORs — independent of
/// the 64 lanes — and the whole query is
/// `⌈pairs/64⌉ · |A|` word ops:
///
///   acc  = OR_{j in A} words[b*m + j]
///   hits = ~acc & live-lane mask     // any set bit names a witness
///
/// Identical disagree masks are deduplicated at build time (one
/// representative source pair is kept for witness reporting); verdicts
/// are unchanged because the reject predicate only asks whether *some*
/// pair's mask misses `A`.
///
/// The words and representatives are stored exactly as the snapshot
/// file lays them out (blocks of words, then a flat `2·pairs` array of
/// u32 representative endpoints), so `FromBorrowed` can serve straight
/// out of an mmap-ed section with zero copies.
class PackedEvidence {
 public:
  static constexpr size_t kPairsPerBlock = 64;

  PackedEvidence() = default;

  PackedEvidence(const PackedEvidence& other) { CopyFrom(other); }
  PackedEvidence& operator=(const PackedEvidence& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  PackedEvidence(PackedEvidence&& other) noexcept {
    MoveFrom(std::move(other));
  }
  PackedEvidence& operator=(PackedEvidence&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

  /// Packs the disagree sets of the given row pairs of `table`
  /// (deduplicated). Representative indices are `table` row indices.
  /// `O(s · m)` build; the price is paid once and every query
  /// afterwards is word-wise.
  static PackedEvidence FromDatasetPairs(
      const Dataset& table,
      std::span<const std::pair<RowIndex, RowIndex>> pairs);

  /// As `FromDatasetPairs` for row-major storage: `rows[i]` points at
  /// the two tuples (of `num_attributes` codes each) of pair `i`, and
  /// `ids[i]` is the representative pair reported for it (the
  /// incremental filter's window slot ids). With `dedupe` false the
  /// packing is LANE-STABLE — evidence pair `i` is input pair `i` —
  /// which `PatchPair` requires.
  static PackedEvidence FromRowMajorPairs(
      size_t num_attributes,
      std::span<const std::pair<const ValueCode*, const ValueCode*>> rows,
      std::span<const std::pair<uint32_t, uint32_t>> ids,
      bool dedupe = true);

  /// \brief Zero-copy reconstruction from storage laid out by
  /// `raw_words()`/`raw_reps()` (the snapshot reader): `words` must
  /// hold exactly `⌈num_pairs/64⌉ · num_attributes` 64-byte-aligned
  /// words and `reps` exactly `2 · num_pairs` u32 endpoints, both
  /// staying alive and immutable for the evidence's lifetime. Verdicts
  /// are bit-identical to the evidence the storage was written from.
  static Result<PackedEvidence> FromBorrowed(size_t num_attributes,
                                             uint64_t source_pairs,
                                             size_t num_pairs,
                                             const uint64_t* words,
                                             size_t num_words,
                                             const uint32_t* reps);

  /// \brief Recomputes one pair's lane in place (`O(m)`), for
  /// lane-stable evidence only: clears/sets `index`'s bit in every
  /// attribute word from the two tuples' codes and updates the
  /// representative. This is how the incremental filter absorbs a
  /// single pair-slot redraw without re-packing all `s` slots.
  /// Forbidden (checked) on borrowed evidence — an mmap view is
  /// read-only.
  void PatchPair(uint32_t index, const ValueCode* row_a,
                 const ValueCode* row_b, std::pair<uint32_t, uint32_t> ids);

  size_t num_attributes() const { return num_attributes_; }
  /// Deduplicated evidence pairs actually packed.
  size_t num_pairs() const { return num_pairs_; }
  /// Words of a pair-major disagree mask (`⌈m/64⌉`, the `AttributeSet`
  /// word count) — the unit of the query-mask inputs below.
  size_t words_per_pair() const { return words_per_pair_; }
  size_t num_blocks() const {
    return (num_pairs() + kPairsPerBlock - 1) / kPairsPerBlock;
  }
  /// Pair count before deduplication (the sampled slot count).
  uint64_t source_pairs() const { return source_pairs_; }

  /// True when words/representatives are views into storage the
  /// evidence does not own (see `FromBorrowed`).
  bool borrowed() const { return words_.borrowed(); }

  /// \brief Index of the first evidence pair whose disagree mask does
  /// not intersect `mask` (i.e. a pair `mask` fails to separate), or
  /// nullopt when every pair is separated. `mask` must hold
  /// `words_per_pair()` words in `AttributeSet` bit order.
  std::optional<uint32_t> FindUnseparated(
      std::span<const uint64_t> mask) const;

  /// \brief Batch kernel, block-major: tests `count` masks (contiguous,
  /// `stride` words apart, `stride >= words_per_pair()`) against every
  /// block before moving to the next block, so each resident block is
  /// reused across the whole batch. `rejected[i]` is set to 1 iff some
  /// pair is unseparated by mask `i`; entries already 1 are skipped
  /// (callers can pre-seed decided candidates).
  void TestMasksBlockMajor(const uint64_t* masks, size_t stride, size_t count,
                           uint8_t* rejected) const;

  /// The source pair behind evidence pair `index` (row indices or slot
  /// ids, per the builder).
  std::pair<uint32_t, uint32_t> representative(uint32_t index) const {
    return {reps_[2 * size_t{index}], reps_[2 * size_t{index} + 1]};
  }

  /// The packed block words exactly as stored (`num_blocks · m` words)
  /// — the snapshot writer's evidence section.
  std::span<const uint64_t> raw_words() const {
    return {words_.data(), words_.size()};
  }
  /// The representative endpoints as stored: `reps[2i], reps[2i+1]`
  /// are evidence pair `i`'s source rows — the snapshot writer's reps
  /// section.
  std::span<const uint32_t> raw_reps() const {
    return {reps_, 2 * num_pairs_};
  }

  /// \brief Heap bytes this instance OWNS. Borrowed (mmap-served)
  /// words and reps are excluded: they live in the file mapping,
  /// shared with the page cache, so charging them against a process
  /// memory budget would double-count the snapshot image. See
  /// `BorrowedBytes()` for the mapped footprint.
  uint64_t MemoryBytes() const;

  /// Bytes viewed through borrowed storage (0 for owning instances).
  uint64_t BorrowedBytes() const;

 private:
  struct MaskAccumulator;

  void CopyFrom(const PackedEvidence& other);
  void MoveFrom(PackedEvidence&& other) noexcept;
  /// Takes ownership of flat representative endpoints (2 per pair).
  void SetOwnedReps(std::vector<uint32_t> flat);

  /// Packs pair-major `masks` (num_pairs * words_per_pair words) into
  /// the block layout.
  void Pack(const std::vector<uint64_t>& masks);

  size_t num_attributes_ = 0;
  size_t words_per_pair_ = 0;
  uint64_t source_pairs_ = 0;
  size_t num_pairs_ = 0;
  AlignedWordBuffer words_;
  std::vector<uint32_t> reps_storage_;  // empty when borrowed
  const uint32_t* reps_ = nullptr;      // 2*num_pairs_ endpoints
};

}  // namespace qikey

#endif  // QIKEY_CORE_EVIDENCE_BLOCK_H_
