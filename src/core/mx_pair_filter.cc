#include "core/mx_pair_filter.h"

#include <numeric>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace qikey {

Result<MxPairFilter> MxPairFilter::Build(const Dataset& dataset,
                                         const MxPairFilterOptions& options,
                                         Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (dataset.num_rows() < 2) {
    return Status::InvalidArgument("need at least two rows to sample pairs");
  }
  if (options.eps <= 0.0 || options.eps >= 1.0) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  uint64_t s = options.sample_size > 0
                   ? options.sample_size
                   : MxPairSampleSizePaper(
                         static_cast<uint32_t>(dataset.num_attributes()),
                         options.eps);
  MxPairFilter filter;
  filter.exhaustive_compare_ = options.exhaustive_compare;
  filter.pairs_.reserve(s);
  for (uint64_t i = 0; i < s; ++i) {
    auto [a, b] = rng->SamplePair(dataset.num_rows());
    filter.pairs_.emplace_back(static_cast<RowIndex>(a),
                               static_cast<RowIndex>(b));
  }
  if (options.materialize) {
    // Copy the union of sampled rows into a private table and re-index.
    std::vector<RowIndex> rows;
    rows.reserve(2 * filter.pairs_.size());
    for (auto [a, b] : filter.pairs_) {
      rows.push_back(a);
      rows.push_back(b);
    }
    filter.materialized_ =
        std::make_shared<Dataset>(dataset.SelectRows(rows));
    for (size_t i = 0; i < filter.pairs_.size(); ++i) {
      filter.pairs_[i] = {static_cast<RowIndex>(2 * i),
                          static_cast<RowIndex>(2 * i + 1)};
    }
    filter.dataset_ = filter.materialized_.get();
  } else {
    filter.dataset_ = &dataset;
  }
  return filter;
}

Result<MxPairFilter> MxPairFilter::FromMaterializedPairs(Dataset pair_table) {
  if (pair_table.num_rows() % 2 != 0) {
    return Status::InvalidArgument("pair table must have an even row count");
  }
  MxPairFilter filter;
  filter.materialized_ = std::make_shared<Dataset>(std::move(pair_table));
  filter.dataset_ = filter.materialized_.get();
  size_t s = filter.materialized_->num_rows() / 2;
  filter.pairs_.reserve(s);
  for (size_t i = 0; i < s; ++i) {
    filter.pairs_.emplace_back(static_cast<RowIndex>(2 * i),
                               static_cast<RowIndex>(2 * i + 1));
  }
  return filter;
}

FilterVerdict MxPairFilter::Query(const AttributeSet& attrs) const {
  return QueryWitness(attrs).has_value() ? FilterVerdict::kReject
                                         : FilterVerdict::kAccept;
}

std::vector<FilterVerdict> MxPairFilter::QueryBatch(
    std::span<const AttributeSet> attrs, ThreadPool* pool) const {
  std::vector<FilterVerdict> verdicts(attrs.size(), FilterVerdict::kAccept);
  ThreadPool::ParallelFor(pool, attrs.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) verdicts[i] = Query(attrs[i]);
  });
  return verdicts;
}

std::optional<std::pair<RowIndex, RowIndex>> MxPairFilter::QueryWitness(
    const AttributeSet& attrs) const {
  std::vector<AttributeIndex> idx = attrs.ToIndices();
  if (exhaustive_compare_) {
    // Cost-model-faithful path: touch every attribute of every pair.
    for (const auto& [a, b] : pairs_) {
      uint32_t differing = 0;
      for (AttributeIndex j : idx) {
        differing += (dataset_->code(a, j) != dataset_->code(b, j)) ? 1 : 0;
      }
      if (differing == 0) return std::make_pair(a, b);
    }
    return std::nullopt;
  }
  for (const auto& [a, b] : pairs_) {
    if (dataset_->RowsAgreeOn(a, b, idx)) {
      return std::make_pair(a, b);
    }
  }
  return std::nullopt;
}

uint64_t MxPairFilter::MemoryBytes() const {
  uint64_t bytes = pairs_.size() * sizeof(std::pair<RowIndex, RowIndex>);
  if (materialized_ != nullptr) {
    bytes += materialized_->num_rows() * materialized_->num_attributes() *
             sizeof(ValueCode);
  }
  return bytes;
}

}  // namespace qikey
