#include "core/mx_pair_filter.h"

#include <numeric>

#include "data/concat.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace qikey {

Result<MxPairFilter> MxPairFilter::Build(const Dataset& dataset,
                                         const MxPairFilterOptions& options,
                                         Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (dataset.num_rows() < 2) {
    return Status::InvalidArgument("need at least two rows to sample pairs");
  }
  QIKEY_RETURN_NOT_OK(ValidateEps(options.eps));
  uint64_t s = options.sample_size > 0
                   ? options.sample_size
                   : MxPairSampleSizePaper(
                         static_cast<uint32_t>(dataset.num_attributes()),
                         options.eps);
  MxPairFilter filter;
  filter.exhaustive_compare_ = options.exhaustive_compare;
  filter.pairs_.reserve(s);
  for (uint64_t i = 0; i < s; ++i) {
    auto [a, b] = rng->SamplePair(dataset.num_rows());
    filter.pairs_.emplace_back(static_cast<RowIndex>(a),
                               static_cast<RowIndex>(b));
  }
  if (options.materialize) {
    // Copy the union of sampled rows into a private table and re-index.
    std::vector<RowIndex> rows;
    rows.reserve(2 * filter.pairs_.size());
    for (auto [a, b] : filter.pairs_) {
      rows.push_back(a);
      rows.push_back(b);
    }
    filter.materialized_ =
        std::make_shared<Dataset>(dataset.SelectRows(rows));
    for (size_t i = 0; i < filter.pairs_.size(); ++i) {
      filter.pairs_[i] = {static_cast<RowIndex>(2 * i),
                          static_cast<RowIndex>(2 * i + 1)};
    }
    filter.dataset_ = filter.materialized_.get();
  } else {
    filter.dataset_ = &dataset;
  }
  return filter;
}

Result<MxPairFilter> MxPairFilter::FromMaterializedPairs(Dataset pair_table) {
  if (pair_table.num_rows() % 2 != 0) {
    return Status::InvalidArgument("pair table must have an even row count");
  }
  MxPairFilter filter;
  filter.materialized_ = std::make_shared<Dataset>(std::move(pair_table));
  filter.dataset_ = filter.materialized_.get();
  size_t s = filter.materialized_->num_rows() / 2;
  filter.pairs_.reserve(s);
  for (size_t i = 0; i < s; ++i) {
    filter.pairs_.emplace_back(static_cast<RowIndex>(2 * i),
                               static_cast<RowIndex>(2 * i + 1));
  }
  return filter;
}

Dataset MxPairFilter::MaterializePairTable() const {
  std::vector<RowIndex> rows;
  rows.reserve(2 * pairs_.size());
  for (auto [a, b] : pairs_) {
    rows.push_back(a);
    rows.push_back(b);
  }
  return dataset_->SelectRows(rows);
}

Result<MxPairFilter> MxPairFilter::MergeDisjoint(const MxPairFilter& a,
                                                 uint64_t seen_a,
                                                 const MxPairFilter& b,
                                                 uint64_t seen_b, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (a.materialized_ == nullptr || b.materialized_ == nullptr) {
    return Status::InvalidArgument("merge requires materialized pair filters");
  }
  if (a.pairs_.size() != b.pairs_.size() || a.pairs_.empty()) {
    return Status::InvalidArgument(
        "merge requires equal, non-zero slot counts");
  }
  if (seen_a < 2 || seen_b < 2) {
    return Status::InvalidArgument("each side must have sampled >= 2 rows");
  }
  if (seen_a + seen_b > static_cast<uint64_t>(~RowIndex{0})) {
    return Status::InvalidArgument("merged population exceeds RowIndex range");
  }
  if (a.exhaustive_compare_ != b.exhaustive_compare_) {
    return Status::InvalidArgument("cannot merge differing compare modes");
  }

  // One union table to select merged pair rows from: a's materialized
  // rows first, then b's at `offset` (re-encoded to shared codes).
  Result<Dataset> combined =
      ConcatDatasets({a.materialized_.get(), b.materialized_.get()});
  if (!combined.ok()) return combined.status();
  const RowIndex offset = static_cast<RowIndex>(a.materialized_->num_rows());

  // C(n,2) fits u64 because n fits u32.
  const uint64_t pairs_a = seen_a * (seen_a - 1) / 2;
  const uint64_t pairs_b = seen_b * (seen_b - 1) / 2;
  const uint64_t n = seen_a + seen_b;
  const uint64_t pairs_total = n * (n - 1) / 2;

  const size_t s = a.pairs_.size();
  std::vector<RowIndex> selected;
  selected.reserve(2 * s);
  for (size_t i = 0; i < s; ++i) {
    uint64_t v = rng->Uniform(pairs_total);
    if (v < pairs_a) {
      selected.push_back(a.pairs_[i].first);
      selected.push_back(a.pairs_[i].second);
    } else if (v < pairs_a + pairs_b) {
      selected.push_back(offset + b.pairs_[i].first);
      selected.push_back(offset + b.pairs_[i].second);
    } else {
      // Cross pair: a uniform element of each slot's pair is a uniform
      // row of that population.
      const auto& pa = a.pairs_[i];
      const auto& pb = b.pairs_[i];
      selected.push_back(rng->Uniform(2) == 0 ? pa.first : pa.second);
      selected.push_back(offset +
                         (rng->Uniform(2) == 0 ? pb.first : pb.second));
    }
  }
  Result<MxPairFilter> merged =
      FromMaterializedPairs(combined->SelectRows(selected));
  if (!merged.ok()) return merged.status();
  merged->exhaustive_compare_ = a.exhaustive_compare_;
  return merged;
}

FilterVerdict MxPairFilter::Query(const AttributeSet& attrs) const {
  return QueryWitness(attrs).has_value() ? FilterVerdict::kReject
                                         : FilterVerdict::kAccept;
}

std::vector<FilterVerdict> MxPairFilter::QueryBatch(
    std::span<const AttributeSet> attrs, ThreadPool* pool) const {
  std::vector<FilterVerdict> verdicts(attrs.size(), FilterVerdict::kAccept);
  ThreadPool::ParallelFor(pool, attrs.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) verdicts[i] = Query(attrs[i]);
  });
  return verdicts;
}

std::optional<std::pair<RowIndex, RowIndex>> MxPairFilter::QueryWitness(
    const AttributeSet& attrs) const {
  std::vector<AttributeIndex> idx = attrs.ToIndices();
  if (exhaustive_compare_) {
    // Cost-model-faithful path: touch every attribute of every pair.
    for (const auto& [a, b] : pairs_) {
      uint32_t differing = 0;
      for (AttributeIndex j : idx) {
        differing += (dataset_->code(a, j) != dataset_->code(b, j)) ? 1 : 0;
      }
      if (differing == 0) return std::make_pair(a, b);
    }
    return std::nullopt;
  }
  for (const auto& [a, b] : pairs_) {
    if (dataset_->RowsAgreeOn(a, b, idx)) {
      return std::make_pair(a, b);
    }
  }
  return std::nullopt;
}

uint64_t MxPairFilter::MemoryBytes() const {
  uint64_t bytes = pairs_.size() * sizeof(std::pair<RowIndex, RowIndex>);
  if (materialized_ != nullptr) {
    bytes += materialized_->num_rows() * materialized_->num_attributes() *
             sizeof(ValueCode);
  }
  return bytes;
}

}  // namespace qikey
