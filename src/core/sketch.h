#ifndef QIKEY_CORE_SKETCH_H_
#define QIKEY_CORE_SKETCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/attribute_set.h"
#include "data/dataset.h"
#include "util/rng.h"
#include "util/status.h"

namespace qikey {

/// Result of a non-separation estimate.
struct NonSeparationEstimate {
  /// True when the sketch declares `Γ_A < α·C(n,2)` ("small"); the
  /// numeric estimate is then meaningless.
  bool small = false;
  /// Estimated `Γ_A` (number of unseparated pairs), valid when !small.
  double estimate = 0.0;
  /// Raw count of retained pairs the query failed to separate (`D_A`).
  uint64_t hits = 0;
};

struct NonSeparationSketchOptions {
  uint32_t k = 4;        ///< maximum query size |A|
  double alpha = 0.1;    ///< density cutoff: guarantees apply when Γ_A >= α C(n,2)
  double eps = 0.1;      ///< relative error of the estimate
  double big_k = 1.0;    ///< the universal constant K of Theorem 2
  /// Override the retained-pair count; 0 = `⌈K k ln m/(α ε²)⌉`.
  uint64_t sample_size = 0;
};

/// \brief Theorem 2's uniform-sampling sketch for estimating `Γ_A`.
///
/// Retains `s = Θ(k log m / (α ε²))` uniform pairs of tuples, fully
/// materialized (the sketch must answer without the data set). For any
/// `|A| <= k` with `Γ_A >= α C(n,2)`, w.h.p. the estimate
/// `D_A · C(n,2)/s` is within `(1±ε)Γ_A`; sets below the cutoff may be
/// reported "small". Matching lower bound: any such sketch takes
/// `Ω(mk log(1/ε))` bits (Section 3.2).
class NonSeparationSketch {
 public:
  static Result<NonSeparationSketch> Build(
      const Dataset& dataset, const NonSeparationSketchOptions& options,
      Rng* rng);

  /// Builds from already-materialized pair codes (streaming path):
  /// `codes` holds `2*s*m` values laid out as in `codes_`. `total_pairs`
  /// is `C(n,2)` of the stream.
  static Result<NonSeparationSketch> FromMaterializedPairs(
      uint32_t num_attributes, uint64_t total_pairs, uint64_t small_cutoff,
      std::vector<ValueCode> codes);

  /// Estimates `Γ_A`. Does not check |A| <= k (estimates for larger sets
  /// are returned but carry no guarantee).
  NonSeparationEstimate Estimate(const AttributeSet& attrs) const;

  uint64_t sample_size() const { return num_pairs_; }
  uint64_t total_pairs() const { return total_pairs_; }
  uint64_t small_cutoff() const { return small_cutoff_; }

  /// Serialized size in bytes (what the lower bound counts).
  uint64_t SizeBytes() const;

  /// Byte serialization (header + packed codes); `Deserialize` restores
  /// a sketch that answers identically.
  std::string Serialize() const;
  static Result<NonSeparationSketch> Deserialize(const std::string& bytes);

 private:
  NonSeparationSketch() = default;

  uint32_t num_attributes_ = 0;
  uint64_t num_pairs_ = 0;
  uint64_t total_pairs_ = 0;   ///< C(n,2) of the source data set
  uint64_t small_cutoff_ = 0;  ///< D_A below this => "small"
  /// Row-major codes: pair i's left tuple at [2i*m, ...), right at
  /// [(2i+1)*m, ...).
  std::vector<ValueCode> codes_;
};

}  // namespace qikey

#endif  // QIKEY_CORE_SKETCH_H_
