#include "core/tuple_sample_filter.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <unordered_map>

#include "data/concat.h"
#include "data/serialize.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace qikey {

Result<TupleSampleFilter> TupleSampleFilter::Build(
    const Dataset& dataset, const TupleSampleFilterOptions& options,
    Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (dataset.num_rows() < 2) {
    return Status::InvalidArgument("need at least two rows");
  }
  QIKEY_RETURN_NOT_OK(ValidateEps(options.eps));
  uint64_t r = options.sample_size > 0
                   ? options.sample_size
                   : TupleSampleSizePaper(
                         static_cast<uint32_t>(dataset.num_attributes()),
                         options.eps);
  // Sampling without replacement (Algorithm 1). If the request exceeds
  // the data set, keep everything: the filter then answers exactly.
  r = std::min<uint64_t>(r, dataset.num_rows());
  std::vector<uint64_t> chosen =
      rng->SampleWithoutReplacement(dataset.num_rows(), r);
  std::vector<RowIndex> rows(chosen.begin(), chosen.end());

  TupleSampleFilter filter;
  filter.sample_ = std::make_shared<Dataset>(dataset.SelectRows(rows));
  filter.original_rows_ = std::move(rows);
  filter.detection_ = options.detection;
  return filter;
}

TupleSampleFilter TupleSampleFilter::FromSample(
    Dataset sample, std::vector<RowIndex> original_rows,
    DuplicateDetection detection) {
  return FromSample(std::make_shared<Dataset>(std::move(sample)),
                    std::move(original_rows), detection);
}

TupleSampleFilter TupleSampleFilter::FromSample(
    std::shared_ptr<Dataset> sample, std::vector<RowIndex> original_rows,
    DuplicateDetection detection) {
  TupleSampleFilter filter;
  filter.sample_ = std::move(sample);
  filter.original_rows_ = std::move(original_rows);
  filter.detection_ = detection;
  return filter;
}

Result<TupleSampleFilter> TupleSampleFilter::MergeDisjoint(
    const TupleSampleFilter& a, uint64_t seen_a, const TupleSampleFilter& b,
    uint64_t seen_b, uint64_t target_sample_size, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (target_sample_size == 0) {
    return Status::InvalidArgument("target sample size must be positive");
  }
  if (seen_a < a.sample_size() || seen_b < b.sample_size()) {
    return Status::InvalidArgument(
        "seen row counts smaller than the retained samples");
  }
  if (a.detection_ != b.detection_) {
    return Status::InvalidArgument("cannot merge differing detection modes");
  }
  const uint64_t target = std::min(target_sample_size, seen_a + seen_b);
  const uint64_t need_a = std::min(target, seen_a);
  const uint64_t need_b = std::min(target, seen_b);
  if (a.sample_size() < need_a || b.sample_size() < need_b) {
    return Status::InvalidArgument(
        "inputs retain fewer tuples than the merge target requires");
  }

  // k of the merged sample come from a's population (hypergeometric),
  // filled by uniform sub-draws of the two uniform per-shard samples.
  uint64_t k = rng->HypergeometricDraw(target, seen_a, seen_b);
  std::vector<uint64_t> pick_a =
      rng->SampleWithoutReplacement(a.sample_size(), k);
  std::vector<uint64_t> pick_b =
      rng->SampleWithoutReplacement(b.sample_size(), target - k);
  std::vector<RowIndex> rows_a(pick_a.begin(), pick_a.end());
  std::vector<RowIndex> rows_b(pick_b.begin(), pick_b.end());

  Dataset part_a = a.sample_->SelectRows(rows_a);
  Dataset part_b = b.sample_->SelectRows(rows_b);
  Result<Dataset> merged = ConcatDatasets({&part_a, &part_b});
  if (!merged.ok()) return merged.status();

  std::vector<RowIndex> provenance;
  if (!a.original_rows_.empty() && !b.original_rows_.empty()) {
    provenance.reserve(target);
    for (RowIndex r : rows_a) provenance.push_back(a.original_rows_[r]);
    for (RowIndex r : rows_b) provenance.push_back(b.original_rows_[r]);
  }
  return FromSample(std::move(merged).ValueOrDie(), std::move(provenance),
                    a.detection_);
}

FilterVerdict TupleSampleFilter::Query(const AttributeSet& attrs) const {
  std::vector<AttributeIndex> idx = attrs.ToIndices();
  std::optional<std::pair<RowIndex, RowIndex>> dup =
      (detection_ == DuplicateDetection::kSort) ? FindDuplicateSorted(idx)
                                                : FindDuplicateHashed(idx);
  return dup.has_value() ? FilterVerdict::kReject : FilterVerdict::kAccept;
}

std::vector<FilterVerdict> TupleSampleFilter::QueryBatch(
    std::span<const AttributeSet> attrs, ThreadPool* pool) const {
  std::vector<FilterVerdict> verdicts(attrs.size(), FilterVerdict::kAccept);
  ThreadPool::ParallelFor(pool, attrs.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) verdicts[i] = Query(attrs[i]);
  });
  return verdicts;
}

std::optional<std::pair<RowIndex, RowIndex>> TupleSampleFilter::QueryWitness(
    const AttributeSet& attrs) const {
  std::vector<AttributeIndex> idx = attrs.ToIndices();
  std::optional<std::pair<RowIndex, RowIndex>> dup =
      (detection_ == DuplicateDetection::kSort) ? FindDuplicateSorted(idx)
                                                : FindDuplicateHashed(idx);
  if (!dup.has_value()) return std::nullopt;
  // Translate sample-row indices back to original rows when known.
  auto [a, b] = *dup;
  if (!original_rows_.empty()) {
    return std::make_pair(original_rows_[a], original_rows_[b]);
  }
  return dup;
}

std::optional<std::pair<RowIndex, RowIndex>>
TupleSampleFilter::FindDuplicateSorted(
    const std::vector<AttributeIndex>& idx) const {
  const Dataset& s = *sample_;
  const size_t r = s.num_rows();
  std::vector<RowIndex> order(r);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](RowIndex a, RowIndex b) {
    return s.CompareProjections(a, b, idx) < 0;
  });
  for (size_t i = 1; i < r; ++i) {
    if (s.CompareProjections(order[i - 1], order[i], idx) == 0) {
      return std::make_pair(order[i - 1], order[i]);
    }
  }
  return std::nullopt;
}

std::optional<std::pair<RowIndex, RowIndex>>
TupleSampleFilter::FindDuplicateHashed(
    const std::vector<AttributeIndex>& idx) const {
  const Dataset& s = *sample_;
  const size_t r = s.num_rows();
  // hash -> first row with that hash; collisions verified by comparison,
  // chains resolved by probing a secondary bucket list.
  std::unordered_multimap<uint64_t, RowIndex> seen;
  seen.reserve(r * 2);
  for (RowIndex row = 0; row < r; ++row) {
    uint64_t h = s.HashProjection(row, idx);
    auto range = seen.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (s.CompareProjections(it->second, row, idx) == 0) {
        return std::make_pair(it->second, row);
      }
    }
    seen.emplace(h, row);
  }
  return std::nullopt;
}

std::string TupleSampleFilter::Serialize() const {
  // Layout: 'QIKF' | detection u8 | provenance count u64 | provenance
  // rows | dataset payload.
  std::string out = "QIKF";
  out.push_back(detection_ == DuplicateDetection::kSort ? 0 : 1);
  uint64_t prov = original_rows_.size();
  out.append(reinterpret_cast<const char*>(&prov), sizeof(prov));
  out.append(reinterpret_cast<const char*>(original_rows_.data()),
             original_rows_.size() * sizeof(RowIndex));
  out += SerializeDataset(*sample_);
  return out;
}

Result<TupleSampleFilter> TupleSampleFilter::Deserialize(
    std::string_view bytes) {
  if (bytes.size() < 13 || bytes.substr(0, 4) != "QIKF") {
    return Status::InvalidArgument("not a qikey filter payload");
  }
  DuplicateDetection detection = bytes[4] == 0 ? DuplicateDetection::kSort
                                               : DuplicateDetection::kHash;
  uint64_t prov = 0;
  std::memcpy(&prov, bytes.data() + 5, sizeof(prov));
  // Validate the declared count against the payload BEFORE computing
  // byte sizes or allocating: a hostile count must not overflow the
  // arithmetic below or trigger a huge allocation.
  if (prov > (bytes.size() - 13) / sizeof(RowIndex)) {
    return Status::InvalidArgument("truncated filter provenance");
  }
  size_t prov_bytes = static_cast<size_t>(prov) * sizeof(RowIndex);
  std::vector<RowIndex> rows(prov);
  std::memcpy(rows.data(), bytes.data() + 13, prov_bytes);
  Result<Dataset> sample = DeserializeDataset(bytes.substr(13 + prov_bytes));
  if (!sample.ok()) return sample.status();
  return FromSample(std::move(sample).ValueOrDie(), std::move(rows),
                    detection);
}

uint64_t TupleSampleFilter::MemoryBytes() const {
  return sample_->num_rows() * sample_->num_attributes() * sizeof(ValueCode) +
         original_rows_.size() * sizeof(RowIndex);
}

}  // namespace qikey
