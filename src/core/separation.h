#ifndef QIKEY_CORE_SEPARATION_H_
#define QIKEY_CORE_SEPARATION_H_

#include <cstdint>

#include "core/attribute_set.h"
#include "data/dataset.h"
#include "data/partition.h"

namespace qikey {

/// Ground-truth classification of an attribute set (Section 1):
/// a *key* separates all pairs; a *bad* set separates fewer than
/// `(1-ε)C(n,2)`; everything else is in the gray zone where a filter may
/// answer either way.
enum class SeparationClass { kKey, kIntermediate, kBad };

/// Exact number of pairs `attrs` fails to separate (`Γ_A`). `O(n·|A|)`.
uint64_t ExactUnseparatedPairs(const Dataset& dataset,
                               const AttributeSet& attrs);

/// Exact fraction of pairs separated by `attrs` in `[0, 1]`.
double SeparationRatio(const Dataset& dataset, const AttributeSet& attrs);

/// True iff `attrs` separates every pair (is a key).
bool IsKey(const Dataset& dataset, const AttributeSet& attrs);

/// True iff `attrs` separates at least `(1-eps)` of all pairs.
bool IsEpsSeparationKey(const Dataset& dataset, const AttributeSet& attrs,
                        double eps);

/// Classifies `attrs` against threshold `eps`.
SeparationClass Classify(const Dataset& dataset, const AttributeSet& attrs,
                         double eps);

/// The auxiliary-graph partition `G_A` (disjoint cliques) for `attrs`.
Partition SeparationPartition(const Dataset& dataset,
                              const AttributeSet& attrs);

}  // namespace qikey

#endif  // QIKEY_CORE_SEPARATION_H_
