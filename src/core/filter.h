#ifndef QIKEY_CORE_FILTER_H_
#define QIKEY_CORE_FILTER_H_

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/attribute_set.h"
#include "data/dataset.h"

namespace qikey {

class ThreadPool;

/// Answer of an ε-separation key filter for a queried attribute set.
enum class FilterVerdict {
  kAccept,  ///< consistent with being a key on the retained sample
  kReject,  ///< witnessed an unseparated pair; certainly not a key
};

/// Which ε-separation filter implementation backs a component (the
/// discovery pipeline's query/verify stages, the incremental monitor).
enum class FilterBackend {
  kTupleSample,  ///< this paper's `Θ(m/√ε)` tuple sample (Algorithm 1)
  kMxPair,       ///< the Motwani–Xu `Θ(m/ε)` pair baseline
  /// The MX pair sample answered from bit-packed disagree-set evidence
  /// (`BitsetSeparationFilter`): same sampled pairs and verdicts as
  /// `kMxPair` for a fixed seed, word-wise AND query kernel.
  kBitset,
};

/// True for the backends whose evidence is sampled PAIRS of the
/// relation — drawn independently of the pipeline's greedy tuple
/// sample — i.e. the MX baseline and its bit-packed variant. They share
/// construction, sharding, and merge machinery.
constexpr bool IsPairSampledBackend(FilterBackend backend) {
  return backend == FilterBackend::kMxPair ||
         backend == FilterBackend::kBitset;
}

/// \brief Interface of the ε-separation key filter (the decision problem
/// of Theorem 1).
///
/// Contract ("for all" success notion): with probability `1-δ` over the
/// filter's randomness, simultaneously for every `A ⊆ [m]`:
///   - if `A` is a key, `Query(A)` accepts (this holds deterministically
///     for both implementations: a key separates every retained pair);
///   - if `A` is bad (separates < `(1-ε)C(n,2)` pairs), `Query(A)`
///     rejects;
///   - otherwise either answer is allowed.
class SeparationFilter {
 public:
  virtual ~SeparationFilter() = default;

  virtual FilterVerdict Query(const AttributeSet& attrs) const = 0;

  /// \brief Answers many queries at once; `verdicts[i]` is the verdict
  /// for `attrs[i]`, identical to calling `Query(attrs[i])`.
  ///
  /// The base implementation is a serial loop. Subclasses whose `Query`
  /// is safe to run concurrently override it to split the batch across
  /// `pool` (null pool = serial); this is the API candidate-set
  /// enumeration and the discovery pipeline drive, so one enumeration
  /// level costs one batch instead of thousands of virtual calls.
  virtual std::vector<FilterVerdict> QueryBatch(
      std::span<const AttributeSet> attrs, ThreadPool* pool = nullptr) const;

  /// A rejection witness: a pair of rows of the *original* data set that
  /// the queried attributes fail to separate, if the verdict is Reject.
  virtual std::optional<std::pair<RowIndex, RowIndex>> QueryWitness(
      const AttributeSet& attrs) const = 0;

  /// Number of retained samples (pairs or tuples, see the subclass).
  virtual uint64_t sample_size() const = 0;

  /// Approximate memory footprint of the retained state in bytes.
  virtual uint64_t MemoryBytes() const = 0;
};

}  // namespace qikey

#endif  // QIKEY_CORE_FILTER_H_
