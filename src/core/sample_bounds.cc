#include "core/sample_bounds.h"

#include <cmath>

#include "util/logging.h"

namespace qikey {

namespace {

uint64_t CeilPositive(double x) {
  QIKEY_CHECK(x >= 0.0);
  return static_cast<uint64_t>(std::ceil(x));
}

}  // namespace

bool IsValidEps(double eps) {
  return std::isfinite(eps) && eps > 0.0 && eps < 1.0;
}

Status ValidateEps(double eps) {
  if (!IsValidEps(eps)) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  return Status::OK();
}

Status ValidateUnitFraction(double value, const char* what) {
  if (!(std::isfinite(value) && value >= 0.0 && value <= 1.0)) {
    return Status::InvalidArgument(std::string(what) +
                                   " must be in [0, 1]");
  }
  return Status::OK();
}

uint64_t MxPairSampleSizePaper(uint32_t m, double eps) {
  QIKEY_CHECK(eps > 0.0 && eps < 1.0);
  return CeilPositive(static_cast<double>(m) / eps);
}

uint64_t MxPairSampleSizeForDelta(uint32_t m, double eps, double delta) {
  QIKEY_CHECK(eps > 0.0 && eps < 1.0);
  QIKEY_CHECK(delta > 0.0 && delta < 1.0);
  double needed =
      (static_cast<double>(m) * std::log(2.0) + std::log(1.0 / delta)) / eps;
  return CeilPositive(needed);
}

uint64_t TupleSampleSizePaper(uint32_t m, double eps) {
  QIKEY_CHECK(eps > 0.0 && eps < 1.0);
  return CeilPositive(static_cast<double>(m) / std::sqrt(eps));
}

uint64_t TupleSampleSizeForDelta(uint32_t m, double eps, double delta) {
  QIKEY_CHECK(eps > 0.0 && eps < 1.0);
  QIKEY_CHECK(delta > 0.0 && delta < 1.0);
  // The worst-case profile has one clique of Θ(√ε n); hitting it twice
  // needs r ≈ (m ln 2 + ln(1/δ)) / √(2ε) samples (each sample lands in
  // the clique w.p. √(2ε); see Lemma 2 / Lemma 4).
  double needed =
      (static_cast<double>(m) * std::log(2.0) + std::log(1.0 / delta)) /
      std::sqrt(2.0 * eps);
  return CeilPositive(needed);
}

uint64_t SketchPairSampleSize(uint32_t k, uint32_t m, double alpha,
                              double eps, double big_k) {
  QIKEY_CHECK(eps > 0.0 && eps < 1.0);
  QIKEY_CHECK(alpha > 0.0 && alpha <= 1.0);
  double lm = std::log(std::max<double>(m, 2));
  return CeilPositive(big_k * static_cast<double>(k) * lm / (alpha * eps * eps));
}

uint64_t SketchSmallCutoff(uint32_t k, uint32_t m, double eps, double big_k) {
  QIKEY_CHECK(eps > 0.0 && eps < 1.0);
  double lm = std::log(std::max<double>(m, 2));
  return CeilPositive(big_k * static_cast<double>(k) * lm / (10.0 * eps * eps));
}

double LowerBoundConstantDelta(uint32_t m, double eps) {
  return std::sqrt(std::log(std::max<double>(m, 2)) / eps);
}

double LowerBoundExpDelta(uint32_t m, double eps) {
  return static_cast<double>(m) / std::sqrt(eps);
}

}  // namespace qikey
