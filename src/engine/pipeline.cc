#include "engine/pipeline.h"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "core/bitset_filter.h"
#include "core/sample_bounds.h"
#include "shard/filter_merger.h"
#include "shard/shard_builder.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace qikey {

namespace {

Status ValidateOptions(const PipelineOptions& options) {
  QIKEY_RETURN_NOT_OK(ValidateEps(options.eps));
  return Status::OK();
}

/// True iff `key` separates every pair of `sample` (sort-based
/// duplicate scan, `O(r log r · |key|)`).
bool KeySeparatesSample(const Dataset& sample, const AttributeSet& key) {
  std::vector<AttributeIndex> idx = key.ToIndices();
  std::vector<RowIndex> order(sample.num_rows());
  for (RowIndex i = 0; i < sample.num_rows(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](RowIndex a, RowIndex b) {
    return sample.CompareProjections(a, b, idx) < 0;
  });
  for (size_t i = 1; i < order.size(); ++i) {
    if (sample.CompareProjections(order[i - 1], order[i], idx) == 0) {
      return false;
    }
  }
  return true;
}

size_t ResolveThreads(size_t num_threads) {
  if (num_threads > 0) return num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

Result<PipelineResult> DiscoveryPipeline::Run(const Dataset& dataset,
                                              Rng* rng) const {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (dataset.num_rows() < 2) {
    return Status::InvalidArgument("need at least two rows");
  }
  QIKEY_RETURN_NOT_OK(ValidateOptions(options_));

  Timer timer;
  uint64_t r = options_.sample_size > 0
                   ? options_.sample_size
                   : TupleSampleSizePaper(
                         static_cast<uint32_t>(dataset.num_attributes()),
                         options_.eps);
  r = std::min<uint64_t>(r, dataset.num_rows());
  std::vector<uint64_t> chosen =
      rng->SampleWithoutReplacement(dataset.num_rows(), r);
  std::vector<RowIndex> rows(chosen.begin(), chosen.end());
  auto sample = std::make_shared<Dataset>(dataset.SelectRows(rows));
  double sample_millis = timer.ElapsedMillis();

  Result<PipelineResult> result =
      RunStages(&dataset, std::move(sample), std::move(rows), rng);
  if (!result.ok()) return result;
  result->rows = dataset.num_rows();
  result->stages.insert(result->stages.begin(),
                        PipelineStage{"sample", sample_millis});
  result->total_millis += sample_millis;
  return result;
}

Result<PipelineResult> DiscoveryPipeline::RunOnReservoir(
    const Dataset& sample, std::vector<RowIndex> provenance) const {
  if (sample.num_rows() < 2) {
    return Status::InvalidArgument("reservoir needs at least two rows");
  }
  if (!provenance.empty() && provenance.size() != sample.num_rows()) {
    return Status::InvalidArgument(
        "provenance must be empty or match the sample row count");
  }
  if (IsPairSampledBackend(options_.backend)) {
    return Status::InvalidArgument(
        "the reservoir entry point supports only the tuple-sample backend "
        "(pair backends need pair sampling the reservoir cannot provide)");
  }
  QIKEY_RETURN_NOT_OK(ValidateOptions(options_));
  Result<PipelineResult> result = RunStages(
      nullptr, std::make_shared<Dataset>(sample), std::move(provenance),
      nullptr);
  if (!result.ok()) return result;
  result->rows = sample.num_rows();
  return result;
}

Result<std::unique_ptr<KeyMonitor>> DiscoveryPipeline::RunIncremental(
    const Dataset& initial, uint32_t max_key_size, uint64_t seed) const {
  QIKEY_RETURN_NOT_OK(ValidateOptions(options_));
  MonitorOptions monitor_options;
  monitor_options.eps = options_.eps;
  monitor_options.backend = options_.backend;
  monitor_options.max_key_size = max_key_size;
  monitor_options.sample_size = options_.sample_size;
  monitor_options.pair_sample_size = options_.pair_sample_size;
  monitor_options.num_threads = ResolveThreads(options_.num_threads);
  Result<std::unique_ptr<KeyMonitor>> monitor =
      KeyMonitor::Make(initial.schema(), monitor_options, seed);
  if (!monitor.ok()) return monitor.status();
  QIKEY_RETURN_NOT_OK((*monitor)->InsertDataset(initial));
  return monitor;
}

namespace {

/// The shard-construction options implied by the pipeline's own.
/// Callers fill in the run-specific fields (shard count, seed, CSV).
ShardedBuildOptions MakeShardBuildOptions(const PipelineOptions& options) {
  ShardedBuildOptions build;
  build.backend = options.backend;
  build.eps = options.eps;
  build.tuple_sample_size = options.sample_size;
  build.pair_slots = options.pair_sample_size;
  build.num_threads = ResolveThreads(options.num_threads);
  return build;
}

/// Turns a finished merge into the pipeline tail's inputs: the shared
/// greedy sample and the verdict filter.
struct MergedInputs {
  std::shared_ptr<Dataset> sample;
  std::unique_ptr<SeparationFilter> filter;
  uint64_t total_rows = 0;
  uint32_t num_shards = 0;
};

MergedInputs TakeMergedInputs(MergedFilter merged) {
  MergedInputs inputs;
  inputs.sample = merged.tuple_filter->shared_sample();
  inputs.total_rows = merged.total_rows;
  inputs.num_shards = merged.num_shards;
  if (merged.backend == FilterBackend::kBitset) {
    // The merged pair slots become the packed evidence; the merged
    // tuple sample still feeds the greedy stage.
    inputs.filter = std::make_unique<BitsetSeparationFilter>(
        BitsetSeparationFilter::FromPairs(*merged.mx_filter->materialized(),
                                          merged.mx_filter->pairs()));
  } else if (merged.backend == FilterBackend::kMxPair) {
    inputs.filter =
        std::make_unique<MxPairFilter>(std::move(*merged.mx_filter));
  } else {
    inputs.filter =
        std::make_unique<TupleSampleFilter>(std::move(*merged.tuple_filter));
  }
  return inputs;
}

}  // namespace

Result<PipelineResult> DiscoveryPipeline::RunSharded(
    const Dataset& dataset, const ShardedRunOptions& sharded,
    uint64_t seed) const {
  QIKEY_RETURN_NOT_OK(ValidateOptions(options_));
  if (dataset.num_rows() < 2) {
    return Status::InvalidArgument("need at least two rows");
  }
  Rng seeder(seed);
  ShardedBuildOptions build = MakeShardBuildOptions(options_);
  build.num_shards = sharded.num_shards;
  build.seed = seeder.Next();
  uint64_t merge_seed = seeder.Next();

  Timer timer;
  Result<std::vector<ShardFilterArtifact>> artifacts =
      BuildShardArtifacts(dataset, build);
  if (!artifacts.ok()) return artifacts.status();
  double build_millis = timer.ElapsedMillis();
  uint64_t artifact_bytes = 0;
  for (const ShardFilterArtifact& a : *artifacts) {
    artifact_bytes += a.MemoryBytes();
  }

  Result<PipelineResult> result =
      RunOnShardArtifacts(std::move(artifacts).ValueOrDie(), merge_seed);
  if (!result.ok()) return result;
  result->stages.insert(result->stages.begin(),
                        PipelineStage{"shard-build", build_millis});
  result->total_millis += build_millis;
  result->peak_tracked_bytes = artifact_bytes + result->filter_bytes;
  return result;
}

Result<PipelineResult> DiscoveryPipeline::RunSharded(
    const std::string& csv_path, const ShardedRunOptions& sharded,
    uint64_t seed) const {
  QIKEY_RETURN_NOT_OK(ValidateOptions(options_));
  Rng seeder(seed);
  ShardedBuildOptions build = MakeShardBuildOptions(options_);
  build.num_shards = sharded.num_shards;
  build.seed = seeder.Next();
  build.csv = sharded.csv;
  build.shard_rows = sharded.shard_rows;
  build.memory_budget_bytes = sharded.memory_budget_bytes;
  uint64_t merge_seed = seeder.Next();

  if (sharded.memory_budget_bytes == 0 && sharded.shard_rows == 0) {
    // Scale-out mode: parallel byte-range ingest, then central merge.
    Timer timer;
    Result<std::vector<ShardFilterArtifact>> artifacts =
        BuildShardArtifactsFromCsv(csv_path, build);
    if (!artifacts.ok()) return artifacts.status();
    double build_millis = timer.ElapsedMillis();
    uint64_t artifact_bytes = 0;
    for (const ShardFilterArtifact& a : *artifacts) {
      artifact_bytes += a.MemoryBytes();
    }
    Result<PipelineResult> result =
        RunOnShardArtifacts(std::move(artifacts).ValueOrDie(), merge_seed);
    if (!result.ok()) return result;
    result->stages.insert(result->stages.begin(),
                          PipelineStage{"shard-build", build_millis});
    result->total_millis += build_millis;
    result->peak_tracked_bytes = artifact_bytes + result->filter_bytes;
    return result;
  }

  // Out-of-core mode: sequential chunked ingest with an eager merge; at
  // most one chunk plus the merged filter are ever live.
  Timer timer;
  std::optional<FilterMerger> merger;
  Status merge_status = Status::OK();
  Result<ShardedIngestStats> stats = StreamCsvShardArtifacts(
      csv_path, build,
      [&](ShardFilterArtifact artifact) -> Status {
        if (!merger.has_value()) {
          FilterMerger::Options merge_options;
          merge_options.backend = options_.backend;
          uint64_t r = 0, s = 0;
          ResolveShardSampleSizes(
              build,
              static_cast<uint32_t>(artifact.tuple_sample.num_attributes()),
              &r, &s);
          merge_options.tuple_sample_size = r;
          merge_options.detection = options_.detection;
          merge_options.seed = merge_seed;
          merger.emplace(merge_options);
        }
        merge_status = merger->Add(std::move(artifact));
        return merge_status;
      },
      [&]() -> uint64_t {
        return merger.has_value() ? merger->TrackedBytes() : 0;
      });
  if (!stats.ok()) return stats.status();
  if (!merge_status.ok()) return merge_status;
  if (!merger.has_value()) {
    return Status::InvalidArgument("CSV produced no shards");
  }
  Result<MergedFilter> merged = std::move(*merger).Finish();
  if (!merged.ok()) return merged.status();
  double ingest_millis = timer.ElapsedMillis();

  MergedInputs inputs = TakeMergedInputs(std::move(merged).ValueOrDie());
  Result<PipelineResult> result = FinishStages(
      std::move(inputs.sample), std::move(inputs.filter), 0.0);
  if (!result.ok()) return result;
  result->rows = inputs.total_rows;
  result->num_shards = inputs.num_shards;
  result->peak_tracked_bytes = stats->peak_tracked_bytes;
  result->stages.insert(result->stages.begin(),
                        PipelineStage{"ingest+merge", ingest_millis});
  result->total_millis += ingest_millis;
  return result;
}

Result<PipelineResult> DiscoveryPipeline::RunOnShardArtifacts(
    std::vector<ShardFilterArtifact> artifacts, uint64_t seed) const {
  QIKEY_RETURN_NOT_OK(ValidateOptions(options_));
  if (artifacts.empty()) {
    return Status::InvalidArgument("no shard artifacts");
  }
  Timer timer;
  FilterMerger::Options merge_options;
  merge_options.backend = options_.backend;
  uint64_t r = 0, s = 0;
  ResolveShardSampleSizes(
      MakeShardBuildOptions(options_),
      static_cast<uint32_t>(artifacts[0].tuple_sample.num_attributes()), &r,
      &s);
  merge_options.tuple_sample_size = r;
  merge_options.detection = options_.detection;
  merge_options.seed = seed;
  FilterMerger merger(merge_options);
  for (ShardFilterArtifact& artifact : artifacts) {
    QIKEY_RETURN_NOT_OK(merger.Add(std::move(artifact)));
  }
  Result<MergedFilter> merged = std::move(merger).Finish();
  if (!merged.ok()) return merged.status();
  double merge_millis = timer.ElapsedMillis();

  MergedInputs inputs = TakeMergedInputs(std::move(merged).ValueOrDie());
  Result<PipelineResult> result = FinishStages(
      std::move(inputs.sample), std::move(inputs.filter), 0.0);
  if (!result.ok()) return result;
  result->rows = inputs.total_rows;
  result->num_shards = inputs.num_shards;
  result->stages.insert(result->stages.begin(),
                        PipelineStage{"merge", merge_millis});
  result->total_millis += merge_millis;
  return result;
}

Result<PipelineResult> DiscoveryPipeline::RunStages(
    const Dataset* full, std::shared_ptr<Dataset> sample,
    std::vector<RowIndex> provenance, Rng* rng) const {
  // Stage: filter. The tuple backend reuses the greedy sample (the
  // filter IS its sample); the MX baseline draws an independent pair
  // sample from the full table, making the verify stage a genuine
  // cross-check.
  Timer timer;
  std::unique_ptr<SeparationFilter> filter;
  switch (options_.backend) {
    case FilterBackend::kTupleSample: {
      filter =
          std::make_unique<TupleSampleFilter>(TupleSampleFilter::FromSample(
              sample, std::move(provenance), options_.detection));
      break;
    }
    case FilterBackend::kBitset: {
      if (full == nullptr) {
        return Status::InvalidArgument(
            "bitset backend needs the full data set to sample pairs");
      }
      BitsetFilterOptions bitset;
      bitset.eps = options_.eps;
      bitset.sample_size = options_.pair_sample_size;
      Result<BitsetSeparationFilter> built =
          BitsetSeparationFilter::Build(*full, bitset, rng);
      if (!built.ok()) return built.status();
      filter = std::make_unique<BitsetSeparationFilter>(
          std::move(built).ValueOrDie());
      break;
    }
    case FilterBackend::kMxPair: {
      if (full == nullptr) {
        return Status::InvalidArgument(
            "MX backend needs the full data set to sample pairs");
      }
      MxPairFilterOptions mx;
      mx.eps = options_.eps;
      mx.sample_size = options_.pair_sample_size;
      Result<MxPairFilter> built = MxPairFilter::Build(*full, mx, rng);
      if (!built.ok()) return built.status();
      filter = std::make_unique<MxPairFilter>(std::move(built).ValueOrDie());
      break;
    }
  }
  return FinishStages(std::move(sample), std::move(filter),
                      timer.ElapsedMillis());
}

Result<PipelineResult> DiscoveryPipeline::FinishStages(
    std::shared_ptr<Dataset> sample, std::unique_ptr<SeparationFilter> filter,
    double filter_millis) const {
  PipelineResult out;
  out.attributes = sample->num_attributes();
  out.tuple_sample_size = sample->num_rows();

  size_t threads = ResolveThreads(options_.num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  out.filter_sample_size = filter->sample_size();
  out.filter_bytes = filter->MemoryBytes();
  out.stages.emplace_back("filter", filter_millis);
  Timer timer;

  // Stage: greedy set cover on (R choose 2) by partition refinement.
  timer.Restart();
  RefineEngine engine(*sample, options_.gain_strategy);
  engine.set_thread_pool(pool.get());
  RefineEngine::GreedyResult greedy =
      engine.RunGreedy(options_.max_attributes);
  out.key = std::move(greedy.chosen);
  out.covered_sample = greedy.is_sample_key;
  out.steps = std::move(greedy.steps);
  out.stages.emplace_back("greedy", timer.ElapsedMillis());

  // Stage: minimize. Greedy can leave an early pick redundant once
  // later attributes are in. Rejection is monotone under removal (a
  // pair agreeing on K\{a} agrees on any subset of it), so one batched
  // round over all single drops pins the never-removable members, and
  // one forward pass over the accepted ones finishes the job in O(k)
  // queries total.
  timer.Restart();
  if (options_.minimize && out.key.size() > 1) {
    std::vector<AttributeIndex> members = out.key.ToIndices();
    std::vector<AttributeSet> candidates;
    candidates.reserve(members.size());
    for (AttributeIndex a : members) {
      AttributeSet candidate = out.key;
      candidate.Remove(a);
      candidates.push_back(std::move(candidate));
    }
    std::vector<FilterVerdict> verdicts =
        filter->QueryBatch(candidates, pool.get());
    bool key_changed = false;
    for (size_t i = 0; i < members.size() && out.key.size() > 1; ++i) {
      if (verdicts[i] == FilterVerdict::kReject) continue;
      AttributeSet candidate = out.key;
      candidate.Remove(members[i]);
      // The batch verdict was against the pre-drop key; once the key
      // shrank, the smaller candidate needs a fresh query.
      if (key_changed &&
          filter->Query(candidate) != FilterVerdict::kAccept) {
        continue;
      }
      out.key = std::move(candidate);
      ++out.pruned_attributes;
      key_changed = true;
    }
    // A pair backend's sample is independent of the greedy tuple
    // sample, so a drop it accepts may uncover a sample pair; keep
    // `covered_sample` honest by re-checking against the sample.
    if (IsPairSampledBackend(options_.backend) && key_changed &&
        out.covered_sample) {
      out.covered_sample = KeySeparatesSample(*sample, out.key);
    }
  }
  out.stages.emplace_back("minimize", timer.ElapsedMillis());

  // Stage: verify the emitted key and surface a witness on rejection.
  timer.Restart();
  out.verdict = filter->Query(out.key);
  if (out.verdict == FilterVerdict::kReject) {
    out.witness = filter->QueryWitness(out.key);
  }
  out.stages.emplace_back("verify", timer.ElapsedMillis());

  for (const PipelineStage& s : out.stages) out.total_millis += s.millis;
  out.filter = std::move(filter);
  out.sample = std::move(sample);
  return out;
}

std::string PipelineResult::Report(const Schema* schema) const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "discovery: %llu rows x %llu attributes\n",
                static_cast<unsigned long long>(rows),
                static_cast<unsigned long long>(attributes));
  out += line;
  std::snprintf(line, sizeof(line),
                "  key: %zu attribute(s), %u pruned by minimization\n",
                key.size(), pruned_attributes);
  out += line;
  out += "    " + key.ToString(schema) + "\n";
  std::snprintf(line, sizeof(line),
                "  verify: %s (sample covered: %s)\n",
                verdict == FilterVerdict::kAccept ? "ACCEPT" : "REJECT",
                covered_sample ? "yes" : "no");
  out += line;
  if (witness.has_value()) {
    std::snprintf(line, sizeof(line),
                  "  witness: rows %u and %u agree on the key\n",
                  witness->first, witness->second);
    out += line;
  }
  std::snprintf(
      line, sizeof(line),
      "  filter: %llu samples, %llu bytes; greedy sample: %llu tuples\n",
      static_cast<unsigned long long>(filter_sample_size),
      static_cast<unsigned long long>(filter_bytes),
      static_cast<unsigned long long>(tuple_sample_size));
  out += line;
  if (num_shards > 0) {
    std::snprintf(line, sizeof(line),
                  "  sharded: %llu shard(s), peak tracked %llu bytes\n",
                  static_cast<unsigned long long>(num_shards),
                  static_cast<unsigned long long>(peak_tracked_bytes));
    out += line;
  }
  out += "  stages:";
  for (const PipelineStage& s : stages) {
    std::snprintf(line, sizeof(line), " %s %.2fms |", s.name.c_str(),
                  s.millis);
    out += line;
  }
  std::snprintf(line, sizeof(line), " total %.2fms\n", total_millis);
  out += line;
  if (!steps.empty()) {
    out += "  greedy trace:";
    for (const RefineEngine::Step& s : steps) {
      // += instead of "a" + to_string: gcc 12 -Wrestrict FP (PR105651).
      std::string attr = "a";
      attr += std::to_string(s.chosen);
      if (schema != nullptr) attr = schema->name(s.chosen);
      std::snprintf(line, sizeof(line), " %s(+%llu)", attr.c_str(),
                    static_cast<unsigned long long>(s.gain));
      out += line;
    }
    out += "\n";
  }
  return out;
}

}  // namespace qikey
