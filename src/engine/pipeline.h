#ifndef QIKEY_ENGINE_PIPELINE_H_
#define QIKEY_ENGINE_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/attribute_set.h"
#include "core/filter.h"
#include "core/mx_pair_filter.h"
#include "core/refine_engine.h"
#include "core/tuple_sample_filter.h"
#include "data/dataset.h"
#include "monitor/key_monitor.h"
#include "shard/shard_artifact.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/status.h"

namespace qikey {

/// Options for `DiscoveryPipeline`. Defaults reproduce the paper's
/// Table-1 regime serially; `num_threads` > 1 parallelizes the greedy
/// gain scans and every batched filter query on one shared pool.
struct PipelineOptions {
  double eps = 0.001;
  FilterBackend backend = FilterBackend::kTupleSample;
  GainStrategy gain_strategy = GainStrategy::kLookupTable;
  DuplicateDetection detection = DuplicateDetection::kSort;
  /// Tuples retained for the greedy sample; 0 = `TupleSampleSizePaper`.
  uint64_t sample_size = 0;
  /// Pairs retained by the MX backend; 0 = `MxPairSampleSizePaper`.
  uint64_t pair_sample_size = 0;
  /// Worker threads; 1 = serial, 0 = one per hardware thread.
  size_t num_threads = 1;
  /// Stop greedy after this many attributes.
  size_t max_attributes = ~size_t{0};
  /// Run the batched minimization pass on the greedy key.
  bool minimize = true;
};

/// Wall-clock cost of one pipeline stage.
struct PipelineStage {
  std::string name;
  double millis = 0.0;
};

/// How `RunSharded` splits and ingests the input.
struct ShardedRunOptions {
  /// Shard count; 0 = one per worker thread.
  size_t num_shards = 0;
  /// Streaming mode: rows per ingest chunk (0 = derived default).
  size_t shard_rows = 0;
  /// When > 0, the CSV entry point ingests sequentially with bounded
  /// memory and fails (OutOfRange) if the tracked live bytes — chunk,
  /// dictionaries, merged filter — ever exceed this budget. When 0, the
  /// CSV entry point fans record-aligned byte ranges out over the
  /// worker threads (each parsing with private dictionaries).
  uint64_t memory_budget_bytes = 0;
  CsvOptions csv;
};

/// Everything the pipeline learned about one data set.
struct PipelineResult {
  /// The emitted quasi-identifier (after minimization when enabled).
  AttributeSet key;
  /// True iff the greedy sample was fully separated by `key`.
  bool covered_sample = false;
  /// The backend filter's verdict on `key` (the verify stage).
  FilterVerdict verdict = FilterVerdict::kAccept;
  /// When the verify stage rejects: a pair of original rows that `key`
  /// fails to separate.
  std::optional<std::pair<RowIndex, RowIndex>> witness;
  /// Greedy trace (attribute picked and pairs newly covered per round).
  std::vector<RefineEngine::Step> steps;
  /// Attributes removed from the greedy key by the minimization pass.
  uint32_t pruned_attributes = 0;

  uint64_t rows = 0;
  uint64_t attributes = 0;
  uint64_t tuple_sample_size = 0;   ///< rows retained for greedy
  uint64_t filter_sample_size = 0;  ///< tuples or pairs in the filter
  uint64_t filter_bytes = 0;        ///< filter memory footprint
  uint64_t num_shards = 0;          ///< > 0 when built by RunSharded
  /// RunSharded: peak live ingest bytes (chunk + dictionaries + merged
  /// state); the number the memory budget bounds.
  uint64_t peak_tracked_bytes = 0;

  std::vector<PipelineStage> stages;
  double total_millis = 0.0;

  /// The verify-stage filter and the greedy sample it cross-checked,
  /// shared out of the run so the result is directly loadable into a
  /// `ServeSnapshot` (serve/snapshot.h) without re-running discovery.
  /// Always set on a successful run.
  std::shared_ptr<const SeparationFilter> filter;
  std::shared_ptr<const Dataset> sample;

  /// Multi-line human-readable summary (names resolved via `schema`).
  std::string Report(const Schema* schema = nullptr) const;
};

/// \brief End-to-end quasi-identifier discovery: the full workflow of
/// the paper run as one orchestrated, instrumented pass.
///
/// Stages:
///   1. sample   — draw the `Θ(m/√ε)` tuple sample (or consume a
///                 reservoir already drawn from a stream);
///   2. filter   — build the configured `SeparationFilter`;
///   3. greedy   — `RefineEngine::RunGreedy` on the sample (partition
///                 refinement, optionally thread-parallel gains);
///   4. minimize — drop redundant greedy picks, one batched
///                 `QueryBatch` per round;
///   5. verify   — query the emitted key against the filter and report
///                 a witness pair when it is rejected.
///
/// Results are deterministic for a fixed seed regardless of
/// `num_threads`.
class DiscoveryPipeline {
 public:
  explicit DiscoveryPipeline(const PipelineOptions& options)
      : options_(options) {}

  /// Runs all stages against an in-memory data set.
  Result<PipelineResult> Run(const Dataset& dataset, Rng* rng) const;

  /// Streaming entry: consumes a tuple reservoir already drawn from a
  /// stream (e.g. `StreamingTupleFilterBuilder`'s sample), skipping the
  /// sample stage. `provenance[i]`, when non-empty, is the original
  /// stream position of sample row `i` (used for witness reporting).
  /// Only the tuple-sample backend is available — the MX baseline needs
  /// pair sampling the reservoir cannot provide.
  Result<PipelineResult> RunOnReservoir(
      const Dataset& sample, std::vector<RowIndex> provenance) const;

  /// Incremental entry: primes a `KeyMonitor` with `initial` (which may
  /// be empty) under this pipeline's options and returns it ready for
  /// live `Insert`/`Erase` traffic. Where `Run` answers once,
  /// the monitor keeps the minimal-key frontier — and with it the
  /// emitted quasi-identifier — current under updates without
  /// re-running sample→filter→greedy→minimize. `max_key_size` caps the
  /// tracked frontier (see `MonitorOptions`).
  Result<std::unique_ptr<KeyMonitor>> RunIncremental(
      const Dataset& initial, uint32_t max_key_size, uint64_t seed) const;

  /// \brief Scale-out entry: splits the data set into row-range shards,
  /// samples each independently (in parallel), merges the per-shard
  /// filters (`FilterMerger`) and runs greedy/minimize/verify on the
  /// merged state. Same minimal-key behavior as `Run` — the merged
  /// sample is distributed exactly as a single-pass draw — with filter
  /// construction spread across cores. Deterministic for a fixed seed
  /// at any thread count.
  Result<PipelineResult> RunSharded(const Dataset& dataset,
                                    const ShardedRunOptions& sharded,
                                    uint64_t seed) const;

  /// \brief Out-of-core entry: ingests a CSV file directly. With a
  /// memory budget, single-passes the file in bounded chunks (shared
  /// dictionary, eager merge — peak memory independent of file size);
  /// without one, fans record-aligned byte ranges out over workers.
  Result<PipelineResult> RunSharded(const std::string& csv_path,
                                    const ShardedRunOptions& sharded,
                                    uint64_t seed) const;

  /// \brief Central-merge entry: consumes shard artifacts built
  /// elsewhere (other processes, `ReadShardArtifactFile`) and finishes
  /// discovery on the merged filter.
  Result<PipelineResult> RunOnShardArtifacts(
      std::vector<ShardFilterArtifact> artifacts, uint64_t seed) const;

  const PipelineOptions& options() const { return options_; }

 private:
  Result<PipelineResult> RunStages(const Dataset* full,
                                   std::shared_ptr<Dataset> sample,
                                   std::vector<RowIndex> provenance,
                                   Rng* rng) const;

  /// Shared tail: greedy -> minimize -> verify on a prebuilt filter.
  Result<PipelineResult> FinishStages(std::shared_ptr<Dataset> sample,
                                      std::unique_ptr<SeparationFilter> filter,
                                      double filter_millis) const;

  PipelineOptions options_;
};

}  // namespace qikey

#endif  // QIKEY_ENGINE_PIPELINE_H_
