#ifndef QIKEY_SHARD_SHARDED_LOADER_H_
#define QIKEY_SHARD_SHARDED_LOADER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/dictionary.h"
#include "util/csv.h"
#include "util/status.h"

namespace qikey {

/// One shard's slice of a CSV file: a byte range holding a contiguous
/// run of data records, with its global row range.
struct ShardRange {
  uint64_t byte_begin = 0;  ///< offset of the range's first record
  uint64_t byte_end = 0;    ///< offset one past the range's last record
  uint64_t first_row = 0;   ///< global index of the first data row
  uint64_t num_rows = 0;    ///< data rows (blank records excluded)
};

/// A parallel-ingest plan for one CSV file: attribute names (from the
/// header, or anonymous) and near-equal record ranges whose boundaries
/// respect RFC-4180 quoting — a newline inside a quoted field never
/// splits a shard.
struct CsvShardPlan {
  std::vector<std::string> attribute_names;
  uint64_t total_rows = 0;
  std::vector<ShardRange> ranges;
};

/// \brief Single quote-aware pass over `path` that locates record
/// boundaries and splits the data records into (up to) `num_shards`
/// contiguous ranges, each with at least two rows.
///
/// Memory is bounded: boundary candidates are kept as stride-compacted
/// marks (the stride doubles whenever 64Ki marks accumulate), so shard
/// boundaries land within one stride of the ideal even split. The scan
/// does not parse fields — it only tracks quote state — and is several
/// times cheaper than a full parse, which is what makes the parse
/// itself worth fanning out over the ranges afterwards.
Result<CsvShardPlan> PlanCsvShards(const std::string& path, size_t num_shards,
                                   const CsvOptions& options = {});

/// Attribute names of a CSV file — the header record, or anonymous
/// names matching the first record's width. Reads one record, not the
/// file.
Result<std::vector<std::string>> ReadCsvAttributeNames(
    const std::string& path, const CsvOptions& options = {});

/// \brief Streams the data records of `range` (in file order), invoking
/// `fn` with the split fields of each. Blank records are skipped; reads
/// stop at `range.byte_end` / `range.num_rows`. Each call opens its own
/// stream, so ranges can be consumed from concurrent workers.
Status ForEachCsvRecordInRange(
    const std::string& path, const ShardRange& range,
    const CsvOptions& options,
    const std::function<Status(const std::vector<std::string>&)>& fn);

/// Options for `ShardedLoader`.
struct ShardedLoaderOptions {
  /// Rows per shard; 0 derives it from the memory budget (or a default
  /// of 64Ki rows when no budget is set). Shards always get >= 2 rows.
  size_t shard_rows = 0;
  /// When > 0, `Load` fails with OutOfRange if the tracked live bytes
  /// (current chunk + dictionaries + whatever the consumer reports)
  /// ever exceed this budget — the out-of-core contract.
  uint64_t memory_budget_bytes = 0;
  CsvOptions csv;
};

/// One ingested chunk: a fixed-size row range of the input, encoded
/// against the loader's SHARED dictionaries (codes of all chunks
/// compare directly).
struct ShardInput {
  Dataset rows;
  uint32_t shard_index = 0;
  uint64_t first_row = 0;
};

/// What one ingest pass did, for reporting and the benches' memory
/// assertions.
struct ShardedIngestStats {
  uint64_t total_rows = 0;
  uint64_t num_shards = 0;
  /// Max over time of: live chunk bytes + dictionary bytes + the
  /// consumer-reported bytes. The loader's peak footprint.
  uint64_t peak_tracked_bytes = 0;
  uint64_t dictionary_bytes = 0;
};

/// \brief Chunked, bounded-memory CSV ingest: single-passes the file,
/// dictionary-encodes incrementally into one shared per-column
/// dictionary, and hands fixed-size row-range chunks to `consumer`
/// without ever holding more than one chunk — the ingest path for
/// tables larger than RAM.
///
/// `consumer_tracked`, when provided, reports the consumer's current
/// live bytes (e.g. the running merged filter) so the budget check
/// covers the whole pipeline, not just the loader.
class ShardedLoader {
 public:
  explicit ShardedLoader(const ShardedLoaderOptions& options)
      : options_(options) {}

  Result<ShardedIngestStats> Load(
      const std::string& path,
      const std::function<Status(ShardInput)>& consumer,
      const std::function<uint64_t()>& consumer_tracked = nullptr);

  /// The shared per-column dictionaries (valid after `Load`).
  const std::vector<std::shared_ptr<Dictionary>>& dictionaries() const {
    return dictionaries_;
  }

 private:
  ShardedLoaderOptions options_;
  std::vector<std::shared_ptr<Dictionary>> dictionaries_;
};

}  // namespace qikey

#endif  // QIKEY_SHARD_SHARDED_LOADER_H_
