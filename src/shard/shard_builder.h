#ifndef QIKEY_SHARD_SHARD_BUILDER_H_
#define QIKEY_SHARD_SHARD_BUILDER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/filter.h"
#include "data/dataset.h"
#include "shard/shard_artifact.h"
#include "shard/sharded_loader.h"
#include "util/rng.h"
#include "util/status.h"

namespace qikey {

/// Options shared by every shard-construction path.
struct ShardedBuildOptions {
  FilterBackend backend = FilterBackend::kTupleSample;
  double eps = 0.001;
  /// Tuples each shard retains; 0 = `TupleSampleSizePaper(m, eps)`.
  /// Every shard samples at the full target rate so the merged sample
  /// is a uniform target-size draw from the whole relation.
  uint64_t tuple_sample_size = 0;
  /// MX pair slots per shard; 0 = `MxPairSampleSizePaper(m, eps)`.
  uint64_t pair_slots = 0;
  /// Shard count; 0 = one per worker thread.
  size_t num_shards = 0;
  /// Workers for the parallel builders; 1 = serial, 0 = hardware.
  size_t num_threads = 1;
  uint64_t seed = 1;
  CsvOptions csv;
  /// Streaming mode only: see `ShardedLoaderOptions`.
  size_t shard_rows = 0;
  uint64_t memory_budget_bytes = 0;
};

/// \brief Streaming construction of ONE shard's artifact: rows are
/// offered once, the tuple reservoir and (for the MX backend) the
/// per-slot pair reservoirs retain `O(sample)` state, and `Finish`
/// materializes the artifact. The raw shard is never held.
///
/// Each builder owns private dictionaries, so builders can run in
/// different threads — or different processes — with zero coordination;
/// the merge re-encodes.
class ShardArtifactBuilder {
 public:
  ShardArtifactBuilder(std::vector<std::string> attribute_names,
                       FilterBackend backend, uint64_t tuple_sample_size,
                       uint64_t pair_slots, uint32_t shard_index,
                       uint64_t first_row, uint64_t seed);
  ~ShardArtifactBuilder();

  ShardArtifactBuilder(ShardArtifactBuilder&&) noexcept;
  ShardArtifactBuilder& operator=(ShardArtifactBuilder&&) noexcept = delete;

  /// Offers the next row of the shard (string fields, CSV path).
  Status OfferFields(const std::vector<std::string>& fields);

  uint64_t rows_seen() const;

  /// Live bytes retained (reservoirs, pair payloads, dictionaries).
  uint64_t TrackedBytes() const;

  Result<ShardFilterArtifact> Finish() &&;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// \brief Builds every shard artifact for an in-memory data set by
/// splitting it into near-equal row ranges and sampling each range
/// independently (in parallel when `num_threads > 1`). Deterministic
/// for a fixed seed at any thread count.
Result<std::vector<ShardFilterArtifact>> BuildShardArtifacts(
    const Dataset& dataset, const ShardedBuildOptions& options);

/// \brief Scale-out CSV construction: plans record-aligned byte ranges
/// (`PlanCsvShards`), then parses, encodes, and samples every range on
/// its own worker with private dictionaries. This parallelizes the
/// dominant ingest cost (parse + encode); per-worker memory is
/// `O(sample + dictionary)`, not `O(rows)`.
Result<std::vector<ShardFilterArtifact>> BuildShardArtifactsFromCsv(
    const std::string& path, const ShardedBuildOptions& options);

/// \brief Bounded-memory sequential construction: single-passes the
/// file through `ShardedLoader` (shared dictionary, one chunk resident)
/// and emits one artifact per chunk to `consumer` — which typically
/// folds it into a `FilterMerger` immediately, keeping the whole run
/// within the memory budget. `consumer_tracked` joins the budget check.
Result<ShardedIngestStats> StreamCsvShardArtifacts(
    const std::string& path, const ShardedBuildOptions& options,
    const std::function<Status(ShardFilterArtifact)>& consumer,
    const std::function<uint64_t()>& consumer_tracked = nullptr);

/// Samples one artifact from a materialized chunk (rows already
/// encoded). Used by the streaming path and by tests.
Result<ShardFilterArtifact> BuildArtifactFromChunk(
    const Dataset& chunk, uint64_t first_row, uint32_t shard_index,
    FilterBackend backend, uint64_t tuple_sample_size, uint64_t pair_slots,
    Rng* rng);

/// Resolves the 0-defaulted sample sizes against `m` attributes.
void ResolveShardSampleSizes(const ShardedBuildOptions& options, uint32_t m,
                             uint64_t* tuple_sample_size,
                             uint64_t* pair_slots);

}  // namespace qikey

#endif  // QIKEY_SHARD_SHARD_BUILDER_H_
