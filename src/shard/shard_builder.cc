#include "shard/shard_builder.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/sample_bounds.h"
#include "data/dataset_builder.h"
#include "data/schema.h"
#include "stream/pair_reservoir.h"
#include "stream/reservoir.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace qikey {

namespace {

/// Columns from sampled rows, sharing `dicts` (cardinality = dictionary
/// size so codes always validate).
Dataset RowsToDataset(const std::vector<std::string>& names,
                      const std::vector<std::shared_ptr<Dictionary>>& dicts,
                      const std::vector<std::vector<ValueCode>>& rows) {
  const size_t m = names.size();
  std::vector<Column> columns;
  columns.reserve(m);
  for (size_t j = 0; j < m; ++j) {
    std::vector<ValueCode> codes;
    codes.reserve(rows.size());
    for (const auto& row : rows) codes.push_back(row[j]);
    uint32_t cardinality =
        std::max<uint32_t>(1, static_cast<uint32_t>(dicts[j]->size()));
    columns.emplace_back(std::move(codes), cardinality, dicts[j]);
  }
  return Dataset(Schema(names), std::move(columns));
}

size_t ResolveThreads(size_t num_threads) {
  if (num_threads > 0) return num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

void ResolveShardSampleSizes(const ShardedBuildOptions& options, uint32_t m,
                             uint64_t* tuple_sample_size,
                             uint64_t* pair_slots) {
  *tuple_sample_size = options.tuple_sample_size > 0
                           ? options.tuple_sample_size
                           : TupleSampleSizePaper(m, options.eps);
  *pair_slots = options.pair_slots > 0 ? options.pair_slots
                                       : MxPairSampleSizePaper(m, options.eps);
}

// ---------------------------------------------------------------------------
// ShardArtifactBuilder

struct ShardArtifactBuilder::Impl {
  std::vector<std::string> names;
  std::vector<std::shared_ptr<Dictionary>> dicts;
  FilterBackend backend;
  uint32_t shard_index;
  uint64_t first_row;
  Rng rng;

  // Tuple side: reservoir of (codes, local position).
  ReservoirSampler<std::pair<std::vector<ValueCode>, uint64_t>> tuples;
  // MX side: per-slot pair reservoirs over positions + retained payloads.
  std::unique_ptr<PairReservoir> pairs;
  std::unordered_map<uint64_t, std::vector<ValueCode>> payloads;
  uint64_t next_gc = 1024;
  uint64_t dict_bytes = 0;

  Impl(std::vector<std::string> names_in, FilterBackend backend_in,
       uint64_t tuple_sample_size, uint64_t pair_slots,
       uint32_t shard_index_in, uint64_t first_row_in, uint64_t seed)
      : names(std::move(names_in)),
        backend(backend_in),
        shard_index(shard_index_in),
        first_row(first_row_in),
        rng(seed),
        tuples(static_cast<size_t>(tuple_sample_size), &rng) {
    dicts.reserve(names.size());
    for (size_t j = 0; j < names.size(); ++j) {
      dicts.push_back(std::make_shared<Dictionary>());
    }
    if (IsPairSampledBackend(backend)) {
      pairs = std::make_unique<PairReservoir>(
          static_cast<size_t>(pair_slots), &rng);
    }
  }

  void CollectGarbage() {
    std::unordered_set<uint64_t> live;
    live.reserve(2 * pairs->num_slots());
    for (const auto& [a, b] : pairs->pairs()) {
      live.insert(a);
      live.insert(b);
    }
    for (auto it = payloads.begin(); it != payloads.end();) {
      it = live.count(it->first) == 0 ? payloads.erase(it) : std::next(it);
    }
  }
};

ShardArtifactBuilder::ShardArtifactBuilder(
    std::vector<std::string> attribute_names, FilterBackend backend,
    uint64_t tuple_sample_size, uint64_t pair_slots, uint32_t shard_index,
    uint64_t first_row, uint64_t seed)
    : impl_(std::make_unique<Impl>(std::move(attribute_names), backend,
                                   tuple_sample_size, pair_slots, shard_index,
                                   first_row, seed)) {}

ShardArtifactBuilder::~ShardArtifactBuilder() = default;
ShardArtifactBuilder::ShardArtifactBuilder(ShardArtifactBuilder&&) noexcept =
    default;

Status ShardArtifactBuilder::OfferFields(
    const std::vector<std::string>& fields) {
  Impl& im = *impl_;
  if (fields.size() != im.names.size()) {
    return Status::InvalidArgument("row arity mismatch in shard");
  }
  std::vector<ValueCode> row;
  row.reserve(fields.size());
  for (size_t j = 0; j < fields.size(); ++j) {
    size_t before = im.dicts[j]->size();
    row.push_back(im.dicts[j]->GetOrAdd(fields[j]));
    if (im.dicts[j]->size() != before) {
      im.dict_bytes += fields[j].size() + 2 * sizeof(void*);
    }
  }
  uint64_t pos = im.tuples.seen();  // local position of this row
  if (im.pairs != nullptr) {
    if (im.pairs->Offer()) im.payloads[pos] = row;
    if (im.payloads.size() >= im.next_gc) {
      im.CollectGarbage();
      im.next_gc =
          std::max<uint64_t>(4 * im.pairs->num_slots(), 1024) +
          im.payloads.size();
    }
  }
  im.tuples.Offer({std::move(row), pos});
  return Status::OK();
}

uint64_t ShardArtifactBuilder::rows_seen() const {
  return impl_->tuples.seen();
}

uint64_t ShardArtifactBuilder::TrackedBytes() const {
  const Impl& im = *impl_;
  const uint64_t row_bytes = im.names.size() * sizeof(ValueCode);
  uint64_t bytes = im.dict_bytes + im.tuples.items().size() * row_bytes;
  bytes += im.payloads.size() * (row_bytes + 4 * sizeof(uint64_t));
  return bytes;
}

Result<ShardFilterArtifact> ShardArtifactBuilder::Finish() && {
  Impl& im = *impl_;
  uint64_t seen = im.tuples.seen();
  if (seen < 2) {
    return Status::InvalidArgument("shard has fewer than two rows");
  }
  if (im.first_row + seen > static_cast<uint64_t>(~RowIndex{0})) {
    return Status::InvalidArgument("shard rows exceed RowIndex range");
  }
  ShardFilterArtifact artifact;
  artifact.shard_index = im.shard_index;
  artifact.first_row = im.first_row;
  artifact.rows_seen = seen;
  artifact.backend = im.backend;

  std::vector<std::vector<ValueCode>> sample_rows;
  sample_rows.reserve(im.tuples.items().size());
  artifact.provenance.reserve(im.tuples.items().size());
  for (auto& [codes, pos] : std::move(im.tuples).TakeItems()) {
    sample_rows.push_back(std::move(codes));
    artifact.provenance.push_back(
        static_cast<RowIndex>(im.first_row + pos));
  }
  artifact.tuple_sample = RowsToDataset(im.names, im.dicts, sample_rows);

  if (im.pairs != nullptr) {
    im.CollectGarbage();
    std::vector<std::vector<ValueCode>> pair_rows;
    pair_rows.reserve(2 * im.pairs->num_slots());
    for (const auto& [a, b] : im.pairs->pairs()) {
      auto ia = im.payloads.find(a);
      auto ib = im.payloads.find(b);
      QIKEY_CHECK(ia != im.payloads.end() && ib != im.payloads.end())
          << "payload lost for a sampled pair position";
      pair_rows.push_back(ia->second);
      pair_rows.push_back(ib->second);
    }
    artifact.pair_table = RowsToDataset(im.names, im.dicts, pair_rows);
  }
  return artifact;
}

// ---------------------------------------------------------------------------
// In-memory construction

Result<std::vector<ShardFilterArtifact>> BuildShardArtifacts(
    const Dataset& dataset, const ShardedBuildOptions& options) {
  const uint64_t n = dataset.num_rows();
  if (n < 2) return Status::InvalidArgument("need at least two rows");
  size_t threads = ResolveThreads(options.num_threads);
  size_t shards = options.num_shards > 0 ? options.num_shards : threads;
  shards = static_cast<size_t>(
      std::min<uint64_t>(shards, std::max<uint64_t>(1, n / 2)));
  uint64_t r = 0, s = 0;
  ResolveShardSampleSizes(
      options, static_cast<uint32_t>(dataset.num_attributes()), &r, &s);

  // Per-shard seeds drawn up front: deterministic at any thread count.
  Rng seeder(options.seed);
  std::vector<uint64_t> seeds(shards);
  for (auto& seed : seeds) seed = seeder.Next();

  std::vector<ShardFilterArtifact> artifacts(shards);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1 && shards > 1) pool = std::make_unique<ThreadPool>(threads);
  ThreadPool::ParallelFor(pool.get(), shards, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      // Sample the row range [lo, hi) in place — no chunk copy.
      // (Nothing here is fallible: ranges hold >= 2 rows by the shard
      // clamp above, and sampling cannot fail.)
      const uint64_t lo = n * i / shards;
      const uint64_t range_n = n * (i + 1) / shards - lo;
      Rng rng(seeds[i]);
      ShardFilterArtifact artifact;
      artifact.shard_index = static_cast<uint32_t>(i);
      artifact.first_row = lo;
      artifact.rows_seen = range_n;
      artifact.backend = options.backend;
      uint64_t keep = std::min(r, range_n);
      std::vector<RowIndex> rows;
      rows.reserve(static_cast<size_t>(keep));
      for (uint64_t local : rng.SampleWithoutReplacement(range_n, keep)) {
        rows.push_back(static_cast<RowIndex>(lo + local));
      }
      artifact.tuple_sample = dataset.SelectRows(rows);
      artifact.provenance = std::move(rows);
      if (IsPairSampledBackend(options.backend)) {
        std::vector<RowIndex> pair_rows;
        pair_rows.reserve(2 * static_cast<size_t>(s));
        for (uint64_t p = 0; p < s; ++p) {
          auto [a, b] = rng.SamplePair(range_n);
          pair_rows.push_back(static_cast<RowIndex>(lo + a));
          pair_rows.push_back(static_cast<RowIndex>(lo + b));
        }
        artifact.pair_table = dataset.SelectRows(pair_rows);
      }
      artifacts[i] = std::move(artifact);
    }
  });
  return artifacts;
}

Result<ShardFilterArtifact> BuildArtifactFromChunk(
    const Dataset& chunk, uint64_t first_row, uint32_t shard_index,
    FilterBackend backend, uint64_t tuple_sample_size, uint64_t pair_slots,
    Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  const uint64_t n = chunk.num_rows();
  if (n < 2) return Status::InvalidArgument("shard has fewer than two rows");
  if (first_row + n > static_cast<uint64_t>(~RowIndex{0})) {
    return Status::InvalidArgument("shard rows exceed RowIndex range");
  }
  if (tuple_sample_size == 0) {
    return Status::InvalidArgument("tuple sample size must be positive");
  }
  ShardFilterArtifact artifact;
  artifact.shard_index = shard_index;
  artifact.first_row = first_row;
  artifact.rows_seen = n;
  artifact.backend = backend;

  uint64_t keep = std::min(tuple_sample_size, n);
  std::vector<uint64_t> chosen = rng->SampleWithoutReplacement(n, keep);
  std::vector<RowIndex> rows(chosen.begin(), chosen.end());
  artifact.tuple_sample = chunk.SelectRows(rows);
  artifact.provenance.reserve(rows.size());
  for (RowIndex row : rows) {
    artifact.provenance.push_back(static_cast<RowIndex>(first_row + row));
  }

  if (IsPairSampledBackend(backend)) {
    if (pair_slots == 0) {
      return Status::InvalidArgument("pair slot count must be positive");
    }
    std::vector<RowIndex> pair_rows;
    pair_rows.reserve(2 * static_cast<size_t>(pair_slots));
    for (uint64_t i = 0; i < pair_slots; ++i) {
      auto [a, b] = rng->SamplePair(n);
      pair_rows.push_back(static_cast<RowIndex>(a));
      pair_rows.push_back(static_cast<RowIndex>(b));
    }
    artifact.pair_table = chunk.SelectRows(pair_rows);
  }
  return artifact;
}

// ---------------------------------------------------------------------------
// CSV construction

Result<std::vector<ShardFilterArtifact>> BuildShardArtifactsFromCsv(
    const std::string& path, const ShardedBuildOptions& options) {
  size_t threads = ResolveThreads(options.num_threads);
  size_t shards = options.num_shards > 0 ? options.num_shards : threads;
  Result<CsvShardPlan> plan = PlanCsvShards(path, shards, options.csv);
  if (!plan.ok()) return plan.status();
  if (plan->total_rows < 2) {
    return Status::InvalidArgument("CSV has fewer than two data rows");
  }
  uint64_t r = 0, s = 0;
  ResolveShardSampleSizes(
      options, static_cast<uint32_t>(plan->attribute_names.size()), &r, &s);

  const size_t actual = plan->ranges.size();
  Rng seeder(options.seed);
  std::vector<uint64_t> seeds(actual);
  for (auto& seed : seeds) seed = seeder.Next();

  std::vector<ShardFilterArtifact> artifacts(actual);
  std::vector<Status> statuses(actual);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1 && actual > 1) pool = std::make_unique<ThreadPool>(threads);
  ThreadPool::ParallelFor(pool.get(), actual, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const ShardRange& range = plan->ranges[i];
      ShardArtifactBuilder builder(plan->attribute_names, options.backend, r,
                                   s, static_cast<uint32_t>(i),
                                   range.first_row, seeds[i]);
      Status st = ForEachCsvRecordInRange(
          path, range, options.csv,
          [&](const std::vector<std::string>& fields) {
            return builder.OfferFields(fields);
          });
      if (st.ok()) {
        Result<ShardFilterArtifact> built = std::move(builder).Finish();
        if (built.ok()) {
          artifacts[i] = std::move(built).ValueOrDie();
        } else {
          st = built.status();
        }
      }
      statuses[i] = st;
    }
  });
  for (const Status& st : statuses) QIKEY_RETURN_NOT_OK(st);
  return artifacts;
}

Result<ShardedIngestStats> StreamCsvShardArtifacts(
    const std::string& path, const ShardedBuildOptions& options,
    const std::function<Status(ShardFilterArtifact)>& consumer,
    const std::function<uint64_t()>& consumer_tracked) {
  ShardedLoaderOptions loader_options;
  loader_options.shard_rows = options.shard_rows;
  loader_options.memory_budget_bytes = options.memory_budget_bytes;
  loader_options.csv = options.csv;
  ShardedLoader loader(loader_options);

  Rng seeder(options.seed);
  uint64_t r = 0, s = 0;
  bool resolved = false;
  Status inner = Status::OK();
  Result<ShardedIngestStats> stats = loader.Load(
      path,
      [&](ShardInput chunk) -> Status {
        if (!resolved) {
          ResolveShardSampleSizes(
              options, static_cast<uint32_t>(chunk.rows.num_attributes()),
              &r, &s);
          resolved = true;
        }
        Rng rng(seeder.Next());
        Result<ShardFilterArtifact> built = BuildArtifactFromChunk(
            chunk.rows, chunk.first_row, chunk.shard_index, options.backend,
            r, s, &rng);
        if (!built.ok()) {
          inner = built.status();
          return inner;
        }
        return consumer(std::move(built).ValueOrDie());
      },
      consumer_tracked);
  if (!stats.ok() && !inner.ok()) return inner;
  return stats;
}

}  // namespace qikey
