#ifndef QIKEY_SHARD_SHARD_ARTIFACT_H_
#define QIKEY_SHARD_SHARD_ARTIFACT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/filter.h"
#include "data/dataset.h"
#include "util/status.h"

namespace qikey {

/// \brief Everything one shard contributes to a merged filter: the
/// shard's uniform tuple sample (always — the merged pipeline runs
/// greedy refinement on the merged tuple sample even under the MX
/// backend), its materialized pair slots (MX backend only), and the
/// bookkeeping the merge needs (row range and how many rows the samples
/// were drawn from).
///
/// Artifacts are the unit of scale-out: shards can be built in
/// separate processes — each with its own dictionaries — persisted with
/// `WriteShardArtifactFile`, shipped, and merged centrally by
/// `FilterMerger`. Merging re-encodes values, so per-process
/// dictionaries need no coordination.
struct ShardFilterArtifact {
  uint32_t shard_index = 0;
  /// Global index of the shard's first row (provenance base).
  uint64_t first_row = 0;
  /// Rows of the original relation this shard's samples were drawn
  /// from. The merge weights are these counts.
  uint64_t rows_seen = 0;
  FilterBackend backend = FilterBackend::kTupleSample;

  /// Uniform tuple sample of the shard (`min(target, rows_seen)` rows).
  Dataset tuple_sample;
  /// Global original-row index of each sample row.
  std::vector<RowIndex> provenance;

  /// MX backend: materialized pair table (rows `2i`, `2i+1` = slot `i`).
  Dataset pair_table;

  /// Bytes retained by the samples (budget accounting).
  uint64_t MemoryBytes() const;
};

/// Versioned byte serialization (dataset payloads reuse
/// `SerializeDataset`; see data/serialize.h).
std::string SerializeShardArtifact(const ShardFilterArtifact& artifact);

/// Restores an artifact; returns InvalidArgument (never crashes) on
/// truncated or corrupted bytes.
Result<ShardFilterArtifact> DeserializeShardArtifact(std::string_view bytes);

/// File-backed variants.
Status WriteShardArtifactFile(const ShardFilterArtifact& artifact,
                              const std::string& path);
Result<ShardFilterArtifact> ReadShardArtifactFile(const std::string& path);

}  // namespace qikey

#endif  // QIKEY_SHARD_SHARD_ARTIFACT_H_
