#ifndef QIKEY_SHARD_FILTER_MERGER_H_
#define QIKEY_SHARD_FILTER_MERGER_H_

#include <cstdint>
#include <map>
#include <optional>

#include "core/mx_pair_filter.h"
#include "core/tuple_sample_filter.h"
#include "shard/shard_artifact.h"
#include "util/rng.h"
#include "util/status.h"

namespace qikey {

/// The outcome of merging every shard: filters whose retained state is
/// distributed exactly as a single-pass build over the whole relation.
struct MergedFilter {
  FilterBackend backend = FilterBackend::kTupleSample;
  /// Merged uniform tuple sample (both backends: the pipeline's greedy
  /// stage runs on it; under the tuple backend it IS the filter).
  std::optional<TupleSampleFilter> tuple_filter;
  /// MX backend: the merged pair filter (the verify/minimize oracle).
  std::optional<MxPairFilter> mx_filter;
  uint64_t total_rows = 0;
  uint32_t num_shards = 0;
};

/// \brief Folds shard artifacts — built in this process or restored
/// from files written by other processes — into one global filter.
///
/// Artifacts may arrive in any order; consecutive runs fold EAGERLY (in
/// shard-index order, so results are deterministic for a fixed seed),
/// which keeps resident state at one merged filter plus any
/// out-of-order stragglers. Distribution-equivalence to a single-pass
/// build follows by induction from the two pairwise merges
/// (`TupleSampleFilter::MergeDisjoint`, `MxPairFilter::MergeDisjoint`);
/// `tests/shard_test.cc` checks it empirically.
class FilterMerger {
 public:
  struct Options {
    FilterBackend backend = FilterBackend::kTupleSample;
    /// Merged tuple-sample size target (resolved, > 0).
    uint64_t tuple_sample_size = 0;
    DuplicateDetection detection = DuplicateDetection::kSort;
    uint64_t seed = 1;
  };

  explicit FilterMerger(const Options& options)
      : options_(options), rng_(options.seed) {}

  /// Validates and folds (or stages) one shard's artifact.
  Status Add(ShardFilterArtifact artifact);

  /// Live bytes held (merged state + staged out-of-order artifacts) —
  /// reported into the ingest memory budget.
  uint64_t TrackedBytes() const;

  uint32_t shards_merged() const { return next_index_; }

  /// Finishes the merge; fails if any shard index is missing.
  Result<MergedFilter> Finish() &&;

 private:
  Status Fold(ShardFilterArtifact artifact);

  Options options_;
  Rng rng_;
  uint32_t next_index_ = 0;
  std::map<uint32_t, ShardFilterArtifact> pending_;
  std::optional<TupleSampleFilter> tuple_;
  std::optional<MxPairFilter> mx_;
  uint64_t rows_folded_ = 0;
};

}  // namespace qikey

#endif  // QIKEY_SHARD_FILTER_MERGER_H_
