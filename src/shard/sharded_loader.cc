#include "shard/sharded_loader.h"

#include <algorithm>
#include <deque>
#include <fstream>
#include <memory>
#include <utility>

#include "data/dataset_builder.h"
#include "data/schema.h"

namespace qikey {

namespace {

constexpr size_t kIoBufferBytes = size_t{1} << 18;  // 256 KiB
constexpr size_t kMaxBoundaryMarks = size_t{1} << 16;
constexpr size_t kDefaultShardRows = size_t{1} << 16;

/// Walks a file record-by-record through a fixed buffer, tracking quote
/// state across buffer refills. `on_record(offset, text, blank)` gets
/// each record (text WITHOUT the terminating newline); returning false
/// stops the walk early.
Status WalkCsvRecords(
    std::ifstream& in, uint64_t start_offset, const CsvOptions& options,
    const std::function<bool(uint64_t offset, std::string_view text,
                             bool blank)>& on_record) {
  CsvRecordScanner scanner(options);
  std::string buffer(kIoBufferBytes, '\0');
  std::string record;
  uint64_t record_offset = start_offset;
  uint64_t pos = start_offset;
  bool stopped = false;
  while (!stopped) {
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    std::streamsize got = in.gcount();
    if (got <= 0) break;
    for (std::streamsize i = 0; i < got && !stopped; ++i) {
      char c = buffer[static_cast<size_t>(i)];
      bool blank = scanner.record_blank();
      if (scanner.Feed(c)) {
        if (!on_record(record_offset, record, blank)) stopped = true;
        record.clear();
        record_offset = pos + static_cast<uint64_t>(i) + 1;
      } else {
        record.push_back(c);
      }
    }
    pos += static_cast<uint64_t>(got);
  }
  if (!stopped && !record.empty()) {
    // Final record without a trailing newline; the scanner's live state
    // still describes it.
    on_record(record_offset, record, scanner.record_blank());
  }
  if (in.bad()) return Status::IOError("read failed");
  return Status::OK();
}

std::string_view StripTrailingCr(std::string_view record) {
  if (!record.empty() && record.back() == '\r') record.remove_suffix(1);
  return record;
}

}  // namespace

Result<CsvShardPlan> PlanCsvShards(const std::string& path, size_t num_shards,
                                   const CsvOptions& options) {
  if (num_shards == 0) {
    return Status::InvalidArgument("need at least one shard");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);

  CsvShardPlan plan;
  bool header_pending = options.has_header;
  bool names_known = false;
  uint64_t data_rows = 0;
  uint64_t end_offset = 0;  // one past the last data record
  // Stride-compacted record-start marks: (data row index, byte offset).
  std::vector<std::pair<uint64_t, uint64_t>> marks;
  uint64_t stride = 1;

  Status walk = WalkCsvRecords(
      in, 0, options,
      [&](uint64_t offset, std::string_view text, bool blank) {
        if (blank) return true;
        if (header_pending) {
          plan.attribute_names = SplitCsvLine(StripTrailingCr(text), options);
          header_pending = false;
          names_known = true;
          return true;
        }
        if (!names_known) {
          // No header: anonymous names, width of the first data record.
          size_t width = SplitCsvLine(StripTrailingCr(text), options).size();
          plan.attribute_names = Schema::Anonymous(width).names();
          names_known = true;
        }
        if (data_rows % stride == 0) {
          marks.emplace_back(data_rows, offset);
          if (marks.size() > kMaxBoundaryMarks) {
            // Keep every other mark; the stride doubles.
            size_t keep = 0;
            for (size_t i = 0; i < marks.size(); i += 2) marks[keep++] = marks[i];
            marks.resize(keep);
            stride *= 2;
          }
        }
        ++data_rows;
        end_offset = offset + text.size() + 1;
        return true;
      });
  QIKEY_RETURN_NOT_OK(walk);
  if (!names_known) {
    return Status::InvalidArgument("CSV has no records: " + path);
  }
  plan.total_rows = data_rows;
  if (data_rows == 0) return plan;

  // Pick boundaries: for each ideal split point, the last mark at or
  // before it. Ranges get whole strides, so every shard is within one
  // stride of the even split; drop boundaries that would leave a shard
  // with fewer than two rows.
  size_t shards = std::min<uint64_t>(num_shards, std::max<uint64_t>(
                                                     1, data_rows / 2));
  std::vector<size_t> chosen;  // indices into marks
  chosen.push_back(0);
  for (size_t s = 1; s < shards; ++s) {
    uint64_t ideal = data_rows * s / shards;
    // marks are sorted by row; binary search the last mark <= ideal.
    size_t lo = 0, hi = marks.size();
    while (hi - lo > 1) {
      size_t mid = (lo + hi) / 2;
      if (marks[mid].first <= ideal) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    if (lo != chosen.back() &&
        marks[lo].first >= marks[chosen.back()].first + 2 &&
        data_rows - marks[lo].first >= 2) {
      chosen.push_back(lo);
    }
  }
  plan.ranges.reserve(chosen.size());
  for (size_t i = 0; i < chosen.size(); ++i) {
    const auto& [row, offset] = marks[chosen[i]];
    ShardRange range;
    range.first_row = row;
    range.byte_begin = offset;
    if (i + 1 < chosen.size()) {
      range.num_rows = marks[chosen[i + 1]].first - row;
      range.byte_end = marks[chosen[i + 1]].second;
    } else {
      range.num_rows = data_rows - row;
      range.byte_end = end_offset;
    }
    plan.ranges.push_back(range);
  }
  return plan;
}

Result<std::vector<std::string>> ReadCsvAttributeNames(
    const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  std::vector<std::string> names;
  Status walk = WalkCsvRecords(
      in, 0, options, [&](uint64_t, std::string_view text, bool blank) {
        if (blank) return true;
        std::vector<std::string> fields =
            SplitCsvLine(StripTrailingCr(text), options);
        names = options.has_header
                    ? std::move(fields)
                    : Schema::Anonymous(fields.size()).names();
        return false;  // one record is enough
      });
  QIKEY_RETURN_NOT_OK(walk);
  if (names.empty()) {
    return Status::InvalidArgument("CSV has no records: " + path);
  }
  return names;
}

Status ForEachCsvRecordInRange(
    const std::string& path, const ShardRange& range,
    const CsvOptions& options,
    const std::function<Status(const std::vector<std::string>&)>& fn) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  in.seekg(static_cast<std::streamoff>(range.byte_begin));
  if (!in) return Status::IOError("cannot seek: " + path);
  uint64_t remaining = range.num_rows;
  Status inner = Status::OK();
  Status walk = WalkCsvRecords(
      in, range.byte_begin, options,
      [&](uint64_t offset, std::string_view text, bool blank) {
        if (remaining == 0 || offset >= range.byte_end) return false;
        if (blank) return true;
        inner = fn(SplitCsvLine(StripTrailingCr(text), options));
        if (!inner.ok()) return false;
        --remaining;
        return remaining > 0;
      });
  QIKEY_RETURN_NOT_OK(walk);
  QIKEY_RETURN_NOT_OK(inner);
  if (remaining != 0) {
    return Status::IOError("shard range ended before its row count");
  }
  return Status::OK();
}

Result<ShardedIngestStats> ShardedLoader::Load(
    const std::string& path, const std::function<Status(ShardInput)>& consumer,
    const std::function<uint64_t()>& consumer_tracked) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);

  ShardedIngestStats stats;
  // Chunk sizing: an explicit row cap wins; otherwise a budget caps the
  // chunk's code bytes at a quarter of it (the rest is headroom for the
  // dictionaries, the consumer's merged state, and the in-flight
  // chunk); otherwise a fixed default.
  size_t shard_rows = options_.shard_rows;
  uint64_t chunk_byte_cap = 0;
  if (shard_rows == 0) {
    if (options_.memory_budget_bytes > 0) {
      shard_rows = ~size_t{0};  // rows unbounded; bytes decide
      chunk_byte_cap =
          std::max<uint64_t>(options_.memory_budget_bytes / 4, 4096);
    } else {
      shard_rows = kDefaultShardRows;
    }
  }
  shard_rows = std::max<size_t>(shard_rows, 2);

  bool header_pending = options_.csv.has_header;
  std::unique_ptr<DatasetBuilder> builder;
  uint32_t shard_index = 0;
  uint64_t first_row = 0;
  Status inner = Status::OK();
  // Two-record lookahead so a flush never strands a final one-row
  // shard (pair merges need >= 2 rows per shard).
  std::deque<std::vector<std::string>> lookahead;

  auto track = [&](uint64_t live_chunk_bytes) -> Status {
    uint64_t tracked = live_chunk_bytes;
    if (builder != nullptr) {
      tracked += builder->EstimatedBytes();
    }
    if (consumer_tracked) tracked += consumer_tracked();
    stats.peak_tracked_bytes = std::max(stats.peak_tracked_bytes, tracked);
    if (options_.memory_budget_bytes > 0 &&
        tracked > options_.memory_budget_bytes) {
      return Status::OutOfRange(
          "sharded ingest exceeded the memory budget");
    }
    return Status::OK();
  };

  auto flush = [&]() -> Status {
    if (builder == nullptr || builder->num_rows() == 0) return Status::OK();
    uint64_t rows = builder->num_rows();
    ShardInput shard;
    shard.rows = builder->TakeShard();
    shard.shard_index = shard_index++;
    shard.first_row = first_row;
    first_row += rows;
    uint64_t chunk_bytes = shard.rows.num_rows() *
                           shard.rows.num_attributes() * sizeof(ValueCode);
    QIKEY_RETURN_NOT_OK(consumer(std::move(shard)));
    ++stats.num_shards;
    return track(chunk_bytes);
  };

  auto add_row = [&](const std::vector<std::string>& fields) -> Status {
    bool full = builder->num_rows() >= shard_rows;
    if (chunk_byte_cap > 0 && builder->num_rows() >= 2) {
      uint64_t chunk_bytes = builder->num_rows() *
                             builder->num_attributes() * sizeof(ValueCode);
      full = full || chunk_bytes >= chunk_byte_cap;
    }
    if (full && lookahead.size() >= 2) {
      QIKEY_RETURN_NOT_OK(flush());
    }
    QIKEY_RETURN_NOT_OK(builder->AddRow(fields));
    if (builder->num_rows() % 256 == 0) {
      QIKEY_RETURN_NOT_OK(track(0));
    }
    ++stats.total_rows;
    return Status::OK();
  };

  Status walk = WalkCsvRecords(
      in, 0, options_.csv, [&](uint64_t, std::string_view text, bool blank) {
        if (blank) return true;
        std::vector<std::string> fields =
            SplitCsvLine(StripTrailingCr(text), options_.csv);
        if (header_pending) {
          header_pending = false;
          dictionaries_.assign(fields.size(), nullptr);
          for (auto& d : dictionaries_) d = std::make_shared<Dictionary>();
          builder = std::make_unique<DatasetBuilder>(fields, dictionaries_);
          return true;
        }
        if (builder == nullptr) {
          std::vector<std::string> names =
              Schema::Anonymous(fields.size()).names();
          dictionaries_.assign(fields.size(), nullptr);
          for (auto& d : dictionaries_) d = std::make_shared<Dictionary>();
          builder = std::make_unique<DatasetBuilder>(std::move(names),
                                                     dictionaries_);
        }
        lookahead.push_back(std::move(fields));
        if (lookahead.size() > 2) {
          inner = add_row(lookahead.front());
          lookahead.pop_front();
          if (!inner.ok()) return false;
        }
        return true;
      });
  QIKEY_RETURN_NOT_OK(walk);
  QIKEY_RETURN_NOT_OK(inner);
  while (!lookahead.empty()) {
    QIKEY_RETURN_NOT_OK(builder == nullptr
                            ? Status::InvalidArgument("CSV has no records")
                            : builder->AddRow(lookahead.front()));
    ++stats.total_rows;
    lookahead.pop_front();
  }
  QIKEY_RETURN_NOT_OK(flush());
  if (stats.total_rows == 0) {
    return Status::InvalidArgument("CSV has no data rows: " + path);
  }
  // With every row drained, the builder's estimate is pure dictionary.
  stats.dictionary_bytes = builder != nullptr ? builder->EstimatedBytes() : 0;
  return stats;
}

}  // namespace qikey
