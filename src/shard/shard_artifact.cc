#include "shard/shard_artifact.h"

#include <cstring>
#include <fstream>

#include "data/serialize.h"

namespace qikey {

namespace {

constexpr char kMagic[4] = {'Q', 'I', 'K', 'S'};
// Version 2 added the bitset backend (byte value 2). The layout is
// unchanged, so v1 payloads — which can only carry backends 0 and 1 —
// still deserialize.
constexpr uint32_t kVersion = 2;

uint8_t EncodeBackend(FilterBackend backend) {
  switch (backend) {
    case FilterBackend::kTupleSample:
      return 0;
    case FilterBackend::kMxPair:
      return 1;
    case FilterBackend::kBitset:
      return 2;
  }
  return 0;
}

void AppendU8(std::string* out, uint8_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendBlob(std::string* out, const std::string& blob) {
  AppendU64(out, blob.size());
  out->append(blob);
}

/// Bounds-checked little-endian reader over the artifact payload.
class ArtifactReader {
 public:
  explicit ArtifactReader(std::string_view bytes) : bytes_(bytes) {}

  bool Raw(void* dst, size_t n) {
    if (n > remaining()) return false;
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool Blob(std::string_view* blob) {
    uint64_t len = 0;
    if (!U64(&len)) return false;
    if (len > remaining()) return false;
    *blob = bytes_.substr(pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return true;
  }
  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

uint64_t ShardFilterArtifact::MemoryBytes() const {
  uint64_t bytes =
      tuple_sample.num_rows() * tuple_sample.num_attributes() *
          sizeof(ValueCode) +
      provenance.size() * sizeof(RowIndex);
  bytes += pair_table.num_rows() * pair_table.num_attributes() *
           sizeof(ValueCode);
  return bytes;
}

std::string SerializeShardArtifact(const ShardFilterArtifact& artifact) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendU32(&out, kVersion);
  AppendU32(&out, artifact.shard_index);
  AppendU64(&out, artifact.first_row);
  AppendU64(&out, artifact.rows_seen);
  AppendU8(&out, EncodeBackend(artifact.backend));
  AppendU64(&out, artifact.provenance.size());
  out.append(reinterpret_cast<const char*>(artifact.provenance.data()),
             artifact.provenance.size() * sizeof(RowIndex));
  AppendBlob(&out, SerializeDataset(artifact.tuple_sample));
  AppendU8(&out, artifact.pair_table.num_attributes() > 0 ? 1 : 0);
  if (artifact.pair_table.num_attributes() > 0) {
    AppendBlob(&out, SerializeDataset(artifact.pair_table));
  }
  return out;
}

Result<ShardFilterArtifact> DeserializeShardArtifact(std::string_view bytes) {
  ArtifactReader r(bytes);
  char magic[4];
  uint32_t version = 0;
  if (!r.Raw(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a qikey shard artifact");
  }
  if (!r.U32(&version) || version < 1 || version > kVersion) {
    return Status::InvalidArgument("unsupported shard artifact version");
  }
  ShardFilterArtifact artifact;
  uint8_t backend = 0;
  uint64_t prov = 0;
  if (!r.U32(&artifact.shard_index) || !r.U64(&artifact.first_row) ||
      !r.U64(&artifact.rows_seen) || !r.U8(&backend) || !r.U64(&prov)) {
    return Status::InvalidArgument("truncated shard artifact header");
  }
  // v1 payloads predate the bitset backend; reject byte values their
  // writers could never have produced instead of guessing.
  if (backend > (version >= 2 ? 2 : 1)) {
    return Status::InvalidArgument("unknown shard artifact backend");
  }
  artifact.backend = backend == 0   ? FilterBackend::kTupleSample
                     : backend == 1 ? FilterBackend::kMxPair
                                    : FilterBackend::kBitset;
  if (prov > r.remaining() / sizeof(RowIndex)) {
    return Status::InvalidArgument("truncated shard provenance");
  }
  artifact.provenance.resize(static_cast<size_t>(prov));
  if (!r.Raw(artifact.provenance.data(), prov * sizeof(RowIndex))) {
    return Status::InvalidArgument("truncated shard provenance");
  }
  std::string_view tuple_blob;
  if (!r.Blob(&tuple_blob)) {
    return Status::InvalidArgument("truncated shard tuple sample");
  }
  Result<Dataset> tuple = DeserializeDataset(tuple_blob);
  if (!tuple.ok()) return tuple.status();
  artifact.tuple_sample = std::move(tuple).ValueOrDie();
  uint8_t has_pairs = 0;
  if (!r.U8(&has_pairs)) {
    return Status::InvalidArgument("truncated shard artifact");
  }
  if (has_pairs) {
    std::string_view pair_blob;
    if (!r.Blob(&pair_blob)) {
      return Status::InvalidArgument("truncated shard pair table");
    }
    Result<Dataset> pairs = DeserializeDataset(pair_blob);
    if (!pairs.ok()) return pairs.status();
    if (pairs->num_rows() % 2 != 0) {
      return Status::InvalidArgument("shard pair table has odd row count");
    }
    artifact.pair_table = std::move(pairs).ValueOrDie();
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after shard artifact");
  }
  if (!artifact.provenance.empty() &&
      artifact.provenance.size() != artifact.tuple_sample.num_rows()) {
    return Status::InvalidArgument(
        "shard provenance does not match the tuple sample");
  }
  if (artifact.rows_seen < artifact.tuple_sample.num_rows()) {
    return Status::InvalidArgument("shard claims fewer rows than it retains");
  }
  return artifact;
}

Status WriteShardArtifactFile(const ShardFilterArtifact& artifact,
                              const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  std::string bytes = SerializeShardArtifact(artifact);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<ShardFilterArtifact> ReadShardArtifactFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return DeserializeShardArtifact(bytes);
}

}  // namespace qikey
