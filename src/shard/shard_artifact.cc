#include "shard/shard_artifact.h"

#include <cstring>

#include "data/serialize.h"
#include "data/wire_codec.h"

namespace qikey {

namespace {

constexpr char kMagic[4] = {'Q', 'I', 'K', 'S'};
// Version 2 added the bitset backend (byte value 2). The layout is
// unchanged, so v1 payloads — which can only carry backends 0 and 1 —
// still deserialize.
constexpr uint32_t kVersion = 2;

uint8_t EncodeBackend(FilterBackend backend) {
  switch (backend) {
    case FilterBackend::kTupleSample:
      return 0;
    case FilterBackend::kMxPair:
      return 1;
    case FilterBackend::kBitset:
      return 2;
  }
  return 0;
}

}  // namespace

uint64_t ShardFilterArtifact::MemoryBytes() const {
  uint64_t bytes =
      tuple_sample.num_rows() * tuple_sample.num_attributes() *
          sizeof(ValueCode) +
      provenance.size() * sizeof(RowIndex);
  bytes += pair_table.num_rows() * pair_table.num_attributes() *
           sizeof(ValueCode);
  return bytes;
}

std::string SerializeShardArtifact(const ShardFilterArtifact& artifact) {
  ByteWriter w;
  w.Raw(kMagic, sizeof(kMagic));
  w.U32(kVersion);
  w.U32(artifact.shard_index);
  w.U64(artifact.first_row);
  w.U64(artifact.rows_seen);
  w.U8(EncodeBackend(artifact.backend));
  w.U64(artifact.provenance.size());
  w.Raw(artifact.provenance.data(),
        artifact.provenance.size() * sizeof(RowIndex));
  w.Blob(SerializeDataset(artifact.tuple_sample));
  w.U8(artifact.pair_table.num_attributes() > 0 ? 1 : 0);
  if (artifact.pair_table.num_attributes() > 0) {
    w.Blob(SerializeDataset(artifact.pair_table));
  }
  return std::move(w).Take();
}

Result<ShardFilterArtifact> DeserializeShardArtifact(std::string_view bytes) {
  ByteReader r(bytes);
  char magic[4];
  uint32_t version = 0;
  if (!r.Raw(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a qikey shard artifact");
  }
  if (!r.U32(&version) || version < 1 || version > kVersion) {
    return Status::InvalidArgument("unsupported shard artifact version");
  }
  ShardFilterArtifact artifact;
  uint8_t backend = 0;
  uint64_t prov = 0;
  if (!r.U32(&artifact.shard_index) || !r.U64(&artifact.first_row) ||
      !r.U64(&artifact.rows_seen) || !r.U8(&backend) || !r.U64(&prov)) {
    return Status::InvalidArgument("truncated shard artifact header");
  }
  // v1 payloads predate the bitset backend; reject byte values their
  // writers could never have produced instead of guessing.
  if (backend > (version >= 2 ? 2 : 1)) {
    return Status::InvalidArgument("unknown shard artifact backend");
  }
  artifact.backend = backend == 0   ? FilterBackend::kTupleSample
                     : backend == 1 ? FilterBackend::kMxPair
                                    : FilterBackend::kBitset;
  if (prov > r.remaining() / sizeof(RowIndex)) {
    return Status::InvalidArgument("truncated shard provenance");
  }
  artifact.provenance.resize(static_cast<size_t>(prov));
  if (!r.Raw(artifact.provenance.data(), prov * sizeof(RowIndex))) {
    return Status::InvalidArgument("truncated shard provenance");
  }
  std::string_view tuple_blob;
  if (!r.Blob(&tuple_blob)) {
    return Status::InvalidArgument("truncated shard tuple sample");
  }
  Result<Dataset> tuple = DeserializeDataset(tuple_blob);
  if (!tuple.ok()) return tuple.status();
  artifact.tuple_sample = std::move(tuple).ValueOrDie();
  uint8_t has_pairs = 0;
  if (!r.U8(&has_pairs)) {
    return Status::InvalidArgument("truncated shard artifact");
  }
  if (has_pairs) {
    std::string_view pair_blob;
    if (!r.Blob(&pair_blob)) {
      return Status::InvalidArgument("truncated shard pair table");
    }
    Result<Dataset> pairs = DeserializeDataset(pair_blob);
    if (!pairs.ok()) return pairs.status();
    if (pairs->num_rows() % 2 != 0) {
      return Status::InvalidArgument("shard pair table has odd row count");
    }
    artifact.pair_table = std::move(pairs).ValueOrDie();
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after shard artifact");
  }
  if (!artifact.provenance.empty() &&
      artifact.provenance.size() != artifact.tuple_sample.num_rows()) {
    return Status::InvalidArgument(
        "shard provenance does not match the tuple sample");
  }
  if (artifact.rows_seen < artifact.tuple_sample.num_rows()) {
    return Status::InvalidArgument("shard claims fewer rows than it retains");
  }
  return artifact;
}

Status WriteShardArtifactFile(const ShardFilterArtifact& artifact,
                              const std::string& path) {
  return WriteFileBytes(SerializeShardArtifact(artifact), path);
}

Result<ShardFilterArtifact> ReadShardArtifactFile(const std::string& path) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return DeserializeShardArtifact(*bytes);
}

}  // namespace qikey
