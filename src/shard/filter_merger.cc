#include "shard/filter_merger.h"

#include <utility>

namespace qikey {

Status FilterMerger::Add(ShardFilterArtifact artifact) {
  if (artifact.backend != options_.backend) {
    return Status::InvalidArgument("artifact backend mismatch");
  }
  if (artifact.rows_seen < 2) {
    return Status::InvalidArgument("shard artifacts need >= 2 rows");
  }
  if (IsPairSampledBackend(options_.backend) &&
      artifact.pair_table.num_rows() == 0) {
    return Status::InvalidArgument("MX artifact is missing its pair table");
  }
  uint64_t need = std::min<uint64_t>(options_.tuple_sample_size,
                                     artifact.rows_seen);
  if (artifact.tuple_sample.num_rows() < need) {
    return Status::InvalidArgument(
        "shard tuple sample smaller than the merge target");
  }
  if (artifact.shard_index < next_index_ ||
      pending_.count(artifact.shard_index) > 0) {
    return Status::AlreadyExists("duplicate shard index");
  }
  pending_.emplace(artifact.shard_index, std::move(artifact));
  // Fold every consecutive artifact now available, in index order.
  while (true) {
    auto it = pending_.find(next_index_);
    if (it == pending_.end()) break;
    ShardFilterArtifact next = std::move(it->second);
    pending_.erase(it);
    QIKEY_RETURN_NOT_OK(Fold(std::move(next)));
    ++next_index_;
  }
  return Status::OK();
}

Status FilterMerger::Fold(ShardFilterArtifact artifact) {
  TupleSampleFilter incoming = TupleSampleFilter::FromSample(
      std::move(artifact.tuple_sample), std::move(artifact.provenance),
      options_.detection);
  if (!tuple_.has_value()) {
    tuple_ = std::move(incoming);
  } else {
    Result<TupleSampleFilter> merged = TupleSampleFilter::MergeDisjoint(
        *tuple_, rows_folded_, incoming, artifact.rows_seen,
        options_.tuple_sample_size, &rng_);
    if (!merged.ok()) return merged.status();
    tuple_ = std::move(merged).ValueOrDie();
  }
  if (IsPairSampledBackend(options_.backend)) {
    Result<MxPairFilter> incoming_mx =
        MxPairFilter::FromMaterializedPairs(std::move(artifact.pair_table));
    if (!incoming_mx.ok()) return incoming_mx.status();
    if (!mx_.has_value()) {
      mx_ = std::move(incoming_mx).ValueOrDie();
    } else {
      Result<MxPairFilter> merged = MxPairFilter::MergeDisjoint(
          *mx_, rows_folded_, *incoming_mx, artifact.rows_seen, &rng_);
      if (!merged.ok()) return merged.status();
      mx_ = std::move(merged).ValueOrDie();
    }
  }
  rows_folded_ += artifact.rows_seen;
  return Status::OK();
}

uint64_t FilterMerger::TrackedBytes() const {
  uint64_t bytes = 0;
  if (tuple_.has_value()) bytes += tuple_->MemoryBytes();
  if (mx_.has_value()) bytes += mx_->MemoryBytes();
  for (const auto& [index, artifact] : pending_) {
    bytes += artifact.MemoryBytes();
  }
  return bytes;
}

Result<MergedFilter> FilterMerger::Finish() && {
  if (!pending_.empty()) {
    return Status::InvalidArgument(
        "shard artifacts missing below index " +
        std::to_string(pending_.begin()->first));
  }
  if (!tuple_.has_value()) {
    return Status::InvalidArgument("no shard artifacts were added");
  }
  MergedFilter out;
  out.backend = options_.backend;
  out.total_rows = rows_folded_;
  out.num_shards = next_index_;
  out.tuple_filter = std::move(tuple_);
  out.mx_filter = std::move(mx_);
  return out;
}

}  // namespace qikey
