#include "data/csv_loader.h"

#include <fstream>
#include <utility>

#include "data/dataset_builder.h"

namespace qikey {

namespace {

Result<Dataset> TableToDataset(CsvTable table) {
  std::vector<std::string> names = std::move(table.header);
  if (names.empty()) {
    size_t width = table.rows.empty() ? 0 : table.rows[0].size();
    names = Schema::Anonymous(width).names();
  }
  DatasetBuilder builder(std::move(names));
  for (auto& row : table.rows) {
    QIKEY_RETURN_NOT_OK(builder.AddRow(row));
  }
  return std::move(builder).Finish();
}

}  // namespace

Result<Dataset> LoadCsvDataset(const std::string& path,
                               const CsvOptions& options) {
  Result<CsvTable> table = ReadCsvFile(path, options);
  if (!table.ok()) return table.status();
  return TableToDataset(std::move(table).ValueOrDie());
}

Result<Dataset> LoadCsvDatasetFromString(std::string_view text,
                                         const CsvOptions& options) {
  Result<CsvTable> table = ParseCsv(text, options);
  if (!table.ok()) return table.status();
  return TableToDataset(std::move(table).ValueOrDie());
}

std::string DatasetToCsv(const Dataset& dataset, const CsvOptions& options) {
  CsvTable table;
  table.header = dataset.schema().names();
  table.rows.reserve(dataset.num_rows());
  for (RowIndex r = 0; r < dataset.num_rows(); ++r) {
    std::vector<std::string> row;
    row.reserve(dataset.num_attributes());
    for (AttributeIndex j = 0; j < dataset.num_attributes(); ++j) {
      const Column& col = dataset.column(j);
      if (col.dictionary() != nullptr) {
        row.push_back(col.dictionary()->Value(col.code(r)));
      } else {
        row.push_back(std::to_string(col.code(r)));
      }
    }
    table.rows.push_back(std::move(row));
  }
  return WriteCsv(table, options);
}

Status SaveCsvDataset(const Dataset& dataset, const std::string& path,
                      const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  std::string text = DatasetToCsv(dataset, options);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace qikey
