#include "data/partition.h"

#include <algorithm>
#include <unordered_map>

#include "math/combinatorics.h"
#include "util/logging.h"

namespace qikey {

Partition Partition::Trivial(size_t num_rows) {
  Partition p;
  p.block_of_.assign(num_rows, 0);
  p.block_sizes_.assign(num_rows > 0 ? 1 : 0,
                        static_cast<uint32_t>(num_rows));
  p.num_blocks_ = num_rows > 0 ? 1 : 0;
  return p;
}

Partition Partition::ByColumn(const Column& column) {
  // Dense counting by code: block ids are assigned in order of first
  // appearance so they are dense even when some codes are unused.
  Partition p;
  const size_t n = column.size();
  p.block_of_.resize(n);
  std::vector<uint32_t> code_to_block(column.cardinality(), ~uint32_t{0});
  uint32_t next_block = 0;
  for (size_t row = 0; row < n; ++row) {
    ValueCode c = column.code(row);
    if (code_to_block[c] == ~uint32_t{0}) {
      code_to_block[c] = next_block++;
      p.block_sizes_.push_back(0);
    }
    uint32_t b = code_to_block[c];
    p.block_of_[row] = b;
    ++p.block_sizes_[b];
  }
  p.num_blocks_ = next_block;
  return p;
}

Partition Partition::RefinedBy(const Column& column) const {
  QIKEY_CHECK(column.size() == block_of_.size())
      << "column length mismatch in refinement";
  Partition out;
  const size_t n = block_of_.size();
  out.block_of_.resize(n);
  // Key = old_block * cardinality + code fits in 64 bits for all
  // realistic sizes (blocks, cardinality <= 2^32).
  std::unordered_map<uint64_t, uint32_t> remap;
  remap.reserve(n / 4 + 8);
  uint64_t card = std::max<uint64_t>(column.cardinality(), 1);
  uint32_t next_block = 0;
  for (size_t row = 0; row < n; ++row) {
    uint64_t key = static_cast<uint64_t>(block_of_[row]) * card +
                   column.code(row);
    auto [it, inserted] = remap.emplace(key, next_block);
    if (inserted) {
      ++next_block;
      out.block_sizes_.push_back(0);
    }
    out.block_of_[row] = it->second;
    ++out.block_sizes_[it->second];
  }
  out.num_blocks_ = next_block;
  return out;
}

uint64_t Partition::UnseparatedPairs() const {
  uint64_t total = 0;
  for (uint32_t s : block_sizes_) total += PairCount(s);
  return total;
}

uint64_t Partition::RefinementGain(const Column& column) const {
  QIKEY_CHECK(column.size() == block_of_.size());
  // gain = 1/2 * sum_i (|C_i|^2 - sum_a |D_a^{(i)}|^2)  (Appendix B)
  //      = Γ(this) - Γ(refined)
  std::unordered_map<uint64_t, uint32_t> counts;
  counts.reserve(block_of_.size() / 4 + 8);
  uint64_t card = std::max<uint64_t>(column.cardinality(), 1);
  for (size_t row = 0; row < block_of_.size(); ++row) {
    uint64_t key = static_cast<uint64_t>(block_of_[row]) * card +
                   column.code(row);
    ++counts[key];
  }
  uint64_t sum_sq_blocks = 0;
  for (uint32_t s : block_sizes_) {
    sum_sq_blocks += static_cast<uint64_t>(s) * s;
  }
  uint64_t sum_sq_cells = 0;
  for (const auto& [key, cnt] : counts) {
    (void)key;
    sum_sq_cells += static_cast<uint64_t>(cnt) * cnt;
  }
  return (sum_sq_blocks - sum_sq_cells) / 2;
}

Partition PartitionByAttributes(const Dataset& dataset,
                                const std::vector<AttributeIndex>& attrs) {
  if (attrs.empty()) return Partition::Trivial(dataset.num_rows());
  Partition p = Partition::ByColumn(dataset.column(attrs[0]));
  for (size_t i = 1; i < attrs.size(); ++i) {
    if (p.AllSingletons()) break;  // cannot refine further
    p = p.RefinedBy(dataset.column(attrs[i]));
  }
  return p;
}

uint64_t CountUnseparatedPairs(const Dataset& dataset,
                               const std::vector<AttributeIndex>& attrs) {
  return PartitionByAttributes(dataset, attrs).UnseparatedPairs();
}

}  // namespace qikey
