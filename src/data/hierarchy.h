#ifndef QIKEY_DATA_HIERARCHY_H_
#define QIKEY_DATA_HIERARCHY_H_

#include <cstdint>
#include <vector>

#include "data/column.h"
#include "util/status.h"

namespace qikey {

/// \brief A value generalization hierarchy for one attribute
/// (ARX-style): level 0 is the original domain; each level maps the
/// previous level's codes onto a coarser domain; the top level is a
/// single value ("*", full suppression).
///
/// Generalizing a column to level L replaces each code by its level-L
/// ancestor, which merges equivalence classes — the mechanism used to
/// reach k-anonymity without deleting rows.
class GeneralizationHierarchy {
 public:
  /// Builds from explicit per-level maps. `maps[l][code]` is the
  /// level-(l+1) code of a level-l `code`; `maps[l]` has the level-l
  /// domain size and values < the level-(l+1) domain size.
  static Result<GeneralizationHierarchy> Make(
      uint32_t base_cardinality, std::vector<std::vector<ValueCode>> maps);

  /// \brief A numeric-style hierarchy over `[0, cardinality)`: level l
  /// groups values into buckets of width `branching^l` (plus a final
  /// all-in-one level). The standard interval hierarchy for ages,
  /// zip codes, etc.
  static GeneralizationHierarchy Intervals(uint32_t cardinality,
                                           uint32_t branching);

  /// \brief The trivial two-level hierarchy: keep or fully suppress.
  static GeneralizationHierarchy KeepOrSuppress(uint32_t cardinality);

  /// Number of levels (0 = original, levels() - 1 = fully suppressed
  /// only when the hierarchy's top merges everything).
  uint32_t levels() const {
    return static_cast<uint32_t>(maps_.size()) + 1;
  }

  uint32_t base_cardinality() const { return base_cardinality_; }

  /// Domain size at `level` (level 0 = base cardinality).
  uint32_t CardinalityAt(uint32_t level) const;

  /// Level-`level` ancestor of a base-domain `code`.
  ValueCode Generalize(ValueCode code, uint32_t level) const;

  /// Generalizes a whole column to `level` (codes remapped, cardinality
  /// adjusted). The column's length is preserved.
  Column GeneralizeColumn(const Column& column, uint32_t level) const;

 private:
  GeneralizationHierarchy() = default;

  uint32_t base_cardinality_ = 0;
  std::vector<std::vector<ValueCode>> maps_;
  std::vector<uint32_t> level_cardinality_;  // per level, incl. level 0
};

}  // namespace qikey

#endif  // QIKEY_DATA_HIERARCHY_H_
