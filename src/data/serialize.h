#ifndef QIKEY_DATA_SERIALIZE_H_
#define QIKEY_DATA_SERIALIZE_H_

#include <string>
#include <string_view>

#include "data/dataset.h"
#include "util/status.h"

namespace qikey {

/// \brief Compact binary serialization of a `Dataset` (schema names,
/// per-column cardinality, optional dictionary strings, packed codes).
///
/// Used to persist filter samples and sketches to disk so a filter
/// built once can serve queries in later processes — the "sketch"
/// deployment mode of the paper. The format is versioned and
/// little-endian (asserted at build time for the supported targets).
std::string SerializeDataset(const Dataset& dataset);

/// Restores a data set serialized by `SerializeDataset`. Answers to all
/// separation queries are identical to the original's.
Result<Dataset> DeserializeDataset(std::string_view bytes);

/// Convenience: file-backed variants.
Status WriteDatasetFile(const Dataset& dataset, const std::string& path);
Result<Dataset> ReadDatasetFile(const std::string& path);

}  // namespace qikey

#endif  // QIKEY_DATA_SERIALIZE_H_
