#include "data/concat.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace qikey {

Result<Dataset> ConcatDatasets(const std::vector<const Dataset*>& parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("need at least one data set to concat");
  }
  const Dataset& first = *parts[0];
  size_t total_rows = 0;
  for (const Dataset* part : parts) {
    if (part->schema().names() != first.schema().names()) {
      return Status::InvalidArgument("cannot concat differing schemas");
    }
    total_rows += part->num_rows();
  }

  const size_t m = first.num_attributes();
  std::vector<Column> columns;
  columns.reserve(m);
  for (AttributeIndex j = 0; j < m; ++j) {
    bool with_dict = first.column(j).dictionary() != nullptr;
    for (const Dataset* part : parts) {
      if ((part->column(j).dictionary() != nullptr) != with_dict) {
        return Status::InvalidArgument(
            "cannot concat dictionary and raw encodings of column " +
            first.schema().name(j));
      }
    }
    std::vector<ValueCode> codes;
    codes.reserve(total_rows);
    if (with_dict) {
      auto merged = std::make_shared<Dictionary>();
      for (const Dataset* part : parts) {
        const Column& col = part->column(j);
        const Dictionary& dict = *col.dictionary();
        // Remap every code of the part's dictionary into the union
        // dictionary, then translate the part's rows through the table.
        std::vector<ValueCode> remap(dict.size());
        for (ValueCode c = 0; c < dict.size(); ++c) {
          remap[c] = merged->GetOrAdd(dict.Value(c));
        }
        for (ValueCode c : col.codes()) {
          if (c >= remap.size()) {
            return Status::InvalidArgument(
                "code outside dictionary in column " + first.schema().name(j));
          }
          codes.push_back(remap[c]);
        }
      }
      uint32_t cardinality =
          std::max<uint32_t>(1, static_cast<uint32_t>(merged->size()));
      columns.emplace_back(std::move(codes), cardinality, std::move(merged));
    } else {
      uint32_t cardinality = 1;
      for (const Dataset* part : parts) {
        const Column& col = part->column(j);
        cardinality = std::max(cardinality, col.cardinality());
        codes.insert(codes.end(), col.codes().begin(), col.codes().end());
      }
      columns.emplace_back(std::move(codes), cardinality, nullptr);
    }
  }
  return Dataset::Make(Schema(first.schema().names()), std::move(columns));
}

}  // namespace qikey
