#ifndef QIKEY_DATA_WIRE_CODEC_H_
#define QIKEY_DATA_WIRE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace qikey {

/// \brief Little-endian byte-stream writer shared by every on-disk
/// format (QIKD datasets, QIKS shard artifacts, QSNP snapshot metadata).
///
/// The formats are little-endian by construction; the supported targets
/// are little-endian, which wire_codec.cc asserts at build time.
class ByteWriter {
 public:
  void Raw(const void* src, size_t n);
  void U8(uint8_t v) { Raw(&v, sizeof(v)); }
  void U16(uint16_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  /// u32 length prefix + bytes.
  void Str(std::string_view s);
  /// u64 length prefix + bytes.
  void Blob(std::string_view blob);
  /// Zero bytes until `size()` is a multiple of `alignment`.
  void AlignTo(size_t alignment);

  size_t size() const { return out_.size(); }
  std::string Take() && { return std::move(out_); }

 private:
  std::string out_;
};

/// \brief Bounds-checked little-endian reader over a serialized
/// payload. Every accessor fails (returns false) instead of reading
/// past the end; nothing is allocated from attacker-declared sizes
/// before the declared bytes are known to be present.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  bool Raw(void* dst, size_t n);
  bool U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U16(uint16_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  /// u32 length prefix + bytes (copied; the length is checked first).
  bool Str(std::string* s);
  /// u64 length prefix; returns a view into the payload (no copy).
  bool Blob(std::string_view* blob);
  bool Skip(size_t n);

  size_t pos() const { return pos_; }
  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

/// 64-bit FNV-1a over `n` bytes — the section checksum of the snapshot
/// format. Not cryptographic; detects truncation and bit rot.
uint64_t Fnv1a64(const void* data, size_t n,
                 uint64_t seed = 0xcbf29ce484222325ULL);

/// Reads a whole file into memory (sized upfront via seek, not
/// byte-by-byte iteration). IOError when the file cannot be opened or
/// read.
Result<std::string> ReadFileBytes(const std::string& path);

/// Writes `bytes` to `path`, truncating any existing file.
Status WriteFileBytes(std::string_view bytes, const std::string& path);

}  // namespace qikey

#endif  // QIKEY_DATA_WIRE_CODEC_H_
