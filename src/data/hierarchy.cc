#include "data/hierarchy.h"

#include <algorithm>

#include "util/logging.h"

namespace qikey {

Result<GeneralizationHierarchy> GeneralizationHierarchy::Make(
    uint32_t base_cardinality, std::vector<std::vector<ValueCode>> maps) {
  GeneralizationHierarchy h;
  h.base_cardinality_ = base_cardinality;
  h.level_cardinality_.push_back(base_cardinality);
  uint32_t current = base_cardinality;
  for (size_t l = 0; l < maps.size(); ++l) {
    if (maps[l].size() != current) {
      return Status::InvalidArgument(
          "level map size does not match the previous level's domain");
    }
    ValueCode max_code = 0;
    for (ValueCode c : maps[l]) max_code = std::max(max_code, c);
    uint32_t next = max_code + 1;
    if (next > current) {
      return Status::InvalidArgument(
          "generalization must not grow the domain");
    }
    h.level_cardinality_.push_back(next);
    current = next;
  }
  h.maps_ = std::move(maps);
  return h;
}

GeneralizationHierarchy GeneralizationHierarchy::Intervals(
    uint32_t cardinality, uint32_t branching) {
  QIKEY_CHECK(cardinality >= 1 && branching >= 2);
  std::vector<std::vector<ValueCode>> maps;
  uint32_t current = cardinality;
  while (current > 1) {
    std::vector<ValueCode> map(current);
    for (uint32_t c = 0; c < current; ++c) {
      map[c] = static_cast<ValueCode>(c / branching);
    }
    maps.push_back(std::move(map));
    current = (current + branching - 1) / branching;
  }
  Result<GeneralizationHierarchy> h = Make(cardinality, std::move(maps));
  QIKEY_CHECK(h.ok());
  return std::move(h).ValueOrDie();
}

GeneralizationHierarchy GeneralizationHierarchy::KeepOrSuppress(
    uint32_t cardinality) {
  QIKEY_CHECK(cardinality >= 1);
  std::vector<std::vector<ValueCode>> maps{
      std::vector<ValueCode>(cardinality, 0)};
  Result<GeneralizationHierarchy> h = Make(cardinality, std::move(maps));
  QIKEY_CHECK(h.ok());
  return std::move(h).ValueOrDie();
}

uint32_t GeneralizationHierarchy::CardinalityAt(uint32_t level) const {
  QIKEY_CHECK(level < levels());
  return level_cardinality_[level];
}

ValueCode GeneralizationHierarchy::Generalize(ValueCode code,
                                              uint32_t level) const {
  QIKEY_DCHECK(code < base_cardinality_);
  QIKEY_CHECK(level < levels());
  ValueCode c = code;
  for (uint32_t l = 0; l < level; ++l) c = maps_[l][c];
  return c;
}

Column GeneralizationHierarchy::GeneralizeColumn(const Column& column,
                                                 uint32_t level) const {
  QIKEY_CHECK(column.cardinality() <= base_cardinality_)
      << "column domain exceeds the hierarchy's base domain";
  QIKEY_CHECK(level < levels());
  if (level == 0) return column;
  // Precompute the base -> level map once, then remap the codes.
  std::vector<ValueCode> direct(base_cardinality_);
  for (uint32_t c = 0; c < base_cardinality_; ++c) {
    direct[c] = Generalize(static_cast<ValueCode>(c), level);
  }
  std::vector<ValueCode> codes;
  codes.reserve(column.size());
  for (size_t r = 0; r < column.size(); ++r) {
    codes.push_back(direct[column.code(r)]);
  }
  return Column(std::move(codes), CardinalityAt(level));
}

}  // namespace qikey
