#ifndef QIKEY_DATA_CONCAT_H_
#define QIKEY_DATA_CONCAT_H_

#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace qikey {

/// \brief Concatenates data sets row-wise into one data set.
///
/// The parts must share schema names and per-column encoding kind. For
/// dictionary-encoded columns the values are re-encoded through a fresh
/// union dictionary, so parts built with *different* dictionaries (e.g.
/// filter shards encoded in separate processes) compare correctly in
/// the result; parts that share a dictionary pay only the cheap
/// identity remap. Columns without dictionaries (synthetic data, where
/// codes are the values) are appended verbatim with the cardinality
/// widened to the maximum. Mixing dictionary and raw columns at the
/// same position is an error.
Result<Dataset> ConcatDatasets(const std::vector<const Dataset*>& parts);

}  // namespace qikey

#endif  // QIKEY_DATA_CONCAT_H_
