#include "data/statistics.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "math/combinatorics.h"

namespace qikey {

ColumnStats ComputeColumnStats(const Dataset& dataset, AttributeIndex j) {
  const Column& col = dataset.column(j);
  const size_t n = col.size();
  ColumnStats stats;
  stats.name = dataset.schema().name(j);
  stats.cardinality = col.cardinality();

  std::vector<uint64_t> counts(col.cardinality(), 0);
  for (size_t r = 0; r < n; ++r) ++counts[col.code(r)];

  uint64_t top = 0;
  uint64_t unseparated = 0;
  uint64_t unique_rows = 0;
  double entropy = 0.0;
  uint32_t distinct = 0;
  for (uint64_t c : counts) {
    if (c == 0) continue;
    ++distinct;
    if (c > top) top = c;
    if (c == 1) ++unique_rows;
    unseparated += PairCount(c);
    double p = static_cast<double>(c) / static_cast<double>(n);
    entropy -= p * std::log2(p);
  }
  stats.distinct = distinct;
  stats.entropy_bits = entropy;
  stats.top_frequency =
      n > 0 ? static_cast<double>(top) / static_cast<double>(n) : 0.0;
  stats.unseparated_pairs = unseparated;
  uint64_t total_pairs = dataset.num_pairs();
  stats.separation_ratio =
      total_pairs > 0
          ? 1.0 - static_cast<double>(unseparated) /
                      static_cast<double>(total_pairs)
          : 1.0;
  stats.uniqueness =
      n > 0 ? static_cast<double>(unique_rows) / static_cast<double>(n)
            : 0.0;
  return stats;
}

std::vector<ColumnStats> ProfileDataset(const Dataset& dataset) {
  std::vector<ColumnStats> out;
  out.reserve(dataset.num_attributes());
  for (size_t j = 0; j < dataset.num_attributes(); ++j) {
    out.push_back(ComputeColumnStats(dataset, static_cast<AttributeIndex>(j)));
  }
  return out;
}

std::string FormatProfileTable(const std::vector<ColumnStats>& stats) {
  std::ostringstream out;
  out << std::left << std::setw(22) << "column" << std::right
      << std::setw(10) << "distinct" << std::setw(10) << "entropy"
      << std::setw(10) << "top-freq" << std::setw(12) << "sep-ratio"
      << std::setw(12) << "uniqueness" << "\n";
  for (const ColumnStats& s : stats) {
    out << std::left << std::setw(22) << s.name << std::right
        << std::setw(10) << s.distinct << std::setw(10) << std::fixed
        << std::setprecision(2) << s.entropy_bits << std::setw(10)
        << std::setprecision(3) << s.top_frequency << std::setw(12)
        << std::setprecision(6) << s.separation_ratio << std::setw(12)
        << std::setprecision(3) << s.uniqueness << "\n";
  }
  return out.str();
}

}  // namespace qikey
