#include "data/dataset.h"

#include <sstream>

#include "math/combinatorics.h"
#include "util/logging.h"

namespace qikey {

namespace {

// 64-bit mixer (SplitMix64 finalizer) for hash combining.
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Dataset::Dataset(Schema schema, std::vector<Column> columns)
    : schema_(std::move(schema)), columns_(std::move(columns)) {
  num_rows_ = columns_.empty() ? 0 : columns_[0].size();
  QIKEY_CHECK(schema_.num_attributes() == columns_.size())
      << "schema arity " << schema_.num_attributes() << " != column count "
      << columns_.size();
  for (const Column& c : columns_) {
    QIKEY_CHECK(c.size() == num_rows_) << "ragged columns";
  }
}

Result<Dataset> Dataset::Make(Schema schema, std::vector<Column> columns) {
  if (schema.num_attributes() != columns.size()) {
    return Status::InvalidArgument("schema arity does not match column count");
  }
  size_t rows = columns.empty() ? 0 : columns[0].size();
  for (const Column& c : columns) {
    if (c.size() != rows) {
      return Status::InvalidArgument("columns have differing lengths");
    }
  }
  return Dataset(std::move(schema), std::move(columns));
}

uint64_t Dataset::num_pairs() const { return PairCount(num_rows_); }

bool Dataset::RowsAgreeOn(RowIndex i, RowIndex j,
                          const std::vector<AttributeIndex>& attrs) const {
  for (AttributeIndex a : attrs) {
    if (columns_[a].code(i) != columns_[a].code(j)) return false;
  }
  return true;
}

int Dataset::CompareProjections(
    RowIndex i, RowIndex j, const std::vector<AttributeIndex>& attrs) const {
  for (AttributeIndex a : attrs) {
    ValueCode ci = columns_[a].code(i);
    ValueCode cj = columns_[a].code(j);
    if (ci < cj) return -1;
    if (ci > cj) return 1;
  }
  return 0;
}

uint64_t Dataset::HashProjection(
    RowIndex i, const std::vector<AttributeIndex>& attrs) const {
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (AttributeIndex a : attrs) {
    h = Mix64(h ^ (static_cast<uint64_t>(columns_[a].code(i)) +
                   0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2)));
  }
  return h;
}

std::string Dataset::FormatRow(RowIndex i) const {
  std::ostringstream out;
  for (size_t j = 0; j < columns_.size(); ++j) {
    if (j > 0) out << "|";
    const Column& c = columns_[j];
    if (c.dictionary() != nullptr) {
      out << c.dictionary()->Value(c.code(i));
    } else {
      out << c.code(i);
    }
  }
  return out.str();
}

Dataset Dataset::SelectRows(const std::vector<RowIndex>& rows) const {
  std::vector<Column> new_columns;
  new_columns.reserve(columns_.size());
  for (const Column& c : columns_) {
    std::vector<ValueCode> codes;
    codes.reserve(rows.size());
    for (RowIndex r : rows) {
      QIKEY_DCHECK(r < num_rows_);
      codes.push_back(c.code(r));
    }
    new_columns.emplace_back(std::move(codes), c.cardinality(),
                             c.shared_dictionary());
  }
  return Dataset(schema_, std::move(new_columns));
}

}  // namespace qikey
