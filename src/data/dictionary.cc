#include "data/dictionary.h"

#include "util/logging.h"

namespace qikey {

ValueCode Dictionary::GetOrAdd(std::string_view value) {
  auto it = index_.find(std::string(value));
  if (it != index_.end()) return it->second;
  QIKEY_CHECK(values_.size() < kNotFound) << "dictionary overflow";
  ValueCode code = static_cast<ValueCode>(values_.size());
  values_.emplace_back(value);
  index_.emplace(values_.back(), code);
  return code;
}

ValueCode Dictionary::Find(std::string_view value) const {
  auto it = index_.find(std::string(value));
  if (it == index_.end()) return kNotFound;
  return it->second;
}

}  // namespace qikey
