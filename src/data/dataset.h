#ifndef QIKEY_DATA_DATASET_H_
#define QIKEY_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/column.h"
#include "data/schema.h"
#include "util/status.h"

namespace qikey {

/// Index of a tuple (row) within a data set; `[0, n)`.
using RowIndex = uint32_t;

/// \brief Immutable columnar data set of `n` tuples over `m` attributes.
///
/// This is the object the paper calls `X = {x_1, ..., x_n} ⊆ U^m`.
/// Values are dictionary codes; two tuples agree on attribute `j` iff
/// their codes in column `j` are equal, which is all the separation
/// machinery needs.
class Dataset {
 public:
  Dataset() = default;
  Dataset(Schema schema, std::vector<Column> columns);

  /// Validates shape invariants (equal column lengths, schema arity).
  static Result<Dataset> Make(Schema schema, std::vector<Column> columns);

  size_t num_rows() const { return num_rows_; }
  size_t num_attributes() const { return columns_.size(); }
  uint64_t num_pairs() const;

  const Schema& schema() const { return schema_; }
  const Column& column(AttributeIndex j) const { return columns_[j]; }

  ValueCode code(RowIndex row, AttributeIndex attribute) const {
    return columns_[attribute].code(row);
  }

  /// True iff rows `i` and `j` agree on *every* attribute in `attrs`
  /// (i.e. `attrs` fails to separate them).
  bool RowsAgreeOn(RowIndex i, RowIndex j,
                   const std::vector<AttributeIndex>& attrs) const;

  /// Three-way comparison of the projections of rows `i` and `j` onto
  /// `attrs` (lexicographic in code order). Used for sort-based duplicate
  /// detection; O(|attrs|).
  int CompareProjections(RowIndex i, RowIndex j,
                         const std::vector<AttributeIndex>& attrs) const;

  /// 64-bit hash of row `i`'s projection onto `attrs`.
  uint64_t HashProjection(RowIndex i,
                          const std::vector<AttributeIndex>& attrs) const;

  /// Renders row `i` as "v0|v1|..." using dictionaries when present.
  std::string FormatRow(RowIndex i) const;

  /// A new data set containing only the given rows (in order).
  Dataset SelectRows(const std::vector<RowIndex>& rows) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace qikey

#endif  // QIKEY_DATA_DATASET_H_
