#ifndef QIKEY_DATA_CSV_LOADER_H_
#define QIKEY_DATA_CSV_LOADER_H_

#include <string>
#include <string_view>

#include "data/dataset.h"
#include "util/csv.h"
#include "util/status.h"

namespace qikey {

/// \brief Loads a CSV file into a dictionary-encoded `Dataset`.
///
/// Every column is treated categorically (dictionary-encoded strings),
/// which is exactly what the separation problem needs. Missing header
/// rows get anonymous attribute names.
Result<Dataset> LoadCsvDataset(const std::string& path,
                               const CsvOptions& options = {});

/// In-memory variant for tests.
Result<Dataset> LoadCsvDatasetFromString(std::string_view text,
                                         const CsvOptions& options = {});

/// \brief Renders a data set back to CSV text (dictionary values when
/// present, otherwise decimal codes). Round trips through
/// `LoadCsvDatasetFromString` with the identical separation structure.
std::string DatasetToCsv(const Dataset& dataset,
                         const CsvOptions& options = {});

/// Writes `DatasetToCsv` output to `path`.
Status SaveCsvDataset(const Dataset& dataset, const std::string& path,
                      const CsvOptions& options = {});

}  // namespace qikey

#endif  // QIKEY_DATA_CSV_LOADER_H_
