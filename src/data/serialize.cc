#include "data/serialize.h"

#include <cstring>
#include <fstream>
#include <memory>

#include "util/logging.h"

namespace qikey {

namespace {

constexpr char kMagic[4] = {'Q', 'I', 'K', 'D'};
constexpr uint32_t kVersion = 1;

class Writer {
 public:
  void Raw(const void* src, size_t n) {
    size_t at = out_.size();
    out_.resize(at + n);
    std::memcpy(out_.data() + at, src, n);
  }
  void U8(uint8_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  std::string Take() && { return std::move(out_); }

 private:
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool Raw(void* dst, size_t n) {
    if (pos_ + n > bytes_.size()) return false;
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    uint32_t len = 0;
    if (!U32(&len)) return false;
    if (pos_ + len > bytes_.size()) return false;
    s->assign(bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool AtEnd() const { return pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::string SerializeDataset(const Dataset& dataset) {
  Writer w;
  w.Raw(kMagic, sizeof(kMagic));
  w.U32(kVersion);
  w.U32(static_cast<uint32_t>(dataset.num_attributes()));
  w.U64(dataset.num_rows());
  for (size_t j = 0; j < dataset.num_attributes(); ++j) {
    const Column& col = dataset.column(static_cast<AttributeIndex>(j));
    w.Str(dataset.schema().name(static_cast<AttributeIndex>(j)));
    w.U32(col.cardinality());
    const Dictionary* dict = col.dictionary();
    w.U8(dict != nullptr ? 1 : 0);
    if (dict != nullptr) {
      w.U32(static_cast<uint32_t>(dict->size()));
      for (ValueCode c = 0; c < dict->size(); ++c) w.Str(dict->Value(c));
    }
    w.Raw(col.codes().data(), col.codes().size() * sizeof(ValueCode));
  }
  return std::move(w).Take();
}

Result<Dataset> DeserializeDataset(std::string_view bytes) {
  Reader r(bytes);
  char magic[4];
  uint32_t version = 0, m = 0;
  uint64_t n = 0;
  if (!r.Raw(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a qikey dataset payload");
  }
  if (!r.U32(&version) || version != kVersion) {
    return Status::InvalidArgument("unsupported dataset payload version");
  }
  if (!r.U32(&m) || !r.U64(&n)) {
    return Status::InvalidArgument("truncated dataset header");
  }
  // Validate declared sizes against the bytes actually present BEFORE
  // allocating: adversarial headers must produce an error, not an
  // attempted multi-gigabyte allocation or an overflowed size
  // computation. Every column costs at least a name length, a
  // cardinality, and a dictionary flag (9 bytes); every row costs
  // sizeof(ValueCode) per column.
  if (m > r.remaining() / 9) {
    return Status::InvalidArgument("attribute count exceeds payload size");
  }
  if (n > static_cast<uint64_t>(~RowIndex{0})) {
    return Status::InvalidArgument("row count exceeds RowIndex range");
  }
  if (m > 0 && n > r.remaining() / (sizeof(ValueCode) * m)) {
    return Status::InvalidArgument("row count exceeds payload size");
  }
  std::vector<std::string> names;
  std::vector<Column> columns;
  names.reserve(m);
  columns.reserve(m);
  for (uint32_t j = 0; j < m; ++j) {
    std::string name;
    uint32_t cardinality = 0;
    uint8_t has_dict = 0;
    if (!r.Str(&name) || !r.U32(&cardinality) || !r.U8(&has_dict)) {
      return Status::InvalidArgument("truncated column header");
    }
    names.push_back(std::move(name));
    std::shared_ptr<Dictionary> dict;
    if (has_dict) {
      uint32_t entries = 0;
      if (!r.U32(&entries)) {
        return Status::InvalidArgument("truncated dictionary");
      }
      if (entries > r.remaining() / sizeof(uint32_t)) {
        return Status::InvalidArgument("dictionary size exceeds payload");
      }
      dict = std::make_shared<Dictionary>();
      for (uint32_t e = 0; e < entries; ++e) {
        std::string value;
        if (!r.Str(&value)) {
          return Status::InvalidArgument("truncated dictionary entry");
        }
        dict->GetOrAdd(value);
        if (dict->size() != e + 1) {
          return Status::InvalidArgument("duplicate dictionary entry");
        }
      }
      // Codes are validated against the cardinality below; rendering
      // reads the dictionary, so the cardinality must not exceed it.
      if (cardinality > dict->size()) {
        return Status::InvalidArgument("cardinality exceeds dictionary size");
      }
    }
    if (n > r.remaining() / sizeof(ValueCode)) {
      return Status::InvalidArgument("truncated column codes");
    }
    std::vector<ValueCode> codes(n);
    if (!r.Raw(codes.data(), n * sizeof(ValueCode))) {
      return Status::InvalidArgument("truncated column codes");
    }
    for (ValueCode c : codes) {
      if (c >= cardinality) {
        return Status::InvalidArgument("code out of declared cardinality");
      }
    }
    columns.emplace_back(std::move(codes), cardinality, std::move(dict));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after dataset payload");
  }
  return Dataset::Make(Schema(std::move(names)), std::move(columns));
}

Status WriteDatasetFile(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  std::string bytes = SerializeDataset(dataset);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Dataset> ReadDatasetFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return DeserializeDataset(bytes);
}

}  // namespace qikey
