#include "data/serialize.h"

#include <cstring>
#include <memory>

#include "data/wire_codec.h"
#include "util/logging.h"

namespace qikey {

namespace {

constexpr char kMagic[4] = {'Q', 'I', 'K', 'D'};
constexpr uint32_t kVersion = 1;

}  // namespace

std::string SerializeDataset(const Dataset& dataset) {
  ByteWriter w;
  w.Raw(kMagic, sizeof(kMagic));
  w.U32(kVersion);
  w.U32(static_cast<uint32_t>(dataset.num_attributes()));
  w.U64(dataset.num_rows());
  for (size_t j = 0; j < dataset.num_attributes(); ++j) {
    const Column& col = dataset.column(static_cast<AttributeIndex>(j));
    w.Str(dataset.schema().name(static_cast<AttributeIndex>(j)));
    w.U32(col.cardinality());
    const Dictionary* dict = col.dictionary();
    w.U8(dict != nullptr ? 1 : 0);
    if (dict != nullptr) {
      w.U32(static_cast<uint32_t>(dict->size()));
      for (ValueCode c = 0; c < dict->size(); ++c) w.Str(dict->Value(c));
    }
    w.Raw(col.codes().data(), col.codes().size() * sizeof(ValueCode));
  }
  return std::move(w).Take();
}

Result<Dataset> DeserializeDataset(std::string_view bytes) {
  ByteReader r(bytes);
  char magic[4];
  uint32_t version = 0, m = 0;
  uint64_t n = 0;
  if (!r.Raw(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a qikey dataset payload");
  }
  if (!r.U32(&version) || version != kVersion) {
    return Status::InvalidArgument("unsupported dataset payload version");
  }
  if (!r.U32(&m) || !r.U64(&n)) {
    return Status::InvalidArgument("truncated dataset header");
  }
  // Validate declared sizes against the bytes actually present BEFORE
  // allocating: adversarial headers must produce an error, not an
  // attempted multi-gigabyte allocation or an overflowed size
  // computation. Every column costs at least a name length, a
  // cardinality, and a dictionary flag (9 bytes); every row costs
  // sizeof(ValueCode) per column.
  if (m > r.remaining() / 9) {
    return Status::InvalidArgument("attribute count exceeds payload size");
  }
  if (n > static_cast<uint64_t>(~RowIndex{0})) {
    return Status::InvalidArgument("row count exceeds RowIndex range");
  }
  if (m > 0 && n > r.remaining() / (sizeof(ValueCode) * m)) {
    return Status::InvalidArgument("row count exceeds payload size");
  }
  // No reserve(m) here on purpose: sizeof(Column) and sizeof(string)
  // dwarf the 9-byte-per-column floor above, so a hostile header could
  // otherwise force an allocation several times the payload size. The
  // vectors grow as columns actually parse.
  std::vector<std::string> names;
  std::vector<Column> columns;
  for (uint32_t j = 0; j < m; ++j) {
    std::string name;
    uint32_t cardinality = 0;
    uint8_t has_dict = 0;
    if (!r.Str(&name) || !r.U32(&cardinality) || !r.U8(&has_dict)) {
      return Status::InvalidArgument("truncated column header");
    }
    names.push_back(std::move(name));
    std::shared_ptr<Dictionary> dict;
    if (has_dict) {
      uint32_t entries = 0;
      if (!r.U32(&entries)) {
        return Status::InvalidArgument("truncated dictionary");
      }
      if (entries > r.remaining() / sizeof(uint32_t)) {
        return Status::InvalidArgument("dictionary size exceeds payload");
      }
      dict = std::make_shared<Dictionary>();
      for (uint32_t e = 0; e < entries; ++e) {
        std::string value;
        if (!r.Str(&value)) {
          return Status::InvalidArgument("truncated dictionary entry");
        }
        dict->GetOrAdd(value);
        if (dict->size() != e + 1) {
          return Status::InvalidArgument("duplicate dictionary entry");
        }
      }
      // Codes are validated against the cardinality below; rendering
      // reads the dictionary, so the cardinality must not exceed it.
      if (cardinality > dict->size()) {
        return Status::InvalidArgument("cardinality exceeds dictionary size");
      }
    }
    if (n > r.remaining() / sizeof(ValueCode)) {
      return Status::InvalidArgument("truncated column codes");
    }
    std::vector<ValueCode> codes(n);
    if (!r.Raw(codes.data(), n * sizeof(ValueCode))) {
      return Status::InvalidArgument("truncated column codes");
    }
    for (ValueCode c : codes) {
      if (c >= cardinality) {
        return Status::InvalidArgument("code out of declared cardinality");
      }
    }
    columns.emplace_back(std::move(codes), cardinality, std::move(dict));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after dataset payload");
  }
  return Dataset::Make(Schema(std::move(names)), std::move(columns));
}

Status WriteDatasetFile(const Dataset& dataset, const std::string& path) {
  return WriteFileBytes(SerializeDataset(dataset), path);
}

Result<Dataset> ReadDatasetFile(const std::string& path) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return DeserializeDataset(*bytes);
}

}  // namespace qikey
