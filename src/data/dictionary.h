#ifndef QIKEY_DATA_DICTIONARY_H_
#define QIKEY_DATA_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace qikey {

/// Dictionary code for a value within one column. Codes are dense:
/// a column with cardinality `c` uses codes `0..c-1`.
using ValueCode = uint32_t;

/// \brief Per-column value dictionary (string <-> dense code).
///
/// The library operates on dictionary codes everywhere: the separation
/// structure of a data set depends only on equality of values, so any
/// universe `U` with a total order can be encoded this way (Section 1's
/// "mild assumption"). The dictionary is only consulted when loading
/// text data or rendering results.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the code of `value`, inserting it if new.
  ValueCode GetOrAdd(std::string_view value);

  /// Returns the code of `value` or `kNotFound` if absent.
  static constexpr ValueCode kNotFound = ~ValueCode{0};
  ValueCode Find(std::string_view value) const;

  /// The string for a code. Code must be valid.
  const std::string& Value(ValueCode code) const { return values_[code]; }

  /// Number of distinct values.
  size_t size() const { return values_.size(); }

 private:
  std::unordered_map<std::string, ValueCode> index_;
  std::vector<std::string> values_;
};

}  // namespace qikey

#endif  // QIKEY_DATA_DICTIONARY_H_
