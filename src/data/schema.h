#ifndef QIKEY_DATA_SCHEMA_H_
#define QIKEY_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace qikey {

/// Index of an attribute (coordinate) within a data set; `[0, m)`.
using AttributeIndex = uint32_t;

/// \brief Names of the attributes of a data set.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> names) : names_(std::move(names)) {}

  /// A schema with attributes named "a0", "a1", ... (for synthetic data).
  static Schema Anonymous(size_t num_attributes);

  size_t num_attributes() const { return names_.size(); }
  const std::string& name(AttributeIndex i) const { return names_[i]; }
  const std::vector<std::string>& names() const { return names_; }

  /// Returns the index of the attribute called `name`, or -1 if absent.
  int Find(const std::string& name) const;

 private:
  std::vector<std::string> names_;
};

}  // namespace qikey

#endif  // QIKEY_DATA_SCHEMA_H_
