#include "data/wire_codec.h"

#include <bit>
#include <cstring>
#include <fstream>

namespace qikey {

// The on-disk formats store fixed-width integers verbatim.
static_assert(std::endian::native == std::endian::little,
              "qikey serialization requires a little-endian target");

void ByteWriter::Raw(const void* src, size_t n) {
  if (n == 0) return;  // empty vectors may hand over a null pointer
  size_t at = out_.size();
  out_.resize(at + n);
  std::memcpy(out_.data() + at, src, n);
}

void ByteWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  Raw(s.data(), s.size());
}

void ByteWriter::Blob(std::string_view blob) {
  U64(blob.size());
  Raw(blob.data(), blob.size());
}

void ByteWriter::AlignTo(size_t alignment) {
  while (out_.size() % alignment != 0) out_.push_back('\0');
}

bool ByteReader::Raw(void* dst, size_t n) {
  if (n > remaining()) return false;
  std::memcpy(dst, bytes_.data() + pos_, n);
  pos_ += n;
  return true;
}

bool ByteReader::Str(std::string* s) {
  uint32_t len = 0;
  if (!U32(&len)) return false;
  if (len > remaining()) return false;
  s->assign(bytes_.data() + pos_, len);
  pos_ += len;
  return true;
}

bool ByteReader::Blob(std::string_view* blob) {
  uint64_t len = 0;
  if (!U64(&len)) return false;
  if (len > remaining()) return false;
  *blob = bytes_.substr(pos_, static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return true;
}

bool ByteReader::Skip(size_t n) {
  if (n > remaining()) return false;
  pos_ += n;
  return true;
}

uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open: " + path);
  std::streamoff size = in.tellg();
  if (size < 0) return Status::IOError("cannot size: " + path);
  std::string bytes(static_cast<size_t>(size), '\0');
  in.seekg(0);
  if (size > 0 && !in.read(bytes.data(), size)) {
    return Status::IOError("read failed: " + path);
  }
  return bytes;
}

Status WriteFileBytes(std::string_view bytes, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace qikey
