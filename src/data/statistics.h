#ifndef QIKEY_DATA_STATISTICS_H_
#define QIKEY_DATA_STATISTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace qikey {

/// \brief Per-column profile used by auditors, the CLI, and generator
/// validation.
struct ColumnStats {
  std::string name;
  uint32_t cardinality = 0;    ///< declared code space
  uint32_t distinct = 0;       ///< observed distinct values
  /// Shannon entropy of the empirical value distribution, in bits.
  double entropy_bits = 0.0;
  /// Frequency of the most common value, in [0, 1].
  double top_frequency = 0.0;
  /// Number of pairs of rows agreeing on this column (`Γ_{j}`).
  uint64_t unseparated_pairs = 0;
  /// 1 - Γ_j / C(n,2): how much of the pair space this column separates.
  double separation_ratio = 0.0;
  /// Fraction of rows whose value is unique in the column.
  double uniqueness = 0.0;
};

/// Computes the profile of one column. `O(n)`.
ColumnStats ComputeColumnStats(const Dataset& dataset, AttributeIndex j);

/// Profiles of every column, in schema order.
std::vector<ColumnStats> ProfileDataset(const Dataset& dataset);

/// Renders the profiles as an aligned text table (for CLI/examples).
std::string FormatProfileTable(const std::vector<ColumnStats>& stats);

}  // namespace qikey

#endif  // QIKEY_DATA_STATISTICS_H_
