#include "data/dataset_builder.h"

#include <sstream>

namespace qikey {

DatasetBuilder::DatasetBuilder(std::vector<std::string> attribute_names)
    : schema_(std::move(attribute_names)) {
  dictionaries_.reserve(schema_.num_attributes());
  codes_.resize(schema_.num_attributes());
  for (size_t i = 0; i < schema_.num_attributes(); ++i) {
    dictionaries_.push_back(std::make_shared<Dictionary>());
  }
}

Status DatasetBuilder::AddRow(const std::vector<std::string>& fields) {
  if (fields.size() != dictionaries_.size()) {
    std::ostringstream msg;
    msg << "row has " << fields.size() << " fields, expected "
        << dictionaries_.size();
    return Status::InvalidArgument(msg.str());
  }
  for (size_t j = 0; j < fields.size(); ++j) {
    codes_[j].push_back(dictionaries_[j]->GetOrAdd(fields[j]));
  }
  ++num_rows_;
  return Status::OK();
}

Status DatasetBuilder::AddRow(std::initializer_list<std::string_view> fields) {
  std::vector<std::string> copy;
  copy.reserve(fields.size());
  for (std::string_view f : fields) copy.emplace_back(f);
  return AddRow(copy);
}

Dataset DatasetBuilder::Finish() && {
  std::vector<Column> columns;
  columns.reserve(codes_.size());
  for (size_t j = 0; j < codes_.size(); ++j) {
    uint32_t cardinality = static_cast<uint32_t>(dictionaries_[j]->size());
    columns.emplace_back(std::move(codes_[j]), std::max(cardinality, 1u),
                         dictionaries_[j]);
  }
  return Dataset(std::move(schema_), std::move(columns));
}

}  // namespace qikey
