#include "data/dataset_builder.h"

#include <sstream>

namespace qikey {

DatasetBuilder::DatasetBuilder(std::vector<std::string> attribute_names)
    : schema_(std::move(attribute_names)) {
  dictionaries_.reserve(schema_.num_attributes());
  codes_.resize(schema_.num_attributes());
  for (size_t i = 0; i < schema_.num_attributes(); ++i) {
    dictionaries_.push_back(std::make_shared<Dictionary>());
  }
}

DatasetBuilder::DatasetBuilder(
    std::vector<std::string> attribute_names,
    std::vector<std::shared_ptr<Dictionary>> dictionaries)
    : schema_(std::move(attribute_names)),
      dictionaries_(std::move(dictionaries)) {
  codes_.resize(schema_.num_attributes());
  for (size_t i = 0; i < schema_.num_attributes(); ++i) {
    if (dictionaries_.size() <= i || dictionaries_[i] == nullptr) {
      if (dictionaries_.size() <= i) dictionaries_.resize(i + 1);
      dictionaries_[i] = std::make_shared<Dictionary>();
    }
  }
  dict_bytes_ = DictionaryBytes();
}

uint64_t DatasetBuilder::DictionaryBytes() const {
  uint64_t bytes = 0;
  for (const auto& dict : dictionaries_) {
    for (ValueCode c = 0; c < dict->size(); ++c) {
      // String payload plus rough per-entry index overhead.
      bytes += dict->Value(c).size() + 2 * sizeof(void*);
    }
  }
  return bytes;
}

Status DatasetBuilder::AddRow(const std::vector<std::string>& fields) {
  if (fields.size() != dictionaries_.size()) {
    std::ostringstream msg;
    msg << "row has " << fields.size() << " fields, expected "
        << dictionaries_.size();
    return Status::InvalidArgument(msg.str());
  }
  for (size_t j = 0; j < fields.size(); ++j) {
    size_t before = dictionaries_[j]->size();
    codes_[j].push_back(dictionaries_[j]->GetOrAdd(fields[j]));
    if (dictionaries_[j]->size() != before) {
      dict_bytes_ += fields[j].size() + 2 * sizeof(void*);
    }
  }
  ++num_rows_;
  return Status::OK();
}

Status DatasetBuilder::AddRow(std::initializer_list<std::string_view> fields) {
  std::vector<std::string> copy;
  copy.reserve(fields.size());
  for (std::string_view f : fields) copy.emplace_back(f);
  return AddRow(copy);
}

uint64_t DatasetBuilder::EstimatedBytes() const {
  uint64_t bytes = dict_bytes_;
  for (const auto& col : codes_) bytes += col.size() * sizeof(ValueCode);
  return bytes;
}

Dataset DatasetBuilder::Finish() && {
  std::vector<Column> columns;
  columns.reserve(codes_.size());
  for (size_t j = 0; j < codes_.size(); ++j) {
    uint32_t cardinality = static_cast<uint32_t>(dictionaries_[j]->size());
    columns.emplace_back(std::move(codes_[j]), std::max(cardinality, 1u),
                         dictionaries_[j]);
  }
  return Dataset(std::move(schema_), std::move(columns));
}

Dataset DatasetBuilder::TakeShard() {
  std::vector<Column> columns;
  columns.reserve(codes_.size());
  for (size_t j = 0; j < codes_.size(); ++j) {
    uint32_t cardinality = static_cast<uint32_t>(dictionaries_[j]->size());
    std::vector<ValueCode> drained = std::move(codes_[j]);
    codes_[j].clear();
    columns.emplace_back(std::move(drained), std::max(cardinality, 1u),
                         dictionaries_[j]);
  }
  num_rows_ = 0;
  return Dataset(Schema(schema_.names()), std::move(columns));
}

}  // namespace qikey
