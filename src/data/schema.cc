#include "data/schema.h"

namespace qikey {

Schema Schema::Anonymous(size_t num_attributes) {
  std::vector<std::string> names;
  names.reserve(num_attributes);
  for (size_t i = 0; i < num_attributes; ++i) {
    // Built with += (not "a" + to_string) to dodge gcc 12's -Wrestrict
    // false positive on operator+(const char*, string&&) (PR105651).
    std::string name = "a";
    name += std::to_string(i);
    names.push_back(std::move(name));
  }
  return Schema(std::move(names));
}

int Schema::Find(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace qikey
