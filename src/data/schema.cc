#include "data/schema.h"

namespace qikey {

Schema Schema::Anonymous(size_t num_attributes) {
  std::vector<std::string> names;
  names.reserve(num_attributes);
  for (size_t i = 0; i < num_attributes; ++i) {
    names.push_back("a" + std::to_string(i));
  }
  return Schema(std::move(names));
}

int Schema::Find(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace qikey
