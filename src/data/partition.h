#ifndef QIKEY_DATA_PARTITION_H_
#define QIKEY_DATA_PARTITION_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace qikey {

/// \brief Partition of the rows of a data set into equivalence classes
/// (the "disjoint cliques" of the auxiliary graph `G_A` in Section 2.1).
///
/// Two rows are in the same block iff they agree on every attribute of
/// the generating set `A`. `Γ_A`, the number of unseparated pairs, is
/// `sum over blocks of C(|block|, 2)`. This is the position-list-index
/// (PLI) representation standard in dependency-discovery systems.
class Partition {
 public:
  /// The partition with a single block containing all `n` rows
  /// (`A = ∅`: nothing is separated).
  static Partition Trivial(size_t num_rows);

  /// Partition induced by a single attribute. `O(n)` counting by code.
  static Partition ByColumn(const Column& column);

  /// \brief This partition refined by `column`: rows stay together iff
  /// they were together and agree on `column`. `O(n)` expected.
  Partition RefinedBy(const Column& column) const;

  size_t num_rows() const { return block_of_.size(); }
  uint32_t num_blocks() const { return num_blocks_; }
  uint32_t block_of(RowIndex row) const { return block_of_[row]; }
  const std::vector<uint32_t>& block_sizes() const { return block_sizes_; }

  /// `Γ` of this partition: number of unordered pairs within blocks.
  uint64_t UnseparatedPairs() const;

  /// True iff every block has size one (the generating set is a key).
  bool AllSingletons() const { return num_blocks_ == block_of_.size(); }

  /// \brief Number of additional pairs that refining by `column` would
  /// separate, i.e. `Γ(this) - Γ(this refined by column)`, computed
  /// without materializing the refinement (the `g_k` of Appendix B).
  uint64_t RefinementGain(const Column& column) const;

 private:
  Partition() = default;

  std::vector<uint32_t> block_of_;   // row -> block id (dense, 0-based)
  std::vector<uint32_t> block_sizes_;  // block id -> size
  uint32_t num_blocks_ = 0;
};

/// Partition of `dataset` by the attribute set `attrs` (fold of
/// `RefinedBy`). An empty `attrs` yields the trivial partition.
Partition PartitionByAttributes(const Dataset& dataset,
                                const std::vector<AttributeIndex>& attrs);

/// Exact `Γ_A` for the data set: pairs not separated by `attrs`.
uint64_t CountUnseparatedPairs(const Dataset& dataset,
                               const std::vector<AttributeIndex>& attrs);

}  // namespace qikey

#endif  // QIKEY_DATA_PARTITION_H_
