#ifndef QIKEY_DATA_GENERATORS_PLANTED_CLIQUE_H_
#define QIKEY_DATA_GENERATORS_PLANTED_CLIQUE_H_

#include <cstdint>

#include "data/dataset.h"
#include "util/rng.h"

namespace qikey {

/// \brief The hard instance of Lemma 4 (the `Ω(m/√ε)` lower bound).
///
/// Attribute 1 takes the value 0 on a planted block of `⌈√(2ε)·n⌉` rows
/// and a distinct value on every other row, so `G_{{1}}` has one clique of
/// size `√(2ε)n` plus isolated vertices — attribute `{1}` is bad, but a
/// uniform sample only detects this once it draws two rows from the
/// planted block, which needs `Ω(m/√ε)` samples for failure `e^{-m}`.
/// The remaining `m-1` attributes jointly encode the row index, so the
/// full attribute set is a key.
struct PlantedCliqueOptions {
  uint64_t num_rows = 0;       ///< n
  uint32_t num_attributes = 2; ///< m (>= 2)
  double epsilon = 0.01;       ///< clique size = ceil(sqrt(2*eps)*n)
  bool shuffle_rows = true;    ///< permute rows so the block is not a prefix
};

Dataset MakePlantedClique(const PlantedCliqueOptions& options, Rng* rng);

/// The planted clique size for given `n`, `eps`: `⌈√(2ε)·n⌉`.
uint64_t PlantedCliqueSize(uint64_t n, double eps);

}  // namespace qikey

#endif  // QIKEY_DATA_GENERATORS_PLANTED_CLIQUE_H_
