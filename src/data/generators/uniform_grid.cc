#include "data/generators/uniform_grid.h"

#include <vector>

#include "util/logging.h"

namespace qikey {

Result<Dataset> MakeFullUniformGrid(uint32_t m, uint32_t q,
                                    uint64_t max_rows) {
  if (m == 0 || q == 0) {
    return Status::InvalidArgument("grid needs m >= 1 and q >= 1");
  }
  uint64_t rows = 1;
  for (uint32_t j = 0; j < m; ++j) {
    if (rows > max_rows / q) {
      return Status::OutOfRange("q^m exceeds max_rows; use the sampled form");
    }
    rows *= q;
  }
  std::vector<Column> columns;
  columns.reserve(m);
  // Row r encodes the tuple (digits of r in base q); column j cycles with
  // period q^(j+1).
  uint64_t period = 1;
  for (uint32_t j = 0; j < m; ++j) {
    std::vector<ValueCode> codes(rows);
    for (uint64_t r = 0; r < rows; ++r) {
      codes[r] = static_cast<ValueCode>((r / period) % q);
    }
    columns.emplace_back(std::move(codes), q);
    period *= q;
  }
  return Dataset(Schema::Anonymous(m), std::move(columns));
}

Dataset MakeUniformGridSample(uint32_t m, uint32_t q, uint64_t n, Rng* rng) {
  QIKEY_CHECK(m >= 1 && q >= 1 && rng != nullptr);
  std::vector<Column> columns;
  columns.reserve(m);
  for (uint32_t j = 0; j < m; ++j) {
    std::vector<ValueCode> codes(n);
    for (uint64_t r = 0; r < n; ++r) {
      codes[r] = static_cast<ValueCode>(rng->Uniform(q));
    }
    columns.emplace_back(std::move(codes), q);
  }
  return Dataset(Schema::Anonymous(m), std::move(columns));
}

}  // namespace qikey
