#include "data/generators/tabular.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace qikey {

ZipfSampler::ZipfSampler(uint32_t cardinality, double exponent) {
  QIKEY_CHECK(cardinality >= 1);
  cumulative_.resize(cardinality);
  double acc = 0.0;
  for (uint32_t i = 0; i < cardinality; ++i) {
    acc += (exponent == 0.0)
               ? 1.0
               : std::pow(static_cast<double>(i + 1), -exponent);
    cumulative_[i] = acc;
  }
  for (double& c : cumulative_) c /= acc;
}

ValueCode ZipfSampler::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) --it;
  return static_cast<ValueCode>(it - cumulative_.begin());
}

Dataset MakeTabular(const TabularSpec& spec, Rng* rng) {
  QIKEY_CHECK(rng != nullptr);
  const uint64_t n = spec.num_rows;
  const size_t m = spec.attributes.size();
  QIKEY_CHECK(m >= 1);

  std::vector<std::string> names;
  names.reserve(m);
  for (const AttributeSpec& a : spec.attributes) names.push_back(a.name);

  std::vector<std::vector<ValueCode>> codes(m);
  for (size_t j = 0; j < m; ++j) {
    const AttributeSpec& a = spec.attributes[j];
    QIKEY_CHECK(a.cardinality >= 1) << "attribute " << a.name;
    codes[j].resize(n);
    if (a.derived_from >= 0) {
      // Noisy deterministic remapping of an earlier column.
      size_t src = static_cast<size_t>(a.derived_from);
      QIKEY_CHECK(src < j) << "derived_from must reference an earlier column";
      // A fixed pseudo-random bijection-ish remap: multiply by an odd
      // constant mod cardinality.
      uint64_t mult = 2 * rng->Uniform(a.cardinality) + 1;
      ZipfSampler fresh(a.cardinality, a.zipf_exponent);
      for (uint64_t r = 0; r < n; ++r) {
        if (a.noise > 0.0 && rng->Bernoulli(a.noise)) {
          codes[j][r] = fresh.Sample(rng);
        } else {
          codes[j][r] = static_cast<ValueCode>(
              (static_cast<uint64_t>(codes[src][r]) * mult) % a.cardinality);
        }
      }
    } else {
      ZipfSampler sampler(a.cardinality, a.zipf_exponent);
      for (uint64_t r = 0; r < n; ++r) {
        codes[j][r] = sampler.Sample(rng);
      }
    }
  }

  std::vector<Column> columns;
  columns.reserve(m);
  for (size_t j = 0; j < m; ++j) {
    columns.emplace_back(std::move(codes[j]), spec.attributes[j].cardinality);
  }
  return Dataset(Schema(std::move(names)), std::move(columns));
}

TabularSpec AdultLikeSpec() {
  TabularSpec spec;
  spec.num_rows = 32561;
  spec.attributes = {
      {"age", 73, 0.6, -1, 0.0},
      {"workclass", 9, 1.2, -1, 0.0},
      {"fnlwgt", 21648, 0.3, -1, 0.0},
      {"education", 16, 0.8, -1, 0.0},
      {"education_num", 16, 0.0, 3, 0.02},  // tracks education
      {"marital_status", 7, 1.0, -1, 0.0},
      {"occupation", 15, 0.7, -1, 0.0},
      {"relationship", 6, 0.9, -1, 0.0},
      {"race", 5, 1.8, -1, 0.0},
      {"sex", 2, 0.4, -1, 0.0},
      {"capital_gain", 119, 2.5, -1, 0.0},
      {"capital_loss", 92, 2.5, -1, 0.0},
      {"hours_per_week", 94, 1.5, -1, 0.0},
      {"native_country", 42, 2.2, -1, 0.0},
  };
  return spec;
}

TabularSpec CovtypeLikeSpec() {
  TabularSpec spec;
  spec.num_rows = 581012;
  spec.attributes = {
      {"elevation", 1978, 0.2, -1, 0.0},
      {"aspect", 361, 0.1, -1, 0.0},
      {"slope", 67, 0.8, -1, 0.0},
      {"horiz_dist_hydrology", 551, 0.5, -1, 0.0},
      {"vert_dist_hydrology", 700, 0.7, -1, 0.0},
      {"horiz_dist_roadways", 5785, 0.3, -1, 0.0},
      {"hillshade_9am", 207, 0.4, -1, 0.0},
      {"hillshade_noon", 185, 0.4, -1, 0.0},
      {"hillshade_3pm", 255, 0.4, -1, 0.0},
      {"horiz_dist_fire", 5827, 0.3, -1, 0.0},
  };
  // 4 wilderness-area indicators + 40 soil-type indicators: heavily
  // skewed binary columns.
  for (int i = 0; i < 4; ++i) {
    spec.attributes.push_back(
        {"wilderness_" + std::to_string(i), 2, 1.6, -1, 0.0});
  }
  for (int i = 0; i < 40; ++i) {
    spec.attributes.emplace_back("soil_" + std::to_string(i), 2, 2.4, -1, 0.0);
  }
  spec.attributes.emplace_back("cover_type", 7, 0.9, -1, 0.0);
  return spec;
}

TabularSpec CpsLikeSpec(uint64_t num_rows) {
  TabularSpec spec;
  spec.num_rows = num_rows;
  // 372 attributes: survey codebooks are dominated by small categorical
  // codes with a tail of detailed numeric fields. Cardinalities are
  // drawn deterministically from that mixture.
  const uint32_t kNumAttributes = 372;
  Rng layout_rng(0xC0FFEE);  // layout is part of the spec, hence fixed seed
  for (uint32_t j = 0; j < kNumAttributes; ++j) {
    AttributeSpec a;
    // += instead of "v" + to_string: gcc 12 -Wrestrict FP (PR105651).
    a.name = "v";
    a.name += std::to_string(j);
    double u = layout_rng.UniformDouble();
    if (u < 0.55) {
      a.cardinality = static_cast<uint32_t>(2 + layout_rng.Uniform(6));
      a.zipf_exponent = 1.2;
    } else if (u < 0.85) {
      a.cardinality = static_cast<uint32_t>(8 + layout_rng.Uniform(43));
      a.zipf_exponent = 0.9;
    } else if (u < 0.97) {
      a.cardinality = static_cast<uint32_t>(51 + layout_rng.Uniform(450));
      a.zipf_exponent = 0.6;
    } else {
      a.cardinality = static_cast<uint32_t>(501 + layout_rng.Uniform(4500));
      a.zipf_exponent = 0.3;
    }
    // A fifth of the columns echo an earlier column with noise
    // (survey recodes).
    if (j > 0 && layout_rng.UniformDouble() < 0.2) {
      a.derived_from = static_cast<int32_t>(layout_rng.Uniform(j));
      a.noise = 0.05;
    }
    spec.attributes.push_back(std::move(a));
  }
  return spec;
}

}  // namespace qikey
