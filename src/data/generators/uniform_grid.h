#ifndef QIKEY_DATA_GENERATORS_UNIFORM_GRID_H_
#define QIKEY_DATA_GENERATORS_UNIFORM_GRID_H_

#include <cstdint>

#include "data/dataset.h"
#include "util/rng.h"

namespace qikey {

/// \brief Data sets for the constant-failure-probability lower bound
/// (Lemma 3): the grid `D = {1, ..., q}^m`.
///
/// In `D`, every singleton attribute set is bad (separates fewer than
/// `(1-ε)C(n,2)` pairs for `1/ε ≈ q`), and sampling a tuple uniformly
/// from `D` draws each coordinate i.i.d. uniform on `[q]`.

/// \brief The full grid, materialized: `q^m` rows. Only for small `q^m`
/// (tests); checks the product does not exceed `max_rows`.
Result<Dataset> MakeFullUniformGrid(uint32_t m, uint32_t q,
                                    uint64_t max_rows = 1u << 22);

/// \brief `n` tuples drawn i.i.d. uniformly from the grid `[q]^m`
/// (the sampling-equivalent form used to run experiments at scale).
Dataset MakeUniformGridSample(uint32_t m, uint32_t q, uint64_t n, Rng* rng);

}  // namespace qikey

#endif  // QIKEY_DATA_GENERATORS_UNIFORM_GRID_H_
