#ifndef QIKEY_DATA_GENERATORS_TABULAR_H_
#define QIKEY_DATA_GENERATORS_TABULAR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace qikey {

/// \brief Synthetic tabular data matched to real-table statistics.
///
/// The separation behaviour of a data set is fully determined by the
/// clique-size profile of each `G_A`, which in turn is driven by the
/// per-attribute cardinalities, value skew, and inter-attribute
/// correlation. This generator reproduces those statistics for the three
/// evaluation tables of the paper (UCI Adult, UCI Covtype, Census CPS),
/// which are not redistributable here; see DESIGN.md §5 for the
/// substitution argument.
struct AttributeSpec {
  std::string name;
  /// Number of distinct values the attribute can take.
  uint32_t cardinality = 2;
  /// Zipf exponent of the marginal distribution (0 = uniform; typical
  /// categorical survey data is 0.5-1.5).
  double zipf_exponent = 0.0;
  /// If >= 0, this attribute is a noisy function of attribute
  /// `derived_from`: with probability `1 - noise` the value is a fixed
  /// remapping of the source value (mod cardinality), otherwise fresh.
  int32_t derived_from = -1;
  double noise = 0.0;
};

struct TabularSpec {
  uint64_t num_rows = 0;
  std::vector<AttributeSpec> attributes;
};

/// Generates a data set from the spec. Deterministic given the RNG seed.
Dataset MakeTabular(const TabularSpec& spec, Rng* rng);

/// \brief Profile of UCI Adult: n = 32,561, 14 attributes with the real
/// table's cardinalities (age 73, workclass 9, fnlwgt ~21k, ...).
TabularSpec AdultLikeSpec();

/// \brief Profile of UCI Covtype: n = 581,012, 55 attributes
/// (10 numeric-like, 44 near-binary soil/wilderness indicators, 1 label).
TabularSpec CovtypeLikeSpec();

/// \brief Profile of the 2016 CPS: 372 attributes, mostly small
/// categorical codes. `num_rows` is a parameter because the real table
/// has millions of rows; the paper's sample sizes do not depend on n.
TabularSpec CpsLikeSpec(uint64_t num_rows);

/// \brief Zipf sampler over `[0, cardinality)` with exponent `s`
/// (s = 0 reduces to uniform). Cumulative-table inversion; O(log c) per
/// draw after O(c) setup.
class ZipfSampler {
 public:
  ZipfSampler(uint32_t cardinality, double exponent);
  ValueCode Sample(Rng* rng) const;

 private:
  std::vector<double> cumulative_;
};

}  // namespace qikey

#endif  // QIKEY_DATA_GENERATORS_TABULAR_H_
