#include "data/generators/encoding_lb.h"

#include "util/logging.h"

namespace qikey {

BitMatrix MakeRandomColumnSparseMatrix(uint32_t k, uint32_t t, uint32_t m,
                                       Rng* rng) {
  QIKEY_CHECK(rng != nullptr);
  QIKEY_CHECK(k >= 1 && t >= 1 && m >= 1);
  BitMatrix c;
  c.rows = static_cast<size_t>(k) * t;
  c.cols = m;
  c.bits.assign(c.rows * c.cols, 0);
  for (uint32_t col = 0; col < m; ++col) {
    std::vector<uint64_t> ones = rng->SampleWithoutReplacement(c.rows, k);
    for (uint64_t r : ones) c.set(static_cast<size_t>(r), col, 1);
  }
  return c;
}

Dataset MakeEncodingDataset(const BitMatrix& c) {
  const size_t n = c.rows;
  const size_t m = c.cols;
  const size_t total_rows = 2 * n;
  const size_t total_cols = m + n;
  std::vector<Column> columns;
  columns.reserve(total_cols);
  // First m attributes: column j of C on top, ones below.
  for (size_t j = 0; j < m; ++j) {
    std::vector<ValueCode> codes(total_rows);
    for (size_t r = 0; r < n; ++r) codes[r] = c.at(r, j);
    for (size_t r = n; r < total_rows; ++r) codes[r] = 1;
    columns.emplace_back(std::move(codes), 2);
  }
  // Next n attributes: canonical vector 1_i on top, zeros below.
  for (size_t i = 0; i < n; ++i) {
    std::vector<ValueCode> codes(total_rows, 0);
    codes[i] = 1;
    columns.emplace_back(std::move(codes), 2);
  }
  return Dataset(Schema::Anonymous(total_cols), std::move(columns));
}

std::vector<AttributeIndex> EncodingQueryAttributes(
    uint32_t column, const std::vector<uint32_t>& guessed_rows, uint32_t m) {
  std::vector<AttributeIndex> attrs;
  attrs.reserve(guessed_rows.size() + 1);
  attrs.push_back(column);
  for (uint32_t r : guessed_rows) attrs.push_back(m + r);
  return attrs;
}

uint64_t HammingDistance(const std::vector<uint8_t>& a,
                         const std::vector<uint8_t>& b) {
  QIKEY_CHECK(a.size() == b.size());
  uint64_t d = 0;
  for (size_t i = 0; i < a.size(); ++i) d += (a[i] != b[i]) ? 1 : 0;
  return d;
}

}  // namespace qikey
