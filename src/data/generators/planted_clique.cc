#include "data/generators/planted_clique.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "util/logging.h"

namespace qikey {

uint64_t PlantedCliqueSize(uint64_t n, double eps) {
  return static_cast<uint64_t>(
      std::ceil(std::sqrt(2.0 * eps) * static_cast<double>(n)));
}

Dataset MakePlantedClique(const PlantedCliqueOptions& options, Rng* rng) {
  QIKEY_CHECK(rng != nullptr);
  const uint64_t n = options.num_rows;
  const uint32_t m = options.num_attributes;
  QIKEY_CHECK(n >= 2 && m >= 2);
  uint64_t clique = PlantedCliqueSize(n, options.epsilon);
  QIKEY_CHECK(clique >= 2 && clique <= n)
      << "epsilon/n combination yields degenerate clique size " << clique;

  // Random row permutation (identity if shuffling disabled).
  std::vector<RowIndex> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  if (options.shuffle_rows) rng->Shuffle(&perm);

  std::vector<Column> columns;
  columns.reserve(m);

  // Attribute 1: value 0 on the planted block, distinct values elsewhere.
  {
    std::vector<ValueCode> codes(n);
    ValueCode next = 1;
    for (uint64_t i = 0; i < n; ++i) {
      codes[perm[i]] = (i < clique) ? 0 : next++;
    }
    columns.emplace_back(std::move(codes),
                         static_cast<uint32_t>(n - clique + 1));
  }

  // Attributes 2..m: base-q digits of the row index with
  // q = ceil(n^(1/(m-1))), so together they separate everything (a key
  // exists, as Lemma 4's construction requires).
  uint32_t digits = m - 1;
  uint64_t q = static_cast<uint64_t>(
      std::ceil(std::pow(static_cast<double>(n), 1.0 / digits)));
  q = std::max<uint64_t>(q, 2);
  uint64_t period = 1;
  for (uint32_t d = 0; d < digits; ++d) {
    std::vector<ValueCode> codes(n);
    for (uint64_t i = 0; i < n; ++i) {
      codes[perm[i]] = static_cast<ValueCode>((i / period) % q);
    }
    columns.emplace_back(std::move(codes), static_cast<uint32_t>(q));
    period *= q;
  }

  return Dataset(Schema::Anonymous(m), std::move(columns));
}

}  // namespace qikey
