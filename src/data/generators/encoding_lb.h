#ifndef QIKEY_DATA_GENERATORS_ENCODING_LB_H_
#define QIKEY_DATA_GENERATORS_ENCODING_LB_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace qikey {

/// \brief The Section 3.2 encoding construction behind the
/// `Ω(mk log(1/ε))` sketch-size lower bound (Lemmas 5 and 6).
///
/// Alice holds a `(kt) x m` bit matrix `C` with exactly `k` ones per
/// column. With `n = kt`, the `2n x (m+n)` data set is
///
///     M = [ C  I_n ]
///         [ D   0  ]
///
/// where `D` is the all-ones `n x m` block and the right block of the
/// top half holds the canonical vectors `1_1, ..., 1_n`. Bob recovers
/// each column of `C` from non-separation estimates `Γ̂_A` for
/// `A = {c, m+r_1, ..., m+r_k}`, using the closed form of Lemma 6.

/// A bit matrix stored row-major; entries 0/1.
struct BitMatrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<uint8_t> bits;  // rows*cols entries

  uint8_t at(size_t r, size_t c) const { return bits[r * cols + c]; }
  void set(size_t r, size_t c, uint8_t v) { bits[r * cols + c] = v; }
};

/// \brief Random `C`: `(k*t) x m`, exactly `k` ones per column placed
/// uniformly at random (the hard distribution `D` of Lemma 5's proof).
BitMatrix MakeRandomColumnSparseMatrix(uint32_t k, uint32_t t, uint32_t m,
                                       Rng* rng);

/// \brief Builds the data set `M` from `C`. Result has `2*C.rows` rows
/// and `C.cols + C.rows` attributes; binary values (codes 0/1).
Dataset MakeEncodingDataset(const BitMatrix& c);

/// \brief The attribute set Bob queries for column `c` and guessed rows
/// `r_1..r_k` (indices into `[0, n)`): `{c} ∪ {m + r_i}`.
std::vector<AttributeIndex> EncodingQueryAttributes(
    uint32_t column, const std::vector<uint32_t>& guessed_rows, uint32_t m);

/// \brief Hamming distance between two equal-length bit vectors.
uint64_t HammingDistance(const std::vector<uint8_t>& a,
                         const std::vector<uint8_t>& b);

}  // namespace qikey

#endif  // QIKEY_DATA_GENERATORS_ENCODING_LB_H_
