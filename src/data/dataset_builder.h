#ifndef QIKEY_DATA_DATASET_BUILDER_H_
#define QIKEY_DATA_DATASET_BUILDER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace qikey {

/// \brief Row-at-a-time builder for `Dataset` with per-column
/// dictionary encoding.
///
/// Used by the CSV loader and by tests that write small literal tables:
///
///     DatasetBuilder b({"city", "zip"});
///     b.AddRow({"SF", "94103"});
///     b.AddRow({"SD", "92115"});
///     Dataset d = std::move(b).Finish();
class DatasetBuilder {
 public:
  explicit DatasetBuilder(std::vector<std::string> attribute_names);

  /// Appends one tuple. Must have exactly `num_attributes` fields.
  Status AddRow(const std::vector<std::string>& fields);
  Status AddRow(std::initializer_list<std::string_view> fields);

  size_t num_rows() const { return num_rows_; }
  size_t num_attributes() const { return dictionaries_.size(); }

  /// Finalizes the data set; the builder is left empty.
  Dataset Finish() &&;

 private:
  Schema schema_;
  std::vector<std::shared_ptr<Dictionary>> dictionaries_;
  std::vector<std::vector<ValueCode>> codes_;
  size_t num_rows_ = 0;
};

}  // namespace qikey

#endif  // QIKEY_DATA_DATASET_BUILDER_H_
