#ifndef QIKEY_DATA_DATASET_BUILDER_H_
#define QIKEY_DATA_DATASET_BUILDER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace qikey {

/// \brief Row-at-a-time builder for `Dataset` with per-column
/// dictionary encoding.
///
/// Used by the CSV loader and by tests that write small literal tables:
///
///     DatasetBuilder b({"city", "zip"});
///     b.AddRow({"SF", "94103"});
///     b.AddRow({"SD", "92115"});
///     Dataset d = std::move(b).Finish();
class DatasetBuilder {
 public:
  explicit DatasetBuilder(std::vector<std::string> attribute_names);

  /// Builds against caller-owned dictionaries (one per attribute), so
  /// several builders — or successive shards drained from one builder —
  /// encode into the SAME code space. Used by the sharded loader: codes
  /// of different shards then compare directly without re-encoding.
  DatasetBuilder(std::vector<std::string> attribute_names,
                 std::vector<std::shared_ptr<Dictionary>> dictionaries);

  /// Appends one tuple. Must have exactly `num_attributes` fields.
  Status AddRow(const std::vector<std::string>& fields);
  Status AddRow(std::initializer_list<std::string_view> fields);

  size_t num_rows() const { return num_rows_; }
  size_t num_attributes() const { return dictionaries_.size(); }

  /// Bytes held by the accumulated codes plus (approximately) the
  /// dictionary strings — the live ingest state the sharded loader
  /// charges against its memory budget.
  uint64_t EstimatedBytes() const;

  /// Finalizes the data set; the builder is left empty.
  Dataset Finish() &&;

  /// Drains the accumulated rows into a data set that SHARES the
  /// builder's dictionaries, leaving the builder empty but reusable:
  /// the next rows keep encoding into the same dictionaries. Column
  /// cardinality is the dictionary size at drain time. This is the
  /// chunked-ingest primitive: one shard out, dictionary kept warm.
  Dataset TakeShard();

 private:
  uint64_t DictionaryBytes() const;

  Schema schema_;
  std::vector<std::shared_ptr<Dictionary>> dictionaries_;
  std::vector<std::vector<ValueCode>> codes_;
  size_t num_rows_ = 0;
  uint64_t dict_bytes_ = 0;  // grown incrementally; O(1) per AddRow field
};

}  // namespace qikey

#endif  // QIKEY_DATA_DATASET_BUILDER_H_
