#ifndef QIKEY_DATA_COLUMN_H_
#define QIKEY_DATA_COLUMN_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "data/dictionary.h"

namespace qikey {

/// \brief One dictionary-encoded attribute: a dense vector of codes plus
/// an optional dictionary (absent for synthetic data, where codes are the
/// values).
///
/// Codes are either OWNED (the common case: the column holds its own
/// vector) or BORROWED (`Borrowed()`: the column is a read-only view
/// over codes that live elsewhere — an mmap-ed snapshot section — and
/// whoever created the view is responsible for keeping those bytes
/// alive). Copying an owned column copies its codes; copying a borrowed
/// column copies the view, so a `Dataset` of borrowed columns stays
/// zero-copy through `Dataset` copies.
class Column {
 public:
  Column() = default;

  /// Builds a column owning `codes`. `cardinality` must exceed every
  /// code; pass 0 to have it computed as `max(code)+1`.
  explicit Column(std::vector<ValueCode> codes, uint32_t cardinality = 0,
                  std::shared_ptr<Dictionary> dictionary = nullptr);

  /// A read-only view over `size` codes at `codes`, which must stay
  /// alive (and contain only codes `< cardinality`) for the lifetime of
  /// this column and every copy of it.
  static Column Borrowed(const ValueCode* codes, size_t size,
                         uint32_t cardinality,
                         std::shared_ptr<Dictionary> dictionary = nullptr);

  Column(const Column& other) { CopyFrom(other); }
  Column& operator=(const Column& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Column(Column&& other) noexcept { MoveFrom(std::move(other)); }
  Column& operator=(Column&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

  size_t size() const { return size_; }
  ValueCode code(size_t row) const { return data_[row]; }
  std::span<const ValueCode> codes() const { return {data_, size_}; }

  /// True when the codes are a view into storage this column does not
  /// own.
  bool borrowed() const { return borrowed_; }

  /// Upper bound on codes: all codes are in `[0, cardinality())`.
  uint32_t cardinality() const { return cardinality_; }

  /// Number of *observed* distinct codes (computed on demand, cached).
  uint32_t CountDistinct() const;

  /// Dictionary for rendering values; may be null for synthetic columns.
  const Dictionary* dictionary() const { return dictionary_.get(); }
  std::shared_ptr<Dictionary> shared_dictionary() const { return dictionary_; }

 private:
  void CopyFrom(const Column& other);
  void MoveFrom(Column&& other) noexcept;

  std::vector<ValueCode> storage_;      // empty when borrowed
  const ValueCode* data_ = nullptr;     // view into storage_ or borrowed
  size_t size_ = 0;
  bool borrowed_ = false;
  uint32_t cardinality_ = 0;
  mutable uint32_t distinct_ = 0;  // 0 = not yet computed (columns are
                                   // non-empty in practice)
  std::shared_ptr<Dictionary> dictionary_;
};

}  // namespace qikey

#endif  // QIKEY_DATA_COLUMN_H_
