#ifndef QIKEY_DATA_COLUMN_H_
#define QIKEY_DATA_COLUMN_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "data/dictionary.h"

namespace qikey {

/// \brief One dictionary-encoded attribute: a dense vector of codes plus
/// an optional dictionary (absent for synthetic data, where codes are the
/// values).
class Column {
 public:
  Column() = default;

  /// Builds a column from codes. `cardinality` must exceed every code;
  /// pass 0 to have it computed as `max(code)+1`.
  explicit Column(std::vector<ValueCode> codes, uint32_t cardinality = 0,
                  std::shared_ptr<Dictionary> dictionary = nullptr);

  size_t size() const { return codes_.size(); }
  ValueCode code(size_t row) const { return codes_[row]; }
  const std::vector<ValueCode>& codes() const { return codes_; }

  /// Upper bound on codes: all codes are in `[0, cardinality())`.
  uint32_t cardinality() const { return cardinality_; }

  /// Number of *observed* distinct codes (computed on demand, cached).
  uint32_t CountDistinct() const;

  /// Dictionary for rendering values; may be null for synthetic columns.
  const Dictionary* dictionary() const { return dictionary_.get(); }
  std::shared_ptr<Dictionary> shared_dictionary() const { return dictionary_; }

 private:
  std::vector<ValueCode> codes_;
  uint32_t cardinality_ = 0;
  mutable uint32_t distinct_ = 0;  // 0 = not yet computed (columns are
                                   // non-empty in practice)
  std::shared_ptr<Dictionary> dictionary_;
};

}  // namespace qikey

#endif  // QIKEY_DATA_COLUMN_H_
