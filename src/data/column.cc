#include "data/column.h"

#include <algorithm>

#include "util/logging.h"

namespace qikey {

Column::Column(std::vector<ValueCode> codes, uint32_t cardinality,
               std::shared_ptr<Dictionary> dictionary)
    : codes_(std::move(codes)),
      cardinality_(cardinality),
      dictionary_(std::move(dictionary)) {
  if (cardinality_ == 0) {
    ValueCode max_code = 0;
    for (ValueCode c : codes_) max_code = std::max(max_code, c);
    cardinality_ = codes_.empty() ? 0 : max_code + 1;
  } else {
    for (ValueCode c : codes_) {
      QIKEY_DCHECK(c < cardinality_);
      (void)c;
    }
  }
}

uint32_t Column::CountDistinct() const {
  if (distinct_ != 0 || codes_.empty()) return distinct_;
  std::vector<bool> seen(cardinality_, false);
  uint32_t count = 0;
  for (ValueCode c : codes_) {
    if (!seen[c]) {
      seen[c] = true;
      ++count;
    }
  }
  distinct_ = count;
  return distinct_;
}

}  // namespace qikey
