#include "data/column.h"

#include <algorithm>

#include "util/logging.h"

namespace qikey {

Column::Column(std::vector<ValueCode> codes, uint32_t cardinality,
               std::shared_ptr<Dictionary> dictionary)
    : storage_(std::move(codes)),
      data_(storage_.data()),
      size_(storage_.size()),
      cardinality_(cardinality),
      dictionary_(std::move(dictionary)) {
  if (cardinality_ == 0) {
    ValueCode max_code = 0;
    for (ValueCode c : storage_) max_code = std::max(max_code, c);
    cardinality_ = storage_.empty() ? 0 : max_code + 1;
  } else {
    for (ValueCode c : storage_) {
      QIKEY_DCHECK(c < cardinality_);
      (void)c;
    }
  }
}

Column Column::Borrowed(const ValueCode* codes, size_t size,
                        uint32_t cardinality,
                        std::shared_ptr<Dictionary> dictionary) {
  Column col;
  col.data_ = codes;
  col.size_ = size;
  col.borrowed_ = true;
  col.cardinality_ = cardinality;
  col.dictionary_ = std::move(dictionary);
  return col;
}

void Column::CopyFrom(const Column& other) {
  storage_ = other.storage_;
  // An owned column's view must follow its (re-allocated) storage; a
  // borrowed column's view keeps pointing at the external storage.
  data_ = other.borrowed_ ? other.data_ : storage_.data();
  size_ = other.size_;
  borrowed_ = other.borrowed_;
  cardinality_ = other.cardinality_;
  distinct_ = other.distinct_;
  dictionary_ = other.dictionary_;
}

void Column::MoveFrom(Column&& other) noexcept {
  storage_ = std::move(other.storage_);
  // Moving a vector transfers its heap buffer, so an owned view stays
  // valid without re-pointing; re-point anyway to keep the invariant
  // `data_ == storage_.data()` explicit for owned columns.
  data_ = other.borrowed_ ? other.data_ : storage_.data();
  size_ = other.size_;
  borrowed_ = other.borrowed_;
  cardinality_ = other.cardinality_;
  distinct_ = other.distinct_;
  dictionary_ = std::move(other.dictionary_);
  other.data_ = nullptr;
  other.size_ = 0;
  other.borrowed_ = false;
  other.distinct_ = 0;
}

uint32_t Column::CountDistinct() const {
  if (distinct_ != 0 || size_ == 0) return distinct_;
  std::vector<bool> seen(cardinality_, false);
  uint32_t count = 0;
  for (size_t i = 0; i < size_; ++i) {
    ValueCode c = data_[i];
    if (!seen[c]) {
      seen[c] = true;
      ++count;
    }
  }
  distinct_ = count;
  return distinct_;
}

}  // namespace qikey
