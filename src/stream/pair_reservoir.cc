#include "stream/pair_reservoir.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace qikey {

namespace {
// Replacement counts beyond this are treated as "never" (no stream of
// that length fits in memory anyway; the slot is simply re-queued).
constexpr uint64_t kNever = uint64_t{1} << 62;
}  // namespace

PairReservoir::PairReservoir(size_t num_slots, Rng* rng)
    : slots_(num_slots, {0, 0}), rng_(rng) {
  QIKEY_CHECK(rng != nullptr);
}

uint64_t PairReservoir::NextReplacementCount(uint64_t t) {
  // P(next replacement count > c) = t(t-1) / (c(c-1)) for c >= t.
  // Inversion: c = smallest integer with c(c-1) >= t(t-1)/U.
  double u = std::max(rng_->UniformDouble(), 1e-300);
  double k = static_cast<double>(t) * static_cast<double>(t - 1) / u;
  if (k >= static_cast<double>(kNever) * static_cast<double>(kNever)) {
    return kNever;
  }
  double c = std::ceil((1.0 + std::sqrt(1.0 + 4.0 * k)) / 2.0);
  uint64_t count = static_cast<uint64_t>(c);
  if (count <= t) count = t + 1;
  return std::min(count, kNever);
}

bool PairReservoir::Offer() {
  uint64_t pos = seen_++;
  uint64_t count = pos + 1;  // 1-based item count after this arrival
  if (pos == 0) {
    for (auto& slot : slots_) slot.first = 0;
    return !slots_.empty();
  }
  if (pos == 1) {
    for (uint32_t i = 0; i < slots_.size(); ++i) {
      slots_[i].second = 1;
      heap_.emplace(NextReplacementCount(2), i);
    }
    return !slots_.empty();
  }
  bool referenced = false;
  while (!heap_.empty() && heap_.top().first <= count) {
    auto [due, slot] = heap_.top();
    heap_.pop();
    QIKEY_DCHECK(due == count);
    if (rng_->Uniform(2) == 0) {
      slots_[slot].first = pos;
    } else {
      slots_[slot].second = pos;
    }
    referenced = true;
    heap_.emplace(NextReplacementCount(count), slot);
  }
  return referenced;
}

}  // namespace qikey
